package warped

import (
	"context"
	"errors"
	"strings"
	"testing"

	"warped/internal/fault"
	"warped/internal/isa"
)

func TestRunnerRunDefaults(t *testing.T) {
	res, err := (&Runner{}).Run(context.Background(), "BitonicSort")
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "BitonicSort" || res.Attempts != 1 || res.Recovered {
		t.Errorf("unexpected result metadata: %+v", res)
	}
	if res.Stats == nil || res.Cycles == 0 {
		t.Error("expected populated stats")
	}
	if res.VerifiedIntra == 0 {
		t.Error("default config should be WarpedDMRConfig (intra-warp DMR active)")
	}
}

func TestRunnerRunUnknownBenchmark(t *testing.T) {
	if _, err := (&Runner{}).Run(context.Background(), "NotABenchmark"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestRunnerRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (&Runner{}).Run(ctx, "MatrixMul")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunnerRetryOptions(t *testing.T) {
	// A one-shot transient under WithRetry: attempt 1 detects and
	// aborts, attempt 2 is clean.
	inj := fault.NewInjector(&Fault{
		Kind: fault.Transient, SM: 0, Lane: 2, Unit: isa.UnitSP, Bit: 3, Cycle: 5,
	})
	res, err := (&Runner{}).Run(context.Background(), "BitonicSort",
		WithFaults(inj, nil), WithStopOnError(), WithRetry(3))
	if err != nil {
		t.Fatalf("transient should recover: %v", err)
	}
	if !res.Recovered || res.Attempts != 2 {
		t.Errorf("expected recovery on attempt 2, got %+v", res)
	}
	if res.Detections == 0 {
		t.Error("the first attempt should have detected the corruption")
	}
}

func TestRunnerRunManyOrdering(t *testing.T) {
	names := []string{"BitonicSort", "BFS", "SCAN", "BitonicSort"}
	res, err := (&Runner{Parallel: 4}).RunMany(context.Background(), names,
		WithConfig(PaperConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(names) {
		t.Fatalf("got %d results, want %d", len(res), len(names))
	}
	for i, r := range res {
		if r.Benchmark != names[i] {
			t.Errorf("res[%d] = %q, want %q (results must follow submission order)", i, r.Benchmark, names[i])
		}
	}
}

func TestRunnerRunManyFirstError(t *testing.T) {
	names := []string{"BitonicSort", "NotABenchmark", "BFS"}
	_, err := (&Runner{Parallel: 2}).RunMany(context.Background(), names)
	if err == nil || !strings.Contains(err.Error(), "NotABenchmark") {
		t.Fatalf("err = %v, want unknown-benchmark failure", err)
	}
}
