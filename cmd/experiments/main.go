// Command experiments regenerates the tables and figures of the
// Warped-DMR paper's evaluation section on the simulator.
//
// Usage:
//
//	experiments            # run everything (several minutes)
//	experiments -fig 9a    # one figure: 1, 5, 8a, 8b, 9a, 9b, 10, 11
//	experiments -fig table4
//	experiments -csv       # emit CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"warped"
	"warped/internal/experiments"
	"warped/internal/kernels"
	"warped/internal/stats"
)

type figure struct {
	id    string
	run   func() (*stats.Table, error)
	chart func() (string, error) // optional ASCII chart form
}

func main() {
	var (
		figID = flag.String("fig", "", "figure to regenerate (1, 5, 8a, 8b, 9a, 9b, 10, 11, table4, sampling, schedulers, latency); empty = all")
		csv   = flag.Bool("csv", false, "emit CSV")
		chart = flag.Bool("chart", false, "render ASCII charts where available")
		lint  = flag.String("lint", "on", "statically verify the bundled kernels before running: on|off")
	)
	flag.Parse()

	// Long experiment runs should not discover a malformed kernel
	// halfway through; verify the whole suite up front.
	if *lint != "off" {
		if err := kernels.LintAll(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	figures := []figure{
		{"1", func() (*stats.Table, error) { r, err := warped.RunFig1(); return tbl(r, err) },
			func() (string, error) { r, err := warped.RunFig1(); return chartOf(r, err) }},
		{"5", func() (*stats.Table, error) { r, err := warped.RunFig5(); return tbl(r, err) },
			func() (string, error) { r, err := warped.RunFig5(); return chartOf(r, err) }},
		{"8a", func() (*stats.Table, error) { r, err := warped.RunFig8a(); return tbl(r, err) }, nil},
		{"8b", func() (*stats.Table, error) { r, err := warped.RunFig8b(); return tbl(r, err) }, nil},
		{"9a", func() (*stats.Table, error) { r, err := warped.RunFig9a(); return tbl(r, err) },
			func() (string, error) { r, err := warped.RunFig9a(); return chartOf(r, err) }},
		{"9b", func() (*stats.Table, error) { r, err := warped.RunFig9b(); return tbl(r, err) },
			func() (string, error) { r, err := warped.RunFig9b(); return chartOf(r, err) }},
		{"10", func() (*stats.Table, error) { r, err := warped.RunFig10(); return tbl(r, err) },
			func() (string, error) { r, err := warped.RunFig10(); return chartOf(r, err) }},
		{"11", func() (*stats.Table, error) { r, err := warped.RunFig11(); return tbl(r, err) },
			func() (string, error) { r, err := warped.RunFig11(); return chartOf(r, err) }},
		{"table4", table4, nil},
		{"sampling", func() (*stats.Table, error) { r, err := experiments.RunSampling(); return tbl(r, err) }, nil},
		{"schedulers", func() (*stats.Table, error) { r, err := experiments.RunSchedulerStudy(); return tbl(r, err) }, nil},
		{"latency", func() (*stats.Table, error) {
			r, err := experiments.RunDetectionLatency("MatrixMul", 12, 5)
			return tbl(r, err)
		}, nil},
	}

	ran := false
	for _, f := range figures {
		if *figID != "" && f.id != *figID {
			continue
		}
		ran = true
		if *chart && f.chart != nil {
			out, err := f.chart()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.id, err)
				os.Exit(1)
			}
			fmt.Println(out)
			continue
		}
		t, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *figID)
		os.Exit(2)
	}
}

// tabler is any experiment result that renders itself.
type tabler interface{ Table() *stats.Table }

func tbl(r tabler, err error) (*stats.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table(), nil
}

// charter is any experiment result with an ASCII chart rendition.
type charter interface{ Chart() string }

func chartOf(r charter, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Chart(), nil
}

func table4() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 4: workloads (scaled-down launch parameters)",
		Headers: []string{"benchmark", "category", "description"},
	}
	for _, b := range kernels.All() {
		t.AddRow(b.Name, b.Category, b.Desc)
	}
	return t, nil
}
