// Command experiments regenerates the tables and figures of the
// Warped-DMR paper's evaluation section on the simulator.
//
// Independent simulator runs fan out across a worker pool; the output
// is byte-identical at any worker count. Ctrl-C cancels the remaining
// runs promptly.
//
// Usage:
//
//	experiments                # run everything (several minutes)
//	experiments -fig 9a        # one figure: 1, 5, 8a, 8b, 9a, 9b, 10, 11
//	experiments -fig table4
//	experiments -fig campaign  # seeded fault-injection campaign
//	experiments -fig pareto    # policy sweep: coverage vs overhead points
//	experiments -fig vulncheck # static unACE claims vs targeted fault injection
//	experiments -parallel 4    # cap the worker pool (default GOMAXPROCS)
//	experiments -csv           # emit CSV instead of aligned text
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"warped/internal/arch"
	"warped/internal/experiments"
	"warped/internal/kernels"
	"warped/internal/metrics"
	"warped/internal/stats"
)

type figure struct {
	id    string
	run   func(ctx context.Context) (*stats.Table, error)
	chart func(ctx context.Context) (string, error) // optional ASCII chart form
}

func main() {
	var (
		figID     = flag.String("fig", "", "figure to regenerate (1, 5, 8a, 8b, 9a, 9b, 10, 11, table4, campaign, pareto, vulncheck, sampling, schedulers, latency); empty = all")
		csv       = flag.Bool("csv", false, "emit CSV")
		policies  = flag.String("policies", "", "semicolon-separated protection policies for -fig pareto (default full;warpsample:1/2;warpsample:1/4;activemask:16;off; docs/POLICIES.md)")
		trials    = flag.Int("trials", 5, "fault-injection trials per (benchmark, policy) cell for -fig pareto; 0 skips the campaign")
		seed      = flag.Int64("seed", 1, "fault-campaign RNG seed for -fig pareto")
		synth     = flag.Bool("synth", true, "append vulnerability-synthesized policy rows (full vs synthesized per benchmark, extras included) to -fig pareto")
		jsonlOut  = flag.String("jsonl", "", "also write the -fig pareto point set as JSON Lines to this file")
		chart     = flag.Bool("chart", false, "render ASCII charts where available")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent simulator runs (results are identical at any value)")
		progress  = flag.Bool("progress", false, "report per-figure run completion on stderr")
		lint      = flag.String("lint", "on", "statically verify the bundled kernels before running: on|off")
		metricsOn = flag.Bool("metrics", false, "print the campaign metrics snapshot to stderr after all figures (docs/OBSERVABILITY.md)")
		metricsTo = flag.String("metrics-out", "", "write the campaign metrics snapshot as JSON Lines to this file")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Long experiment runs should not discover a malformed kernel
	// halfway through; verify the whole suite up front.
	if *lint != "off" {
		if err := kernels.LintAll(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	var reg *metrics.Registry
	if *metricsOn || *metricsTo != "" || *pprofAddr != "" {
		reg = metrics.New()
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: debug server on http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, metrics.Handler(reg)) }()
	}

	e := &experiments.Engine{Workers: *parallel, Metrics: reg}
	if *progress {
		e.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexperiments: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	figures := []figure{
		{"1", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig1(ctx); return tbl(r, err) },
			func(ctx context.Context) (string, error) { r, err := e.Fig1(ctx); return chartOf(r, err) }},
		{"5", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig5(ctx); return tbl(r, err) },
			func(ctx context.Context) (string, error) { r, err := e.Fig5(ctx); return chartOf(r, err) }},
		{"8a", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig8a(ctx); return tbl(r, err) }, nil},
		{"8b", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig8b(ctx); return tbl(r, err) }, nil},
		{"9a", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig9a(ctx); return tbl(r, err) },
			func(ctx context.Context) (string, error) { r, err := e.Fig9a(ctx); return chartOf(r, err) }},
		{"9b", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig9b(ctx); return tbl(r, err) },
			func(ctx context.Context) (string, error) { r, err := e.Fig9b(ctx); return chartOf(r, err) }},
		{"10", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig10(ctx); return tbl(r, err) },
			func(ctx context.Context) (string, error) { r, err := e.Fig10(ctx); return chartOf(r, err) }},
		{"11", func(ctx context.Context) (*stats.Table, error) { r, err := e.Fig11(ctx); return tbl(r, err) },
			func(ctx context.Context) (string, error) { r, err := e.Fig11(ctx); return chartOf(r, err) }},
		{"table4", func(context.Context) (*stats.Table, error) { return table4() }, nil},
		{"campaign", func(ctx context.Context) (*stats.Table, error) {
			r, err := e.Campaign(ctx, "MatrixMul", 24, 1)
			if err != nil {
				return nil, err
			}
			return experiments.CampaignTable([]*experiments.CampaignResult{r}), nil
		}, nil},
		{"pareto", func(ctx context.Context) (*stats.Table, error) {
			spec, err := paretoSpec(*policies, *trials, *seed, *synth)
			if err != nil {
				return nil, err
			}
			r, err := e.Pareto(ctx, spec)
			if err != nil {
				return nil, err
			}
			if *jsonlOut != "" {
				if err := writeParetoJSONL(r, *jsonlOut); err != nil {
					return nil, err
				}
			}
			return r.Table(), nil
		}, nil},
		{"vulncheck", func(ctx context.Context) (*stats.Table, error) {
			// A falsified unACE claim is a hard failure: the error lists
			// every figure-visible injection and the run exits 1.
			r, err := e.VulnCheck(ctx)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}, nil},
		{"sampling", func(ctx context.Context) (*stats.Table, error) { r, err := e.Sampling(ctx); return tbl(r, err) }, nil},
		{"schedulers", func(ctx context.Context) (*stats.Table, error) { r, err := e.SchedulerStudy(ctx); return tbl(r, err) }, nil},
		{"latency", func(ctx context.Context) (*stats.Table, error) {
			r, err := e.DetectionLatency(ctx, "MatrixMul", 12, 5)
			return tbl(r, err)
		}, nil},
	}

	ran := false
	for _, f := range figures {
		if *figID != "" && f.id != *figID {
			continue
		}
		ran = true
		if *chart && f.chart != nil {
			out, err := f.chart(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.id, err)
				os.Exit(1)
			}
			fmt.Println(out)
			continue
		}
		t, err := f.run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *figID)
		os.Exit(2)
	}
	// Metrics go to stderr / a file, never stdout: figure output stays
	// byte-identical whether or not a registry is attached.
	if reg != nil {
		snap := reg.Snapshot()
		if *metricsOn {
			fmt.Fprintln(os.Stderr, "metrics:")
			fmt.Fprint(os.Stderr, snap.String())
		}
		if *metricsTo != "" {
			f, err := os.Create(*metricsTo)
			if err == nil {
				err = snap.WriteJSONL(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -metrics-out: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// tabler is any experiment result that renders itself.
type tabler interface{ Table() *stats.Table }

func tbl(r tabler, err error) (*stats.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table(), nil
}

// charter is any experiment result with an ASCII chart rendition.
type charter interface{ Chart() string }

func chartOf(r charter, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Chart(), nil
}

// paretoSpec builds the policy-sweep spec from the -policies, -trials,
// -seed and -synth flags. Policies are semicolon-separated because
// kernel lists use commas (kernel:BFS,SHA).
func paretoSpec(policyList string, trials int, seed int64, synth bool) (experiments.ParetoSpec, error) {
	spec := experiments.ParetoSpec{Trials: trials, Seed: seed, Synth: synth}
	if policyList == "" {
		return spec, nil // Pareto fills in DefaultParetoPolicies
	}
	for _, s := range strings.Split(policyList, ";") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		p, err := arch.ParsePolicy(s)
		if err != nil {
			return spec, fmt.Errorf("-policies: %w", err)
		}
		spec.Policies = append(spec.Policies, p)
	}
	return spec, nil
}

// writeParetoJSONL writes the sweep's point set as JSON Lines.
func writeParetoJSONL(r *experiments.ParetoResult, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

func table4() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 4: workloads (scaled-down launch parameters)",
		Headers: []string{"benchmark", "category", "description"},
	}
	for _, b := range kernels.All() {
		t.AddRow(b.Name, b.Category, b.Desc)
	}
	return t, nil
}
