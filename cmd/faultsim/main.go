// Command faultsim runs fault-injection campaigns against the
// benchmark suite under full Warped-DMR: each trial plants one random
// stuck-at fault in an execution lane and reports whether a DMR
// comparator caught it, whether it crashed the kernel (a detectable
// unrecoverable error), or whether it slipped through silently.
//
// Usage:
//
//	faultsim -bench MatrixMul -n 50
//	faultsim -all -n 10
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"warped"
	"warped/internal/core"
	"warped/internal/experiments"
	"warped/internal/fault"
	"warped/internal/metrics"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to inject into")
		all       = flag.Bool("all", false, "run a campaign on every benchmark")
		n         = flag.Int("n", 20, "trials per benchmark")
		seed      = flag.Int64("seed", 1, "campaign RNG seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for campaign trials (results are identical at any value)")
		policyStr = flag.String("policy", "full", "selective-protection policy for the campaign machine (docs/POLICIES.md)")
		diagnose  = flag.Bool("diagnose", false, "plant one stuck-at fault and isolate the faulty lane")
		metricsOn = flag.Bool("metrics", false, "print the campaign metrics snapshot to stderr (docs/OBSERVABILITY.md)")
		metricsTo = flag.String("metrics-out", "", "write the campaign metrics snapshot as JSON Lines to this file")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *metrics.Registry
	if *metricsOn || *metricsTo != "" || *pprofAddr != "" {
		reg = metrics.New()
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: -pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "faultsim: debug server on http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, metrics.Handler(reg)) }()
	}

	if *diagnose {
		runDiagnose(ctx, *benchName, *seed)
		return
	}

	var names []string
	switch {
	case *all:
		names = warped.BenchmarkNames()
	case *benchName != "":
		names = []string{*benchName}
	default:
		fmt.Fprintln(os.Stderr, "faultsim: -bench or -all is required")
		flag.Usage()
		os.Exit(2)
	}

	policy, err := warped.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: -policy: %v\n", err)
		os.Exit(2)
	}
	cfg := warped.WarpedDMRConfig()
	cfg.Policy = policy

	e := &warped.Engine{Workers: *parallel, Metrics: reg}
	var results []*warped.CampaignResult
	for _, name := range names {
		c, err := e.CampaignConfig(ctx, name, cfg, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		results = append(results, c)
	}
	fmt.Println(experiments.CampaignTable(results).String())

	// Metrics go to stderr / a file, never stdout: campaign output stays
	// byte-identical whether or not a registry is attached.
	if reg != nil {
		snap := reg.Snapshot()
		if *metricsOn {
			fmt.Fprintln(os.Stderr, "metrics:")
			fmt.Fprint(os.Stderr, snap.String())
		}
		if *metricsTo != "" {
			f, err := os.Create(*metricsTo)
			if err == nil {
				err = snap.WriteJSONL(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultsim: -metrics-out: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// runDiagnose demonstrates the paper's §3.4 claim: Warped-DMR detects
// at single-SP granularity, so a permanently faulty lane can be
// identified (and then re-routed around) instead of disabling the SM.
func runDiagnose(ctx context.Context, benchName string, seed int64) {
	if benchName == "" {
		benchName = "SHA"
	}
	// Plant a known stuck-at fault on a busy SM.
	f := &warped.Fault{Kind: fault.StuckAt, SM: 0, Lane: int(seed) % 32,
		Unit: 0 /* SP */, Bit: uint(seed) % 8, StuckVal: 1}
	fmt.Printf("injected: %s\n", f)
	d := core.NewDiagnoser()
	res, err := (&warped.Runner{}).Run(ctx, benchName,
		warped.WithConfig(warped.WarpedDMRConfig()),
		warped.WithFaults(fault.NewInjector(f), d.Observe))
	if err != nil {
		fmt.Printf("kernel aborted (DUE): %v\n", err)
	} else {
		fmt.Printf("run finished: %d corruptions, %d detections\n",
			res.FaultsActivated, res.FaultsDetected)
	}
	fmt.Println(d.Report())
	if sm, lane, ok := d.Suspect(); ok {
		if sm == f.SM && lane == f.Lane {
			fmt.Println("diagnosis CORRECT: matches the injected fault")
		} else {
			fmt.Printf("diagnosis MISMATCH: injected (SM %d, lane %d)\n", f.SM, f.Lane)
		}
	}
}
