// Command faultsim runs fault-injection campaigns against the
// benchmark suite under full Warped-DMR: each trial plants one random
// stuck-at fault in an execution lane and reports whether a DMR
// comparator caught it, whether it crashed the kernel (a detectable
// unrecoverable error), or whether it slipped through silently.
//
// Usage:
//
//	faultsim -bench MatrixMul -n 50
//	faultsim -all -n 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"warped"
	"warped/internal/core"
	"warped/internal/experiments"
	"warped/internal/fault"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to inject into")
		all       = flag.Bool("all", false, "run a campaign on every benchmark")
		n         = flag.Int("n", 20, "trials per benchmark")
		seed      = flag.Int64("seed", 1, "campaign RNG seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for campaign trials (results are identical at any value)")
		diagnose  = flag.Bool("diagnose", false, "plant one stuck-at fault and isolate the faulty lane")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *diagnose {
		runDiagnose(*benchName, *seed)
		return
	}

	var names []string
	switch {
	case *all:
		names = warped.BenchmarkNames()
	case *benchName != "":
		names = []string{*benchName}
	default:
		fmt.Fprintln(os.Stderr, "faultsim: -bench or -all is required")
		flag.Usage()
		os.Exit(2)
	}

	e := &warped.Engine{Workers: *parallel}
	var results []*warped.CampaignResult
	for _, name := range names {
		c, err := e.Campaign(ctx, name, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		results = append(results, c)
	}
	fmt.Println(experiments.CampaignTable(results).String())
}

// runDiagnose demonstrates the paper's §3.4 claim: Warped-DMR detects
// at single-SP granularity, so a permanently faulty lane can be
// identified (and then re-routed around) instead of disabling the SM.
func runDiagnose(benchName string, seed int64) {
	if benchName == "" {
		benchName = "SHA"
	}
	// Plant a known stuck-at fault on a busy SM.
	f := &warped.Fault{Kind: fault.StuckAt, SM: 0, Lane: int(seed) % 32,
		Unit: 0 /* SP */, Bit: uint(seed) % 8, StuckVal: 1}
	fmt.Printf("injected: %s\n", f)
	d := core.NewDiagnoser()
	res, err := warped.RunBenchmarkWithFaults(benchName, warped.WarpedDMRConfig(),
		fault.NewInjector(f), d.Observe)
	if err != nil {
		fmt.Printf("kernel aborted (DUE): %v\n", err)
	} else {
		fmt.Printf("run finished: %d corruptions, %d detections\n",
			res.FaultsActivated, res.FaultsDetected)
	}
	fmt.Println(d.Report())
	if sm, lane, ok := d.Suspect(); ok {
		if sm == f.SM && lane == f.Lane {
			fmt.Println("diagnosis CORRECT: matches the injected fault")
		} else {
			fmt.Printf("diagnosis MISMATCH: injected (SM %d, lane %d)\n", f.SM, f.Lane)
		}
	}
}
