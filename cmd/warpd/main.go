// Command warpd is the simulation-as-a-service daemon: an HTTP/JSON
// API that accepts simulation jobs (a bundled benchmark or an inline
// kernel, plus config overrides and a fault campaign), executes them
// on a bounded worker pool, and answers repeated submissions from a
// content-addressed result cache.
//
// Usage:
//
//	warpd -addr localhost:8080 -workers 4 -queue 64
//
// Identical jobs are executed once: duplicates coalesce onto the
// in-flight execution and completed results are served from an
// LRU-bounded cache. A full queue answers 429 with Retry-After;
// SIGTERM/SIGINT drains gracefully — admission stops, /readyz flips
// to 503, queued and in-flight jobs finish, metrics flush, then the
// process exits. See docs/SERVICE.md for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warped/internal/metrics"
	"warped/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation concurrency (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "max accepted-but-not-started jobs before 429")
		cacheSize  = flag.Int("cache", 256, "completed results retained for cache hits (LRU)")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job wall-clock budget (0 = unlimited)")
		drainWait  = flag.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs on shutdown")
		metricsTo  = flag.String("metrics-out", "", "write the final metrics snapshot as JSON Lines to this file")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cacheSize, *jobTimeout, *drainWait, *metricsTo); err != nil {
		fmt.Fprintf(os.Stderr, "warpd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, cacheSize int, jobTimeout, drainWait time.Duration, metricsTo string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := metrics.New()
	srv := service.New(service.Options{
		Workers:      workers,
		QueueDepth:   queue,
		CacheEntries: cacheSize,
		JobTimeout:   jobTimeout,
		Metrics:      reg,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("warpd: listening on http://%s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (readiness flips to 503), let the
	// HTTP server finish responses in flight, run the accepted backlog
	// to completion, then flush metrics. A second signal interrupts the
	// wait and exits hard.
	fmt.Println("warpd: draining...")
	stop()
	drainCtx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if drainWait > 0 {
		var tcancel context.CancelFunc
		drainCtx, tcancel = context.WithTimeout(drainCtx, drainWait)
		defer tcancel()
	}
	drainErr := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "warpd: http shutdown: %v\n", err)
	}
	if metricsTo != "" {
		if err := writeMetrics(reg, metricsTo); err != nil {
			fmt.Fprintf(os.Stderr, "warpd: %v\n", err)
		}
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("warpd: drained, exiting")
	return nil
}

// writeMetrics flushes the final snapshot as JSON Lines.
func writeMetrics(reg *metrics.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
