// Command warpd is the simulation-as-a-service daemon: an HTTP/JSON
// API that accepts simulation jobs (a bundled benchmark or an inline
// kernel, plus config overrides and a fault campaign), executes them
// on a bounded worker pool, and answers repeated submissions from a
// content-addressed result cache.
//
// Usage:
//
//	warpd -addr localhost:8080 -workers 4 -queue 64
//
// Identical jobs are executed once: duplicates coalesce onto the
// in-flight execution and completed results are served from an
// LRU-bounded cache, optionally backed by a durable on-disk store
// (-store-dir) that survives restarts. A full queue answers 429 with
// Retry-After; SIGTERM/SIGINT drains gracefully — admission stops,
// /readyz flips to 503, queued and in-flight jobs finish, metrics
// flush, then the process exits. See docs/SERVICE.md for the API
// reference.
//
// With -coordinator, warpd instead runs as a cluster coordinator: it
// serves the same job API but executes nothing itself, consistent-
// hashing each job across the given pool of warpd workers with
// cluster-wide coalescing, hedged retries, and worker health
// tracking. See docs/CLUSTER.md.
//
//	warpd -addr :9090 -coordinator http://w1:8080,http://w2:8080 -store-dir /var/lib/warpd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"warped/internal/cluster"
	"warped/internal/metrics"
	"warped/internal/service"
	"warped/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation concurrency (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "max accepted-but-not-started jobs before 429")
		cacheSize  = flag.Int("cache", 256, "completed results retained for cache hits (LRU)")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job wall-clock budget (0 = unlimited)")
		drainWait  = flag.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs on shutdown")
		metricsTo  = flag.String("metrics-out", "", "write the final metrics snapshot as JSON Lines to this file")

		coordinator = flag.String("coordinator", "", "run as a cluster coordinator over this comma-separated worker URL pool")
		storeDir    = flag.String("store-dir", "", "durable result store directory (worker and coordinator modes; empty = memory only)")
		storeMax    = flag.Int64("store-max-bytes", 0, "store size bound before LRU GC (0 = 1GiB default)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "coordinator: hedge a dispatch to the next ring node after this long (0 = off)")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "coordinator: worker readiness probe cadence")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "coordinator: virtual nodes per worker on the hash ring")
	)
	flag.Parse()

	reg := metrics.New()
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, MaxBytes: *storeMax, Metrics: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "warpd: opening store: %v\n", err)
			os.Exit(1)
		}
	}

	var d daemon
	if *coordinator != "" {
		d = cluster.New(cluster.Options{
			Workers:       strings.Split(*coordinator, ","),
			VNodes:        *vnodes,
			Store:         st,
			Metrics:       reg,
			HedgeAfter:    *hedgeAfter,
			ProbeInterval: *probeEvery,
		})
	} else {
		d = service.New(service.Options{
			Workers:      *workers,
			QueueDepth:   *queue,
			CacheEntries: *cacheSize,
			JobTimeout:   *jobTimeout,
			Store:        st,
			Metrics:      reg,
		})
	}

	if err := run(d, reg, *addr, *drainWait, *metricsTo); err != nil {
		fmt.Fprintf(os.Stderr, "warpd: %v\n", err)
		os.Exit(1)
	}
}

// daemon is what run serves: both the single-node service and the
// cluster coordinator mount an http.Handler and drain gracefully.
type daemon interface {
	Handler() http.Handler
	Drain(context.Context) error
}

func run(d daemon, reg *metrics.Registry, addr string, drainWait time.Duration, metricsTo string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           d.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("warpd: listening on http://%s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (readiness flips to 503), let the
	// HTTP server finish responses in flight, run the accepted backlog
	// to completion, then flush metrics. A second signal interrupts the
	// wait and exits hard.
	fmt.Println("warpd: draining...")
	stop()
	drainCtx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if drainWait > 0 {
		var tcancel context.CancelFunc
		drainCtx, tcancel = context.WithTimeout(drainCtx, drainWait)
		defer tcancel()
	}
	drainErr := d.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "warpd: http shutdown: %v\n", err)
	}
	if metricsTo != "" {
		if err := writeMetrics(reg, metricsTo); err != nil {
			fmt.Fprintf(os.Stderr, "warpd: %v\n", err)
		}
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("warpd: drained, exiting")
	return nil
}

// writeMetrics flushes the final snapshot as JSON Lines.
func writeMetrics(reg *metrics.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
