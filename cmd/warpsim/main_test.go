package main

import "testing"

func TestParseDims(t *testing.T) {
	cases := []struct {
		in    string
		x, y  int
		fails bool
	}{
		{"8x1", 8, 1, false},
		{"16X16", 16, 16, false},
		{"32", 32, 1, false},
		{"0x4", 0, 0, true},
		{"4x0", 0, 0, true},
		{"", 0, 0, true},
		{"axb", 0, 0, true},
		{"-2x1", 0, 0, true},
	}
	for _, c := range cases {
		x, y, err := parseDims(c.in)
		if c.fails {
			if err == nil {
				t.Errorf("parseDims(%q) should fail", c.in)
			}
			continue
		}
		if err != nil || x != c.x || y != c.y {
			t.Errorf("parseDims(%q) = (%d,%d,%v), want (%d,%d)", c.in, x, y, err, c.x, c.y)
		}
	}
}
