package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in    string
		x, y  int
		fails bool
	}{
		{"8x1", 8, 1, false},
		{"16X16", 16, 16, false},
		{"32", 32, 1, false},
		{"0x4", 0, 0, true},
		{"4x0", 0, 0, true},
		{"", 0, 0, true},
		{"axb", 0, 0, true},
		{"-2x1", 0, 0, true},
	}
	for _, c := range cases {
		x, y, err := parseDims(c.in)
		if c.fails {
			if err == nil {
				t.Errorf("parseDims(%q) should fail", c.in)
			}
			continue
		}
		if err != nil || x != c.x || y != c.y {
			t.Errorf("parseDims(%q) = (%d,%d,%v), want (%d,%d)", c.in, x, y, err, c.x, c.y)
		}
	}
}

func TestParseLintMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
		ok   bool
	}{
		{"on", true, true}, {"ON", true, true}, {"1", true, true},
		{"off", false, true}, {"false", false, true},
		{"maybe", false, false},
	} {
		got, err := parseLintMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("parseLintMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestRunLintBundled(t *testing.T) {
	if status := runLint(nil); status != 0 {
		t.Fatalf("runLint(bundled) = %d, want 0", status)
	}
}

func TestRunLintBadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.asm")
	src := ".kernel bad\n.reg 4\niadd r0, r1, 1\nexit\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if status := runLint([]string{path}); status != 1 {
		t.Fatalf("runLint(bad file) = %d, want 1", status)
	}
	// Unreadable input is an operational failure, not a finding: exit 2,
	// mirroring simlint's 0/1/2 contract so CI can tell the cases apart.
	if status := runLint([]string{filepath.Join(dir, "missing.asm")}); status != 2 {
		t.Fatalf("runLint(missing file) = %d, want 2", status)
	}
}
