package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything fn printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := new(strings.Builder)
		_, _ = io.Copy(buf, r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestRunVulnBundled(t *testing.T) {
	out := captureStdout(t, func() {
		if status := runVuln(nil); status != 0 {
			t.Errorf("runVuln(bundled) = %d, want 0", status)
		}
	})
	// The bundled microbenchmark is the reference workload: its dead
	// telemetry chain must surface with a non-full synthesized policy.
	if !strings.Contains(out, "vuln_micro") || !strings.Contains(out, "pcset:vuln_micro@") {
		t.Errorf("bundled vuln output lacks the vuln_micro pcset policy:\n%s", out)
	}
}

// TestRunVulnJSONGolden pins the `warpsim vuln -json` record layout —
// field order, names and values — for a kernel with one dead
// instruction. CI validates the same contract with jq; a change here is
// a change to an archived artifact format and needs a docs update
// (docs/STATIC_ANALYSIS.md, "The vulnerability domain").
func TestRunVulnJSONGolden(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "golden.asm")
	src := `.kernel golden
.block 32
	mov r0, %tid.x
	iadd r1, r0, 1
	shl r2, r0, 2
	ld.param r3, [0]
	iadd r4, r3, r2
	st.global [r4], r0
	exit
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if status := runVuln([]string{"-json", path}); status != 0 {
			t.Errorf("runVuln(-json golden) = %d, want 0", status)
		}
	})
	want := `[
  {
    "file": "` + path + `",
    "kernel": "golden",
    "pcs": 7,
    "eligible": 6,
    "ace": 5,
    "unace": 1,
    "unknown": 0,
    "policy": "pcset:golden@0-0,2-6",
    "unace_pcs": [
      {
        "pc": 1,
        "line": 4,
        "reason": "result is dead on every path"
      }
    ]
  }
]
`
	if out != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestRunVulnExitCodes(t *testing.T) {
	dir := t.TempDir()

	// Unanalyzable: assembles, but static verification fails (r1 read
	// before any definition), so the liveness pass has no sound CFG.
	bad := filepath.Join(dir, "bad.asm")
	if err := os.WriteFile(bad, []byte(".kernel bad\n.reg 4\niadd r0, r1, 1\nexit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status := runVuln([]string{bad}); status != 1 {
		t.Errorf("runVuln(unanalyzable) = %d, want 1", status)
	}

	// Unreadable input is an operational failure: exit 2, mirroring the
	// lint subcommand's 0/1/2 contract.
	if status := runVuln([]string{filepath.Join(dir, "missing.asm")}); status != 2 {
		t.Errorf("runVuln(missing file) = %d, want 2", status)
	}
}

func TestRunVulnMetricsOut(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "vuln-metrics.jsonl")
	captureStdout(t, func() {
		if status := runVuln([]string{"-metrics-out", out}); status != 0 {
			t.Errorf("runVuln(-metrics-out) = %d, want 0", status)
		}
	})
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"dmr.vuln.analyses_total",
		"dmr.vuln.ace_pcs_total",
		"dmr.vuln.unace_pcs_total",
		"dmr.vuln.policies_synthesized_total",
	} {
		if !strings.Contains(string(data), name) {
			t.Errorf("metrics snapshot lacks %s:\n%s", name, data)
		}
	}
}
