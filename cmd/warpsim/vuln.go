package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"warped"
	"warped/internal/asm"
	"warped/internal/isa"
	"warped/internal/kernels"
	"warped/internal/metrics"
	"warped/internal/verify"
)

// vulnPC is one statically-unACE instruction in `warpsim vuln -json`
// output. As with lintRecord, the struct declaration order IS the
// output field order — CI archives these, so keep it stable.
type vulnPC struct {
	PC     int    `json:"pc"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// vulnRecord is one kernel's vulnerability classification in
// `warpsim vuln -json` output. Field order is the output order.
type vulnRecord struct {
	File     string   `json:"file"`
	Kernel   string   `json:"kernel"`
	PCs      int      `json:"pcs"`
	Eligible int      `json:"eligible"`
	ACE      int      `json:"ace"`
	UnACE    int      `json:"unace"`
	Unknown  int      `json:"unknown"`
	Policy   string   `json:"policy"`
	UnACEPCs []vulnPC `json:"unace_pcs"`
}

// runVuln implements the `warpsim vuln` subcommand: run the static
// fault-vulnerability (ACE) analysis over kernel files (or, with no
// arguments, every bundled kernel), print each kernel's
// ACE/unACE/unknown classification and the protection policy
// synthesized from its unACE PCs, and with -json emit one record per
// kernel as a JSON array. The exit status is 0 when every kernel
// analyzes, 1 when a kernel is unanalyzable (its static verification
// fails, so liveness has no sound CFG to run on), 2 when an input
// cannot be read or assembled.
func runVuln(args []string) int {
	vulnFlags := flag.NewFlagSet("vuln", flag.ContinueOnError)
	vulnFlags.SetOutput(os.Stderr)
	jsonOut := vulnFlags.Bool("json", false, "emit per-kernel records as a JSON array instead of text")
	metricsTo := vulnFlags.String("metrics-out", "", "write a dmr.vuln.* metrics snapshot as JSON Lines to this file")
	vulnFlags.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: warpsim vuln [-json] [-metrics-out FILE] [file.asm ...]")
		vulnFlags.PrintDefaults()
	}
	if err := vulnFlags.Parse(args); err != nil {
		return 2
	}
	files := vulnFlags.Args()

	type target struct {
		file   string
		kernel string
		prog   *isa.Program
	}
	var targets []target
	status := 0
	if len(files) == 0 {
		for _, s := range kernels.Sources() {
			p, err := asm.Assemble(s.Src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", s.File, err)
				status = 2
				continue
			}
			targets = append(targets, target{s.File, s.Name, p})
		}
	} else {
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "warpsim vuln: %v\n", err)
				status = 2
				continue
			}
			progs, err := asm.AssembleModule(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				status = 2
				continue
			}
			names := make([]string, 0, len(progs))
			for name := range progs {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				targets = append(targets, target{path, name, progs[name]})
			}
		}
	}

	var reg *warped.Metrics
	if *metricsTo != "" {
		reg = warped.NewMetrics()
	}
	vm := metrics.ForVuln(reg)

	records := []vulnRecord{} // non-nil so -json prints [] with no kernels
	for _, tg := range targets {
		r, err := verify.AnalyzeVuln(tg.prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", tg.file, tg.kernel, err)
			if status == 0 {
				status = 1
			}
			continue
		}
		policy := warped.SynthesizePolicy(tg.kernel, len(tg.prog.Instrs), r.UnACEPCs())
		vm.Analyses.Inc()
		vm.ACEPCs.Add(int64(r.ACE))
		vm.UnACEPCs.Add(int64(r.UnACE))
		vm.UnknownPCs.Add(int64(r.Unknown))
		if policy.Kind != warped.PolicyFull {
			vm.Synthesized.Inc()
		}
		rec := vulnRecord{
			File:     tg.file,
			Kernel:   tg.kernel,
			PCs:      len(r.PCs),
			Eligible: r.EligiblePCs,
			ACE:      r.ACE,
			UnACE:    r.UnACE,
			Unknown:  r.Unknown,
			Policy:   policy.String(),
			UnACEPCs: []vulnPC{},
		}
		for _, pv := range r.PCs {
			if pv.Class == verify.VulnUnACE && pv.Eligible {
				rec.UnACEPCs = append(rec.UnACEPCs, vulnPC{PC: pv.PC, Line: pv.Line, Reason: pv.Reason})
			}
		}
		records = append(records, rec)
		if !*jsonOut {
			fmt.Printf("%s: %s: %d PCs (%d eligible): %d ACE, %d unACE, %d unknown; policy %s\n",
				tg.file, tg.kernel, rec.PCs, rec.Eligible, rec.ACE, rec.UnACE, rec.Unknown, rec.Policy)
			for _, pv := range rec.UnACEPCs {
				fmt.Printf("  pc %d (line %d): %s\n", pv.PC, pv.Line, pv.Reason)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "warpsim vuln: %v\n", err)
			return 2
		}
	}
	if *metricsTo != "" {
		f, err := os.Create(*metricsTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warpsim vuln: %v\n", err)
			return 2
		}
		if err := reg.Snapshot().WriteJSONL(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "warpsim vuln: write %s: %v\n", *metricsTo, err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "warpsim vuln: %v\n", err)
			return 2
		}
	}
	return status
}
