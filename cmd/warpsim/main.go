// Command warpsim runs one of the paper's benchmarks on the simulated
// GPU under a chosen Warped-DMR configuration and prints its
// statistics: cycles, IPC, utilization and instruction-type breakdowns,
// DMR coverage, overhead counters, and a power estimate.
//
// Usage:
//
//	warpsim -bench MatrixMul -dmr full -mapping rr -replayq 10
//	warpsim -list
//	warpsim lint             # statically verify every bundled kernel
//	warpsim lint my.asm      # statically verify kernel files
//	warpsim lint -json       # findings as a JSON array for CI archiving
//	warpsim vuln             # ACE/unACE fault-vulnerability analysis
//	warpsim vuln -json       # per-kernel records as a JSON array
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"warped"
	"warped/internal/asm"
	"warped/internal/isa"
	"warped/internal/kernels"
	"warped/internal/stats"
	"warped/internal/trace"
	"warped/internal/verify"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(runLint(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "vuln" {
		os.Exit(runVuln(os.Args[2:]))
	}
	var (
		benchName = flag.String("bench", "", "benchmark to run (see -list)")
		kernPath  = flag.String("kernel", "", "run a custom .asm kernel file instead of a benchmark")
		grid      = flag.String("grid", "1x1", "custom kernel grid dims, e.g. 8x1")
		block     = flag.String("block", "32x1", "custom kernel block dims, e.g. 128x1")
		shared    = flag.Int("shared", 0, "custom kernel shared memory bytes per block")
		params    = flag.String("params", "", "comma-separated uint32 kernel parameters")
		traceOut  = flag.String("trace", "", "write a per-instruction CSV trace of a custom kernel to this file")
		list      = flag.Bool("list", false, "list available benchmarks")
		dmrMode   = flag.String("dmr", "off", "DMR mode: off|intra|inter|full|dmtr")
		mapping   = flag.String("mapping", "linear", "thread-core mapping: linear|rr")
		replayQ   = flag.Int("replayq", 10, "ReplayQ entries per SM")
		cluster   = flag.Int("cluster", 4, "SIMT cluster size (4 or 8)")
		sms       = flag.Int("sms", 30, "number of SMs")
		policyStr = flag.String("policy", "full", "selective-protection policy: full|off|kernel:NAME[,..]|warpsample:1/N|activemask:MIN|pcrange:LO-HI (docs/POLICIES.md)")
		noShuffle = flag.Bool("no-lane-shuffle", false, "disable lane shuffling on replays")
		noDrain   = flag.Bool("no-idle-drain", false, "disable ReplayQ draining on idle units")
		lintMode  = flag.String("lint", "on", "statically verify kernels before running: on|off")
		traceFmt  = flag.String("trace-format", "csv", "trace file format: csv|chrome|jsonl")
		metricsOn = flag.Bool("metrics", false, "print the metrics snapshot after the run (docs/OBSERVABILITY.md)")
		metricsTo = flag.String("metrics-out", "", "write the metrics snapshot as JSON Lines to this file")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof, /debug/vars and /debug/metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lint, err := parseLintMode(*lintMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpsim: %v\n", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("Table 4 workloads:")
		for _, b := range warped.Benchmarks() {
			fmt.Printf("  %-12s %-28s %s\n", b.Name, b.Category, b.Desc)
		}
		fmt.Println("Extra reference workloads:")
		for _, b := range warped.ExtraBenchmarks() {
			fmt.Printf("  %-12s %-28s %s\n", b.Name, b.Category, b.Desc)
		}
		return
	}
	if *benchName == "" && *kernPath == "" {
		fmt.Fprintln(os.Stderr, "warpsim: -bench or -kernel is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	cfg := warped.PaperConfig()
	cfg.NumSMs = *sms
	cfg.ClusterSize = *cluster
	cfg.ReplayQSize = *replayQ
	cfg.LaneShuffle = !*noShuffle
	cfg.IdleDrain = !*noDrain
	switch strings.ToLower(*dmrMode) {
	case "off":
		cfg.DMR = warped.DMROff
	case "intra":
		cfg.DMR = warped.DMRIntra
	case "inter":
		cfg.DMR = warped.DMRInter
	case "full":
		cfg.DMR = warped.DMRFull
	case "dmtr":
		cfg.DMR = warped.DMRTemporalAll
	default:
		fmt.Fprintf(os.Stderr, "warpsim: unknown -dmr %q\n", *dmrMode)
		os.Exit(2)
	}
	switch strings.ToLower(*mapping) {
	case "linear":
		cfg.Mapping = warped.MapLinear
	case "rr", "cross", "clusterrr":
		cfg.Mapping = warped.MapClusterRR
	default:
		fmt.Fprintf(os.Stderr, "warpsim: unknown -mapping %q\n", *mapping)
		os.Exit(2)
	}
	cfg.Policy, err = warped.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpsim: -policy: %v\n", err)
		os.Exit(2)
	}

	reg := newRegistry(*metricsOn, *metricsTo, *pprofAddr)
	serveDebug(reg, *pprofAddr)

	if *kernPath != "" {
		if err := runCustom(ctx, cfg, *kernPath, *grid, *block, *shared, *params, *traceOut, *traceFmt, lint, reg); err != nil {
			fmt.Fprintf(os.Stderr, "warpsim: %v\n", err)
			os.Exit(1)
		}
		if err := emitMetrics(reg, *metricsOn, *metricsTo); err != nil {
			fmt.Fprintf(os.Stderr, "warpsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if lint {
		if err := kernels.LintAll(); err != nil {
			fmt.Fprintf(os.Stderr, "warpsim: %v\n", err)
			os.Exit(1)
		}
	}
	res, err := (&warped.Runner{Metrics: reg}).Run(ctx, *benchName, warped.WithConfig(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpsim: %v\n", err)
		os.Exit(1)
	}
	printResult(res, cfg)
	if err := emitMetrics(reg, *metricsOn, *metricsTo); err != nil {
		fmt.Fprintf(os.Stderr, "warpsim: %v\n", err)
		os.Exit(1)
	}
}

// newRegistry builds a metrics registry when any observability flag
// asks for one; otherwise the run stays unmetered (nil registry).
func newRegistry(print bool, out, pprofAddr string) *warped.Metrics {
	if !print && out == "" && pprofAddr == "" {
		return nil
	}
	return warped.NewMetrics()
}

// serveDebug mounts /debug/pprof, /debug/vars and /debug/metrics on
// addr in the background. Failures to bind are fatal: asking for a
// debug server and silently not getting one wastes a profiling session.
func serveDebug(reg *warped.Metrics, addr string) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warpsim: -pprof: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "warpsim: debug server on http://%s/debug/pprof/\n", ln.Addr())
	go func() { _ = http.Serve(ln, warped.MetricsHandler(reg)) }()
}

// emitMetrics renders the post-run snapshot: human-readable to stdout
// with -metrics, JSON Lines to a file with -metrics-out.
func emitMetrics(reg *warped.Metrics, print bool, out string) error {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	if print {
		fmt.Println("\nmetrics:")
		fmt.Print(snap.String())
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := snap.WriteJSONL(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", out, err)
		}
		return f.Close()
	}
	return nil
}

// runCustom assembles and launches a user-provided kernel file. With
// lint enabled, error-severity verifier findings abort the launch and
// warnings print to stderr; -lint=off skips verification entirely.
func runCustom(ctx context.Context, cfg warped.Config, path, grid, block string, shared int, paramList, traceOut, traceFmt string, lint bool, reg *warped.Metrics) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := warped.AssembleNamed(path, string(src))
	if err != nil {
		return err
	}
	gx, gy, err := parseDims(grid)
	if err != nil {
		return fmt.Errorf("bad -grid: %w", err)
	}
	bx, by, err := parseDims(block)
	if err != nil {
		return fmt.Errorf("bad -block: %w", err)
	}
	if lint {
		// Verify against the actual launch geometry: that arms the
		// tid-aware shared-bounds/race rules even when the kernel
		// declares no .block of its own.
		fs := warped.VerifyWith(prog, warped.VerifyOptions{BlockDimX: bx, BlockDimY: by})
		if fs.Errors() > 0 {
			fmt.Fprint(os.Stderr, fs.Dump(path))
			return fmt.Errorf("kernel %q failed static verification with %d error(s) (use -lint=off to run anyway)",
				prog.Name, fs.Errors())
		}
		fmt.Fprint(os.Stderr, fs.Dump(path)) // surviving findings are warnings
	}
	var words []uint32
	if paramList != "" {
		for _, f := range strings.Split(paramList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 32)
			if err != nil {
				return fmt.Errorf("bad -params entry %q: %w", f, err)
			}
			words = append(words, uint32(v))
		}
	}
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		return err
	}
	opts := warped.LaunchOpts{Metrics: reg}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		sink, finish, err := traceWriter(f, traceFmt)
		if err != nil {
			return err
		}
		opts.Trace = sink
		defer func() {
			if err := finish(); err != nil {
				fmt.Fprintf(os.Stderr, "warpsim: trace write: %v\n", err)
			}
		}()
	}
	if prog.SharedBytes > shared {
		shared = prog.SharedBytes // honour the kernel's .shared directive
	}
	st, err := gpu.LaunchContext(ctx, &warped.Kernel{
		Prog:  prog,
		GridX: gx, GridY: gy, BlockX: bx, BlockY: by,
		SharedBytes: shared,
		Params:      warped.NewParams(words...),
	}, opts)
	if err != nil {
		return err
	}
	printResult(&warped.Result{Stats: st, Benchmark: prog.Name + " (custom kernel, no host validation)"}, cfg)
	return nil
}

// traceWriter builds the trace sink selected by -trace-format plus a
// finish function reporting (and, for chrome, terminating) the output.
func traceWriter(f *os.File, format string) (warped.TraceSink, func() error, error) {
	switch strings.ToLower(format) {
	case "csv":
		w := trace.NewCSVWriter(f)
		return w, func() error { return w.Err }, nil
	case "chrome":
		w := trace.NewChromeWriter(f)
		return w, w.Close, nil
	case "jsonl":
		w := trace.NewJSONLWriter(f)
		return w, w.Close, nil
	}
	return nil, nil, fmt.Errorf("unknown -trace-format %q (want csv, chrome or jsonl)", format)
}

func parseDims(s string) (int, int, error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	x, err := strconv.Atoi(parts[0])
	if err != nil || x <= 0 {
		return 0, 0, fmt.Errorf("bad dimension %q", s)
	}
	y := 1
	if len(parts) == 2 {
		y, err = strconv.Atoi(parts[1])
		if err != nil || y <= 0 {
			return 0, 0, fmt.Errorf("bad dimension %q", s)
		}
	}
	return x, y, nil
}

func printResult(res *warped.Result, cfg warped.Config) {
	st := res.Stats
	label := res.Benchmark
	if !strings.Contains(label, "custom kernel") {
		label += " (validated against host reference)"
	}
	fmt.Printf("benchmark          %s\n", label)
	fmt.Printf("machine            %d SMs, %d-lane clusters, mapping=%s, DMR=%s, ReplayQ=%d\n",
		cfg.NumSMs, cfg.ClusterSize, cfg.Mapping, cfg.DMR, cfg.ReplayQSize)
	fmt.Printf("kernel cycles      %d (%.3f ms at %.2f ns/cycle)\n",
		st.Cycles, float64(st.Cycles)*cfg.ClockNS*1e-6, cfg.ClockNS)
	fmt.Printf("warp instructions  %d (IPC %.2f)\n", st.WarpInstrs, st.IPC())
	fmt.Printf("thread instrs      %d\n", st.ThreadInstrs)

	af := st.ActiveFractions()
	var ab []string
	for i, b := range stats.ActiveBuckets {
		ab = append(ab, fmt.Sprintf("%s:%.1f%%", b, 100*af[i]))
	}
	fmt.Printf("active threads     %s\n", strings.Join(ab, "  "))
	tf := st.TypeFractions()
	fmt.Printf("instruction types  SP:%.1f%%  SFU:%.1f%%  LD/ST:%.1f%%\n",
		100*tf[0], 100*tf[1], 100*tf[2])

	if cfg.DMR != warped.DMROff {
		fmt.Printf("DMR coverage       %.2f%% (intra %d + inter %d of %d eligible)\n",
			100*st.Coverage(), st.VerifiedIntra, st.VerifiedInter, st.EligibleTI)
		fmt.Printf("DMR overhead       %d full-queue stalls, %d RAW stalls, %d co-executions, %d idle drains\n",
			st.StallReplayQFull, st.StallRAWUnverif, st.ReplayCoexec, st.ReplayIdleDrain)
		// Only selective policies print a policy line: the default Full
		// output stays byte-identical to the pre-policy CLI (a CI check
		// compares it against archived output).
		if cfg.Policy.Kind != warped.PolicyFull {
			fmt.Printf("DMR policy         %s (protected %d, skipped %d of %d eligible)\n",
				cfg.Policy, st.ProtectedTI, st.SkippedTI, st.EligibleTI)
		}
	}
	if st.L1Hits+st.L1Misses > 0 {
		l1 := float64(st.L1Hits) / float64(st.L1Hits+st.L1Misses)
		l2 := 0.0
		if st.L2Hits+st.L2Misses > 0 {
			l2 = float64(st.L2Hits) / float64(st.L2Hits+st.L2Misses)
		}
		fmt.Printf("caches             L1 %.1f%% hit (%d/%d), L2 %.1f%% hit (%d/%d)\n",
			100*l1, st.L1Hits, st.L1Hits+st.L1Misses, 100*l2, st.L2Hits, st.L2Hits+st.L2Misses)
	}
	rep := warped.EstimatePower(cfg, st)
	fmt.Printf("power estimate     %.1f W total (%.1f W dynamic), %.4f J\n",
		rep.TotalW, rep.RuntimeW, rep.EnergyJ)
}

// parseLintMode maps the -lint flag value to a boolean.
func parseLintMode(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("unknown -lint %q (want on or off)", s)
}

// lintRecord is one verifier finding in `warpsim lint -json` output.
// The struct declaration order IS the output field order — CI archives
// these, so keep it stable.
type lintRecord struct {
	File     string `json:"file"`
	Kernel   string `json:"kernel"`
	Line     int    `json:"line"`
	Severity string `json:"severity"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
}

// runLint implements the `warpsim lint` subcommand: statically verify
// kernel files (or, with no arguments, every bundled kernel) and print
// findings in the greppable file:line: severity: rule: message format,
// or as a JSON array (one finding per element) with -json. The exit
// status is 0 only when no finding of any severity remains, 2 when an
// input cannot be read or assembled.
func runLint(args []string) int {
	lintFlags := flag.NewFlagSet("lint", flag.ContinueOnError)
	lintFlags.SetOutput(os.Stderr)
	jsonOut := lintFlags.Bool("json", false, "emit findings as a JSON array instead of text")
	lintFlags.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: warpsim lint [-json] [file.asm ...]")
		lintFlags.PrintDefaults()
	}
	if err := lintFlags.Parse(args); err != nil {
		return 2
	}
	files := lintFlags.Args()

	type target struct {
		file   string
		kernel string
		prog   *isa.Program
	}
	var targets []target
	status := 0
	if len(files) == 0 {
		for _, s := range kernels.Sources() {
			p, err := asm.Assemble(s.Src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", s.File, err)
				status = 2
				continue
			}
			targets = append(targets, target{s.File, s.Name, p})
		}
	} else {
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "warpsim lint: %v\n", err)
				status = 2
				continue
			}
			progs, err := asm.AssembleModule(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				status = 2
				continue
			}
			names := make([]string, 0, len(progs))
			for name := range progs {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				targets = append(targets, target{path, name, progs[name]})
			}
		}
	}

	records := []lintRecord{} // non-nil so -json prints [] when clean
	for _, tg := range targets {
		fs := verify.Check(tg.prog)
		for _, f := range fs {
			records = append(records, lintRecord{
				File:     tg.file,
				Kernel:   tg.kernel,
				Line:     f.Line,
				Severity: f.Sev.String(),
				Rule:     f.Rule,
				Message:  f.Msg,
			})
		}
		if len(fs) > 0 {
			if status == 0 {
				status = 1
			}
			if !*jsonOut {
				fmt.Print(fs.Dump(tg.file))
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "warpsim lint: %v\n", err)
			return 2
		}
	} else if status == 0 {
		if len(files) == 0 {
			fmt.Printf("warpsim lint: %d bundled kernels verify clean\n", len(targets))
		} else {
			fmt.Printf("warpsim lint: %d kernel(s) verify clean\n", len(targets))
		}
	}
	return status
}
