package warped_test

import (
	"context"
	"fmt"

	"warped"
)

// Running one of the paper's workloads under full Warped-DMR: the
// result carries cycles, coverage, and all the per-figure statistics.
func ExampleRunner_Run() {
	runner := &warped.Runner{}
	res, err := runner.Run(context.Background(), "BitonicSort",
		warped.WithConfig(warped.WarpedDMRConfig()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("validated: %s\n", res.Benchmark)
	fmt.Printf("coverage above half: %v\n", res.Coverage() > 0.5)
	fmt.Printf("intra-warp verifications happened: %v\n", res.VerifiedIntra > 0)
	// Output:
	// validated: BitonicSort
	// coverage above half: true
	// intra-warp verifications happened: true
}

// Assembling and launching a custom kernel: each thread squares its
// global index into an output array.
func ExampleAssemble() {
	prog, err := warped.Assemble(`
.kernel square
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x
	imul r3, r2, r2
	ld.param r4, [0]
	shl  r5, r2, 2
	iadd r5, r4, r5
	st.global [r5], r3
	exit
`)
	if err != nil {
		panic(err)
	}
	gpu, err := warped.NewGPU(warped.PaperConfig())
	if err != nil {
		panic(err)
	}
	out := gpu.Mem.MustAlloc(4 * 64)
	if _, err := gpu.Launch(&warped.Kernel{
		Prog: prog, GridX: 2, GridY: 1, BlockX: 32, BlockY: 1,
		Params: warped.NewParams(out),
	}, warped.LaunchOpts{}); err != nil {
		panic(err)
	}
	vals, _ := gpu.Mem.ReadWords(out, 64)
	fmt.Println(vals[7], vals[63])
	// Output:
	// 49 3969
}

// Comparing DMR modes on the same workload: intra-warp covers the
// divergent parts, inter-warp the fully-utilized parts.
func ExampleConfig() {
	intra := warped.PaperConfig()
	intra.DMR = warped.DMRIntra
	intra.Mapping = warped.MapClusterRR
	runner := &warped.Runner{}
	a, err := runner.Run(context.Background(), "BFS", warped.WithConfig(intra))
	if err != nil {
		panic(err)
	}

	full := warped.WarpedDMRConfig()
	b, err := runner.Run(context.Background(), "BFS", warped.WithConfig(full))
	if err != nil {
		panic(err)
	}
	fmt.Printf("full DMR covers at least as much as intra alone: %v\n",
		b.Coverage() >= a.Coverage())
	// Output:
	// full DMR covers at least as much as intra alone: true
}
