// Package baselines implements the error-detection approaches the
// paper compares against in Fig. 10:
//
//   - R-Naive (Dimitrov et al.): run the whole kernel twice and compare
//     outputs on the host — double kernel time AND double transfers.
//   - R-Thread (Dimitrov et al.): double the thread blocks inside the
//     kernel; redundancy hides only if SMs were idle, and the output
//     must be copied back twice for host-side comparison.
//   - DMTR: dual modular temporal redundancy — every instruction is
//     re-executed on its unit in the following cycle (a 1-cycle-slack
//     SRT), with results compared on the GPU.
//   - Warped-DMR: the paper's approach (internal/core), comparing on
//     the GPU with opportunistic spatial/temporal redundancy.
package baselines

import (
	"context"
	"fmt"

	"warped/internal/arch"
	"warped/internal/kernels"
	"warped/internal/sim"
	"warped/internal/stats"
	"warped/internal/xfer"
)

// Approach enumerates the compared error-detection schemes.
type Approach int

const (
	Original Approach = iota
	RNaive
	RThread
	DMTR
	WarpedDMR
)

func (a Approach) String() string {
	switch a {
	case Original:
		return "Original"
	case RNaive:
		return "R-Naive"
	case RThread:
		return "R-Thread"
	case DMTR:
		return "DMTR"
	case WarpedDMR:
		return "Warped-DMR"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Approaches lists all schemes in the order Fig. 10 presents them.
var Approaches = []Approach{Original, RNaive, RThread, DMTR, WarpedDMR}

// Result is one (benchmark, approach) end-to-end evaluation.
type Result struct {
	Approach  Approach
	KernelS   float64 // kernel execution seconds (simulated cycles x clock)
	TransferS float64 // host<->device transfer seconds
	Stats     *stats.Stats
}

// TotalS returns end-to-end seconds.
func (r Result) TotalS() float64 { return r.KernelS + r.TransferS }

// Evaluate runs the benchmark under one approach and returns its
// end-to-end time decomposition. base must have DMR disabled; Evaluate
// derives the per-approach configuration from it.
func Evaluate(a Approach, bench *kernels.Benchmark, base arch.Config, pcie xfer.Model) (Result, error) {
	return EvaluateContext(context.Background(), a, bench, base, pcie)
}

// EvaluateContext is Evaluate with cooperative cancellation plumbed
// into every kernel launch.
func EvaluateContext(ctx context.Context, a Approach, bench *kernels.Benchmark, base arch.Config, pcie xfer.Model) (Result, error) {
	cfg := base
	cfg.DMR = arch.DMROff
	shadow := false
	switch a {
	case Original, RNaive:
		// plain machine; R-Naive differences are applied after the run
	case RThread:
		shadow = true
	case DMTR:
		cfg.DMR = arch.DMRTemporalAll
		cfg.LaneShuffle = true
	case WarpedDMR:
		cfg.DMR = arch.DMRFull
		cfg.Mapping = arch.MapClusterRR
	}

	g, err := sim.New(cfg, bench.GPUMemBytes())
	if err != nil {
		return Result{}, err
	}
	run, err := bench.Build(g)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%s: build: %w", bench.Name, a, err)
	}
	total := &stats.Stats{}
	for i, step := range run.Steps {
		k := step.Kernel
		k.ShadowGrid = shadow
		st, err := g.LaunchContext(ctx, k, sim.LaunchOpts{})
		if err != nil {
			return Result{}, fmt.Errorf("%s/%s: launch %d: %w", bench.Name, a, i, err)
		}
		total.MergeSerial(st)
		if step.Host != nil {
			if err := step.Host(g); err != nil {
				return Result{}, fmt.Errorf("%s/%s: host step %d: %w", bench.Name, a, i, err)
			}
		}
	}
	if run.Check != nil {
		// Shadow blocks never write global memory, so even the R-Thread
		// run must leave bit-correct outputs behind.
		if err := run.Check(g); err != nil {
			return Result{}, fmt.Errorf("%s/%s: validation: %w", bench.Name, a, err)
		}
	}

	kernelS := float64(total.Cycles) * cfg.ClockNS * 1e-9
	transferS := pcie.RoundTrip(run.InBytes, run.OutBytes)
	switch a {
	case RNaive:
		// Two full kernel invocations, two full transfer round trips,
		// plus reading both outputs back for the host compare is already
		// included in the doubled round trip.
		kernelS *= 2
		transferS *= 2
	case RThread:
		// One upload, but both the original and redundant outputs come
		// back for comparison on the host.
		transferS = pcie.Time(run.InBytes) + 2*pcie.Time(run.OutBytes)
	case Original, DMTR, WarpedDMR:
		// Single launch, single round trip: the simulated cycles and the
		// plain transfer model already cover these.
	}
	return Result{Approach: a, KernelS: kernelS, TransferS: transferS, Stats: total}, nil
}

// EvaluateAll runs every approach for one benchmark.
func EvaluateAll(bench *kernels.Benchmark, base arch.Config, pcie xfer.Model) ([]Result, error) {
	return EvaluateAllContext(context.Background(), bench, base, pcie)
}

// EvaluateAllContext runs every approach for one benchmark under ctx.
func EvaluateAllContext(ctx context.Context, bench *kernels.Benchmark, base arch.Config, pcie xfer.Model) ([]Result, error) {
	out := make([]Result, 0, len(Approaches))
	for _, a := range Approaches {
		r, err := EvaluateContext(ctx, a, bench, base, pcie)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
