package baselines

import (
	"testing"

	"warped/internal/arch"
	"warped/internal/kernels"
	"warped/internal/xfer"
)

func TestApproachStrings(t *testing.T) {
	want := map[Approach]string{
		Original: "Original", RNaive: "R-Naive", RThread: "R-Thread",
		DMTR: "DMTR", WarpedDMR: "Warped-DMR",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if len(Approaches) != 5 {
		t.Error("Fig. 10 compares five approaches")
	}
}

// TestFig10Ordering pins the paper's qualitative result on one
// compute-bound benchmark: R-Naive is the slowest (double kernels and
// transfers), Warped-DMR is the cheapest detection scheme, and every
// scheme costs at least as much as the original.
func TestFig10Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b, err := kernels.ByName("MatrixMul")
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateAll(b, arch.PaperConfig(), xfer.PCIe2x16())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[Approach]Result{}
	for _, r := range res {
		byName[r.Approach] = r
	}
	orig := byName[Original].TotalS()
	for _, a := range []Approach{RNaive, RThread, DMTR, WarpedDMR} {
		if byName[a].TotalS() < orig {
			t.Errorf("%s (%.6fs) cheaper than Original (%.6fs)", a, byName[a].TotalS(), orig)
		}
	}
	if byName[RNaive].TotalS() <= byName[WarpedDMR].TotalS() {
		t.Error("R-Naive should be the most expensive scheme")
	}
	// R-Naive pays exactly double the original end to end.
	if got := byName[RNaive].TotalS() / orig; got < 1.99 || got > 2.01 {
		t.Errorf("R-Naive normalized = %.3f, want 2.0", got)
	}
	// Warped-DMR and DMTR pay no extra transfer (GPU-side comparison).
	if byName[WarpedDMR].TransferS != byName[Original].TransferS {
		t.Error("Warped-DMR must not add transfer time")
	}
	if byName[DMTR].TransferS != byName[Original].TransferS {
		t.Error("DMTR must not add transfer time")
	}
	// R-Thread copies the output back twice.
	if byName[RThread].TransferS <= byName[Original].TransferS {
		t.Error("R-Thread must add output transfer time")
	}
}

// TestRThreadHidesOnIdleSMs: BitonicSort uses one block, so its
// redundant twin runs on an idle SM and kernel time barely moves.
func TestRThreadHidesOnIdleSMs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b, err := kernels.ByName("BitonicSort")
	if err != nil {
		t.Fatal(err)
	}
	pcie := xfer.PCIe2x16()
	orig, err := Evaluate(Original, b, arch.PaperConfig(), pcie)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Evaluate(RThread, b, arch.PaperConfig(), pcie)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := rt.KernelS / orig.KernelS; ratio > 1.10 {
		t.Errorf("single-block R-Thread kernel ratio %.2f; redundancy should hide on idle SMs", ratio)
	}
}
