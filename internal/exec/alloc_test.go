package exec

import (
	"testing"

	"warped/internal/isa"
)

// TestMachineStepZeroAllocs pins the steady-state execute path at zero
// allocations per instruction: data ops, SETP, loads, stores, and a
// uniform branch, driven through an endless loop so the warp state
// never has to be rebuilt.
func TestMachineStepZeroAllocs(t *testing.T) {
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpSHL, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(2)}},
		isa.Instr{Op: isa.OpIADD, Dst: 2, Src: [3]isa.Operand{isa.RegOp(1), isa.ImmOp(256)}},
		isa.Instr{Op: isa.OpST, Space: isa.SpaceGlobal, Src: [3]isa.Operand{isa.RegOp(2), isa.RegOp(0)}},
		isa.Instr{Op: isa.OpLD, Space: isa.SpaceGlobal, Dst: 3, Src: [3]isa.Operand{isa.RegOp(2)}},
		isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpS32, PDst: 1,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(16)}},
		isa.Instr{Op: isa.OpFFMA, Dst: 4, Src: [3]isa.Operand{isa.RegOp(3), isa.RegOp(3), isa.RegOp(3)}},
		isa.Instr{Op: isa.OpBRA, Target: 1}, // loop forever
		isa.Instr{Op: isa.OpEXIT},
	)
	m, ws := newTestMachine(t, p, 32, newCtx(), nil)
	for i := 0; i < 64; i++ { // reach steady state
		if _, err := m.Step(ws); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if _, err := m.Step(ws); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Machine.Step allocates %.2f objects per instruction, want 0", avg)
	}
}
