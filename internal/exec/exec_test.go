package exec

import (
	"math"
	"testing"
	"testing/quick"

	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/simt"
)

func fb(f float32) uint32   { return math.Float32bits(f) }
func negU32(v int32) uint32 { return uint32(-v) }
func ff(u uint32) float32   { return math.Float32frombits(u) }
func instr(op isa.Opcode) *isa.Instr {
	return &isa.Instr{Op: op, Pred: isa.AlwaysPred()}
}

func TestComputeIntegerOps(t *testing.T) {
	cases := []struct {
		op      isa.Opcode
		a, b, c uint32
		want    uint32
	}{
		{isa.OpMOV, 7, 0, 0, 7},
		{isa.OpIADD, 5, 3, 0, 8},
		{isa.OpIADD, 0xFFFFFFFF, 1, 0, 0}, // wraparound
		{isa.OpISUB, 3, 5, 0, 0xFFFFFFFE},
		{isa.OpIMUL, 7, 6, 0, 42},
		{isa.OpIMUL, 0x10000, 0x10000, 0, 0}, // low 32 bits
		{isa.OpIMAD, 3, 4, 5, 17},
		{isa.OpIMIN, uint32(0xFFFFFFFF), 1, 0, 0xFFFFFFFF}, // -1 < 1 signed
		{isa.OpIMAX, uint32(0xFFFFFFFF), 1, 0, 1},
		{isa.OpAND, 0b1100, 0b1010, 0, 0b1000},
		{isa.OpOR, 0b1100, 0b1010, 0, 0b1110},
		{isa.OpXOR, 0b1100, 0b1010, 0, 0b0110},
		{isa.OpNOT, 0, 0, 0, 0xFFFFFFFF},
		{isa.OpSHL, 1, 4, 0, 16},
		{isa.OpSHL, 1, 36, 0, 16}, // shift masked to 5 bits
		{isa.OpSHR, 0x80000000, 31, 0, 1},
		{isa.OpSAR, 0x80000000, 31, 0, 0xFFFFFFFF},
		{isa.OpSELP, 11, 22, 1, 11},
		{isa.OpSELP, 11, 22, 0, 22},
	}
	for _, c := range cases {
		got, ok := Compute(instr(c.op), c.a, c.b, c.c)
		if !ok {
			t.Errorf("%v not computable", c.op)
			continue
		}
		if got != c.want {
			t.Errorf("%v(%#x,%#x,%#x) = %#x, want %#x", c.op, c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestComputeFloatOps(t *testing.T) {
	cases := []struct {
		op      isa.Opcode
		a, b, c float32
		want    float32
	}{
		{isa.OpFADD, 1.5, 2.25, 0, 3.75},
		{isa.OpFSUB, 1, 0.5, 0, 0.5},
		{isa.OpFMUL, 3, -2, 0, -6},
		{isa.OpFFMA, 2, 3, 4, 10},
		{isa.OpFMIN, -1, 1, 0, -1},
		{isa.OpFMAX, -1, 1, 0, 1},
		{isa.OpFNEG, 2.5, 0, 0, -2.5},
		{isa.OpFABS, -2.5, 0, 0, 2.5},
		{isa.OpFDIV, 1, 4, 0, 0.25},
	}
	for _, c := range cases {
		got, ok := Compute(instr(c.op), fb(c.a), fb(c.b), fb(c.c))
		if !ok || ff(got) != c.want {
			t.Errorf("%v(%v,%v,%v) = %v, want %v", c.op, c.a, c.b, c.c, ff(got), c.want)
		}
	}
}

func TestComputeSFU(t *testing.T) {
	approx := func(op isa.Opcode, x, want float32) {
		got, ok := Compute(instr(op), fb(x), 0, 0)
		if !ok {
			t.Fatalf("%v not computable", op)
		}
		if math.Abs(float64(ff(got)-want)) > 1e-5 {
			t.Errorf("%v(%v) = %v, want ~%v", op, x, ff(got), want)
		}
	}
	approx(isa.OpFSIN, 0, 0)
	approx(isa.OpFCOS, 0, 1)
	approx(isa.OpFSQRT, 9, 3)
	approx(isa.OpFRSQRT, 4, 0.5)
	approx(isa.OpFRCP, 8, 0.125)
	approx(isa.OpFEX2, 3, 8)
	approx(isa.OpFLG2, 8, 3)
}

func TestComputeConversions(t *testing.T) {
	if got, _ := Compute(instr(isa.OpI2F), negU32(3), 0, 0); ff(got) != -3 {
		t.Error("i2f(-3) wrong")
	}
	if got, _ := Compute(instr(isa.OpF2I), fb(-3.7), 0, 0); int32(got) != -3 {
		t.Error("f2i truncation wrong")
	}
	if got, _ := Compute(instr(isa.OpF2I), fb(float32(math.NaN())), 0, 0); got != 0 {
		t.Error("f2i(NaN) should be 0")
	}
	if got, _ := Compute(instr(isa.OpF2I), fb(1e20), 0, 0); int32(got) != math.MaxInt32 {
		t.Error("f2i overflow should clamp high")
	}
	if got, _ := Compute(instr(isa.OpF2I), fb(-1e20), 0, 0); int32(got) != math.MinInt32 {
		t.Error("f2i overflow should clamp low")
	}
}

func TestComputeSetp(t *testing.T) {
	mk := func(cmp isa.CmpOp, ty isa.CmpType) *isa.Instr {
		return &isa.Instr{Op: isa.OpSETP, Cmp: cmp, CmpTy: ty, Pred: isa.AlwaysPred()}
	}
	if v, _ := Compute(mk(isa.CmpLT, isa.CmpS32), negU32(5), 3, 0); v != 1 {
		t.Error("-5 < 3 signed failed")
	}
	if v, _ := Compute(mk(isa.CmpLT, isa.CmpU32), negU32(5), 3, 0); v != 0 {
		t.Error("0xFFFFFFFB < 3 unsigned should be false")
	}
	if v, _ := Compute(mk(isa.CmpGE, isa.CmpF32), fb(2.5), fb(2.5), 0); v != 1 {
		t.Error("2.5 >= 2.5 failed")
	}
	nan := fb(float32(math.NaN()))
	if v, _ := Compute(mk(isa.CmpEQ, isa.CmpF32), nan, nan, 0); v != 0 {
		t.Error("NaN == NaN must be false")
	}
	if v, _ := Compute(mk(isa.CmpNE, isa.CmpF32), nan, nan, 0); v != 1 {
		t.Error("NaN != NaN must be true")
	}
}

func TestComputeMemAddress(t *testing.T) {
	in := &isa.Instr{Op: isa.OpLD, Off: 16, Pred: isa.AlwaysPred()}
	if got, _ := Compute(in, 100, 0, 0); got != 116 {
		t.Errorf("address = %d, want 116", got)
	}
	in2 := &isa.Instr{Op: isa.OpST, Off: -4, Pred: isa.AlwaysPred()}
	if got, _ := Compute(in2, 100, 0, 0); got != 96 {
		t.Errorf("address = %d, want 96", got)
	}
}

func TestComputeNonComputable(t *testing.T) {
	for _, op := range []isa.Opcode{isa.OpBRA, isa.OpBAR, isa.OpEXIT, isa.OpNOP, isa.OpPAND, isa.OpPNOT} {
		if _, ok := Compute(instr(op), 0, 0, 0); ok {
			t.Errorf("%v should not be lane-computable", op)
		}
	}
}

// Property: Compute is a pure function — same inputs, same outputs —
// which is what makes DMR re-execution meaningful.
func TestComputeDeterministicQuick(t *testing.T) {
	ops := []isa.Opcode{
		isa.OpIADD, isa.OpIMUL, isa.OpIMAD, isa.OpXOR, isa.OpSHL,
		isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFSQRT, isa.OpFRCP,
	}
	f := func(opIdx uint8, a, b, c uint32) bool {
		in := instr(ops[int(opIdx)%len(ops)])
		v1, ok1 := Compute(in, a, b, c)
		v2, ok2 := Compute(in, a, b, c)
		return ok1 == ok2 && v1 == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer add commutes and xor is an involution.
func TestComputeAlgebraQuick(t *testing.T) {
	add := instr(isa.OpIADD)
	xor := instr(isa.OpXOR)
	f := func(a, b uint32) bool {
		ab, _ := Compute(add, a, b, 0)
		ba, _ := Compute(add, b, a, 0)
		x1, _ := Compute(xor, a, b, 0)
		x2, _ := Compute(xor, x1, b, 0)
		return ab == ba && x2 == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Machine-level tests ---

// newTestMachine compiles src and builds a Machine plus a ready warp
// state over the given memories.
func newTestMachine(t *testing.T, src *isa.Program, width int, mm Mem, perturb Perturb) (*Machine, *WarpState) {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(c, Opts{SegBytes: 128, Banks: 32, Perturb: perturb})
	r := NewRegs(src.NumRegs)
	var lane [32]uint32
	for i := 0; i < 32; i++ {
		lane[i] = uint32(i)
	}
	r.SetSpecial(isa.RegTIDX, lane)
	r.SetSpecial(isa.RegLANEID, lane)
	ws := &WarpState{Ctl: simt.NewWarp(0, 0, width), Regs: r, Mem: mm}
	return m, ws
}

func stepProgram(t *testing.T, src *isa.Program, width int, mm Mem, perturb Perturb) (*simt.Warp, *Regs, []*Record) {
	t.Helper()
	m, ws := newTestMachine(t, src, width, mm, perturb)
	var recs []*Record
	for steps := 0; !ws.Ctl.Done(); steps++ {
		if steps > 10000 {
			t.Fatal("program did not terminate")
		}
		rec, err := m.Step(ws)
		if err != nil {
			t.Fatal(err)
		}
		cp := *rec // Machine reuses its Record; keep a value copy
		recs = append(recs, &cp)
	}
	return ws.Ctl, ws.Regs, recs
}

func newCtx() Mem {
	return Mem{
		Global: mem.NewGlobal(1 << 16),
		Shared: mem.NewShared(1 << 12),
		Params: mem.NewParams(1, 2, 3),
	}
}

func mustProg(t *testing.T, instrs ...isa.Instr) *isa.Program {
	t.Helper()
	for i := range instrs {
		if instrs[i].Pred == (isa.PredRef{}) {
			instrs[i].Pred = isa.AlwaysPred()
		}
	}
	return &isa.Program{Name: "t", Instrs: instrs, NumRegs: 16}
}

func TestStepWritesPerLane(t *testing.T) {
	// r1 = tid + 100 in every lane.
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpIADD, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(100)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, _ := stepProgram(t, p, 32, newCtx(), nil)
	for lane := 0; lane < 32; lane++ {
		if r.Read(1, lane) != uint32(lane+100) {
			t.Fatalf("lane %d r1 = %d", lane, r.Read(1, lane))
		}
	}
}

func TestStepGuardMasksWrites(t *testing.T) {
	// p0 = tid < 8; @p0 r1 = 1 (others keep 0).
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpS32, PDst: 1,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(8)}},
		isa.Instr{Op: isa.OpMOV, Dst: 1, Src: [3]isa.Operand{isa.ImmOp(1)},
			Pred: isa.PredRef{Index: 1}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, recs := stepProgram(t, p, 32, newCtx(), nil)
	for lane := 0; lane < 32; lane++ {
		want := uint32(0)
		if lane < 8 {
			want = 1
		}
		if r.Read(1, lane) != want {
			t.Fatalf("lane %d r1 = %d, want %d", lane, r.Read(1, lane), want)
		}
	}
	if recs[2].Executing.Count() != 8 {
		t.Errorf("guarded mov executed %d lanes, want 8", recs[2].Executing.Count())
	}
	if recs[2].Active.Count() != 32 {
		t.Errorf("guarded mov active %d lanes, want 32", recs[2].Active.Count())
	}
}

func TestStepMemoryRoundTrip(t *testing.T) {
	ctx := newCtx()
	base := ctx.Global.MustAlloc(4 * 32)
	// st.global [base + 4*tid] = tid; r2 = ld.global [base + 4*tid].
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpSHL, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(2)}},
		isa.Instr{Op: isa.OpIADD, Dst: 1, Src: [3]isa.Operand{isa.RegOp(1), isa.ImmOp(base)}},
		isa.Instr{Op: isa.OpST, Space: isa.SpaceGlobal, Src: [3]isa.Operand{isa.RegOp(1), isa.RegOp(0)}},
		isa.Instr{Op: isa.OpLD, Space: isa.SpaceGlobal, Dst: 2, Src: [3]isa.Operand{isa.RegOp(1)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, recs := stepProgram(t, p, 32, ctx, nil)
	for lane := 0; lane < 32; lane++ {
		if r.Read(2, lane) != uint32(lane) {
			t.Fatalf("lane %d loaded %d", lane, r.Read(2, lane))
		}
	}
	st := recs[3]
	if !st.IsMem || !st.IsStore || st.Segments != 1 {
		t.Errorf("unit-stride store: segments = %d, want 1", st.Segments)
	}
}

func TestStepSharedAndAtomic(t *testing.T) {
	ctx := newCtx()
	// Every lane atomically adds 1 to shared word 0.
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.ImmOp(0)}},
		isa.Instr{Op: isa.OpATOM, Space: isa.SpaceShared, Dst: 1,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(1)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, _ := stepProgram(t, p, 32, ctx, nil)
	v, _ := ctx.Shared.Load32(0)
	if v != 32 {
		t.Errorf("shared counter = %d, want 32", v)
	}
	// Old values must form a permutation of 0..31.
	seen := make(map[uint32]bool)
	for lane := 0; lane < 32; lane++ {
		seen[r.Read(1, lane)] = true
	}
	if len(seen) != 32 {
		t.Errorf("atomic old values not unique: %d distinct", len(seen))
	}
}

func TestStepParamLoad(t *testing.T) {
	ctx := newCtx() // params 1,2,3
	p := mustProg(t,
		isa.Instr{Op: isa.OpLD, Space: isa.SpaceParam, Dst: 0, Src: [3]isa.Operand{isa.ImmOp(0)}, Off: 4},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, _ := stepProgram(t, p, 32, ctx, nil)
	if r.Read(0, 0) != 2 {
		t.Errorf("param[4] = %d, want 2", r.Read(0, 0))
	}
}

func TestStepShadowSuppressesGlobalWrites(t *testing.T) {
	ctx := newCtx()
	ctx.Shadow = true
	base := ctx.Global.MustAlloc(4 * 32)
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.ImmOp(base)}},
		isa.Instr{Op: isa.OpST, Space: isa.SpaceGlobal, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(0xAB)}},
		isa.Instr{Op: isa.OpATOM, Space: isa.SpaceGlobal, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(5)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, _, _ = stepProgram(t, p, 1, ctx, nil)
	v, _ := ctx.Global.Load32(base)
	if v != 0 {
		t.Errorf("shadow block wrote global memory: %d", v)
	}
	// Shared writes stay allowed in shadow mode.
	ctx2 := newCtx()
	ctx2.Shadow = true
	p2 := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.ImmOp(0)}},
		isa.Instr{Op: isa.OpST, Space: isa.SpaceShared, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(0xCD)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, _, _ = stepProgram(t, p2, 1, ctx2, nil)
	v2, _ := ctx2.Shared.Load32(0)
	if v2 != 0xCD {
		t.Error("shadow block should still write its own shared memory")
	}
}

func TestStepPerturbHook(t *testing.T) {
	flips := 0
	perturb := func(thread int, unit isa.UnitClass, golden uint32) uint32 {
		if unit == isa.UnitSP && thread == 3 {
			flips++
			return golden ^ 1
		}
		return golden
	}
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, _ := stepProgram(t, p, 32, newCtx(), perturb)
	if flips == 0 {
		t.Fatal("perturb hook never fired")
	}
	if r.Read(0, 3) != 3^1 {
		t.Errorf("lane 3 value %d, want corrupted %d", r.Read(0, 3), 3^1)
	}
	if r.Read(0, 4) != 4 {
		t.Error("uninjected lane corrupted")
	}
}

func TestStepMemFaultSurfaces(t *testing.T) {
	ctx := newCtx()
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.ImmOp(1 << 30)}},
		isa.Instr{Op: isa.OpLD, Space: isa.SpaceGlobal, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	m, ws := newTestMachine(t, p, 1, ctx, nil)
	if _, err := m.Step(ws); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(ws); err == nil {
		t.Error("out-of-range load must surface an error")
	}
}

func TestStepBranchRecords(t *testing.T) {
	// Divergent branch on tid < 16.
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpS32, PDst: 1,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(16)}},
		isa.Instr{Op: isa.OpBRA, Pred: isa.PredRef{Index: 1}, Target: 4, Reconv: 4},
		isa.Instr{Op: isa.OpIADD, Dst: 1, Src: [3]isa.Operand{isa.RegOp(1), isa.ImmOp(1)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, recs := stepProgram(t, p, 32, newCtx(), nil)
	br := recs[2]
	if !br.IsBranch || !br.Divergent || br.Taken.Count() != 16 {
		t.Errorf("branch record wrong: %+v", br)
	}
	for lane := 0; lane < 32; lane++ {
		want := uint32(0)
		if lane >= 16 {
			want = 1 // fall-through lanes ran the iadd
		}
		if r.Read(1, lane) != want {
			t.Fatalf("lane %d r1 = %d, want %d", lane, r.Read(1, lane), want)
		}
	}
}

func TestStepPredicateOps(t *testing.T) {
	// p1 = tid < 8; p2 = tid < 24; p3 = p1 && p2; p4 = !p1;
	// r1 = selp(10, 20, p3).
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpS32, PDst: 1,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(8)}},
		isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpS32, PDst: 2,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(24)}},
		isa.Instr{Op: isa.OpPAND, PDst: 3, PSrcA: 1, PSrcB: 2},
		isa.Instr{Op: isa.OpPNOT, PDst: 4, PSrcA: 1},
		isa.Instr{Op: isa.OpSELP, Dst: 1, Src: [3]isa.Operand{isa.ImmOp(10), isa.ImmOp(20)}, PSrcA: 3},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, _ := stepProgram(t, p, 32, newCtx(), nil)
	for lane := 0; lane < 32; lane++ {
		want := uint32(20)
		if lane < 8 {
			want = 10
		}
		if r.Read(1, lane) != want {
			t.Fatalf("lane %d selp = %d, want %d", lane, r.Read(1, lane), want)
		}
		if r.Pred[4].Has(lane) == (lane < 8) {
			t.Fatalf("lane %d pnot wrong", lane)
		}
	}
}

func TestStepBarrierRecord(t *testing.T) {
	p := mustProg(t,
		isa.Instr{Op: isa.OpBAR},
		isa.Instr{Op: isa.OpEXIT},
	)
	m, ws := newTestMachine(t, p, 32, newCtx(), nil)
	rec, err := m.Step(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsBarrier || !ws.Ctl.AtBarrier {
		t.Error("barrier record/state wrong")
	}
	if rec.Unit != isa.UnitCTRL {
		t.Error("barrier must be CTRL class")
	}
}

func TestStepGuardedExitRecord(t *testing.T) {
	// Half the lanes exit; the rest keep the warp alive.
	p := mustProg(t,
		isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}},
		isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpS32, PDst: 1,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(16)}},
		isa.Instr{Op: isa.OpEXIT, Pred: isa.PredRef{Index: 1}},
		isa.Instr{Op: isa.OpIADD, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(1)}},
		isa.Instr{Op: isa.OpEXIT},
	)
	_, r, recs := stepProgram(t, p, 32, newCtx(), nil)
	var exitRec *Record
	for _, rec := range recs {
		if rec.IsExit && rec.Executing.Count() == 16 {
			exitRec = rec
		}
	}
	if exitRec == nil {
		t.Fatal("guarded exit record missing")
	}
	for lane := 16; lane < 32; lane++ {
		if r.Read(1, lane) != uint32(lane+1) {
			t.Fatalf("surviving lane %d did not run the tail", lane)
		}
	}
}

func TestStepBadPC(t *testing.T) {
	p := mustProg(t, isa.Instr{Op: isa.OpNOP}, isa.Instr{Op: isa.OpEXIT})
	m, ws := newTestMachine(t, p, 32, newCtx(), nil)
	ws.Ctl.Jump(99)
	if _, err := m.Step(ws); err == nil {
		t.Error("out-of-range PC must error")
	}
}
