// Package exec implements the functional semantics of the ISA: pure
// per-lane ALU/SFU evaluation plus the architectural Machine that
// applies pre-decoded instructions to a warp's register file, memory,
// and control state.
//
// Programs are lowered once per launch by Compile into a flat stream of
// Decoded instructions (per-op step/compute functions, packed operand
// windows); the timing simulator (internal/sim) builds one Machine per
// SM and calls Machine.Step at issue time ("execute-at-issue").
// Warped-DMR (internal/core) reuses the pre-bound compute functions via
// Record.Recompute to redundantly re-execute lanes and compare results.
package exec

import (
	"warped/internal/isa"
	"warped/internal/simt"
)

// numSpecials is how many special read-only registers exist
// (RegTIDX..RegWARPID).
const numSpecials = int(isa.RegSpecialEnd-isa.SpecialBase) - 1

// Regs is the architectural register state of one warp: a view into a
// struct-of-arrays register slab (32 contiguous lane values per
// register) plus predicate masks. Views come from a RegFile (one slab
// per block) or NewRegs (a standalone single-warp slab).
type Regs struct {
	gpr  []uint32 // [reg*32+lane], numRegs*32 entries
	spec []uint32 // [special*32+lane], numSpecials*32 entries
	Pred [isa.NumPreds]simt.Mask
}

// RegFile is the register backing store of one thread block: a single
// struct-of-arrays slab indexed [warp][reg][lane], carved into per-warp
// views. One allocation per block instead of one per warp per register.
type RegFile struct {
	warps []Regs
}

// NewRegFile allocates register state for numWarps warps of numRegs
// general registers each.
func NewRegFile(numWarps, numRegs int) *RegFile {
	gpr := make([]uint32, numWarps*numRegs*32)
	spec := make([]uint32, numWarps*numSpecials*32)
	f := &RegFile{warps: make([]Regs, numWarps)}
	for i := range f.warps {
		f.warps[i] = Regs{
			gpr:  gpr[i*numRegs*32 : (i+1)*numRegs*32 : (i+1)*numRegs*32],
			spec: spec[i*numSpecials*32 : (i+1)*numSpecials*32 : (i+1)*numSpecials*32],
		}
	}
	return f
}

// Warp returns the register view of warp i.
func (f *RegFile) Warp(i int) *Regs { return &f.warps[i] }

// NewRegs allocates standalone register state for one warp with numRegs
// general registers (tests and single-warp tools; the simulator uses
// NewRegFile).
func NewRegs(numRegs int) *Regs {
	return NewRegFile(1, numRegs).Warp(0)
}

// gprLanes returns the 32-lane window of one general register.
func (r *Regs) gprLanes(reg isa.Reg) []uint32 {
	off := int(reg) * 32
	return r.gpr[off : off+32 : off+32]
}

// SetSpecial fills one special register's per-lane values.
func (r *Regs) SetSpecial(reg isa.Reg, vals [32]uint32) {
	copy(r.spec[(int(reg-isa.SpecialBase)-1)*32:], vals[:])
}

// Read returns the value of reg in the given lane slot.
func (r *Regs) Read(reg isa.Reg, lane int) uint32 {
	if reg.IsSpecial() {
		return r.spec[(int(reg-isa.SpecialBase)-1)*32+lane]
	}
	return r.gpr[int(reg)*32+lane]
}

// Set writes a general register in the given lane slot.
func (r *Regs) Set(reg isa.Reg, lane int, v uint32) {
	r.gpr[int(reg)*32+lane] = v
}

// Operand resolves an operand for a lane.
func (r *Regs) Operand(o isa.Operand, lane int) uint32 {
	if o.IsImm {
		return o.Imm
	}
	return r.Read(o.Reg, lane)
}

// Perturb is a fault-injection hook: given the thread slot (logical
// lane within the warp), the unit class, and the golden value (result
// for SP/SFU ops, effective address for LD/ST), it returns the possibly
// corrupted value. A nil Perturb means fault-free execution.
type Perturb func(thread int, unit isa.UnitClass, golden uint32) uint32

// Record describes everything the timing model and the DMR layer need
// to know about one executed warp-instruction. PC and Executing double
// as the issue-time facts selective-protection policies decide from
// (core.PolicyFacts): both are computed during the step regardless, so
// arming a policy adds no work here.
//
// Machine.Step returns a Machine-owned Record that is reused on the
// next call; its per-lane arrays are only meaningful for Executing
// lanes. Copy the Record by value to keep it past the next Step.
type Record struct {
	PC        int
	Instr     *isa.Instr
	Dec       *Decoded // pre-decoded form; nil for hand-built records
	Unit      isa.UnitClass
	Active    simt.Mask // path mask before guarding
	Executing simt.Mask // lanes that actually executed (guard applied)

	// Per-lane operand values captured at issue, for DMR re-execution.
	SrcVals [3][32]uint32

	// Result values per lane (SP/SFU data ops), or effective addresses
	// (LD/ST/ATOM). Valid only for Executing lanes.
	Vals [32]uint32

	// Memory behaviour (LD/ST/ATOM only).
	IsMem    bool
	Addrs    [32]uint32
	Segments int // coalesced transaction count (global/local)
	BankSer  int // shared-memory serialization factor
	IsStore  bool

	// Control behaviour.
	IsBranch  bool
	Taken     simt.Mask
	Divergent bool
	IsBarrier bool
	IsExit    bool

	// Registers written (for scoreboard release) and read.
	DstValid bool
	Dst      isa.Reg
}

// Recompute re-evaluates one lane of the recorded instruction from raw
// source values — the DMR layer's redundant execution. It dispatches
// through the pre-bound compute function when the record came from a
// Machine, falling back to interpreted Compute for hand-built records.
// ok is false for opcodes that are not lane-computable.
func (r *Record) Recompute(a, b, c uint32) (uint32, bool) {
	if r.Dec != nil {
		if r.Dec.compute == nil {
			return 0, false
		}
		return r.Dec.compute(a, b, c), true
	}
	return Compute(r.Instr, a, b, c)
}

// SrcRegs returns the general registers the recorded instruction reads,
// without allocating when the record carries its pre-decoded form.
func (r *Record) SrcRegs() []isa.Reg {
	if r.Dec != nil {
		return r.Dec.ReadRegs[:r.Dec.NumReads]
	}
	return r.Instr.Reads()
}

// guardMask returns the lanes of active that pass the guard predicate.
func guardMask(r *Regs, pred isa.PredRef, active simt.Mask) simt.Mask {
	if pred.None {
		return active
	}
	p := r.Pred[pred.Index]
	if pred.Negate {
		p = ^p
	}
	return active & p
}

// Compute evaluates one lane of a data-processing opcode from raw
// source values. It must stay a pure function: the DMR layer calls it
// again on a different physical lane and compares results. ok is false
// for opcodes that are not lane-computable (control, barriers).
//
// Compute dispatches through the same laneFns table the pre-decoded
// pipeline executes, so the two paths share one implementation.
func Compute(in *isa.Instr, a, b, c uint32) (val uint32, ok bool) {
	switch in.Op {
	case isa.OpSETP:
		return setpCompute(in.Cmp, in.CmpTy, a, b), true
	case isa.OpLD, isa.OpST, isa.OpATOM:
		// Effective address computation (what DMR verifies for memory ops).
		return a + uint32(in.Off), true
	case isa.OpNOP, isa.OpPAND, isa.OpPNOT, isa.OpBRA, isa.OpBAR, isa.OpEXIT:
		// Control and predicate-file ops have no lane-computable result;
		// the DMR layer verifies them by other means (or not at all).
		return 0, false
	case isa.OpMOV, isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN,
		isa.OpIMAX, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOT, isa.OpSHL,
		isa.OpSHR, isa.OpSAR, isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFFMA,
		isa.OpFMIN, isa.OpFMAX, isa.OpFNEG, isa.OpFABS, isa.OpI2F, isa.OpF2I,
		isa.OpSELP, isa.OpFSIN, isa.OpFCOS, isa.OpFSQRT, isa.OpFRSQRT,
		isa.OpFRCP, isa.OpFEX2, isa.OpFLG2, isa.OpFDIV:
		return laneFns[in.Op](a, b, c), true
	}
	return 0, false
}

func cmpOrd(c isa.CmpOp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}
