// Package exec implements the functional semantics of the ISA: pure
// per-lane ALU/SFU evaluation plus the architectural Step that applies
// one instruction to a warp's register file, memory, and control state.
//
// The timing simulator (internal/sim) calls Step at issue time
// ("execute-at-issue"); Warped-DMR (internal/core) reuses the pure
// Compute function to redundantly re-execute lanes and compare results.
package exec

import (
	"fmt"
	"math"

	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/simt"
)

// Regs is the architectural register state of one warp: up to 32 lanes
// of general registers, predicate masks, and launch-time special values.
type Regs struct {
	GPR     [][32]uint32 // [reg][lane]
	Pred    [isa.NumPreds]simt.Mask
	Special [isa.RegSpecialEnd - isa.SpecialBase][32]uint32
}

// NewRegs allocates register state for numRegs general registers.
func NewRegs(numRegs int) *Regs {
	return &Regs{GPR: make([][32]uint32, numRegs)}
}

// SetSpecial fills one special register's per-lane values.
func (r *Regs) SetSpecial(reg isa.Reg, vals [32]uint32) {
	r.Special[reg-isa.SpecialBase-1] = vals
}

// Read returns the value of reg in the given lane slot.
func (r *Regs) Read(reg isa.Reg, lane int) uint32 {
	if reg.IsSpecial() {
		return r.Special[reg-isa.SpecialBase-1][lane]
	}
	return r.GPR[reg][lane]
}

// Operand resolves an operand for a lane.
func (r *Regs) Operand(o isa.Operand, lane int) uint32 {
	if o.IsImm {
		return o.Imm
	}
	return r.Read(o.Reg, lane)
}

// Context bundles the memories visible to a warp. Shadow marks a
// redundant R-Thread block: it executes with full timing but its
// global-memory side effects are suppressed (the real duplicate block
// writes to a disjoint shadow buffer; suppression models that without
// requiring every kernel to carry one).
type Context struct {
	Global *mem.Global
	Shared *mem.Shared
	Params *mem.Params
	Shadow bool

	// Metrics, when non-nil, receives branch-behaviour and bank-conflict
	// counts as instructions execute (see internal/metrics.ForExec).
	// Nil costs one branch per executed branch/shared access.
	Metrics *metrics.Exec
}

// Perturb is a fault-injection hook: given the thread slot (logical
// lane within the warp), the unit class, and the golden value (result
// for SP/SFU ops, effective address for LD/ST), it returns the possibly
// corrupted value. A nil Perturb means fault-free execution.
type Perturb func(thread int, unit isa.UnitClass, golden uint32) uint32

// Record describes everything the timing model and the DMR layer need
// to know about one executed warp-instruction.
type Record struct {
	PC        int
	Instr     *isa.Instr
	Unit      isa.UnitClass
	Active    simt.Mask // path mask before guarding
	Executing simt.Mask // lanes that actually executed (guard applied)

	// Per-lane operand values captured at issue, for DMR re-execution.
	SrcVals [3][32]uint32

	// Result values per lane (SP/SFU data ops), or effective addresses
	// (LD/ST/ATOM). Valid only for Executing lanes.
	Vals [32]uint32

	// Memory behaviour (LD/ST/ATOM only).
	IsMem    bool
	Addrs    [32]uint32
	Segments int // coalesced transaction count (global/local)
	BankSer  int // shared-memory serialization factor
	IsStore  bool

	// Control behaviour.
	IsBranch  bool
	Taken     simt.Mask
	Divergent bool
	IsBarrier bool
	IsExit    bool

	// Registers written (for scoreboard release) and read.
	DstValid bool
	Dst      isa.Reg
}

// guardMask returns the lanes of active that pass the guard predicate.
func guardMask(r *Regs, pred isa.PredRef, active simt.Mask) simt.Mask {
	if pred.None {
		return active
	}
	p := r.Pred[pred.Index]
	if pred.Negate {
		p = ^p
	}
	return active & p
}

// Compute evaluates one lane of a data-processing opcode from raw
// source values. It must stay a pure function: the DMR layer calls it
// again on a different physical lane and compares results. ok is false
// for opcodes that are not lane-computable (control, barriers).
func Compute(in *isa.Instr, a, b, c uint32) (val uint32, ok bool) {
	f := math.Float32frombits
	fb := math.Float32bits
	switch in.Op {
	case isa.OpMOV:
		return a, true
	case isa.OpIADD:
		return a + b, true
	case isa.OpISUB:
		return a - b, true
	case isa.OpIMUL:
		return uint32(int32(a) * int32(b)), true
	case isa.OpIMAD:
		return uint32(int32(a)*int32(b)) + c, true
	case isa.OpIMIN:
		if int32(a) < int32(b) {
			return a, true
		}
		return b, true
	case isa.OpIMAX:
		if int32(a) > int32(b) {
			return a, true
		}
		return b, true
	case isa.OpAND:
		return a & b, true
	case isa.OpOR:
		return a | b, true
	case isa.OpXOR:
		return a ^ b, true
	case isa.OpNOT:
		return ^a, true
	case isa.OpSHL:
		return a << (b & 31), true
	case isa.OpSHR:
		return a >> (b & 31), true
	case isa.OpSAR:
		return uint32(int32(a) >> (b & 31)), true
	case isa.OpFADD:
		return fb(f(a) + f(b)), true
	case isa.OpFSUB:
		return fb(f(a) - f(b)), true
	case isa.OpFMUL:
		return fb(f(a) * f(b)), true
	case isa.OpFFMA:
		// Fused multiply-add: single rounding, like hardware FFMA.
		return fb(float32(float64(f(a))*float64(f(b)) + float64(f(c)))), true
	case isa.OpFMIN:
		return fb(float32(math.Min(float64(f(a)), float64(f(b))))), true
	case isa.OpFMAX:
		return fb(float32(math.Max(float64(f(a)), float64(f(b))))), true
	case isa.OpFNEG:
		return a ^ 0x80000000, true
	case isa.OpFABS:
		return a &^ 0x80000000, true
	case isa.OpI2F:
		return fb(float32(int32(a))), true
	case isa.OpF2I:
		v := f(a)
		switch {
		case math.IsNaN(float64(v)):
			return 0, true
		case v >= math.MaxInt32:
			return uint32(math.MaxInt32), true
		case v <= math.MinInt32:
			return 0x80000000, true // int32 min
		}
		return uint32(int32(v)), true
	case isa.OpSELP:
		if c != 0 {
			return a, true
		}
		return b, true
	case isa.OpFSIN:
		return fb(float32(math.Sin(float64(f(a))))), true
	case isa.OpFCOS:
		return fb(float32(math.Cos(float64(f(a))))), true
	case isa.OpFSQRT:
		return fb(float32(math.Sqrt(float64(f(a))))), true
	case isa.OpFRSQRT:
		return fb(float32(1 / math.Sqrt(float64(f(a))))), true
	case isa.OpFRCP:
		return fb(float32(1 / float64(f(a)))), true
	case isa.OpFEX2:
		return fb(float32(math.Exp2(float64(f(a))))), true
	case isa.OpFLG2:
		return fb(float32(math.Log2(float64(f(a))))), true
	case isa.OpFDIV:
		return fb(f(a) / f(b)), true
	case isa.OpLD, isa.OpST, isa.OpATOM:
		// Effective address computation (what DMR verifies for memory ops).
		return a + uint32(in.Off), true
	case isa.OpSETP:
		var t bool
		switch in.CmpTy {
		case isa.CmpS32:
			t = cmpOrd(in.Cmp, int64(int32(a)), int64(int32(b)))
		case isa.CmpU32:
			t = cmpOrd(in.Cmp, int64(a), int64(b))
		case isa.CmpF32:
			fa, fbv := float64(f(a)), float64(f(b))
			if math.IsNaN(fa) || math.IsNaN(fbv) {
				t = in.Cmp == isa.CmpNE
			} else {
				switch in.Cmp {
				case isa.CmpEQ:
					t = fa == fbv
				case isa.CmpNE:
					t = fa != fbv
				case isa.CmpLT:
					t = fa < fbv
				case isa.CmpLE:
					t = fa <= fbv
				case isa.CmpGT:
					t = fa > fbv
				case isa.CmpGE:
					t = fa >= fbv
				}
			}
		}
		if t {
			return 1, true
		}
		return 0, true
	case isa.OpNOP, isa.OpPAND, isa.OpPNOT, isa.OpBRA, isa.OpBAR, isa.OpEXIT:
		// Control and predicate-file ops have no lane-computable result;
		// the DMR layer verifies them by other means (or not at all).
		return 0, false
	}
	return 0, false
}

func cmpOrd(c isa.CmpOp, a, b int64) bool {
	switch c {
	case isa.CmpEQ:
		return a == b
	case isa.CmpNE:
		return a != b
	case isa.CmpLT:
		return a < b
	case isa.CmpLE:
		return a <= b
	case isa.CmpGT:
		return a > b
	case isa.CmpGE:
		return a >= b
	}
	return false
}

// Step executes the instruction at the warp's current PC and updates
// warp control state, registers, and memory. cfgSegBytes/cfgBanks
// parameterize the access-cost calculators. perturb may be nil.
func Step(ctx *Context, prog *isa.Program, w *simt.Warp, r *Regs,
	cfgSegBytes, cfgBanks int, perturb Perturb) (*Record, error) {

	pc := w.PC()
	if pc < 0 || pc >= len(prog.Instrs) {
		return nil, fmt.Errorf("exec: PC %d out of range in kernel %s", pc, prog.Name)
	}
	in := &prog.Instrs[pc]
	active := w.ActiveMask()
	rec := &Record{PC: pc, Instr: in, Unit: in.Op.Unit(), Active: active}

	// Branches use the guard as the branch condition.
	if in.Op == isa.OpBRA {
		rec.IsBranch = true
		taken := guardMask(r, in.Pred, active)
		rec.Taken = taken
		rec.Executing = active
		switch {
		case taken == active: // uniform taken (or unconditional)
			w.Jump(in.Target)
			if ctx.Metrics != nil {
				ctx.Metrics.UniformBranches.Inc()
			}
		case taken == 0: // uniform not-taken
			w.Advance()
			if ctx.Metrics != nil {
				ctx.Metrics.UniformBranches.Inc()
			}
		default:
			rec.Divergent = true
			if err := w.Diverge(taken, active, in.Target, pc+1, in.Reconv); err != nil {
				return nil, fmt.Errorf("exec: kernel %s pc %d: %w", prog.Name, pc, err)
			}
			if ctx.Metrics != nil {
				ctx.Metrics.DivergentBranches.Inc()
			}
		}
		return rec, nil
	}

	executing := guardMask(r, in.Pred, active)
	rec.Executing = executing

	//simlint:ignore exhaustive-switch — control and predicate ops return from their cases; every data op deliberately falls through to the shared SP/SFU/LDST path below
	switch in.Op {
	case isa.OpEXIT:
		rec.IsExit = true
		if executing != 0 {
			w.Exit(executing)
		} else {
			w.Advance()
		}
		return rec, nil

	case isa.OpBAR:
		rec.IsBarrier = true
		w.AtBarrier = true
		w.Advance()
		return rec, nil

	case isa.OpNOP:
		w.Advance()
		return rec, nil

	case isa.OpPAND, isa.OpPNOT:
		var res simt.Mask
		if in.Op == isa.OpPAND {
			res = r.Pred[in.PSrcA] & r.Pred[in.PSrcB]
		} else {
			res = ^r.Pred[in.PSrcA]
		}
		r.Pred[in.PDst] = (r.Pred[in.PDst] &^ executing) | (res & executing)
		w.Advance()
		return rec, nil
	}

	// Data-processing and memory ops: capture sources per lane.
	nSrc := in.Op.NumSrc()
	for lane := 0; lane < 32; lane++ {
		if !executing.Has(lane) {
			continue
		}
		for i := 0; i < nSrc; i++ {
			rec.SrcVals[i][lane] = r.Operand(in.Src[i], lane)
		}
		if in.Op == isa.OpSELP {
			// Fold the selector predicate into src slot 2 so Compute
			// stays pure and replayable.
			if r.Pred[in.PSrcA].Has(lane) {
				rec.SrcVals[2][lane] = 1
			} else {
				rec.SrcVals[2][lane] = 0
			}
		}
	}

	if in.Op.Unit() == isa.UnitLDST {
		return stepMem(ctx, in, w, r, rec, executing, cfgSegBytes, cfgBanks, perturb)
	}

	// Pure SP/SFU data op (including SETP).
	if in.Op == isa.OpSETP {
		var pres simt.Mask
		for lane := 0; lane < 32; lane++ {
			if !executing.Has(lane) {
				continue
			}
			v, _ := Compute(in, rec.SrcVals[0][lane], rec.SrcVals[1][lane], 0)
			if perturb != nil {
				v = perturb(lane, rec.Unit, v)
			}
			rec.Vals[lane] = v
			if v != 0 {
				pres |= 1 << uint(lane)
			}
		}
		r.Pred[in.PDst] = (r.Pred[in.PDst] &^ executing) | (pres & executing)
		w.Advance()
		return rec, nil
	}

	for lane := 0; lane < 32; lane++ {
		if !executing.Has(lane) {
			continue
		}
		v, ok := Compute(in, rec.SrcVals[0][lane], rec.SrcVals[1][lane], rec.SrcVals[2][lane])
		if !ok {
			return nil, fmt.Errorf("exec: kernel %s pc %d: op %s not computable", prog.Name, pc, in.Op)
		}
		if perturb != nil {
			v = perturb(lane, rec.Unit, v)
		}
		rec.Vals[lane] = v
	}
	if in.Op.HasDst() {
		rec.DstValid, rec.Dst = true, in.Dst
		dst := &r.GPR[in.Dst]
		for lane := 0; lane < 32; lane++ {
			if executing.Has(lane) {
				dst[lane] = rec.Vals[lane]
			}
		}
	}
	w.Advance()
	return rec, nil
}

func stepMem(ctx *Context, in *isa.Instr, w *simt.Warp, r *Regs, rec *Record,
	executing simt.Mask, segBytes, banks int, perturb Perturb) (*Record, error) {

	rec.IsMem = true
	rec.IsStore = in.Op == isa.OpST
	for lane := 0; lane < 32; lane++ {
		if !executing.Has(lane) {
			continue
		}
		addr, _ := Compute(in, rec.SrcVals[0][lane], 0, 0)
		if perturb != nil {
			addr = perturb(lane, isa.UnitLDST, addr)
		}
		rec.Addrs[lane] = addr
		rec.Vals[lane] = addr
	}

	switch in.Space {
	case isa.SpaceShared:
		rec.BankSer = mem.BankConflictDegree(rec.Addrs[:], uint32(executing), banks)
		rec.Segments = 1
		if ctx.Metrics != nil && rec.BankSer > 1 {
			ctx.Metrics.SharedBankExtra.Add(int64(rec.BankSer - 1))
		}
	case isa.SpaceGlobal, isa.SpaceParam, isa.SpaceLocal:
		rec.Segments = mem.CoalesceSegments(rec.Addrs[:], uint32(executing), segBytes)
		rec.BankSer = 1
	}

	load32 := func(addr uint32) (uint32, error) {
		switch in.Space {
		case isa.SpaceShared:
			return ctx.Shared.Load32(addr)
		case isa.SpaceParam:
			return ctx.Params.Load32(addr)
		case isa.SpaceGlobal, isa.SpaceLocal:
			return ctx.Global.Load32(addr)
		}
		return 0, fmt.Errorf("exec: load from unknown space %d", in.Space)
	}
	store32 := func(addr, v uint32) error {
		switch in.Space {
		case isa.SpaceShared:
			return ctx.Shared.Store32(addr, v)
		case isa.SpaceParam:
			return fmt.Errorf("exec: store to param space")
		case isa.SpaceGlobal, isa.SpaceLocal:
			return ctx.Global.Store32(addr, v)
		}
		return fmt.Errorf("exec: store to unknown space %d", in.Space)
	}

	switch in.Op {
	case isa.OpLD:
		rec.DstValid, rec.Dst = true, in.Dst
		dst := &r.GPR[in.Dst]
		for lane := 0; lane < 32; lane++ {
			if !executing.Has(lane) {
				continue
			}
			v, err := load32(rec.Addrs[lane])
			if err != nil {
				return nil, fmt.Errorf("exec: pc %d lane %d: %w", rec.PC, lane, err)
			}
			dst[lane] = v
		}
	case isa.OpST:
		if ctx.Shadow && in.Space != isa.SpaceShared {
			break // redundant block: global stores go to its shadow buffer
		}
		for lane := 0; lane < 32; lane++ {
			if !executing.Has(lane) {
				continue
			}
			if err := store32(rec.Addrs[lane], rec.SrcVals[1][lane]); err != nil {
				return nil, fmt.Errorf("exec: pc %d lane %d: %w", rec.PC, lane, err)
			}
		}
	case isa.OpATOM:
		rec.DstValid, rec.Dst = true, in.Dst
		dst := &r.GPR[in.Dst]
		for lane := 0; lane < 32; lane++ {
			if !executing.Has(lane) {
				continue
			}
			var old uint32
			var err error
			switch {
			case in.Space == isa.SpaceShared:
				old, err = ctx.Shared.AtomicAdd32(rec.Addrs[lane], rec.SrcVals[1][lane])
			case ctx.Shadow:
				old, err = ctx.Global.Load32(rec.Addrs[lane]) // read-only in shadow mode
			default:
				old, err = ctx.Global.AtomicAdd32(rec.Addrs[lane], rec.SrcVals[1][lane])
			}
			if err != nil {
				return nil, fmt.Errorf("exec: pc %d lane %d: %w", rec.PC, lane, err)
			}
			dst[lane] = old
		}
	default:
		return nil, fmt.Errorf("exec: pc %d: %s is not a memory op", rec.PC, in.Op)
	}
	w.Advance()
	return rec, nil
}
