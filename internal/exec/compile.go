package exec

import (
	"fmt"
	"math"

	"warped/internal/isa"
)

// laneFn evaluates one lane of a data-processing opcode from raw source
// values. Unused source slots are ignored by the bound function, so the
// caller may pass whatever happens to be in those registers.
type laneFn func(a, b, c uint32) uint32

// stepFn applies one pre-decoded instruction to a warp. Each opcode
// family binds its own step function at compile time, so the per-cycle
// path is a single indirect call instead of a switch walk.
type stepFn func(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error)

// srcOp is a pre-resolved source operand: either an immediate or a
// 32-lane window into the register slab, computed once at compile time.
const (
	srcImm uint8 = iota
	srcGPR
	srcSpec
)

type srcOp struct {
	lanesOff int32  // element offset of lane 0 within the gpr/spec slab
	imm      uint32 // immediate value (kind == srcImm)
	kind     uint8
}

// view resolves the operand against a warp's registers: a non-nil slice
// of 32 lane values, or (nil, imm) for immediates.
func (s *srcOp) view(r *Regs) ([]uint32, uint32) {
	if s.kind == srcGPR {
		return r.gpr[s.lanesOff : s.lanesOff+32 : s.lanesOff+32], 0
	}
	if s.kind == srcSpec {
		return r.spec[s.lanesOff : s.lanesOff+32 : s.lanesOff+32], 0
	}
	return nil, s.imm
}

// Decoded is one pre-decoded instruction: every per-cycle decision the
// interpreter used to re-derive from isa.Instr — unit class, operand
// windows, guard, compute and step functions — resolved once at launch.
type Decoded struct {
	Instr *isa.Instr // source instruction (diagnostics, disassembly)

	compute laneFn // pure per-lane evaluation; nil for control/pred ops
	step    stepFn

	Op    isa.Opcode
	Unit  isa.UnitClass
	Space isa.MemSpace

	NSrc     uint8
	NumReads uint8 // general registers read (ReadRegs[:NumReads])
	HasDst   bool
	selp     bool // fold the selector predicate into source slot 2

	Dst      isa.Reg
	ReadRegs [3]isa.Reg

	Pred               isa.PredRef
	PDst, PSrcA, PSrcB uint8

	src [3]srcOp
	Off int32

	Target, Reconv int
}

// Compiled is a program lowered to its flat pre-decoded stream. Compile
// once per launch; the stream is immutable and safe to share across SMs.
type Compiled struct {
	prog *isa.Program
	code []Decoded
}

// Prog returns the source program.
func (c *Compiled) Prog() *isa.Program { return c.prog }

// Code returns the pre-decoded instruction stream, indexed by PC.
func (c *Compiled) Code() []Decoded { return c.code }

// Compile lowers a program into its pre-decoded form: per-op step and
// compute functions, packed operand windows, and precomputed read sets.
func Compile(p *isa.Program) (*Compiled, error) {
	code := make([]Decoded, len(p.Instrs))
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		d := &code[pc]
		d.Instr = in
		d.Op = in.Op
		d.Unit = in.Op.Unit()
		d.Space = in.Space
		d.NSrc = uint8(in.Op.NumSrc())
		d.HasDst = in.Op.HasDst()
		d.selp = in.Op == isa.OpSELP
		d.Dst = in.Dst
		d.Pred = in.Pred
		d.PDst, d.PSrcA, d.PSrcB = in.PDst, in.PSrcA, in.PSrcB
		d.Off = in.Off
		d.Target, d.Reconv = in.Target, in.Reconv
		for i := 0; i < int(d.NSrc); i++ {
			o := in.Src[i]
			switch {
			case o.IsImm:
				d.src[i] = srcOp{kind: srcImm, imm: o.Imm}
			case o.Reg.IsSpecial():
				d.src[i] = srcOp{kind: srcSpec, lanesOff: (int32(o.Reg-isa.SpecialBase) - 1) * 32}
			default:
				d.src[i] = srcOp{kind: srcGPR, lanesOff: int32(o.Reg) * 32}
				d.ReadRegs[d.NumReads] = o.Reg
				d.NumReads++
			}
		}
		d.compute = bindLane(in)
		d.step = bindStep(in.Op)
		if d.step == nil {
			return nil, fmt.Errorf("exec: compile %s pc %d: no execution binding for op %s", p.Name, pc, in.Op)
		}
	}
	return &Compiled{prog: p, code: code}, nil
}

// bindStep selects the step function for an opcode. A nil return means
// the opcode has no execution semantics — Compile turns it into an
// error so an unbound opcode fails at launch, not mid-kernel.
func bindStep(op isa.Opcode) stepFn {
	switch op {
	case isa.OpBRA:
		return stepBranch
	case isa.OpEXIT:
		return stepExit
	case isa.OpBAR:
		return stepBarrier
	case isa.OpNOP:
		return stepNOP
	case isa.OpPAND, isa.OpPNOT:
		return stepPredLogic
	case isa.OpSETP:
		return stepSETP
	case isa.OpLD, isa.OpST, isa.OpATOM:
		return stepMemOp
	case isa.OpMOV, isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN,
		isa.OpIMAX, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOT, isa.OpSHL,
		isa.OpSHR, isa.OpSAR, isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFFMA,
		isa.OpFMIN, isa.OpFMAX, isa.OpFNEG, isa.OpFABS, isa.OpI2F, isa.OpF2I,
		isa.OpSELP, isa.OpFSIN, isa.OpFCOS, isa.OpFSQRT, isa.OpFRSQRT,
		isa.OpFRCP, isa.OpFEX2, isa.OpFLG2, isa.OpFDIV:
		return stepData
	}
	return nil
}

// bindLane resolves the pure compute function for an instruction.
// Plain data ops share the static laneFns table; SETP and memory ops
// close over their comparison/offset fields so the bound function stays
// a pure (a,b,c) → value map, replayable by the DMR layer.
func bindLane(in *isa.Instr) laneFn {
	switch in.Op {
	case isa.OpSETP:
		cmp, ty := in.Cmp, in.CmpTy
		return func(a, b, _ uint32) uint32 { return setpCompute(cmp, ty, a, b) }
	case isa.OpLD, isa.OpST, isa.OpATOM:
		off := uint32(in.Off)
		return func(a, _, _ uint32) uint32 { return a + off }
	case isa.OpNOP, isa.OpPAND, isa.OpPNOT, isa.OpBRA, isa.OpBAR, isa.OpEXIT:
		return nil
	case isa.OpMOV, isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN,
		isa.OpIMAX, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOT, isa.OpSHL,
		isa.OpSHR, isa.OpSAR, isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFFMA,
		isa.OpFMIN, isa.OpFMAX, isa.OpFNEG, isa.OpFABS, isa.OpI2F, isa.OpF2I,
		isa.OpSELP, isa.OpFSIN, isa.OpFCOS, isa.OpFSQRT, isa.OpFRSQRT,
		isa.OpFRCP, isa.OpFEX2, isa.OpFLG2, isa.OpFDIV:
		return laneFns[in.Op]
	}
	return nil
}

// laneFns is the per-op execution table for plain data opcodes: the
// single implementation of the ISA's lane semantics. Compute and the
// pre-decoded pipeline both dispatch through it, so the interpreted and
// compiled paths cannot drift apart.
var laneFns = [isa.NumOpcodes]laneFn{
	isa.OpMOV:  func(a, _, _ uint32) uint32 { return a },
	isa.OpIADD: func(a, b, _ uint32) uint32 { return a + b },
	isa.OpISUB: func(a, b, _ uint32) uint32 { return a - b },
	isa.OpIMUL: func(a, b, _ uint32) uint32 { return uint32(int32(a) * int32(b)) },
	isa.OpIMAD: func(a, b, c uint32) uint32 { return uint32(int32(a)*int32(b)) + c },
	isa.OpIMIN: func(a, b, _ uint32) uint32 {
		if int32(a) < int32(b) {
			return a
		}
		return b
	},
	isa.OpIMAX: func(a, b, _ uint32) uint32 {
		if int32(a) > int32(b) {
			return a
		}
		return b
	},
	isa.OpAND: func(a, b, _ uint32) uint32 { return a & b },
	isa.OpOR:  func(a, b, _ uint32) uint32 { return a | b },
	isa.OpXOR: func(a, b, _ uint32) uint32 { return a ^ b },
	isa.OpNOT: func(a, _, _ uint32) uint32 { return ^a },
	isa.OpSHL: func(a, b, _ uint32) uint32 { return a << (b & 31) },
	isa.OpSHR: func(a, b, _ uint32) uint32 { return a >> (b & 31) },
	isa.OpSAR: func(a, b, _ uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
	isa.OpFADD: func(a, b, _ uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a) + math.Float32frombits(b))
	},
	isa.OpFSUB: func(a, b, _ uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a) - math.Float32frombits(b))
	},
	isa.OpFMUL: func(a, b, _ uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a) * math.Float32frombits(b))
	},
	isa.OpFFMA: func(a, b, c uint32) uint32 {
		// Fused multiply-add: single rounding, like hardware FFMA.
		f := math.Float32frombits
		return math.Float32bits(float32(float64(f(a))*float64(f(b)) + float64(f(c))))
	},
	isa.OpFMIN: func(a, b, _ uint32) uint32 {
		f := math.Float32frombits
		return math.Float32bits(float32(math.Min(float64(f(a)), float64(f(b)))))
	},
	isa.OpFMAX: func(a, b, _ uint32) uint32 {
		f := math.Float32frombits
		return math.Float32bits(float32(math.Max(float64(f(a)), float64(f(b)))))
	},
	isa.OpFNEG: func(a, _, _ uint32) uint32 { return a ^ 0x80000000 },
	isa.OpFABS: func(a, _, _ uint32) uint32 { return a &^ 0x80000000 },
	isa.OpI2F:  func(a, _, _ uint32) uint32 { return math.Float32bits(float32(int32(a))) },
	isa.OpF2I: func(a, _, _ uint32) uint32 {
		v := math.Float32frombits(a)
		switch {
		case math.IsNaN(float64(v)):
			return 0
		case v >= math.MaxInt32:
			return uint32(math.MaxInt32)
		case v <= math.MinInt32:
			return 0x80000000 // int32 min
		}
		return uint32(int32(v))
	},
	isa.OpSELP: func(a, b, c uint32) uint32 {
		if c != 0 {
			return a
		}
		return b
	},
	isa.OpFSIN: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(math.Sin(float64(math.Float32frombits(a)))))
	},
	isa.OpFCOS: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(math.Cos(float64(math.Float32frombits(a)))))
	},
	isa.OpFSQRT: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(math.Sqrt(float64(math.Float32frombits(a)))))
	},
	isa.OpFRSQRT: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(1 / math.Sqrt(float64(math.Float32frombits(a)))))
	},
	isa.OpFRCP: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(1 / float64(math.Float32frombits(a))))
	},
	isa.OpFEX2: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(math.Exp2(float64(math.Float32frombits(a)))))
	},
	isa.OpFLG2: func(a, _, _ uint32) uint32 {
		return math.Float32bits(float32(math.Log2(float64(math.Float32frombits(a)))))
	},
	isa.OpFDIV: func(a, b, _ uint32) uint32 {
		return math.Float32bits(math.Float32frombits(a) / math.Float32frombits(b))
	},
}

// setpCompute evaluates a SETP comparison to 0 or 1.
func setpCompute(cmp isa.CmpOp, ty isa.CmpType, a, b uint32) uint32 {
	var t bool
	switch ty {
	case isa.CmpS32:
		t = cmpOrd(cmp, int64(int32(a)), int64(int32(b)))
	case isa.CmpU32:
		t = cmpOrd(cmp, int64(a), int64(b))
	case isa.CmpF32:
		fa := float64(math.Float32frombits(a))
		fb := float64(math.Float32frombits(b))
		if math.IsNaN(fa) || math.IsNaN(fb) {
			t = cmp == isa.CmpNE
		} else {
			switch cmp {
			case isa.CmpEQ:
				t = fa == fb
			case isa.CmpNE:
				t = fa != fb
			case isa.CmpLT:
				t = fa < fb
			case isa.CmpLE:
				t = fa <= fb
			case isa.CmpGT:
				t = fa > fb
			case isa.CmpGE:
				t = fa >= fb
			}
		}
	}
	if t {
		return 1
	}
	return 0
}
