package exec

import (
	"fmt"
	"math/bits"

	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/simt"
)

// Mem bundles the memories visible to a warp. Shadow marks a redundant
// R-Thread block: it executes with full timing but its global-memory
// side effects are suppressed (the real duplicate block writes to a
// disjoint shadow buffer; suppression models that without requiring
// every kernel to carry one).
type Mem struct {
	Global *mem.Global
	Shared *mem.Shared
	Params *mem.Params
	Shadow bool
}

// WarpState is everything Machine.Step needs about one warp: its SIMT
// control state, its register-file view, and the memories it sees.
type WarpState struct {
	Ctl  *simt.Warp
	Regs *Regs
	Mem  Mem
}

// Opts configures a Machine at construction.
type Opts struct {
	SegBytes int // coalescing segment size (global/local accesses)
	Banks    int // shared-memory bank count

	// Metrics, when non-nil, receives branch-behaviour and bank-conflict
	// counts as instructions execute (see internal/metrics.ForExec).
	// Nil costs one branch per executed branch/shared access.
	Metrics *metrics.Exec

	// Perturb is the fault-injection hook; nil means fault-free.
	Perturb Perturb
}

// Machine executes a pre-decoded program. It replaces the old
// Step(ctx, prog, w, r, segBytes, banks, perturb) parameter list: build
// one Machine per SM per launch, then call Step once per issued warp
// instruction.
//
// The Record returned by Step is owned by the Machine and reused on the
// next call — the steady-state issue path allocates nothing. Consumers
// that buffer a record past the next Step (the DMR replay queue, trace
// sinks) must copy it by value.
type Machine struct {
	code     []Decoded
	prog     *isa.Program
	segBytes int
	banks    int
	met      *metrics.Exec
	perturb  Perturb
	rec      Record
}

// NewMachine builds a Machine over a compiled program.
func NewMachine(c *Compiled, o Opts) *Machine {
	return &Machine{
		code:     c.code,
		prog:     c.prog,
		segBytes: o.SegBytes,
		banks:    o.Banks,
		met:      o.Metrics,
		perturb:  o.Perturb,
	}
}

// Code returns the pre-decoded stream, indexed by PC.
func (m *Machine) Code() []Decoded { return m.code }

// SetMetrics replaces the pre-resolved exec instrument set.
func (m *Machine) SetMetrics(em *metrics.Exec) { m.met = em }

// SetPerturb replaces the fault-injection hook.
func (m *Machine) SetPerturb(p Perturb) { m.perturb = p }

// Step executes the instruction at the warp's current PC and updates
// warp control state, registers, and memory. The returned Record is
// valid until the next Step call on this Machine.
func (m *Machine) Step(ws *WarpState) (*Record, error) {
	pc := ws.Ctl.PC()
	if pc < 0 || pc >= len(m.code) {
		return nil, fmt.Errorf("exec: PC %d out of range in kernel %s", pc, m.prog.Name)
	}
	d := &m.code[pc]
	rec := &m.rec
	// Reset the scalar fields only: the per-lane arrays (SrcVals, Vals,
	// Addrs) are always read under the Executing mask, so stale lanes
	// from the previous instruction are never observed.
	rec.PC = pc
	rec.Instr = d.Instr
	rec.Dec = d
	rec.Unit = d.Unit
	rec.Active = ws.Ctl.ActiveMask()
	rec.Executing = 0
	rec.IsMem = false
	rec.Segments = 0
	rec.BankSer = 0
	rec.IsStore = false
	rec.IsBranch = false
	rec.Taken = 0
	rec.Divergent = false
	rec.IsBarrier = false
	rec.IsExit = false
	rec.DstValid = false
	rec.Dst = 0
	return d.step(m, d, ws, rec)
}

// Branches use the guard as the branch condition.
func stepBranch(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	rec.IsBranch = true
	active := rec.Active
	taken := guardMask(ws.Regs, d.Pred, active)
	rec.Taken = taken
	rec.Executing = active
	switch {
	case taken == active: // uniform taken (or unconditional)
		ws.Ctl.Jump(d.Target)
		if m.met != nil {
			m.met.UniformBranches.Inc()
		}
	case taken == 0: // uniform not-taken
		ws.Ctl.Advance()
		if m.met != nil {
			m.met.UniformBranches.Inc()
		}
	default:
		rec.Divergent = true
		if err := ws.Ctl.Diverge(taken, active, d.Target, rec.PC+1, d.Reconv); err != nil {
			return nil, fmt.Errorf("exec: kernel %s pc %d: %w", m.prog.Name, rec.PC, err)
		}
		if m.met != nil {
			m.met.DivergentBranches.Inc()
		}
	}
	return rec, nil
}

func stepExit(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	executing := guardMask(ws.Regs, d.Pred, rec.Active)
	rec.Executing = executing
	rec.IsExit = true
	if executing != 0 {
		ws.Ctl.Exit(executing)
	} else {
		ws.Ctl.Advance()
	}
	return rec, nil
}

func stepBarrier(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	executing := guardMask(ws.Regs, d.Pred, rec.Active)
	rec.Executing = executing
	rec.IsBarrier = true
	ws.Ctl.AtBarrier = true
	ws.Ctl.Advance()
	return rec, nil
}

func stepNOP(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	rec.Executing = guardMask(ws.Regs, d.Pred, rec.Active)
	ws.Ctl.Advance()
	return rec, nil
}

func stepPredLogic(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	r := ws.Regs
	executing := guardMask(r, d.Pred, rec.Active)
	rec.Executing = executing
	var res simt.Mask
	if d.Op == isa.OpPAND {
		res = r.Pred[d.PSrcA] & r.Pred[d.PSrcB]
	} else {
		res = ^r.Pred[d.PSrcA]
	}
	r.Pred[d.PDst] = (r.Pred[d.PDst] &^ executing) | (res & executing)
	ws.Ctl.Advance()
	return rec, nil
}

func stepSETP(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	r := ws.Regs
	executing := guardMask(r, d.Pred, rec.Active)
	rec.Executing = executing
	lanes0, imm0 := d.src[0].view(r)
	lanes1, imm1 := d.src[1].view(r)
	fn := d.compute
	var pres simt.Mask
	for rem := uint32(executing); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		a, b := imm0, imm1
		if lanes0 != nil {
			a = lanes0[lane]
		}
		if lanes1 != nil {
			b = lanes1[lane]
		}
		rec.SrcVals[0][lane] = a
		rec.SrcVals[1][lane] = b
		v := fn(a, b, 0)
		if m.perturb != nil {
			v = m.perturb(lane, d.Unit, v)
		}
		rec.Vals[lane] = v
		if v != 0 {
			pres |= 1 << uint(lane)
		}
	}
	r.Pred[d.PDst] = (r.Pred[d.PDst] &^ executing) | (pres & executing)
	ws.Ctl.Advance()
	return rec, nil
}

// stepData executes SP/SFU data ops (including SELP): capture sources,
// compute per lane through the pre-bound function, apply perturbation,
// write the destination window.
func stepData(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	r := ws.Regs
	executing := guardMask(r, d.Pred, rec.Active)
	rec.Executing = executing
	var lanes [3][]uint32
	var imms [3]uint32
	n := int(d.NSrc)
	for i := 0; i < n; i++ {
		lanes[i], imms[i] = d.src[i].view(r)
	}
	var sel simt.Mask
	if d.selp {
		// Fold the selector predicate into src slot 2 so the compute
		// function stays pure and replayable.
		sel = r.Pred[d.PSrcA]
	}
	var dst []uint32
	if d.HasDst {
		rec.DstValid, rec.Dst = true, d.Dst
		dst = r.gprLanes(d.Dst)
	}
	fn := d.compute
	for rem := uint32(executing); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		var a, b, c uint32
		a = imms[0]
		if lanes[0] != nil {
			a = lanes[0][lane]
		}
		rec.SrcVals[0][lane] = a
		if n > 1 {
			b = imms[1]
			if lanes[1] != nil {
				b = lanes[1][lane]
			}
			rec.SrcVals[1][lane] = b
		}
		if n > 2 {
			c = imms[2]
			if lanes[2] != nil {
				c = lanes[2][lane]
			}
			rec.SrcVals[2][lane] = c
		}
		if d.selp {
			if sel.Has(lane) {
				c = 1
			} else {
				c = 0
			}
			rec.SrcVals[2][lane] = c
		}
		v := fn(a, b, c)
		if m.perturb != nil {
			v = m.perturb(lane, d.Unit, v)
		}
		rec.Vals[lane] = v
		if dst != nil {
			dst[lane] = v
		}
	}
	ws.Ctl.Advance()
	return rec, nil
}

func stepMemOp(m *Machine, d *Decoded, ws *WarpState, rec *Record) (*Record, error) {
	r := ws.Regs
	executing := guardMask(r, d.Pred, rec.Active)
	rec.Executing = executing
	rec.IsMem = true
	rec.IsStore = d.Op == isa.OpST

	lanes0, imm0 := d.src[0].view(r)
	var lanes1 []uint32
	var imm1 uint32
	if d.NSrc > 1 {
		lanes1, imm1 = d.src[1].view(r)
	}
	off := uint32(d.Off)
	for rem := uint32(executing); rem != 0; rem &= rem - 1 {
		lane := bits.TrailingZeros32(rem)
		a := imm0
		if lanes0 != nil {
			a = lanes0[lane]
		}
		rec.SrcVals[0][lane] = a
		if d.NSrc > 1 {
			b := imm1
			if lanes1 != nil {
				b = lanes1[lane]
			}
			rec.SrcVals[1][lane] = b
		}
		addr := a + off
		if m.perturb != nil {
			addr = m.perturb(lane, isa.UnitLDST, addr)
		}
		rec.Addrs[lane] = addr
		rec.Vals[lane] = addr
	}

	switch d.Space {
	case isa.SpaceShared:
		rec.BankSer = mem.BankConflictDegree(rec.Addrs[:], uint32(executing), m.banks)
		rec.Segments = 1
		if m.met != nil && rec.BankSer > 1 {
			m.met.SharedBankExtra.Add(int64(rec.BankSer - 1))
		}
	case isa.SpaceGlobal, isa.SpaceParam, isa.SpaceLocal:
		rec.Segments = mem.CoalesceSegments(rec.Addrs[:], uint32(executing), m.segBytes)
		rec.BankSer = 1
	}

	switch d.Op {
	case isa.OpLD:
		rec.DstValid, rec.Dst = true, d.Dst
		dst := r.gprLanes(d.Dst)
		for rem := uint32(executing); rem != 0; rem &= rem - 1 {
			lane := bits.TrailingZeros32(rem)
			v, err := ws.load32(d.Space, rec.Addrs[lane])
			if err != nil {
				return nil, fmt.Errorf("exec: pc %d lane %d: %w", rec.PC, lane, err)
			}
			dst[lane] = v
		}
	case isa.OpST:
		if ws.Mem.Shadow && d.Space != isa.SpaceShared {
			break // redundant block: global stores go to its shadow buffer
		}
		for rem := uint32(executing); rem != 0; rem &= rem - 1 {
			lane := bits.TrailingZeros32(rem)
			if err := ws.store32(d.Space, rec.Addrs[lane], rec.SrcVals[1][lane]); err != nil {
				return nil, fmt.Errorf("exec: pc %d lane %d: %w", rec.PC, lane, err)
			}
		}
	case isa.OpATOM:
		rec.DstValid, rec.Dst = true, d.Dst
		dst := r.gprLanes(d.Dst)
		for rem := uint32(executing); rem != 0; rem &= rem - 1 {
			lane := bits.TrailingZeros32(rem)
			var old uint32
			var err error
			switch {
			case d.Space == isa.SpaceShared:
				old, err = ws.Mem.Shared.AtomicAdd32(rec.Addrs[lane], rec.SrcVals[1][lane])
			case ws.Mem.Shadow:
				old, err = ws.Mem.Global.Load32(rec.Addrs[lane]) // read-only in shadow mode
			default:
				old, err = ws.Mem.Global.AtomicAdd32(rec.Addrs[lane], rec.SrcVals[1][lane])
			}
			if err != nil {
				return nil, fmt.Errorf("exec: pc %d lane %d: %w", rec.PC, lane, err)
			}
			dst[lane] = old
		}
	default:
		return nil, fmt.Errorf("exec: pc %d: %s is not a memory op", rec.PC, d.Op)
	}
	ws.Ctl.Advance()
	return rec, nil
}

func (ws *WarpState) load32(space isa.MemSpace, addr uint32) (uint32, error) {
	switch space {
	case isa.SpaceShared:
		return ws.Mem.Shared.Load32(addr)
	case isa.SpaceParam:
		return ws.Mem.Params.Load32(addr)
	case isa.SpaceGlobal, isa.SpaceLocal:
		return ws.Mem.Global.Load32(addr)
	}
	return 0, fmt.Errorf("exec: load from unknown space %d", space)
}

func (ws *WarpState) store32(space isa.MemSpace, addr, v uint32) error {
	switch space {
	case isa.SpaceShared:
		return ws.Mem.Shared.Store32(addr, v)
	case isa.SpaceParam:
		return fmt.Errorf("exec: store to param space")
	case isa.SpaceGlobal, isa.SpaceLocal:
		return ws.Mem.Global.Store32(addr, v)
	}
	return fmt.Errorf("exec: store to unknown space %d", space)
}
