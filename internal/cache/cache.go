// Package cache implements the set-associative cache model used for
// the GPU's L1 (per SM) and L2 (chip-wide) data caches. The simulator
// is timing-directed: caches decide *latency*, while data always comes
// from the flat functional memory, so the model tracks only tags.
//
// The Fermi-era policies modeled: allocate-on-read-miss, LRU
// replacement, and write-through without write-allocate (stores go to
// DRAM and do not install lines, matching Fermi's L1 behaviour for
// global stores).
package cache

import "fmt"

// Config sizes a cache.
type Config struct {
	Sets      int // number of sets (power of two)
	Ways      int // associativity
	LineBytes int // line size (power of two)
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0 || c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("cache: Sets must be a positive power of two, got %d", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes must be a positive power of two, got %d", c.LineBytes)
	}
	return nil
}

// SizeBytes returns the cache capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// line is one tag-store entry.
type line struct {
	tag   uint32
	valid bool
	lru   uint64
}

// Cache is a set-associative tag store.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64

	Hits   int64
	Misses int64
}

// New builds a cache; panics on invalid configuration (caller bug).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint32) (set int, tag uint32) {
	lineAddr := addr / uint32(c.cfg.LineBytes)
	return int(lineAddr) & (c.cfg.Sets - 1), lineAddr / uint32(c.cfg.Sets)
}

// Lookup probes the cache without modifying state.
func (c *Cache) Lookup(addr uint32) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access probes the cache for a read; on a miss the line is allocated
// with LRU replacement. Returns whether it hit.
func (c *Cache) Access(addr uint32) bool {
	c.clock++
	set, tag := c.index(addr)
	ways := c.sets[set]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			c.Hits++
			return true
		}
		if ways[i].lru < ways[victim].lru || !ways[i].valid && ways[victim].valid {
			victim = i
		}
	}
	// Prefer an invalid way, else the least recently used.
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	ways[victim] = line{tag: tag, valid: true, lru: c.clock}
	c.Misses++
	return false
}

// Invalidate drops the line containing addr if present (used by
// write-through stores so later reads observe DRAM latency honestly
// rather than hitting a stale tag installed by another warp's read).
func (c *Cache) Invalidate(addr uint32) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			c.sets[set][i].valid = false
			return
		}
	}
}

// HitRate returns hits / (hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Reset clears all tags and counters.
func (c *Cache) Reset() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
	c.clock, c.Hits, c.Misses = 0, 0, 0
}
