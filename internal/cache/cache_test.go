package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Sets: 64, Ways: 4, LineBytes: 128}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.SizeBytes() != 64*4*128 {
		t.Error("SizeBytes wrong")
	}
	for _, bad := range []Config{
		{Sets: 0, Ways: 4, LineBytes: 128},
		{Sets: 3, Ways: 4, LineBytes: 128},
		{Sets: 64, Ways: 0, LineBytes: 128},
		{Sets: 64, Ways: 4, LineBytes: 100},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted bad config %+v", bad)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, LineBytes: 128})
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different word.
	if !c.Access(0x107C) {
		t.Error("same-line access missed")
	}
	// Different line.
	if c.Access(0x2000) {
		t.Error("different line hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate %v", c.HitRate())
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct-mapped on one set: 2 ways, lines mapping to set 0.
	c := New(Config{Sets: 1, Ways: 2, LineBytes: 128})
	a, b, d := uint32(0), uint32(128), uint32(256)
	c.Access(a) // miss, install
	c.Access(b) // miss, install
	c.Access(a) // hit: a is now MRU
	c.Access(d) // miss: must evict b (LRU)
	if !c.Lookup(a) {
		t.Error("MRU line evicted")
	}
	if c.Lookup(b) {
		t.Error("LRU line survived")
	}
	if !c.Lookup(d) {
		t.Error("new line missing")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, LineBytes: 128})
	c.Access(0x1000)
	c.Invalidate(0x1040) // same line
	if c.Lookup(0x1000) {
		t.Error("invalidate missed the line")
	}
	c.Invalidate(0x9999) // absent: no-op, no panic
}

func TestLookupDoesNotAllocate(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, LineBytes: 128})
	if c.Lookup(0x4000) {
		t.Error("phantom hit")
	}
	if c.Access(0x4000) {
		t.Error("Lookup must not install lines")
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, LineBytes: 128})
	c.Access(0x1000)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Lookup(0x1000) {
		t.Error("reset incomplete")
	}
}

// Property: a working set that fits in the cache has no capacity
// misses — after a warm-up pass every access hits.
func TestWorkingSetFitsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Sets: 8, Ways: 4, LineBytes: 64}
		c := New(cfg)
		// Pick distinct lines up to capacity, spread across sets.
		nLines := cfg.Sets * cfg.Ways
		addrs := make([]uint32, 0, nLines)
		for set := 0; set < cfg.Sets; set++ {
			for way := 0; way < cfg.Ways; way++ {
				lineAddr := uint32(way*cfg.Sets+set) * uint32(cfg.LineBytes)
				addrs = append(addrs, lineAddr+uint32(rng.Intn(cfg.LineBytes))&^3)
			}
		}
		for _, a := range addrs {
			c.Access(a)
		}
		for _, a := range addrs {
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses equals total accesses, and the hit rate stays
// within [0,1] for arbitrary address streams.
func TestCountersConsistentQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Sets: 4, Ways: 2, LineBytes: 32})
		total := int64(n)
		for i := int64(0); i < total; i++ {
			c.Access(uint32(rng.Intn(1 << 12)))
		}
		return c.Hits+c.Misses == total && c.HitRate() >= 0 && c.HitRate() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
