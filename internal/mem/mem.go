// Package mem models the GPGPU memory system: a flat global memory
// with a bump allocator (standing in for cudaMalloc), per-block shared
// memory, a read-only kernel parameter space, and the two access-cost
// calculators the timing model needs — global coalescing into 128-byte
// segments and shared-memory bank-conflict counting.
//
// Warped-DMR assumes memory is ECC-protected (as on Fermi), so the
// simulator treats loaded data as always correct and DMR only verifies
// address computation; nothing in this package injects faults.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Global is the device global memory: a flat byte-addressable space
// shared by all SMs, plus a bump allocator.
type Global struct {
	data []byte
	brk  uint32
}

// NewGlobal creates a global memory of the given size in bytes.
// Address 0 is kept unallocated so 0 can serve as a null pointer.
func NewGlobal(size int) *Global {
	if size < 512 {
		size = 512
	}
	return &Global{data: make([]byte, size), brk: 256}
}

// Size returns the total size in bytes.
func (g *Global) Size() int { return len(g.data) }

// Alloc reserves n bytes and returns the device address. Allocations
// are 256-byte aligned, like cudaMalloc, so unit-stride warp accesses
// from element 0 coalesce into whole segments.
func (g *Global) Alloc(n int) (uint32, error) {
	if n < 0 {
		return 0, fmt.Errorf("mem: negative allocation %d", n)
	}
	aligned := (uint32(n) + 255) &^ 255
	if uint64(g.brk)+uint64(aligned) > uint64(len(g.data)) {
		return 0, fmt.Errorf("mem: out of global memory (want %d, used %d of %d)", n, g.brk, len(g.data))
	}
	addr := g.brk
	g.brk += aligned
	return addr, nil
}

// MustAlloc is Alloc that panics on exhaustion; for test and kernel setup.
func (g *Global) MustAlloc(n int) uint32 {
	a, err := g.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Load32 reads a 32-bit little-endian word. Out-of-range or misaligned
// accesses return an error (the simulator raises it as a kernel fault).
func (g *Global) Load32(addr uint32) (uint32, error) {
	if err := g.check(addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(g.data[addr:]), nil
}

// Store32 writes a 32-bit little-endian word.
func (g *Global) Store32(addr, val uint32) error {
	if err := g.check(addr); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(g.data[addr:], val)
	return nil
}

// AtomicAdd32 adds val to the word at addr and returns the old value.
// The simulator serializes all lanes, so no locking is needed.
func (g *Global) AtomicAdd32(addr, val uint32) (uint32, error) {
	old, err := g.Load32(addr)
	if err != nil {
		return 0, err
	}
	if err := g.Store32(addr, old+val); err != nil {
		return 0, err
	}
	return old, nil
}

func (g *Global) check(addr uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("mem: misaligned 32-bit access at 0x%x", addr)
	}
	if uint64(addr)+4 > uint64(len(g.data)) {
		return fmt.Errorf("mem: global access out of range at 0x%x (size 0x%x)", addr, len(g.data))
	}
	return nil
}

// --- host-side convenience accessors (cudaMemcpy stand-ins) ---

// WriteWords copies 32-bit words from the host slice into device memory.
func (g *Global) WriteWords(addr uint32, words []uint32) error {
	for i, w := range words {
		if err := g.Store32(addr+uint32(4*i), w); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords copies n 32-bit words out of device memory.
func (g *Global) ReadWords(addr uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		w, err := g.Load32(addr + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// WriteFloats and ReadFloats are WriteWords/ReadWords with float32 views.
func (g *Global) WriteFloats(addr uint32, vals []float32) error {
	words := make([]uint32, len(vals))
	for i, v := range vals {
		words[i] = math.Float32bits(v)
	}
	return g.WriteWords(addr, words)
}

func (g *Global) ReadFloats(addr uint32, n int) ([]float32, error) {
	words, err := g.ReadWords(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i, w := range words {
		out[i] = math.Float32frombits(w)
	}
	return out, nil
}

// Shared is one thread block's shared memory.
type Shared struct {
	data []byte
}

// NewShared creates a shared memory of the given size.
func NewShared(size int) *Shared { return &Shared{data: make([]byte, size)} }

// Size returns the shared memory size in bytes.
func (s *Shared) Size() int { return len(s.data) }

// Load32 reads a 32-bit word from shared memory.
func (s *Shared) Load32(addr uint32) (uint32, error) {
	if err := s.check(addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s.data[addr:]), nil
}

// Store32 writes a 32-bit word to shared memory.
func (s *Shared) Store32(addr, val uint32) error {
	if err := s.check(addr); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(s.data[addr:], val)
	return nil
}

// AtomicAdd32 adds val at addr, returning the old value.
func (s *Shared) AtomicAdd32(addr, val uint32) (uint32, error) {
	old, err := s.Load32(addr)
	if err != nil {
		return 0, err
	}
	return old, s.Store32(addr, old+val)
}

func (s *Shared) check(addr uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("mem: misaligned shared access at 0x%x", addr)
	}
	if uint64(addr)+4 > uint64(len(s.data)) {
		return fmt.Errorf("mem: shared access out of range at 0x%x (size 0x%x)", addr, len(s.data))
	}
	return nil
}

// Params is the read-only kernel parameter space.
type Params struct {
	words []uint32
}

// NewParams builds a parameter block from 32-bit words.
func NewParams(words ...uint32) *Params {
	cp := make([]uint32, len(words))
	copy(cp, words)
	return &Params{words: cp}
}

// Load32 reads parameter word at a byte offset.
func (p *Params) Load32(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("mem: misaligned param access at 0x%x", addr)
	}
	i := int(addr / 4)
	if i >= len(p.words) {
		return 0, fmt.Errorf("mem: param access out of range at 0x%x (%d words)", addr, len(p.words))
	}
	return p.words[i], nil
}

// CoalesceSegments counts the distinct aligned segments of segBytes
// touched by the active lanes' 4-byte accesses. This is the number of
// memory transactions a Fermi-style coalescer issues, and the timing
// model charges one LD/ST occupancy cycle per segment.
func CoalesceSegments(addrs []uint32, active uint32, segBytes int) int {
	if segBytes <= 0 {
		segBytes = 128
	}
	// A warp has at most 32 lanes, so a fixed dedup buffer keeps the
	// per-memory-instruction issue path allocation-free.
	var segs [32]uint32
	n := 0
	for lane, a := range addrs {
		if active&(1<<uint(lane)) == 0 {
			continue
		}
		s := a / uint32(segBytes)
		dup := false
		for i := 0; i < n; i++ {
			if segs[i] == s {
				dup = true
				break
			}
		}
		if !dup {
			segs[n] = s
			n++
		}
	}
	return n
}

// BankConflictDegree returns the maximum number of active lanes mapping
// to the same shared-memory bank (word-interleaved across numBanks).
// Lanes accessing the same word are broadcast and count once.
// The result is the serialization factor: 1 means conflict-free.
func BankConflictDegree(addrs []uint32, active uint32, numBanks int) int {
	if numBanks <= 0 {
		numBanks = 32
	}
	// Collect the distinct words touched (same-word accesses broadcast),
	// counting words per bank as they are discovered. At most 32 lanes
	// participate, so fixed buffers beat per-instruction map allocations.
	var words [32]uint32
	var perBank [32]uint8
	useCnt := numBanks <= len(perBank)
	n := 0
	max := 1
	for lane, a := range addrs {
		if active&(1<<uint(lane)) == 0 {
			continue
		}
		w := a / 4
		dup := false
		for i := 0; i < n; i++ {
			if words[i] == w {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		words[n] = w
		n++
		if useCnt {
			b := w % uint32(numBanks)
			perBank[b]++
			if c := int(perBank[b]); c > max {
				max = c
			}
		}
	}
	if useCnt {
		return max
	}
	// Oversized bank counts (beyond any real shared memory): fall back
	// to a pairwise scan over the distinct words.
	for i := 0; i < n; i++ {
		b := words[i] % uint32(numBanks)
		counted := false
		for j := 0; j < i; j++ {
			if words[j]%uint32(numBanks) == b {
				counted = true
				break
			}
		}
		if counted {
			continue
		}
		c := 1
		for j := i + 1; j < n; j++ {
			if words[j]%uint32(numBanks) == b {
				c++
			}
		}
		if c > max {
			max = c
		}
	}
	return max
}
