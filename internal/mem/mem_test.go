package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	g := NewGlobal(1 << 16)
	a := g.MustAlloc(3)
	b := g.MustAlloc(17)
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations not 256-byte aligned: %d %d", a, b)
	}
	if b <= a {
		t.Error("bump allocator went backwards")
	}
	if a == 0 {
		t.Error("address 0 must stay unallocated (null)")
	}
}

func TestAllocExhaustion(t *testing.T) {
	g := NewGlobal(512)
	if _, err := g.Alloc(1 << 20); err == nil {
		t.Error("expected out-of-memory error")
	}
	if _, err := g.Alloc(-1); err == nil {
		t.Error("expected negative-size error")
	}
}

func TestGlobalLoadStore(t *testing.T) {
	g := NewGlobal(1 << 12)
	a := g.MustAlloc(16)
	if err := g.Store32(a, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := g.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Errorf("load = %x", v)
	}
}

func TestGlobalFaults(t *testing.T) {
	g := NewGlobal(1 << 12)
	if _, err := g.Load32(2); err == nil {
		t.Error("misaligned load must fault")
	}
	if err := g.Store32(1<<12, 0); err == nil {
		t.Error("out-of-range store must fault")
	}
	if _, err := g.Load32(1<<12 - 2); err == nil {
		t.Error("straddling load must fault")
	}
}

func TestAtomicAdd(t *testing.T) {
	g := NewGlobal(1 << 12)
	a := g.MustAlloc(4)
	if err := g.Store32(a, 10); err != nil {
		t.Fatal(err)
	}
	old, err := g.AtomicAdd32(a, 5)
	if err != nil || old != 10 {
		t.Fatalf("old = %d, err = %v", old, err)
	}
	v, _ := g.Load32(a)
	if v != 15 {
		t.Errorf("after add = %d", v)
	}
}

func TestWordAndFloatViews(t *testing.T) {
	g := NewGlobal(1 << 12)
	a := g.MustAlloc(64)
	in := []float32{1.5, -2.25, 0, 3e8}
	if err := g.WriteFloats(a, in); err != nil {
		t.Fatal(err)
	}
	out, err := g.ReadFloats(a, len(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("float[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	words := []uint32{1, 2, 3}
	if err := g.WriteWords(a, words); err != nil {
		t.Fatal(err)
	}
	w, err := g.ReadWords(a, 3)
	if err != nil || w[2] != 3 {
		t.Fatalf("words = %v, err = %v", w, err)
	}
}

func TestSharedMemory(t *testing.T) {
	s := NewShared(256)
	if err := s.Store32(252, 42); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Load32(252)
	if v != 42 {
		t.Errorf("shared load = %d", v)
	}
	if err := s.Store32(256, 0); err == nil {
		t.Error("OOB shared store must fault")
	}
	if _, err := s.Load32(3); err == nil {
		t.Error("misaligned shared load must fault")
	}
	old, err := s.AtomicAdd32(0, 7)
	if err != nil || old != 0 {
		t.Fatal("shared atomic broken")
	}
	v, _ = s.Load32(0)
	if v != 7 {
		t.Error("shared atomic result wrong")
	}
}

func TestParams(t *testing.T) {
	p := NewParams(11, 22, 33)
	for i, want := range []uint32{11, 22, 33} {
		v, err := p.Load32(uint32(4 * i))
		if err != nil || v != want {
			t.Errorf("param %d = %d (%v), want %d", i, v, err, want)
		}
	}
	if _, err := p.Load32(12); err == nil {
		t.Error("param OOB must fault")
	}
	if _, err := p.Load32(2); err == nil {
		t.Error("misaligned param must fault")
	}
}

func TestCoalesceSegments(t *testing.T) {
	all := uint32(0xFFFFFFFF)
	// 32 consecutive 4-byte words = one 128-byte segment.
	var addrs []uint32
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint32(4*i))
	}
	if n := CoalesceSegments(addrs, all, 128); n != 1 {
		t.Errorf("unit-stride = %d segments, want 1", n)
	}
	// Stride 128: every lane its own segment.
	for i := range addrs {
		addrs[i] = uint32(128 * i)
	}
	if n := CoalesceSegments(addrs, all, 128); n != 32 {
		t.Errorf("stride-128 = %d segments, want 32", n)
	}
	// Only active lanes count.
	if n := CoalesceSegments(addrs, 0x1, 128); n != 1 {
		t.Errorf("single lane = %d segments, want 1", n)
	}
	if n := CoalesceSegments(addrs, 0, 128); n != 0 {
		t.Errorf("no lanes = %d segments, want 0", n)
	}
	// Broadcast: everyone loads the same word.
	for i := range addrs {
		addrs[i] = 256
	}
	if n := CoalesceSegments(addrs, all, 128); n != 1 {
		t.Errorf("broadcast = %d segments, want 1", n)
	}
}

func TestBankConflictDegree(t *testing.T) {
	all := uint32(0xFFFFFFFF)
	addrs := make([]uint32, 32)
	// Unit stride: conflict-free.
	for i := range addrs {
		addrs[i] = uint32(4 * i)
	}
	if d := BankConflictDegree(addrs, all, 32); d != 1 {
		t.Errorf("unit stride degree = %d, want 1", d)
	}
	// Stride 2 words: 2-way conflicts.
	for i := range addrs {
		addrs[i] = uint32(8 * i)
	}
	if d := BankConflictDegree(addrs, all, 32); d != 2 {
		t.Errorf("stride-2 degree = %d, want 2", d)
	}
	// Stride 32 words: all lanes hit bank 0 -> 32-way.
	for i := range addrs {
		addrs[i] = uint32(128 * i)
	}
	if d := BankConflictDegree(addrs, all, 32); d != 32 {
		t.Errorf("stride-32 degree = %d, want 32", d)
	}
	// Same word everywhere: broadcast, no conflict.
	for i := range addrs {
		addrs[i] = 64
	}
	if d := BankConflictDegree(addrs, all, 32); d != 1 {
		t.Errorf("broadcast degree = %d, want 1", d)
	}
	// Empty mask yields 1 (no serialization).
	if d := BankConflictDegree(addrs, 0, 32); d != 1 {
		t.Errorf("empty degree = %d, want 1", d)
	}
}

// Property: the conflict degree is between 1 and the active lane count,
// and the coalesced segment count never exceeds active lanes.
func TestAccessCostBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, mask uint32) bool {
		r := rand.New(rand.NewSource(seed))
		addrs := make([]uint32, 32)
		for i := range addrs {
			addrs[i] = uint32(r.Intn(1<<14)) &^ 3
		}
		active := 0
		for i := 0; i < 32; i++ {
			if mask&(1<<i) != 0 {
				active++
			}
		}
		segs := CoalesceSegments(addrs, mask, 128)
		deg := BankConflictDegree(addrs, mask, 32)
		if segs < 0 || segs > active {
			return false
		}
		if deg < 1 || (active > 0 && deg > active) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
