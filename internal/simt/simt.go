// Package simt models per-warp control state: the post-dominator (PDOM)
// reconvergence stack that serializes divergent branch paths, lane
// liveness, and barrier bookkeeping. It is purely architectural state;
// timing lives in internal/sim.
package simt

import (
	"fmt"
	"math/bits"
)

// Mask is a 32-bit lane mask; bit i set means lane i participates.
type Mask uint32

// FullMask returns a mask with the low n bits set.
func FullMask(n int) Mask {
	if n >= 32 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Count returns the number of set lanes.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// Has reports whether lane is set.
func (m Mask) Has(lane int) bool { return m&(1<<uint(lane)) != 0 }

// NoReconv marks a stack entry that never reconverges (the base frame).
const NoReconv = -1

// frame is one PDOM stack entry: a pending execution path.
type frame struct {
	pc   int
	rpc  int // reconvergence PC; NoReconv for the base frame
	mask Mask
}

// Warp holds the control state of one warp.
type Warp struct {
	ID        int // warp index within its block
	BlockID   int // linear block index within the grid
	stack     []frame
	exited    Mask // lanes that executed EXIT
	width     int  // lanes in this warp (< 32 for the tail warp)
	AtBarrier bool

	diverges int64 // path splits taken by this warp
	maxDepth int   // peak reconvergence-stack depth
}

// NewWarp creates a warp of `width` live lanes starting at PC 0.
func NewWarp(id, blockID, width int) *Warp {
	w := &Warp{ID: id, BlockID: blockID, width: width, maxDepth: 1}
	w.stack = append(w.stack, frame{pc: 0, rpc: NoReconv, mask: FullMask(width)})
	return w
}

// Width returns the number of lanes the warp launched with.
func (w *Warp) Width() int { return w.width }

// Done reports whether every launched lane has exited.
func (w *Warp) Done() bool { return len(w.stack) == 0 }

// PC returns the warp's current program counter.
// Calling PC on a finished warp panics: it is a scheduler bug.
func (w *Warp) PC() int { return w.top().pc }

// ActiveMask returns the lanes that will execute the next instruction
// (before guard predication).
func (w *Warp) ActiveMask() Mask { return w.top().mask &^ w.exited }

// ExitedMask returns lanes that have terminated.
func (w *Warp) ExitedMask() Mask { return w.exited }

// StackDepth returns the current reconvergence stack depth.
func (w *Warp) StackDepth() int { return len(w.stack) }

// MaxStackDepth returns the deepest the reconvergence stack has been
// over the warp's lifetime (1 for a warp that never diverged). The
// observability layer rolls this into the simt.reconv_stack_depth
// histogram when the warp finishes.
func (w *Warp) MaxStackDepth() int { return w.maxDepth }

// Diverges returns how many divergent branches (path splits) the warp
// has taken over its lifetime.
func (w *Warp) Diverges() int64 { return w.diverges }

func (w *Warp) top() *frame {
	if len(w.stack) == 0 {
		panic("simt: control query on finished warp")
	}
	return &w.stack[len(w.stack)-1]
}

// Advance moves the warp past a non-branch instruction and performs any
// reconvergence pops that fall due.
func (w *Warp) Advance() {
	w.top().pc++
	w.settle()
}

// Jump redirects the whole current path (uniform branch).
func (w *Warp) Jump(target int) {
	w.top().pc = target
	w.settle()
}

// Diverge splits the current path at a divergent branch.
// takenMask must be a non-empty strict subset of the executing mask.
// The taken path (target) runs first, then the fall-through, and both
// merge at reconv.
func (w *Warp) Diverge(takenMask Mask, executing Mask, target, fallthrough_, reconv int) error {
	t := w.top()
	if takenMask == 0 || takenMask&^executing != 0 || takenMask == executing {
		return fmt.Errorf("simt: Diverge with non-divergent mask %08x of %08x", takenMask, executing)
	}
	if executing&^t.mask != 0 {
		return fmt.Errorf("simt: executing mask %08x outside path mask %08x", executing, t.mask)
	}
	// The current frame becomes the merged continuation at reconv.
	t.pc = reconv
	notTaken := executing &^ takenMask
	w.stack = append(w.stack,
		frame{pc: fallthrough_, rpc: reconv, mask: notTaken},
		frame{pc: target, rpc: reconv, mask: takenMask},
	)
	w.diverges++
	if len(w.stack) > w.maxDepth {
		w.maxDepth = len(w.stack)
	}
	w.settle()
	return nil
}

// Exit terminates the given lanes (the executing mask of an EXIT).
func (w *Warp) Exit(mask Mask) {
	w.exited |= mask
	if len(w.stack) > 0 && w.top().mask&^w.exited != 0 {
		// Some lanes on the current path survived a guarded EXIT and
		// continue with the next instruction.
		w.Advance()
		return
	}
	// Drop fully-exited frames (including, possibly, the base frame);
	// the next pending path resumes at its own saved PC.
	for len(w.stack) > 0 && w.top().mask&^w.exited == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	w.settle()
}

// settle pops frames that have reached their reconvergence point and
// skips frames whose lanes have all exited.
func (w *Warp) settle() {
	for len(w.stack) > 0 {
		t := w.top()
		if t.mask&^w.exited == 0 && t.rpc != NoReconv {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if t.rpc != NoReconv && t.pc == t.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// CheckInvariants validates internal consistency; used by tests and
// enabled in the simulator's debug mode. It returns an error if any
// PDOM invariant is violated.
func (w *Warp) CheckInvariants() error {
	full := FullMask(w.width)
	if w.exited&^full != 0 {
		return fmt.Errorf("simt: exited mask %08x outside warp width %d", w.exited, w.width)
	}
	for i, f := range w.stack {
		if f.mask == 0 {
			return fmt.Errorf("simt: empty mask in frame %d", i)
		}
		if f.mask&^full != 0 {
			return fmt.Errorf("simt: frame %d mask %08x outside width", i, f.mask)
		}
		if i == 0 {
			if f.rpc != NoReconv {
				return fmt.Errorf("simt: base frame has rpc %d", f.rpc)
			}
			continue
		}
		// Sibling/nesting property: a frame's lanes must be a subset of
		// some ancestor's lanes. We check against the base frame only,
		// since divergence always splits an existing path.
		if f.mask&^w.stack[0].mask != 0 {
			return fmt.Errorf("simt: frame %d mask %08x outside base mask %08x", i, f.mask, w.stack[0].mask)
		}
	}
	return nil
}
