package simt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	if FullMask(32) != 0xFFFFFFFF {
		t.Error("FullMask(32) wrong")
	}
	if FullMask(1) != 1 || FullMask(4) != 0xF {
		t.Error("narrow masks wrong")
	}
	if FullMask(0) != 0 {
		t.Error("FullMask(0) wrong")
	}
}

func TestMaskHelpers(t *testing.T) {
	m := Mask(0b1011)
	if m.Count() != 3 {
		t.Error("Count wrong")
	}
	if !m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Error("Has wrong")
	}
}

func TestUniformFlow(t *testing.T) {
	w := NewWarp(0, 0, 32)
	if w.PC() != 0 || w.ActiveMask() != FullMask(32) {
		t.Fatal("initial state wrong")
	}
	w.Advance()
	w.Advance()
	if w.PC() != 2 {
		t.Errorf("PC = %d, want 2", w.PC())
	}
	w.Jump(10)
	if w.PC() != 10 {
		t.Errorf("PC = %d after jump", w.PC())
	}
	if w.StackDepth() != 1 {
		t.Error("uniform flow must not grow the stack")
	}
}

func TestIfElseDivergence(t *testing.T) {
	// if (taken) { pc 5..7 } else { pc 1..4 } reconverging at 8.
	w := NewWarp(0, 0, 32)
	taken := Mask(0x0000FFFF)
	if err := w.Diverge(taken, FullMask(32), 5, 1, 8); err != nil {
		t.Fatal(err)
	}
	// Taken path runs first.
	if w.PC() != 5 || w.ActiveMask() != taken {
		t.Fatalf("taken path at pc %d mask %08x", w.PC(), w.ActiveMask())
	}
	w.Advance()
	w.Advance()
	w.Advance() // reaches pc 8 = reconv -> pop
	if w.PC() != 1 || w.ActiveMask() != FullMask(32)&^taken {
		t.Fatalf("else path at pc %d mask %08x", w.PC(), w.ActiveMask())
	}
	for w.PC() != 8 {
		w.Advance()
	}
	if w.ActiveMask() != FullMask(32) {
		t.Fatalf("reconverged mask %08x", w.ActiveMask())
	}
	if w.StackDepth() != 1 {
		t.Errorf("stack depth %d after reconvergence", w.StackDepth())
	}
}

func TestNestedDivergence(t *testing.T) {
	w := NewWarp(0, 0, 32)
	outer := Mask(0x0000FFFF)
	if err := w.Diverge(outer, FullMask(32), 10, 1, 20); err != nil {
		t.Fatal(err)
	}
	// Inside the taken path, diverge again.
	inner := Mask(0x000000FF)
	if err := w.Diverge(inner, outer, 15, 11, 18); err != nil {
		t.Fatal(err)
	}
	if w.PC() != 15 || w.ActiveMask() != inner {
		t.Fatalf("inner taken at pc %d mask %08x", w.PC(), w.ActiveMask())
	}
	// Run inner taken to 18, then inner else 11..18, then outer merged at 18.
	for w.ActiveMask() == inner {
		w.Advance()
	}
	if w.PC() != 11 || w.ActiveMask() != outer&^inner {
		t.Fatalf("inner else at pc %d mask %08x", w.PC(), w.ActiveMask())
	}
	for w.PC() != 18 || w.ActiveMask() != outer {
		w.Advance()
	}
	// Outer taken continues to 20, then outer else from 1.
	w.Advance()
	w.Advance()
	if w.PC() != 1 || w.ActiveMask() != FullMask(32)&^outer {
		t.Fatalf("outer else at pc %d mask %08x", w.PC(), w.ActiveMask())
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDivergeRejectsBadMasks(t *testing.T) {
	w := NewWarp(0, 0, 32)
	if err := w.Diverge(0, FullMask(32), 1, 2, 3); err == nil {
		t.Error("empty taken mask accepted")
	}
	if err := w.Diverge(FullMask(32), FullMask(32), 1, 2, 3); err == nil {
		t.Error("non-divergent (all taken) accepted")
	}
	// Taken mask outside the executing set must be rejected.
	if err := w.Diverge(Mask(0xF0), Mask(0x0F), 1, 2, 3); err == nil {
		t.Error("taken mask outside executing set accepted")
	}
}

func TestExitAllLanes(t *testing.T) {
	w := NewWarp(0, 0, 32)
	w.Exit(FullMask(32))
	if !w.Done() {
		t.Error("warp should be done")
	}
}

func TestGuardedPartialExit(t *testing.T) {
	w := NewWarp(0, 0, 32)
	w.Exit(Mask(0x0000FFFF)) // half the lanes exit
	if w.Done() {
		t.Fatal("half the warp still alive")
	}
	if w.ActiveMask() != Mask(0xFFFF0000) {
		t.Errorf("surviving mask %08x", w.ActiveMask())
	}
	if w.PC() != 1 {
		t.Errorf("survivors should advance past exit, pc %d", w.PC())
	}
	w.Exit(w.ActiveMask())
	if !w.Done() {
		t.Error("warp should now be done")
	}
}

func TestExitInsideDivergentPath(t *testing.T) {
	w := NewWarp(0, 0, 32)
	taken := Mask(0x000000FF)
	if err := w.Diverge(taken, FullMask(32), 10, 1, 20); err != nil {
		t.Fatal(err)
	}
	// The whole taken path exits early.
	w.Exit(taken)
	if w.Done() {
		t.Fatal("else path still pending")
	}
	if w.PC() != 1 || w.ActiveMask() != FullMask(32)&^taken {
		t.Fatalf("else path at pc %d mask %08x", w.PC(), w.ActiveMask())
	}
	// Else path reconverges; only its lanes remain at the merge point.
	for w.PC() != 20 {
		w.Advance()
	}
	if w.ActiveMask() != FullMask(32)&^taken {
		t.Errorf("merged mask %08x should exclude exited lanes", w.ActiveMask())
	}
}

func TestNarrowWarp(t *testing.T) {
	w := NewWarp(0, 0, 7)
	if w.Width() != 7 || w.ActiveMask() != FullMask(7) {
		t.Fatal("narrow warp init wrong")
	}
	w.Exit(FullMask(7))
	if !w.Done() {
		t.Error("narrow warp should finish")
	}
}

// TestLoopDivergence models a loop where lanes retire one per iteration
// (like a variable-trip-count while loop): backward branch with
// reconvergence at the fall-through.
func TestLoopDivergence(t *testing.T) {
	w := NewWarp(0, 0, 4)
	// Program: pc0 body, pc1 branch (continue -> 0), pc2 after-loop.
	trips := []int{1, 2, 3, 4} // per-lane loop iterations
	iter := make([]int, 4)
	for steps := 0; steps < 200 && w.PC() != 2; steps++ {
		switch w.PC() {
		case 0:
			for l := 0; l < 4; l++ {
				if w.ActiveMask().Has(l) {
					iter[l]++
				}
			}
			w.Advance()
		case 1:
			var cont Mask
			exec := w.ActiveMask()
			for l := 0; l < 4; l++ {
				if exec.Has(l) && iter[l] < trips[l] {
					cont |= 1 << uint(l)
				}
			}
			switch {
			case cont == exec:
				w.Jump(0)
			case cont == 0:
				w.Advance()
			default:
				if err := w.Diverge(cont, exec, 0, 2, 2); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if w.PC() != 2 || w.ActiveMask() != FullMask(4) {
		t.Fatalf("loop did not reconverge: pc %d mask %x", w.PC(), w.ActiveMask())
	}
	for l, n := range iter {
		if n != trips[l] {
			t.Errorf("lane %d ran %d iterations, want %d", l, n, trips[l])
		}
	}
}

// Property: random structured divergence/advance/exit sequences keep
// the stack invariants intact and always terminate.
func TestRandomWalkInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWarp(0, 0, 32)
		for step := 0; step < 300 && !w.Done(); step++ {
			if err := w.CheckInvariants(); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			exec := w.ActiveMask()
			switch rng.Intn(5) {
			case 0: // divergent branch with random split
				taken := exec & Mask(rng.Uint32())
				if taken != 0 && taken != exec {
					pc := w.PC()
					if err := w.Diverge(taken, exec, pc+1+rng.Intn(3), pc+1, pc+4+rng.Intn(4)); err != nil {
						return false
					}
					continue
				}
				w.Advance()
			case 1: // guarded exit of a random subset
				dying := exec & Mask(rng.Uint32())
				if dying != 0 {
					w.Exit(dying)
					continue
				}
				w.Advance()
			default:
				w.Advance()
			}
		}
		// Force termination and re-check.
		if !w.Done() {
			w.Exit(w.ActiveMask())
			for !w.Done() {
				w.Exit(w.ActiveMask())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
