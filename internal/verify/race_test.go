package verify_test

import (
	"strings"
	"testing"

	"warped/internal/verify"
)

// TestSharedRace drives rule (h): the two-thread witness search over
// barrier intervals. Racy fixtures must fire; the carve-outs (atomic
// pairs, intra-warp lockstep, read/read, barrier separation) and the
// provable-only skips (no geometry, conditional regions) must not.
func TestSharedRace(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantRace bool
		wantMsg  string // substring of the first shared-race finding
	}{
		{
			name: "inter-warp write/write on the same word",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %laneid
shl r1, r0, 2
mov r2, 7
st.shared [r1], r2
exit`,
			wantRace: true,
			wantMsg:  "thread 0 and thread 32 of a different warp",
		},
		{
			name: "intra-warp lockstep write/write stays silent",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %warpid
shl r1, r0, 2
mov r2, 7
st.shared [r1], r2
exit`,
		},
		{
			name: "read/write across a missing barrier",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %tid.x
shl r1, r0, 2
mov r2, 1
st.shared [r1], r2
ld.shared r3, [r1+4]
exit`,
			wantRace: true,
			wantMsg:  "races with the ld",
		},
		{
			name: "bar.sync separates the read from the write",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %tid.x
shl r1, r0, 2
mov r2, 1
st.shared [r1], r2
bar.sync
ld.shared r3, [r1+4]
exit`,
		},
		{
			name: "atomic pair serializes (no false positive)",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r2, 1
atom.add.shared r3, [0], r2
exit`,
		},
		{
			name: "atomic against a plain store still races",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %tid.x
setp.eq.s32 p0, r0, 0
mov r2, 1
atom.add.shared r3, [0], r2
@p0 st.shared [0], r2
exit`,
			wantRace: true,
			wantMsg:  "atom.add races with the st",
		},
		{
			name: "read/read never races",
			src: `.kernel k
.reg 4
.shared 512
.block 64
ld.shared r3, [0]
exit`,
		},
		{
			name: "undeclared geometry disables the rule",
			src: `.kernel k
.reg 4
.shared 512
mov r0, %laneid
shl r1, r0, 2
mov r2, 7
st.shared [r1], r2
exit`,
		},
		{
			name: "access inside a guarded branch region is not provable",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %tid.x
setp.lt.s32 p0, r0, 32
mov r2, 1
@p0 bra SKIP, SKIP
st.shared [0], r2
SKIP:
exit`,
		},
		{
			name: "distinct strided words stay silent",
			src: `.kernel k
.reg 4
.shared 512
.block 64
mov r0, %tid.x
shl r1, r0, 2
mov r2, 1
st.shared [r1], r2
ld.shared r3, [r1]
exit`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := verify.Check(mustAsm(t, tc.src))
			races := findingsByRule(fs)[verify.RuleSharedRace]
			if tc.wantRace {
				if len(races) == 0 {
					t.Fatalf("want a %s error, got findings:\n%s", verify.RuleSharedRace, fs)
				}
				if races[0].Sev != verify.SevError {
					t.Errorf("severity %v, want error", races[0].Sev)
				}
				if tc.wantMsg != "" && !strings.Contains(races[0].Msg, tc.wantMsg) {
					t.Errorf("message %q does not contain %q", races[0].Msg, tc.wantMsg)
				}
			} else if len(races) != 0 {
				t.Fatalf("unexpected %s findings:\n%s", verify.RuleSharedRace, fs)
			}
		})
	}
}

// TestSharedRaceOptionsGeometry checks that Options-supplied geometry
// arms the rule for programs with no .block declaration and overrides a
// declared one.
func TestSharedRaceOptionsGeometry(t *testing.T) {
	src := `.kernel k
.reg 4
.shared 512
mov r0, %laneid
shl r1, r0, 2
mov r2, 7
st.shared [r1], r2
exit`
	p := mustAsm(t, src)
	if fs := verify.Check(p); len(findingsByRule(fs)[verify.RuleSharedRace]) != 0 {
		t.Fatalf("no geometry: want silent, got:\n%s", fs)
	}
	fs := verify.CheckWith(p, verify.Options{BlockDimX: 64})
	if len(findingsByRule(fs)[verify.RuleSharedRace]) == 0 {
		t.Fatalf("BlockDimX=64: want a %s error, got:\n%s", verify.RuleSharedRace, fs)
	}
	// A single warp's worth of threads is all lockstep: no race.
	fs = verify.CheckWith(p, verify.Options{BlockDimX: 32})
	if len(findingsByRule(fs)[verify.RuleSharedRace]) != 0 {
		t.Fatalf("BlockDimX=32: want silent, got:\n%s", fs)
	}
}
