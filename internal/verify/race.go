package verify

import (
	"fmt"
	"strings"

	"warped/internal/isa"
)

// Static shared-memory race detection (rule h), in the spirit of
// GPUVerify's two-thread abstraction: a race among any number of
// threads is witnessed by some pair, so it suffices to reason about two
// distinct symbolic threads t₁ ≠ t₂ running the same kernel. Here the
// abstraction is made concrete: addresses are affine in the thread id
// (affine.go), the launch geometry is declared (.block), and the block
// is small, so the verifier simply enumerates candidate witness pairs
// and evaluates each access's exact address and guard per thread.
//
// The kernel is partitioned into BARRIER INTERVALS: the PCs reachable
// from the entry or from a bar.sync's successor without crossing
// another bar.sync. Within one interval there is no synchronization,
// so two accesses by different threads are unordered unless the SIMT
// execution model orders them — which it does exactly when both
// threads sit in the same warp (lockstep: every lane of a warp issues
// instruction k before any lane issues instruction k+1, and the
// simulator's warp-serial scheduler serializes same-pc lane conflicts
// deterministically). A race is therefore reported when, in some
// barrier interval, two accesses to overlapping 4-byte words — at
// least one a write, not both atomics (atom.shared serializes against
// itself) — have a witness pair of threads from DIFFERENT warps.
//
// Provable-only discipline, matching rules (f)/(g): accesses with ⊤ or
// loop-hulled (inexact) addresses, undecidable guards, or positions
// inside guarded-branch regions / past guarded exits are skipped, and
// an undeclared geometry disables the rule. Unguarded bar.syncs are
// trusted as block-wide delimiters; guarded or divergence-reachable
// ones are already errors under rule (e).

// maxRaceThreads caps the enumeration: blocks beyond the architectural
// 1024-thread limit (only expressible via Options) skip the rule.
const maxRaceThreads = 4096

// computeCondRegions marks the PCs whose execution is conditional on a
// guard: everything inside a guarded branch's divergent region (between
// the branch and its reconvergence point) and everything downstream of
// a guarded exit. Which threads reach those PCs is path-sensitive, so
// the per-thread rules treat them as unprovable. Requires buildCFG and
// checkReachability.
func (c *checker) computeCondRegions() {
	c.cond = make([]bool, len(c.p.Instrs))
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Pred.None || !c.reachable[pc] {
			continue
		}
		var region []bool
		//simlint:ignore exhaustive-switch — only guarded BRA and guarded EXIT make downstream execution thread-conditional; guards on other ops gate that op alone, which guardHolds evaluates directly
		switch in.Op {
		case isa.OpBRA:
			region = c.divergentRegion(pc)
		case isa.OpEXIT:
			region = c.reachFrom([]int{pc + 1}, -1)
		default:
			continue
		}
		for i, inside := range region {
			if inside {
				c.cond[i] = true
			}
		}
	}
}

// barrierIntervals returns one PC-set per interval start (entry and
// each reachable bar.sync's successors), each the set of PCs reachable
// from that start without crossing a further bar.sync. A uniform loop
// around a barrier yields exactly the dynamic inter-barrier epoch: the
// interval follows the back edge from the barrier's successor around to
// the code before the same barrier.
func (c *checker) barrierIntervals() [][]bool {
	starts := []int{0}
	for pc := range c.p.Instrs {
		if c.p.Instrs[pc].Op == isa.OpBAR && c.reachable[pc] {
			starts = append(starts, c.succ[pc]...)
		}
	}
	var out [][]bool
	seenStart := make(map[int]bool)
	for _, s := range starts {
		if seenStart[s] {
			continue
		}
		seenStart[s] = true
		seen := make([]bool, len(c.p.Instrs))
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			pc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c.p.Instrs[pc].Op == isa.OpBAR {
				continue // the barrier ends the interval on this path
			}
			for _, nx := range c.succ[pc] {
				if !seen[nx] {
					seen[nx] = true
					stack = append(stack, nx)
				}
			}
		}
		out = append(out, seen)
	}
	return out
}

// raceAccess is one shared-memory access eligible for the witness
// search: reached, unconditional position, exact affine address,
// decidable guard.
type raceAccess struct {
	pc    int
	addr  aval
	write bool // st.shared or atom.shared
	atom  bool
}

// collectRaceAccesses gathers the eligible accesses, or nil when the
// prerequisites for the rule do not hold.
func (c *checker) collectRaceAccesses() []raceAccess {
	if !c.geo.known || c.geo.nThreads > maxRaceThreads || c.geo.nThreads < 2 {
		return nil
	}
	var out []raceAccess
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op.Unit() != isa.UnitLDST || in.Space != isa.SpaceShared {
			continue
		}
		if !c.vals[pc].reached || c.cond[pc] {
			continue
		}
		av := c.accessAval(pc)
		if !av.exact() {
			continue
		}
		if !in.Pred.None {
			if _, ok := c.guardHolds(pc, 0); !ok {
				continue // no predicate fact: guard undecidable for every thread
			}
		}
		out = append(out, raceAccess{
			pc:    pc,
			addr:  av,
			write: in.Op != isa.OpLD,
			atom:  in.Op == isa.OpATOM,
		})
	}
	return out
}

// checkSharedRace implements rule (h). Requires runValueAnalysis and
// computeCondRegions.
func (c *checker) checkSharedRace() {
	accs := c.collectRaceAccesses()
	if len(accs) == 0 {
		return
	}
	reported := make(map[[2]int]bool)
	for _, interval := range c.barrierIntervals() {
		for i, a1 := range accs {
			if !interval[a1.pc] {
				continue
			}
			for _, a2 := range accs[i:] {
				if !interval[a2.pc] {
					continue
				}
				key := [2]int{a1.pc, a2.pc}
				if reported[key] {
					continue
				}
				if !a1.write && !a2.write {
					continue // read/read never races
				}
				if a1.atom && a2.atom {
					continue // atom.shared serializes against atom.shared
				}
				if t1, t2, b1, ok := c.interWarpWitness(a1, a2); ok {
					reported[key] = true
					c.addf(a1.pc, SevError, RuleSharedRace,
						"%s races with the %s at line %d: %s and %s of a different warp touch byte %d of .shared in the same barrier interval",
						c.p.Instrs[a1.pc].Op, c.p.Instrs[a2.pc].Op, c.p.Instrs[a2.pc].Line,
						c.geo.threadName(t1), c.geo.threadName(t2), b1)
				}
			}
		}
	}
}

// interWarpWitness searches for two threads of different warps whose
// concrete addresses for a1 and a2 overlap as 4-byte words, with both
// guards holding. The returned byte is within both accesses.
func (c *checker) interWarpWitness(a1, a2 raceAccess) (t1, t2, byteAddr int64, ok bool) {
	g := &c.geo
	for t1 = 0; t1 < g.nThreads; t1++ {
		if runs, decided := c.guardHolds(a1.pc, t1); !decided || !runs {
			continue
		}
		v1, _ := a1.addr.eval(g, t1)
		for t2 = 0; t2 < g.nThreads; t2++ {
			if t1/g.warp == t2/g.warp {
				continue // same warp: lockstep orders the pair
			}
			if runs, decided := c.guardHolds(a2.pc, t2); !decided || !runs {
				continue
			}
			v2, _ := a2.addr.eval(g, t2)
			if d := v1 - v2; d > -4 && d < 4 {
				return t1, t2, max64(v1, v2), true
			}
		}
	}
	return 0, 0, 0, false
}

// fmtAval renders an affine value for diagnostics, e.g. "4*%tid.x+32".
func fmtAval(v aval, g *geom) string {
	if v.top {
		return "(unknown)"
	}
	names := [numSyms]string{"%tid.x", "%tid.y", "%laneid", "%warpid"}
	var b strings.Builder
	for s, co := range v.co {
		if co == 0 {
			continue
		}
		switch {
		case b.Len() == 0 && co == 1:
			b.WriteString(names[s])
		case b.Len() == 0:
			fmt.Fprintf(&b, "%d*%s", co, names[s])
		case co == 1:
			fmt.Fprintf(&b, "+%s", names[s])
		default:
			fmt.Fprintf(&b, "%+d*%s", co, names[s])
		}
	}
	if b.Len() == 0 {
		return fmtRange(v.lo, v.hi)
	}
	if v.lo != 0 || v.hi != 0 {
		if v.lo == v.hi {
			fmt.Fprintf(&b, "%+d", v.lo)
		} else {
			fmt.Fprintf(&b, "+[%d..%d]", v.lo, v.hi)
		}
	}
	return b.String()
}
