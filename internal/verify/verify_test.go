package verify_test

import (
	"strings"
	"testing"

	"warped/internal/asm"
	"warped/internal/isa"
	"warped/internal/verify"
)

// mustAsm assembles a kernel source or fails the test.
func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// findingsByRule buckets findings for assertion.
func findingsByRule(fs verify.Findings) map[string][]verify.Finding {
	m := map[string][]verify.Finding{}
	for _, f := range fs {
		m[f.Rule] = append(m[f.Rule], f)
	}
	return m
}

// TestRules drives one minimal failing kernel per verifier rule plus
// clean negatives for the idioms the rules were refined around.
func TestRules(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// wantRule non-empty: at least one finding with this rule and
		// severity must be produced. wantRule empty: zero findings.
		wantRule string
		wantSev  verify.Severity
		wantMsg  string // substring of some finding with wantRule
	}{
		{
			name: "use-before-def GPR",
			src: `.kernel k
.reg 4
iadd r1, r0, 1
exit`,
			wantRule: verify.RuleUseBeforeDef,
			wantSev:  verify.SevError,
			wantMsg:  "r0 may be read",
		},
		{
			name: "use-before-def predicate guard",
			src: `.kernel k
.reg 4
@p0 mov r0, 1
exit`,
			wantRule: verify.RuleUseBeforeDef,
			wantSev:  verify.SevError,
			wantMsg:  "p0 may be read",
		},
		{
			name: "use-before-def on one path only",
			src: `.kernel k
.reg 4
setp.eq.s32 p0, %ctaid.x, 0
@p0 bra SKIP, SKIP
mov r1, 7
SKIP:
iadd r2, r1, 1
exit`,
			wantRule: verify.RuleUseBeforeDef,
			wantSev:  verify.SevError,
			wantMsg:  "r1 may be read",
		},
		{
			name: "guarded write counts as def (clean)",
			src: `.kernel k
.reg 8
setp.lt.s32 p0, %tid.x, 4
@p0 ld.global r1, [%tid.x]
@p0 st.shared [%tid.x], r1
exit`,
		},
		{
			name: "unreachable code",
			src: `.kernel k
.reg 2
bra END, END
mov r0, 1
mov r1, 2
END:
exit`,
			wantRule: verify.RuleUnreachable,
			wantSev:  verify.SevWarning,
			wantMsg:  "unreachable code (2 instructions)",
		},
		{
			name: "infinite loop synthesized exit exempt (clean)",
			src: `.kernel k
.reg 2
mov r0, 0
LOOP:
iadd r0, r0, 1
bra LOOP, LOOP`,
		},
		{
			name: "divergent barrier in region",
			src: `.kernel k
.reg 2
setp.eq.s32 p0, %tid.x, 0
@p0 bra SKIP, SKIP
bar.sync
SKIP:
exit`,
			wantRule: verify.RuleDivergentBarrier,
			wantSev:  verify.SevError,
			wantMsg:  "holds the warp split",
		},
		{
			name: "divergent guarded barrier",
			src: `.kernel k
.reg 2
setp.eq.s32 p0, %tid.x, 0
@p0 bar.sync
exit`,
			wantRule: verify.RuleDivergentBarrier,
			wantSev:  verify.SevError,
			wantMsg:  "may differ across the block's threads",
		},
		{
			name: "uniform loop barrier (clean)",
			src: `.kernel k
.reg 4
ld.param r0, [0]
mov r1, 0
LOOP:
bar.sync
iadd r1, r1, 1
setp.lt.s32 p0, r1, r0
@p0 bra LOOP, DONE
DONE:
exit`,
		},
		{
			name: "barrier divergent via loop-carried guard",
			src: `.kernel k
.reg 4
mov r1, %tid.x
LOOP:
bar.sync
iadd r1, r1, 1
setp.lt.s32 p0, r1, 64
@p0 bra LOOP, DONE
DONE:
exit`,
			wantRule: verify.RuleDivergentBarrier,
			wantSev:  verify.SevError,
		},
		{
			name: "misaligned immediate address",
			src: `.kernel k
.reg 2
mov r0, 1
st.global [2], r0
exit`,
			wantRule: verify.RuleMisalignment,
			wantSev:  verify.SevError,
			wantMsg:  "address 2 is not 4-byte aligned",
		},
		{
			name: "misaligned register offset",
			src: `.kernel k
.reg 2
ld.param r0, [0]
ld.global r1, [r0+2]
exit`,
			wantRule: verify.RuleMisalignment,
			wantSev:  verify.SevError,
			wantMsg:  "not a multiple of 4",
		},
		{
			name: "negative aligned offset (clean)",
			src: `.kernel k
.reg 2
mov r0, 8
ld.global r1, [r0-4]
st.global [r0-8], r1
exit`,
		},
		{
			name: "provably misaligned register base",
			src: `.kernel k
.reg 2
mov r0, 2
ld.global r1, [r0]
exit`,
			wantRule: verify.RuleMisalignment,
			wantSev:  verify.SevError,
			wantMsg:  "provably 2 bytes past a 4-byte boundary",
		},
		{
			name: "provably misaligned tid stride",
			src: `.kernel k
.reg 2
mov r0, %tid.x
shl r0, r0, 2
iadd r0, r0, 2
st.global [r0], r0
exit`,
			wantRule: verify.RuleMisalignment,
			wantSev:  verify.SevError,
			wantMsg:  "address 4*%tid.x+2 is provably 2 bytes past",
		},
		{
			name: "odd offset against a provably compensating base (clean)",
			src: `.kernel k
.reg 2
mov r0, %tid.x
shl r0, r0, 2
iadd r0, r0, 6
ld.global r1, [r0-2]
exit`,
		},
		{
			name: "branch target equals reconv (clean)",
			src: `.kernel k
.reg 2
setp.eq.s32 p0, %tid.x, 0
@p0 bra SKIP, SKIP
mov r0, 1
SKIP:
exit`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustAsm(t, tc.src)
			fs := verify.Check(p)
			if tc.wantRule == "" {
				if len(fs) != 0 {
					t.Fatalf("want clean, got:\n%s", fs)
				}
				return
			}
			hits := findingsByRule(fs)[tc.wantRule]
			if len(hits) == 0 {
				t.Fatalf("want %s finding, got:\n%s", tc.wantRule, fs)
			}
			found := false
			for _, f := range hits {
				if f.Sev == tc.wantSev && strings.Contains(f.Msg, tc.wantMsg) {
					found = true
					if f.Line <= 0 {
						t.Errorf("finding has no source line: %s", f)
					}
				}
			}
			if !found {
				t.Fatalf("no %s finding with sev=%s msg~%q in:\n%s",
					tc.wantRule, tc.wantSev, tc.wantMsg, fs)
			}
		})
	}
}

// TestHandBuiltPrograms covers rules the assembler cannot emit source
// for: out-of-file register indices, bad predicate indices, broken
// reconvergence PCs, and fall-through off the end.
func TestHandBuiltPrograms(t *testing.T) {
	mk := func(instrs ...isa.Instr) *isa.Program {
		for i := range instrs {
			if instrs[i].Line == 0 {
				instrs[i].Line = i + 1
			}
		}
		return &isa.Program{Name: "hand", Instrs: instrs, NumRegs: 8}
	}
	none := isa.PredRef{None: true}
	cases := []struct {
		name     string
		p        *isa.Program
		wantRule string
		wantSev  verify.Severity
	}{
		{
			name: "destination exceeds .reg budget",
			p: &isa.Program{Name: "hand", NumRegs: 2, Instrs: []isa.Instr{
				{Op: isa.OpMOV, Pred: none, Dst: 5, Src: [3]isa.Operand{{IsImm: true}}, Line: 1},
				{Op: isa.OpEXIT, Pred: none, Line: 2},
			}},
			wantRule: verify.RuleRegBounds,
			wantSev:  verify.SevError,
		},
		{
			name: "destination beyond GPR file",
			p: mk(
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: 70, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleRegBounds,
			wantSev:  verify.SevError,
		},
		{
			name: "special register destination",
			p: mk(
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: isa.RegTIDX, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleRegBounds,
			wantSev:  verify.SevError,
		},
		{
			name: "predicate index out of range",
			p: mk(
				isa.Instr{Op: isa.OpSETP, Pred: none, PDst: 9, Cmp: isa.CmpEQ,
					Src: [3]isa.Operand{{IsImm: true}, {IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleRegBounds,
			wantSev:  verify.SevError,
		},
		{
			name: "fall-through off the end",
			p: mk(
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: 0, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: isa.PredRef{Index: 0}},
			),
			wantRule: verify.RuleFallThrough,
			wantSev:  verify.SevError,
		},
		{
			name: "branch target outside program",
			p: mk(
				isa.Instr{Op: isa.OpBRA, Pred: none, Target: 99, Reconv: 1},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleStructure,
			wantSev:  verify.SevError,
		},
		{
			name: "reconvergence pc outside program",
			p: mk(
				isa.Instr{Op: isa.OpSETP, Pred: none, PDst: 0, Cmp: isa.CmpEQ,
					Src: [3]isa.Operand{{Reg: isa.RegTIDX}, {IsImm: true}}},
				isa.Instr{Op: isa.OpBRA, Pred: isa.PredRef{Index: 0}, Target: 3, Reconv: 99},
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: 0, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleReconvergence,
			wantSev:  verify.SevError,
		},
		{
			name: "reconvergence unreachable from both paths",
			p: mk(
				// 0: setp on %tid; 1: @p0 bra 4 reconv 6; taken path exits
				// at 5, fall-through exits at 3 — pc 6 is fed by neither.
				isa.Instr{Op: isa.OpSETP, Pred: none, PDst: 0, Cmp: isa.CmpEQ,
					Src: [3]isa.Operand{{Reg: isa.RegTIDX}, {IsImm: true}}},
				isa.Instr{Op: isa.OpBRA, Pred: isa.PredRef{Index: 0}, Target: 4, Reconv: 6},
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: 0, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: 1, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleReconvergence,
			wantSev:  verify.SevError,
		},
		{
			name: "reconvergence unreachable from taken path only",
			p: mk(
				isa.Instr{Op: isa.OpSETP, Pred: none, PDst: 0, Cmp: isa.CmpEQ,
					Src: [3]isa.Operand{{Reg: isa.RegTIDX}, {IsImm: true}}},
				isa.Instr{Op: isa.OpBRA, Pred: isa.PredRef{Index: 0}, Target: 4, Reconv: 2},
				isa.Instr{Op: isa.OpMOV, Pred: none, Dst: 0, Src: [3]isa.Operand{{IsImm: true}}},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
				isa.Instr{Op: isa.OpEXIT, Pred: none},
			),
			wantRule: verify.RuleReconvergence,
			wantSev:  verify.SevWarning,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := verify.Check(tc.p)
			for _, f := range findingsByRule(fs)[tc.wantRule] {
				if f.Sev == tc.wantSev {
					return
				}
			}
			t.Fatalf("want %s/%s finding, got:\n%s", tc.wantRule, tc.wantSev, fs)
		})
	}
}

// TestDivergenceDepth nests two data-dependent branches and shrinks the
// allowed depth below the nesting.
func TestDivergenceDepth(t *testing.T) {
	src := `.kernel k
.reg 4
setp.lt.s32 p0, %tid.x, 16
@p0 bra A, DONE
mov r0, 0
bra DONE, DONE
A:
setp.lt.s32 p1, %tid.x, 8
@p1 bra B, DONE
mov r1, 1
bra DONE, DONE
B:
mov r2, 2
DONE:
exit`
	p := mustAsm(t, src)
	if fs := verify.Check(p); len(fs) != 0 {
		t.Fatalf("default depth should be clean, got:\n%s", fs)
	}
	fs := verify.CheckWith(p, verify.Options{MaxDivergenceDepth: 1})
	hits := findingsByRule(fs)[verify.RuleDivergenceDepth]
	if len(hits) != 1 || hits[0].Sev != verify.SevWarning {
		t.Fatalf("want one divergence-depth warning with depth 1, got:\n%s", fs)
	}
	if !strings.Contains(hits[0].Msg, "nest 2 deep") {
		t.Errorf("msg = %q, want nesting of 2", hits[0].Msg)
	}
}

// TestEmptyProgram covers the degenerate structure finding.
func TestEmptyProgram(t *testing.T) {
	for _, p := range []*isa.Program{nil, {Name: "empty"}} {
		fs := verify.Check(p)
		if len(fs) != 1 || fs[0].Rule != verify.RuleStructure || fs[0].Sev != verify.SevError {
			t.Fatalf("want single structure error, got:\n%s", fs)
		}
	}
}

// TestFindingFormat pins the diagnostic formats promised to grep users:
// String is asm.Error-shaped, Dump is file:line: severity: rule: message.
func TestFindingFormat(t *testing.T) {
	f := verify.Finding{PC: 3, Line: 12, Sev: verify.SevError,
		Rule: verify.RuleMisalignment, Msg: "st address 2 is not 4-byte aligned"}
	if got, want := f.String(), "line 12: error: misalignment: st address 2 is not 4-byte aligned"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	fs := verify.Findings{f, {PC: 5, Line: 14, Sev: verify.SevWarning,
		Rule: verify.RuleUnreachable, Msg: "unreachable instruction"}}
	want := "kern.s:12: error: misalignment: st address 2 is not 4-byte aligned\n" +
		"kern.s:14: warning: unreachable: unreachable instruction\n"
	if got := fs.Dump("kern.s"); got != want {
		t.Errorf("Dump() = %q, want %q", got, want)
	}
	if fs.Errors() != 1 {
		t.Errorf("Errors() = %d, want 1", fs.Errors())
	}
	if err := fs.Err(); err == nil || !strings.Contains(err.Error(), "1 error(s)") {
		t.Errorf("Err() = %v", err)
	}
	if err := (verify.Findings{}).Err(); err != nil {
		t.Errorf("empty Err() = %v, want nil", err)
	}
}

// TestFindingsOrdered asserts findings come back sorted by source line.
func TestFindingsOrdered(t *testing.T) {
	src := `.kernel k
.reg 2
mov r0, 1
st.global [2], r0
st.global [6], r0
@p3 iadd r1, r0, 1
exit`
	p := mustAsm(t, src)
	// Two misalignments plus a use-before-def of guard p3.
	fs := verify.Check(p)
	if len(fs) < 3 {
		t.Fatalf("want >=3 findings, got:\n%s", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Line < fs[i-1].Line {
			t.Fatalf("findings unsorted:\n%s", fs)
		}
	}
}
