package verify

import (
	"fmt"

	"warped/internal/isa"
)

// Thread-symbolic abstract interpretation: the value domain behind
// rules (f), (g) and (h). Each register's abstract value is affine in
// the per-thread special registers —
//
//	v = c0·%tid.x + c1·%tid.y + c2·%laneid + c3·%warpid + [lo,hi]
//
// — or ⊤. The constant-interval domain of PR 4 is the all-coefficients-
// zero fragment; %tid-derived addressing, which every bundled kernel
// uses, stays symbolic instead of collapsing to ⊤, so the verifier can
// evaluate an address exactly for a concrete thread id. Alongside the
// registers the analysis tracks one comparison fact per predicate
// (pN ⇔ cmp(a,b) with affine a,b), so the guards the kernels use to
// mask tid ranges (`setp.lt.s32 p0, %tid.x, 64`) are evaluable per
// thread too. Both feed the tid-aware bounds/alignment refinements and
// the shared-race witness search in race.go.

// Symbolic dimensions of the affine domain.
const (
	symTIDX = iota // %tid.x
	symTIDY        // %tid.y
	symLANE        // %laneid
	symWARP        // %warpid
	numSyms
)

// geom is the launch geometry the analysis is relative to: the
// program's .block declaration unless Options overrides it. When
// unknown, per-dimension caps bound the symbols (the architectural
// 1024-thread block limit) so norm stays sound, but every per-thread
// refinement is disabled — only the conservative PR 4 behavior runs.
type geom struct {
	known    bool
	bx, by   int64 // block dims (when known)
	warp     int64 // warp width
	symMax   [numSyms]int64
	nThreads int64 // bx*by (when known)
}

func (c *checker) resolveGeom() geom {
	g := geom{warp: int64(c.opt.WarpSize)}
	bx, by := int64(c.opt.BlockDimX), int64(c.opt.BlockDimY)
	if bx <= 0 {
		bx, by = int64(c.p.BlockDimX), int64(c.p.BlockDimY)
	}
	if by <= 0 {
		by = 1
	}
	const capDim = 1024 // architectural threads-per-block ceiling
	if bx > 0 {
		g.known = true
		g.bx, g.by = bx, by
		g.nThreads = bx * by
		g.symMax[symTIDX] = bx - 1
		g.symMax[symTIDY] = by - 1
		g.symMax[symWARP] = (g.nThreads + g.warp - 1) / g.warp
		if g.symMax[symWARP] > 0 {
			g.symMax[symWARP]--
		}
	} else {
		g.symMax[symTIDX] = capDim - 1
		g.symMax[symTIDY] = capDim - 1
		g.symMax[symWARP] = capDim/g.warp - 1
	}
	g.symMax[symLANE] = g.warp - 1
	if g.known && g.nThreads < g.warp {
		g.symMax[symLANE] = g.nThreads - 1
	}
	return g
}

// symVal evaluates symbol s for the flattened thread id t, matching the
// simulator's launch-time fill: linear t = warp·W + lane, %tid.x =
// t mod BlockX, %tid.y = t div BlockX.
func (g *geom) symVal(s int, t int64) int64 {
	switch s {
	case symTIDX:
		return t % g.bx
	case symTIDY:
		return t / g.bx
	case symLANE:
		return t % g.warp
	default:
		return t / g.warp
	}
}

// threadName renders thread t the way kernel authors think of it.
func (g *geom) threadName(t int64) string {
	if g.by > 1 {
		return fmt.Sprintf("thread (%d,%d)", t%g.bx, t/g.bx)
	}
	return fmt.Sprintf("thread %d", t)
}

// aval is one register's abstract value: Σ co[s]·sym[s] + [lo,hi], or ⊤.
type aval struct {
	co     [numSyms]int64
	lo, hi int64
	top    bool
}

func topAval() aval          { return aval{top: true} }
func constAval(v int64) aval { return aval{lo: v, hi: v} }

func symAval(s int) aval {
	var v aval
	v.co[s] = 1
	return v
}

// pureIval reports whether v has no symbolic part.
func (v aval) pureIval() bool {
	return !v.top && v.co == [numSyms]int64{}
}

func (v aval) isConst() bool { return v.pureIval() && v.lo == v.hi }

// exact reports whether v is a single concrete value per thread.
func (v aval) exact() bool { return !v.top && v.lo == v.hi }

// rng projects v onto a plain interval using the geometry's symbol
// ranges (coefficients may be negative, so each term contributes its
// own min/max corner).
func (v aval) rng(g *geom) (int64, int64) {
	lo, hi := v.lo, v.hi
	for s, co := range v.co {
		if co >= 0 {
			hi += co * g.symMax[s]
		} else {
			lo += co * g.symMax[s]
		}
	}
	return lo, hi
}

// eval computes v's value range for the concrete thread t. For exact
// values the two bounds coincide.
func (v aval) eval(g *geom, t int64) (int64, int64) {
	base := int64(0)
	for s, co := range v.co {
		base += co * g.symVal(s, t)
	}
	return base + v.lo, base + v.hi
}

// norm collapses any value whose projected range escapes uint32 to ⊤:
// the machine wraps mod 2³², and modeling wraparound buys nothing here.
func (v aval) norm(g *geom) aval {
	if v.top || v.lo > v.hi {
		return topAval()
	}
	lo, hi := v.rng(g)
	if lo < 0 || hi > maxUint32 {
		return topAval()
	}
	return v
}

// hullAval joins two abstract values: equal coefficient vectors keep
// the symbolic part and hull the intervals; anything else falls back to
// the interval hull of both projected ranges.
func hullAval(a, b aval, g *geom) aval {
	if a.top || b.top {
		return topAval()
	}
	if a.co == b.co {
		return aval{co: a.co, lo: min64(a.lo, b.lo), hi: max64(a.hi, b.hi)}
	}
	alo, ahi := a.rng(g)
	blo, bhi := b.rng(g)
	return aval{lo: min64(alo, blo), hi: max64(ahi, bhi)}
}

func addAval(a, b aval) aval {
	if a.top || b.top {
		return topAval()
	}
	v := aval{lo: a.lo + b.lo, hi: a.hi + b.hi}
	for s := range v.co {
		v.co[s] = a.co[s] + b.co[s]
	}
	return v
}

func subAval(a, b aval) aval {
	if a.top || b.top {
		return topAval()
	}
	v := aval{lo: a.lo - b.hi, hi: a.hi - b.lo}
	for s := range v.co {
		v.co[s] = a.co[s] - b.co[s]
	}
	return v
}

// scaleAval multiplies by a compile-time constant (shl by constant,
// imul with a constant side).
func scaleAval(a aval, k int64) aval {
	if a.top {
		return topAval()
	}
	v := aval{lo: min64(a.lo*k, a.hi*k), hi: max64(a.lo*k, a.hi*k)}
	for s := range v.co {
		v.co[s] = a.co[s] * k
	}
	return v
}

func mulAval(a, b aval, g *geom) aval {
	switch {
	case a.top || b.top:
		return topAval()
	case a.isConst():
		return scaleAval(b, a.lo)
	case b.isConst():
		return scaleAval(a, b.lo)
	case a.pureIval() && b.pureIval():
		// Corner products; post-norm bounds keep int64 exact.
		p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
		return aval{
			lo: min64(min64(p1, p2), min64(p3, p4)),
			hi: max64(max64(p1, p2), max64(p3, p4)),
		}
	default:
		return topAval()
	}
}

// shrAval is logical shift right by a constant. Affine values divide
// exactly when every coefficient is a multiple of 2^k (post-norm values
// are non-negative, so floor distributes over the sum); otherwise the
// projected range shifts as a plain interval.
func shrAval(a aval, k int64, g *geom) aval {
	if a.top || k < 0 || k >= 32 {
		return topAval()
	}
	allDiv := true
	for _, co := range a.co {
		if co%(int64(1)<<k) != 0 {
			allDiv = false
			break
		}
	}
	if allDiv {
		v := aval{lo: a.lo >> k, hi: a.hi >> k}
		for s := range v.co {
			v.co[s] = a.co[s] >> k
		}
		return v
	}
	lo, hi := a.rng(g)
	return aval{lo: lo >> k, hi: hi >> k}
}

// predFact is what the analysis knows about one predicate register: a
// comparison over affine values (from an unguarded setp), a boolean
// combination of such facts (pand/pnot), or nothing.
type predFact struct {
	known  bool
	op     isa.CmpOp
	signed bool // s32 compare (u32 otherwise); f32 facts are never kept
	a, b   aval // exact affine operands
	l, r   *predFact
	neg    bool // pnot: fact = !l
	and    bool // pand: fact = l && r
}

func factsEqual(a, b *predFact) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.known != b.known || a.neg != b.neg || a.and != b.and {
		return false
	}
	if !a.known {
		return true
	}
	if a.op != b.op || a.signed != b.signed || a.a != b.a || a.b != b.b {
		return false
	}
	return factsEqual(a.l, b.l) && factsEqual(a.r, b.r)
}

// evalFact decides the predicate for concrete thread t; ok is false
// when any leaf operand is not evaluable.
func (f *predFact) evalFact(g *geom, t int64) (val, ok bool) {
	if f == nil || !f.known {
		return false, false
	}
	switch {
	case f.neg:
		v, ok := f.l.evalFact(g, t)
		return !v, ok
	case f.and:
		lv, lok := f.l.evalFact(g, t)
		rv, rok := f.r.evalFact(g, t)
		return lv && rv, lok && rok
	}
	if !f.a.exact() || !f.b.exact() {
		return false, false
	}
	av, _ := f.a.eval(g, t)
	bv, _ := f.b.eval(g, t)
	var cmp int
	if f.signed {
		x, y := int32(uint32(av)), int32(uint32(bv))
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	} else {
		x, y := uint32(av), uint32(bv)
		switch {
		case x < y:
			cmp = -1
		case x > y:
			cmp = 1
		}
	}
	switch f.op {
	case isa.CmpEQ:
		return cmp == 0, true
	case isa.CmpNE:
		return cmp != 0, true
	case isa.CmpLT:
		return cmp < 0, true
	case isa.CmpLE:
		return cmp <= 0, true
	case isa.CmpGT:
		return cmp > 0, true
	case isa.CmpGE:
		return cmp >= 0, true
	}
	return false, false
}

// validPred reports whether a program-supplied predicate index is in
// range; out-of-range indices are rule (b) errors but must not crash
// the value analysis, which still runs on malformed programs.
func validPred(i uint8) bool { return int(i) < isa.NumPreds }

// guardHolds decides an instruction guard for thread t against the
// predicate facts at that PC. Unguarded instructions hold for every
// thread; a guard with no usable fact is not evaluable (ok = false).
func (c *checker) guardHolds(pc int, t int64) (val, ok bool) {
	in := &c.p.Instrs[pc]
	if in.Pred.None {
		return true, true
	}
	if !validPred(in.Pred.Index) {
		return false, false
	}
	f := c.vals[pc].preds[in.Pred.Index]
	v, ok := f.evalFact(&c.geo, t)
	if !ok {
		return false, false
	}
	if in.Pred.Negate {
		v = !v
	}
	return v, true
}

// absState is the per-PC abstract store.
type absState struct {
	regs    []aval
	preds   [isa.NumPreds]*predFact
	reached bool
}

func newAbsState() absState {
	regs := make([]aval, isa.MaxGPR)
	for i := range regs {
		regs[i] = topAval()
	}
	return absState{regs: regs}
}

// operandAval evaluates a source operand under a state. %tid, %laneid
// and %warpid are the domain's symbols; %ntid is bounded by the
// declared geometry (a launch may be smaller, never larger, so an
// interval is sound where a constant would not be); the per-block
// specials (%ctaid, %nctaid) stay ⊤.
func (c *checker) operandAval(st *absState, o isa.Operand) aval {
	if o.IsImm {
		return constAval(int64(o.Imm))
	}
	r := o.Reg
	if r.IsSpecial() {
		switch r {
		case isa.RegTIDX:
			return symAval(symTIDX)
		case isa.RegTIDY:
			return symAval(symTIDY)
		case isa.RegLANEID:
			return symAval(symLANE)
		case isa.RegWARPID:
			return symAval(symWARP)
		case isa.RegNTIDX:
			if c.geo.known {
				return aval{lo: 1, hi: c.geo.bx}
			}
		case isa.RegNTIDY:
			if c.geo.known {
				return aval{lo: 1, hi: c.geo.by}
			}
		case isa.RegCTAIDX, isa.RegCTAIDY, isa.RegNCTAIDX, isa.RegNCTAIDY,
			isa.SpecialBase, isa.RegSpecialEnd:
			// Per-launch grid coordinates: not derivable from the block
			// geometry (and the range sentinels never reach here).
			return topAval()
		}
		return topAval()
	}
	if int(r) >= isa.MaxGPR {
		return topAval()
	}
	return st.regs[r]
}

// valueTransfer applies one instruction to a copy of the state.
func (c *checker) valueTransfer(in *isa.Instr, st absState) absState {
	g := &c.geo
	out := absState{regs: append([]aval(nil), st.regs...), preds: st.preds, reached: true}

	// Predicate writers first: they have no GPR destination.
	//simlint:ignore exhaustive-switch — only SETP/PAND/PNOT define predicates; every other opcode leaves the facts untouched, which the fall-through below handles
	switch in.Op {
	case isa.OpSETP:
		if !validPred(in.PDst) {
			return out
		}
		f := &predFact{}
		a := c.operandAval(&st, in.Src[0]).norm(g)
		b := c.operandAval(&st, in.Src[1]).norm(g)
		// A guarded setp merges with the old value per lane, and f32
		// compares are outside the integer domain: both stay unknown.
		if in.Pred.None && in.CmpTy != isa.CmpF32 && a.exact() && b.exact() {
			f = &predFact{known: true, op: in.Cmp, signed: in.CmpTy == isa.CmpS32, a: a, b: b}
		}
		out.preds[in.PDst] = f
		return out
	case isa.OpPAND:
		if !validPred(in.PDst) {
			return out
		}
		f := &predFact{}
		if in.Pred.None && validPred(in.PSrcA) && validPred(in.PSrcB) {
			l, r := st.preds[in.PSrcA], st.preds[in.PSrcB]
			if l != nil && l.known && r != nil && r.known {
				f = &predFact{known: true, and: true, l: l, r: r}
			}
		}
		out.preds[in.PDst] = f
		return out
	case isa.OpPNOT:
		if !validPred(in.PDst) {
			return out
		}
		f := &predFact{}
		if in.Pred.None && validPred(in.PSrcA) {
			if l := st.preds[in.PSrcA]; l != nil && l.known {
				f = &predFact{known: true, neg: true, l: l}
			}
		}
		out.preds[in.PDst] = f
		return out
	}

	dst, ok := in.Writes()
	if !ok || dst.IsSpecial() || int(dst) >= isa.MaxGPR {
		return out
	}
	a := c.operandAval(&st, in.Src[0])
	b := c.operandAval(&st, in.Src[1])
	cc := c.operandAval(&st, in.Src[2])

	var v aval
	//simlint:ignore exhaustive-switch — abstract interpretation: the integer ALU ops listed have precise transfer functions, and the default maps every other op to ⊤, which is sound for any opcode ever added
	switch in.Op {
	case isa.OpMOV:
		v = a
	case isa.OpIADD:
		v = addAval(a, b)
	case isa.OpISUB:
		v = subAval(a, b)
	case isa.OpIMUL:
		v = mulAval(a, b, g)
	case isa.OpIMAD:
		v = addAval(mulAval(a, b, g), cc)
	case isa.OpIMIN, isa.OpIMAX:
		v = minMaxAval(in.Op == isa.OpIMIN, a, b, g)
	case isa.OpSHL:
		if b.isConst() && b.lo < 32 {
			v = scaleAval(a, int64(1)<<b.lo)
		} else {
			v = topAval()
		}
	case isa.OpSHR:
		if b.isConst() {
			v = shrAval(a, b.lo, g)
		} else {
			v = topAval()
		}
	case isa.OpSAR:
		// Arithmetic shift matches the logical one while the sign bit
		// is provably clear.
		if b.isConst() && !a.top {
			if _, hi := a.rng(g); hi <= int64(1)<<31-1 {
				v = shrAval(a, b.lo, g)
				break
			}
		}
		v = topAval()
	case isa.OpAND:
		v = andAval(a, b)
	case isa.OpSELP:
		v = hullAval(a, b, g)
	default:
		// Loads, atomics, float ops, conversions: data-dependent.
		v = topAval()
	}
	v = v.norm(g)
	if !in.Pred.None {
		// Guarded write: the old value may survive on inactive lanes.
		v = hullAval(v, st.regs[dst], g).norm(g)
	}
	out.regs[dst] = v
	return out
}

func minMaxAval(isMin bool, a, b aval, g *geom) aval {
	if a.top || b.top {
		return topAval()
	}
	pick := max64
	if isMin {
		pick = min64
	}
	if a.co == b.co {
		// Pointwise min/max shares the symbolic part.
		return aval{co: a.co, lo: pick(a.lo, b.lo), hi: pick(a.hi, b.hi)}
	}
	alo, ahi := a.rng(g)
	blo, bhi := b.rng(g)
	return aval{lo: pick(alo, blo), hi: pick(ahi, bhi)}
}

func andAval(a, b aval) aval {
	mask, other := int64(-1), topAval()
	switch {
	case b.isConst():
		mask, other = b.lo, a
	case a.isConst():
		mask, other = a.lo, b
	}
	if mask < 0 {
		return topAval()
	}
	// x & m is exactly x mod (m+1) when m+1 is a power of two and every
	// symbolic coefficient is a multiple of it: the masked value is the
	// same constant for every thread.
	if m1 := mask + 1; m1&mask == 0 && other.exact() {
		all := true
		for _, co := range other.co {
			if co%m1 != 0 {
				all = false
				break
			}
		}
		if all && other.lo >= 0 {
			return constAval(other.lo & mask)
		}
	}
	// A constant mask bounds the result regardless of the other side.
	return aval{lo: 0, hi: mask}
}

// valueWidenVisits is how many times a PC's in-state may change before
// its changed registers are widened straight to ⊤ (and its changed
// predicate facts to unknown), guaranteeing the worklist terminates on
// counted loops (r = r + 4 style chains).
const valueWidenVisits = 24

// runValueAnalysis computes the affine fixpoint for every reachable PC
// into c.vals. It powers checkAlignment, checkSharedBounds and
// checkSharedRace; the transfer is monotone modulo widening, so the
// worklist terminates.
func (c *checker) runValueAnalysis() {
	c.geo = c.resolveGeom()
	n := len(c.p.Instrs)
	c.vals = make([]absState, n)
	visits := make([]int, n)
	c.vals[0] = newAbsState()
	c.vals[0].reached = true

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		inWork[pc] = false

		out := c.valueTransfer(&c.p.Instrs[pc], c.vals[pc])
		for _, nx := range c.succ[pc] {
			merged := out
			if c.vals[nx].reached {
				merged = absState{regs: make([]aval, isa.MaxGPR), reached: true}
				changed := false
				for i := range merged.regs {
					merged.regs[i] = hullAval(c.vals[nx].regs[i], out.regs[i], &c.geo).norm(&c.geo)
					if merged.regs[i] != c.vals[nx].regs[i] {
						changed = true
						if visits[nx] >= valueWidenVisits {
							merged.regs[i] = topAval()
						}
					}
				}
				for i := range merged.preds {
					merged.preds[i] = c.vals[nx].preds[i]
					if !factsEqual(merged.preds[i], out.preds[i]) {
						changed = true
						merged.preds[i] = &predFact{}
						if visits[nx] < valueWidenVisits && out.preds[i] != nil && c.vals[nx].preds[i] == nil {
							// First definition along a join: adopt it.
							merged.preds[i] = out.preds[i]
						}
					}
				}
				if !changed {
					continue
				}
			}
			c.vals[nx] = merged
			visits[nx]++
			if !inWork[nx] {
				inWork[nx] = true
				work = append(work, nx)
			}
		}
	}
}

// accessAval returns the abstract byte address of the memory access at
// pc (base operand plus displacement).
func (c *checker) accessAval(pc int) aval {
	in := &c.p.Instrs[pc]
	st := &c.vals[pc]
	base := c.operandAval(st, in.Src[0])
	if base.top {
		return topAval()
	}
	return addAval(base, constAval(int64(in.Off)))
}
