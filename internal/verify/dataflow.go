package verify

import "warped/internal/isa"

// state is one dataflow fact: a bit per GPR and per predicate register.
type state struct {
	gpr  uint64
	pred uint8
}

func (s state) union(o state) state { return state{s.gpr | o.gpr, s.pred | o.pred} }
func (s state) eq(o state) bool     { return s.gpr == o.gpr && s.pred == o.pred }

// readPreds returns the predicate registers an instruction reads: its
// guard plus the selector/source predicates of SELP/PAND/PNOT.
func readPreds(in *isa.Instr) uint8 {
	var ps uint8
	if !in.Pred.None {
		ps |= 1 << in.Pred.Index
	}
	if in.Op == isa.OpSELP || in.Op == isa.OpPNOT || in.Op == isa.OpPAND {
		ps |= 1 << in.PSrcA
	}
	if in.Op == isa.OpPAND {
		ps |= 1 << in.PSrcB
	}
	return ps
}

// writtenPred returns the predicate register an instruction defines.
func writtenPred(in *isa.Instr) (uint8, bool) {
	if in.Op == isa.OpSETP || in.Op == isa.OpPAND || in.Op == isa.OpPNOT {
		return in.PDst, true
	}
	return 0, false
}

// defs returns the bits an instruction defines. A guarded write counts:
// predicates are not modeled symbolically, so treating `@p0 mov r1,...`
// as a definition is what keeps the bundled kernels' predicated-slot
// idiom from flagging (see the package comment).
func defs(in *isa.Instr) state {
	var d state
	if r, ok := in.Writes(); ok && !r.IsSpecial() && int(r) < 64 {
		d.gpr |= 1 << uint(r)
	}
	if p, ok := writtenPred(in); ok && int(p) < isa.NumPreds {
		d.pred |= 1 << p
	}
	return d
}

// checkUseBeforeDef implements rule (a): forward may-analysis of
// "possibly still uninitialized" registers. The entry state marks every
// GPR and predicate undefined; a use whose bit survives on some path to
// the instruction is reported. Special registers are always defined.
func (c *checker) checkUseBeforeDef() {
	n := len(c.p.Instrs)
	inState := make([]state, n)
	seen := make([]bool, n)
	inState[0] = state{gpr: ^uint64(0), pred: ^uint8(0)}
	seen[0] = true

	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		out := inState[pc]
		d := defs(&c.p.Instrs[pc])
		out.gpr &^= d.gpr
		out.pred &^= d.pred
		for _, nx := range c.succ[pc] {
			merged := out
			if seen[nx] {
				merged = inState[nx].union(out)
				if merged.eq(inState[nx]) {
					continue
				}
			}
			inState[nx] = merged
			seen[nx] = true
			work = append(work, nx)
		}
	}

	for pc := 0; pc < n; pc++ {
		if !seen[pc] {
			continue
		}
		in := &c.p.Instrs[pc]
		st := inState[pc]
		for _, r := range in.Reads() {
			if int(r) < 64 && st.gpr&(1<<uint(r)) != 0 {
				c.addf(pc, SevError, RuleUseBeforeDef,
					"%s may be read before any instruction writes it", r)
				st.gpr &^= 1 << uint(r) // one report per register per site
			}
		}
		for ps, bit := readPreds(in), 0; ps != 0; bit++ {
			if ps&(1<<bit) != 0 {
				ps &^= 1 << bit
				if st.pred&(1<<bit) != 0 {
					c.addf(pc, SevError, RuleUseBeforeDef,
						"p%d may be read before any instruction sets it", bit)
				}
			}
		}
	}
}
