package verify

import (
	"sort"

	"warped/internal/isa"
)

// buildCFG computes instruction-granularity successor lists. Invalid
// branch targets are reported and omitted from the graph so the
// dataflow passes stay well defined. A fall-through edge past the last
// instruction is reported as rule (c) and omitted.
func (c *checker) buildCFG() {
	n := len(c.p.Instrs)
	c.succ = make([][]int, n)
	addFall := func(pc int) {
		if pc+1 < n {
			c.succ[pc] = append(c.succ[pc], pc+1)
		} else {
			c.addf(pc, SevError, RuleFallThrough,
				"control can fall through the end of the program without exit")
		}
	}
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		//simlint:ignore exhaustive-switch — BRA and EXIT are the only ops that redirect control; every other op (any unit class) falls through to the next pc, which is exactly what the default records
		switch in.Op {
		case isa.OpEXIT:
			if !in.Pred.None {
				// Lanes whose guard is false continue in sequence.
				addFall(pc)
			}
		case isa.OpBRA:
			if in.Target < 0 || in.Target >= n {
				c.addf(pc, SevError, RuleStructure, "branch target pc %d outside program of %d instructions", in.Target, n)
			} else {
				c.succ[pc] = append(c.succ[pc], in.Target)
			}
			if !in.Pred.None {
				addFall(pc)
			}
		default:
			addFall(pc)
		}
	}
}

// reachFrom collects every PC reachable from the starts, following CFG
// edges but never entering `stop` (pass stop < 0 to disable). A start
// equal to stop contributes nothing.
func (c *checker) reachFrom(starts []int, stop int) []bool {
	seen := make([]bool, len(c.p.Instrs))
	var stack []int
	for _, s := range starts {
		if s >= 0 && s < len(seen) && s != stop && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nx := range c.succ[pc] {
			if nx != stop && !seen[nx] {
				seen[nx] = true
				stack = append(stack, nx)
			}
		}
	}
	return seen
}

// checkReachability implements rule (c): instructions no path from the
// entry reaches. Consecutive unreachable instructions are reported as
// one finding at the head of the run. The assembler's synthesized
// trailing exit (line 0) is exempt.
func (c *checker) checkReachability() {
	c.reachable = c.reachFrom([]int{0}, -1)
	n := len(c.p.Instrs)
	for pc := 0; pc < n; {
		if c.reachable[pc] {
			pc++
			continue
		}
		start := pc
		for pc < n && !c.reachable[pc] {
			pc++
		}
		if start == n-1 && c.p.Instrs[start].Op == isa.OpEXIT && c.p.Instrs[start].Line == 0 {
			continue // assembler-appended terminator after an infinite loop
		}
		if pc-start == 1 {
			c.addf(start, SevWarning, RuleUnreachable, "unreachable instruction")
		} else {
			c.addf(start, SevWarning, RuleUnreachable, "unreachable code (%d instructions)", pc-start)
		}
	}
}

// divergentBranches lists the reachable guarded branches whose guard
// predicate the uniformity analysis could not prove block-uniform.
// Only these can split a warp's active mask. Requires computeUniformity.
func (c *checker) divergentBranches() []int {
	var out []int
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op != isa.OpBRA || in.Pred.None || !c.reachable[pc] {
			continue
		}
		if c.divPred[pc]&(1<<in.Pred.Index) != 0 {
			out = append(out, pc)
		}
	}
	return out
}

// checkReconvergence implements the first half of rule (d): every
// reachable guarded branch must have a reconvergence PC that both the
// taken path and the fall-through path can reach, or the split lanes
// never merge and the continuation frame resumes at a PC normal control
// flow never feeds.
func (c *checker) checkReconvergence() {
	n := len(c.p.Instrs)
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op != isa.OpBRA || in.Pred.None || !c.reachable[pc] {
			continue
		}
		if in.Reconv < 0 || in.Reconv >= n {
			c.addf(pc, SevError, RuleReconvergence, "reconvergence pc %d outside program of %d instructions", in.Reconv, n)
			continue
		}
		if in.Target < 0 || in.Target >= n {
			continue // already reported by buildCFG
		}
		fromTaken := c.reachFrom([]int{in.Target}, -1)
		fromFall := []bool{}
		if pc+1 < n {
			fromFall = c.reachFrom([]int{pc + 1}, -1)
		}
		takenOK := in.Target == in.Reconv || fromTaken[in.Reconv]
		fallOK := pc+1 == in.Reconv || (pc+1 < n && fromFall[in.Reconv])
		switch {
		case !takenOK && !fallOK:
			c.addf(pc, SevError, RuleReconvergence,
				"reconvergence pc %d is unreachable from both the taken path and the fall-through: divergent lanes never merge", in.Reconv)
		case !takenOK:
			c.addf(pc, SevWarning, RuleReconvergence,
				"reconvergence pc %d is unreachable from the taken path (pc %d); lanes merge only if every taken path exits", in.Reconv, in.Target)
		case !fallOK:
			c.addf(pc, SevWarning, RuleReconvergence,
				"reconvergence pc %d is unreachable from the fall-through (pc %d); lanes merge only if every fall-through path exits", in.Reconv, pc+1)
		}
	}
}

// divergentRegion returns the set of PCs executable while the branch at
// pc holds the warp split: everything reachable from the taken target
// and the fall-through without passing the reconvergence PC.
func (c *checker) divergentRegion(pc int) []bool {
	in := &c.p.Instrs[pc]
	starts := []int{pc + 1}
	if in.Target >= 0 && in.Target < len(c.p.Instrs) {
		starts = append(starts, in.Target)
	}
	return c.reachFrom(starts, in.Reconv)
}

// checkDivergence implements the second half of rule (d) and rule (e).
// Nesting depth: divergent regions that strictly contain one another
// approximate the SIMT reconvergence stack; a chain deeper than the
// configured bound would overflow a hardware PDOM stack. Barriers: a
// bar.sync inside any divergent region, or guarded by a divergent
// predicate, is the classic barrier-divergence hang.
func (c *checker) checkDivergence() {
	branches := c.divergentBranches()
	regions := make([][]bool, len(branches))
	sizes := make([]int, len(branches))
	for i, pc := range branches {
		regions[i] = c.divergentRegion(pc)
		for _, r := range regions[i] {
			if r {
				sizes[i]++
			}
		}
	}

	// Longest strict-containment chain, by DP over regions sorted by size.
	order := make([]int, len(branches))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] < sizes[order[b]] })
	depth := make([]int, len(branches))
	maxDepth, deepest := 0, -1
	for _, i := range order {
		depth[i] = 1
		for _, j := range order {
			if sizes[j] >= sizes[i] {
				break
			}
			if depth[j]+1 > depth[i] && contains(regions[i], regions[j]) {
				depth[i] = depth[j] + 1
			}
		}
		if depth[i] > maxDepth {
			maxDepth, deepest = depth[i], branches[i]
		}
	}
	if maxDepth > c.opt.MaxDivergenceDepth {
		c.addf(deepest, SevWarning, RuleDivergenceDepth,
			"divergent branches nest %d deep, exceeding the SIMT stack bound of %d",
			maxDepth, c.opt.MaxDivergenceDepth)
	}

	// Barriers under divergence.
	flagged := make(map[int]bool)
	for i, bpc := range branches {
		for pc, inRegion := range regions[i] {
			if !inRegion || flagged[pc] || c.p.Instrs[pc].Op != isa.OpBAR {
				continue
			}
			flagged[pc] = true
			c.addf(pc, SevError, RuleDivergentBarrier,
				"bar.sync is reachable while the divergent branch at line %d holds the warp split: threads that took the other path never arrive",
				c.p.Instrs[bpc].Line)
		}
	}
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op != isa.OpBAR || in.Pred.None || !c.reachable[pc] {
			continue
		}
		if c.divPred[pc]&(1<<in.Pred.Index) != 0 {
			c.addf(pc, SevError, RuleDivergentBarrier,
				"bar.sync guarded by p%d, which may differ across the block's threads", in.Pred.Index)
		}
	}
}

// contains reports whether set a strictly contains set b.
func contains(a, b []bool) bool {
	proper := false
	for i := range b {
		if b[i] && !a[i] {
			return false
		}
		if a[i] && !b[i] {
			proper = true
		}
	}
	return proper
}
