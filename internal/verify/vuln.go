package verify

// Static fault-vulnerability analysis (ACE analysis).
//
// The Warped-DMR fault model corrupts, per dynamic instruction, exactly
// one computed value (internal/exec.Machine):
//
//   - data ops (SP/SFU): the result written to the destination GPR
//   - setp: the 0/1 comparison result that sets the destination predicate
//   - ld/st/atom: the effective address
//
// An instruction is unACE (un-Architecturally-Correct-Execution
// required) when no corruption of that value can ever change anything
// observable: kernel output, validation results, or any simulator
// statistic (the figures print statistics, so "observable" includes
// timing-relevant state such as executing masks and addresses). A fault
// injected at an unACE PC is architecturally masked, which is what
// makes skipping its verification free coverage-wise — the basis of
// policy synthesis (arch.SynthesizePolicy).
//
// The analysis is a backward per-instruction bit-level liveness
// dataflow over the verifier's CFG, with masking transfers:
//
//   - `and r,a,M` with constant M: only bits of a under M flow through
//   - `shl`/`shr`/`sar` by a constant shift the live-bit window
//   - `iadd`/`isub`/`imul`/`imad`: carries propagate upward only, so a
//     live window [0..k] keeps source bits [0..k] live and kills higher
//   - a dest written on every lane kills its previous value; a guarded
//     write kills only when the affine-in-tid domain (affine.go) proves
//     the guard true for every thread of the declared geometry —
//     otherwise inactive lanes keep the old value and it stays live
//
// Soundness caveats (docs/STATIC_ANALYSIS.md "Vulnerability analysis"):
// liveness is a may-analysis per thread slot; anything stored to memory
// is treated as fully live (cross-thread flows move through memory, so
// per-thread register liveness stays sound under races and atomics);
// guard predicates are always live because the executing-lane count
// they select feeds the statistics the figures print; memory ops are
// always ACE because their verified value is the effective address.
// Unreachable instructions are classified unknown, not unACE: the
// analysis never saw them execute, so it refuses to claim masking.

import (
	"fmt"
	"math/bits"

	"warped/internal/isa"
)

// VulnClass classifies a PC's fault vulnerability.
type VulnClass uint8

const (
	// VulnUnknown marks PCs the analysis cannot soundly classify
	// (unreachable code). Policy synthesis protects them.
	VulnUnknown VulnClass = iota
	// VulnACE marks PCs where a fault can reach observable state.
	VulnACE
	// VulnUnACE marks PCs where every fault is architecturally masked.
	VulnUnACE
)

func (c VulnClass) String() string {
	switch c {
	case VulnACE:
		return "ACE"
	case VulnUnACE:
		return "unACE"
	case VulnUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("VulnClass(%d)", int(c))
	}
}

// PCVuln is the classification of one instruction.
type PCVuln struct {
	PC   int
	Line int
	// Class is the ACE classification under the machine's fault model.
	Class VulnClass
	// Eligible reports whether the DMR engine would verify this
	// instruction at all (core's computable set: everything except
	// control ops, nop, and the predicate-file ops). Protection
	// policies only ever skip eligible instructions, so synthesis
	// consumes eligible unACE PCs.
	Eligible bool
	// LiveBits is the live-out bit mask of the destination value for
	// data ops (0 for a dead result); 0 or 1 for setp.
	LiveBits uint32
	// Reason is a short, stable explanation of the classification.
	Reason string
}

// VulnReport is the per-kernel vulnerability analysis result.
type VulnReport struct {
	Kernel string
	PCs    []PCVuln

	// Counts over DMR-eligible PCs (the policy-relevant population).
	EligiblePCs int
	ACE         int
	UnACE       int
	Unknown     int
}

// UnACEPCs returns the eligible unACE PCs in program order — the PCs a
// synthesized policy may skip.
func (r *VulnReport) UnACEPCs() []int {
	var out []int
	for _, v := range r.PCs {
		if v.Eligible && v.Class == VulnUnACE {
			out = append(out, v.PC)
		}
	}
	return out
}

// AnalyzeVuln classifies every PC of a program with default options.
func AnalyzeVuln(p *isa.Program) (*VulnReport, error) {
	return AnalyzeVulnWith(p, Options{})
}

// AnalyzeVulnWith classifies every PC of the program as ACE, unACE or
// unknown under the simulator's fault model. The program must verify
// clean of errors first: liveness over a malformed CFG (invalid branch
// targets, fall-through past the end) is not sound, so error-severity
// findings abort the analysis.
func AnalyzeVulnWith(p *isa.Program, opt Options) (*VulnReport, error) {
	opt = opt.withDefaults()
	if p == nil || len(p.Instrs) == 0 {
		return nil, fmt.Errorf("verify: vuln: empty program")
	}
	if err := CheckWith(p, opt).Err(); err != nil {
		return nil, fmt.Errorf("verify: vuln: program does not verify: %w", err)
	}
	c := &checker{p: p, opt: opt}
	c.buildCFG()
	c.checkReachability()
	c.runValueAnalysis() // affine facts for the uniform-guard kill refinement
	v := &vulnAnalysis{c: c}
	v.run()
	return v.report(), nil
}

// vulnEligible mirrors the DMR engine's computable set (core.computable):
// the instructions whose issue enters the verification machinery.
func vulnEligible(op isa.Opcode) bool {
	return op.Unit() != isa.UnitCTRL &&
		op != isa.OpNOP && op != isa.OpPAND && op != isa.OpPNOT
}

// liveState is the backward-dataflow fact at one program point: the
// live bits of every GPR plus a live bit per predicate register.
type liveState struct {
	gpr  [isa.MaxGPR]uint32
	pred uint8
}

func (s *liveState) union(o *liveState) (changed bool) {
	for i := range s.gpr {
		if m := s.gpr[i] | o.gpr[i]; m != s.gpr[i] {
			s.gpr[i] = m
			changed = true
		}
	}
	if m := s.pred | o.pred; m != s.pred {
		s.pred = m
		changed = true
	}
	return changed
}

// vulnAnalysis runs the liveness fixpoint and classification.
type vulnAnalysis struct {
	c *checker

	in         []liveState // live-in per PC (fixpoint result)
	preds      [][]int     // CFG predecessor lists
	alwaysExec []bool      // write provably executes on every thread
}

func (v *vulnAnalysis) run() {
	c := v.c
	n := len(c.p.Instrs)
	v.in = make([]liveState, n)
	v.preds = make([][]int, n)
	for pc, ss := range c.succ {
		for _, s := range ss {
			v.preds[s] = append(v.preds[s], pc)
		}
	}
	v.alwaysExec = make([]bool, n)
	for pc := range c.p.Instrs {
		v.alwaysExec[pc] = v.guardAlwaysHolds(pc)
	}

	// Backward worklist to fixpoint. The lattice is finite (bit masks
	// only grow under union) and the transfer is monotone, so this
	// terminates.
	inWork := make([]bool, n)
	work := make([]int, 0, n)
	for pc := n - 1; pc >= 0; pc-- {
		work = append(work, pc)
		inWork[pc] = true
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false
		out := v.outState(pc)
		v.transfer(pc, &out)
		if v.in[pc].union(&out) {
			for _, p := range v.preds[pc] {
				if !inWork[p] {
					inWork[p] = true
					work = append(work, p)
				}
			}
		}
	}
}

// outState unions the live-in states of pc's successors. Exits (no
// successors) flow from the empty state: registers are dead once the
// kernel is done — memory is the output.
func (v *vulnAnalysis) outState(pc int) liveState {
	var out liveState
	for _, s := range v.c.succ[pc] {
		out.union(&v.in[s])
	}
	return out
}

// guardAlwaysHolds reports whether the instruction's guard is provably
// true for every thread of the declared geometry, making its write
// unconditional — the affine-in-tid refinement that lets tautologically
// guarded writes kill liveness.
func (v *vulnAnalysis) guardAlwaysHolds(pc int) bool {
	in := &v.c.p.Instrs[pc]
	if in.Pred.None {
		return true
	}
	c := v.c
	if !c.geo.known || len(c.vals) <= pc || !c.vals[pc].reached {
		return false
	}
	for t := int64(0); t < c.geo.nThreads; t++ {
		val, ok := c.guardHolds(pc, t)
		if !ok || !val {
			return false
		}
	}
	return true
}

// allUpTo returns the mask of every bit position up to and including
// the highest set bit of m — the carry-widening closure for additive
// and multiplicative transfers, where bit k of the result depends only
// on source bits 0..k.
func allUpTo(m uint32) uint32 {
	if m == 0 {
		return 0
	}
	return uint32(1)<<uint(bits.Len32(m)) - 1
}

// transfer rewrites the live-out state `st` into the live-in state of
// pc in place.
func (v *vulnAnalysis) transfer(pc int, st *liveState) {
	in := &v.c.p.Instrs[pc]

	// The destination's live-out bits drive the source transfers.
	var dl uint32
	if r, ok := in.Writes(); ok && !r.IsSpecial() && int(r) < isa.MaxGPR {
		dl = st.gpr[r]
		if v.alwaysExec[pc] {
			st.gpr[r] = 0 // every lane overwrites: prior value dies here
		}
	}
	pdstLive := false
	if p, ok := writtenPred(in); ok && int(p) < isa.NumPreds {
		pdstLive = st.pred&(1<<p) != 0
		if v.alwaysExec[pc] {
			st.pred &^= 1 << p
		}
	}

	// Guards are always live: the executing-lane count they select
	// feeds warp statistics (ActiveHist, ThreadInstrs, per-unit run
	// lengths) that the figures print, so a corrupted guard is always
	// observable even when the guarded instruction's result is dead.
	if !in.Pred.None && int(in.Pred.Index) < isa.NumPreds {
		st.pred |= 1 << in.Pred.Index
	}

	genReg := func(o isa.Operand, m uint32) {
		if m == 0 || o.IsImm || o.Reg.IsSpecial() || int(o.Reg) >= isa.MaxGPR {
			return
		}
		st.gpr[o.Reg] |= m
	}
	full := uint32(0xFFFFFFFF)

	//simlint:ignore exhaustive-switch — masking transfers are per-shape, not per-opcode; the default conservatively marks every source bit live whenever any result bit is, which is sound for any future opcode
	switch in.Op {
	case isa.OpLD:
		// The effective address is the fault target and drives
		// coalescing/bank-conflict timing: the base is fully live.
		genReg(in.Src[0], full)
	case isa.OpST, isa.OpATOM:
		genReg(in.Src[0], full)
		// Stored (or atomically added) data reaches memory, the
		// kernel's output domain: fully live regardless of dl.
		genReg(in.Src[1], full)
	case isa.OpBRA, isa.OpBAR, isa.OpEXIT, isa.OpNOP:
		// Control ops read no GPRs (the guard was handled above).
	case isa.OpSETP:
		// The comparison feeds only the destination predicate: sources
		// are live exactly when that predicate is.
		if pdstLive {
			genReg(in.Src[0], full)
			genReg(in.Src[1], full)
		}
	case isa.OpSELP:
		genReg(in.Src[0], dl)
		genReg(in.Src[1], dl)
		if dl != 0 && int(in.PSrcA) < isa.NumPreds {
			st.pred |= 1 << in.PSrcA
		}
	case isa.OpPAND:
		if pdstLive {
			if int(in.PSrcA) < isa.NumPreds {
				st.pred |= 1 << in.PSrcA
			}
			if int(in.PSrcB) < isa.NumPreds {
				st.pred |= 1 << in.PSrcB
			}
		}
	case isa.OpPNOT:
		if pdstLive && int(in.PSrcA) < isa.NumPreds {
			st.pred |= 1 << in.PSrcA
		}
	case isa.OpMOV, isa.OpXOR, isa.OpOR, isa.OpNOT:
		if in.Op == isa.OpOR && in.Src[1].IsImm {
			// Bits forced to 1 by the immediate mask the register.
			genReg(in.Src[0], dl&^in.Src[1].Imm)
			break
		}
		for i := 0; i < in.Op.NumSrc(); i++ {
			genReg(in.Src[i], dl)
		}
	case isa.OpAND:
		if in.Src[1].IsImm {
			genReg(in.Src[0], dl&in.Src[1].Imm)
		} else if in.Src[0].IsImm {
			genReg(in.Src[1], dl&in.Src[0].Imm)
		} else {
			genReg(in.Src[0], dl)
			genReg(in.Src[1], dl)
		}
	case isa.OpSHL:
		if in.Src[1].IsImm && in.Src[1].Imm < 32 {
			genReg(in.Src[0], dl>>in.Src[1].Imm)
		} else {
			m := uint32(0)
			if dl != 0 {
				m = full
			}
			genReg(in.Src[0], m)
			genReg(in.Src[1], m)
		}
	case isa.OpSHR:
		if in.Src[1].IsImm && in.Src[1].Imm < 32 {
			genReg(in.Src[0], dl<<in.Src[1].Imm)
		} else {
			m := uint32(0)
			if dl != 0 {
				m = full
			}
			genReg(in.Src[0], m)
			genReg(in.Src[1], m)
		}
	case isa.OpSAR:
		if in.Src[1].IsImm && in.Src[1].Imm < 32 {
			k := in.Src[1].Imm
			m := dl << k
			if dl>>(31-k) != 0 {
				m |= 1 << 31 // replicated sign bit feeds the high window
			}
			genReg(in.Src[0], m)
		} else {
			m := uint32(0)
			if dl != 0 {
				m = full
			}
			genReg(in.Src[0], m)
			genReg(in.Src[1], m)
		}
	case isa.OpIADD, isa.OpISUB, isa.OpIMUL:
		m := allUpTo(dl)
		genReg(in.Src[0], m)
		genReg(in.Src[1], m)
	case isa.OpIMAD:
		m := allUpTo(dl)
		genReg(in.Src[0], m)
		genReg(in.Src[1], m)
		genReg(in.Src[2], m)
	default:
		// Comparisons (imin/imax), floating point, SFU: every source
		// bit can reach every result bit, so sources are fully live
		// whenever any result bit is.
		m := uint32(0)
		if dl != 0 {
			m = full
		}
		for i := 0; i < in.Op.NumSrc(); i++ {
			genReg(in.Src[i], m)
		}
	}
}

// report classifies every PC from the liveness fixpoint.
func (v *vulnAnalysis) report() *VulnReport {
	c := v.c
	r := &VulnReport{Kernel: c.p.Name}
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		pv := PCVuln{PC: pc, Line: in.Line, Eligible: vulnEligible(in.Op)}
		out := v.outState(pc)
		switch {
		case !c.reachable[pc]:
			pv.Class = VulnUnknown
			pv.Reason = "unreachable: never analyzed, protected defensively"
		case in.Op.Unit() == isa.UnitLDST:
			pv.Class = VulnACE
			pv.LiveBits = 0xFFFFFFFF
			pv.Reason = "memory op: the effective address is the fault target"
		case in.Op.Unit() == isa.UnitCTRL:
			pv.Class = VulnACE
			pv.Reason = "control flow"
		case in.Op == isa.OpNOP:
			pv.Class = VulnUnACE
			pv.Reason = "no architectural result"
		case in.Op == isa.OpSETP || in.Op == isa.OpPAND || in.Op == isa.OpPNOT:
			if out.pred&(1<<in.PDst) != 0 {
				pv.Class = VulnACE
				pv.LiveBits = 1
				pv.Reason = fmt.Sprintf("defines live predicate p%d", in.PDst)
			} else {
				pv.Class = VulnUnACE
				pv.Reason = fmt.Sprintf("predicate p%d is dead on every path", in.PDst)
			}
		default:
			var dl uint32
			if dst, ok := in.Writes(); ok && !dst.IsSpecial() && int(dst) < isa.MaxGPR {
				dl = out.gpr[dst]
			}
			pv.LiveBits = dl
			if dl != 0 {
				pv.Class = VulnACE
				pv.Reason = fmt.Sprintf("result bits 0x%08x reach observable state", dl)
			} else {
				pv.Class = VulnUnACE
				pv.Reason = "result is dead on every path"
			}
		}
		if pv.Eligible {
			r.EligiblePCs++
			switch pv.Class {
			case VulnACE:
				r.ACE++
			case VulnUnACE:
				r.UnACE++
			case VulnUnknown:
				r.Unknown++
			}
		}
		r.PCs = append(r.PCs, pv)
	}
	return r
}
