package verify

import "warped/internal/isa"

// computeUniformity runs the forward divergence dataflow used by rules
// (d) and (e): a bit set means the register's value may differ between
// threads of the same block. Sources of divergence are the per-thread
// specials (%tid, %laneid, %warpid), loads from writable memory spaces,
// and atomics; immediates, kernel parameters, and the per-block
// specials (%ctaid, %ntid, %nctaid) are uniform. A write under a
// divergent guard is itself divergent (lanes disagree about whether the
// write happened), which is what lets the bundled kernels' uniform loop
// counters stay uniform while their predicated bodies do not.
//
// The pass iterates with control dependence: once a branch is known
// divergent, every definition inside its divergent region executes on
// only a subset of lanes, so those definitions are re-marked divergent
// and the dataflow reruns until no new divergent branch appears.
func (c *checker) computeUniformity() {
	c.ctrlDiv = make([]bool, len(c.p.Instrs))
	for {
		c.runUniformityFixpoint()
		changed := false
		for _, bpc := range c.divergentBranches() {
			for pc, inRegion := range c.divergentRegion(bpc) {
				if inRegion && !c.ctrlDiv[pc] {
					c.ctrlDiv[pc] = true
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

func (c *checker) runUniformityFixpoint() {
	n := len(c.p.Instrs)
	c.divGPR = make([]uint64, n)
	c.divPred = make([]uint8, n)
	seen := make([]bool, n)
	seen[0] = true

	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		outG, outP := c.transferUniformity(pc)
		for _, nx := range c.succ[pc] {
			mg, mp := outG, outP
			if seen[nx] {
				mg |= c.divGPR[nx]
				mp |= c.divPred[nx]
				if mg == c.divGPR[nx] && mp == c.divPred[nx] {
					continue
				}
			}
			c.divGPR[nx], c.divPred[nx] = mg, mp
			seen[nx] = true
			work = append(work, nx)
		}
	}
}

// specialDivergent reports whether a special register varies between
// threads of one block.
func specialDivergent(r isa.Reg) bool {
	return r == isa.RegTIDX || r == isa.RegTIDY ||
		r == isa.RegLANEID || r == isa.RegWARPID
}

// operandDivergent evaluates an operand against the in-state.
func operandDivergent(g uint64, o isa.Operand) bool {
	if o.IsImm {
		return false
	}
	if o.Reg.IsSpecial() {
		return specialDivergent(o.Reg)
	}
	if int(o.Reg) >= 64 {
		return true // out of range, reported by reg-bounds; stay conservative
	}
	return g&(1<<uint(o.Reg)) != 0
}

// transferUniformity applies one instruction to its in-state and
// returns the out-state. The transfer is monotone in the in-state, so
// the worklist loop reaches a fixpoint.
func (c *checker) transferUniformity(pc int) (uint64, uint8) {
	in := &c.p.Instrs[pc]
	g, p := c.divGPR[pc], c.divPred[pc]

	srcDiv := func(k int) bool { return operandDivergent(g, in.Src[k]) }
	guarded := !in.Pred.None
	guardDiv := (guarded && p&(1<<in.Pred.Index) != 0) || c.ctrlDiv[pc]

	setGPR := func(r isa.Reg, div bool) {
		if r.IsSpecial() || int(r) >= 64 {
			return
		}
		old := g&(1<<uint(r)) != 0
		div = div || guardDiv || (guarded && old)
		if div {
			g |= 1 << uint(r)
		} else {
			g &^= 1 << uint(r)
		}
	}
	setPred := func(idx uint8, div bool) {
		if int(idx) >= isa.NumPreds {
			return
		}
		old := p&(1<<idx) != 0
		div = div || guardDiv || (guarded && old)
		if div {
			p |= 1 << idx
		} else {
			p &^= 1 << idx
		}
	}

	//simlint:ignore exhaustive-switch — memory and predicate ops have bespoke transfer functions; the default derives every data op's from opTable metadata (HasDst/NumSrc), so a new opcode is handled conservatively without a case
	switch in.Op {
	case isa.OpLD:
		// Parameter space is read-only and identical for every thread:
		// a uniform address yields a uniform value. Global, shared, and
		// local memory are writable, so loaded values are divergent.
		if in.Space == isa.SpaceParam {
			setGPR(in.Dst, srcDiv(0))
		} else {
			setGPR(in.Dst, true)
		}
	case isa.OpATOM:
		setGPR(in.Dst, true) // returns the per-lane serialization order
	case isa.OpSELP:
		setGPR(in.Dst, srcDiv(0) || srcDiv(1) || p&(1<<in.PSrcA) != 0)
	case isa.OpSETP:
		setPred(in.PDst, srcDiv(0) || srcDiv(1))
	case isa.OpPAND:
		setPred(in.PDst, p&(1<<in.PSrcA) != 0 || p&(1<<in.PSrcB) != 0)
	case isa.OpPNOT:
		setPred(in.PDst, p&(1<<in.PSrcA) != 0)
	default:
		if in.Op.HasDst() {
			div := false
			for k := 0; k < in.Op.NumSrc(); k++ {
				div = div || srcDiv(k)
			}
			setGPR(in.Dst, div)
		}
	}
	return g, p
}
