package verify

import (
	"fmt"

	"warped/internal/isa"
)

// Shared-memory bounds checking (rule g): a forward interval analysis
// over GPR values catches ld.shared/st.shared/atom.shared accesses that
// provably overrun the program's declared .shared size. The domain per
// register is an unsigned interval [lo,hi] or ⊤ (unknown); constants
// enter through immediates, propagate through the integer ALU ops, and
// everything data-dependent (loads, specials like %tid, atomics, float
// ops) is ⊤. Only accesses whose LOWEST possible address already
// overruns the declaration are reported — an access that merely might
// overrun (⊤ base, or a wide interval straddling the limit) stays
// silent, which is what keeps the bundled kernels' tid-derived
// addressing clean. Programs with no .shared declaration skip the rule
// entirely: there is no declared budget to check against.

const maxUint32 = int64(1)<<32 - 1

// ival is one register's abstract value.
type ival struct {
	lo, hi int64
	top    bool
}

func topIval() ival          { return ival{top: true} }
func constIval(v int64) ival { return ival{lo: v, hi: v} }

// norm collapses any bound escaping uint32 range to ⊤: the machine
// wraps mod 2³², and modeling wraparound precisely buys nothing here.
func (v ival) norm() ival {
	if v.top || v.lo < 0 || v.hi > maxUint32 || v.lo > v.hi {
		return topIval()
	}
	return v
}

func (v ival) isConst() bool { return !v.top && v.lo == v.hi }

// hull joins two abstract values.
func hull(a, b ival) ival {
	if a.top || b.top {
		return topIval()
	}
	return ival{lo: min64(a.lo, b.lo), hi: max64(a.hi, b.hi)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// sharedState is the per-PC abstract store: one interval per GPR.
type sharedState struct {
	regs    []ival
	reached bool
}

func (c *checker) newSharedState() sharedState {
	regs := make([]ival, isa.MaxGPR)
	for i := range regs {
		regs[i] = topIval()
	}
	return sharedState{regs: regs}
}

// operandIval evaluates a source operand under a state. Special
// registers (thread geometry) are per-thread values: ⊤.
func operandIval(st *sharedState, o isa.Operand) ival {
	if o.IsImm {
		return constIval(int64(o.Imm))
	}
	if o.Reg.IsSpecial() || int(o.Reg) >= isa.MaxGPR {
		return topIval()
	}
	return st.regs[o.Reg]
}

// sharedTransfer applies one instruction to a copy of the state.
func sharedTransfer(in *isa.Instr, st sharedState) sharedState {
	out := sharedState{regs: append([]ival(nil), st.regs...), reached: true}
	dst, ok := in.Writes()
	if !ok || dst.IsSpecial() || int(dst) >= isa.MaxGPR {
		return out
	}
	a := operandIval(&st, in.Src[0])
	b := operandIval(&st, in.Src[1])
	cc := operandIval(&st, in.Src[2])

	var v ival
	//simlint:ignore exhaustive-switch — abstract interpretation: the integer ALU ops listed have precise transfer functions, and the default maps every other op to ⊤, which is sound for any opcode ever added
	switch in.Op {
	case isa.OpMOV:
		v = a
	case isa.OpIADD:
		v = ival{lo: a.lo + b.lo, hi: a.hi + b.hi, top: a.top || b.top}
	case isa.OpISUB:
		v = ival{lo: a.lo - b.hi, hi: a.hi - b.lo, top: a.top || b.top}
	case isa.OpIMUL:
		v = mulIval(a, b)
	case isa.OpIMAD:
		m := mulIval(a, b)
		v = ival{lo: m.lo + cc.lo, hi: m.hi + cc.hi, top: m.top || cc.top}
	case isa.OpIMIN:
		v = ival{lo: min64(a.lo, b.lo), hi: min64(a.hi, b.hi), top: a.top || b.top}
	case isa.OpIMAX:
		v = ival{lo: max64(a.lo, b.lo), hi: max64(a.hi, b.hi), top: a.top || b.top}
	case isa.OpSHL:
		if b.isConst() && b.lo < 32 {
			v = mulIval(a, constIval(int64(1)<<b.lo))
		} else {
			v = topIval()
		}
	case isa.OpSHR:
		if b.isConst() && b.lo < 32 && !a.top {
			v = ival{lo: a.lo >> b.lo, hi: a.hi >> b.lo}
		} else {
			v = topIval()
		}
	case isa.OpAND:
		// A constant mask bounds the result regardless of the other side.
		switch {
		case b.isConst():
			v = ival{lo: 0, hi: b.lo}
		case a.isConst():
			v = ival{lo: 0, hi: a.lo}
		default:
			v = topIval()
		}
	case isa.OpSELP:
		v = hull(a, b)
	default:
		// Loads, atomics, float ops, conversions: data-dependent.
		v = topIval()
	}
	v = v.norm()
	if !in.Pred.None {
		// Guarded write: the old value may survive on inactive lanes.
		v = hull(v, st.regs[dst])
	}
	out.regs[dst] = v
	return out
}

func mulIval(a, b ival) ival {
	if a.top || b.top {
		return topIval()
	}
	// All candidate corner products; bounds are within uint32 so the
	// int64 products cannot overflow.
	p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
	return ival{
		lo: min64(min64(p1, p2), min64(p3, p4)),
		hi: max64(max64(p1, p2), max64(p3, p4)),
	}
}

// sharedWidenVisits is how many times a PC's in-state may change before
// its changed registers are widened straight to ⊤, guaranteeing the
// worklist terminates on counted loops (r = r + 4 style chains).
const sharedWidenVisits = 24

// checkSharedBounds implements rule (g).
func (c *checker) checkSharedBounds() {
	limit := int64(c.p.SharedBytes)
	if limit <= 0 {
		return
	}

	n := len(c.p.Instrs)
	states := make([]sharedState, n)
	visits := make([]int, n)
	states[0] = c.newSharedState()
	states[0].reached = true

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		inWork[pc] = false

		out := sharedTransfer(&c.p.Instrs[pc], states[pc])
		for _, nx := range c.succ[pc] {
			merged := out
			if states[nx].reached {
				merged = sharedState{regs: make([]ival, isa.MaxGPR), reached: true}
				changed := false
				for i := range merged.regs {
					merged.regs[i] = hull(states[nx].regs[i], out.regs[i]).norm()
					if merged.regs[i] != states[nx].regs[i] {
						changed = true
						if visits[nx] >= sharedWidenVisits {
							merged.regs[i] = topIval()
						}
					}
				}
				if !changed {
					continue
				}
			}
			states[nx] = merged
			visits[nx]++
			if !inWork[nx] {
				inWork[nx] = true
				work = append(work, nx)
			}
		}
	}

	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op.Unit() != isa.UnitLDST || in.Space != isa.SpaceShared || !states[pc].reached {
			continue
		}
		base := operandIval(&states[pc], in.Src[0])
		if base.top {
			continue
		}
		lo := base.lo + int64(in.Off)
		hi := base.hi + int64(in.Off)
		// Report only provable overruns: even the lowest reachable
		// address (plus the 4-byte access width) escapes the declared
		// region.
		if lo+4 > limit || hi < 0 {
			addr := fmtRange(lo, hi)
			c.addf(pc, SevError, RuleSharedBounds,
				"%s address %s overruns the declared .shared size %d", in.Op, addr, limit)
		}
	}
}

func fmtRange(lo, hi int64) string {
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d..%d", lo, hi)
}
