package verify

import (
	"fmt"

	"warped/internal/isa"
)

// Shared-memory bounds checking (rule g) on the affine-in-tid domain
// (affine.go). Two layers, both provable-only:
//
//   - Conservative (any geometry): if even the LOWEST address the
//     access can take — minimized over every thread and every symbol —
//     already overruns the declared .shared size, every executing
//     thread overruns. This is the PR 4 interval check, with the
//     affine domain's projection standing in for the old [lo,hi].
//   - Tid-aware (declared geometry only): when the address is exact
//     per thread and the access's guard is decidable, enumerate the
//     block's threads and report the first whose concrete address
//     escapes. This is what catches strided overruns like 4·%tid+c
//     whose minimum (thread 0) is comfortably in bounds — the defect
//     class the constant-interval domain provably missed.
//
// An access that merely MIGHT overrun (⊤ base, inexact loop-hulled
// value, undecidable guard with no witness) stays silent, which is what
// keeps the bundled kernels' tid-derived addressing clean. Programs
// with no .shared declaration skip the rule entirely: there is no
// declared budget to check against.

const maxUint32 = int64(1)<<32 - 1

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// checkSharedBounds implements rule (g). Requires runValueAnalysis and
// computeCondRegions.
func (c *checker) checkSharedBounds() {
	limit := int64(c.p.SharedBytes)
	if limit <= 0 {
		return
	}
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op.Unit() != isa.UnitLDST || in.Space != isa.SpaceShared || !c.vals[pc].reached {
			continue
		}
		av := c.accessAval(pc)
		if av.top {
			continue
		}
		lo, hi := av.rng(&c.geo)
		if lo+4 > limit || hi < 0 {
			c.addf(pc, SevError, RuleSharedBounds,
				"%s address %s overruns the declared .shared size %d", in.Op, fmtRange(lo, hi), limit)
			continue
		}
		// Tid-aware refinement: find a concrete witness thread whose
		// exact address escapes. Inside guarded-branch regions the set
		// of executing threads is path-sensitive, so no witness is
		// provable there.
		if !c.geo.known || c.geo.nThreads > maxRaceThreads || !av.exact() || c.cond[pc] {
			continue
		}
		for t := int64(0); t < c.geo.nThreads; t++ {
			runs, ok := c.guardHolds(pc, t)
			if !ok {
				break // guard undecidable: no thread's execution is provable
			}
			if !runs {
				continue
			}
			a, _ := av.eval(&c.geo, t)
			if a+4 > limit || a < 0 {
				c.addf(pc, SevError, RuleSharedBounds,
					"%s address %s overruns the declared .shared size %d for %s (byte %d)",
					in.Op, fmtAval(av, &c.geo), limit, c.geo.threadName(t), a)
				break
			}
		}
	}
}

func fmtRange(lo, hi int64) string {
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d..%d", lo, hi)
}
