// Package verify is a static kernel verifier: a lint pass over
// assembled *isa.Program values that builds a basic-block control-flow
// graph and runs forward dataflow analyses to catch the defect classes
// that silently corrupt a Warped-DMR run before it starts. A malformed
// reconvergence stack or an uninitialized register corrupts the primary
// execution and its DMR replay identically, so the comparator sees
// agreement and the error escapes — exactly the failure mode static
// verification exists to close (in the spirit of GPUVerify/GPURepair
// for barrier divergence and data races).
//
// Rules:
//
//	use-before-def     a GPR or predicate may be read on some path
//	                   before any instruction writes it (rule a)
//	reg-bounds         register/predicate indices outside the kernel's
//	                   .reg declaration or the architectural file (rule b)
//	unreachable        instructions no path from the entry reaches (rule c)
//	fall-through       control can run off the end of the program
//	                   without an exit (rule c)
//	reconvergence      a branch reconvergence PC that the taken path
//	                   and/or the fall-through path can never reach, so
//	                   divergent lanes never merge (rule d)
//	divergence-depth   statically nested divergent branches exceeding
//	                   the SIMT reconvergence stack bound (rule d)
//	divergent-barrier  a bar.sync reachable under divergent control
//	                   flow or guarded by a thread-varying predicate,
//	                   the classic GPU barrier-divergence hang (rule e)
//	misalignment       sized (32-bit) loads/stores whose address is
//	                   provably not 4-byte aligned (rule f)
//	shared-bounds      shared-space accesses whose address provably
//	                   overruns the declared .shared size — for every
//	                   thread, or for a concrete witness thread when
//	                   the launch geometry is declared (rule g;
//	                   skipped when no .shared is declared)
//	shared-race        two shared-space accesses in the same barrier
//	                   interval, at least one a write, that distinct
//	                   threads of different warps can issue to
//	                   overlapping bytes with no intervening bar.sync
//	                   (rule h; needs declared launch geometry)
//
// Deliberate rule refinements, tuned against the bundled kernels
// (internal/kernels), which all verify clean:
//
//   - A guarded write (`@p0 mov r1, ...`) counts as a definition for
//     use-before-def. Predicates are not tracked symbolically, so the
//     ubiquitous predicated-slot idiom (`@p0 ld.global r13, ...` then
//     `@p0 st.shared ..., r13`) must not be flagged; the analysis
//     reports only registers for which some path carries NO write at
//     all, guarded or not.
//   - Barrier divergence uses a uniformity dataflow, not raw guard
//     syntax. Loop back-edges guarded on block-uniform values (counters
//     stepped uniformly, `ld.param` values, %ctaid/%ntid specials) do
//     not make a contained bar.sync divergent — every bundled shared-
//     memory kernel (scan, bitonic, fft, matmul, reduce) keeps its
//     barrier inside such a uniform loop, matching the PTX rule that
//     barriers must be reached by all threads of the block. Values from
//     %tid/%laneid/%warpid, data-dependent loads, and atomics are
//     divergent; everything else propagates.
//   - Reconvergence checking is reachability-based: the reconvergence
//     PC must be reachable from the taken target and from the
//     fall-through. One-sided reachability is a warning (legal when
//     every path on the silent side exits, which reachability alone
//     cannot prove); unreachable from both sides is an error, because
//     the merged continuation frame would resume at a PC the program's
//     own control flow never feeds.
//   - The assembler appends a terminating `exit` (source line 0) when a
//     program does not end in one; if that synthetic instruction is
//     unreachable (e.g. the program ends in an unconditional loop) it
//     is not reported.
//   - Alignment is checked where it is provable: absolute addresses
//     (immediate base) must be 4-byte aligned and non-negative. For
//     register bases the affine-in-tid value analysis (affine.go) is
//     consulted first: when the address is exact and its thread-varying
//     part is a multiple of 4 for every thread, the residue mod 4 is a
//     proof either way — a non-zero residue is an error and a zero
//     residue suppresses the fallback heuristic. Otherwise the PR 4
//     heuristic applies: register-relative offsets must be multiples of
//     4 (kernel address arithmetic keeps base registers word-aligned).
//   - The tid-aware rules (g) and (h) are deliberately under-
//     approximate: they report only what the affine domain can PROVE
//     for a concrete thread, skipping ⊤/inexact addresses, accesses
//     whose guards have no evaluable predicate fact, and accesses
//     inside guarded-branch regions or downstream of guarded exits
//     (which threads execute those is path-sensitive). No bundled
//     kernel trips them; the racy fixtures in race_test.go all do.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"warped/internal/isa"
)

// Severity ranks a finding.
type Severity uint8

const (
	// SevWarning marks a suspicious construct that may still execute.
	SevWarning Severity = iota
	// SevError marks a defect that corrupts or hangs execution.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Rule identifiers, stable for grepping lint output.
const (
	RuleUseBeforeDef     = "use-before-def"
	RuleRegBounds        = "reg-bounds"
	RuleUnreachable      = "unreachable"
	RuleFallThrough      = "fall-through"
	RuleReconvergence    = "reconvergence"
	RuleDivergenceDepth  = "divergence-depth"
	RuleDivergentBarrier = "divergent-barrier"
	RuleMisalignment     = "misalignment"
	RuleSharedBounds     = "shared-bounds"
	RuleSharedRace       = "shared-race"
	RuleStructure        = "structure"
)

// Finding is one verifier diagnostic, positioned at a source line.
type Finding struct {
	PC   int // instruction index within the program
	Line int // source line (0 for synthesized instructions)
	Sev  Severity
	Rule string
	Msg  string
}

// String renders the finding like an asm.Error, with the rule tag.
func (f Finding) String() string {
	return fmt.Sprintf("line %d: %s: %s: %s", f.Line, f.Sev, f.Rule, f.Msg)
}

// Findings is a list of diagnostics ordered by source position.
type Findings []Finding

// String renders one finding per line.
func (fs Findings) String() string {
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// Dump renders the stable greppable lint format, one finding per line:
// file:line: severity: rule: message.
func (fs Findings) Dump(file string) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d: %s: %s: %s\n", file, f.Line, f.Sev, f.Rule, f.Msg)
	}
	return b.String()
}

// Errors counts error-severity findings.
func (fs Findings) Errors() int {
	n := 0
	for _, f := range fs {
		if f.Sev == SevError {
			n++
		}
	}
	return n
}

// Err summarizes error-severity findings as a single error, or nil.
func (fs Findings) Err() error {
	if fs.Errors() == 0 {
		return nil
	}
	return fmt.Errorf("verify: %d error(s):\n%s", fs.Errors(), fs.String())
}

// Options tunes the verifier.
type Options struct {
	// MaxDivergenceDepth bounds statically nested divergent branches;
	// deeper nesting risks overflowing a hardware PDOM stack. 0 means
	// the default of 16.
	MaxDivergenceDepth int

	// BlockDimX/BlockDimY set the launch geometry the tid-aware rules
	// analyze against, overriding the program's own .block declaration.
	// 0 means use the declaration (and when the program declares none
	// either, the geometry-dependent refinements are disabled).
	BlockDimX int
	BlockDimY int

	// WarpSize is the SIMT width used to derive %laneid/%warpid ranges
	// and the intra-warp lockstep carve-out. 0 means the default of 32.
	WarpSize int
}

func (o Options) withDefaults() Options {
	if o.MaxDivergenceDepth <= 0 {
		o.MaxDivergenceDepth = 16
	}
	if o.WarpSize <= 0 {
		o.WarpSize = 32
	}
	if o.BlockDimX > 0 && o.BlockDimY <= 0 {
		o.BlockDimY = 1
	}
	return o
}

// Check verifies a program with default options.
func Check(p *isa.Program) Findings { return CheckWith(p, Options{}) }

// CheckWith verifies a program and returns all findings, ordered by
// source line then instruction index.
func CheckWith(p *isa.Program, opt Options) Findings {
	opt = opt.withDefaults()
	if p == nil || len(p.Instrs) == 0 {
		return Findings{{Sev: SevError, Rule: RuleStructure, Msg: "empty program"}}
	}
	c := &checker{p: p, opt: opt}
	c.checkBounds()
	c.buildCFG()
	c.checkReachability()
	c.checkUseBeforeDef()
	c.computeUniformity()
	c.checkReconvergence()
	c.checkDivergence()
	c.runValueAnalysis()
	c.computeCondRegions()
	c.checkAlignment()
	c.checkSharedBounds()
	c.checkSharedRace()
	sort.SliceStable(c.findings, func(i, j int) bool {
		if c.findings[i].Line != c.findings[j].Line {
			return c.findings[i].Line < c.findings[j].Line
		}
		return c.findings[i].PC < c.findings[j].PC
	})
	return c.findings
}

// checker carries the per-program analysis state.
type checker struct {
	p   *isa.Program
	opt Options

	succ      [][]int // CFG successor lists, built by buildCFG
	reachable []bool  // entry-reachable instructions

	divGPR  []uint64 // per-PC in-state: bit set = register possibly divergent
	divPred []uint8  // per-PC in-state: bit set = predicate possibly divergent
	ctrlDiv []bool   // instruction sits inside some divergent branch region

	geo  geom       // launch geometry for the affine domain
	vals []absState // per-PC affine in-states, from runValueAnalysis
	cond []bool     // instruction executes only under some branch/exit guard

	findings Findings
}

func (c *checker) addf(pc int, sev Severity, rule, format string, args ...any) {
	line := 0
	if pc >= 0 && pc < len(c.p.Instrs) {
		line = c.p.Instrs[pc].Line
	}
	c.findings = append(c.findings, Finding{
		PC: pc, Line: line, Sev: sev, Rule: rule, Msg: fmt.Sprintf(format, args...),
	})
}

// checkBounds implements rule (b): register and predicate indices must
// fit the declared register budget and the architectural limits.
func (c *checker) checkBounds() {
	p := c.p
	if p.NumRegs < 0 || p.NumRegs > isa.MaxGPR {
		c.addf(-1, SevError, RuleRegBounds, ".reg %d outside 0..%d", p.NumRegs, isa.MaxGPR)
	}
	checkGPR := func(pc int, r isa.Reg, role string) {
		if r.IsSpecial() {
			return
		}
		if int(r) >= isa.MaxGPR {
			c.addf(pc, SevError, RuleRegBounds, "%s register %s is not a valid GPR or special register", role, r)
			return
		}
		if p.NumRegs > 0 && int(r) >= p.NumRegs {
			c.addf(pc, SevError, RuleRegBounds, "%s register %s exceeds .reg %d", role, r, p.NumRegs)
		}
	}
	checkPred := func(pc int, idx uint8, role string) {
		if int(idx) >= isa.NumPreds {
			c.addf(pc, SevError, RuleRegBounds, "%s predicate p%d exceeds the %d predicate registers", role, idx, isa.NumPreds)
		}
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op.HasDst() {
			if in.Dst.IsSpecial() {
				c.addf(pc, SevError, RuleRegBounds, "destination %s is a read-only special register", in.Dst)
			} else {
				checkGPR(pc, in.Dst, "destination")
			}
		}
		for i := 0; i < in.Op.NumSrc(); i++ {
			if !in.Src[i].IsImm {
				checkGPR(pc, in.Src[i].Reg, "source")
			}
		}
		if !in.Pred.None {
			checkPred(pc, in.Pred.Index, "guard")
		}
		//simlint:ignore exhaustive-switch — only SETP/SELP/PAND/PNOT carry predicate operands beyond the guard (checked above); every other op has none to validate
		switch in.Op {
		case isa.OpSETP:
			checkPred(pc, in.PDst, "destination")
		case isa.OpSELP:
			checkPred(pc, in.PSrcA, "selector")
		case isa.OpPAND:
			checkPred(pc, in.PDst, "destination")
			checkPred(pc, in.PSrcA, "source")
			checkPred(pc, in.PSrcB, "source")
		case isa.OpPNOT:
			checkPred(pc, in.PDst, "destination")
			checkPred(pc, in.PSrcA, "source")
		}
	}
}

// checkAlignment implements rule (f): every memory access is 32-bit and
// must be 4-byte aligned.
func (c *checker) checkAlignment() {
	for pc := range c.p.Instrs {
		in := &c.p.Instrs[pc]
		if in.Op.Unit() != isa.UnitLDST {
			continue
		}
		if in.Src[0].IsImm {
			addr := int64(int32(in.Src[0].Imm)) + int64(in.Off)
			if addr < 0 {
				c.addf(pc, SevError, RuleMisalignment, "%s address %d is negative", in.Op, addr)
			} else if addr%4 != 0 {
				c.addf(pc, SevError, RuleMisalignment, "%s address %d is not 4-byte aligned", in.Op, addr)
			}
			continue
		}
		// The affine value analysis can settle alignment outright when
		// the address is exact and its thread-varying part is a
		// multiple of 4 for every thread: the residue mod 4 is then the
		// same constant for all of them.
		if c.vals[pc].reached {
			if av := c.accessAval(pc); av.exact() && wordStrided(av) {
				if res := ((av.lo % 4) + 4) % 4; res != 0 {
					c.addf(pc, SevError, RuleMisalignment,
						"%s address %s is provably %d bytes past a 4-byte boundary for every thread",
						in.Op, fmtAval(av, &c.geo), res)
				}
				continue // residue proven either way; skip the heuristic
			}
		}
		if in.Off%4 != 0 {
			c.addf(pc, SevError, RuleMisalignment,
				"%s offset %+d from %s is not a multiple of 4 (word-aligned base assumed)",
				in.Op, in.Off, in.Src[0].Reg)
		}
	}
}

// wordStrided reports whether every symbolic coefficient of v is a
// multiple of the 4-byte access width.
func wordStrided(v aval) bool {
	for _, co := range v.co {
		if co%4 != 0 {
			return false
		}
	}
	return true
}
