package verify_test

import (
	"strings"
	"testing"

	"warped/internal/verify"
)

// TestSharedBounds drives the interval analysis behind rule (g):
// provable overruns are errors, everything merely possible stays
// silent, and kernels without a .shared declaration skip the rule.
func TestSharedBounds(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantOOB bool
		wantMsg string
	}{
		{
			name: "immediate address overruns",
			src: `.kernel k
.reg 4
.shared 16
mov r0, 1
st.shared [16], r0
exit`,
			wantOOB: true,
			wantMsg: "address 16 overruns the declared .shared size 16",
		},
		{
			name: "register base overruns",
			src: `.kernel k
.reg 4
.shared 16
mov r1, 32
st.shared [r1], r1
exit`,
			wantOOB: true,
			wantMsg: "address 32 overruns",
		},
		{
			name: "computed chain overruns",
			src: `.kernel k
.reg 4
.shared 16
mov r1, 4
shl r1, r1, 2
ld.shared r2, [r1]
exit`,
			wantOOB: true,
		},
		{
			name: "offset pushes base past the end",
			src: `.kernel k
.reg 4
.shared 2048
mov r1, 0
ld.shared r2, [r1+2048]
exit`,
			wantOOB: true,
		},
		{
			name: "immediate in bounds (clean)",
			src: `.kernel k
.reg 4
.shared 16
mov r0, 1
st.shared [12], r0
exit`,
		},
		{
			name: "tid-derived address is unknown (clean)",
			src: `.kernel k
.reg 4
.shared 16
mov r0, 1
st.shared [%tid.x], r0
exit`,
		},
		{
			name: "counted loop widens without false positive (clean)",
			src: `.kernel k
.reg 4
.shared 16
mov r0, 0
LOOP:
st.shared [r0], r0
iadd r0, r0, 4
setp.lt.s32 p0, r0, 16
@p0 bra LOOP, LOOP
exit`,
		},
		{
			// The regression pair the affine domain exists for: a
			// strided access whose thread-0 address is comfortably in
			// bounds but whose upper threads overrun. Without declared
			// geometry (next case) the old constant-interval verdict —
			// silence — is preserved.
			name: "strided overrun with declared geometry",
			src: `.kernel k
.reg 4
.shared 64
.block 32
mov r0, %tid.x
shl r1, r0, 2
st.shared [r1+32], r0
exit`,
			wantOOB: true,
			wantMsg: "address 4*%tid.x+32 overruns the declared .shared size 64 for thread 8",
		},
		{
			name: "strided overrun without geometry stays silent (clean)",
			src: `.kernel k
.reg 4
.shared 64
mov r0, %tid.x
shl r1, r0, 2
st.shared [r1+32], r0
exit`,
		},
		{
			name: "guard masks the strided overrun (clean)",
			src: `.kernel k
.reg 4
.shared 64
.block 64
mov r0, %tid.x
setp.lt.s32 p0, r0, 8
shl r1, r0, 2
@p0 st.shared [r1], r0
exit`,
		},
		{
			name: "guarded strided overrun cites a masked witness",
			src: `.kernel k
.reg 4
.shared 64
.block 64
mov r0, %tid.x
setp.lt.s32 p0, r0, 32
shl r1, r0, 2
@p0 st.shared [r1], r0
exit`,
			wantOOB: true,
			wantMsg: "for thread 16",
		},
		{
			name: "no .shared declaration skips the rule (clean)",
			src: `.kernel k
.reg 4
mov r0, 1
st.shared [9996], r0
exit`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := verify.Check(mustAsm(t, tc.src))
			oob := findingsByRule(fs)[verify.RuleSharedBounds]
			if tc.wantOOB {
				if len(oob) == 0 {
					t.Fatalf("want a %s error, got findings:\n%s", verify.RuleSharedBounds, fs)
				}
				if oob[0].Sev != verify.SevError {
					t.Errorf("severity %v, want error", oob[0].Sev)
				}
				if tc.wantMsg != "" && !strings.Contains(oob[0].Msg, tc.wantMsg) {
					t.Errorf("message %q does not contain %q", oob[0].Msg, tc.wantMsg)
				}
			} else if len(oob) != 0 {
				t.Fatalf("unexpected %s findings:\n%s", verify.RuleSharedBounds, fs)
			}
		})
	}
}
