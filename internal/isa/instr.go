package isa

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Register identifiers. General registers are 0..MaxGPR-1. Special
// read-only registers occupy a reserved range above the GPRs and are
// loaded with thread geometry at launch time.
type Reg uint8

// MaxGPR is the number of addressable general-purpose registers per
// thread. The paper's machine has a 64 KB register file per SM and
// 1024 resident threads; we allow up to 64 named registers per thread
// and let kernels declare how many they actually use (.reg directive),
// which bounds occupancy the same way real register allocation does.
const MaxGPR = 64

// Special register numbers (values of Reg at and above SpecialBase).
const (
	SpecialBase Reg = 64 + iota
	RegTIDX         // thread index within block, x
	RegTIDY         // thread index within block, y
	RegNTIDX        // block dimension x
	RegNTIDY        // block dimension y
	RegCTAIDX       // block index x
	RegCTAIDY       // block index y
	RegNCTAIDX      // grid dimension x
	RegNCTAIDY      // grid dimension y
	RegLANEID       // lane within warp
	RegWARPID       // warp index within block
	RegSpecialEnd
)

// IsSpecial reports whether r names a special read-only register.
func (r Reg) IsSpecial() bool { return r > SpecialBase && r < RegSpecialEnd }

var specialNames = map[Reg]string{
	RegTIDX:    "%tid.x",
	RegTIDY:    "%tid.y",
	RegNTIDX:   "%ntid.x",
	RegNTIDY:   "%ntid.y",
	RegCTAIDX:  "%ctaid.x",
	RegCTAIDY:  "%ctaid.y",
	RegNCTAIDX: "%nctaid.x",
	RegNCTAIDY: "%nctaid.y",
	RegLANEID:  "%laneid",
	RegWARPID:  "%warpid",
}

// SpecialByName resolves a %-prefixed special register name.
func SpecialByName(name string) (Reg, bool) {
	for r := SpecialBase + 1; r < RegSpecialEnd; r++ {
		if specialNames[r] == name {
			return r, true
		}
	}
	return 0, false
}

func (r Reg) String() string {
	if n, ok := specialNames[r]; ok {
		return n
	}
	return fmt.Sprintf("r%d", int(r))
}

// NumPreds is the number of predicate registers per thread.
const NumPreds = 8

// PredRef is a guard-predicate reference: which predicate register and
// whether it is negated. The zero value (None=true) means "always".
type PredRef struct {
	Index  uint8
	Negate bool
	None   bool
}

// AlwaysPred is the unguarded predicate reference.
func AlwaysPred() PredRef { return PredRef{None: true} }

func (p PredRef) String() string {
	if p.None {
		return ""
	}
	if p.Negate {
		return fmt.Sprintf("@!p%d", p.Index)
	}
	return fmt.Sprintf("@p%d", p.Index)
}

// Operand is a register or immediate source.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   uint32 // raw 32-bit pattern (ints and float32 bit patterns)
}

// RegOp makes a register operand.
func RegOp(r Reg) Operand { return Operand{Reg: r} }

// ImmOp makes an immediate operand from a raw 32-bit pattern.
func ImmOp(v uint32) Operand { return Operand{IsImm: true, Imm: v} }

func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("%d", int32(o.Imm))
	}
	return o.Reg.String()
}

// fpString renders the operand for a floating-point context: immediates
// print as float literals so disassembly reassembles to the same bits.
func (o Operand) fpString() string {
	if !o.IsImm {
		return o.Reg.String()
	}
	f := math.Float32frombits(o.Imm)
	s := strconv.FormatFloat(float64(f), 'g', -1, 32)
	if !strings.ContainsAny(s, ".eE") && !strings.ContainsAny(s, "nN") {
		s += ".0"
	}
	return s
}

// addrString renders a memory operand: [base+off] for register bases,
// or the absolute byte offset for immediate bases, matching the
// assembler's accepted syntax so disassembly round-trips.
func (in *Instr) addrString() string {
	if in.Src[0].IsImm {
		return fmt.Sprintf("[%d]", int64(int32(in.Src[0].Imm))+int64(in.Off))
	}
	return fmt.Sprintf("[%s%+d]", in.Src[0].Reg, in.Off)
}

// srcString picks the int or float rendering by opcode class.
func (in *Instr) srcString(i int) string {
	if in.Op.IsFP() || (in.Op == OpSETP && in.CmpTy == CmpF32) {
		return in.Src[i].fpString()
	}
	return in.Src[i].String()
}

// Instr is one decoded machine instruction. Fields beyond Op are used
// only by the opcodes that need them.
type Instr struct {
	Op   Opcode
	Pred PredRef // guard

	Dst Reg        // general destination (when Op.HasDst())
	Src [3]Operand // sources, Src[0..NumSrc-1]

	// SETP / SELP / PAND / PNOT predicate plumbing.
	PDst  uint8 // destination predicate index (SETP, PAND, PNOT)
	PSrcA uint8 // source predicate A (SELP selector, PAND, PNOT)
	PSrcB uint8 // source predicate B (PAND)
	Cmp   CmpOp
	CmpTy CmpType

	// Memory.
	Space MemSpace
	Off   int32 // address offset for LD/ST/ATOM

	// Control flow (resolved to instruction indices by the assembler).
	Target int // branch target PC
	Reconv int // reconvergence PC for divergent branches

	Line int // source line for diagnostics
}

// Reads returns the general registers this instruction reads (excluding
// specials, which are constant per-thread and never hazard).
func (in *Instr) Reads() []Reg {
	var rs []Reg
	n := in.Op.NumSrc()
	for i := 0; i < n; i++ {
		if !in.Src[i].IsImm && !in.Src[i].Reg.IsSpecial() {
			rs = append(rs, in.Src[i].Reg)
		}
	}
	return rs
}

// Writes returns the general destination register, if any.
func (in *Instr) Writes() (Reg, bool) {
	if in.Op.HasDst() {
		return in.Dst, true
	}
	return 0, false
}

// String renders the instruction in assembler syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if !in.Pred.None {
		b.WriteString(in.Pred.String())
		b.WriteByte(' ')
	}
	//simlint:ignore exhaustive-switch — special-shape mnemonics only; the default renders any data op from opTable metadata (name, HasDst, NumSrc), so new opcodes print correctly without a case
	switch in.Op {
	case OpSETP:
		fmt.Fprintf(&b, "setp.%s.%s p%d, %s, %s", in.Cmp, in.CmpTy, in.PDst, in.srcString(0), in.srcString(1))
	case OpSELP:
		fmt.Fprintf(&b, "selp %s, %s, %s, p%d", in.Dst, in.Src[0], in.Src[1], in.PSrcA)
	case OpPAND:
		fmt.Fprintf(&b, "pand p%d, p%d, p%d", in.PDst, in.PSrcA, in.PSrcB)
	case OpPNOT:
		fmt.Fprintf(&b, "pnot p%d, p%d", in.PDst, in.PSrcA)
	case OpLD:
		fmt.Fprintf(&b, "ld.%s %s, %s", in.Space, in.Dst, in.addrString())
	case OpST:
		fmt.Fprintf(&b, "st.%s %s, %s", in.Space, in.addrString(), in.Src[1])
	case OpATOM:
		fmt.Fprintf(&b, "atom.add.%s %s, %s, %s", in.Space, in.Dst, in.addrString(), in.Src[1])
	case OpBRA:
		fmt.Fprintf(&b, "bra @%d, @%d", in.Target, in.Reconv) // PCs; Disassemble emits labels
	case OpBAR, OpEXIT, OpNOP:
		b.WriteString(in.Op.String())
	default:
		b.WriteString(in.Op.String())
		if in.Op.HasDst() {
			fmt.Fprintf(&b, " %s", in.Dst)
		}
		for i := 0; i < in.Op.NumSrc(); i++ {
			if i == 0 && !in.Op.HasDst() {
				fmt.Fprintf(&b, " %s", in.srcString(i))
			} else {
				fmt.Fprintf(&b, ", %s", in.srcString(i))
			}
		}
	}
	return b.String()
}

// Program is an assembled kernel body.
type Program struct {
	Name        string
	Instrs      []Instr
	NumRegs     int            // GPRs actually used (from .reg or inferred)
	SharedBytes int            // declared shared-memory demand (.shared)
	BlockDimX   int            // declared worst-case block width (.block), 0 = undeclared
	BlockDimY   int            // declared worst-case block height (.block), 0 = undeclared
	Labels      map[string]int // label -> PC, for diagnostics
}

// Disassemble renders the program as valid assembly: every branch
// target gets a label, so the output reassembles to an identical
// program (the asm package tests this round trip).
func (p *Program) Disassemble() string {
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	byPC := make(map[int][]string)
	labelFor := make(map[int]string)
	for _, name := range names {
		pc := p.Labels[name]
		byPC[pc] = append(byPC[pc], name)
		if _, ok := labelFor[pc]; !ok {
			labelFor[pc] = name // first in sorted order, so the choice is stable
		}
	}
	ensure := func(pc int) string {
		if l, ok := labelFor[pc]; ok {
			return l
		}
		l := fmt.Sprintf("L%d", pc)
		labelFor[pc] = l
		byPC[pc] = append(byPC[pc], l)
		return l
	}
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpBRA {
			ensure(p.Instrs[i].Target)
			ensure(p.Instrs[i].Reconv)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n.reg %d\n", p.Name, p.NumRegs)
	if p.SharedBytes > 0 {
		fmt.Fprintf(&b, ".shared %d\n", p.SharedBytes)
	}
	if p.BlockDimX > 0 {
		fmt.Fprintf(&b, ".block %d %d\n", p.BlockDimX, p.BlockDimY)
	}
	for pc := range p.Instrs {
		for _, l := range byPC[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		in := &p.Instrs[pc]
		if in.Op == OpBRA {
			guard := ""
			if !in.Pred.None {
				guard = in.Pred.String() + " "
			}
			fmt.Fprintf(&b, "\t%sbra %s, %s\t; pc %d\n",
				guard, labelFor[in.Target], labelFor[in.Reconv], pc)
			continue
		}
		fmt.Fprintf(&b, "\t%s\t; pc %d\n", in.String(), pc)
	}
	return b.String()
}
