// Package isa defines the instruction set executed by the simulated
// GPGPU: a small PTX/SASS-like vector ISA with 32-bit general
// registers, predicate registers, special registers, and three
// execution-unit classes (SP, SFU, LD/ST) matching the heterogeneous
// units of an NVIDIA-Fermi-style streaming multiprocessor.
package isa

import "fmt"

// UnitClass identifies which execution unit type an instruction uses.
// The Warped-DMR Replay Checker compares these two-bit type tags to
// decide when a redundant execution can be co-scheduled (paper §4.3).
type UnitClass uint8

const (
	// UnitSP is the shader-processor ALU/FPU class.
	UnitSP UnitClass = iota
	// UnitSFU is the special-function unit class (sin, cos, sqrt, ...).
	UnitSFU
	// UnitLDST is the load/store unit class.
	UnitLDST
	// UnitCTRL marks control instructions (branches, barriers, exit)
	// which are resolved at issue and are not DMR targets.
	UnitCTRL
)

func (u UnitClass) String() string {
	switch u {
	case UnitSP:
		return "SP"
	case UnitSFU:
		return "SFU"
	case UnitLDST:
		return "LDST"
	case UnitCTRL:
		return "CTRL"
	default:
		return fmt.Sprintf("UnitClass(%d)", int(u))
	}
}

// Opcode enumerates every operation in the ISA.
type Opcode uint8

const (
	OpNOP Opcode = iota

	// --- SP class: integer ---
	OpMOV  // dst = src0
	OpIADD // dst = src0 + src1
	OpISUB // dst = src0 - src1
	OpIMUL // dst = src0 * src1 (low 32 bits)
	OpIMAD // dst = src0 * src1 + src2
	OpIMIN // dst = min(src0, src1) signed
	OpIMAX // dst = max(src0, src1) signed
	OpAND
	OpOR
	OpXOR
	OpNOT // dst = ^src0
	OpSHL // dst = src0 << (src1 & 31)
	OpSHR // dst = src0 >> (src1 & 31) logical
	OpSAR // dst = src0 >> (src1 & 31) arithmetic

	// --- SP class: float32 ---
	OpFADD
	OpFSUB
	OpFMUL
	OpFFMA // dst = src0*src1 + src2
	OpFMIN
	OpFMAX
	OpFNEG
	OpFABS
	OpI2F // dst = float32(int32(src0))
	OpF2I // dst = int32(trunc(float32 src0))

	// --- SP class: predicates / select ---
	OpSETP // pdst = cmp(src0, src1); comparison in Cmp, type in FType
	OpSELP // dst = pred ? src0 : src1 (pred in Pred2)
	OpPAND // pdst = psrc0 && psrc1 (operands are predicate refs via Pred2/Pred3)
	OpPNOT // pdst = !psrc0

	// --- SFU class ---
	OpFSIN
	OpFCOS
	OpFSQRT
	OpFRSQRT
	OpFRCP
	OpFEX2 // 2^x
	OpFLG2 // log2(x)
	OpFDIV // dst = src0 / src1 (iterates on SFU)

	// --- LD/ST class ---
	OpLD   // dst = mem[src0 + Imm], space in Space
	OpST   // mem[src0 + Imm] = src1
	OpATOM // dst = atomic-add(mem[src0+Imm], src1), returns old value

	// --- control ---
	OpBRA  // branch to Target (guarded); Reconv holds reconvergence PC
	OpBAR  // block-wide barrier
	OpEXIT // thread (warp) termination
)

// opInfo captures static properties of each opcode.
type opInfo struct {
	name   string
	unit   UnitClass
	nSrc   int  // number of register/imm source operands
	hasDst bool // writes a general register
	isFP   bool // operates on float32 lanes
}

var opTable = [...]opInfo{
	OpNOP:    {"nop", UnitSP, 0, false, false},
	OpMOV:    {"mov", UnitSP, 1, true, false},
	OpIADD:   {"iadd", UnitSP, 2, true, false},
	OpISUB:   {"isub", UnitSP, 2, true, false},
	OpIMUL:   {"imul", UnitSP, 2, true, false},
	OpIMAD:   {"imad", UnitSP, 3, true, false},
	OpIMIN:   {"imin", UnitSP, 2, true, false},
	OpIMAX:   {"imax", UnitSP, 2, true, false},
	OpAND:    {"and", UnitSP, 2, true, false},
	OpOR:     {"or", UnitSP, 2, true, false},
	OpXOR:    {"xor", UnitSP, 2, true, false},
	OpNOT:    {"not", UnitSP, 1, true, false},
	OpSHL:    {"shl", UnitSP, 2, true, false},
	OpSHR:    {"shr", UnitSP, 2, true, false},
	OpSAR:    {"sar", UnitSP, 2, true, false},
	OpFADD:   {"fadd", UnitSP, 2, true, true},
	OpFSUB:   {"fsub", UnitSP, 2, true, true},
	OpFMUL:   {"fmul", UnitSP, 2, true, true},
	OpFFMA:   {"ffma", UnitSP, 3, true, true},
	OpFMIN:   {"fmin", UnitSP, 2, true, true},
	OpFMAX:   {"fmax", UnitSP, 2, true, true},
	OpFNEG:   {"fneg", UnitSP, 1, true, true},
	OpFABS:   {"fabs", UnitSP, 1, true, true},
	OpI2F:    {"i2f", UnitSP, 1, true, true},
	OpF2I:    {"f2i", UnitSP, 1, true, true},
	OpSETP:   {"setp", UnitSP, 2, false, false},
	OpSELP:   {"selp", UnitSP, 2, true, false},
	OpPAND:   {"pand", UnitSP, 0, false, false},
	OpPNOT:   {"pnot", UnitSP, 0, false, false},
	OpFSIN:   {"fsin", UnitSFU, 1, true, true},
	OpFCOS:   {"fcos", UnitSFU, 1, true, true},
	OpFSQRT:  {"fsqrt", UnitSFU, 1, true, true},
	OpFRSQRT: {"frsqrt", UnitSFU, 1, true, true},
	OpFRCP:   {"frcp", UnitSFU, 1, true, true},
	OpFEX2:   {"fex2", UnitSFU, 1, true, true},
	OpFLG2:   {"flg2", UnitSFU, 1, true, true},
	OpFDIV:   {"fdiv", UnitSFU, 2, true, true},
	OpLD:     {"ld", UnitLDST, 1, true, false},
	OpST:     {"st", UnitLDST, 2, false, false},
	OpATOM:   {"atom.add", UnitLDST, 2, true, false},
	OpBRA:    {"bra", UnitCTRL, 0, false, false},
	OpBAR:    {"bar.sync", UnitCTRL, 0, false, false},
	OpEXIT:   {"exit", UnitCTRL, 0, false, false},
}

// NumOpcodes is the count of defined opcodes.
const NumOpcodes = int(OpEXIT) + 1

// String returns the assembly mnemonic of the opcode.
func (o Opcode) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Unit returns the execution unit class the opcode dispatches to.
func (o Opcode) Unit() UnitClass { return opTable[o].unit }

// NumSrc returns how many general source operands the opcode reads.
func (o Opcode) NumSrc() int { return opTable[o].nSrc }

// HasDst reports whether the opcode writes a general destination register.
func (o Opcode) HasDst() bool { return opTable[o].hasDst }

// IsFP reports whether the opcode interprets lanes as float32.
func (o Opcode) IsFP() bool { return opTable[o].isFP }

// CmpOp is the comparison selector for SETP.
type CmpOp uint8

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	default:
		return fmt.Sprintf("cmp(%d)", int(c))
	}
}

// CmpType is the operand interpretation for SETP.
type CmpType uint8

const (
	CmpS32 CmpType = iota // signed 32-bit
	CmpU32                // unsigned 32-bit
	CmpF32                // float32
)

func (t CmpType) String() string {
	switch t {
	case CmpS32:
		return "s32"
	case CmpU32:
		return "u32"
	case CmpF32:
		return "f32"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// MemSpace identifies an address space for LD/ST/ATOM.
type MemSpace uint8

const (
	SpaceGlobal MemSpace = iota
	SpaceShared
	SpaceParam // kernel parameter space, read-only
	SpaceLocal // per-thread scratch, carved out of global
)

func (s MemSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceParam:
		return "param"
	case SpaceLocal:
		return "local"
	default:
		return fmt.Sprintf("space(%d)", int(s))
	}
}
