package isa

import (
	"strings"
	"testing"
)

func TestOpcodeTableComplete(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
	}
}

func TestUnitClasses(t *testing.T) {
	cases := map[Opcode]UnitClass{
		OpIADD: UnitSP, OpFFMA: UnitSP, OpSETP: UnitSP, OpSELP: UnitSP,
		OpFSIN: UnitSFU, OpFSQRT: UnitSFU, OpFRCP: UnitSFU, OpFDIV: UnitSFU,
		OpLD: UnitLDST, OpST: UnitLDST, OpATOM: UnitLDST,
		OpBRA: UnitCTRL, OpBAR: UnitCTRL, OpEXIT: UnitCTRL,
	}
	for op, want := range cases {
		if op.Unit() != want {
			t.Errorf("%s.Unit() = %v, want %v", op, op.Unit(), want)
		}
	}
}

func TestUnitClassIsTwoBitTag(t *testing.T) {
	// The Replay Checker compares two-bit type tags (paper §4.3); the
	// three real unit classes must fit in two bits.
	for _, u := range []UnitClass{UnitSP, UnitSFU, UnitLDST} {
		if u > 3 {
			t.Errorf("unit class %v exceeds a 2-bit tag", u)
		}
	}
}

func TestOpcodeProperties(t *testing.T) {
	if !OpIMAD.HasDst() || OpIMAD.NumSrc() != 3 {
		t.Error("imad should be 3R1W")
	}
	if !OpIADD.HasDst() || OpIADD.NumSrc() != 2 {
		t.Error("iadd should be 2R1W")
	}
	if OpST.HasDst() {
		t.Error("st must not write a register")
	}
	if OpSETP.HasDst() {
		t.Error("setp writes a predicate, not a GPR")
	}
	if !OpFADD.IsFP() || OpIADD.IsFP() {
		t.Error("FP classification broken")
	}
}

func TestSpecialRegisters(t *testing.T) {
	for _, name := range []string{"%tid.x", "%tid.y", "%ntid.x", "%ctaid.x", "%nctaid.y", "%laneid", "%warpid"} {
		r, ok := SpecialByName(name)
		if !ok {
			t.Errorf("SpecialByName(%q) failed", name)
			continue
		}
		if !r.IsSpecial() {
			t.Errorf("%q not marked special", name)
		}
		if r.String() != name {
			t.Errorf("round trip %q -> %q", name, r.String())
		}
	}
	if _, ok := SpecialByName("%bogus"); ok {
		t.Error("bogus special resolved")
	}
	if Reg(5).IsSpecial() {
		t.Error("r5 must not be special")
	}
}

func TestInstrReadsWrites(t *testing.T) {
	in := Instr{Op: OpIMAD, Dst: 1, Src: [3]Operand{RegOp(2), ImmOp(7), RegOp(3)}}
	reads := in.Reads()
	if len(reads) != 2 || reads[0] != 2 || reads[1] != 3 {
		t.Errorf("Reads = %v, want [r2 r3]", reads)
	}
	if d, ok := in.Writes(); !ok || d != 1 {
		t.Errorf("Writes = %v,%v", d, ok)
	}
	// Special registers never appear as hazards.
	in2 := Instr{Op: OpMOV, Dst: 1, Src: [3]Operand{RegOp(RegTIDX)}}
	if len(in2.Reads()) != 0 {
		t.Error("special register counted as a scoreboard read")
	}
	in3 := Instr{Op: OpBRA}
	if _, ok := in3.Writes(); ok {
		t.Error("bra writes nothing")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpIADD, Dst: 1, Src: [3]Operand{RegOp(2), ImmOp(5)}}, "iadd r1, r2, 5"},
		{Instr{Op: OpSETP, Cmp: CmpLT, CmpTy: CmpS32, PDst: 0,
			Src: [3]Operand{RegOp(1), RegOp(2)}}, "setp.lt.s32 p0, r1, r2"},
		{Instr{Op: OpLD, Space: SpaceGlobal, Dst: 4, Src: [3]Operand{RegOp(5)}, Off: 16},
			"ld.global r4, [r5+16]"},
		{Instr{Op: OpST, Space: SpaceShared, Src: [3]Operand{RegOp(6), RegOp(7)}},
			"st.shared [r6+0], r7"},
		{Instr{Op: OpBAR}, "bar.sync"},
		{Instr{Op: OpEXIT, Pred: PredRef{Index: 3, Negate: true}}, "@!p3 exit"},
		{Instr{Op: OpSELP, Dst: 1, Src: [3]Operand{RegOp(2), RegOp(3)}, PSrcA: 2},
			"selp r1, r2, r3, p2"},
		{Instr{Op: OpPAND, PDst: 1, PSrcA: 2, PSrcB: 3}, "pand p1, p2, p3"},
	}
	for _, c := range cases {
		in := c.in
		if in.Pred == (PredRef{}) {
			in.Pred = AlwaysPred()
		}
		if got := in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCmpAndSpaceStrings(t *testing.T) {
	if CmpLT.String() != "lt" || CmpGE.String() != "ge" {
		t.Error("CmpOp strings broken")
	}
	if CmpF32.String() != "f32" || CmpU32.String() != "u32" {
		t.Error("CmpType strings broken")
	}
	if SpaceGlobal.String() != "global" || SpaceParam.String() != "param" {
		t.Error("MemSpace strings broken")
	}
}

func TestProgramDisassemble(t *testing.T) {
	p := &Program{
		Name:    "t",
		NumRegs: 2,
		Instrs: []Instr{
			{Op: OpMOV, Dst: 0, Src: [3]Operand{ImmOp(1)}, Pred: AlwaysPred()},
			{Op: OpEXIT, Pred: AlwaysPred()},
		},
		Labels: map[string]int{"end": 1},
	}
	d := p.Disassemble()
	for _, want := range []string{".kernel t", ".reg 2", "end:", "mov r0, 1", "exit"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}
