// Package experiments regenerates every figure and table of the
// paper's evaluation (§5) on the simulator: utilization breakdowns
// (Fig. 1, 5), ReplayQ sizing factors (Fig. 8a/8b), error coverage
// across RFU/cluster/mapping variants (Fig. 9a), performance overhead
// versus ReplayQ size (Fig. 9b), the end-to-end comparison against
// software and temporal-DMR baselines (Fig. 10), power and energy
// (Fig. 11), and a fault-injection campaign that validates the
// coverage numbers empirically (repository extension).
//
// Every harness runs its (benchmark × config × seed) grid through the
// Engine's worker pool: independent runs execute concurrently, results
// merge by submission index, and the rendered tables are byte-identical
// to a serial execution. The package-level Run* functions are thin
// wrappers over a default Engine with background context.
package experiments

import (
	"context"
	"fmt"

	"warped/internal/arch"
	"warped/internal/kernels"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
)

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
func f2(f float64) string  { return fmt.Sprintf("%.2f", f) }
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig1Result is the execution-time breakdown by active thread count.
type Fig1Result struct {
	Names     []string
	Fractions [][5]float64 // per benchmark: buckets 1, 2-11, 12-21, 22-31, 32
}

// RunFig1 reproduces Figure 1 on the default Engine.
func RunFig1() (*Fig1Result, error) { return defaultEngine.Fig1(context.Background()) }

// Fig1 reproduces Figure 1 on the plain (no-DMR) machine.
func (e *Engine) Fig1(ctx context.Context) (*Fig1Result, error) {
	names, res, err := e.runAll(ctx, arch.PaperConfig(), sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	r := &Fig1Result{Names: names}
	for _, st := range res {
		r.Fractions = append(r.Fractions, st.ActiveFractions())
	}
	return r, nil
}

// Table renders the Fig. 1 data.
func (r *Fig1Result) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 1: execution-time breakdown by number of active threads",
		Headers: append([]string{"benchmark"}, stats.ActiveBuckets...),
	}
	for i, n := range r.Names {
		f := r.Fractions[i]
		t.AddRow(n, pct(f[0]), pct(f[1]), pct(f[2]), pct(f[3]), pct(f[4]))
	}
	return t
}

// Fig5Result is the execution-time breakdown by instruction type.
type Fig5Result struct {
	Names     []string
	Fractions [][3]float64 // SP, SFU, LDST
}

// RunFig5 reproduces Figure 5 on the default Engine.
func RunFig5() (*Fig5Result, error) { return defaultEngine.Fig5(context.Background()) }

// Fig5 reproduces Figure 5.
func (e *Engine) Fig5(ctx context.Context) (*Fig5Result, error) {
	names, res, err := e.runAll(ctx, arch.PaperConfig(), sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	r := &Fig5Result{Names: names}
	for _, st := range res {
		r.Fractions = append(r.Fractions, st.TypeFractions())
	}
	return r, nil
}

// Table renders the Fig. 5 data.
func (r *Fig5Result) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 5: execution-time breakdown by instruction type",
		Headers: []string{"benchmark", "SP", "SFU", "LD/ST"},
	}
	for i, n := range r.Names {
		f := r.Fractions[i]
		t.AddRow(n, pct(f[0]), pct(f[1]), pct(f[2]))
	}
	return t
}

// Fig8aResult holds average same-type issue run lengths per unit class.
type Fig8aResult struct {
	Names []string
	Mean  [][3]float64 // SP, LDST, SFU run lengths per benchmark
}

// RunFig8a reproduces Figure 8(a) on the default Engine.
func RunFig8a() (*Fig8aResult, error) { return defaultEngine.Fig8a(context.Background()) }

// Fig8a reproduces Figure 8(a): the average distance before the
// issued instruction type switches — the key ReplayQ sizing input.
func (e *Engine) Fig8a(ctx context.Context) (*Fig8aResult, error) {
	names, res, err := e.runAll(ctx, arch.PaperConfig(), sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	r := &Fig8aResult{Names: names}
	for _, st := range res {
		r.Mean = append(r.Mean, [3]float64{
			st.Runs.Mean(0), st.Runs.Mean(2), st.Runs.Mean(1),
		})
	}
	return r, nil
}

// Table renders the Fig. 8a data.
func (r *Fig8aResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 8a: average same-type run length before an instruction type switch (issue slots)",
		Headers: []string{"benchmark", "SP", "LDST", "SFU"},
	}
	for i, n := range r.Names {
		m := r.Mean[i]
		t.AddRow(n, f2(m[0]), f2(m[1]), f2(m[2]))
	}
	return t
}

// Fig8bResult holds RAW dependency distance distributions for the
// paper's tracked warp, per benchmark.
type Fig8bResult struct {
	Names     []string
	MinDist   []int64
	FracGE8   []float64
	FracGE100 []float64
	Trackers  []*stats.RAWTracker
}

// fig8bBenchmarks are the benchmarks the paper plots in Fig. 8b.
var fig8bBenchmarks = []string{
	"MatrixMul", "CUFFT", "BitonicSort", "Nqueen", "Laplace", "SHA", "RadixSort",
}

// RunFig8b reproduces Figure 8(b) on the default Engine.
func RunFig8b() (*Fig8bResult, error) { return defaultEngine.Fig8b(context.Background()) }

// Fig8b reproduces Figure 8(b): cycles between a register write and
// its next read in one tracked warp (warp 1, or warp 0 for single-warp
// blocks, as the paper does for SHA).
func (e *Engine) Fig8b(ctx context.Context) (*Fig8bResult, error) {
	trackers, err := runner.Map(ctx, e.pool(), len(fig8bBenchmarks),
		func(ctx context.Context, i int) (*stats.RAWTracker, error) {
			name := fig8bBenchmarks[i]
			b, err := kernels.ByName(name)
			if err != nil {
				return nil, err
			}
			g, err := sim.New(arch.PaperConfig(), b.GPUMemBytes())
			if err != nil {
				return nil, err
			}
			st, err := kernels.ExecuteContext(ctx, g, b, sim.LaunchOpts{TrackRAW: true})
			if err != nil {
				return nil, err
			}
			if st.RAW == nil {
				return nil, fmt.Errorf("experiments: no RAW tracker for %s", name)
			}
			return st.RAW, nil
		})
	if err != nil {
		return nil, err
	}
	r := &Fig8bResult{}
	for i, raw := range trackers {
		r.Names = append(r.Names, fig8bBenchmarks[i])
		r.MinDist = append(r.MinDist, raw.Min())
		r.FracGE8 = append(r.FracGE8, raw.FractionAtLeast(8))
		r.FracGE100 = append(r.FracGE100, raw.FractionAtLeast(100))
		r.Trackers = append(r.Trackers, raw)
	}
	return r, nil
}

// Table renders the Fig. 8b summary (min distance and tail fractions).
func (r *Fig8bResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 8b: RAW dependency distances of the tracked warp's registers (cycles)",
		Headers: []string{"benchmark", "min", ">=8", ">=100"},
	}
	for i, n := range r.Names {
		t.AddRow(n, fmt.Sprintf("%d", r.MinDist[i]), pct(r.FracGE8[i]), pct(r.FracGE100[i]))
	}
	return t
}
