package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"

	"warped/internal/arch"
	"warped/internal/fault"
	"warped/internal/isa"
	"warped/internal/kernels"
	"warped/internal/metrics"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
	"warped/internal/verify"
)

// vulnCheckBits are the output bits flipped at each statically-unACE
// PC: both ends of the word plus two interior bits, so a liveness bug
// that only masks low bits (a bad AND/shift transfer) cannot hide.
var vulnCheckBits = []uint{0, 7, 19, 31}

// VulnCheckRow is one kernel's cross-validation outcome.
type VulnCheckRow struct {
	Benchmark string
	Kernel    string

	// Static classification over the kernel's PCs.
	PCs, Eligible, ACE, UnACE, Unknown int

	// Policy is the protection policy synthesized from the unACE PCs.
	Policy string

	// Injections counts fault-injected runs performed (unACE PCs ×
	// vulnCheckBits); Visible counts the injections whose corruption
	// reached the workload's output or its figure-feeding statistics.
	// Any Visible > 0 falsifies the static analysis and fails the run.
	Injections int
	Visible    int

	// SkippedFrac is SkippedTI/EligibleTI with the synthesized policy
	// armed under the recommended Warped-DMR machine (0 when the policy
	// is full: nothing to skip).
	SkippedFrac float64
}

// VulnCheckResult is the static-vs-empirical cross-validation of the
// fault-vulnerability analysis over every bundled benchmark.
type VulnCheckResult struct {
	Rows []VulnCheckRow
}

// Failed reports whether any injection at a statically-unACE PC was
// architecturally visible — a falsified unACE claim.
func (r *VulnCheckResult) Failed() bool {
	for _, row := range r.Rows {
		if row.Visible > 0 {
			return true
		}
	}
	return false
}

// RunVulnCheck runs the cross-validation on the default Engine.
func RunVulnCheck() (*VulnCheckResult, error) {
	return defaultEngine.VulnCheck(context.Background())
}

// VulnCheck cross-validates the static fault-vulnerability analysis
// against targeted fault injection, benchmark by benchmark (the Table 4
// suite plus the extras). For every kernel it runs verify.AnalyzeVuln,
// then corrupts each statically-unACE PC at every dynamic execution
// (all lanes, one bit at a time) and requires the workload to still
// validate against its host reference with statistics identical to a
// fault-free baseline — i.e. the corruption must be invisible to every
// figure the repository generates. It returns an error if any unACE
// claim is falsified. The SkippedFrac column measures what the
// synthesized policy saves under the recommended Warped-DMR machine.
func (e *Engine) VulnCheck(ctx context.Context) (*VulnCheckResult, error) {
	bs := append(append([]*kernels.Benchmark{}, kernels.All()...), kernels.Extras()...)
	vm := metrics.ForVuln(e.Metrics)
	out := &VulnCheckResult{}
	var violations []string
	for _, b := range bs {
		rows, errs, err := e.vulnCheckBenchmark(ctx, b, vm)
		if err != nil {
			return nil, fmt.Errorf("experiments: vulncheck %s: %w", b.Name, err)
		}
		out.Rows = append(out.Rows, rows...)
		violations = append(violations, errs...)
	}
	if len(violations) > 0 {
		return out, fmt.Errorf("experiments: vulncheck: %d statically-unACE PC(s) produced figure-visible corruption:\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	return out, nil
}

// benchPrograms builds b on a scratch GPU and returns its distinct
// kernel programs in launch order.
func benchPrograms(b *kernels.Benchmark) ([]*isa.Program, error) {
	g, err := sim.New(arch.PaperConfig(), b.GPUMemBytes())
	if err != nil {
		return nil, err
	}
	run, err := b.Build(g)
	if err != nil {
		return nil, err
	}
	var progs []*isa.Program
	seen := map[string]bool{}
	for _, step := range run.Steps {
		p := step.Kernel.Prog
		if p == nil || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		progs = append(progs, p)
	}
	return progs, nil
}

// vulnCheckBenchmark cross-validates one benchmark; it returns one row
// per kernel and a violation message per falsified unACE claim.
func (e *Engine) vulnCheckBenchmark(ctx context.Context, b *kernels.Benchmark, vm *metrics.Vuln) ([]VulnCheckRow, []string, error) {
	progs, err := benchPrograms(b)
	if err != nil {
		return nil, nil, err
	}

	// Fault-free baseline: the statistics every figure derives from.
	// Injection runs must reproduce these exactly.
	baseCfg := arch.PaperConfig()
	g, err := sim.New(baseCfg, b.GPUMemBytes())
	if err != nil {
		return nil, nil, err
	}
	baseline, err := kernels.ExecuteContext(ctx, g, b, sim.LaunchOpts{Metrics: e.Metrics})
	if err != nil {
		return nil, nil, fmt.Errorf("fault-free baseline: %w", err)
	}

	type injection struct {
		kernel string
		pc     int
		bit    uint
	}
	var rows []VulnCheckRow
	var jobs []injection
	rowOf := map[string]int{}
	for _, p := range progs {
		r, err := verify.AnalyzeVuln(p)
		if err != nil {
			return nil, nil, fmt.Errorf("kernel %s: %w", p.Name, err)
		}
		vm.Analyses.Inc()
		vm.ACEPCs.Add(int64(r.ACE))
		vm.UnACEPCs.Add(int64(r.UnACE))
		vm.UnknownPCs.Add(int64(r.Unknown))
		policy := arch.SynthesizePolicy(p.Name, len(p.Instrs), r.UnACEPCs())
		if policy.Kind != arch.PolicyFull {
			vm.Synthesized.Inc()
		}
		rowOf[p.Name] = len(rows)
		rows = append(rows, VulnCheckRow{
			Benchmark: b.Name, Kernel: p.Name,
			PCs: len(r.PCs), Eligible: r.EligiblePCs,
			ACE: r.ACE, UnACE: r.UnACE, Unknown: r.Unknown,
			Policy: policy.String(),
		})
		for _, pc := range r.UnACEPCs() {
			for _, bit := range vulnCheckBits {
				jobs = append(jobs, injection{p.Name, pc, bit})
			}
		}
	}

	// Fan the targeted injections out across the pool. visible[i] is a
	// violation message, or "" when the corruption stayed masked.
	visible, err := runner.Map(ctx, e.pool(), len(jobs), func(ctx context.Context, i int) (string, error) {
		job := jobs[i]
		inj := fault.NewPCInjector(job.kernel, job.pc, job.bit)
		g, err := sim.New(baseCfg, b.GPUMemBytes())
		if err != nil {
			return "", err
		}
		st, err := kernels.ExecuteContext(ctx, g, b, sim.LaunchOpts{Fault: inj, Metrics: e.Metrics})
		if err != nil {
			if ctx.Err() != nil {
				return "", err
			}
			return fmt.Sprintf("%s %s pc=%d bit=%d: %v", b.Name, job.kernel, job.pc, job.bit, err), nil
		}
		cp := *st
		cp.FaultsActivated, cp.FaultsDetected = 0, 0
		if !reflect.DeepEqual(&cp, baseline) {
			return fmt.Sprintf("%s %s pc=%d bit=%d: statistics diverged from the fault-free baseline",
				b.Name, job.kernel, job.pc, job.bit), nil
		}
		return "", nil
	})
	if err != nil {
		return nil, nil, err
	}
	var violations []string
	for i, v := range visible {
		job := jobs[i]
		rows[rowOf[job.kernel]].Injections++
		if v != "" {
			rows[rowOf[job.kernel]].Visible++
			violations = append(violations, v)
		}
	}

	// Measure what each non-full synthesized policy actually skips under
	// the recommended Warped-DMR machine.
	for ri := range rows {
		if rows[ri].Policy == "full" {
			continue
		}
		p, err := arch.ParsePolicy(rows[ri].Policy)
		if err != nil {
			return nil, nil, err
		}
		cfg := arch.WarpedDMRConfig()
		cfg.Policy = p
		g, err := sim.New(cfg, b.GPUMemBytes())
		if err != nil {
			return nil, nil, err
		}
		st, err := kernels.ExecuteContext(ctx, g, b, sim.LaunchOpts{Metrics: e.Metrics})
		if err != nil {
			return nil, nil, fmt.Errorf("synthesized-policy run: %w", err)
		}
		if st.EligibleTI > 0 {
			rows[ri].SkippedFrac = float64(st.SkippedTI) / float64(st.EligibleTI)
		}
	}
	return rows, violations, nil
}

// Table renders the cross-validation, one row per kernel.
func (r *VulnCheckResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Vulnerability cross-check: static unACE claims vs targeted fault injection",
		Headers: []string{"benchmark", "kernel", "pcs", "eligible", "ace", "unace", "unknown", "policy", "injections", "visible", "skipped"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Kernel,
			fmt.Sprintf("%d", row.PCs),
			fmt.Sprintf("%d", row.Eligible),
			fmt.Sprintf("%d", row.ACE),
			fmt.Sprintf("%d", row.UnACE),
			fmt.Sprintf("%d", row.Unknown),
			row.Policy,
			fmt.Sprintf("%d", row.Injections),
			fmt.Sprintf("%d", row.Visible),
			pct(row.SkippedFrac))
	}
	return t
}
