package experiments

import (
	"strings"
	"testing"
)

// These are the repository's acceptance tests: each asserts the
// qualitative claims of the corresponding paper figure. They simulate
// the full benchmark suite several times, so they skip in -short mode.

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(r.Names))
	}
	byName := map[string][5]float64{}
	for i, n := range r.Names {
		f := r.Fractions[i]
		sum := f[0] + f[1] + f[2] + f[3] + f[4]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", n, sum)
		}
		byName[n] = f
	}
	// The paper's headline Fig. 1 observations.
	if f := byName["BFS"]; f[0]+f[1] < 0.4 {
		t.Errorf("BFS should be mostly low-occupancy: %v", f)
	}
	if f := byName["MatrixMul"]; f[4] < 0.99 {
		t.Errorf("MatrixMul should be fully utilized: %v", f)
	}
	if f := byName["SHA"]; f[4] < 0.99 {
		t.Errorf("SHA should be fully utilized: %v", f)
	}
	if f := byName["BitonicSort"]; f[4] > 0.6 {
		t.Errorf("BitonicSort should be heavily underutilized: %v", f)
	}
	tb := r.Table()
	if !strings.Contains(tb.String(), "BFS") {
		t.Error("table rendering broken")
	}
}

func TestFig5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][3]float64{}
	for i, n := range r.Names {
		byName[n] = r.Fractions[i]
	}
	// SP dominates everywhere; only Libor and CUFFT use the SFUs.
	for n, f := range byName {
		if f[0] < 0.3 {
			t.Errorf("%s: SP share %v implausibly low", n, f[0])
		}
	}
	if byName["Libor"][1] == 0 || byName["CUFFT"][1] == 0 {
		t.Error("Libor and CUFFT must show SFU activity")
	}
	if byName["SHA"][1] != 0 {
		t.Error("SHA uses no SFUs")
	}
}

func TestFig8aBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig8a()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: most same-type runs are short (<6), bounded near ~20.
	// Our barrier-phased BitonicSort runs longer same-type stretches
	// (all warps of its single block execute the same step in lockstep),
	// so the bound here is looser; the deviation is recorded in
	// EXPERIMENTS.md.
	for i, n := range r.Names {
		for _, m := range r.Mean[i] {
			if m > 60 {
				t.Errorf("%s: mean run length %v far beyond the paper's bound", n, m)
			}
		}
	}
}

func TestFig8bDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig8b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != len(fig8bBenchmarks) {
		t.Fatalf("tracked %d benchmarks, want %d", len(r.Names), len(fig8bBenchmarks))
	}
	for i, n := range r.Names {
		if r.MinDist[i] < 1 {
			t.Errorf("%s: min RAW distance %d", n, r.MinDist[i])
		}
		// Paper: RAW distances are "at least 8 cycles" in the common
		// case; our shallower pipeline yields SPLat-scale minimums, and
		// most distances must be comfortably larger.
		if r.FracGE8[i] < 0.2 {
			t.Errorf("%s: only %.1f%% of RAW distances >= 8", n, 100*r.FracGE8[i])
		}
	}
}

// TestFig9aOrdering is the headline coverage result: 4-lane clusters <
// 8-lane clusters < 4-lane with cross mapping, with intra-warp-friendly
// benchmarks near 100%.
func TestFig9aOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig9a()
	if err != nil {
		t.Fatal(err)
	}
	a4, a8, ax := r.Averages()
	if !(a4 < a8 && a8 < ax) {
		t.Errorf("coverage ordering broken: 4c=%.3f 8c=%.3f cross=%.3f (paper: 89.6 < 91.9 < 96.4)",
			a4, a8, ax)
	}
	byName := map[string]int{}
	for i, n := range r.Names {
		byName[n] = i
	}
	// Fully-utilized workloads are covered ~100% by inter-warp DMR.
	for _, n := range []string{"MatrixMul", "SHA", "Libor"} {
		if c := r.CovCross[byName[n]]; c < 0.999 {
			t.Errorf("%s cross coverage %.4f, want ~1.0", n, c)
		}
	}
	// BFS is covered almost entirely by intra-warp DMR.
	if c := r.CovCross[byName["BFS"]]; c < 0.95 {
		t.Errorf("BFS coverage %.4f, want >= 0.95", c)
	}
	for i := range r.Names {
		for _, c := range []float64{r.Cov4[i], r.Cov8[i], r.CovCross[i]} {
			if c < 0 || c > 1 {
				t.Errorf("%s: coverage %v out of range", r.Names[i], c)
			}
		}
	}
}

// TestFig9bMonotonic: overhead decreases as the ReplayQ grows, and the
// q=10 average sits in the paper's ballpark (<= ~1.2 vs paper's 1.16).
func TestFig9bMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig9b()
	if err != nil {
		t.Fatal(err)
	}
	avg := r.Averages()
	for i := 1; i < len(avg); i++ {
		if avg[i] > avg[i-1]+0.005 {
			t.Errorf("average overhead not monotonically decreasing: %v", avg)
		}
	}
	if last := avg[len(avg)-1]; last < 1.0 || last > 1.25 {
		t.Errorf("q=10 average overhead %.3f, paper reports 1.16", last)
	}
	for i, n := range r.Names {
		for _, v := range r.Normalized[i] {
			if v < 0.98 {
				t.Errorf("%s: normalized cycles %v below 1 (DMR cannot speed things up)", n, v)
			}
		}
	}
}

func TestFig10Normalized(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig10()
	if err != nil {
		t.Fatal(err)
	}
	norm := r.NormalizedTotals()
	// Order: Original, R-Naive, R-Thread, DMTR, Warped-DMR.
	if norm[0] != 1.0 {
		t.Errorf("Original normalized to %v", norm[0])
	}
	if !(norm[4] < norm[3] && norm[3] < norm[2] && norm[2] < norm[1]) {
		t.Errorf("Fig. 10 ordering broken: %v (want Warped < DMTR < R-Thread < R-Naive)", norm)
	}
	if norm[1] < 1.9 {
		t.Errorf("R-Naive should be ~2x, got %v", norm[1])
	}
}

func TestFig11PowerEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	p, e := r.Averages()
	if p < 1.0 || p > 1.2 {
		t.Errorf("normalized power %.3f, paper reports 1.11", p)
	}
	if e < p {
		t.Errorf("energy overhead (%.3f) must exceed power overhead (%.3f): DMR also takes longer", e, p)
	}
	if e > 1.45 {
		t.Errorf("normalized energy %.3f far above the paper's 1.31", e)
	}
}

func TestCampaignDetectsFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, err := RunCampaign("MatrixMul", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if c.Activated == 0 {
		t.Fatal("campaign activated no faults; injection is mistargeted")
	}
	// The paper's coverage claim: activated faults rarely slip through
	// silently on a fully-covered benchmark.
	if c.Silent > c.Activated/4 {
		t.Errorf("%d of %d activated faults escaped silently", c.Silent, c.Activated)
	}
	tb := CampaignTable([]*CampaignResult{c})
	if !strings.Contains(tb.String(), "MatrixMul") {
		t.Error("campaign table broken")
	}
}

func TestSchedulerStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunSchedulerStudy()
	if err != nil {
		t.Fatal(err)
	}
	anyGain := false
	for i, n := range r.Names {
		if r.Speedup[i] < 0.97 {
			t.Errorf("%s: second scheduler slowed things down (%.2f)", n, r.Speedup[i])
		}
		if r.Speedup[i] > 1.1 {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("no benchmark gained from a second scheduler; §2.2 effect missing")
	}
}

func TestSamplingTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunSampling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("too few sweep points: %d", len(r.Points))
	}
	// Coverage must fall monotonically with duty cycle; overhead must
	// not rise. The always-on point must dominate on coverage.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Coverage >= r.Points[i-1].Coverage {
			t.Errorf("coverage not decreasing with duty: %+v", r.Points)
		}
		if r.Points[i].Overhead > r.Points[i-1].Overhead+0.02 {
			t.Errorf("overhead increased with lower duty: %+v", r.Points)
		}
	}
	if r.Points[0].DutyPct != 100 || r.Points[0].Coverage < 0.9 {
		t.Errorf("always-on point wrong: %+v", r.Points[0])
	}
}

func TestDetectionLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunDetectionLatency("MatrixMul", 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	if r.Activated == 0 {
		t.Fatal("no faults activated")
	}
	if r.Detected < r.Activated/2 {
		t.Errorf("only %d of %d activated transients detected", r.Detected, r.Activated)
	}
	// The whole point: detection long before the end of the kernel.
	if r.MeanDelay > float64(r.KernelLen)/10 {
		t.Errorf("mean delay %.0f too close to the end-of-kernel bound %d",
			r.MeanDelay, r.KernelLen)
	}
	if r.MaxDelay < 0 {
		t.Error("negative delay")
	}
}
