package experiments

import (
	"context"

	"warped/internal/arch"
	"warped/internal/kernels"
	"warped/internal/metrics"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
)

// Engine executes experiment grids — (benchmark × config × seed) runs —
// through the internal/runner worker pool. Every run owns an
// independent sim.GPU, and results are always merged by submission
// index, so the output of any Engine method is byte-identical no matter
// how many workers execute it. The zero value runs with GOMAXPROCS
// workers; Workers: 1 reproduces a fully serial execution.
type Engine struct {
	// Workers is the worker-pool size for independent runs;
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// Progress, when non-nil, is called after each completed run with
	// (done, total) counts for the current grid.
	Progress func(done, total int)

	// Metrics, when non-nil, receives operational telemetry from every
	// run of the campaign: worker-pool utilization and task latency from
	// internal/runner plus the simulator/DMR counters of each launch
	// (see docs/OBSERVABILITY.md). Attaching a registry never changes
	// the figure tables — those are derived from the deterministic
	// stats, not from the registry.
	Metrics *metrics.Registry
}

// pool translates the engine configuration for internal/runner.
func (e *Engine) pool() runner.Options {
	return runner.Options{Workers: e.Workers, OnProgress: e.Progress, Metrics: e.Metrics}
}

// defaultEngine backs the package-level Run* wrappers.
var defaultEngine = &Engine{}

// runGrid executes every Table 4 benchmark under every config
// concurrently and returns the per-benchmark stats in paper order, one
// row per config. The whole cfgs × benchmarks grid is a single fan-out,
// so a figure that sweeps several machine variants keeps every worker
// busy instead of joining between sweeps.
func (e *Engine) runGrid(ctx context.Context, cfgs []arch.Config, opts sim.LaunchOpts) (names []string, res [][]*stats.Stats, err error) {
	bs := kernels.All()
	nb := len(bs)
	opts.Metrics = e.Metrics
	flat, err := runner.Map(ctx, e.pool(), len(cfgs)*nb, func(ctx context.Context, i int) (*stats.Stats, error) {
		cfg, b := cfgs[i/nb], bs[i%nb]
		g, err := sim.New(cfg, b.GPUMemBytes())
		if err != nil {
			return nil, err
		}
		return kernels.ExecuteContext(ctx, g, b, opts)
	})
	if err != nil {
		return nil, nil, err
	}
	names = make([]string, nb)
	for i, b := range bs {
		names[i] = b.Name
	}
	res = make([][]*stats.Stats, len(cfgs))
	for ci := range cfgs {
		res[ci] = flat[ci*nb : (ci+1)*nb]
	}
	return names, res, nil
}

// runAll is runGrid for a single configuration.
func (e *Engine) runAll(ctx context.Context, cfg arch.Config, opts sim.LaunchOpts) ([]string, []*stats.Stats, error) {
	names, res, err := e.runGrid(ctx, []arch.Config{cfg}, opts)
	if err != nil {
		return nil, nil, err
	}
	return names, res[0], nil
}
