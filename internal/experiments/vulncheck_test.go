package experiments

import (
	"context"
	"math"
	"testing"

	"warped/internal/kernels"
	"warped/internal/metrics"
)

// TestVulnCheckMicro pins the cross-validation on the reference
// microbenchmark: the dead telemetry chain is statically unACE, every
// targeted injection into it stays invisible to the figures, and the
// synthesized policy skips a meaningful fraction of the DMR work.
func TestVulnCheckMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection grid")
	}
	b, err := kernels.ExtraByName("VulnMicro")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 4}
	rows, violations, err := e.vulnCheckBenchmark(context.Background(), b, metrics.ForVuln(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("statically-unACE PCs produced figure-visible corruption:\n%v", violations)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Kernel != "vuln_micro" || r.UnACE < 5 || r.Unknown != 0 {
		t.Errorf("classification: kernel %s, %d unACE, %d unknown; want vuln_micro, >=5, 0", r.Kernel, r.UnACE, r.Unknown)
	}
	if want := r.UnACE * len(vulnCheckBits); r.Injections != want {
		t.Errorf("ran %d injections, want %d (unACE PCs x bits)", r.Injections, want)
	}
	if r.Visible != 0 {
		t.Errorf("%d injections were figure-visible, want 0", r.Visible)
	}
	if r.Policy == "full" {
		t.Error("synthesized policy is full; the dead chain should yield a pcset")
	}
	// The acceptance bar for a "non-trivial" synthesized policy.
	if r.SkippedFrac <= 0.05 {
		t.Errorf("synthesized policy skips %.1f%% of eligible thread-instrs, want > 5%%", r.SkippedFrac*100)
	}
}

// TestVulnCheckPaperSuiteAllACE pins the analysis outcome on the paper
// suite: every Table 4 kernel is fully ACE (each computes toward stored
// output), so vulncheck performs no injections there and synthesizes no
// policy. This keeps the full-protection figures byte-identical by
// construction.
func TestVulnCheckPaperSuiteAllACE(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every benchmark")
	}
	for _, b := range kernels.All() {
		rows, violations, err := (&Engine{Workers: 2}).vulnCheckBenchmark(context.Background(), b, metrics.ForVuln(nil))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(violations) != 0 {
			t.Errorf("%s: unexpected violations: %v", b.Name, violations)
		}
		for _, r := range rows {
			if r.UnACE != 0 || r.Unknown != 0 || r.Policy != "full" || r.Injections != 0 {
				t.Errorf("%s/%s: unACE=%d unknown=%d policy=%s injections=%d; want fully ACE, full policy, no injections",
					b.Name, r.Kernel, r.UnACE, r.Unknown, r.Policy, r.Injections)
			}
		}
	}
}

// TestSynthSweepDetectionParity pins the headline Pareto claim: on the
// microbenchmark whose synthesized policy skips >5% of the DMR work,
// the empirical detection rate stays within one percentage point of
// full protection. Both cells inject the identical fault sequence
// (CampaignConfig draws it from (n, seed, NumSMs) alone), and random
// faults overwhelmingly activate in live code, so skipping the dead
// chain cannot cost detections.
func TestSynthSweepDetectionParity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection campaign")
	}
	b, err := kernels.ExtraByName("VulnMicro")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 4}
	const trials = 24
	names, points, err := e.synthSweep(context.Background(), []*kernels.Benchmark{b}, trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || len(points) != 2 {
		t.Fatalf("sweep shape: %d names, %d points; want 1, 2", len(names), len(points))
	}
	full, synth := points[0], points[1]
	if full.Policy != "full" {
		t.Fatalf("first point policy %q, want full", full.Policy)
	}
	if synth.Policy == "full" || synth.Policy == "off" {
		t.Fatalf("synthesized policy %q, want a selective pcset", synth.Policy)
	}
	if full.Activated == 0 {
		t.Fatal("campaign activated no faults; the parity comparison is vacuous")
	}
	if full.Activated != synth.Activated {
		t.Errorf("activation differs: full %d, synth %d (fault sequences must be identical)",
			full.Activated, synth.Activated)
	}
	if diff := math.Abs(full.Detection - synth.Detection); diff > 0.01 {
		t.Errorf("detection gap %.3f exceeds 1%%: full %.3f, synth %.3f",
			diff, full.Detection, synth.Detection)
	}
	// The synthesized point must actually be cheaper-or-equal while
	// keeping all of the live work protected.
	if synth.Protected >= 1 {
		t.Errorf("synth point protects %.3f of eligible, want < 1 (it skips the dead chain)", synth.Protected)
	}
}
