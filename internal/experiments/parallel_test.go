package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestParallelMatchesSerial is the determinism contract of the
// orchestration engine: the rendered tables of a parallel run must be
// byte-identical to the serial run, for a pure figure harness (Fig. 1)
// and for a seeded fault-injection campaign.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := &Engine{Workers: 1}
	parallel := &Engine{Workers: 8}
	ctx := context.Background()

	sFig, err := serial.Fig1(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pFig, err := parallel.Fig1(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := sFig.Table().String(), pFig.Table().String(); s != p {
		t.Errorf("Fig1 tables diverge between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}

	sCamp, err := serial.Campaign(ctx, "MatrixMul", 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	pCamp, err := parallel.Campaign(ctx, "MatrixMul", 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := CampaignTable([]*CampaignResult{sCamp}).String()
	p := CampaignTable([]*CampaignResult{pCamp}).String()
	if s != p {
		t.Errorf("campaign tables diverge between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestEngineProgress: the progress callback counts every run of the
// grid exactly once.
func TestEngineProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var mu sync.Mutex
	var calls, lastTotal int
	e := &Engine{Workers: 4, Progress: func(done, total int) {
		mu.Lock()
		calls++
		lastTotal = total
		mu.Unlock()
	}}
	if _, err := e.Fig1(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 11 || lastTotal != 11 {
		t.Errorf("progress saw %d/%d completions, want 11/11", calls, lastTotal)
	}
}

// TestCampaignCancellation is the acceptance criterion for prompt
// shutdown: cancelling mid-campaign returns well before the campaign
// could finish, with a ctx.Err()-wrapped error and no leaked
// goroutines.
func TestCampaignCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{Workers: 4}
	errc := make(chan error, 1)
	go func() {
		// 200 MatrixMul runs would take minutes; cancellation must cut
		// this to well under one kernel's full runtime.
		_, err := e.Campaign(ctx, "MatrixMul", 200, 7)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("campaign did not return within 10s of cancellation")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v to propagate", d)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
