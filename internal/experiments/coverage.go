package experiments

import (
	"context"
	"fmt"

	"warped/internal/arch"
	"warped/internal/sim"
	"warped/internal/stats"
)

// Fig9aResult compares error coverage across the three hardware
// variants of Fig. 9(a): 4-lane SIMT clusters with in-order mapping,
// 8-lane clusters, and 4-lane clusters with the enhanced round-robin
// ("cross") thread-to-core mapping. Paper averages: 89.60 / 91.91 /
// 96.43 percent.
type Fig9aResult struct {
	Names    []string
	Cov4     []float64 // 4-lane cluster, linear mapping
	Cov8     []float64 // 8-lane cluster, linear mapping
	CovCross []float64 // 4-lane cluster, cluster round-robin mapping

	// WarpInstrs totals the issued warp-instructions over the whole
	// campaign grid (every variant × every benchmark), so wall time per
	// warp-instruction is a derivable figure of merit for the simulator.
	WarpInstrs int64
}

// Averages returns the three benchmark-average coverages.
func (r *Fig9aResult) Averages() (c4, c8, cross float64) {
	return mean(r.Cov4), mean(r.Cov8), mean(r.CovCross)
}

// RunFig9a reproduces Figure 9(a) on the default Engine.
func RunFig9a() (*Fig9aResult, error) { return defaultEngine.Fig9a(context.Background()) }

// Fig9a reproduces Figure 9(a) under full Warped-DMR. All three
// machine variants fan out as one grid.
func (e *Engine) Fig9a(ctx context.Context) (*Fig9aResult, error) {
	mk := func(cluster int, mapping arch.MappingPolicy) arch.Config {
		cfg := arch.PaperConfig()
		cfg.DMR = arch.DMRFull
		cfg.ClusterSize = cluster
		cfg.Mapping = mapping
		return cfg
	}
	names, res, err := e.runGrid(ctx, []arch.Config{
		mk(4, arch.MapLinear),
		mk(8, arch.MapLinear),
		mk(4, arch.MapClusterRR),
	}, sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	r := &Fig9aResult{Names: names}
	for bi := range names {
		r.Cov4 = append(r.Cov4, res[0][bi].Coverage())
		r.Cov8 = append(r.Cov8, res[1][bi].Coverage())
		r.CovCross = append(r.CovCross, res[2][bi].Coverage())
	}
	r.WarpInstrs = gridWarpInstrs(res)
	return r, nil
}

// gridWarpInstrs sums issued warp-instructions over a campaign grid.
func gridWarpInstrs(res [][]*stats.Stats) int64 {
	var n int64
	for _, row := range res {
		for _, s := range row {
			n += s.WarpInstrs
		}
	}
	return n
}

// Table renders the Fig. 9a data.
func (r *Fig9aResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 9a: error coverage vs SIMT cluster organization and thread-core mapping",
		Headers: []string{"benchmark", "4-lane cluster", "8-lane cluster", "cross mapping"},
	}
	for i, n := range r.Names {
		t.AddRow(n, pct(r.Cov4[i]), pct(r.Cov8[i]), pct(r.CovCross[i]))
	}
	a4, a8, ax := r.Averages()
	t.AddRow("AVERAGE", pct(a4), pct(a8), pct(ax))
	return t
}

// Fig9bSizes are the ReplayQ capacities the paper sweeps.
var Fig9bSizes = []int{0, 1, 5, 10}

// Fig9bResult holds kernel cycles normalized to the no-DMR baseline for
// each ReplayQ size. Paper averages: 1.41 / 1.32 / 1.24 / 1.16.
type Fig9bResult struct {
	Names      []string
	Normalized [][]float64 // [benchmark][size index]

	// WarpInstrs totals the issued warp-instructions over the whole
	// campaign grid (baseline + every ReplayQ size × every benchmark).
	WarpInstrs int64
}

// Averages returns the per-size benchmark averages.
func (r *Fig9bResult) Averages() []float64 {
	out := make([]float64, len(Fig9bSizes))
	for s := range Fig9bSizes {
		var col []float64
		for _, row := range r.Normalized {
			col = append(col, row[s])
		}
		out[s] = mean(col)
	}
	return out
}

// RunFig9b reproduces Figure 9(b) on the default Engine.
func RunFig9b() (*Fig9bResult, error) { return defaultEngine.Fig9b(context.Background()) }

// Fig9b reproduces Figure 9(b): normalized kernel cycles under full
// Warped-DMR with ReplayQ sizes 0, 1, 5, 10. The no-DMR baseline and
// every ReplayQ size run as one (1+len(Fig9bSizes)) × benchmarks grid.
func (e *Engine) Fig9b(ctx context.Context) (*Fig9bResult, error) {
	cfgs := []arch.Config{arch.PaperConfig()}
	for _, size := range Fig9bSizes {
		cfg := arch.WarpedDMRConfig()
		cfg.ReplayQSize = size
		cfgs = append(cfgs, cfg)
	}
	names, res, err := e.runGrid(ctx, cfgs, sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	base := res[0]
	r := &Fig9bResult{Names: names, Normalized: make([][]float64, len(names))}
	for bi := range names {
		r.Normalized[bi] = make([]float64, len(Fig9bSizes))
		for si := range Fig9bSizes {
			r.Normalized[bi][si] = float64(res[si+1][bi].Cycles) / float64(base[bi].Cycles)
		}
	}
	r.WarpInstrs = gridWarpInstrs(res)
	return r, nil
}

// Table renders the Fig. 9b data.
func (r *Fig9bResult) Table() *stats.Table {
	headers := []string{"benchmark"}
	for _, s := range Fig9bSizes {
		headers = append(headers, fmt.Sprintf("q=%d", s))
	}
	t := &stats.Table{
		Title:   "Figure 9b: kernel cycles under Warped-DMR, normalized to no-DMR, vs ReplayQ size",
		Headers: headers,
	}
	for i, n := range r.Names {
		row := []string{n}
		for _, v := range r.Normalized[i] {
			row = append(row, f2(v))
		}
		t.AddRow(row...)
	}
	avg := r.Averages()
	row := []string{"AVERAGE"}
	for _, v := range avg {
		row = append(row, f2(v))
	}
	t.AddRow(row...)
	return t
}
