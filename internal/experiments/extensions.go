package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"warped/internal/arch"
	"warped/internal/core"
	"warped/internal/fault"
	"warped/internal/kernels"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
)

// samplingBenchmarks are inter-warp-DMR-heavy workloads where the
// sampling trade-off is visible (intra-warp DMR is free either way).
var samplingBenchmarks = []string{"MatrixMul", "SHA", "CUFFT"}

// SamplingPoint is one duty-cycle measurement.
type SamplingPoint struct {
	DutyPct   int
	Coverage  float64 // fraction of eligible thread-instructions verified
	Overhead  float64 // cycles normalized to no-DMR
	Transient float64 // fraction of injected transients detected
}

// SamplingResult compares always-on Warped-DMR against sampling DMR
// (Nomura et al., the paper's related-work comparison): sampling trades
// coverage — especially of transients — for overhead.
type SamplingResult struct {
	Benchmarks []string
	Points     []SamplingPoint
}

// RunSampling sweeps the DMR duty cycle on the default Engine.
func RunSampling() (*SamplingResult, error) { return defaultEngine.Sampling(context.Background()) }

// Sampling sweeps the DMR duty cycle with a fixed 1000-cycle epoch.
// The no-DMR baselines fan out across benchmarks, then each duty-cycle
// point runs as an independent task (its RNG is seeded by the duty, so
// draws stay in the serial order within a point and the sweep is
// deterministic at any worker count).
func (e *Engine) Sampling(ctx context.Context) (*SamplingResult, error) {
	duties := []int{100, 50, 25, 10}
	const epoch = 1000
	const transientTrials = 12

	base, err := runner.Map(ctx, e.pool(), len(samplingBenchmarks),
		func(ctx context.Context, i int) (*stats.Stats, error) {
			return runBench(ctx, samplingBenchmarks[i], arch.PaperConfig(), sim.LaunchOpts{})
		})
	if err != nil {
		return nil, err
	}
	baseCycles := map[string]int64{}
	for i, name := range samplingBenchmarks {
		baseCycles[name] = base[i].Cycles
	}

	points, err := runner.Map(ctx, e.pool(), len(duties),
		func(ctx context.Context, di int) (SamplingPoint, error) {
			duty := duties[di]
			cfg := arch.WarpedDMRConfig()
			if duty < 100 {
				cfg.SamplePeriod = epoch
				cfg.SampleOn = int64(epoch * duty / 100)
			}
			var covs, ovhs []float64
			detected, activated := 0, 0
			rng := rand.New(rand.NewSource(int64(duty)))
			for _, name := range samplingBenchmarks {
				st, err := runBench(ctx, name, cfg, sim.LaunchOpts{})
				if err != nil {
					return SamplingPoint{}, err
				}
				covs = append(covs, st.Coverage())
				ovhs = append(ovhs, float64(st.Cycles)/float64(baseCycles[name]))

				// Transient sensitivity: one random single-event upset per
				// trial, within the portion of the run DMR might see.
				for trial := 0; trial < transientTrials/len(samplingBenchmarks); trial++ {
					f := fault.RandomTransient(rng, 8, baseCycles[name])
					f.Unit = 0 // SP, the most exercised unit
					f.Bit = uint(rng.Intn(12))
					inj := fault.NewInjector(f)
					fst, err := runBench(ctx, name, cfg, sim.LaunchOpts{Fault: inj})
					if err != nil {
						if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
							return SamplingPoint{}, err
						}
						// Address corruption aborted the kernel: a DUE, which
						// counts as caught for this comparison.
						if inj.Activations > 0 {
							activated++
							detected++
						}
						continue
					}
					if inj.Activations > 0 {
						activated++
						if fst.FaultsDetected > 0 {
							detected++
						}
					}
				}
			}
			p := SamplingPoint{DutyPct: duty, Coverage: mean(covs), Overhead: mean(ovhs)}
			if activated > 0 {
				p.Transient = float64(detected) / float64(activated)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	return &SamplingResult{Benchmarks: samplingBenchmarks, Points: points}, nil
}

// runBench executes one benchmark without validation short-circuiting
// on fault-corrupted outputs (validation errors are only fatal for
// fault-free runs, where they indicate simulator bugs).
func runBench(ctx context.Context, name string, cfg arch.Config, opts sim.LaunchOpts) (*stats.Stats, error) {
	b, err := kernels.ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := sim.New(cfg, b.GPUMemBytes())
	if err != nil {
		return nil, err
	}
	run, err := b.Build(g)
	if err != nil {
		return nil, err
	}
	total := &stats.Stats{}
	for i, step := range run.Steps {
		st, err := g.LaunchContext(ctx, step.Kernel, opts)
		if err != nil {
			return nil, fmt.Errorf("%s launch %d: %w", name, i, err)
		}
		total.MergeSerial(st)
		if step.Host != nil {
			if err := step.Host(g); err != nil {
				return nil, err
			}
		}
	}
	if opts.Fault == nil && run.Check != nil {
		if err := run.Check(g); err != nil {
			return nil, fmt.Errorf("%s validation: %w", name, err)
		}
	}
	return total, nil
}

// Table renders the sampling sweep.
func (r *SamplingResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Extension: sampling DMR vs always-on Warped-DMR (avg over %v)", r.Benchmarks),
		Headers: []string{"duty", "coverage", "overhead", "transients caught"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d%%", p.DutyPct), pct(p.Coverage), f2(p.Overhead), pct(p.Transient))
	}
	return t
}

// SchedulerResult measures the paper's §2.2 observation: a second warp
// scheduler reduces (but does not eliminate) heterogeneous-unit
// underutilization.
type SchedulerResult struct {
	Names   []string
	IPC1    []float64 // one scheduler
	IPC2    []float64 // two schedulers (Fermi-style)
	Speedup []float64
}

// RunSchedulerStudy compares schedulers on the default Engine.
func RunSchedulerStudy() (*SchedulerResult, error) {
	return defaultEngine.SchedulerStudy(context.Background())
}

// SchedulerStudy compares 1 vs 2 schedulers per SM with DMR off.
func (e *Engine) SchedulerStudy(ctx context.Context) (*SchedulerResult, error) {
	one := arch.PaperConfig()
	two := arch.PaperConfig()
	two.NumSchedulers = 2
	names, res, err := e.runGrid(ctx, []arch.Config{one, two}, sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	r := &SchedulerResult{Names: names}
	for i := range names {
		r.IPC1 = append(r.IPC1, res[0][i].IPC())
		r.IPC2 = append(r.IPC2, res[1][i].IPC())
		r.Speedup = append(r.Speedup, float64(res[0][i].Cycles)/float64(res[1][i].Cycles))
	}
	return r, nil
}

// Table renders the scheduler study.
func (r *SchedulerResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Extension: one vs two warp schedulers per SM (paper §2.2), DMR off",
		Headers: []string{"benchmark", "IPC x1", "IPC x2", "speedup"},
	}
	var sp []float64
	for i, n := range r.Names {
		t.AddRow(n, f2(r.IPC1[i]), f2(r.IPC2[i]), f2(r.Speedup[i]))
		sp = append(sp, r.Speedup[i])
	}
	t.AddRow("AVERAGE", "", "", f2(mean(sp)))
	return t
}

// LatencyResult quantifies the paper's early-detection argument (§1):
// software schemes compare results "at the end of the program
// execution", while Warped-DMR's comparators fire within cycles of the
// corruption.
type LatencyResult struct {
	Benchmark string
	Trials    int
	Activated int
	Detected  int
	MeanDelay float64 // cycles, activation -> first comparator mismatch
	MaxDelay  int64
	KernelLen int64 // kernel cycles = the software end-of-run bound
}

// RunDetectionLatency measures detection latency on the default Engine.
func RunDetectionLatency(benchName string, trials int, seed int64) (*LatencyResult, error) {
	return defaultEngine.DetectionLatency(context.Background(), benchName, trials, seed)
}

// latencyTrial is one transient-injection measurement.
type latencyTrial struct {
	activated bool
	detected  bool
	delay     int64
}

// DetectionLatency injects one transient per trial under full
// Warped-DMR and measures the activation-to-detection distance. The
// per-trial faults are drawn from the seed up front, in trial order, so
// the measurement is deterministic at any worker count; the trials
// themselves fan out across the pool.
func (e *Engine) DetectionLatency(ctx context.Context, benchName string, trials int, seed int64) (*LatencyResult, error) {
	b, err := kernels.ByName(benchName)
	if err != nil {
		return nil, err
	}
	base, err := runBench(ctx, benchName, arch.PaperConfig(), sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	out := &LatencyResult{Benchmark: benchName, Trials: trials, KernelLen: base.Cycles}

	rng := rand.New(rand.NewSource(seed))
	cfg := arch.WarpedDMRConfig()
	faults := make([]*fault.Fault, trials)
	for i := range faults {
		f := fault.RandomTransient(rng, 8, base.Cycles)
		f.Unit = 0 // SP
		f.Bit = uint(rng.Intn(12))
		faults[i] = f
	}

	results, err := runner.Map(ctx, e.pool(), trials, func(ctx context.Context, i int) (latencyTrial, error) {
		inj := fault.NewInjector(faults[i])
		var firstDetect int64 = -1
		g, err := sim.New(cfg, b.GPUMemBytes())
		if err != nil {
			return latencyTrial{}, err
		}
		run, err := b.Build(g)
		if err != nil {
			return latencyTrial{}, err
		}
		for _, step := range run.Steps {
			_, err := g.LaunchContext(ctx, step.Kernel, sim.LaunchOpts{
				Fault: inj,
				OnError: func(ev core.ErrorEvent) {
					if firstDetect < 0 {
						firstDetect = ev.Cycle
					}
				},
			})
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return latencyTrial{}, err // cancelled, not a DUE
				}
				break // DUE: the crash itself is the detection
			}
			if step.Host != nil {
				if err := step.Host(g); err != nil {
					break
				}
			}
			if firstDetect >= 0 {
				break
			}
		}
		tr := latencyTrial{activated: inj.Activations > 0}
		if tr.activated && firstDetect >= 0 {
			tr.detected = true
			if d := firstDetect - inj.FirstActivation; d > 0 {
				tr.delay = d
			} // else detection in the same multi-launch window: delay 0
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}

	var totalDelay int64
	for _, tr := range results {
		if !tr.activated {
			continue
		}
		out.Activated++
		if tr.detected {
			out.Detected++
			totalDelay += tr.delay
			if tr.delay > out.MaxDelay {
				out.MaxDelay = tr.delay
			}
		}
	}
	if out.Detected > 0 {
		out.MeanDelay = float64(totalDelay) / float64(out.Detected)
	}
	return out, nil
}

// Table renders the detection-latency measurement.
func (r *LatencyResult) Table() *stats.Table {
	t := &stats.Table{
		Title: "Extension: detection latency (cycles from corruption to comparator mismatch)",
		Headers: []string{"benchmark", "trials", "activated", "detected",
			"mean delay", "max delay", "end-of-kernel bound"},
	}
	t.AddRow(r.Benchmark,
		fmt.Sprintf("%d", r.Trials),
		fmt.Sprintf("%d", r.Activated),
		fmt.Sprintf("%d", r.Detected),
		fmt.Sprintf("%.1f", r.MeanDelay),
		fmt.Sprintf("%d", r.MaxDelay),
		fmt.Sprintf("%d", r.KernelLen))
	return t
}
