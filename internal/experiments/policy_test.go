package experiments

import (
	"context"
	"reflect"
	"testing"

	"warped/internal/arch"
	"warped/internal/sim"
)

// TestPolicyFullByteIdentical pins the contract in docs/POLICIES.md:
// the Full policy — and every spelling that degenerates to it — is
// byte-identical to a policy-free run. All three configs must produce
// exactly the same per-benchmark statistics, and under Full every
// eligible thread-instruction is protected.
func TestPolicyFullByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark grid")
	}
	base := arch.WarpedDMRConfig() // zero-value policy IS Full

	explicit := arch.WarpedDMRConfig()
	explicit.Policy = arch.Policy{Kind: arch.PolicyFull}

	degenerateKernel := arch.WarpedDMRConfig()
	degenerateKernel.Policy = arch.Policy{
		Kind: arch.PolicyPerKernel, Kernels: []string{"__nonexistent__"}, Exclude: true,
	}

	degenerateSample := arch.WarpedDMRConfig()
	degenerateSample.Policy = arch.Policy{Kind: arch.PolicyWarpSample, SampleN: 1}

	e := &Engine{}
	names, res, err := e.runGrid(context.Background(),
		[]arch.Config{base, explicit, degenerateKernel, degenerateSample}, sim.LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for bi, name := range names {
		want := res[0][bi]
		for ci := 1; ci < len(res); ci++ {
			if !reflect.DeepEqual(res[ci][bi], want) {
				t.Errorf("%s: config %d stats differ from the policy-free run:\ngot  %+v\nwant %+v",
					name, ci, res[ci][bi], want)
			}
		}
		if want.ProtectedTI != want.EligibleTI || want.SkippedTI != 0 {
			t.Errorf("%s: Full policy must protect everything: protected %d, skipped %d, eligible %d",
				name, want.ProtectedTI, want.SkippedTI, want.EligibleTI)
		}
	}
}

// TestWarpSampleDeterministic pins the determinism rule in
// docs/POLICIES.md: warp GIDs are assigned in dispatch order, so the
// protected set under warpsample is a pure function of the workload and
// config — a serial run and a parallel run agree exactly.
func TestWarpSampleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark grid")
	}
	cfg := arch.WarpedDMRConfig()
	cfg.Policy = arch.Policy{Kind: arch.PolicyWarpSample, SampleN: 4}

	serial := &Engine{Workers: 1}
	parallel := &Engine{Workers: 8}
	names, serialRes, err := serial.runAll(context.Background(), cfg, sim.LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, parallelRes, err := parallel.runAll(context.Background(), cfg, sim.LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for bi, name := range names {
		if !reflect.DeepEqual(serialRes[bi], parallelRes[bi]) {
			t.Errorf("%s: serial and parallel runs disagree under warpsample:1/4:\nserial   %+v\nparallel %+v",
				name, serialRes[bi], parallelRes[bi])
		}
		st := serialRes[bi]
		if st.ProtectedTI+st.SkippedTI != st.EligibleTI {
			t.Errorf("%s: protected (%d) + skipped (%d) != eligible (%d)",
				name, st.ProtectedTI, st.SkippedTI, st.EligibleTI)
		}
	}
}

// TestParetoSweepShape pins the harness output contract: one point per
// (benchmark, policy) cell with sane endpoint behaviour — Full protects
// everything, Off protects nothing and pays (approximately) nothing.
func TestParetoSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark grid")
	}
	r, err := (&Engine{}).Pareto(context.Background(), ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	wantPolicies := len(DefaultParetoPolicies())
	if len(r.Names) == 0 || len(r.Policies) != wantPolicies {
		t.Fatalf("sweep shape: %d benchmarks x %d policies, want %d policies",
			len(r.Names), len(r.Policies), wantPolicies)
	}
	if got, want := len(r.Points), len(r.Names)*wantPolicies; got != want {
		t.Fatalf("sweep has %d points, want %d", got, want)
	}
	// Default sweep order: full first, off last.
	for bi, name := range r.Names {
		full := r.Point(bi, 0)
		off := r.Point(bi, wantPolicies-1)
		if full.Policy != "full" || off.Policy != "off" {
			t.Fatalf("%s: endpoint policies are %q..%q, want full..off", name, full.Policy, off.Policy)
		}
		if full.Protected != 1 {
			t.Errorf("%s: full point protects %.3f of eligible, want 1", name, full.Protected)
		}
		if off.Protected != 0 || off.Coverage != 0 {
			t.Errorf("%s: off point protected %.3f coverage %.3f, want 0/0", name, off.Protected, off.Coverage)
		}
		if full.Coverage < off.Coverage {
			t.Errorf("%s: full coverage %.3f below off coverage %.3f", name, full.Coverage, off.Coverage)
		}
		if full.BaseCycles <= 0 || full.Cycles <= 0 {
			t.Errorf("%s: non-positive cycle counts: %d / base %d", name, full.Cycles, full.BaseCycles)
		}
	}
}
