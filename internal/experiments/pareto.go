package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"warped/internal/arch"
	"warped/internal/kernels"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
	"warped/internal/verify"
)

// ParetoSpec configures a coverage-vs-overhead policy sweep.
type ParetoSpec struct {
	// Policies are the selective-protection policies to sweep. Empty
	// means DefaultParetoPolicies().
	Policies []arch.Policy

	// Trials is the number of fault-injection runs per (benchmark,
	// policy) cell used to measure empirical detection; 0 skips the
	// campaign and reports coverage/overhead only.
	Trials int

	// Seed drives the campaign fault draws. Each benchmark derives its
	// fault sequence from (Seed, Trials) alone, so every policy sees the
	// same faults and detection rates are directly comparable.
	Seed int64

	// Synth adds a vulnerability-synthesized section to the sweep: for
	// every benchmark (the Table 4 suite plus the extras), the policy
	// SynthesizePolicy derives from the static unACE analysis of its
	// kernels, paired with a full-protection point of the same benchmark
	// so the two are directly comparable. With Trials > 0 both points
	// run the campaign on identical fault sequences.
	Synth bool
}

// DefaultParetoPolicies returns the sweep the Pareto figure plots by
// default: the full/off endpoints plus the sampling and utilization
// policies between them.
func DefaultParetoPolicies() []arch.Policy {
	return []arch.Policy{
		{Kind: arch.PolicyFull},
		{Kind: arch.PolicyWarpSample, SampleN: 2},
		{Kind: arch.PolicyWarpSample, SampleN: 4},
		{Kind: arch.PolicyActiveMask, MinActive: 16},
		{Kind: arch.PolicyOff},
	}
}

// ParetoPoint is one (benchmark, policy) cell of the sweep: what the
// policy bought (coverage, detection) and what it cost (overhead).
type ParetoPoint struct {
	Benchmark string  `json:"benchmark"`
	Policy    string  `json:"policy"`    // ParsePolicy spelling
	Coverage  float64 `json:"coverage"`  // verified / eligible thread-instrs
	Protected float64 `json:"protected"` // policy-admitted / eligible
	Overhead  float64 `json:"overhead"`  // cycles / DMR-off cycles - 1

	Cycles     int64 `json:"cycles"`
	BaseCycles int64 `json:"base_cycles"` // DMR-off cycles, same benchmark

	// Campaign outcomes (Trials > 0 only).
	Trials    int     `json:"trials,omitempty"`
	Activated int     `json:"activated,omitempty"`
	Detected  int     `json:"detected,omitempty"`
	Detection float64 `json:"detection,omitempty"` // detected / activated
}

// ParetoResult is the full sweep: for every Table 4 benchmark, one
// point per policy, in (benchmark-major, policy-minor) order.
type ParetoResult struct {
	Names    []string // benchmarks, paper order
	Policies []arch.Policy
	Points   []ParetoPoint // len(Names) * len(Policies)
	Trials   int
	Seed     int64

	// Synth is the vulnerability-synthesized section (ParetoSpec.Synth):
	// two points per benchmark of SynthNames — full protection, then the
	// policy synthesized from the static unACE analysis — over the
	// Table 4 suite plus the extras.
	SynthNames []string
	Synth      []ParetoPoint // len(SynthNames) * 2
}

// Point returns the cell for benchmark bi and policy pi.
func (r *ParetoResult) Point(bi, pi int) *ParetoPoint {
	return &r.Points[bi*len(r.Policies)+pi]
}

// RunPareto runs a policy sweep on the default Engine.
func RunPareto(spec ParetoSpec) (*ParetoResult, error) {
	return defaultEngine.Pareto(context.Background(), spec)
}

// Pareto sweeps the selective-protection policies over every Table 4
// benchmark and reports, per (benchmark, policy) cell, the coverage the
// policy retains and the cycle overhead it pays — the axes of a
// coverage-vs-overhead Pareto plot (docs/POLICIES.md, "Choosing a
// policy"). Overhead is measured against a DMR-off run of the same
// benchmark; with spec.Trials > 0 each cell also runs the
// fault-injection campaign, with identical fault sequences across
// policies. The fault-free grid is one (1+len(policies))×11 fan-out;
// output is byte-identical at any worker count.
func (e *Engine) Pareto(ctx context.Context, spec ParetoSpec) (*ParetoResult, error) {
	policies := spec.Policies
	if len(policies) == 0 {
		policies = DefaultParetoPolicies()
	}
	for i, p := range policies {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: pareto policy %d: %w", i, err)
		}
	}

	// Config 0 is the DMR-off overhead baseline; configs 1..P are the
	// recommended Warped-DMR machine with each policy armed.
	cfgs := make([]arch.Config, 0, len(policies)+1)
	cfgs = append(cfgs, arch.PaperConfig())
	for _, p := range policies {
		cfg := arch.WarpedDMRConfig()
		cfg.Policy = p
		cfgs = append(cfgs, cfg)
	}
	names, res, err := e.runGrid(ctx, cfgs, sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}

	r := &ParetoResult{Names: names, Policies: policies, Trials: spec.Trials, Seed: spec.Seed}
	r.Points = make([]ParetoPoint, 0, len(names)*len(policies))
	for bi, name := range names {
		base := res[0][bi]
		for pi, p := range policies {
			st := res[pi+1][bi]
			pt := ParetoPoint{
				Benchmark:  name,
				Policy:     p.String(),
				Coverage:   st.Coverage(),
				Protected:  st.ProtectedFraction(),
				Cycles:     st.Cycles,
				BaseCycles: base.Cycles,
			}
			if base.Cycles > 0 {
				pt.Overhead = float64(st.Cycles)/float64(base.Cycles) - 1
			}
			r.Points = append(r.Points, pt)
		}
	}

	if spec.Trials > 0 {
		// Campaigns run cell by cell — each already fans its trials out
		// across the pool — with the per-benchmark fault sequence shared by
		// every policy (CampaignConfig draws it from (n, seed) alone).
		for bi, name := range names {
			for pi := range policies {
				cfg := cfgs[pi+1]
				c, err := e.CampaignConfig(ctx, name, cfg, spec.Trials, spec.Seed)
				if err != nil {
					return nil, err
				}
				pt := r.Point(bi, pi)
				pt.Trials = c.Runs
				pt.Activated = c.Activated
				pt.Detected = c.Detected
				pt.Detection = c.DetectionRate()
			}
		}
	}

	if spec.Synth {
		bs := append(append([]*kernels.Benchmark{}, kernels.All()...), kernels.Extras()...)
		names, points, err := e.synthSweep(ctx, bs, spec.Trials, spec.Seed)
		if err != nil {
			return nil, err
		}
		r.SynthNames, r.Synth = names, points
	}
	return r, nil
}

// synthSweep runs the vulnerability-synthesized section of the Pareto
// sweep over bs: per benchmark, a full-protection point and a point
// with the policy SynthesizePolicy derives from the static unACE
// analysis of the benchmark's kernels (the first non-full policy among
// them, or full when every kernel is fully ACE). The runGrid fan-out
// only covers the paper suite, so this section runs its own grid —
// benchmarks × {DMR-off, full, synthesized} — through the pool.
func (e *Engine) synthSweep(ctx context.Context, bs []*kernels.Benchmark, trials int, seed int64) ([]string, []ParetoPoint, error) {
	policies := make([]arch.Policy, len(bs))
	names := make([]string, len(bs))
	for bi, b := range bs {
		names[bi] = b.Name
		policies[bi] = arch.Policy{Kind: arch.PolicyFull}
		progs, err := benchPrograms(b)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: synth sweep %s: %w", b.Name, err)
		}
		for _, p := range progs {
			rep, err := verify.AnalyzeVuln(p)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: synth sweep %s: kernel %s: %w", b.Name, p.Name, err)
			}
			if pol := arch.SynthesizePolicy(p.Name, len(p.Instrs), rep.UnACEPCs()); pol.Kind != arch.PolicyFull {
				policies[bi] = pol
				break
			}
		}
	}

	// Fault-free grid: per benchmark a DMR-off overhead baseline, the
	// full-protection reference, and the synthesized policy.
	cfgOf := func(bi, ci int) arch.Config {
		switch ci {
		case 0:
			return arch.PaperConfig()
		case 1:
			return arch.WarpedDMRConfig()
		default:
			cfg := arch.WarpedDMRConfig()
			cfg.Policy = policies[bi]
			return cfg
		}
	}
	res, err := runner.Map(ctx, e.pool(), len(bs)*3, func(ctx context.Context, i int) (*stats.Stats, error) {
		bi := i / 3
		g, err := sim.New(cfgOf(bi, i%3), bs[bi].GPUMemBytes())
		if err != nil {
			return nil, err
		}
		return kernels.ExecuteContext(ctx, g, bs[bi], sim.LaunchOpts{Metrics: e.Metrics})
	})
	if err != nil {
		return nil, nil, err
	}

	points := make([]ParetoPoint, 0, len(bs)*2)
	for bi := range bs {
		base := res[bi*3]
		for ci := 1; ci <= 2; ci++ {
			st := res[bi*3+ci]
			pol := arch.Policy{Kind: arch.PolicyFull}
			if ci == 2 {
				pol = policies[bi]
			}
			pt := ParetoPoint{
				Benchmark:  names[bi],
				Policy:     pol.String(),
				Coverage:   st.Coverage(),
				Protected:  st.ProtectedFraction(),
				Cycles:     st.Cycles,
				BaseCycles: base.Cycles,
			}
			if base.Cycles > 0 {
				pt.Overhead = float64(st.Cycles)/float64(base.Cycles) - 1
			}
			points = append(points, pt)
		}
	}

	if trials > 0 {
		for bi := range bs {
			for ci := 1; ci <= 2; ci++ {
				c, err := e.CampaignConfig(ctx, names[bi], cfgOf(bi, ci), trials, seed)
				if err != nil {
					return nil, nil, err
				}
				pt := &points[bi*2+ci-1]
				pt.Trials = c.Runs
				pt.Activated = c.Activated
				pt.Detected = c.Detected
				pt.Detection = c.DetectionRate()
			}
		}
	}
	return names, points, nil
}

// Table renders the sweep, one row per (benchmark, policy) cell.
func (r *ParetoResult) Table() *stats.Table {
	headers := []string{"benchmark", "policy", "coverage", "protected", "overhead"}
	if r.Trials > 0 {
		headers = append(headers, "trials", "activated", "detected", "detection")
	}
	t := &stats.Table{
		Title:   "Pareto sweep: DMR coverage vs cycle overhead per protection policy",
		Headers: headers,
	}
	addPoint := func(p *ParetoPoint) {
		row := []string{p.Benchmark, p.Policy, pct(p.Coverage), pct(p.Protected), pct(p.Overhead)}
		if r.Trials > 0 {
			row = append(row,
				fmt.Sprintf("%d", p.Trials),
				fmt.Sprintf("%d", p.Activated),
				fmt.Sprintf("%d", p.Detected),
				pct(p.Detection))
		}
		t.AddRow(row...)
	}
	for bi := range r.Names {
		for pi := range r.Policies {
			addPoint(r.Point(bi, pi))
		}
	}
	for i := range r.Synth {
		addPoint(&r.Synth[i])
	}
	return t
}

// WriteJSONL streams the sweep as JSON Lines, one point per line — the
// machine-readable companion of Table().CSV() for plotting pipelines.
func (r *ParetoResult) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range r.Points {
		if err := enc.Encode(&r.Points[i]); err != nil {
			return err
		}
	}
	for i := range r.Synth {
		if err := enc.Encode(&r.Synth[i]); err != nil {
			return err
		}
	}
	return nil
}
