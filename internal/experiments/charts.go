package experiments

import (
	"fmt"

	"warped/internal/baselines"
	"warped/internal/stats"
)

// Chart renders Fig. 1 as a 100%-stacked ASCII bar chart, the way the
// paper draws it.
func (r *Fig1Result) Chart() string {
	rows := make([][]float64, len(r.Fractions))
	for i, f := range r.Fractions {
		rows[i] = f[:]
	}
	return stats.Stacked("Figure 1: active-thread breakdown per benchmark",
		r.Names, rows, stats.ActiveBuckets, 60)
}

// Chart renders Fig. 5 as a stacked chart.
func (r *Fig5Result) Chart() string {
	rows := make([][]float64, len(r.Fractions))
	for i, f := range r.Fractions {
		rows[i] = f[:]
	}
	return stats.Stacked("Figure 5: instruction-type breakdown per benchmark",
		r.Names, rows, []string{"SP", "SFU", "LD/ST"}, 60)
}

// Chart renders Fig. 9a coverage as grouped bars (one row per
// benchmark and configuration).
func (r *Fig9aResult) Chart() string {
	var labels []string
	var vals []float64
	for i, n := range r.Names {
		labels = append(labels, n+"/4c", n+"/8c", n+"/x")
		vals = append(vals, 100*r.Cov4[i], 100*r.Cov8[i], 100*r.CovCross[i])
	}
	a4, a8, ax := r.Averages()
	labels = append(labels, "AVG/4c", "AVG/8c", "AVG/x")
	vals = append(vals, 100*a4, 100*a8, 100*ax)
	return stats.HBar("Figure 9a: error coverage (%)", labels, vals, 50, 100, "%.1f%%")
}

// Chart renders the Fig. 9b overhead curve per benchmark at q=10.
func (r *Fig9bResult) Chart() string {
	var labels []string
	var vals []float64
	last := len(Fig9bSizes) - 1
	for i, n := range r.Names {
		labels = append(labels, n)
		vals = append(vals, r.Normalized[i][last])
	}
	avg := r.Averages()
	labels = append(labels, "AVERAGE")
	vals = append(vals, avg[last])
	return stats.HBar(
		fmt.Sprintf("Figure 9b: normalized cycles with ReplayQ=%d", Fig9bSizes[last]),
		labels, vals, 50, 2.0, "%.2fx")
}

// Chart renders Fig. 10's normalized end-to-end times.
func (r *Fig10Result) Chart() string {
	norm := r.NormalizedTotals()
	labels := make([]string, len(baselines.Approaches))
	for i, a := range baselines.Approaches {
		labels[i] = a.String()
	}
	return stats.HBar("Figure 10: end-to-end time normalized to Original (suite average)",
		labels, norm, 50, 2.2, "%.2fx")
}

// Chart renders Fig. 11's power/energy pairs.
func (r *Fig11Result) Chart() string {
	var labels []string
	var vals []float64
	for i, n := range r.Names {
		labels = append(labels, n+"/P", n+"/E")
		vals = append(vals, r.Power[i], r.Energy[i])
	}
	p, e := r.Averages()
	labels = append(labels, "AVG/P", "AVG/E")
	vals = append(vals, p, e)
	return stats.HBar("Figure 11: normalized power (P) and energy (E)", labels, vals, 50, 2.0, "%.2fx")
}
