package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"warped/internal/arch"
	"warped/internal/baselines"
	"warped/internal/fault"
	"warped/internal/kernels"
	"warped/internal/power"
	"warped/internal/runner"
	"warped/internal/sim"
	"warped/internal/stats"
	"warped/internal/xfer"
)

// Fig10Result compares end-to-end time (kernel + transfers) of the
// five approaches per benchmark, normalized to Original.
type Fig10Result struct {
	Names    []string
	Kernel   [][]float64 // seconds, [benchmark][approach]
	Transfer [][]float64
}

// RunFig10 reproduces Figure 10 on the default Engine.
func RunFig10() (*Fig10Result, error) { return defaultEngine.Fig10(context.Background()) }

// Fig10 reproduces Figure 10. Each (benchmark, approach) evaluation is
// an independent run, so the whole 11×5 grid fans out at once.
func (e *Engine) Fig10(ctx context.Context) (*Fig10Result, error) {
	pcie := xfer.PCIe2x16()
	bs := kernels.All()
	na := len(baselines.Approaches)
	flat, err := runner.Map(ctx, e.pool(), len(bs)*na,
		func(ctx context.Context, i int) (baselines.Result, error) {
			return baselines.EvaluateContext(ctx, baselines.Approaches[i%na], bs[i/na], arch.PaperConfig(), pcie)
		})
	if err != nil {
		return nil, err
	}
	r := &Fig10Result{}
	for bi, b := range bs {
		r.Names = append(r.Names, b.Name)
		var ks, ts []float64
		for ai := 0; ai < na; ai++ {
			x := flat[bi*na+ai]
			ks = append(ks, x.KernelS)
			ts = append(ts, x.TransferS)
		}
		r.Kernel = append(r.Kernel, ks)
		r.Transfer = append(r.Transfer, ts)
	}
	return r, nil
}

// NormalizedTotals returns total time per approach normalized to
// Original, averaged over benchmarks.
func (r *Fig10Result) NormalizedTotals() []float64 {
	out := make([]float64, len(baselines.Approaches))
	for ai := range baselines.Approaches {
		var xs []float64
		for bi := range r.Names {
			orig := r.Kernel[bi][0] + r.Transfer[bi][0]
			tot := r.Kernel[bi][ai] + r.Transfer[bi][ai]
			xs = append(xs, tot/orig)
		}
		out[ai] = mean(xs)
	}
	return out
}

// Table renders the Fig. 10 data (total milliseconds, kernel+transfer).
func (r *Fig10Result) Table() *stats.Table {
	headers := []string{"benchmark"}
	for _, a := range baselines.Approaches {
		headers = append(headers, a.String())
	}
	t := &stats.Table{
		Title:   "Figure 10: end-to-end time (ms), kernel + data transfer",
		Headers: headers,
	}
	for bi, n := range r.Names {
		row := []string{n}
		for ai := range baselines.Approaches {
			ms := (r.Kernel[bi][ai] + r.Transfer[bi][ai]) * 1e3
			row = append(row, fmt.Sprintf("%.3f", ms))
		}
		t.AddRow(row...)
	}
	norm := r.NormalizedTotals()
	row := []string{"AVG (normalized)"}
	for _, v := range norm {
		row = append(row, f2(v))
	}
	t.AddRow(row...)
	return t
}

// Fig11Result holds power and energy of Warped-DMR normalized to the
// no-detection baseline. Paper averages: power 1.11x, energy 1.31x.
type Fig11Result struct {
	Names  []string
	Power  []float64
	Energy []float64
}

// Averages returns the benchmark-average normalized power and energy.
func (r *Fig11Result) Averages() (p, e float64) { return mean(r.Power), mean(r.Energy) }

// RunFig11 reproduces Figure 11 on the default Engine.
func RunFig11() (*Fig11Result, error) { return defaultEngine.Fig11(context.Background()) }

// Fig11 reproduces Figure 11 with the Hong&Kim-style model.
func (e *Engine) Fig11(ctx context.Context) (*Fig11Result, error) {
	pp := power.DefaultParams()
	baseCfg := arch.PaperConfig()
	dmrCfg := arch.WarpedDMRConfig()
	names, res, err := e.runGrid(ctx, []arch.Config{baseCfg, dmrCfg}, sim.LaunchOpts{})
	if err != nil {
		return nil, err
	}
	r := &Fig11Result{Names: names}
	for i := range names {
		b := power.Estimate(baseCfg, pp, res[0][i])
		d := power.Estimate(dmrCfg, pp, res[1][i])
		r.Power = append(r.Power, d.TotalW/b.TotalW)
		r.Energy = append(r.Energy, d.EnergyJ/b.EnergyJ)
	}
	return r, nil
}

// Table renders the Fig. 11 data.
func (r *Fig11Result) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 11: Warped-DMR power and energy, normalized to no-detection baseline",
		Headers: []string{"benchmark", "power", "energy"},
	}
	for i, n := range r.Names {
		t.AddRow(n, f2(r.Power[i]), f2(r.Energy[i]))
	}
	p, e := r.Averages()
	t.AddRow("AVERAGE", f2(p), f2(e))
	return t
}

// CampaignResult summarizes a fault-injection campaign (extension
// experiment validating the Fig. 9a coverage numbers empirically).
type CampaignResult struct {
	Benchmark string
	Runs      int
	Activated int // runs where the fault corrupted at least one value
	Detected  int // activated runs flagged by a DMR comparator
	Crashed   int // activated runs aborted by an address fault
	Silent    int // activated runs that finished unflagged (SDC or benign)
}

// DetectionRate returns detected / activated (0 if nothing activated).
func (c CampaignResult) DetectionRate() float64 {
	if c.Activated == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Activated)
}

// RunCampaign runs a campaign on the default Engine.
func RunCampaign(benchName string, n int, seed int64) (*CampaignResult, error) {
	return defaultEngine.Campaign(context.Background(), benchName, n, seed)
}

// campaignOutcome classifies one fault-injected run.
type campaignOutcome struct {
	activated, detected, crashed bool
}

// Campaign injects n random stuck-at faults (one per run) into a
// benchmark under full Warped-DMR and reports how many were caught.
// The fault sequence is drawn from the seed up front, in run order, so
// the campaign is reproducible and byte-identical at any worker count;
// the n runs themselves fan out across the pool.
func (e *Engine) Campaign(ctx context.Context, benchName string, n int, seed int64) (*CampaignResult, error) {
	return e.CampaignConfig(ctx, benchName, arch.WarpedDMRConfig(), n, seed)
}

// CampaignConfig is Campaign under an explicit machine configuration —
// the knob the Pareto harness turns to measure how a selective
// protection policy (cfg.Policy) degrades empirical detection. The
// fault sequence depends only on (n, seed, cfg.NumSMs), so sweeps that
// vary the policy inject identical faults and their detection rates
// are directly comparable.
func (e *Engine) CampaignConfig(ctx context.Context, benchName string, cfg arch.Config, n int, seed int64) (*CampaignResult, error) {
	b, err := kernels.ByName(benchName)
	if err != nil {
		// Extras campaign too: the synthesized-policy sweep validates its
		// reference microbenchmark the same way as the paper suite.
		if b, err = kernels.ExtraByName(benchName); err != nil {
			return nil, err
		}
	}
	// Bias toward hardware the workload actually exercises: the block
	// dispatcher fills low-numbered SMs first, and low result bits
	// toggle far more often than high ones, so unbiased draws mostly
	// produce faults that never activate.
	rng := rand.New(rand.NewSource(seed))
	faults := make([]*fault.Fault, n)
	for i := range faults {
		f := fault.RandomStuckAt(rng, min(cfg.NumSMs, 8))
		f.Bit = uint(rng.Intn(12))
		faults[i] = f
	}

	outcomes, err := runner.Map(ctx, e.pool(), n, func(ctx context.Context, i int) (campaignOutcome, error) {
		inj := fault.NewInjector(faults[i])
		g, err := sim.New(cfg, b.GPUMemBytes())
		if err != nil {
			return campaignOutcome{}, err
		}
		run, err := b.Build(g)
		if err != nil {
			return campaignOutcome{}, err
		}
		var o campaignOutcome
		for _, step := range run.Steps {
			st, err := g.LaunchContext(ctx, step.Kernel, sim.LaunchOpts{Fault: inj, Metrics: e.Metrics})
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return campaignOutcome{}, err // cancelled, not a DUE
				}
				// A corrupted address computation can run off the end of
				// memory; the launch aborts, which is a detection of sorts
				// (DUE rather than SDC) but we count it separately.
				o.crashed = true
				break
			}
			if st.FaultsDetected > 0 {
				o.detected = true
			}
			if step.Host != nil {
				if err := step.Host(g); err != nil {
					o.crashed = true
					break
				}
			}
		}
		o.activated = inj.Activations > 0
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	out := &CampaignResult{Benchmark: benchName, Runs: n}
	for _, o := range outcomes {
		if !o.activated {
			continue
		}
		out.Activated++
		switch {
		case o.detected:
			out.Detected++
		case o.crashed:
			out.Crashed++
		default:
			out.Silent++
		}
	}
	return out, nil
}

// CampaignTable renders a set of campaign results.
func CampaignTable(rs []*CampaignResult) *stats.Table {
	t := &stats.Table{
		Title:   "Fault injection campaign: random stuck-at faults under full Warped-DMR",
		Headers: []string{"benchmark", "runs", "activated", "detected", "crashed", "silent", "detection"},
	}
	for _, c := range rs {
		t.AddRow(c.Benchmark,
			fmt.Sprintf("%d", c.Runs),
			fmt.Sprintf("%d", c.Activated),
			fmt.Sprintf("%d", c.Detected),
			fmt.Sprintf("%d", c.Crashed),
			fmt.Sprintf("%d", c.Silent),
			pct(c.DetectionRate()))
	}
	return t
}
