package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// RadixSort: LSD radix sort of 16-bit keys, 4 bits per pass. Each pass
// is a histogram kernel (global atomics), a 16-element host-side
// exclusive scan (the CUDA SDK version also round-trips tiny bucket
// arrays), and a stable gather kernel in which 16 threads — one per
// digit — walk the whole key array. The gather phase runs a single
// half-utilized warp for thousands of cycles, giving RadixSort the
// low-occupancy profile of the paper's Fig. 1.
const (
	radixN      = 2048
	radixDigits = 16
	radixPasses = 4
)

// params: [0]=keys, [4]=hist, [8]=shiftAmount, [12]=n.
const radixHistSrc = `
.kernel radix_hist
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x
	ld.param r3, [12]
	setp.ge.s32 p0, r2, r3
	@p0 exit
	ld.param r4, [0]
	shl  r5, r2, 2
	iadd r5, r4, r5
	ld.global r6, [r5]          ; key
	ld.param r7, [8]
	shr  r6, r6, r7
	and  r6, r6, 15             ; digit
	ld.param r8, [4]
	shl  r6, r6, 2
	iadd r8, r8, r6
	mov  r9, 1
	atom.add.global r10, [r8], r9
	exit
`

// params: [0]=in, [4]=out, [8]=offsets (exclusive scan of hist),
// [12]=shiftAmount, [16]=n. One thread per digit value; thread d walks
// the input in order and writes keys whose digit is d to consecutive
// slots starting at offsets[d] — a stable counting-sort scatter.
const radixGatherSrc = `
.kernel radix_gather
	mov  r0, %tid.x             ; digit owned by this thread
	ld.param r1, [0]
	ld.param r2, [4]
	ld.param r3, [8]
	ld.param r4, [12]           ; shift
	ld.param r5, [16]           ; n
	shl  r6, r0, 2
	iadd r6, r3, r6
	ld.global r7, [r6]          ; next output slot for this digit
	mov  r8, 0                  ; i
SCAN:
	setp.ge.s32 p0, r8, r5
	@p0 bra DONE
	shl  r9, r8, 2
	iadd r9, r1, r9
	ld.global r10, [r9]         ; key
	shr  r11, r10, r4
	and  r11, r11, 15
	setp.eq.s32 p1, r11, r0     ; mine?
	@p1 shl  r12, r7, 2
	@p1 iadd r12, r2, r12
	@p1 st.global [r12], r10
	@p1 iadd r7, r7, 1
	iadd r8, r8, 1
	bra SCAN
DONE:
	exit
`

func init() {
	register(&Benchmark{
		Name:     "RadixSort",
		Category: "Sorting",
		Desc:     fmt.Sprintf("4-pass LSD radix sort of %d 16-bit keys", radixN),
		Build:    buildRadix,
	})
}

func buildRadix(g *sim.GPU) (*Run, error) {
	histProg, err := asm.Assemble(radixHistSrc)
	if err != nil {
		return nil, err
	}
	gatherProg, err := asm.Assemble(radixGatherSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(57))
	keys := make([]uint32, radixN)
	for i := range keys {
		keys[i] = uint32(rng.Intn(1 << 16))
	}
	bufA := g.Mem.MustAlloc(4 * radixN)
	bufB := g.Mem.MustAlloc(4 * radixN)
	dhist := g.Mem.MustAlloc(4 * radixDigits)
	if err := g.Mem.WriteWords(bufA, keys); err != nil {
		return nil, err
	}

	var steps []Step
	src, dst := bufA, bufB
	for pass := 0; pass < radixPasses; pass++ {
		shift := uint32(pass * 4)
		// Clear the histogram before each pass (host-side memset).
		clear := func(g *sim.GPU) error {
			return g.Mem.WriteWords(dhist, make([]uint32, radixDigits))
		}
		if err := clear(g); err != nil {
			return nil, err
		}
		steps = append(steps,
			Step{
				Kernel: &sim.Kernel{
					Prog:  histProg,
					GridX: radixN / 256, GridY: 1,
					BlockX: 256, BlockY: 1,
					Params: mem.NewParams(src, dhist, shift, radixN),
				},
				Host: func(g *sim.GPU) error {
					// Exclusive scan of the 16 bucket counts (tiny, done on
					// the host like the SDK's CPU-assisted small scans).
					h, err := g.Mem.ReadWords(dhist, radixDigits)
					if err != nil {
						return err
					}
					var acc uint32
					for i, c := range h {
						h[i] = acc
						acc += c
					}
					return g.Mem.WriteWords(dhist, h)
				},
			},
			Step{
				Kernel: &sim.Kernel{
					Prog:  gatherProg,
					GridX: 1, GridY: 1,
					BlockX: radixDigits, BlockY: 1,
					Params: mem.NewParams(src, dst, dhist, shift, radixN),
				},
				Host: clear,
			},
		)
		src, dst = dst, src
	}
	final := src // after an even number of swaps this is bufA

	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(final, radixN)
		if err != nil {
			return err
		}
		want := make([]uint32, radixN)
		copy(want, keys)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("sorted[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return &Run{
		Steps:    steps,
		Check:    check,
		InBytes:  4 * radixN,
		OutBytes: 4 * radixN,
	}, nil
}
