package kernels

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"warped/internal/arch"
	"warped/internal/sim"
	"warped/internal/stats"
)

// TestConcurrentLaunches pins the property the parallel orchestration
// engine depends on: separate GPU instances can run concurrently
// because sim, kernels, and stats share no hidden mutable state
// (package-level vars, cached programs, lazily-built tables). Run under
// `go test -race` — CI does — any cross-run sharing fails the build.
func TestConcurrentLaunches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const workers = 4
	benches := []string{"MatrixMul", "BFS", "SHA", "SCAN"}

	// Serial reference results for the same benchmarks.
	want := make([]*stats.Stats, len(benches))
	for i, name := range benches {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := sim.New(arch.WarpedDMRConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Execute(g, b, sim.LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = st
	}

	// The same runs, all launched concurrently, several times over so
	// every pair of benchmarks overlaps at least once. Benchmark Build
	// re-assembles its program per GPU, so even instruction memory is
	// private to each run.
	var wg sync.WaitGroup
	got := make([][]*stats.Stats, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		got[w] = make([]*stats.Stats, len(benches))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, name := range benches {
				b, err := ByName(name)
				if err != nil {
					errs[w] = err
					return
				}
				g, err := sim.New(arch.WarpedDMRConfig(), 0)
				if err != nil {
					errs[w] = err
					return
				}
				st, err := ExecuteContext(context.Background(), g, b, sim.LaunchOpts{})
				if err != nil {
					errs[w] = err
					return
				}
				got[w][i] = st
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := range got {
		for i, name := range benches {
			if !reflect.DeepEqual(got[w][i], want[i]) {
				t.Errorf("worker %d: %s stats diverged from the serial run", w, name)
			}
		}
	}
}

// TestConcurrentLintAll: the lazily-built Sources table must be safe to
// trigger from multiple goroutines (parallel experiment CLIs lint up
// front on each worker's first use).
func TestConcurrentLintAll(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = LintAll()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}
