package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// Laplace: Jacobi relaxation of the 2-D Laplace equation (5-point
// stencil), the classic "scientific computing" GPGPU workload. Paper
// Table 4 launches 32x4-thread blocks; we keep that block shape on a
// 256x64 grid with two ping-pong iterations. Interior warps are fully
// utilized; boundary handling creates thin divergence, so the workload
// is dominated by inter-warp DMR with a sprinkle of intra-warp.
const (
	lapW     = 250 // not a multiple of the 32-wide blocks: tail warps
	lapH     = 64
	lapIters = 2
)

const laplaceSrc = `
.kernel laplace
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; x
	mov  r0, %ctaid.y
	mov  r1, %ntid.y
	imad r3, r0, r1, %tid.y     ; y
	ld.param r4, [0]            ; W
	ld.param r5, [4]            ; H
	setp.ge.s32 p0, r2, r4
	@p0 exit                    ; column beyond the grid
	ld.param r6, [8]            ; in
	ld.param r7, [12]           ; out
	imad r8, r3, r4, r2         ; idx = y*W + x
	shl  r8, r8, 2
	; boundary iff x*(W-1-x)*y*(H-1-y) == 0
	isub r9, r4, 1
	isub r9, r9, r2
	imul r9, r9, r2
	isub r10, r5, 1
	isub r10, r10, r3
	imul r10, r10, r3
	imul r9, r9, r10
	setp.eq.s32 p0, r9, 0
	@p0 bra BOUND, DONE
	; interior: out = 0.25*(up + down + right + left)
	iadd r11, r6, r8
	shl  r13, r4, 2             ; row stride in bytes
	iadd r14, r11, r13
	ld.global r15, [r14]        ; down
	isub r14, r11, r13
	ld.global r16, [r14]        ; up
	ld.global r17, [r11+4]      ; right
	ld.global r18, [r11-4]      ; left
	fadd r15, r15, r16
	fadd r15, r15, r17
	fadd r15, r15, r18
	fmul r15, r15, 0.25
	iadd r14, r7, r8
	st.global [r14], r15
	bra DONE
BOUND:
	iadd r11, r6, r8
	ld.global r12, [r11]
	iadd r11, r7, r8
	st.global [r11], r12
DONE:
	exit
`

func init() {
	register(&Benchmark{
		Name:     "Laplace",
		Category: "Scientific",
		Desc:     fmt.Sprintf("%dx%d Jacobi 5-point stencil, %d iterations", lapW, lapH, lapIters),
		Build:    buildLaplace,
	})
}

func buildLaplace(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(laplaceSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(11))
	in := make([]float32, lapW*lapH)
	for i := range in {
		in[i] = rng.Float32() * 100
	}
	bufs := [2]uint32{
		g.Mem.MustAlloc(4 * len(in)),
		g.Mem.MustAlloc(4 * len(in)),
	}
	if err := g.Mem.WriteFloats(bufs[0], in); err != nil {
		return nil, err
	}
	var steps []Step
	for it := 0; it < lapIters; it++ {
		src, dst := bufs[it%2], bufs[(it+1)%2]
		steps = append(steps, Step{Kernel: &sim.Kernel{
			Prog:  prog,
			GridX: (lapW + 31) / 32, GridY: lapH / 4,
			BlockX: 32, BlockY: 4,
			Params: mem.NewParams(lapW, lapH, src, dst),
		}})
	}
	final := bufs[lapIters%2]

	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadFloats(final, lapW*lapH)
		if err != nil {
			return err
		}
		cur := make([]float32, len(in))
		next := make([]float32, len(in))
		copy(cur, in)
		for it := 0; it < lapIters; it++ {
			for y := 0; y < lapH; y++ {
				for x := 0; x < lapW; x++ {
					i := y*lapW + x
					if x == 0 || x == lapW-1 || y == 0 || y == lapH-1 {
						next[i] = cur[i]
						continue
					}
					// Same association order as the kernel: (down+up)+right+left.
					s := cur[i+lapW] + cur[i-lapW]
					s += cur[i+1]
					s += cur[i-1]
					next[i] = s * 0.25
				}
			}
			cur, next = next, cur
		}
		for i := range got {
			w := float64(cur[i])
			if math.Abs(float64(got[i])-w) > 1e-4*(1+math.Abs(w)) {
				return fmt.Errorf("cell %d = %g, want %g", i, got[i], w)
			}
		}
		return nil
	}
	return &Run{
		Steps:    steps,
		Check:    check,
		InBytes:  4 * int64(len(in)),
		OutBytes: 4 * int64(len(in)),
	}, nil
}
