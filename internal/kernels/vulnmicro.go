package kernels

import (
	"fmt"
	"math/rand"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// --- VulnMicro: vulnerability-analysis microbenchmark ---
//
// A vector scale with a disabled-telemetry chain left in the binary:
// the debug build computed a per-element diagnostic signature and
// published it with a trailing store; the release build compiled the
// store out but kept the arithmetic — the classic dead-code artifact
// that ACE analysis exists to find (a fault anywhere in the chain is
// architecturally masked). The live path (index math, load, scale,
// store) and the dead chain share source registers, so the analysis
// must separate per-instruction destinations from operand liveness
// rather than condemn whole registers.
//
// This is the reference workload for `warpsim vuln`, the experiments
// `vulncheck` figure, and the synthesized-policy Pareto rows: its
// unACE fraction is large enough (~5 of 18 eligible PCs on the hot
// path) that a synthesized skip policy shows measurable SkippedTI.

const vulnMicroN = 4096

// params: [0]=in, [4]=out, [8]=k (scale factor).
const vulnMicroSrc = `
.kernel vuln_micro
.block 64
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mov  r2, %ntid.x
	imad r3, r1, r2, r0         ; element index
	ld.param r4, [0]
	ld.param r5, [4]
	ld.param r6, [8]            ; k
	shl  r7, r3, 2
	iadd r8, r4, r7
	ld.global r9, [r8]          ; x
	imul r10, r9, r6            ; y = k*x
	; disabled telemetry: the diagnostic signature below was published
	; by a st.global in the debug build; without it the chain is dead.
	xor  r11, r9, r3
	imad r11, r11, 31, r10
	and  r11, r11, 255
	shl  r11, r11, 8
	iadd r11, r11, r9
	; live path resumes
	iadd r12, r5, r7
	st.global [r12], r10
	exit
`

func init() {
	registerExtra(&Benchmark{
		Name:     "VulnMicro",
		Category: "Extra/Synthetic",
		Desc:     fmt.Sprintf("vector scale of %d ints with a dead telemetry chain (ACE-analysis reference)", vulnMicroN),
		Build:    buildVulnMicro,
	})
}

func buildVulnMicro(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(vulnMicroSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(109))
	const k = 2654435761 // Knuth's multiplicative hash constant
	in := make([]uint32, vulnMicroN)
	for i := range in {
		in[i] = rng.Uint32()
	}
	din := g.Mem.MustAlloc(4 * vulnMicroN)
	dout := g.Mem.MustAlloc(4 * vulnMicroN)
	if err := g.Mem.WriteWords(din, in); err != nil {
		return nil, err
	}
	kern := &sim.Kernel{
		Prog:  prog,
		GridX: vulnMicroN / 64, GridY: 1,
		BlockX: 64, BlockY: 1,
		Params: mem.NewParams(din, dout, k),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(dout, vulnMicroN)
		if err != nil {
			return err
		}
		for i := range got {
			if want := in[i] * k; got[i] != want {
				return fmt.Errorf("out[%d] = %d, want %d", i, got[i], want)
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: kern}},
		Check:    check,
		InBytes:  4 * vulnMicroN,
		OutBytes: 4 * vulnMicroN,
	}, nil
}
