package kernels

import (
	"fmt"
	"math/rand"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// Extra workloads beyond the paper's Table 4: classic GPU primitives
// kept as reference kernels for library users and as additional
// exercise for the simulator (reduction trees, transpose coalescing
// patterns, atomic-heavy histograms). They are registered in a separate
// list so the paper's experiments stay exactly the 11-benchmark suite.

var extras []*Benchmark

func registerExtra(b *Benchmark) { extras = append(extras, b) }

// Extras returns the non-paper reference workloads.
func Extras() []*Benchmark {
	out := make([]*Benchmark, len(extras))
	copy(out, extras)
	return out
}

// ExtraByName returns an extra workload by name.
func ExtraByName(name string) (*Benchmark, error) {
	for _, b := range extras {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown extra workload %q", name)
}

// --- Reduction: block-wise shared-memory sum tree + atomic combine ---

const reduceN = 8192

// params: [0]=in, [4]=out (single word), [8]=n.
const reduceSrc = `
.kernel reduce_sum
.shared 1024
.block 256
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mov  r2, %ntid.x
	imad r3, r1, r2, r0         ; global index
	ld.param r4, [0]
	ld.param r5, [8]            ; n
	; load (0 beyond n)
	mov  r6, 0
	setp.lt.s32 p0, r3, r5
	@p0 shl  r7, r3, 2
	@p0 iadd r7, r4, r7
	@p0 ld.global r6, [r7]
	shl  r8, r0, 2
	st.shared [r8], r6
	; tree reduction: stride halves each step
	sar  r9, r2, 1
TREE:
	bar.sync
	setp.lt.s32 p1, r0, r9
	@p1 iadd r10, r0, r9
	@p1 shl  r10, r10, 2
	@p1 ld.shared r11, [r10]
	@p1 ld.shared r12, [r8]
	@p1 iadd r12, r12, r11
	@p1 st.shared [r8], r12
	sar  r9, r9, 1
	setp.gt.s32 p2, r9, 0
	@p2 bra TREE
	bar.sync
	; thread 0 combines block sums atomically
	setp.eq.s32 p3, r0, 0
	@p3 ld.shared r13, [0]
	@p3 ld.param r14, [4]
	@p3 atom.add.global r15, [r14], r13
	exit
`

func init() {
	registerExtra(&Benchmark{
		Name:     "Reduce",
		Category: "Extra/Primitives",
		Desc:     fmt.Sprintf("shared-memory tree reduction of %d ints", reduceN),
		Build:    buildReduce,
	})
}

func buildReduce(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(reduceSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(101))
	in := make([]uint32, reduceN)
	var want uint32
	for i := range in {
		in[i] = uint32(rng.Intn(1000))
		want += in[i]
	}
	din := g.Mem.MustAlloc(4 * reduceN)
	dout := g.Mem.MustAlloc(4)
	if err := g.Mem.WriteWords(din, in); err != nil {
		return nil, err
	}
	const bs = 256
	k := &sim.Kernel{
		Prog:  prog,
		GridX: (reduceN + bs - 1) / bs, GridY: 1,
		BlockX: bs, BlockY: 1,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(din, dout, reduceN),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.Load32(dout)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("sum = %d, want %d", got, want)
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * reduceN,
		OutBytes: 4,
	}, nil
}

// --- Transpose: shared-memory tiled matrix transpose ---

const (
	transW = 128
	transH = 64
)

// params: [0]=in (H x W), [4]=out (W x H), [8]=W, [12]=H.
// Tiles are 16x16 with a padded shared stride (17 words) to dodge bank
// conflicts, the canonical CUDA SDK trick.
const transposeSrc = `
.kernel transpose
.shared 1088
.block 16 16
	mov  r0, %tid.x
	mov  r1, %tid.y
	mov  r2, %ctaid.x
	mov  r3, %ctaid.y
	ld.param r4, [0]
	ld.param r5, [4]
	ld.param r6, [8]            ; W
	ld.param r7, [12]           ; H
	; read in[y][x] into tile[ty][tx]
	shl  r8, r2, 4
	iadd r8, r8, r0             ; x
	shl  r9, r3, 4
	iadd r9, r9, r1             ; y
	imad r10, r9, r6, r8
	shl  r10, r10, 2
	iadd r10, r4, r10
	ld.global r11, [r10]
	imul r12, r1, 17            ; padded stride
	iadd r12, r12, r0
	shl  r12, r12, 2
	st.shared [r12], r11
	bar.sync
	; write out[x'][y'] from tile[tx][ty]
	shl  r13, r3, 4
	iadd r13, r13, r0           ; x in the output = by*16 + tx
	shl  r14, r2, 4
	iadd r14, r14, r1           ; y in the output = bx*16 + ty
	imad r15, r14, r7, r13
	shl  r15, r15, 2
	iadd r15, r5, r15
	imul r16, r0, 17
	iadd r16, r16, r1
	shl  r16, r16, 2
	ld.shared r17, [r16]
	st.global [r15], r17
	exit
`

func init() {
	registerExtra(&Benchmark{
		Name:     "Transpose",
		Category: "Extra/Primitives",
		Desc:     fmt.Sprintf("%dx%d tiled matrix transpose (padded shared tiles)", transH, transW),
		Build:    buildTranspose,
	})
}

func buildTranspose(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(transposeSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(103))
	in := make([]uint32, transW*transH)
	for i := range in {
		in[i] = rng.Uint32()
	}
	din := g.Mem.MustAlloc(4 * len(in))
	dout := g.Mem.MustAlloc(4 * len(in))
	if err := g.Mem.WriteWords(din, in); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: transW / 16, GridY: transH / 16,
		BlockX: 16, BlockY: 16,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(din, dout, transW, transH),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(dout, transW*transH)
		if err != nil {
			return err
		}
		for y := 0; y < transH; y++ {
			for x := 0; x < transW; x++ {
				if got[x*transH+y] != in[y*transW+x] {
					return fmt.Errorf("out[%d][%d] mismatch", x, y)
				}
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * int64(len(in)),
		OutBytes: 4 * int64(len(in)),
	}, nil
}

// --- Histogram: shared-memory bins + global atomic merge ---

const (
	histN    = 8192
	histBins = 64
)

// params: [0]=data, [4]=bins (global), [8]=n.
const histogramSrc = `
.kernel histogram
.shared 256
.block 256
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	mov  r2, %ntid.x
	; zero the shared bins (64 bins, 256 threads: first 64 do it)
	setp.lt.s32 p0, r0, 64
	mov  r3, 0
	@p0 shl  r4, r0, 2
	@p0 st.shared [r4], r3
	bar.sync
	imad r5, r1, r2, r0         ; global index
	ld.param r6, [0]
	ld.param r7, [8]
	setp.lt.s32 p1, r5, r7
	@p1 shl  r8, r5, 2
	@p1 iadd r8, r6, r8
	@p1 ld.global r9, [r8]
	@p1 and  r9, r9, 63         ; bin = value & 63
	@p1 shl  r9, r9, 2
	mov  r10, 1
	@p1 atom.add.shared r11, [r9], r10
	bar.sync
	; first 64 threads merge shared bins into the global histogram
	@p0 shl  r12, r0, 2
	@p0 ld.shared r13, [r12]
	@p0 ld.param r14, [4]
	@p0 iadd r14, r14, r12
	@p0 atom.add.global r15, [r14], r13
	exit
`

func init() {
	registerExtra(&Benchmark{
		Name:     "Histogram",
		Category: "Extra/Primitives",
		Desc:     fmt.Sprintf("%d-bin histogram of %d values (shared atomics + merge)", histBins, histN),
		Build:    buildHistogram,
	})
}

func buildHistogram(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(histogramSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(107))
	data := make([]uint32, histN)
	want := make([]uint32, histBins)
	for i := range data {
		data[i] = rng.Uint32()
		want[data[i]&63]++
	}
	ddata := g.Mem.MustAlloc(4 * histN)
	dbins := g.Mem.MustAlloc(4 * histBins)
	if err := g.Mem.WriteWords(ddata, data); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: histN / 256, GridY: 1,
		BlockX: 256, BlockY: 1,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(ddata, dbins, histN),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(dbins, histBins)
		if err != nil {
			return err
		}
		for b := range got {
			if got[b] != want[b] {
				return fmt.Errorf("bin %d = %d, want %d", b, got[b], want[b])
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * histN,
		OutBytes: 4 * histBins,
	}, nil
}
