// Package kernels contains the 11 workloads of the paper's Table 4,
// re-implemented for the simulator: each benchmark is one or more
// kernels hand-written in the PTX-like assembly of internal/asm plus a
// Go host driver that stages device memory, sequences launches, and
// validates results against a host reference implementation.
//
// Inputs are scaled down from the paper's so the whole suite simulates
// in seconds; each workload keeps its algorithmic structure — and hence
// its divergence profile and instruction mix, the properties every
// Warped-DMR result depends on.
package kernels

import (
	"context"
	"fmt"
	"sort"

	"warped/internal/sim"
	"warped/internal/stats"
)

// Step is one kernel launch within a benchmark run. Between launches
// the Host callback (if any) runs, standing in for host-side work such
// as the small bucket-offset scan in RadixSort.
type Step struct {
	Kernel *sim.Kernel
	Host   func(g *sim.GPU) error // optional host-side work after the launch
}

// Run is one prepared benchmark execution.
type Run struct {
	Steps    []Step
	Check    func(g *sim.GPU) error // validates device results
	InBytes  int64                  // host->device bytes (Fig. 10 transfer model)
	OutBytes int64                  // device->host bytes
}

// Benchmark is one Table 4 workload.
type Benchmark struct {
	Name     string
	Category string
	Desc     string
	// Build stages the benchmark on the GPU and returns its Run.
	Build func(g *sim.GPU) (*Run, error)
	// MemBytes overrides the device global-memory size to provision
	// (0 = the suite default; see GPUMemBytes).
	MemBytes int
}

// GPUMemBytes returns the device global-memory size to provision for
// the benchmark. The Table 4 inputs are scaled to fit comfortably in
// 2 MB, and campaign runners create one fresh GPU per trial — zeroing
// the simulator's 64 MB default each time would dominate campaign wall
// time, so runners provision only what the workload can touch.
func (b *Benchmark) GPUMemBytes() int {
	if b.MemBytes > 0 {
		return b.MemBytes
	}
	return 2 << 20
}

// Execute builds and runs the benchmark on g, merging statistics across
// launches (cycles accumulate; everything else sums/merges), then
// validates the results.
func Execute(g *sim.GPU, b *Benchmark, opts sim.LaunchOpts) (*stats.Stats, error) {
	return ExecuteContext(context.Background(), g, b, opts)
}

// ExecuteContext is Execute with cooperative cancellation: ctx is
// plumbed into every kernel launch, so a long multi-launch workload
// aborts promptly when it fires.
func ExecuteContext(ctx context.Context, g *sim.GPU, b *Benchmark, opts sim.LaunchOpts) (*stats.Stats, error) {
	run, err := b.Build(g)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", b.Name, err)
	}
	total := &stats.Stats{}
	for i, step := range run.Steps {
		st, err := g.LaunchContext(ctx, step.Kernel, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: launch %d: %w", b.Name, i, err)
		}
		total.MergeSerial(st)
		if step.Host != nil {
			if err := step.Host(g); err != nil {
				return nil, fmt.Errorf("%s: host step %d: %w", b.Name, i, err)
			}
		}
	}
	if run.Check != nil {
		if err := run.Check(g); err != nil {
			return nil, fmt.Errorf("%s: validation: %w", b.Name, err)
		}
	}
	return total, nil
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// paperOrder is the benchmark order used in the paper's Figure 1.
var paperOrder = []string{
	"BFS", "Nqueen", "MUM", "SCAN", "BitonicSort", "Laplace",
	"MatrixMul", "RadixSort", "SHA", "Libor", "CUFFT",
}

// All returns every registered benchmark in the paper's figure order.
func All() []*Benchmark {
	rank := make(map[string]int, len(paperOrder))
	for i, n := range paperOrder {
		rank[n] = i
	}
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].Name]
		rj, jok := rank[out[j].Name]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return out[i].Name < out[j].Name
		}
	})
	return out
}

// ByName returns the benchmark with the given name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown benchmark %q", name)
}

// Names returns all benchmark names in paper order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}
