package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// Libor: Monte-Carlo LIBOR swaption pricing (the paper's financial
// workload). Each thread evolves one forward-rate path with lognormal
// shocks drawn from a pre-generated normal table, accumulating the
// discounted positive payoff. The per-step exp and reciprocal land on
// the SFUs, giving the SP/SFU interleave that makes inter-warp DMR
// cheap for this benchmark.
const (
	liborBlocks  = 16 // paper uses gridDim 64; scaled down
	liborThreads = 64 // paper blockDim 64
	liborPaths   = liborBlocks * liborThreads
	liborSteps   = 40
)

const (
	liborL0    = 0.05 // initial forward rate
	liborSigma = 0.2  // volatility
	liborDelta = 0.25 // accrual period (years)
	liborK     = 0.05 // strike
	log2e      = 1.4426950408889634
)

// params: [0]=normals base (liborSteps words/path), [4]=payoff out base.
const liborSrc = `
.kernel libor
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; path id
	ld.param r3, [0]
	ld.param r4, [4]
	imul r5, r2, 160            ; path * steps * 4 bytes
	iadd r5, r3, r5             ; normals cursor
	mov  r10, 0.05              ; L
	mov  r11, 1.0               ; discount
	mov  r12, 0.0               ; payoff accumulator
	mov  r13, 0                 ; step
	; drift = -0.5 * sigma^2 * delta
	mov  r14, -0.002            ; -0.5 * 0.2^2 * 0.25
	mov  r15, 0.1               ; sigma * sqrt(delta) = 0.2 * 0.5
STEP:
	ld.global r16, [r5]         ; z
	iadd r5, r5, 4
	; L *= exp(sigma*sqrt(dt)*z + drift) = 2^((...) * log2(e))
	fmul r17, r15, r16
	fadd r17, r17, r14
	fmul r17, r17, 1.4426950408889634
	fex2 r17, r17
	fmul r10, r10, r17
	; discount *= 1 / (1 + delta*L)
	fmul r18, r10, 0.25
	fadd r18, r18, 1.0
	frcp r18, r18
	fmul r11, r11, r18
	; payoff += max(L - K, 0) * discount
	fsub r19, r10, 0.05
	fmax r19, r19, 0.0
	ffma r12, r19, r11, r12
	iadd r13, r13, 1
	setp.lt.s32 p0, r13, 40
	@p0 bra STEP
	shl  r20, r2, 2
	iadd r20, r4, r20
	st.global [r20], r12
	exit
`

func init() {
	register(&Benchmark{
		Name:     "Libor",
		Category: "Financial",
		Desc:     fmt.Sprintf("Monte-Carlo LIBOR pricing, %d paths x %d steps", liborPaths, liborSteps),
		Build:    buildLibor,
	})
}

// liborHostPath replicates the kernel arithmetic in float32 with the
// same operation order, so results match bit-for-bit up to the SFU
// approximations (which use float64 internally on both sides).
func liborHostPath(normals []float32) float32 {
	l := float32(liborL0)
	disc := float32(1.0)
	payoff := float32(0.0)
	drift := float32(-0.002)
	vol := float32(0.1)
	for _, z := range normals {
		arg := vol*z + drift
		arg = arg * float32(log2e)
		l = l * float32(math.Exp2(float64(arg)))
		den := l*float32(liborDelta) + 1.0
		disc = disc * float32(1/float64(den))
		ex := l - float32(liborK)
		if ex < 0 {
			ex = 0
		}
		payoff = float32(float64(ex)*float64(disc) + float64(payoff))
	}
	return payoff
}

func buildLibor(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(liborSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(43))
	normals := make([]float32, liborPaths*liborSteps)
	for i := range normals {
		normals[i] = float32(rng.NormFloat64())
	}
	dn := g.Mem.MustAlloc(4 * len(normals))
	dp := g.Mem.MustAlloc(4 * liborPaths)
	if err := g.Mem.WriteFloats(dn, normals); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: liborBlocks, GridY: 1,
		BlockX: liborThreads, BlockY: 1,
		Params: mem.NewParams(dn, dp),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadFloats(dp, liborPaths)
		if err != nil {
			return err
		}
		for p := 0; p < liborPaths; p++ {
			want := liborHostPath(normals[p*liborSteps : (p+1)*liborSteps])
			if d := math.Abs(float64(got[p] - want)); d > 1e-4*(1+math.Abs(float64(want))) {
				return fmt.Errorf("path %d payoff %g, want %g", p, got[p], want)
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * int64(len(normals)),
		OutBytes: 4 * liborPaths,
	}, nil
}
