package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// CUFFT: batched 256-point radix-2 complex FFTs (decimation in time,
// input pre-bit-reversed by the host, shared-memory butterflies,
// SFU-computed twiddles). Like the paper's CUFFT runs — which launch
// odd-sized blocks (Table 4: blockDim 25) — the block size here (100
// threads for 128 butterflies) is not a multiple of the warp width, so
// part of every stage executes in highly-but-not-fully utilized warps.
// Intra-warp DMR covers those poorly (few idle verifier lanes), which
// is exactly why CUFFT has the lowest error coverage in Fig. 9a.
const (
	fftN       = 256
	fftBlocks  = 32
	fftThreads = 100
	fftBflies  = fftN / 2
)

// fftSrc is generated: 3 guarded load slots, the stage loop with 2
// guarded butterflies per thread, 3 guarded store slots.
// params: [0]=data base (per block: re[256] then im[256]).
var fftSrc = buildFFTSrc()

func buildFFTSrc() string {
	var b strings.Builder
	b.WriteString(`
.kernel fft256
.shared 2048
.block 100
	mov  r0, %tid.x
	mov  r2, %ctaid.x
	ld.param r3, [0]
	shl  r4, r2, 11             ; ctaid * 256 * 2 * 4 bytes
	iadd r3, r3, r4             ; this block's data
`)
	// Load N points with ceil(N/threads) strided slots per thread.
	for slot := 0; slot*fftThreads < fftN; slot++ {
		fmt.Fprintf(&b, `	iadd r10, r0, %d
	setp.lt.s32 p0, r10, %d
	@p0 shl  r11, r10, 2
	@p0 iadd r12, r3, r11
	@p0 ld.global r13, [r12]
	@p0 st.shared [r11], r13
	@p0 ld.global r13, [r12+1024]
	@p0 st.shared [r11+1024], r13
`, slot*fftThreads, fftN)
	}
	b.WriteString(`	mov  r5, 1                  ; s (stage)
	mov  r6, 2                  ; m = 1 << s
STAGE:
	bar.sync
	sar  r7, r6, 1              ; half = m/2
`)
	for slot := 0; slot*fftThreads < fftBflies; slot++ {
		fmt.Fprintf(&b, `	iadd r10, r0, %d            ; butterfly index b
	setp.lt.s32 p0, r10, %d
	@p0 isub r11, r5, 1
	@p0 shr  r12, r10, r11      ; group = b >> (s-1)
	@p0 shl  r12, r12, r5       ; group * m
	@p0 isub r13, r7, 1
	@p0 and  r13, r10, r13      ; k = b & (half-1)
	@p0 iadd r14, r12, r13      ; i
	@p0 iadd r15, r14, r7       ; j = i + half
	; twiddle = exp(-2*pi*i*k/m)
	@p0 i2f  r16, r13
	@p0 i2f  r17, r6
	@p0 frcp r17, r17
	@p0 fmul r16, r16, r17
	@p0 fmul r16, r16, -6.283185307179586
	@p0 fcos r18, r16           ; wr
	@p0 fsin r19, r16           ; wi
	@p0 shl  r20, r14, 2
	@p0 shl  r21, r15, 2
	@p0 ld.shared r22, [r20]        ; ar
	@p0 ld.shared r23, [r20+1024]   ; ai
	@p0 ld.shared r24, [r21]        ; br
	@p0 ld.shared r25, [r21+1024]   ; bi
	; t = w * b
	@p0 fmul r26, r18, r24
	@p0 fmul r27, r19, r25
	@p0 fsub r26, r26, r27      ; tr
	@p0 fmul r27, r18, r25
	@p0 fmul r28, r19, r24
	@p0 fadd r27, r27, r28      ; ti
	@p0 fsub r28, r22, r26
	@p0 st.shared [r21], r28        ; x[j].re = ar - tr
	@p0 fsub r28, r23, r27
	@p0 st.shared [r21+1024], r28   ; x[j].im = ai - ti
	@p0 fadd r28, r22, r26
	@p0 st.shared [r20], r28        ; x[i].re = ar + tr
	@p0 fadd r28, r23, r27
	@p0 st.shared [r20+1024], r28   ; x[i].im = ai + ti
`, slot*fftThreads, fftBflies)
	}
	fmt.Fprintf(&b, `	iadd r5, r5, 1
	shl  r6, r6, 1
	setp.le.s32 p1, r6, %d
	@p1 bra STAGE
	bar.sync
`, fftN)
	for slot := 0; slot*fftThreads < fftN; slot++ {
		fmt.Fprintf(&b, `	iadd r10, r0, %d
	setp.lt.s32 p0, r10, %d
	@p0 shl  r11, r10, 2
	@p0 iadd r12, r3, r11
	@p0 ld.shared r13, [r11]
	@p0 st.global [r12], r13
	@p0 ld.shared r13, [r11+1024]
	@p0 st.global [r12+1024], r13
`, slot*fftThreads, fftN)
	}
	b.WriteString("	exit\n")
	return b.String()
}

func init() {
	register(&Benchmark{
		Name:     "CUFFT",
		Category: "Scientific",
		Desc:     fmt.Sprintf("%d batched %d-point radix-2 complex FFTs", fftBlocks, fftN),
		Build:    buildFFT,
	})
}

// bitrev reverses the low bits-th bits of x.
func bitrev(x, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

func buildFFT(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(fftSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(87))
	re := make([][]float32, fftBlocks)
	im := make([][]float32, fftBlocks)
	for bl := range re {
		re[bl] = make([]float32, fftN)
		im[bl] = make([]float32, fftN)
		for i := range re[bl] {
			re[bl][i] = rng.Float32()*2 - 1
			im[bl][i] = rng.Float32()*2 - 1
		}
	}
	data := g.Mem.MustAlloc(fftBlocks * fftN * 2 * 4)
	bits := 0
	for 1<<bits < fftN {
		bits++
	}
	// Device layout per block: re[256] (bit-reversed order) then im[256].
	for bl := 0; bl < fftBlocks; bl++ {
		rev := make([]float32, 2*fftN)
		for i := 0; i < fftN; i++ {
			rev[bitrev(i, bits)] = re[bl][i]
			rev[fftN+bitrev(i, bits)] = im[bl][i]
		}
		if err := g.Mem.WriteFloats(data+uint32(bl*2*fftN*4), rev); err != nil {
			return nil, err
		}
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: fftBlocks, GridY: 1,
		BlockX: fftThreads, BlockY: 1,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(data),
	}
	check := func(g *sim.GPU) error {
		for bl := 0; bl < fftBlocks; bl++ {
			got, err := g.Mem.ReadFloats(data+uint32(bl*2*fftN*4), 2*fftN)
			if err != nil {
				return err
			}
			for kk := 0; kk < fftN; kk++ {
				var wr, wi float64
				for n := 0; n < fftN; n++ {
					ang := -2 * math.Pi * float64(kk) * float64(n) / fftN
					c, s := math.Cos(ang), math.Sin(ang)
					xr, xi := float64(re[bl][n]), float64(im[bl][n])
					wr += xr*c - xi*s
					wi += xr*s + xi*c
				}
				gr, gi := float64(got[kk]), float64(got[fftN+kk])
				if math.Abs(gr-wr) > 0.05 || math.Abs(gi-wi) > 0.05 {
					return fmt.Errorf("block %d bin %d = (%g,%g), want (%g,%g)",
						bl, kk, gr, gi, wr, wi)
				}
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  fftBlocks * fftN * 2 * 4,
		OutBytes: fftBlocks * fftN * 2 * 4,
	}, nil
}
