package kernels

import (
	"fmt"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// SCAN: work-efficient exclusive prefix sum (Blelloch up-sweep /
// down-sweep), the CUDA SDK "Scan Array" kernel shape. Each block scans
// 512 elements in shared memory; block sums are scanned by a recursive
// second launch and added back by a third kernel. The tree phases halve
// the active thread count every step, producing the long tail of
// low-occupancy issue slots the paper's Fig. 1 shows for SCAN — ideal
// intra-warp DMR territory.
const (
	scanBlockElems = 512
	scanBlocks     = 32
	scanN          = scanBlockElems * scanBlocks
)

// scanBlockSrc scans n=param[12] elements per block in shared memory.
// params: [0]=in, [4]=out, [8]=blockSums (0 = skip), [12]=n (power of 2).
const scanBlockSrc = `
.kernel scan_block
.shared 2048
.block 256
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	ld.param r2, [0]
	ld.param r3, [4]
	ld.param r4, [8]
	ld.param r5, [12]           ; n
	; load sh[2t] and sh[2t+1] from in[ctaid*n + 2t ...]
	imul r7, r1, r5
	shl  r8, r0, 1              ; 2t
	iadd r9, r7, r8
	shl  r9, r9, 2
	iadd r9, r2, r9
	ld.global r10, [r9]
	ld.global r11, [r9+4]
	shl  r12, r8, 2
	st.shared [r12], r10
	st.shared [r12+4], r11
	; up-sweep
	sar  r13, r5, 1             ; d = n/2
	mov  r14, 1                 ; offset
UP:
	bar.sync
	setp.lt.s32 p0, r0, r13
	@p0 iadd r15, r8, 1
	@p0 imul r15, r15, r14
	@p0 isub r15, r15, 1        ; ai
	@p0 iadd r16, r8, 2
	@p0 imul r16, r16, r14
	@p0 isub r16, r16, 1        ; bi
	@p0 shl  r15, r15, 2
	@p0 shl  r16, r16, 2
	@p0 ld.shared r17, [r15]
	@p0 ld.shared r18, [r16]
	@p0 iadd r18, r18, r17
	@p0 st.shared [r16], r18
	sar  r13, r13, 1
	shl  r14, r14, 1
	setp.gt.s32 p1, r13, 0
	@p1 bra UP
	bar.sync
	; thread 0: export total, clear last element
	setp.eq.s32 p0, r0, 0
	isub r15, r5, 1
	shl  r15, r15, 2
	setp.ne.s32 p2, r4, 0
	pand p2, p2, p0
	@p2 ld.shared r16, [r15]
	@p2 shl  r17, r1, 2
	@p2 iadd r17, r4, r17
	@p2 st.global [r17], r16
	mov  r18, 0
	@p0 st.shared [r15], r18
	; down-sweep
	mov  r13, 1
DOWN:
	sar  r14, r14, 1
	bar.sync
	setp.lt.s32 p0, r0, r13
	@p0 iadd r15, r8, 1
	@p0 imul r15, r15, r14
	@p0 isub r15, r15, 1
	@p0 iadd r16, r8, 2
	@p0 imul r16, r16, r14
	@p0 isub r16, r16, 1
	@p0 shl  r15, r15, 2
	@p0 shl  r16, r16, 2
	@p0 ld.shared r17, [r15]    ; t = sh[ai]
	@p0 ld.shared r18, [r16]
	@p0 st.shared [r15], r18    ; sh[ai] = sh[bi]
	@p0 iadd r18, r18, r17
	@p0 st.shared [r16], r18    ; sh[bi] += t
	shl  r13, r13, 1
	setp.lt.s32 p1, r13, r5
	@p1 bra DOWN
	bar.sync
	ld.shared r10, [r12]
	ld.shared r11, [r12+4]
	iadd r19, r7, r8
	shl  r19, r19, 2
	iadd r19, r3, r19
	st.global [r19], r10
	st.global [r19+4], r11
	exit
`

// scanAddSrc adds blockSums[ctaid] to each of the block's n outputs.
// params: [0]=out, [4]=sums, [8]=n.
const scanAddSrc = `
.kernel scan_add
	mov  r0, %tid.x
	mov  r1, %ctaid.x
	ld.param r2, [0]
	ld.param r3, [4]
	ld.param r4, [8]
	shl  r5, r1, 2
	iadd r5, r3, r5
	ld.global r6, [r5]
	imul r7, r1, r4
	shl  r8, r0, 1
	iadd r7, r7, r8
	shl  r7, r7, 2
	iadd r7, r2, r7
	ld.global r9, [r7]
	iadd r9, r9, r6
	st.global [r7], r9
	ld.global r9, [r7+4]
	iadd r9, r9, r6
	st.global [r7+4], r9
	exit
`

func init() {
	register(&Benchmark{
		Name:     "SCAN",
		Category: "Linear Algebra/Primitives",
		Desc:     fmt.Sprintf("exclusive prefix sum of %d ints (Blelloch tree scan)", scanN),
		Build:    buildScan,
	})
}

func buildScan(g *sim.GPU) (*Run, error) {
	blockProg, err := asm.Assemble(scanBlockSrc)
	if err != nil {
		return nil, err
	}
	addProg, err := asm.Assemble(scanAddSrc)
	if err != nil {
		return nil, err
	}
	in := make([]uint32, scanN)
	s := uint32(12345)
	for i := range in {
		s = s*1664525 + 1013904223
		in[i] = s % 1000
	}
	din := g.Mem.MustAlloc(4 * scanN)
	dout := g.Mem.MustAlloc(4 * scanN)
	dsums := g.Mem.MustAlloc(4 * scanBlocks)
	if err := g.Mem.WriteWords(din, in); err != nil {
		return nil, err
	}
	steps := []Step{
		{Kernel: &sim.Kernel{ // per-block scan
			Prog:  blockProg,
			GridX: scanBlocks, GridY: 1,
			BlockX: scanBlockElems / 2, BlockY: 1,
			SharedBytes: blockProg.SharedBytes,
			Params:      mem.NewParams(din, dout, dsums, scanBlockElems),
		}},
		{Kernel: &sim.Kernel{ // scan the block sums in place (single block)
			Prog:  blockProg,
			GridX: 1, GridY: 1,
			BlockX: scanBlocks / 2, BlockY: 1,
			// Deliberately less than the program's declared worst case:
			// the 16-thread sums pass touches only the first 128 bytes.
			SharedBytes: 4 * scanBlocks,
			Params:      mem.NewParams(dsums, dsums, 0, scanBlocks),
		}},
		{Kernel: &sim.Kernel{ // add scanned sums back
			Prog:  addProg,
			GridX: scanBlocks, GridY: 1,
			BlockX: scanBlockElems / 2, BlockY: 1,
			Params: mem.NewParams(dout, dsums, scanBlockElems),
		}},
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(dout, scanN)
		if err != nil {
			return err
		}
		var acc uint32
		for i := range got {
			if got[i] != acc {
				return fmt.Errorf("scan[%d] = %d, want %d", i, got[i], acc)
			}
			acc += in[i]
		}
		return nil
	}
	return &Run{
		Steps:    steps,
		Check:    check,
		InBytes:  4 * scanN,
		OutBytes: 4 * scanN,
	}, nil
}
