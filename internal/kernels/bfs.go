package kernels

import (
	"fmt"
	"math/rand"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// BFS: level-synchronous breadth-first search over a CSR graph, one
// thread per vertex per level (the Parboil/Harish-Narayanan kernel
// shape). Only frontier vertices do edge work, so most lanes idle most
// of the time — the paper reports >40% of BFS instructions executing
// with a single active thread, making BFS the showcase for intra-warp
// DMR (near-100% coverage at near-zero overhead).
const (
	bfsNodes  = 2000 // not a multiple of the block size: tail warps
	bfsSource = 0
	bfsUnseen = 0xFFFFFFFF
)

// params: [0]=rowPtr, [4]=colIdx, [8]=levels, [12]=changedFlag,
// [16]=curLevel, [20]=numNodes.
const bfsSrc = `
.kernel bfs_level
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; vertex v
	ld.param r3, [20]           ; numNodes
	setp.ge.s32 p0, r2, r3
	@p0 exit
	ld.param r4, [8]            ; levels
	shl  r5, r2, 2
	iadd r5, r4, r5
	ld.global r6, [r5]          ; levels[v]
	ld.param r7, [16]           ; curLevel
	setp.ne.u32 p0, r6, r7
	@p0 exit                    ; not on the frontier
	; frontier vertex: relax all neighbours
	ld.param r8, [0]            ; rowPtr
	shl  r9, r2, 2
	iadd r9, r8, r9
	ld.global r10, [r9]         ; e = rowPtr[v]
	ld.global r11, [r9+4]       ; end = rowPtr[v+1]
	ld.param r12, [4]           ; colIdx
	iadd r13, r7, 1             ; next level
EDGE:
	setp.ge.s32 p1, r10, r11
	@p1 bra DONE
	shl  r14, r10, 2
	iadd r14, r12, r14
	ld.global r15, [r14]        ; neighbour c
	shl  r16, r15, 2
	iadd r16, r4, r16
	ld.global r17, [r16]        ; levels[c]
	setp.eq.u32 p2, r17, 0xFFFFFFFF
	@p2 st.global [r16], r13    ; levels[c] = cur+1
	@p2 ld.param r18, [12]
	@p2 st.global [r18], r13    ; changed = nonzero
	iadd r10, r10, 1
	bra EDGE
DONE:
	exit
`

type bfsGraph struct {
	rowPtr []uint32
	colIdx []uint32
}

// buildBFSGraph builds a small-world graph: a ring lattice (i±1, i±2)
// plus random chords. The lattice keeps the diameter around 8-10
// levels so the frontier stays narrow for several launches.
func buildBFSGraph(n int, rng *rand.Rand) *bfsGraph {
	adj := make([][]uint32, n)
	add := func(a, b int) {
		adj[a] = append(adj[a], uint32(b))
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n)
		add(i, (i-1+n)%n)
		add(i, (i+2)%n)
		add(i, (i-2+n)%n)
	}
	for i := 0; i < n/8; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			add(a, b)
			add(b, a)
		}
	}
	g := &bfsGraph{rowPtr: make([]uint32, n+1)}
	for i := 0; i < n; i++ {
		g.rowPtr[i+1] = g.rowPtr[i] + uint32(len(adj[i]))
		g.colIdx = append(g.colIdx, adj[i]...)
	}
	return g
}

// hostBFS returns per-vertex levels (bfsUnseen if unreachable).
func hostBFS(g *bfsGraph, src int) []uint32 {
	n := len(g.rowPtr) - 1
	lv := make([]uint32, n)
	for i := range lv {
		lv[i] = bfsUnseen
	}
	lv[src] = 0
	frontier := []int{src}
	for depth := uint32(1); len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, c := range g.colIdx[g.rowPtr[v]:g.rowPtr[v+1]] {
				if lv[c] == bfsUnseen {
					lv[c] = depth
					next = append(next, int(c))
				}
			}
		}
		frontier = next
	}
	return lv
}

func init() {
	register(&Benchmark{
		Name:     "BFS",
		Category: "Linear Algebra/Primitives",
		Desc:     fmt.Sprintf("level-synchronous BFS over a %d-vertex small-world graph", bfsNodes),
		Build:    buildBFS,
	})
}

func buildBFS(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(bfsSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(3))
	graph := buildBFSGraph(bfsNodes, rng)
	want := hostBFS(graph, bfsSource)
	levels := int(0)
	for _, l := range want {
		if l != bfsUnseen && int(l) > levels {
			levels = int(l)
		}
	}

	drow := g.Mem.MustAlloc(4 * len(graph.rowPtr))
	dcol := g.Mem.MustAlloc(4 * len(graph.colIdx))
	dlev := g.Mem.MustAlloc(4 * bfsNodes)
	dchg := g.Mem.MustAlloc(4)
	if err := g.Mem.WriteWords(drow, graph.rowPtr); err != nil {
		return nil, err
	}
	if err := g.Mem.WriteWords(dcol, graph.colIdx); err != nil {
		return nil, err
	}
	init := make([]uint32, bfsNodes)
	for i := range init {
		init[i] = bfsUnseen
	}
	init[bfsSource] = 0
	if err := g.Mem.WriteWords(dlev, init); err != nil {
		return nil, err
	}

	// The host knows the level count up front (it ran the reference BFS),
	// so the launch sequence is fixed: one kernel per frontier depth.
	var steps []Step
	for l := 0; l <= levels; l++ {
		steps = append(steps, Step{Kernel: &sim.Kernel{
			Prog:  prog,
			GridX: (bfsNodes + 255) / 256, GridY: 1,
			BlockX: 256, BlockY: 1,
			Params: mem.NewParams(drow, dcol, dlev, dchg, uint32(l), bfsNodes),
		}})
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(dlev, bfsNodes)
		if err != nil {
			return err
		}
		for v := range got {
			if got[v] != want[v] {
				return fmt.Errorf("level[%d] = %d, want %d", v, got[v], want[v])
			}
		}
		return nil
	}
	return &Run{
		Steps:    steps,
		Check:    check,
		InBytes:  4 * int64(len(graph.rowPtr)+len(graph.colIdx)+bfsNodes),
		OutBytes: 4 * bfsNodes,
	}, nil
}
