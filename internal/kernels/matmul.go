package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// MatrixMul: tiled dense C = A x B with 16x16 shared-memory tiles,
// the CUDA SDK kernel shape. Paper Table 4 uses gridDim 8x5 with
// 16x16 blocks; we keep that grid (C is 128 wide x 80 tall) with K=32.
// Every warp is fully utilized, and the inner product is a long burst
// of SP instructions — this is the workload with the worst inter-warp
// DMR overhead in Fig. 9b.
const (
	mmM = 80  // rows of A and C
	mmN = 128 // cols of B and C
	mmK = 32  // inner dimension
)

// matmulSrc is generated: like nvcc, the 16-step inner product is fully
// unrolled with immediate shared-memory offsets, so the steady-state
// instruction mix is ~2 shared loads per FFMA (close to the real SDK
// kernel's SASS) rather than being dominated by address arithmetic.
var matmulSrc = buildMatmulSrc()

func buildMatmulSrc() string {
	var sb strings.Builder
	sb.WriteString(matmulProlog)
	for k := 0; k < 16; k++ {
		fmt.Fprintf(&sb, "\tld.shared r19, [r17+%d]\n", 4*k)
		fmt.Fprintf(&sb, "\tld.shared r20, [r18+%d]\n", 1024+64*k)
		sb.WriteString("\tffma r11, r19, r20, r11\n")
	}
	sb.WriteString(matmulEpilog)
	return sb.String()
}

const matmulProlog = `
.kernel matmul
.shared 2048
.block 16 16
	mov r0, %tid.x
	mov r1, %tid.y
	mov r2, %ctaid.x
	mov r3, %ctaid.y
	ld.param r4, [0]            ; K
	ld.param r5, [4]            ; N
	ld.param r6, [8]            ; A
	ld.param r7, [12]           ; B
	ld.param r8, [16]           ; C
	shl  r9, r3, 4
	iadd r9, r9, r1             ; row = by*16 + ty
	shl  r10, r2, 4
	iadd r10, r10, r0           ; col = bx*16 + tx
	mov  r11, 0.0               ; acc
	mov  r12, 0                 ; tile index t
TILE:
	; As[ty][tx] = A[row*K + t*16 + tx]
	imul r13, r9, r4
	shl  r14, r12, 4
	iadd r13, r13, r14
	iadd r13, r13, r0
	shl  r13, r13, 2
	iadd r13, r6, r13
	ld.global r15, [r13]
	shl  r16, r1, 4
	iadd r16, r16, r0
	shl  r16, r16, 2
	st.shared [r16], r15
	; Bs[ty][tx] = B[(t*16+ty)*N + col]
	shl  r13, r12, 4
	iadd r13, r13, r1
	imul r13, r13, r5
	iadd r13, r13, r10
	shl  r13, r13, 2
	iadd r13, r7, r13
	ld.global r15, [r13]
	st.shared [r16+1024], r15
	bar.sync
	shl  r17, r1, 6             ; As row base = ty*64 bytes
	shl  r18, r0, 2             ; Bs column base = tx*4 bytes
`

const matmulEpilog = `	bar.sync
	iadd r12, r12, 1
	sar  r21, r4, 4             ; K/16 tiles
	setp.lt.s32 p0, r12, r21
	@p0 bra TILE
	; C[row*N + col] = acc
	imul r13, r9, r5
	iadd r13, r13, r10
	shl  r13, r13, 2
	iadd r13, r8, r13
	st.global [r13], r11
	exit
`

func init() {
	register(&Benchmark{
		Name:     "MatrixMul",
		Category: "Linear Algebra/Primitives",
		Desc:     fmt.Sprintf("tiled %dx%dx%d single-precision matrix multiply", mmM, mmK, mmN),
		Build:    buildMatmul,
	})
}

func buildMatmul(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(matmulSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	a := make([]float32, mmM*mmK)
	b := make([]float32, mmK*mmN)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	for i := range b {
		b[i] = rng.Float32()*2 - 1
	}
	da := g.Mem.MustAlloc(4 * len(a))
	db := g.Mem.MustAlloc(4 * len(b))
	dc := g.Mem.MustAlloc(4 * mmM * mmN)
	if err := g.Mem.WriteFloats(da, a); err != nil {
		return nil, err
	}
	if err := g.Mem.WriteFloats(db, b); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: mmN / 16, GridY: mmM / 16,
		BlockX: 16, BlockY: 16,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(mmK, mmN, da, db, dc),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadFloats(dc, mmM*mmN)
		if err != nil {
			return err
		}
		for r := 0; r < mmM; r++ {
			for c := 0; c < mmN; c++ {
				var want float64
				for i := 0; i < mmK; i++ {
					want += float64(a[r*mmK+i]) * float64(b[i*mmN+c])
				}
				gv := float64(got[r*mmN+c])
				if math.Abs(gv-want) > 1e-3*(1+math.Abs(want)) {
					return fmt.Errorf("C[%d][%d] = %g, want %g", r, c, gv, want)
				}
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * int64(len(a)+len(b)),
		OutBytes: 4 * mmM * mmN,
	}, nil
}
