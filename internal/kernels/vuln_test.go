package kernels

import (
	"testing"

	"warped/internal/asm"
	"warped/internal/verify"
)

// TestVulnAnalysisRunsOnAllKernels pins that every bundled kernel is
// analyzable by the fault-vulnerability pass: each verifies clean (a
// precondition the analysis enforces) and yields a classification for
// every PC, with no eligible PC left unknown in reachable code.
func TestVulnAnalysisRunsOnAllKernels(t *testing.T) {
	for _, src := range Sources() {
		src := src
		t.Run(src.Name, func(t *testing.T) {
			prog, err := asm.Assemble(src.Src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			r, err := verify.AnalyzeVuln(prog)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if len(r.PCs) != len(prog.Instrs) {
				t.Fatalf("classified %d of %d PCs", len(r.PCs), len(prog.Instrs))
			}
			t.Logf("%s: %d eligible PCs: %d ACE, %d unACE, %d unknown; unACE PCs %v",
				src.Name, r.EligiblePCs, r.ACE, r.UnACE, r.Unknown, r.UnACEPCs())
		})
	}
}
