package kernels

import (
	"fmt"
	"math/rand"
	"strings"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// SHA: the ERCBench SHA-1 workload in "direct mode" — every thread
// compresses its own independent 64-byte block and emits a 5-word
// digest. Pure integer SP work with no divergence: all warps are fully
// utilized, so SHA is covered almost entirely by inter-warp DMR and
// (with its long SP bursts) stresses the ReplayQ.
const (
	shaBlocks  = 8  // thread blocks
	shaThreads = 64 // threads per block; one message block each
	shaMsgs    = shaBlocks * shaThreads
)

// shaSrc is generated: the 80 rounds are four 20-iteration loops with
// phase-specific boolean functions and constants, and a 16-word rolling
// message schedule kept in a per-thread shared-memory window.
//
// params: [0]=msg base (16 words/thread), [4]=digest base (5
// words/thread).
var shaSrc = buildShaSrc()

func buildShaSrc() string {
	var b strings.Builder
	b.WriteString(`
.kernel sha1
.shared 4096
.block 64
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; gtid
	ld.param r3, [0]
	ld.param r5, [4]
	shl  r6, r2, 6              ; gtid*64 bytes
	iadd r3, r3, r6             ; msg base for this thread
	mov  r4, %tid.x
	shl  r4, r4, 6              ; W window base in shared memory
	; h0..h4
	mov  r10, 0x67452301
	mov  r11, 0xEFCDAB89
	mov  r12, 0x98BADCFE
	mov  r13, 0x10325476
	mov  r14, 0xC3D2E1F0
	mov  r7, r10                ; a..e working copies
	mov  r8, r11
	mov  r9, r12
	mov  r15, r13
	mov  r16, r14
	mov  r17, 0                 ; t
`)
	phase := []struct {
		label string
		k     uint32
		f     string // asm computing f(b,c,d) into r20, using r21 as temp
	}{
		{"P1", 0x5A827999, `	xor  r20, r9, r15
	and  r20, r20, r8
	xor  r20, r20, r15          ; ch = d ^ (b & (c^d))
`},
		{"P2", 0x6ED9EBA1, `	xor  r20, r8, r9
	xor  r20, r20, r15          ; parity
`},
		{"P3", 0x8F1BBCDC, `	and  r20, r8, r9
	or   r21, r8, r9
	and  r21, r21, r15
	or   r20, r20, r21          ; maj
`},
		{"P4", 0xCA62C1D6, `	xor  r20, r8, r9
	xor  r20, r20, r15          ; parity
`},
	}
	for pi, p := range phase {
		end := (pi + 1) * 20
		fmt.Fprintf(&b, "%s:\n", p.label)
		// --- message schedule: w into r22 ---
		if pi == 0 {
			// Rounds 0..19: rounds <16 load message words; >=16 mix.
			b.WriteString(`	setp.lt.s32 p0, r17, 16
	@p0 shl  r22, r17, 2
	@p0 iadd r22, r3, r22
	@p0 ld.global r22, [r22]
	@p0 bra HAVE_W, HAVE_W
	; w = rol1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16])
`)
			b.WriteString(shaMix())
			b.WriteString("HAVE_W:\n")
		} else {
			b.WriteString(shaMix())
		}
		// Store w into the rolling window W[t & 15].
		b.WriteString(`	and  r23, r17, 15
	shl  r23, r23, 2
	iadd r23, r4, r23
	st.shared [r23], r22
`)
		b.WriteString(p.f)
		fmt.Fprintf(&b, `	; temp = rol5(a) + f + e + K + w
	shl  r24, r7, 5
	shr  r25, r7, 27
	or   r24, r24, r25          ; rol5(a)
	iadd r24, r24, r20
	iadd r24, r24, r16
	iadd r24, r24, %d
	iadd r24, r24, r22
	mov  r16, r15               ; e = d
	mov  r15, r9                ; d = c
	shl  r25, r8, 30
	shr  r26, r8, 2
	or   r9, r25, r26           ; c = rol30(b)
	mov  r8, r7                 ; b = a
	mov  r7, r24                ; a = temp
	iadd r17, r17, 1
	setp.lt.s32 p1, r17, %d
	@p1 bra %s
`, int64(int32(p.k)), end, p.label)
	}
	b.WriteString(`	; digest = h + working
	iadd r10, r10, r7
	iadd r11, r11, r8
	iadd r12, r12, r9
	iadd r13, r13, r15
	iadd r14, r14, r16
	imul r6, r2, 20
	iadd r5, r5, r6
	st.global [r5], r10
	st.global [r5+4], r11
	st.global [r5+8], r12
	st.global [r5+12], r13
	st.global [r5+16], r14
	exit
`)
	return b.String()
}

// shaMix emits the W mixing sequence: r22 = rol1(W[(t-3)&15] ^
// W[(t-8)&15] ^ W[(t-14)&15] ^ W[(t-16)&15]).
func shaMix() string {
	var b strings.Builder
	for i, back := range []int{3, 8, 14, 16} {
		fmt.Fprintf(&b, `	isub r23, r17, %d
	and  r23, r23, 15
	shl  r23, r23, 2
	iadd r23, r4, r23
	ld.shared r25, [r23]
`, back)
		if i == 0 {
			b.WriteString("	mov  r22, r25\n")
		} else {
			b.WriteString("	xor  r22, r22, r25\n")
		}
	}
	b.WriteString(`	shl  r23, r22, 1
	shr  r22, r22, 31
	or   r22, r22, r23          ; rol1
`)
	return b.String()
}

func init() {
	register(&Benchmark{
		Name:     "SHA",
		Category: "Compression/Encryption",
		Desc:     fmt.Sprintf("SHA-1 compression of %d independent 64-byte blocks", shaMsgs),
		Build:    buildSha,
	})
}

// sha1Compress is the host reference: one SHA-1 compression round over
// a 16-word block. Verified against crypto/sha1 in the test suite.
func sha1Compress(w16 [16]uint32) [5]uint32 {
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	var w [80]uint32
	copy(w[:16], w16[:])
	for t := 16; t < 80; t++ {
		x := w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16]
		w[t] = x<<1 | x>>31
	}
	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
	for t := 0; t < 80; t++ {
		var f, k uint32
		switch {
		case t < 20:
			f, k = d^(b&(c^d)), 0x5A827999
		case t < 40:
			f, k = b^c^d, 0x6ED9EBA1
		case t < 60:
			f, k = (b&c)|((b|c)&d), 0x8F1BBCDC
		default:
			f, k = b^c^d, 0xCA62C1D6
		}
		tmp := (a<<5 | a>>27) + f + e + k + w[t]
		e, d, c, b, a = d, c, (b<<30 | b>>2), a, tmp
	}
	return [5]uint32{h[0] + a, h[1] + b, h[2] + c, h[3] + d, h[4] + e}
}

func buildSha(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(shaSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(31))
	msgs := make([]uint32, shaMsgs*16)
	for i := range msgs {
		msgs[i] = rng.Uint32()
	}
	dmsg := g.Mem.MustAlloc(4 * len(msgs))
	ddig := g.Mem.MustAlloc(4 * shaMsgs * 5)
	if err := g.Mem.WriteWords(dmsg, msgs); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: shaBlocks, GridY: 1,
		BlockX: shaThreads, BlockY: 1,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(dmsg, ddig),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(ddig, shaMsgs*5)
		if err != nil {
			return err
		}
		for m := 0; m < shaMsgs; m++ {
			var w16 [16]uint32
			copy(w16[:], msgs[m*16:(m+1)*16])
			want := sha1Compress(w16)
			for i := 0; i < 5; i++ {
				if got[m*5+i] != want[i] {
					return fmt.Errorf("digest %d word %d = %08x, want %08x", m, i, got[m*5+i], want[i])
				}
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * int64(len(msgs)),
		OutBytes: 4 * shaMsgs * 5,
	}, nil
}
