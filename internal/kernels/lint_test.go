package kernels

import (
	"strings"
	"testing"

	"warped/internal/asm"
	"warped/internal/verify"
)

// TestSourcesComplete guards the lint registry against drift: every
// bundled source must assemble, carry its real entry name, and the
// count must match the benchmark suite's kernel inventory.
func TestSourcesComplete(t *testing.T) {
	srcs := Sources()
	if len(srcs) != 17 {
		t.Fatalf("Sources() = %d entries, want 17", len(srcs))
	}
	seen := map[string]bool{}
	for _, s := range srcs {
		if s.Name == "?" || s.Name == "" {
			t.Errorf("%s: source did not assemble to a named kernel", s.File)
		}
		if !strings.HasPrefix(s.File, "internal/kernels/") {
			t.Errorf("%s: file not repo-relative", s.File)
		}
		if seen[s.Name] {
			t.Errorf("duplicate kernel name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestBundledKernelsVerifyClean is the acceptance gate: every bundled
// kernel must pass the static verifier with zero findings, warnings
// included.
func TestBundledKernelsVerifyClean(t *testing.T) {
	for _, s := range Sources() {
		p, err := asm.Assemble(s.Src)
		if err != nil {
			t.Errorf("%s (%s): assemble: %v", s.File, s.Name, err)
			continue
		}
		if fs := verify.Check(p); len(fs) > 0 {
			t.Errorf("%s (%s): %d finding(s):\n%s", s.File, s.Name, len(fs), fs.Dump(s.File))
		}
	}
}

// TestSharedRaceArmed asserts the shared-race rule is actually running
// on the bundled shared-memory kernels, not vacuously silent: every
// kernel that declares .shared must also declare .block (the rule needs
// launch geometry), and the full suite must pass rule (h) specifically.
func TestSharedRaceArmed(t *testing.T) {
	sharedKernels := 0
	for _, s := range Sources() {
		p, err := asm.Assemble(s.Src)
		if err != nil {
			t.Errorf("%s (%s): assemble: %v", s.File, s.Name, err)
			continue
		}
		if p.SharedBytes > 0 {
			sharedKernels++
			if p.BlockDimX <= 0 {
				t.Errorf("%s (%s): declares .shared %d but no .block geometry; shared-race cannot check it",
					s.File, s.Name, p.SharedBytes)
			}
		}
		for _, f := range verify.Check(p) {
			if f.Rule == verify.RuleSharedRace {
				t.Errorf("%s (%s): %s", s.File, s.Name, f)
			}
		}
	}
	if sharedKernels == 0 {
		t.Error("no bundled kernel declares .shared; the clean-suite check is vacuous")
	}
}

// TestLintAll exercises the aggregate entry point the CLIs use.
func TestLintAll(t *testing.T) {
	if err := LintAll(); err != nil {
		t.Fatal(err)
	}
}
