package kernels

import (
	"strings"
	"testing"

	"warped/internal/asm"
	"warped/internal/verify"
)

// TestSourcesComplete guards the lint registry against drift: every
// bundled source must assemble, carry its real entry name, and the
// count must match the benchmark suite's kernel inventory.
func TestSourcesComplete(t *testing.T) {
	srcs := Sources()
	if len(srcs) != 16 {
		t.Fatalf("Sources() = %d entries, want 16", len(srcs))
	}
	seen := map[string]bool{}
	for _, s := range srcs {
		if s.Name == "?" || s.Name == "" {
			t.Errorf("%s: source did not assemble to a named kernel", s.File)
		}
		if !strings.HasPrefix(s.File, "internal/kernels/") {
			t.Errorf("%s: file not repo-relative", s.File)
		}
		if seen[s.Name] {
			t.Errorf("duplicate kernel name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestBundledKernelsVerifyClean is the acceptance gate: every bundled
// kernel must pass the static verifier with zero findings, warnings
// included.
func TestBundledKernelsVerifyClean(t *testing.T) {
	for _, s := range Sources() {
		p, err := asm.Assemble(s.Src)
		if err != nil {
			t.Errorf("%s (%s): assemble: %v", s.File, s.Name, err)
			continue
		}
		if fs := verify.Check(p); len(fs) > 0 {
			t.Errorf("%s (%s): %d finding(s):\n%s", s.File, s.Name, len(fs), fs.Dump(s.File))
		}
	}
}

// TestLintAll exercises the aggregate entry point the CLIs use.
func TestLintAll(t *testing.T) {
	if err := LintAll(); err != nil {
		t.Fatal(err)
	}
}
