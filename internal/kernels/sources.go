package kernels

import (
	"fmt"
	"sort"
	"sync"

	"warped/internal/asm"
	"warped/internal/verify"
)

// Source is one bundled kernel's assembly text plus the Go file that
// embeds it, so lint diagnostics can point at the defining file.
type Source struct {
	Name string // kernel entry name (.entry)
	File string // repo-relative Go file embedding the source
	Src  string // assembly text
}

// sources lists every assembly kernel bundled with the benchmarks. The
// generated sources (fft, matmul, sha) are built at init time, so this
// table is populated lazily by Sources rather than at package init; the
// Once makes the lazy fill safe under concurrent lints (parallel runs
// call LintAll from multiple goroutines).
var (
	sources     []Source
	sourcesOnce sync.Once
)

func buildSources() []Source {
	list := []struct {
		file, src string
	}{
		{"internal/kernels/bfs.go", bfsSrc},
		{"internal/kernels/bitonic.go", bitonicSrc},
		{"internal/kernels/cufft.go", fftSrc},
		{"internal/kernels/extras.go", reduceSrc},
		{"internal/kernels/extras.go", transposeSrc},
		{"internal/kernels/extras.go", histogramSrc},
		{"internal/kernels/laplace.go", laplaceSrc},
		{"internal/kernels/libor.go", liborSrc},
		{"internal/kernels/matmul.go", matmulSrc},
		{"internal/kernels/mum.go", mumSrc},
		{"internal/kernels/nqueen.go", nqueenSrc},
		{"internal/kernels/radixsort.go", radixHistSrc},
		{"internal/kernels/radixsort.go", radixGatherSrc},
		{"internal/kernels/scan.go", scanBlockSrc},
		{"internal/kernels/scan.go", scanAddSrc},
		{"internal/kernels/sha.go", shaSrc},
		{"internal/kernels/vulnmicro.go", vulnMicroSrc},
	}
	out := make([]Source, 0, len(list))
	for _, e := range list {
		name := "?"
		if p, err := asm.Assemble(e.src); err == nil {
			name = p.Name
		}
		out = append(out, Source{Name: name, File: e.file, Src: e.src})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Sources returns every bundled kernel source, sorted by file then name.
func Sources() []Source {
	sourcesOnce.Do(func() { sources = buildSources() })
	return sources
}

// LintAll assembles and verifies every bundled kernel. It returns nil
// only when all sources assemble and produce zero verifier findings;
// otherwise the error lists every diagnostic in the greppable
// file:line: severity: rule: message format.
func LintAll() error {
	var report string
	for _, s := range Sources() {
		p, err := asm.Assemble(s.Src)
		if err != nil {
			report += fmt.Sprintf("%s: %v\n", s.File, err)
			continue
		}
		if fs := verify.Check(p); len(fs) > 0 {
			report += fs.Dump(s.File)
		}
	}
	if report != "" {
		return fmt.Errorf("kernels: lint failed:\n%s", report)
	}
	return nil
}
