package kernels

import (
	"crypto/sha1"
	"encoding/binary"
	"testing"

	"warped/internal/arch"
	"warped/internal/asm"
	"warped/internal/sim"
	"warped/internal/stats"
)

// runOne executes a benchmark (with output validation built in) and
// returns its stats.
func runOne(t *testing.T, name string, cfg arch.Config) *stats.Stats {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Execute(g, b, sim.LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAllBenchmarksValidate runs every workload on the plain machine;
// Execute fails if any output mismatches its host reference.
func TestAllBenchmarksValidate(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			st := runOne(t, b.Name, arch.PaperConfig())
			if st.Cycles <= 0 || st.WarpInstrs <= 0 {
				t.Errorf("implausible stats: %d cycles, %d instrs", st.Cycles, st.WarpInstrs)
			}
		})
	}
}

// TestAllBenchmarksValidateUnderDMR re-runs the suite with full
// Warped-DMR: redundant execution must never change results, and
// fault-free runs must flag zero errors.
func TestAllBenchmarksValidateUnderDMR(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			st := runOne(t, b.Name, arch.WarpedDMRConfig())
			if st.FaultsDetected != 0 {
				t.Errorf("fault-free run flagged %d errors", st.FaultsDetected)
			}
			if c := st.Coverage(); c <= 0 || c > 1 {
				t.Errorf("coverage out of range: %v", c)
			}
			if st.VerifiedIntra+st.VerifiedInter > st.EligibleTI {
				t.Errorf("verified %d exceeds eligible %d",
					st.VerifiedIntra+st.VerifiedInter, st.EligibleTI)
			}
		})
	}
}

// TestWorkloadShapes pins the qualitative properties each benchmark was
// chosen for — the properties every figure depends on.
func TestWorkloadShapes(t *testing.T) {
	shapes := map[string]func(t *testing.T, st *stats.Stats){
		"BFS": func(t *testing.T, st *stats.Stats) {
			f := st.ActiveFractions()
			if f[0]+f[1] < 0.4 {
				t.Errorf("BFS should be dominated by low-occupancy slots, got %v", f)
			}
		},
		"Nqueen": func(t *testing.T, st *stats.Stats) {
			f := st.ActiveFractions()
			if f[4] > 0.2 {
				t.Errorf("Nqueen should rarely run full warps, got %v", f)
			}
		},
		"BitonicSort": func(t *testing.T, st *stats.Stats) {
			f := st.ActiveFractions()
			if f[2] < 0.3 {
				t.Errorf("BitonicSort should spend heavily at ~16 active lanes, got %v", f)
			}
		},
		"MatrixMul": func(t *testing.T, st *stats.Stats) {
			f := st.ActiveFractions()
			if f[4] < 0.99 {
				t.Errorf("MatrixMul warps should be fully utilized, got %v", f)
			}
			ty := st.TypeFractions()
			if ty[2] < 0.3 {
				t.Errorf("unrolled MatrixMul should be load-heavy, got %v", ty)
			}
		},
		"SHA": func(t *testing.T, st *stats.Stats) {
			f := st.ActiveFractions()
			ty := st.TypeFractions()
			if f[4] < 0.99 || ty[0] < 0.8 {
				t.Errorf("SHA should be full-warp SP-heavy, got %v / %v", f, ty)
			}
		},
		"Libor": func(t *testing.T, st *stats.Stats) {
			ty := st.TypeFractions()
			if ty[1] == 0 {
				t.Error("Libor must exercise the SFUs (exp/rcp)")
			}
		},
		"CUFFT": func(t *testing.T, st *stats.Stats) {
			ty := st.TypeFractions()
			if ty[1] == 0 {
				t.Error("CUFFT must exercise the SFUs (twiddles)")
			}
			f := st.ActiveFractions()
			if f[4] > 0.99 {
				t.Error("CUFFT's odd block size should produce partial warps")
			}
		},
		"SCAN": func(t *testing.T, st *stats.Stats) {
			f := st.ActiveFractions()
			if f[0] == 0 || f[1] == 0 {
				t.Errorf("SCAN's tree phases should reach single-digit occupancy, got %v", f)
			}
		},
	}
	for name, check := range shapes {
		st := runOne(t, name, arch.PaperConfig())
		t.Run(name, func(t *testing.T) { check(t, st) })
	}
}

// TestSHA1ReferenceAgainstStdlib validates our host SHA-1 compression
// against crypto/sha1 using a fully padded single-block message.
func TestSHA1ReferenceAgainstStdlib(t *testing.T) {
	// "abc" padded to one 512-bit block per FIPS 180-1.
	msg := []byte("abc")
	var block [64]byte
	copy(block[:], msg)
	block[len(msg)] = 0x80
	binary.BigEndian.PutUint64(block[56:], uint64(len(msg))*8)

	var w16 [16]uint32
	for i := range w16 {
		w16[i] = binary.BigEndian.Uint32(block[4*i:])
	}
	got := sha1Compress(w16)
	want := sha1.Sum(msg)
	for i := 0; i < 5; i++ {
		if binary.BigEndian.Uint32(want[4*i:]) != got[i] {
			t.Fatalf("word %d: %08x != crypto/sha1 %08x", i, got[i], binary.BigEndian.Uint32(want[4*i:]))
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("expected 11 benchmarks (Table 4), got %d: %v", len(names), names)
	}
	// Paper's Figure 1 ordering.
	want := []string{"BFS", "Nqueen", "MUM", "SCAN", "BitonicSort", "Laplace",
		"MatrixMul", "RadixSort", "SHA", "Libor", "CUFFT"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("order[%d] = %s, want %s", i, names[i], n)
		}
	}
	if _, err := ByName("Nonexistent"); err == nil {
		t.Error("ByName should fail for unknown benchmarks")
	}
	for _, b := range All() {
		if b.Category == "" || b.Desc == "" || b.Build == nil {
			t.Errorf("%s: incomplete registration", b.Name)
		}
	}
}

func TestTransferSizesPositive(t *testing.T) {
	for _, b := range All() {
		g, err := sim.New(arch.PaperConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		run, err := b.Build(g)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if run.InBytes <= 0 || run.OutBytes <= 0 {
			t.Errorf("%s: transfer sizes must be positive (%d, %d)", b.Name, run.InBytes, run.OutBytes)
		}
		if len(run.Steps) == 0 || run.Check == nil {
			t.Errorf("%s: incomplete run", b.Name)
		}
	}
}

func TestHostReferences(t *testing.T) {
	if n := hostNQueens(8); n != 92 {
		t.Errorf("8-queens = %d, want 92", n)
	}
	if n := hostNQueens(6); n != 4 {
		t.Errorf("6-queens = %d, want 4", n)
	}
	// BFS reference: ring graph of 8, source 0: node 4 is 2 hops away
	// via the +-2 chords.
	g := &bfsGraph{
		rowPtr: []uint32{0, 2, 4, 6, 8},
		colIdx: []uint32{1, 3, 0, 2, 1, 3, 0, 2}, // 4-cycle
	}
	lv := hostBFS(g, 0)
	want := []uint32{0, 1, 2, 1}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("bfs level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}

// TestDeterminism: two runs of the same benchmark must produce
// identical cycle counts — the simulator is fully deterministic.
func TestDeterminism(t *testing.T) {
	a := runOne(t, "Laplace", arch.WarpedDMRConfig())
	b := runOne(t, "Laplace", arch.WarpedDMRConfig())
	if a.Cycles != b.Cycles || a.WarpInstrs != b.WarpInstrs ||
		a.VerifiedIntra != b.VerifiedIntra || a.StallReplayQFull != b.StallReplayQFull {
		t.Error("simulation is not deterministic")
	}
}

// TestExtrasValidate runs the non-paper reference workloads (they must
// not appear in the Table 4 registry).
func TestExtrasValidate(t *testing.T) {
	ex := Extras()
	if len(ex) < 3 {
		t.Fatalf("expected at least 3 extra workloads, got %d", len(ex))
	}
	paper := map[string]bool{}
	for _, b := range All() {
		paper[b.Name] = true
	}
	for _, b := range ex {
		b := b
		if paper[b.Name] {
			t.Fatalf("extra %s leaked into the Table 4 registry", b.Name)
		}
		t.Run(b.Name, func(t *testing.T) {
			g, err := sim.New(arch.WarpedDMRConfig(), 0)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Execute(g, b, sim.LaunchOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if st.FaultsDetected != 0 {
				t.Error("fault-free extra flagged errors")
			}
		})
	}
	if _, err := ExtraByName("Reduce"); err != nil {
		t.Error(err)
	}
	if _, err := ExtraByName("Nope"); err == nil {
		t.Error("unknown extra accepted")
	}
}

// TestTransposePaddingAvoidsBankConflicts: the padded tile keeps the
// shared-memory column reads conflict-free; the histogram's shared
// atomics and the reduction tree exercise their own corners.
func TestTransposeBankBehaviour(t *testing.T) {
	b, err := ExtraByName("Transpose")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sim.New(arch.PaperConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Execute(g, b, sim.LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// With padding, shared accesses should not blow up the LD/ST time:
	// the whole transpose is a few thousand instructions.
	if st.Cycles > 20000 {
		t.Errorf("transpose took %d cycles; bank padding may be broken", st.Cycles)
	}
}

// TestKernelDisassemblyRoundTrips: every built-in kernel's disassembly
// must reassemble to an equivalent program — the strongest available
// check that the assembler, disassembler, and kernel sources agree.
func TestKernelDisassemblyRoundTrips(t *testing.T) {
	sources := map[string]string{
		"bfs":       bfsSrc,
		"nqueen":    nqueenSrc,
		"mum":       mumSrc,
		"scanBlock": scanBlockSrc,
		"scanAdd":   scanAddSrc,
		"bitonic":   bitonicSrc,
		"laplace":   laplaceSrc,
		"matmul":    matmulSrc,
		"radixHist": radixHistSrc,
		"radixGath": radixGatherSrc,
		"sha":       shaSrc,
		"libor":     liborSrc,
		"fft":       fftSrc,
		"reduce":    reduceSrc,
		"transpose": transposeSrc,
		"histogram": histogramSrc,
		"vulnMicro": vulnMicroSrc,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			p1, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			p2, err := asm.Assemble(p1.Disassemble())
			if err != nil {
				t.Fatalf("reassemble: %v", err)
			}
			if len(p1.Instrs) != len(p2.Instrs) {
				t.Fatalf("instruction counts differ: %d vs %d", len(p1.Instrs), len(p2.Instrs))
			}
			for i := range p1.Instrs {
				a, b := p1.Instrs[i], p2.Instrs[i]
				a.Line, b.Line = 0, 0
				if a != b {
					t.Fatalf("instr %d differs:\n  %v\n  %v", i, &a, &b)
				}
			}
			if p1.NumRegs != p2.NumRegs {
				t.Errorf("register counts differ: %d vs %d", p1.NumRegs, p2.NumRegs)
			}
		})
	}
}

// TestKernelDisassemblyFixpoint: over every bundled source (the same
// set LintAll covers, so nothing can drift out of the round-trip net),
// the disassembly must be a fixpoint — reassembling a kernel's
// disassembly and disassembling again yields byte-identical text. This
// pins the disassembler as a canonical spelling of the program.
func TestKernelDisassemblyFixpoint(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Sources() {
		p1, err := asm.Assemble(s.Src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", s.File, err)
		}
		if seen[p1.Name] {
			continue
		}
		seen[p1.Name] = true
		t.Run(p1.Name, func(t *testing.T) {
			d1 := p1.Disassemble()
			p2, err := asm.Assemble(d1)
			if err != nil {
				t.Fatalf("reassemble: %v", err)
			}
			if d2 := p2.Disassemble(); d1 != d2 {
				t.Errorf("disassembly is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", d1, d2)
			}
		})
	}
	// The net must actually cover the full bundled set, extras included.
	if !seen["vuln_micro"] {
		t.Error("Sources() is missing the vuln_micro extra")
	}
}

// TestKernelRegisterBudgets: every kernel fits the 64-GPR budget with
// room to spare (register pressure bounds SM occupancy).
func TestKernelRegisterBudgets(t *testing.T) {
	for _, b := range append(All(), Extras()...) {
		g, err := sim.New(arch.PaperConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		run, err := b.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, step := range run.Steps {
			if n := step.Kernel.Prog.NumRegs; n > 32 {
				t.Errorf("%s kernel %s uses %d registers; keep kernels under 32",
					b.Name, step.Kernel.Prog.Name, n)
			}
		}
	}
}
