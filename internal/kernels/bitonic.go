package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// BitonicSort: the CUDA SDK "simple bitonic sort" — one 512-thread
// block sorting 512 values in shared memory (Table 4: gridDim=1,
// blockDim=512). Every compare-exchange step guards on ixj > tid,
// leaving half the lanes idle, which is why the paper's Fig. 1 shows
// BitonicSort as the most underutilized workload.
const bitonicN = 512

const bitonicSrc = `
.kernel bitonic
.shared 2048
.block 512
	mov  r0, %tid.x
	ld.param r1, [0]            ; data
	ld.param r2, [4]            ; n
	shl  r3, r0, 2
	iadd r4, r1, r3
	ld.global r5, [r4]
	st.shared [r3], r5
	mov  r6, 2                  ; k
KLOOP:
	sar  r7, r6, 1              ; j
JLOOP:
	bar.sync
	xor  r8, r0, r7             ; ixj
	setp.gt.s32 p0, r8, r0
	@p0 ld.shared r9, [r3]      ; a = sh[tid]
	@p0 shl  r10, r8, 2
	@p0 ld.shared r11, [r10]    ; b = sh[ixj]
	@p0 imin r12, r9, r11
	@p0 imax r13, r9, r11
	@p0 and  r14, r0, r6
	@p0 setp.eq.s32 p1, r14, 0  ; ascending subsequence?
	@p0 selp r15, r12, r13, p1
	@p0 st.shared [r3], r15
	@p0 selp r16, r13, r12, p1
	@p0 st.shared [r10], r16
	sar  r7, r7, 1
	setp.gt.s32 p2, r7, 0
	@p2 bra JLOOP
	shl  r6, r6, 1
	setp.le.s32 p2, r6, r2
	@p2 bra KLOOP
	bar.sync
	ld.shared r5, [r3]
	st.global [r4], r5
	exit
`

func init() {
	register(&Benchmark{
		Name:     "BitonicSort",
		Category: "Sorting",
		Desc:     fmt.Sprintf("in-shared-memory bitonic sort of %d keys, single block", bitonicN),
		Build:    buildBitonic,
	})
}

func buildBitonic(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(bitonicSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(23))
	keys := make([]uint32, bitonicN)
	for i := range keys {
		keys[i] = uint32(rng.Int31())
	}
	d := g.Mem.MustAlloc(4 * bitonicN)
	if err := g.Mem.WriteWords(d, keys); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: 1, GridY: 1,
		BlockX: bitonicN, BlockY: 1,
		SharedBytes: prog.SharedBytes,
		Params:      mem.NewParams(d, bitonicN),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(d, bitonicN)
		if err != nil {
			return err
		}
		want := make([]uint32, bitonicN)
		copy(want, keys)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("sorted[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * bitonicN,
		OutBytes: 4 * bitonicN,
	}, nil
}
