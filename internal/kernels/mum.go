package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// MUM: the MUMmer-style sequence-matching workload. MUMmer's GPU
// kernel walks a suffix tree per query; we use the classic equivalent
// formulation — binary search over the reference's suffix array — which
// has the same behavioural signature: data-dependent branching per
// query, divergent character-compare loops, and pointer-chasing loads.
// Each thread locates its query's best match position and length.
const (
	mumRefLen   = 2048
	mumQueries  = 1000 // not a multiple of the block size: tail warps
	mumQueryLen = 25   // paper uses 25bp queries
	mumBlockDim = 125  // odd block size like the paper's launches
)

// params: [0]=ref (one base per word), [4]=suffix array, [8]=queries,
// [12]=out (len,pos per query), [16]=refLen, [20]=numQueries.
const mumSrc = `
.kernel mum_match
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; query id
	ld.param r3, [20]
	setp.ge.s32 p0, r2, r3
	@p0 exit
	ld.param r4, [0]            ; ref
	ld.param r5, [4]            ; sa
	ld.param r6, [8]            ; queries
	imul r7, r2, 100            ; query * 25 words * 4
	iadd r6, r6, r7             ; this query's base
	ld.param r8, [16]           ; refLen
	; binary search for the query's lower bound in the suffix array
	mov  r9, 0                  ; lo
	mov  r10, r8                ; hi
BSEARCH:
	setp.ge.s32 p1, r9, r10
	@p1 bra FOUND
	iadd r11, r9, r10
	sar  r11, r11, 1            ; mid
	shl  r12, r11, 2
	iadd r12, r5, r12
	ld.global r13, [r12]        ; s = sa[mid]
	; compare query against ref[s..]: result in r14 (-1 suffix<q, else 0/1)
	mov  r15, 0                 ; i
	mov  r14, 0
CMP:
	setp.ge.s32 p2, r15, 25
	@p2 bra CMPDONE             ; ran out of query: suffix >= query
	iadd r16, r13, r15
	setp.ge.s32 p3, r16, r8
	@p3 mov r14, -1             ; suffix exhausted: suffix < query
	@p3 bra CMPDONE
	shl  r17, r16, 2
	iadd r17, r4, r17
	ld.global r18, [r17]        ; ref char
	shl  r19, r15, 2
	iadd r19, r6, r19
	ld.global r20, [r19]        ; query char
	setp.lt.s32 p4, r18, r20
	@p4 mov r14, -1
	@p4 bra CMPDONE
	setp.gt.s32 p5, r18, r20
	@p5 mov r14, 1
	@p5 bra CMPDONE
	iadd r15, r15, 1
	bra CMP
CMPDONE:
	setp.lt.s32 p6, r14, 0
	@p6 iadd r9, r11, 1         ; suffix < query: go right
	pnot p7, p6
	@p7 mov r10, r11            ; go left
	bra BSEARCH
FOUND:
	; compute LCP with sa[lo] (clamped) and sa[lo-1], keep the best
	mov  r21, 0                 ; best len
	mov  r22, 0                 ; best pos
	mov  r23, 0                 ; candidate round
CAND:
	; cand index = lo - round, skipped when out of [0, refLen)
	isub r24, r9, r23
	setp.lt.s32 p1, r24, 0
	@p1 bra NEXT
	setp.ge.s32 p1, r24, r8
	@p1 bra NEXT
	shl  r25, r24, 2
	iadd r25, r5, r25
	ld.global r13, [r25]        ; s = sa[cand]
	mov  r15, 0                 ; lcp
LCP:
	setp.ge.s32 p2, r15, 25
	@p2 bra LCPDONE
	iadd r16, r13, r15
	setp.ge.s32 p3, r16, r8
	@p3 bra LCPDONE
	shl  r17, r16, 2
	iadd r17, r4, r17
	ld.global r18, [r17]
	shl  r19, r15, 2
	iadd r19, r6, r19
	ld.global r20, [r19]
	setp.ne.s32 p4, r18, r20
	@p4 bra LCPDONE
	iadd r15, r15, 1
	bra LCP
LCPDONE:
	setp.gt.s32 p5, r15, r21
	@p5 mov r21, r15
	@p5 mov r22, r13
NEXT:
	iadd r23, r23, 1
	setp.le.s32 p6, r23, 1
	@p6 bra CAND
	; out[q] = (len, pos)
	ld.param r26, [12]
	shl  r27, r2, 3
	iadd r26, r26, r27
	st.global [r26], r21
	st.global [r26+4], r22
	exit
`

// hostMUM mirrors the kernel: binary search + two-candidate LCP.
func hostMUM(ref []uint32, sa []int, query []uint32) (length, pos uint32) {
	n := len(ref)
	cmp := func(s int) int { // -1: suffix < query, 0/1: suffix >= query
		for i := 0; i < len(query); i++ {
			if s+i >= n {
				return -1
			}
			switch {
			case ref[s+i] < query[i]:
				return -1
			case ref[s+i] > query[i]:
				return 1
			}
		}
		return 0
	}
	lo := sort.Search(n, func(m int) bool { return cmp(sa[m]) >= 0 })
	best, bestPos := 0, 0
	for _, cand := range []int{lo, lo - 1} {
		if cand < 0 || cand >= n {
			continue
		}
		s := sa[cand]
		l := 0
		for l < len(query) && s+l < n && ref[s+l] == query[l] {
			l++
		}
		if l > best {
			best, bestPos = l, s
		}
	}
	return uint32(best), uint32(bestPos)
}

func init() {
	register(&Benchmark{
		Name:     "MUM",
		Category: "Scientific",
		Desc:     fmt.Sprintf("suffix-array matching of %d %dbp queries against a %dbp reference", mumQueries, mumQueryLen, mumRefLen),
		Build:    buildMUM,
	})
}

func buildMUM(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(mumSrc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(71))
	ref := make([]uint32, mumRefLen)
	for i := range ref {
		ref[i] = uint32(rng.Intn(4)) // A,C,G,T
	}
	// Suffix array of the reference.
	sa := make([]int, mumRefLen)
	for i := range sa {
		sa[i] = i
	}
	less := func(a, b int) bool {
		for a < mumRefLen && b < mumRefLen {
			if ref[a] != ref[b] {
				return ref[a] < ref[b]
			}
			a++
			b++
		}
		return a > b // shorter suffix sorts first
	}
	sort.Slice(sa, func(i, j int) bool { return less(sa[i], sa[j]) })

	// Queries: half sampled from the reference (guaranteed full-length
	// hits), half random (partial matches), randomly interleaved —
	// MUMmer's typical mix.
	queries := make([]uint32, mumQueries*mumQueryLen)
	for q := 0; q < mumQueries; q++ {
		if rng.Intn(2) == 0 {
			start := rng.Intn(mumRefLen - mumQueryLen)
			copy(queries[q*mumQueryLen:], ref[start:start+mumQueryLen])
		} else {
			for i := 0; i < mumQueryLen; i++ {
				queries[q*mumQueryLen+i] = uint32(rng.Intn(4))
			}
		}
	}

	dref := g.Mem.MustAlloc(4 * mumRefLen)
	dsa := g.Mem.MustAlloc(4 * mumRefLen)
	dq := g.Mem.MustAlloc(4 * len(queries))
	dout := g.Mem.MustAlloc(8 * mumQueries)
	saw := make([]uint32, mumRefLen)
	for i, s := range sa {
		saw[i] = uint32(s)
	}
	for _, w := range []struct {
		addr uint32
		data []uint32
	}{{dref, ref}, {dsa, saw}, {dq, queries}} {
		if err := g.Mem.WriteWords(w.addr, w.data); err != nil {
			return nil, err
		}
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: (mumQueries + mumBlockDim - 1) / mumBlockDim, GridY: 1,
		BlockX: mumBlockDim, BlockY: 1,
		Params: mem.NewParams(dref, dsa, dq, dout, mumRefLen, mumQueries),
	}
	check := func(g *sim.GPU) error {
		got, err := g.Mem.ReadWords(dout, 2*mumQueries)
		if err != nil {
			return err
		}
		for q := 0; q < mumQueries; q++ {
			wl, wp := hostMUM(ref, sa, queries[q*mumQueryLen:(q+1)*mumQueryLen])
			gl, gp := got[2*q], got[2*q+1]
			if gl != wl {
				return fmt.Errorf("query %d match length %d, want %d", q, gl, wl)
			}
			// Positions may legitimately differ when several suffixes share
			// the same LCP; lengths must agree, and the reported position
			// must actually match to that length.
			if gl > 0 {
				for i := uint32(0); i < gl; i++ {
					if ref[gp+i] != queries[q*mumQueryLen+int(i)] {
						return fmt.Errorf("query %d reported pos %d does not match at %d", q, gp, i)
					}
				}
			}
			_ = wp
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  4 * int64(2*mumRefLen+len(queries)),
		OutBytes: 8 * mumQueries,
	}, nil
}
