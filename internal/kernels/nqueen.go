package kernels

import (
	"fmt"

	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/sim"
)

// NQueen: counts solutions of the 8-queens problem. Each thread is
// seeded with one (column row0, column row1) prefix and runs an
// iterative bitmask depth-first search with its stack in per-thread
// scratch memory. Subtree sizes differ wildly between threads, so
// warps spend most of their time partially utilized — the paper's
// AI/simulation divergence workload.
const (
	nqN       = 8
	nqFull    = (1 << nqN) - 1
	nqThreads = nqN * nqN // one thread per (c0, c1) prefix
)

// Per-thread scratch layout (word offsets): ls[9] at 0, rs[9] at 9,
// cs[9] at 18, poss[9] at 27 => 36 words = 144 bytes per thread.
//
// params: [0]=scratch base, [4]=solution counter.
const nqueenSrc = `
.kernel nqueen
	mov  r0, %ctaid.x
	mov  r1, %ntid.x
	imad r2, r0, r1, %tid.x     ; t
	ld.param r3, [0]
	imul r4, r2, 144
	iadd r3, r3, r4             ; scratch base for this thread
	ld.param r4, [4]            ; counter
	; decode prefix: c0 = t / 8, c1 = t % 8
	sar  r5, r2, 3
	and  r6, r2, 7
	mov  r7, 1
	shl  r5, r7, r5             ; bit0
	shl  r6, r7, r6             ; bit1
	; after placing row 0
	shl  r8, r5, 1              ; ls1
	shr  r9, r5, 1              ; rs1
	mov  r10, r5                ; cs1
	; is row-1 placement legal?
	or   r11, r8, r9
	or   r11, r11, r10
	and  r11, r11, r6
	setp.ne.s32 p0, r11, 0
	@p0 exit                    ; conflicting prefix: nothing to count
	; masks after placing row 1 (depth 2)
	or   r8, r8, r6
	shl  r8, r8, 1
	and  r8, r8, 255            ; ls2
	or   r9, r9, r6
	shr  r9, r9, 1              ; rs2
	or   r10, r10, r6           ; cs2
	st.global [r3+8], r8        ; ls[2] at (0+2)*4
	st.global [r3+44], r9       ; rs[2] at (9+2)*4
	st.global [r3+80], r10      ; cs[2] at (18+2)*4
	; poss[2] = ~(ls|rs|cs) & FULL
	or   r11, r8, r9
	or   r11, r11, r10
	not  r11, r11
	and  r11, r11, 255
	st.global [r3+116], r11     ; poss[2] at (27+2)*4
	mov  r12, 2                 ; depth
	mov  r13, 0                 ; count
LOOP:
	setp.lt.s32 p1, r12, 2
	@p1 bra FLUSH
	setp.eq.s32 p2, r12, 8
	@p2 iadd r13, r13, 1        ; full placement found
	@p2 isub r12, r12, 1
	@p2 bra LOOP
	; poss = poss[depth]
	shl  r14, r12, 2
	iadd r15, r3, r14
	ld.global r16, [r15+108]    ; poss[depth] (27*4 = 108)
	setp.eq.s32 p3, r16, 0
	@p3 isub r12, r12, 1        ; subtree exhausted: pop
	@p3 bra LOOP
	; bit = poss & -poss; poss[depth] -= bit
	mov  r17, 0
	isub r17, r17, r16
	and  r17, r17, r16          ; lowest set bit
	isub r16, r16, r17
	st.global [r15+108], r16
	; child masks
	ld.global r18, [r15]        ; ls[depth]
	ld.global r19, [r15+36]     ; rs[depth]
	ld.global r20, [r15+72]     ; cs[depth]
	or   r18, r18, r17
	shl  r18, r18, 1
	and  r18, r18, 255
	or   r19, r19, r17
	shr  r19, r19, 1
	or   r20, r20, r17
	st.global [r15+4], r18      ; ls[depth+1]
	st.global [r15+40], r19
	st.global [r15+76], r20
	or   r21, r18, r19
	or   r21, r21, r20
	not  r21, r21
	and  r21, r21, 255
	st.global [r15+112], r21    ; poss[depth+1]
	iadd r12, r12, 1
	bra LOOP
FLUSH:
	setp.eq.s32 p4, r13, 0
	@p4 exit
	atom.add.global r22, [r4], r13
	exit
`

// hostNQueens counts N-queens solutions with the same bitmask search.
func hostNQueens(n int) int {
	full := uint32(1<<n) - 1
	var rec func(ls, rs, cs uint32) int
	rec = func(ls, rs, cs uint32) int {
		if cs == full {
			return 1
		}
		cnt := 0
		poss := ^(ls | rs | cs) & full
		for poss != 0 {
			bit := poss & (^poss + 1)
			poss -= bit
			cnt += rec(((ls|bit)<<1)&full, (rs|bit)>>1, cs|bit)
		}
		return cnt
	}
	return rec(0, 0, 0)
}

func init() {
	register(&Benchmark{
		Name:     "Nqueen",
		Category: "AI/Simulation",
		Desc:     fmt.Sprintf("%d-queens solution count via per-thread bitmask DFS", nqN),
		Build:    buildNQueen,
	})
}

func buildNQueen(g *sim.GPU) (*Run, error) {
	prog, err := asm.Assemble(nqueenSrc)
	if err != nil {
		return nil, err
	}
	scratch := g.Mem.MustAlloc(nqThreads * 144)
	counter := g.Mem.MustAlloc(4)
	if err := g.Mem.Store32(counter, 0); err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:  prog,
		GridX: 2, GridY: 1,
		BlockX: 32, BlockY: 1,
		Params: mem.NewParams(scratch, counter),
	}
	want := uint32(hostNQueens(nqN)) // 92 for n=8
	check := func(g *sim.GPU) error {
		got, err := g.Mem.Load32(counter)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("counted %d solutions, want %d", got, want)
		}
		return nil
	}
	return &Run{
		Steps:    []Step{{Kernel: k}},
		Check:    check,
		InBytes:  8, // trivial: just the two pointers
		OutBytes: 4,
	}, nil
}
