// Package stats collects the measurements the paper's figures are
// built from: active-thread-count breakdowns (Fig. 1), instruction-type
// breakdowns (Fig. 5), instruction-type run lengths (Fig. 8a), RAW
// dependency distances (Fig. 8b), DMR coverage counters (Fig. 9a), and
// cycle/stall accounting (Fig. 9b, 10, 11).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"warped/internal/isa"
)

// ActiveBuckets are the Fig. 1 histogram buckets for the number of
// active threads in an issued warp instruction.
var ActiveBuckets = []string{"1", "2-11", "12-21", "22-31", "32"}

// ActiveBucket maps an active-thread count (1..32) to its bucket index.
func ActiveBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 11:
		return 1
	case n <= 21:
		return 2
	case n <= 31:
		return 3
	default:
		return 4
	}
}

// RunLengths tracks, per unit class, the average number of consecutive
// issue slots occupied by the same instruction type before switching
// (Fig. 8a's "instruction type switching distance").
type RunLengths struct {
	cur    isa.UnitClass
	curLen int
	sum    [3]int64
	count  [3]int64
	seen   bool
}

// Observe records the type of the next issued instruction.
func (r *RunLengths) Observe(u isa.UnitClass) {
	if u == isa.UnitCTRL {
		return // control ops don't occupy SP/SFU/LDST units
	}
	if r.seen && u == r.cur {
		r.curLen++
		return
	}
	if r.seen {
		r.sum[r.cur] += int64(r.curLen)
		r.count[r.cur]++
	}
	r.cur, r.curLen, r.seen = u, 1, true
}

// Flush closes the final run.
func (r *RunLengths) Flush() {
	if r.seen && r.curLen > 0 {
		r.sum[r.cur] += int64(r.curLen)
		r.count[r.cur]++
		r.curLen = 0
		r.seen = false
	}
}

// Mean returns the average run length for a unit class.
func (r *RunLengths) Mean(u isa.UnitClass) float64 {
	if u > isa.UnitLDST || r.count[u] == 0 {
		return 0
	}
	return float64(r.sum[u]) / float64(r.count[u])
}

// RAWTracker histograms the cycle distance between a register write and
// its next read, for one tracked warp (Fig. 8b). Distances are bucketed
// logarithmically by decade boundaries the way the paper plots them.
type RAWTracker struct {
	writeCycle map[isa.Reg]int64
	Distances  map[int64]int64 // distance -> occurrences (capped below)
	maxTracked int64
}

// NewRAWTracker creates a tracker; distances above maxTracked collapse
// into the maxTracked bin (the paper plots 1..200).
func NewRAWTracker(maxTracked int64) *RAWTracker {
	if maxTracked <= 0 {
		maxTracked = 200
	}
	return &RAWTracker{
		writeCycle: make(map[isa.Reg]int64),
		Distances:  make(map[int64]int64),
		maxTracked: maxTracked,
	}
}

// Write records that reg was written at the given cycle.
func (t *RAWTracker) Write(reg isa.Reg, cycle int64) { t.writeCycle[reg] = cycle }

// Read records a read; if the register has a pending write the distance
// is histogrammed and the pending write is cleared (first-use distance,
// which is what bounds ReplayQ stalls).
func (t *RAWTracker) Read(reg isa.Reg, cycle int64) {
	w, ok := t.writeCycle[reg]
	if !ok {
		return
	}
	delete(t.writeCycle, reg)
	d := cycle - w
	if d < 1 {
		d = 1
	}
	if d > t.maxTracked {
		d = t.maxTracked
	}
	t.Distances[d]++
}

// FractionAtLeast returns the fraction of recorded RAW distances that
// are at least n cycles.
func (t *RAWTracker) FractionAtLeast(n int64) float64 {
	var total, ge int64
	for d, c := range t.Distances {
		total += c
		if d >= n {
			ge += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ge) / float64(total)
}

// Min returns the smallest observed distance (0 if none).
func (t *RAWTracker) Min() int64 {
	var min int64
	for d := range t.Distances {
		if min == 0 || d < min {
			min = d
		}
	}
	return min
}

// Stats is the full measurement set for one simulation run.
type Stats struct {
	Cycles       int64 // kernel execution cycles (max over SMs)
	SMCycles     []int64
	WarpInstrs   int64 // issued warp-instructions (excl. DMR replays)
	ThreadInstrs int64 // executed thread-instructions (sum of active lanes)

	// Fig. 1: issue slots bucketed by active thread count.
	ActiveHist [5]int64

	// Fig. 5: issue slots per unit class (SP, SFU, LDST).
	TypeHist [3]int64

	// Fig. 8a.
	Runs RunLengths

	// Fig. 8b: one tracked warp's RAW distances (nil if not enabled).
	RAW *RAWTracker

	// Warped-DMR coverage accounting (Fig. 9a).
	VerifiedIntra int64 // thread-instructions verified by intra-warp DMR
	VerifiedInter int64 // thread-instructions verified by inter-warp DMR
	EligibleTI    int64 // thread-instructions eligible for DMR (non-CTRL)

	// Selective-protection accounting (docs/POLICIES.md). Skipped
	// instructions remain in EligibleTI, so Coverage() reflects the
	// policy's choices; with no sampling DMR configured,
	// ProtectedTI + SkippedTI == EligibleTI.
	ProtectedTI int64 // thread-instructions the protection policy admitted
	SkippedTI   int64 // thread-instructions the protection policy skipped

	// Warped-DMR overhead accounting (Fig. 9b).
	StallReplayQFull int64 // stalls because ReplayQ was full, same type
	StallRAWUnverif  int64 // stalls to verify a RAW-depended entry
	ReplayCoexec     int64 // replays co-executed on idle units (free)
	ReplayEnq        int64 // instructions buffered in the ReplayQ
	ReplayIdleDrain  int64 // entries drained on idle issue cycles

	// DMTR baseline accounting.
	DMTRSlots int64 // issue slots consumed by full temporal replays

	// Per-unit dynamic instruction counts for the power model (Fig. 11),
	// including redundant executions.
	UnitOps        [3]int64 // primary executions per unit class
	RedundantOps   [3]int64 // redundant (verification) executions
	RegFileReads   int64
	RegFileWrites  int64
	SharedAccesses int64
	GlobalAccesses int64

	// IdleIssueSlots counts scheduler cycles with nothing to issue
	// (the slack inter-warp DMR replays soak up).
	IdleIssueSlots int64

	// RegBankConflicts counts extra register-fetch cycles charged when
	// an instruction's source operands collide in a register bank.
	RegBankConflicts int64

	// Cache behaviour (segment-granular: one probe per coalesced
	// 128 B transaction).
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64

	// Fault-injection accounting (extension experiments).
	FaultsActivated int64 // corrupted values produced
	FaultsDetected  int64 // mismatches flagged by DMR comparators
}

// Coverage returns the fraction (0..1) of eligible thread-instructions
// verified by either DMR mechanism.
func (s *Stats) Coverage() float64 {
	if s.EligibleTI == 0 {
		return 0
	}
	return float64(s.VerifiedIntra+s.VerifiedInter) / float64(s.EligibleTI)
}

// ProtectedFraction returns the fraction (0..1) of eligible
// thread-instructions the protection policy admitted for verification.
// Under the default Full policy this is 1 whenever anything was
// eligible.
func (s *Stats) ProtectedFraction() float64 {
	if s.EligibleTI == 0 {
		return 0
	}
	return float64(s.ProtectedTI) / float64(s.EligibleTI)
}

// IPC returns warp-instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.WarpInstrs) / float64(s.Cycles)
}

// ActiveFractions returns the Fig. 1 bucket fractions (sum 1.0).
func (s *Stats) ActiveFractions() [5]float64 {
	var out [5]float64
	var total int64
	for _, v := range s.ActiveHist {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range s.ActiveHist {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// TypeFractions returns the Fig. 5 unit-class fractions (sum 1.0).
func (s *Stats) TypeFractions() [3]float64 {
	var out [3]float64
	var total int64
	for _, v := range s.TypeHist {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range s.TypeHist {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// MergeSerial folds the stats of a subsequent back-to-back launch into
// s: identical to Merge except that cycles accumulate, because the
// launches executed one after another on the same simulated chip. Use
// Merge for parallel shards (per-SM stats of one launch, where the
// slowest shard bounds the kernel), MergeSerial for sequenced launches
// of a multi-kernel workload.
func (s *Stats) MergeSerial(o *Stats) {
	cycles := s.Cycles + o.Cycles
	s.Merge(o)
	s.Cycles = cycles
}

// Merge folds another SM-local Stats into s (cycles take the max; the
// RAW tracker is taken from the first contributor that has one).
func (s *Stats) Merge(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.SMCycles = append(s.SMCycles, o.SMCycles...)
	s.WarpInstrs += o.WarpInstrs
	s.ThreadInstrs += o.ThreadInstrs
	for i := range s.ActiveHist {
		s.ActiveHist[i] += o.ActiveHist[i]
	}
	for i := range s.TypeHist {
		s.TypeHist[i] += o.TypeHist[i]
	}
	for i := range s.Runs.sum {
		s.Runs.sum[i] += o.Runs.sum[i]
		s.Runs.count[i] += o.Runs.count[i]
	}
	if s.RAW == nil {
		s.RAW = o.RAW
	}
	s.VerifiedIntra += o.VerifiedIntra
	s.VerifiedInter += o.VerifiedInter
	s.EligibleTI += o.EligibleTI
	s.ProtectedTI += o.ProtectedTI
	s.SkippedTI += o.SkippedTI
	s.StallReplayQFull += o.StallReplayQFull
	s.StallRAWUnverif += o.StallRAWUnverif
	s.ReplayCoexec += o.ReplayCoexec
	s.ReplayEnq += o.ReplayEnq
	s.ReplayIdleDrain += o.ReplayIdleDrain
	s.DMTRSlots += o.DMTRSlots
	for i := range s.UnitOps {
		s.UnitOps[i] += o.UnitOps[i]
		s.RedundantOps[i] += o.RedundantOps[i]
	}
	s.RegFileReads += o.RegFileReads
	s.RegFileWrites += o.RegFileWrites
	s.SharedAccesses += o.SharedAccesses
	s.GlobalAccesses += o.GlobalAccesses
	s.IdleIssueSlots += o.IdleIssueSlots
	s.RegBankConflicts += o.RegBankConflicts
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.FaultsActivated += o.FaultsActivated
	s.FaultsDetected += o.FaultsDetected
}

// Table is a simple text table renderer used by the experiment
// harnesses to print paper-figure data.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedDistances returns a RAW tracker's (distance, count) pairs in
// ascending distance order; helper for rendering Fig. 8b.
func SortedDistances(t *RAWTracker) (ds []int64, cs []int64) {
	for d := range t.Distances {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	for _, d := range ds {
		cs = append(cs, t.Distances[d])
	}
	return ds, cs
}
