package stats

import (
	"fmt"
	"strings"
)

// HBar renders a horizontal bar chart: one labeled bar per value.
// maxVal scales the bars; pass 0 to auto-scale to the largest value.
func HBar(title string, labels []string, values []float64, width int, maxVal float64, format string) string {
	if width <= 0 {
		width = 50
	}
	if format == "" {
		format = "%.2f"
	}
	if maxVal <= 0 {
		for _, v := range values {
			if v > maxVal {
				maxVal = v
			}
		}
		if maxVal == 0 {
			maxVal = 1
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := int(v / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-*s |%s%s| "+format+"\n",
			labelW, label, strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}

// stackRunes are the fill characters for stacked segments, in order.
var stackRunes = []rune{'#', '=', '+', '-', '.', '~', ':'}

// Stacked renders a 100%-stacked horizontal chart: each row's fractions
// (summing to ~1) fill the width with one rune per segment, plus a
// legend mapping runes to segment names — an ASCII rendition of the
// paper's Fig. 1 and Fig. 5 stacked-bar charts.
func Stacked(title string, labels []string, rows [][]float64, segments []string, width int) string {
	if width <= 0 {
		width = 60
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	// Legend.
	var legend []string
	for i, s := range segments {
		legend = append(legend, fmt.Sprintf("%c=%s", stackRunes[i%len(stackRunes)], s))
	}
	fmt.Fprintf(&b, "%s\n", strings.Join(legend, "  "))
	for r, row := range rows {
		label := ""
		if r < len(labels) {
			label = labels[r]
		}
		var bar strings.Builder
		used := 0
		for si, frac := range row {
			n := int(frac*float64(width) + 0.5)
			if used+n > width {
				n = width - used
			}
			bar.WriteString(strings.Repeat(string(stackRunes[si%len(stackRunes)]), n))
			used += n
		}
		if used < width {
			bar.WriteString(strings.Repeat(" ", width-used))
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, label, bar.String())
	}
	return b.String()
}
