package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"warped/internal/isa"
)

func TestActiveBucket(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 11: 1, 12: 2, 21: 2, 22: 3, 31: 3, 32: 4}
	for n, want := range cases {
		if got := ActiveBucket(n); got != want {
			t.Errorf("ActiveBucket(%d) = %d, want %d", n, got, want)
		}
	}
	if len(ActiveBuckets) != 5 {
		t.Error("Fig. 1 has exactly five buckets")
	}
}

func TestRunLengths(t *testing.T) {
	var r RunLengths
	// SP SP SP LDST LDST SP -> SP runs {3,1}, LDST runs {2}.
	for _, u := range []isa.UnitClass{isa.UnitSP, isa.UnitSP, isa.UnitSP,
		isa.UnitLDST, isa.UnitLDST, isa.UnitSP} {
		r.Observe(u)
	}
	r.Flush()
	if got := r.Mean(isa.UnitSP); got != 2 {
		t.Errorf("SP mean run = %v, want 2", got)
	}
	if got := r.Mean(isa.UnitLDST); got != 2 {
		t.Errorf("LDST mean run = %v, want 2", got)
	}
	if got := r.Mean(isa.UnitSFU); got != 0 {
		t.Errorf("SFU mean run = %v, want 0 (never observed)", got)
	}
}

func TestRunLengthsIgnoreCtrl(t *testing.T) {
	var r RunLengths
	r.Observe(isa.UnitSP)
	r.Observe(isa.UnitCTRL) // must not break the SP run
	r.Observe(isa.UnitSP)
	r.Flush()
	if got := r.Mean(isa.UnitSP); got != 2 {
		t.Errorf("SP run split by CTRL: mean = %v, want 2", got)
	}
}

func TestRAWTracker(t *testing.T) {
	tr := NewRAWTracker(200)
	tr.Write(isa.Reg(1), 100)
	tr.Read(isa.Reg(1), 108) // distance 8
	tr.Write(isa.Reg(2), 100)
	tr.Read(isa.Reg(2), 350) // clamped to 200
	tr.Read(isa.Reg(3), 400) // never written: ignored
	if tr.Distances[8] != 1 {
		t.Error("distance 8 missing")
	}
	if tr.Distances[200] != 1 {
		t.Error("distance should clamp at 200")
	}
	if tr.Min() != 8 {
		t.Errorf("min = %d", tr.Min())
	}
	if f := tr.FractionAtLeast(100); f != 0.5 {
		t.Errorf("fraction >= 100 = %v, want 0.5", f)
	}
	// First-use semantics: a second read of the same write doesn't count.
	tr.Read(isa.Reg(1), 500)
	if len(tr.Distances) != 2 {
		t.Error("re-read counted twice")
	}
}

func TestCoverage(t *testing.T) {
	s := &Stats{EligibleTI: 200, VerifiedIntra: 50, VerifiedInter: 100}
	if got := s.Coverage(); got != 0.75 {
		t.Errorf("coverage = %v, want 0.75", got)
	}
	empty := &Stats{}
	if empty.Coverage() != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestFractions(t *testing.T) {
	s := &Stats{ActiveHist: [5]int64{1, 1, 0, 0, 2}, TypeHist: [3]int64{3, 1, 0}}
	af := s.ActiveFractions()
	if af[0] != 0.25 || af[4] != 0.5 {
		t.Errorf("active fractions = %v", af)
	}
	tf := s.TypeFractions()
	if tf[0] != 0.75 || tf[1] != 0.25 {
		t.Errorf("type fractions = %v", tf)
	}
}

func TestMerge(t *testing.T) {
	a := &Stats{Cycles: 10, WarpInstrs: 5, EligibleTI: 8, VerifiedIntra: 3}
	b := &Stats{Cycles: 20, WarpInstrs: 7, EligibleTI: 2, VerifiedInter: 1}
	a.Merge(b)
	if a.Cycles != 20 {
		t.Error("merge should take max cycles (parallel SMs)")
	}
	if a.WarpInstrs != 12 || a.EligibleTI != 10 || a.VerifiedIntra != 3 || a.VerifiedInter != 1 {
		t.Errorf("merged sums wrong: %+v", a)
	}
}

// Property: merging keeps coverage within [0,1] whenever the inputs
// maintain verified <= eligible.
func TestMergeCoverageBoundsQuick(t *testing.T) {
	f := func(e1, v1, e2, v2 uint16) bool {
		a := &Stats{EligibleTI: int64(e1) + int64(v1), VerifiedIntra: int64(v1)}
		b := &Stats{EligibleTI: int64(e2) + int64(v2), VerifiedInter: int64(v2)}
		a.Merge(b)
		c := a.Coverage()
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	for _, want := range []string{"T\n", "name", "value", "alpha", "22222", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") || !strings.Contains(csv, "alpha,1\n") {
		t.Errorf("csv output wrong:\n%s", csv)
	}
}

func TestSortedDistances(t *testing.T) {
	tr := NewRAWTracker(100)
	tr.Write(1, 0)
	tr.Read(1, 50)
	tr.Write(1, 100)
	tr.Read(1, 110)
	ds, cs := SortedDistances(tr)
	if len(ds) != 2 || ds[0] != 10 || ds[1] != 50 || cs[0] != 1 {
		t.Errorf("sorted distances = %v %v", ds, cs)
	}
}

func TestHBar(t *testing.T) {
	out := HBar("T", []string{"aa", "b"}, []float64{1.0, 0.5}, 10, 0, "%.1f")
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[1], "##########") {
		t.Errorf("full bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	// Explicit scale.
	out2 := HBar("", []string{"x"}, []float64{2.0}, 10, 4.0, "%.0f")
	if !strings.Contains(out2, "#####") || strings.Contains(out2, "######") {
		t.Errorf("scaled bar wrong: %q", out2)
	}
}

func TestStacked(t *testing.T) {
	out := Stacked("S", []string{"row"}, [][]float64{{0.5, 0.5}}, []string{"a", "b"}, 10)
	if !strings.Contains(out, "#=a") && !strings.Contains(out, "#=") {
		// legend present in some form
	}
	if !strings.Contains(out, "#####=====") {
		t.Errorf("stacked segments wrong:\n%s", out)
	}
	// Rounding never overflows the width.
	out2 := Stacked("", []string{"r"}, [][]float64{{0.333, 0.333, 0.334}}, []string{"x", "y", "z"}, 9)
	for _, line := range strings.Split(out2, "\n") {
		if i := strings.Index(line, "|"); i >= 0 {
			j := strings.LastIndex(line, "|")
			if j-i-1 > 9 {
				t.Errorf("bar wider than width: %q", line)
			}
		}
	}
}

// TestMergeSerialVsMerge: Merge takes the cycle max (parallel shards of
// one launch), MergeSerial accumulates (back-to-back launches); every
// additive counter behaves the same under both.
func TestMergeSerialVsMerge(t *testing.T) {
	mk := func(cycles, warps int64) *Stats {
		return &Stats{Cycles: cycles, WarpInstrs: warps, EligibleTI: warps * 32}
	}
	par := mk(100, 10)
	par.Merge(mk(70, 5))
	if par.Cycles != 100 {
		t.Errorf("Merge cycles = %d, want max 100", par.Cycles)
	}
	ser := mk(100, 10)
	ser.MergeSerial(mk(70, 5))
	if ser.Cycles != 170 {
		t.Errorf("MergeSerial cycles = %d, want sum 170", ser.Cycles)
	}
	for _, s := range []*Stats{par, ser} {
		if s.WarpInstrs != 15 || s.EligibleTI != 15*32 {
			t.Errorf("additive counters diverged: %+v", s)
		}
	}
}
