package fault

import (
	"math/rand"
	"testing"

	"warped/internal/isa"
)

func TestStuckAtSemantics(t *testing.T) {
	inj := NewInjector(&Fault{
		Kind: StuckAt, SM: 0, Lane: 3, Unit: isa.UnitSP, Bit: 4, StuckVal: 1,
	})
	// Matching lane: bit 4 forced to 1.
	v, changed := inj.Perturb(0, 10, 3, isa.UnitSP, 0)
	if v != 1<<4 || !changed {
		t.Errorf("stuck-at-1: got %x changed=%v", v, changed)
	}
	// Value already has the bit: no visible corruption.
	v, changed = inj.Perturb(0, 11, 3, isa.UnitSP, 1<<4)
	if v != 1<<4 || changed {
		t.Error("stuck-at matching value should not count as corruption")
	}
	// Wrong lane, unit, or SM: untouched.
	if _, ch := inj.Perturb(0, 12, 4, isa.UnitSP, 0); ch {
		t.Error("wrong lane perturbed")
	}
	if _, ch := inj.Perturb(0, 13, 3, isa.UnitLDST, 0); ch {
		t.Error("wrong unit perturbed")
	}
	if _, ch := inj.Perturb(5, 14, 3, isa.UnitSP, 0); ch {
		t.Error("wrong SM perturbed")
	}
	if inj.Activations != 1 {
		t.Errorf("activations = %d, want 1", inj.Activations)
	}
}

func TestStuckAtZero(t *testing.T) {
	inj := NewInjector(&Fault{Kind: StuckAt, SM: -1, Lane: 0, Unit: isa.UnitSP, Bit: 0, StuckVal: 0})
	v, changed := inj.Perturb(17, 0, 0, isa.UnitSP, 0xFF)
	if v != 0xFE || !changed {
		t.Errorf("stuck-at-0: got %x", v)
	}
	// SM -1 matches any SM.
	if _, ch := inj.Perturb(29, 0, 0, isa.UnitSP, 1); !ch {
		t.Error("wildcard SM did not match")
	}
}

func TestTransientFiresOnce(t *testing.T) {
	inj := NewInjector(&Fault{Kind: Transient, SM: 0, Lane: 1, Unit: isa.UnitSP, Bit: 2, Cycle: 100})
	// Before its cycle: dormant.
	if _, ch := inj.Perturb(0, 50, 1, isa.UnitSP, 0); ch {
		t.Error("transient fired early")
	}
	// At/after the cycle: exactly one flip.
	v, ch := inj.Perturb(0, 150, 1, isa.UnitSP, 0)
	if !ch || v != 1<<2 {
		t.Errorf("transient did not fire: %x %v", v, ch)
	}
	if _, ch := inj.Perturb(0, 151, 1, isa.UnitSP, 0); ch {
		t.Error("transient fired twice")
	}
	// Reset re-arms it.
	inj.Reset()
	if inj.Activations != 0 {
		t.Error("reset did not clear activations")
	}
	if _, ch := inj.Perturb(0, 200, 1, isa.UnitSP, 0); !ch {
		t.Error("reset transient did not re-fire")
	}
}

func TestRandomFaultGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		f := RandomStuckAt(rng, 30)
		if f.SM < 0 || f.SM >= 30 || f.Lane < 0 || f.Lane >= 32 || f.Bit >= 32 {
			t.Fatalf("bad random stuck-at: %+v", f)
		}
		if f.Unit > isa.UnitLDST {
			t.Fatalf("stuck-at on non-execution unit: %v", f.Unit)
		}
		tr := RandomTransient(rng, 30, 1000)
		if tr.Cycle < 0 || tr.Cycle >= 1000 {
			t.Fatalf("bad transient cycle: %d", tr.Cycle)
		}
	}
}

func TestFaultStrings(t *testing.T) {
	f := &Fault{Kind: StuckAt, SM: 1, Lane: 2, Unit: isa.UnitSP, Bit: 3, StuckVal: 1}
	if s := f.String(); s == "" || f.Kind.String() != "stuck-at" {
		t.Error("fault stringers broken")
	}
	tr := &Fault{Kind: Transient, SM: 1, Lane: 2, Unit: isa.UnitSFU, Bit: 3, Cycle: 99}
	if tr.Kind.String() != "transient" || tr.String() == "" {
		t.Error("transient stringer broken")
	}
}

func TestMultipleFaults(t *testing.T) {
	inj := NewInjector(
		&Fault{Kind: StuckAt, SM: -1, Lane: 0, Unit: isa.UnitSP, Bit: 0, StuckVal: 1},
		&Fault{Kind: StuckAt, SM: -1, Lane: 0, Unit: isa.UnitSP, Bit: 1, StuckVal: 1},
	)
	v, ch := inj.Perturb(0, 0, 0, isa.UnitSP, 0)
	if v != 0b11 || !ch {
		t.Errorf("stacked faults: got %b", v)
	}
}
