package fault

import (
	"fmt"

	"warped/internal/isa"
)

// PCInjector flips one output bit at every dynamic execution of one
// static instruction — fault injection addressed by (kernel, PC)
// instead of by hardware location. It exists to cross-validate static
// vulnerability analysis: if verify.AnalyzeVuln classifies a PC as
// unACE, corrupting that PC's result on every execution must leave the
// workload's architectural output (and its figure-visible statistics)
// untouched.
//
// It implements sim.PCFaultHook. The plain Perturb method — the one the
// DMR engine's redundant-execution path calls — is inert: a PC-targeted
// fault corrupts the architectural stream only, so these campaigns run
// with DMR off and measure masking, not detection.
type PCInjector struct {
	Kernel string // kernel name to match; "" matches every kernel
	PC     int    // static instruction index to corrupt
	Lane   int    // physical lane to corrupt; -1 corrupts every lane
	Bit    uint   // output bit to flip, 0..31

	Activations int64 // corruptions actually produced
}

// NewPCInjector targets every lane of one static instruction.
func NewPCInjector(kernel string, pc int, bit uint) *PCInjector {
	return &PCInjector{Kernel: kernel, PC: pc, Lane: -1, Bit: bit}
}

func (inj *PCInjector) String() string {
	return fmt.Sprintf("pc-fault kernel=%s pc=%d lane=%d bit=%d",
		inj.Kernel, inj.PC, inj.Lane, inj.Bit)
}

// PerturbAt implements the PC-targeted half of sim.PCFaultHook.
func (inj *PCInjector) PerturbAt(_ int, _ int64, kernel string, pc, physLane int, _ isa.UnitClass, golden uint32) (uint32, bool) {
	if pc != inj.PC || (inj.Kernel != "" && kernel != inj.Kernel) {
		return golden, false
	}
	if inj.Lane >= 0 && physLane != inj.Lane {
		return golden, false
	}
	inj.Activations++
	return golden ^ 1<<inj.Bit, true
}

// Perturb implements sim.FaultHook and never fires: the redundant
// execution path has no PC identity to match against, so the golden
// value passes through untouched.
func (inj *PCInjector) Perturb(_ int, _ int64, _ int, _ isa.UnitClass, golden uint32) (uint32, bool) {
	return golden, false
}

// Reset clears the activation count so the injector can be reused.
func (inj *PCInjector) Reset() { inj.Activations = 0 }
