package fault

import (
	"testing"

	"warped/internal/isa"
	"warped/internal/sim"
)

// PCInjector must satisfy the simulator's PC-targeted hook so launches
// route the primary execution path through PerturbAt.
var _ sim.PCFaultHook = (*PCInjector)(nil)

func TestPCInjectorTargetsOnePC(t *testing.T) {
	inj := NewPCInjector("k", 7, 3)
	if v, ok := inj.PerturbAt(0, 10, "k", 7, 5, isa.UnitSP, 0); !ok || v != 1<<3 {
		t.Errorf("matching (kernel, pc) must flip bit 3: got %#x, %v", v, ok)
	}
	if v, ok := inj.PerturbAt(0, 10, "k", 6, 5, isa.UnitSP, 0); ok || v != 0 {
		t.Errorf("wrong pc must pass through: got %#x, %v", v, ok)
	}
	if v, ok := inj.PerturbAt(0, 10, "other", 7, 5, isa.UnitSP, 0); ok || v != 0 {
		t.Errorf("wrong kernel must pass through: got %#x, %v", v, ok)
	}
	if inj.Activations != 1 {
		t.Errorf("Activations = %d, want 1", inj.Activations)
	}
	inj.Reset()
	if inj.Activations != 0 {
		t.Errorf("Reset left Activations = %d", inj.Activations)
	}
}

func TestPCInjectorLaneScope(t *testing.T) {
	inj := &PCInjector{Kernel: "k", PC: 0, Lane: 4, Bit: 0}
	if _, ok := inj.PerturbAt(0, 0, "k", 0, 4, isa.UnitSP, 0); !ok {
		t.Error("targeted lane must fire")
	}
	if _, ok := inj.PerturbAt(0, 0, "k", 0, 5, isa.UnitSP, 0); ok {
		t.Error("other lanes must not fire when Lane >= 0")
	}
	all := NewPCInjector("k", 0, 0)
	for lane := 0; lane < 32; lane++ {
		if _, ok := all.PerturbAt(0, 0, "k", 0, lane, isa.UnitSP, 0); !ok {
			t.Fatalf("Lane -1 must fire on lane %d", lane)
		}
	}
}

func TestPCInjectorKernelWildcard(t *testing.T) {
	inj := NewPCInjector("", 2, 31)
	if _, ok := inj.PerturbAt(0, 0, "anything", 2, 0, isa.UnitSFU, 0); !ok {
		t.Error("empty Kernel must match every kernel")
	}
}

func TestPCInjectorPlainPerturbIsInert(t *testing.T) {
	inj := NewPCInjector("k", 0, 0)
	const golden = 0xdeadbeef
	if v, ok := inj.Perturb(0, 0, 0, isa.UnitSP, golden); ok || v != golden {
		t.Errorf("Perturb must pass golden through: got %#x, %v", v, ok)
	}
	if inj.Activations != 0 {
		t.Errorf("inert path counted an activation")
	}
}
