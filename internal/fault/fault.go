// Package fault models hardware faults in the execution units —
// per-lane stuck-at defects and transient single-event upsets — and
// implements the simulator's FaultHook so faults corrupt computed
// values (or effective addresses) exactly where the paper assumes
// errors arise. Memory is ECC-protected and never faults.
//
// The paper evaluates coverage analytically; this package is the
// repository's extension that lets coverage be validated empirically:
// inject a fault, run a workload, and ask whether a Warped-DMR
// comparator flagged it.
package fault

import (
	"fmt"
	"math/rand"

	"warped/internal/isa"
)

// Kind distinguishes fault models.
type Kind int

const (
	// StuckAt permanently forces one output bit of one physical lane.
	StuckAt Kind = iota
	// Transient flips one output bit of one physical lane exactly once,
	// at the first matching execution at or after Cycle.
	Transient
)

func (k Kind) String() string {
	switch k {
	case StuckAt:
		return "stuck-at"
	case Transient:
		return "transient"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one injected hardware defect.
type Fault struct {
	Kind Kind
	SM   int // SM index; -1 matches any SM
	Lane int // physical SIMT lane 0..31
	Unit isa.UnitClass
	Bit  uint // affected output bit 0..31

	// StuckAt only: the value the bit is stuck at (0 or 1).
	StuckVal uint

	// Transient only: earliest cycle at which the upset fires.
	Cycle int64

	fired bool
}

func (f *Fault) String() string {
	if f.Kind == StuckAt {
		return fmt.Sprintf("stuck-at-%d sm=%d lane=%d unit=%s bit=%d",
			f.StuckVal, f.SM, f.Lane, f.Unit, f.Bit)
	}
	return fmt.Sprintf("transient sm=%d lane=%d unit=%s bit=%d cycle>=%d",
		f.SM, f.Lane, f.Unit, f.Bit, f.Cycle)
}

// Injector applies a set of faults; it implements sim.FaultHook.
type Injector struct {
	Faults      []*Fault
	Activations int64 // corruptions actually produced

	// FirstActivation is the cycle of the first corruption (-1 before
	// any), for detection-latency measurements.
	FirstActivation int64
}

// NewInjector wraps the given faults.
func NewInjector(faults ...*Fault) *Injector {
	return &Injector{Faults: faults, FirstActivation: -1}
}

// Perturb applies matching faults to a golden value, reporting whether
// the value changed. Called for every primary and redundant execution.
func (inj *Injector) Perturb(smID int, cycle int64, physLane int, unit isa.UnitClass, golden uint32) (uint32, bool) {
	v := golden
	for _, f := range inj.Faults {
		if f.SM >= 0 && f.SM != smID {
			continue
		}
		if f.Lane != physLane || f.Unit != unit {
			continue
		}
		switch f.Kind {
		case StuckAt:
			if f.StuckVal == 0 {
				v &^= 1 << f.Bit
			} else {
				v |= 1 << f.Bit
			}
		case Transient:
			if !f.fired && cycle >= f.Cycle {
				f.fired = true
				v ^= 1 << f.Bit
			}
		}
	}
	if v != golden {
		if inj.Activations == 0 {
			inj.FirstActivation = cycle
		}
		inj.Activations++
		return v, true
	}
	return golden, false
}

// Reset re-arms transient faults and clears activation counts so the
// injector can be reused across runs.
func (inj *Injector) Reset() {
	inj.Activations = 0
	inj.FirstActivation = -1
	for _, f := range inj.Faults {
		f.fired = false
	}
}

// RandomStuckAt draws a random stuck-at fault on an SP or SFU or LD/ST
// unit of a random SM/lane/bit.
func RandomStuckAt(rng *rand.Rand, numSMs int) *Fault {
	return &Fault{
		Kind:     StuckAt,
		SM:       rng.Intn(numSMs),
		Lane:     rng.Intn(32),
		Unit:     isa.UnitClass(rng.Intn(3)),
		Bit:      uint(rng.Intn(32)),
		StuckVal: uint(rng.Intn(2)),
	}
}

// RandomTransient draws a random one-shot upset that fires somewhere in
// the first maxCycle cycles.
func RandomTransient(rng *rand.Rand, numSMs int, maxCycle int64) *Fault {
	if maxCycle < 1 {
		maxCycle = 1
	}
	return &Fault{
		Kind:  Transient,
		SM:    rng.Intn(numSMs),
		Lane:  rng.Intn(32),
		Unit:  isa.UnitClass(rng.Intn(3)),
		Bit:   uint(rng.Intn(32)),
		Cycle: rng.Int63n(maxCycle),
	}
}
