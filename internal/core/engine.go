package core

import (
	"math/bits"

	"warped/internal/arch"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/metrics"
	"warped/internal/simt"
	"warped/internal/stats"
)

// PerturbPhys is the physical-lane fault hook used for redundant
// executions: given the physical SIMT lane performing the computation,
// the unit class, and the golden value, it returns the value that lane
// actually produces. nil means fault-free hardware.
type PerturbPhys func(physLane int, unit isa.UnitClass, golden uint32) uint32

// ErrorEvent describes a detected mismatch between an original
// execution and its redundant execution.
type ErrorEvent struct {
	SM        int
	Cycle     int64 // issue cycle of the verified instruction
	WarpGID   int
	PC        int
	Thread    int // logical thread slot within the warp
	OrigLane  int // physical lane of the original execution
	VerifLane int // physical lane of the redundant execution
	Original  uint32
	Redundant uint32
	Intra     bool // detected by intra-warp (spatial) DMR
}

// IssueInfo describes one issued warp instruction to the DMR engine.
// Rec may point at a Machine-owned record that is only valid during the
// Issue call; the engine copies it by value before buffering.
type IssueInfo struct {
	Rec     *exec.Record
	WarpGID int       // unique warp identifier within the SM
	Phys    simt.Mask // physical-lane mask of executing lanes
	Width   int       // lanes the warp launched with
	Cycle   int64     // SM cycle of the issue (sampling-DMR epochs)
}

// qEntry is one unverified instruction buffered in the ReplayQ. The
// record is stored by value — the issuing Machine reuses its record on
// the next Step — and info.Rec is re-pointed at it on use.
type qEntry struct {
	info IssueInfo
	rec  exec.Record
}

// issueInfo reconstructs the IssueInfo with Rec pointing at the
// entry's own record copy (entries move when the queue compacts, so
// the pointer is never stored).
func (q *qEntry) issueInfo() IssueInfo {
	info := q.info
	info.Rec = &q.rec
	return info
}

// ReplayQEntryBytes is the storage for one ReplayQ entry: 32 lanes x 3
// source operands x 4 bytes, plus 32 lanes x 4 bytes of original
// results, plus 2-4 bytes of opcode — 514..516 bytes (paper §4.3.1).
const ReplayQEntryBytes = 32*3*4 + 32*4 + 3

// Engine is the per-SM Warped-DMR machinery: the RFU pairing logic for
// intra-warp DMR and the Replay Checker + ReplayQ for inter-warp DMR.
type Engine struct {
	cfg     arch.Config
	smID    int
	st      *stats.Stats
	table   *PriorityTable
	perturb PerturbPhys
	onError func(ErrorEvent)
	met     *metrics.DMR // never nil; built from a nil registry by default

	// policy gates which eligible instructions are verified. nil means
	// protect everything (PolicyFull) with zero per-issue cost — the
	// common case never pays an interface call.
	policy ProtectionPolicy

	intra bool
	inter bool
	dmtr  bool

	// laneFor/threadFor pre-resolve the configured thread<->lane mapping
	// so the per-replay path avoids copying arch.Config per call.
	laneFor   [32]uint8 // thread slot -> physical lane
	threadFor [32]uint8 // physical lane -> thread slot

	q          []qEntry
	pendingEnt qEntry // instruction "in RF" awaiting the DEC-stage type compare
	hasPending bool
	phase      int // lane-shuffle rotation phase

	pairBuf [32]Pairing // scratch for intra-warp RFU pairing
}

// NewEngine builds the DMR engine for SM smID. st must not be nil;
// perturb and onError may be nil.
func NewEngine(cfg arch.Config, smID int, st *stats.Stats, perturb PerturbPhys, onError func(ErrorEvent)) *Engine {
	e := &Engine{
		cfg:     cfg,
		smID:    smID,
		st:      st,
		table:   NewPriorityTable(cfg.ClusterSize),
		perturb: perturb,
		onError: onError,
		intra:   cfg.DMR == arch.DMRIntra || cfg.DMR == arch.DMRFull,
		inter:   cfg.DMR == arch.DMRInter || cfg.DMR == arch.DMRFull,
		dmtr:    cfg.DMR == arch.DMRTemporalAll,
		met:     metrics.ForDMR(nil, cfg.WarpSize, cfg.ClusterSize),
		policy:  CompilePolicy(cfg.Policy, ""),
	}
	if cfg.ReplayQSize > 0 {
		e.q = make([]qEntry, 0, cfg.ReplayQSize)
	}
	for t := 0; t < 32; t++ {
		e.laneFor[t] = uint8(cfg.LaneForThread(t))
		e.threadFor[t] = uint8(cfg.ThreadForLane(t))
	}
	return e
}

// SetMetrics points the engine at a pre-resolved DMR instrument set
// (see internal/metrics.ForDMR). Passing nil restores the default
// no-op set. Call before the first Issue.
func (e *Engine) SetMetrics(m *metrics.DMR) {
	if m == nil {
		m = metrics.ForDMR(nil, e.cfg.WarpSize, e.cfg.ClusterSize)
	}
	e.met = m
}

// SetPolicy installs the launch-resolved protection policy (see
// CompilePolicy). NewEngine compiles cfg.Policy against an empty kernel
// name; callers that know the kernel (the simulator does) re-resolve
// per launch so PolicyPerKernel sees the real name. nil protects
// everything. Call before the first Issue.
func (e *Engine) SetPolicy(p ProtectionPolicy) { e.policy = p }

// noteQueueDepth publishes the current ReplayQ occupancy.
func (e *Engine) noteQueueDepth() { e.met.ReplayQDepth.Set(int64(len(e.q))) }

// QueueLen returns the current ReplayQ occupancy.
func (e *Engine) QueueLen() int { return len(e.q) }

// QueueSizeBytes returns the ReplayQ storage in bytes for the
// configured entry count (paper: 10 entries ~ 5 KB, 4% of a 128 KB RF).
func (e *Engine) QueueSizeBytes() int { return e.cfg.ReplayQSize * ReplayQEntryBytes }

// setPending buffers the issued instruction as the pending (RF-stage)
// entry, copying the record out of the Machine-owned slot.
func (e *Engine) setPending(info IssueInfo) {
	e.pendingEnt.rec = *info.Rec
	info.Rec = nil // entries never store the caller's pointer
	e.pendingEnt.info = info
	e.hasPending = true
}

// computable reports whether an instruction's result can be recomputed
// by a redundant lane (i.e. it is a DMR target).
func computable(op isa.Opcode) bool {
	// Control ops (BRA/BAR/EXIT) plus NOP and the predicate-file ops
	// have no lane value to recompute; everything else — including
	// LD/ST/ATOM, whose effective address is the verified value — does.
	return op.Unit() != isa.UnitCTRL &&
		op != isa.OpNOP && op != isa.OpPAND && op != isa.OpPNOT
}

// IdleCycle informs the engine that the SM issued nothing at cycle now.
// All execution units are idle: the pending instruction (if any) is
// verified for free, and every unit class may drain one ReplayQ entry.
func (e *Engine) IdleCycle(now int64) {
	var used [3]bool
	if e.hasPending {
		used[e.pendingEnt.rec.Unit] = true
		e.hasPending = false
		e.verify(e.pendingEnt.issueInfo(), now)
		e.st.ReplayCoexec++
		e.met.CoexecReplays.Inc()
	}
	e.drainIdleUnits(used, now)
}

// drainIdleUnits re-executes, for each unit class not marked used this
// cycle, the oldest buffered instruction of that class — the paper's
// "dequeued and re-executed whenever the corresponding execution unit
// becomes available" (§3.2). Controlled by the IdleDrain ablation knob.
func (e *Engine) drainIdleUnits(used [3]bool, now int64) {
	if !e.cfg.IdleDrain || len(e.q) == 0 {
		return
	}
	for i := 0; i < len(e.q); {
		u := e.q[i].rec.Unit
		if used[u] {
			i++
			continue
		}
		used[u] = true
		ent := e.q[i]
		e.q = append(e.q[:i], e.q[i+1:]...)
		e.noteQueueDepth()
		e.verify(ent.issueInfo(), now)
		e.st.ReplayIdleDrain++
		e.met.IdleDrainReplays.Inc()
		if used[0] && used[1] && used[2] {
			return
		}
	}
}

// Issue processes one issued warp instruction and returns the number of
// stall cycles the SM must charge (ReplayQ-full eager re-execution or
// RAW-on-unverified verification stalls).
func (e *Engine) Issue(info IssueInfo) (stall int) {
	rec := info.Rec
	if e.cfg.DMR == arch.DMROff {
		return 0
	}

	// Control instructions occupy no SP/SFU/LDST unit: the pending
	// instruction's unit is idle next cycle, verifying it for free.
	if rec.Unit == isa.UnitCTRL || !computable(rec.Instr.Op) {
		if e.hasPending {
			e.hasPending = false
			e.verify(e.pendingEnt.issueInfo(), info.Cycle)
			e.st.ReplayCoexec++
			e.met.CoexecReplays.Inc()
		}
		return 0
	}

	eligible := int64(rec.Executing.Count())
	e.st.EligibleTI += eligible

	// Sampling DMR: outside the sampled window, resolve whatever is in
	// flight and stop verifying new work (transients there are missed).
	if p := e.cfg.SamplePeriod; p > 0 && info.Cycle%p >= e.cfg.SampleOn {
		if e.hasPending {
			stall += e.resolvePending(rec.Unit, &[3]bool{}, info.Cycle)
		}
		return stall
	}

	// Selective protection: the policy decides from pre-computed facts
	// whether this instruction is verified. Skipped instructions stay in
	// EligibleTI, so Coverage() reports what the policy actually bought.
	if e.policy != nil && !e.policy.Protect(PolicyFacts{WarpGID: info.WarpGID, PC: rec.PC, Active: int(eligible)}) {
		e.st.SkippedTI += eligible
		e.met.PolicySkipped.Add(eligible)
		if e.hasPending {
			stall += e.resolvePending(rec.Unit, &[3]bool{}, info.Cycle)
		}
		return stall
	}
	e.st.ProtectedTI += eligible
	e.met.PolicyProtected.Add(eligible)

	// RAW on unverified results: a consumer may not read a value whose
	// producer is still buffered in the ReplayQ. Verify such producers
	// now, one stall cycle each (paper §4.3).
	if e.inter || e.dmtr {
		stall += e.verifyRAWProducers(info)
	}

	// A warp is fully utilized only when all hardware lanes execute;
	// blocks narrower than the warp width always leave physical lanes
	// idle, so they stay in intra-warp DMR territory.
	fullMask := simt.FullMask(e.cfg.WarpSize)
	isFull := rec.Executing == rec.Active && rec.Active == fullMask

	// Resolve the pending (RF-stage) instruction against this one
	// (DEC-stage): Algorithm 1. Track which unit classes perform a
	// redundant execution this cycle; the rest may drain the ReplayQ.
	var used [3]bool
	used[rec.Unit] = true // busy with the primary execution
	if e.hasPending {
		stall += e.resolvePending(rec.Unit, &used, info.Cycle)
	}
	e.drainIdleUnits(used, info.Cycle)

	switch {
	case e.dmtr:
		// DMTR baseline: every instruction is replayed in the following
		// cycle regardless of utilization; no ReplayQ.
		e.setPending(info)
	case isFull && e.inter:
		e.setPending(info)
	case !isFull && e.intra:
		e.intraWarp(info)
	}
	return stall
}

// resolvePending applies the Replay Checker decision for the pending
// instruction given the unit type of the instruction right behind it,
// marking any unit class it occupies with a redundant execution.
func (e *Engine) resolvePending(curUnit isa.UnitClass, used *[3]bool, now int64) (stall int) {
	p := &e.pendingEnt
	e.hasPending = false
	pUnit := p.rec.Unit

	if pUnit != curUnit {
		// Different types: the pending instruction's unit is idle next
		// cycle; co-execute its DMR copy for free.
		used[pUnit] = true
		e.verify(p.issueInfo(), now+1)
		e.st.ReplayCoexec++
		e.met.CoexecReplays.Inc()
		return 0
	}
	// Same type: try to swap with a different-type ReplayQ entry.
	if !e.dmtr {
		for i := range e.q {
			u := e.q[i].rec.Unit
			if u != pUnit && !used[u] {
				ent := e.q[i]
				e.q = append(e.q[:i], e.q[i+1:]...)
				e.q = append(e.q, *p)
				e.st.ReplayEnq++
				e.noteEnqueue()
				used[u] = true
				e.verify(ent.issueInfo(), now+1)
				e.st.ReplayCoexec++
				e.met.CoexecReplays.Inc()
				return 0
			}
		}
		if len(e.q) < e.cfg.ReplayQSize {
			e.q = append(e.q, *p)
			e.st.ReplayEnq++
			e.noteEnqueue()
			return 0
		}
	}
	// ReplayQ full (or absent): eager re-execution with a one-cycle
	// pipeline stall, reusing operands still live in the pipeline.
	e.verify(p.issueInfo(), now+1)
	e.st.StallReplayQFull++
	e.met.OverflowStalls.Inc()
	return 1
}

// noteEnqueue publishes a ReplayQ enqueue: the occupancy gauge and the
// occupancy-at-enqueue histogram, plus the running enqueue total.
func (e *Engine) noteEnqueue() {
	e.met.ReplayQEnqueued.Inc()
	e.met.ReplayQDepthHist.Observe(int64(len(e.q)))
	e.noteQueueDepth()
}

// verifyRAWProducers flushes ReplayQ entries whose destination register
// is read by the incoming instruction of the same warp.
func (e *Engine) verifyRAWProducers(info IssueInfo) (stall int) {
	if len(e.q) == 0 {
		return 0
	}
	reads := info.Rec.SrcRegs()
	if len(reads) == 0 {
		return 0
	}
	hits := func(ent *qEntry) bool {
		if ent.info.WarpGID != info.WarpGID || !ent.rec.DstValid {
			return false
		}
		for _, r := range reads {
			if r == ent.rec.Dst {
				return true
			}
		}
		return false
	}
	// Fast path: no RAW hazard buffered (the common case) — leave the
	// queue untouched instead of copying every entry through compaction.
	first := -1
	for i := range e.q {
		if hits(&e.q[i]) {
			first = i
			break
		}
	}
	if first < 0 {
		return 0
	}
	kept := e.q[:first]
	for i := first; i < len(e.q); i++ {
		ent := &e.q[i]
		if hits(ent) {
			e.verify(ent.issueInfo(), info.Cycle)
			e.st.StallRAWUnverif++
			e.met.RAWFlushStalls.Inc()
			stall++
		} else {
			kept = append(kept, *ent)
		}
	}
	e.q = kept
	e.noteQueueDepth()
	return stall
}

// Drain verifies the pending instruction and every buffered entry at
// kernel completion (starting at cycle `at`), returning the cycles
// consumed — one per replay, on the now-idle units.
func (e *Engine) Drain(at int64) (cycles int) {
	if e.hasPending {
		cycles++
		e.hasPending = false
		e.verify(e.pendingEnt.issueInfo(), at+int64(cycles))
		e.st.ReplayCoexec++
		e.met.CoexecReplays.Inc()
	}
	for i := range e.q {
		cycles++
		e.verify(e.q[i].issueInfo(), at+int64(cycles))
		e.st.ReplayIdleDrain++
		e.met.IdleDrainReplays.Inc()
	}
	e.q = e.q[:0]
	e.noteQueueDepth()
	return cycles
}

// intraWarp performs spatial DMR for a partially-utilized warp: idle
// lanes re-execute active lanes' computations via the RFU pairing.
func (e *Engine) intraWarp(info IssueInfo) {
	rec := info.Rec
	if rec.Executing == 0 {
		return
	}
	pairs, covered := e.table.PairWarpInto(info.Phys, e.cfg.WarpSize, e.pairBuf[:0])
	e.st.VerifiedIntra += int64(covered)
	e.st.RedundantOps[rec.Unit] += int64(len(pairs))
	e.met.IntraVerified.Add(int64(covered))
	e.met.RFUPairings.Add(int64(len(pairs)))
	e.met.RFUCoveredLanes.Add(int64(covered))
	if missed := info.Phys.Count() - covered; missed > 0 {
		e.met.RFUMissedLanes.Add(int64(missed))
	}
	for _, p := range pairs {
		if c := p.Active / e.cfg.ClusterSize; c < len(e.met.ClusterPairings) {
			e.met.ClusterPairings[c].Inc()
		}
	}
	for _, p := range pairs {
		thread := int(e.threadFor[p.Active])
		golden, ok := rec.Recompute(rec.SrcVals[0][thread], rec.SrcVals[1][thread], rec.SrcVals[2][thread])
		if !ok {
			continue
		}
		red := golden
		if e.perturb != nil {
			red = e.perturb(p.Idle, rec.Unit, golden)
		}
		if red != rec.Vals[thread] {
			e.st.FaultsDetected++
			e.met.Detections.Inc()
			e.met.DetectionLatency.Observe(0) // spatial DMR verifies in the issue cycle
			if e.onError != nil {
				e.onError(ErrorEvent{
					SM: e.smID, Cycle: info.Cycle, WarpGID: info.WarpGID, PC: rec.PC, Thread: thread,
					OrigLane: p.Active, VerifLane: p.Idle,
					Original: rec.Vals[thread], Redundant: red, Intra: true,
				})
			}
		}
	}
}

// verify performs the temporal redundant execution of a buffered or
// pending instruction, with lane shuffling so the replay runs on a
// different physical lane than the original (hidden-error avoidance).
func (e *Engine) verify(info IssueInfo, at int64) {
	rec := info.Rec
	if at < info.Cycle {
		at = info.Cycle
	}
	e.phase++
	nexec := int64(rec.Executing.Count())
	e.st.VerifiedInter += nexec
	e.st.RedundantOps[rec.Unit] += nexec
	e.met.InterVerified.Add(nexec)
	e.met.VerifyLatency.Observe(at - info.Cycle)
	// Hoist the lane-shuffle rotation out of the per-lane loop: the
	// phase (and hence ShuffleLane's result per lane) is fixed for the
	// whole replay, and cluster sizes are powers of two.
	shuffle := e.cfg.LaneShuffle && e.cfg.ClusterSize > 1
	var rot, cmask int
	if shuffle {
		cmask = e.cfg.ClusterSize - 1
		rot = 1 + e.phase%(e.cfg.ClusterSize-1)
	}
	for rem := uint32(rec.Executing); rem != 0; rem &= rem - 1 {
		thread := bits.TrailingZeros32(rem)
		orig := int(e.laneFor[thread])
		verif := orig
		if shuffle {
			base := orig &^ cmask
			verif = base + (orig-base+rot)&cmask
		}
		if verif < len(e.met.ShuffleLaneUsed) {
			e.met.ShuffleLaneUsed[verif].Inc()
		}
		golden, ok := rec.Recompute(rec.SrcVals[0][thread], rec.SrcVals[1][thread], rec.SrcVals[2][thread])
		if !ok {
			continue
		}
		red := golden
		if e.perturb != nil {
			red = e.perturb(verif, rec.Unit, golden)
		}
		if red != rec.Vals[thread] {
			e.st.FaultsDetected++
			e.met.Detections.Inc()
			e.met.DetectionLatency.Observe(at - info.Cycle)
			if e.onError != nil {
				e.onError(ErrorEvent{
					SM: e.smID, Cycle: at, WarpGID: info.WarpGID, PC: rec.PC, Thread: thread,
					OrigLane: orig, VerifLane: verif,
					Original: rec.Vals[thread], Redundant: red,
				})
			}
		}
	}
}
