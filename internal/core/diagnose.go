package core

import (
	"fmt"
	"sort"
)

// Diagnoser attributes detected mismatches to a physical SP lane.
//
// Warped-DMR's advantage over SM- or chip-level checking (paper §3.4)
// is detection at individual-SP granularity: with a diagnosis step, a
// permanently faulty SP can be isolated and routed around instead of
// disabling the whole SM. Every mismatch implicates exactly two lanes —
// the original and the (shuffled) verifier — and because the shuffle
// rotation varies, the genuinely faulty lane appears in *every* event
// for its SM while its innocent partners vary. Counting appearances
// therefore converges on the culprit after a handful of detections.
type Diagnoser struct {
	// MinEvents is how many detections are needed before Suspect will
	// commit to an answer (default 4).
	MinEvents int

	counts map[[2]int]int // (sm, lane) -> implications
	events int
}

// NewDiagnoser creates a diagnoser; feed it ErrorEvents via Observe.
func NewDiagnoser() *Diagnoser {
	return &Diagnoser{MinEvents: 4, counts: make(map[[2]int]int)}
}

// Observe records one detected mismatch.
func (d *Diagnoser) Observe(ev ErrorEvent) {
	d.events++
	d.counts[[2]int{ev.SM, ev.OrigLane}]++
	if ev.VerifLane != ev.OrigLane {
		d.counts[[2]int{ev.SM, ev.VerifLane}]++
	}
}

// Events returns how many mismatches have been observed.
func (d *Diagnoser) Events() int { return d.events }

// Suspect returns the most-implicated (SM, lane) pair. confident is
// true when enough events accumulated and the leader is implicated in
// a clear majority of them — the precondition for re-routing the lane.
func (d *Diagnoser) Suspect() (sm, lane int, confident bool) {
	if len(d.counts) == 0 {
		return 0, 0, false
	}
	type entry struct {
		key   [2]int
		count int
	}
	var es []entry
	for k, c := range d.counts {
		es = append(es, entry{k, c})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].count != es[j].count {
			return es[i].count > es[j].count
		}
		return es[i].key[0]*64+es[i].key[1] < es[j].key[0]*64+es[j].key[1]
	})
	top := es[0]
	confident = d.events >= d.MinEvents && top.count*3 >= d.events*2 &&
		(len(es) == 1 || top.count > es[1].count)
	return top.key[0], top.key[1], confident
}

// Report renders the implication histogram for operators.
func (d *Diagnoser) Report() string {
	sm, lane, conf := d.Suspect()
	verdict := "inconclusive"
	if conf {
		verdict = fmt.Sprintf("faulty lane: SM %d lane %d (re-route candidate)", sm, lane)
	}
	return fmt.Sprintf("diagnoser: %d events, %d implicated lanes, %s",
		d.events, len(d.counts), verdict)
}
