package core

import (
	"testing"
	"testing/quick"

	"warped/internal/arch"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/simt"
	"warped/internal/stats"
)

// TestPriorityTableMatchesPaper checks the 4-lane table against the
// paper's Table 1, verbatim.
func TestPriorityTableMatchesPaper(t *testing.T) {
	want := [4][4]int{
		{0, 1, 2, 3}, // MUX0
		{1, 0, 3, 2}, // MUX1
		{2, 3, 0, 1}, // MUX2
		{3, 2, 1, 0}, // MUX3
	}
	pt := NewPriorityTable(4)
	for mux := 0; mux < 4; mux++ {
		for prio := 0; prio < 4; prio++ {
			if got := pt.Order(mux)[prio]; got != want[mux][prio] {
				t.Errorf("MUX%d priority %d = %d, want %d (paper Table 1)",
					mux, prio+1, got, want[mux][prio])
			}
		}
	}
}

func TestPriorityTableFirstPriorityIsSelf(t *testing.T) {
	for _, size := range []int{2, 4, 8, 16} {
		pt := NewPriorityTable(size)
		for mux := 0; mux < size; mux++ {
			if pt.Order(mux)[0] != mux {
				t.Errorf("size %d MUX%d first priority is %d, not itself",
					size, mux, pt.Order(mux)[0])
			}
		}
	}
}

func TestPriorityTableRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cluster size 3")
		}
	}()
	NewPriorityTable(3)
}

func TestPairClusterExamples(t *testing.T) {
	pt := NewPriorityTable(4)
	cases := []struct {
		busy    uint32
		pairs   map[int]int // idle mux -> verified lane
		covered int
	}{
		// The paper's Fig. 6 example: active mask 0011 -> lanes 2,3 DMR lanes 0,1.
		{0b0011, map[int]int{2: 0, 3: 1}, 2},
		// One active lane: all three idle lanes redundantly execute it
		// (more than dual redundancy, explicitly allowed by the paper).
		{0b0001, map[int]int{1: 0, 2: 0, 3: 0}, 1},
		// Alternating lanes.
		{0b0101, map[int]int{1: 0, 3: 2}, 2},
		{0b1010, map[int]int{0: 1, 2: 3}, 2},
		// Three active: the single idle MUX covers one of them.
		{0b0111, map[int]int{3: 2}, 1},
		// Full or empty cluster: nothing to pair.
		{0b1111, nil, 0},
		{0b0000, nil, 0},
	}
	for _, c := range cases {
		pairs := pt.PairCluster(c.busy)
		if len(pairs) != len(c.pairs) {
			t.Errorf("busy %04b: %d pairings, want %d", c.busy, len(pairs), len(c.pairs))
			continue
		}
		covered := map[int]bool{}
		for _, p := range pairs {
			if want, ok := c.pairs[p.Idle]; !ok || want != p.Active {
				t.Errorf("busy %04b: MUX%d verifies lane %d, want %v", c.busy, p.Idle, p.Active, c.pairs)
			}
			covered[p.Active] = true
		}
		if len(covered) != c.covered {
			t.Errorf("busy %04b: covered %d lanes, want %d", c.busy, len(covered), c.covered)
		}
	}
}

// Property: pairings are always idle-verifies-busy, and any cluster
// with at least one busy and one idle lane gets at least one pairing.
func TestPairClusterPropertiesQuick(t *testing.T) {
	for _, size := range []int{4, 8} {
		pt := NewPriorityTable(size)
		full := uint32(1)<<size - 1
		f := func(busyRaw uint32) bool {
			busy := busyRaw & full
			pairs := pt.PairCluster(busy)
			for _, p := range pairs {
				if busy&(1<<p.Idle) != 0 {
					return false // verifier must be idle
				}
				if busy&(1<<p.Active) == 0 {
					return false // verified lane must be busy
				}
			}
			hasBusy := busy != 0
			hasIdle := busy != full
			if hasBusy && hasIdle && len(pairs) == 0 {
				return false // opportunity wasted
			}
			// Every idle lane must find a partner when any lane is busy.
			if hasBusy && len(pairs) != size-popcount(busy) {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestPairWarpCoversAcrossClusters(t *testing.T) {
	pt := NewPriorityTable(4)
	// 16 contiguous lanes active: clusters 0-3 full (uncoverable),
	// 4-7 idle (no work).
	pairs, covered := pt.PairWarp(simt.Mask(0x0000FFFF), 32)
	if len(pairs) != 0 || covered != 0 {
		t.Errorf("contiguous half-warp: pairs=%d covered=%d, want 0,0 (cluster-locality limit)",
			len(pairs), covered)
	}
	// Same 16 threads spread 2-per-cluster: fully coverable.
	var spread simt.Mask
	for c := 0; c < 8; c++ {
		spread |= 0b0011 << uint(4*c)
	}
	_, covered = pt.PairWarp(spread, 32)
	if covered != 16 {
		t.Errorf("spread half-warp covered %d, want 16", covered)
	}
}

func TestShuffleLane(t *testing.T) {
	for phase := 0; phase < 10; phase++ {
		for lane := 0; lane < 32; lane++ {
			v := ShuffleLane(lane, 4, phase)
			if v == lane {
				t.Fatalf("phase %d: lane %d shuffled to itself (hidden-error hazard)", phase, lane)
			}
			if v/4 != lane/4 {
				t.Fatalf("phase %d: lane %d shuffled outside its cluster to %d", phase, lane, v)
			}
		}
	}
	// Cluster size 1 has nowhere to shuffle to.
	if ShuffleLane(5, 1, 3) != 5 {
		t.Error("cluster size 1 must return the original lane")
	}
}

// --- Engine tests ---

func fullRec(op isa.Opcode, dst isa.Reg, srcs ...isa.Reg) *exec.Record {
	in := &isa.Instr{Op: op, Dst: dst, Pred: isa.AlwaysPred()}
	for i, s := range srcs {
		in.Src[i] = isa.RegOp(s)
	}
	rec := &exec.Record{
		Instr: in, Unit: op.Unit(),
		Active: simt.FullMask(32), Executing: simt.FullMask(32),
		DstValid: op.HasDst(), Dst: dst,
	}
	return rec
}

func partialRec(op isa.Opcode, mask simt.Mask) *exec.Record {
	in := &isa.Instr{Op: op, Pred: isa.AlwaysPred(), Dst: 1}
	return &exec.Record{
		Instr: in, Unit: op.Unit(),
		Active: mask, Executing: mask,
		DstValid: op.HasDst(), Dst: 1,
	}
}

func newEngine(t *testing.T, mut func(*arch.Config)) (*Engine, *stats.Stats) {
	t.Helper()
	cfg := arch.WarpedDMRConfig()
	if mut != nil {
		mut(&cfg)
	}
	st := &stats.Stats{}
	return NewEngine(cfg, 0, st, nil, nil), st
}

func TestEngineOffDoesNothing(t *testing.T) {
	e, st := newEngine(t, func(c *arch.Config) { c.DMR = arch.DMROff })
	for i := 0; i < 10; i++ {
		if s := e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 1, 2, 3), WarpGID: 1, Phys: simt.FullMask(32), Width: 32}); s != 0 {
			t.Fatal("DMR-off engine stalled")
		}
	}
	if st.EligibleTI != 0 || st.VerifiedInter != 0 {
		t.Error("DMR-off engine recorded verifications")
	}
}

func TestEngineTypeSwitchCoexecutesFree(t *testing.T) {
	e, st := newEngine(t, nil)
	// SP then LDST: the SP instruction verifies for free next cycle.
	if s := e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 1), WarpGID: 1, Phys: simt.FullMask(32), Width: 32}); s != 0 {
		t.Fatal("first issue stalled")
	}
	ld := fullRec(isa.OpLD, 2, 3)
	ld.IsMem = true
	if s := e.Issue(IssueInfo{Rec: ld, WarpGID: 1, Phys: simt.FullMask(32), Width: 32}); s != 0 {
		t.Fatal("type switch must not stall")
	}
	if st.ReplayCoexec != 1 {
		t.Errorf("coexec = %d, want 1", st.ReplayCoexec)
	}
	if st.VerifiedInter != 32 {
		t.Errorf("verified = %d, want 32", st.VerifiedInter)
	}
	if e.QueueLen() != 0 {
		t.Error("queue should be empty")
	}
}

func TestEngineSameTypeEnqueues(t *testing.T) {
	e, st := newEngine(t, nil)
	w := func() IssueInfo {
		return IssueInfo{Rec: fullRec(isa.OpIADD, 1), WarpGID: 1, Phys: simt.FullMask(32), Width: 32}
	}
	e.Issue(w())
	e.Issue(w()) // same type: first one must be buffered
	if e.QueueLen() != 1 || st.ReplayEnq != 1 {
		t.Errorf("queue=%d enq=%d, want 1,1", e.QueueLen(), st.ReplayEnq)
	}
}

func TestEngineFullQueueStalls(t *testing.T) {
	e, st := newEngine(t, func(c *arch.Config) { c.ReplayQSize = 2; c.IdleDrain = false })
	w := func(dst isa.Reg) IssueInfo {
		return IssueInfo{Rec: fullRec(isa.OpIADD, dst), WarpGID: 1, Phys: simt.FullMask(32), Width: 32}
	}
	stalls := 0
	// A long same-type burst with a tiny queue must hit the eager
	// re-execution stall path once the queue fills.
	for i := 0; i < 10; i++ {
		stalls += e.Issue(w(isa.Reg(10 + i%4)))
	}
	if stalls == 0 || st.StallReplayQFull == 0 {
		t.Errorf("burst produced no stalls (stalls=%d counter=%d)", stalls, st.StallReplayQFull)
	}
	if e.QueueLen() > 2 {
		t.Errorf("queue grew past capacity: %d", e.QueueLen())
	}
}

func TestEngineQueueNeverExceedsCapacityQuick(t *testing.T) {
	ops := []isa.Opcode{isa.OpIADD, isa.OpFMUL, isa.OpLD, isa.OpFSIN, isa.OpST}
	f := func(seq []uint8, qsize uint8) bool {
		cap := int(qsize % 12)
		cfg := arch.WarpedDMRConfig()
		cfg.ReplayQSize = cap
		st := &stats.Stats{}
		e := NewEngine(cfg, 0, st, nil, nil)
		for i, b := range seq {
			op := ops[int(b)%len(ops)]
			rec := fullRec(op, isa.Reg(int(b)%8), isa.Reg(8+i%8))
			if op == isa.OpLD || op == isa.OpST {
				rec.IsMem = true
			}
			e.Issue(IssueInfo{Rec: rec, WarpGID: i % 4, Phys: simt.FullMask(32), Width: 32})
			if e.QueueLen() > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEngineRAWForcesVerification(t *testing.T) {
	e, st := newEngine(t, func(c *arch.Config) { c.IdleDrain = false })
	// Producer writes r5 and gets buffered (same-type follower).
	prod := fullRec(isa.OpIADD, 5, 1, 2)
	e.Issue(IssueInfo{Rec: prod, WarpGID: 7, Phys: simt.FullMask(32), Width: 32})
	e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 6, 1, 2), WarpGID: 7, Phys: simt.FullMask(32), Width: 32})
	if e.QueueLen() != 1 {
		t.Fatalf("producer not buffered (queue=%d)", e.QueueLen())
	}
	// Consumer reads r5 in the same warp: must stall and flush it.
	cons := fullRec(isa.OpIADD, 8, 5, 1)
	stall := e.Issue(IssueInfo{Rec: cons, WarpGID: 7, Phys: simt.FullMask(32), Width: 32})
	if stall == 0 || st.StallRAWUnverif != 1 {
		t.Errorf("RAW on unverified producer: stall=%d counter=%d", stall, st.StallRAWUnverif)
	}
	// A different warp reading r5 must NOT trigger the flush.
	e2, st2 := newEngine(t, func(c *arch.Config) { c.IdleDrain = false })
	e2.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 5, 1, 2), WarpGID: 7, Phys: simt.FullMask(32), Width: 32})
	e2.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 6, 1, 2), WarpGID: 7, Phys: simt.FullMask(32), Width: 32})
	e2.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 8, 5, 1), WarpGID: 9, Phys: simt.FullMask(32), Width: 32})
	if st2.StallRAWUnverif != 0 {
		t.Error("cross-warp read flushed another warp's producer")
	}
}

func TestEngineIdleCycleDrains(t *testing.T) {
	e, st := newEngine(t, nil)
	e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 1), WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 2), WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	// One entry queued + one pending. Two idle cycles clear both.
	e.IdleCycle(100)
	e.IdleCycle(100)
	if e.QueueLen() != 0 {
		t.Errorf("queue not drained on idle: %d", e.QueueLen())
	}
	if st.VerifiedInter != 64 {
		t.Errorf("verified = %d, want 64", st.VerifiedInter)
	}
}

func TestEngineDrainAtKernelEnd(t *testing.T) {
	e, st := newEngine(t, nil)
	for i := 0; i < 5; i++ {
		e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, isa.Reg(i)), WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	}
	cycles := e.Drain(100)
	if cycles == 0 {
		t.Error("drain consumed no cycles")
	}
	if e.QueueLen() != 0 {
		t.Error("drain left entries behind")
	}
	// Every one of the 5 instructions must be verified by now.
	if st.VerifiedInter != 5*32 {
		t.Errorf("verified = %d, want %d", st.VerifiedInter, 5*32)
	}
}

func TestEngineIntraWarpCoverage(t *testing.T) {
	e, st := newEngine(t, func(c *arch.Config) { c.Mapping = arch.MapLinear })
	// 2 active lanes per cluster: every active lane coverable.
	var mask simt.Mask
	for c := 0; c < 8; c++ {
		mask |= 0b0101 << uint(4*c)
	}
	e.Issue(IssueInfo{Rec: partialRec(isa.OpIADD, mask), WarpGID: 1, Phys: mask, Width: 32})
	if st.VerifiedIntra != 16 {
		t.Errorf("intra verified = %d, want 16", st.VerifiedIntra)
	}
	if st.EligibleTI != 16 {
		t.Errorf("eligible = %d, want 16", st.EligibleTI)
	}
	// Partial warps must not enter the ReplayQ (paper §4.3).
	if e.QueueLen() != 0 {
		t.Error("partial warp entered the ReplayQ")
	}
}

func TestEngineCoverageFormula(t *testing.T) {
	// Paper §3.3: with active <= half the warp, coverage is 100%;
	// the RR mapping realizes this for contiguous masks.
	e, st := newEngine(t, nil) // clusterRR
	logical := simt.FullMask(16)
	cfg := arch.WarpedDMRConfig()
	var phys simt.Mask
	for th := 0; th < 16; th++ {
		phys |= 1 << uint(cfg.LaneForThread(th))
	}
	e.Issue(IssueInfo{Rec: partialRec(isa.OpIADD, logical), WarpGID: 1, Phys: phys, Width: 32})
	if st.VerifiedIntra != 16 {
		t.Errorf("16 contiguous threads under RR: verified %d, want 16", st.VerifiedIntra)
	}
}

func TestEngineDMTRReplaysEverything(t *testing.T) {
	e, st := newEngine(t, func(c *arch.Config) { c.DMR = arch.DMRTemporalAll })
	half := simt.Mask(0x0000FFFF)
	e.Issue(IssueInfo{Rec: partialRec(isa.OpIADD, half), WarpGID: 1, Phys: half, Width: 32})
	stall := e.Issue(IssueInfo{Rec: partialRec(isa.OpIADD, half), WarpGID: 1, Phys: half, Width: 32})
	// DMTR has no queue: same-type back-to-back must stall.
	if stall != 1 || st.StallReplayQFull != 1 {
		t.Errorf("DMTR same-type: stall=%d counter=%d, want 1,1", stall, st.StallReplayQFull)
	}
	if st.VerifiedIntra != 0 {
		t.Error("DMTR must not use intra-warp DMR")
	}
	if st.VerifiedInter != 16 {
		t.Errorf("DMTR verified %d, want 16 (first instr replayed)", st.VerifiedInter)
	}
}

func TestEngineDetectsInjectedFault(t *testing.T) {
	cfg := arch.WarpedDMRConfig()
	st := &stats.Stats{}
	var events []ErrorEvent
	// Fault: physical lane 2 flips bit 0 of every SP result.
	perturb := func(lane int, unit isa.UnitClass, golden uint32) uint32 {
		if lane == 2 && unit == isa.UnitSP {
			return golden ^ 1
		}
		return golden
	}
	e := NewEngine(cfg, 0, st, perturb, func(ev ErrorEvent) { events = append(events, ev) })

	// Build a full-warp iadd whose recorded Vals are the FAULTED originals
	// for threads mapped to lane 2.
	rec := fullRec(isa.OpIADD, 1, 2, 3)
	for th := 0; th < 32; th++ {
		rec.SrcVals[0][th] = uint32(th)
		rec.SrcVals[1][th] = 100
		golden := uint32(th) + 100
		rec.Vals[th] = perturb(cfg.LaneForThread(th), isa.UnitSP, golden)
	}
	e.Issue(IssueInfo{Rec: rec, WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	e.IdleCycle(100) // verify the pending instruction

	if st.FaultsDetected == 0 || len(events) == 0 {
		t.Fatal("stuck-at fault not detected by temporal replay")
	}
	// Lane shuffling guarantees orig != verif lane for every event.
	for _, ev := range events {
		if ev.OrigLane == ev.VerifLane {
			t.Errorf("replay on the original lane: %+v", ev)
		}
	}
}

func TestEngineHiddenErrorWithoutShuffle(t *testing.T) {
	// With lane shuffling disabled, a lane-local stuck-at produces the
	// same wrong value in both executions — the hidden error the paper
	// warns about.
	cfg := arch.WarpedDMRConfig()
	cfg.LaneShuffle = false
	st := &stats.Stats{}
	perturb := func(lane int, unit isa.UnitClass, golden uint32) uint32 {
		if lane == 2 && unit == isa.UnitSP {
			return golden ^ 1
		}
		return golden
	}
	e := NewEngine(cfg, 0, st, perturb, nil)
	rec := fullRec(isa.OpIADD, 1, 2, 3)
	for th := 0; th < 32; th++ {
		rec.SrcVals[0][th] = uint32(th)
		golden := uint32(th)
		rec.Vals[th] = perturb(cfg.LaneForThread(th), isa.UnitSP, golden)
	}
	e.Issue(IssueInfo{Rec: rec, WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	e.IdleCycle(100)
	if st.FaultsDetected != 0 {
		t.Error("without shuffling the stuck-at fault should hide (this is the point of lane shuffling)")
	}
}

func TestEngineNarrowWarpUsesIntra(t *testing.T) {
	// A 16-thread block occupies a 32-lane warp: physically half idle,
	// so intra-warp DMR covers it even though the block is "full".
	e, st := newEngine(t, nil)
	mask := simt.FullMask(16)
	cfg := arch.WarpedDMRConfig()
	var phys simt.Mask
	for th := 0; th < 16; th++ {
		phys |= 1 << uint(cfg.LaneForThread(th))
	}
	e.Issue(IssueInfo{Rec: partialRec(isa.OpIADD, mask), WarpGID: 1, Phys: phys, Width: 16})
	if st.VerifiedIntra == 0 {
		t.Error("narrow warp must use intra-warp DMR")
	}
	if st.VerifiedInter != 0 && e.QueueLen() != 0 {
		t.Error("narrow warp must not be treated as fully utilized")
	}
}

func TestReplayQSizing(t *testing.T) {
	// Paper §4.3.1: an entry is 514-516 bytes; 10 entries ~ 5 KB, about
	// 4% of the 128 KB register file.
	if ReplayQEntryBytes < 514 || ReplayQEntryBytes > 516 {
		t.Errorf("entry bytes = %d, want 514..516", ReplayQEntryBytes)
	}
	cfg := arch.WarpedDMRConfig()
	st := &stats.Stats{}
	e := NewEngine(cfg, 0, st, nil, nil)
	size := e.QueueSizeBytes()
	if size < 5000 || size > 5300 {
		t.Errorf("10-entry ReplayQ = %d bytes, want ~5KB", size)
	}
	ratio := float64(size) / float64(cfg.RegFileBytes)
	if ratio < 0.03 || ratio > 0.05 {
		t.Errorf("ReplayQ/RF ratio = %.3f, want ~0.04", ratio)
	}
}

func TestEngineCtrlResolvesPending(t *testing.T) {
	e, st := newEngine(t, nil)
	e.Issue(IssueInfo{Rec: fullRec(isa.OpIADD, 1), WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	bra := &exec.Record{
		Instr: &isa.Instr{Op: isa.OpBRA, Pred: isa.AlwaysPred()},
		Unit:  isa.UnitCTRL, Active: simt.FullMask(32), Executing: simt.FullMask(32),
	}
	e.Issue(IssueInfo{Rec: bra, WarpGID: 1, Phys: simt.FullMask(32), Width: 32})
	if st.ReplayCoexec != 1 || st.VerifiedInter != 32 {
		t.Error("control instruction should free the units for the pending verify")
	}
}
