// Package core implements Warped-DMR, the paper's contribution: the
// Register Forwarding Unit pairing logic for intra-warp (spatial) DMR,
// the Replay Checker and ReplayQ for inter-warp (temporal) DMR, lane
// shuffling, thread-to-core mapping, and the coverage/overhead
// bookkeeping behind Figures 9a and 9b.
package core

import (
	"warped/internal/simt"
)

// PriorityTable gives, for each MUX (idle lane slot) in a SIMT cluster,
// the order in which it scans lanes for an active thread to verify.
// For cluster size 4 this reproduces paper Table 1 exactly:
//
//	Priority  MUX0 MUX1 MUX2 MUX3
//	1st        0    1    2    3
//	2nd        1    0    3    2
//	3rd        2    3    0    1
//	4th        3    2    1    0
//
// The pattern is lane = mux XOR priority, which generalizes to any
// power-of-two cluster size (we use it for the 8-lane variant of
// Fig. 9a) and gives each MUX a distinct scan order so pairings spread
// uniformly across lanes.
type PriorityTable struct {
	size  int
	order [][]int // [mux][priority] -> lane within cluster
}

// NewPriorityTable builds the table for a power-of-two cluster size.
func NewPriorityTable(clusterSize int) *PriorityTable {
	if clusterSize <= 0 || clusterSize&(clusterSize-1) != 0 {
		panic("core: cluster size must be a positive power of two")
	}
	t := &PriorityTable{size: clusterSize, order: make([][]int, clusterSize)}
	for mux := 0; mux < clusterSize; mux++ {
		row := make([]int, clusterSize)
		for prio := 0; prio < clusterSize; prio++ {
			row[prio] = mux ^ prio
		}
		t.order[mux] = row
	}
	return t
}

// Size returns the cluster size the table was built for.
func (t *PriorityTable) Size() int { return t.size }

// Order returns the scan order for one MUX.
func (t *PriorityTable) Order(mux int) []int { return t.order[mux] }

// Pairing is one intra-warp DMR assignment within a cluster, in
// cluster-relative lane numbers.
type Pairing struct {
	Idle   int // lane performing the redundant execution
	Active int // lane whose computation is verified
}

// PairCluster pairs each idle lane in a cluster with an active lane
// according to the MUX priority table. busy is the cluster-relative
// mask of lanes executing the instruction (bit i = lane i busy).
// Every idle MUX picks the first busy lane in its scan order; several
// idle lanes may pick the same active lane (the paper allows more than
// dual redundancy rather than adding suppression logic).
func (t *PriorityTable) PairCluster(busy uint32) []Pairing {
	var out []Pairing
	if busy == 0 {
		return nil
	}
	for mux := 0; mux < t.size; mux++ {
		if busy&(1<<uint(mux)) != 0 {
			continue // MUX's first priority is its own lane: it is busy
		}
		for _, lane := range t.order[mux] {
			if busy&(1<<uint(lane)) != 0 {
				out = append(out, Pairing{Idle: mux, Active: lane})
				break
			}
		}
	}
	return out
}

// PairWarp applies PairCluster to every cluster of a physical lane
// mask and returns warp-relative pairings plus the number of distinct
// active lanes that received at least one verifier.
func (t *PriorityTable) PairWarp(busy simt.Mask, warpWidth int) (pairs []Pairing, covered int) {
	return t.PairWarpInto(busy, warpWidth, nil)
}

// PairWarpInto is PairWarp with caller-provided storage: pairings are
// appended to buf (pass buf[:0] of a per-engine scratch array to keep
// the per-instruction DMR path allocation-free).
func (t *PriorityTable) PairWarpInto(busy simt.Mask, warpWidth int, buf []Pairing) (pairs []Pairing, covered int) {
	clusterMask := uint32(1)<<uint(t.size) - 1
	var coveredMask simt.Mask
	pairs = buf
	for base := 0; base < warpWidth; base += t.size {
		cb := (uint32(busy) >> uint(base)) & clusterMask
		if cb == 0 {
			continue
		}
		for mux := 0; mux < t.size; mux++ {
			if cb&(1<<uint(mux)) != 0 {
				continue // MUX's first priority is its own lane: it is busy
			}
			for _, lane := range t.order[mux] {
				if cb&(1<<uint(lane)) != 0 {
					pairs = append(pairs, Pairing{Idle: base + mux, Active: base + lane})
					coveredMask |= 1 << uint(base+lane)
					break
				}
			}
		}
	}
	return pairs, coveredMask.Count()
}

// ShuffleLane returns the physical lane that redundantly executes the
// work of `lane` during an inter-warp (temporal) replay. Shuffling is
// confined to the lane's SIMT cluster to bound wiring (paper §3.2);
// phase varies the rotation so repeated replays exercise different
// pairings. For clusterSize 1 shuffling is impossible and the original
// lane is returned.
func ShuffleLane(lane, clusterSize, phase int) int {
	if clusterSize <= 1 {
		return lane
	}
	base := lane - lane%clusterSize
	rot := 1 + phase%(clusterSize-1) // never 0 mod clusterSize
	return base + (lane-base+rot)%clusterSize
}
