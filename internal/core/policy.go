package core

import "warped/internal/arch"

// PolicyFacts are the pre-computed facts a protection policy decides
// from at issue time. All of them are already in registers on the
// issue path — nothing is looked up, hashed, or allocated to build
// one — so a policy check costs one interface call and a handful of
// integer compares (docs/POLICIES.md, "The decision point").
type PolicyFacts struct {
	WarpGID int // SM-unique warp identifier, assigned in dispatch order
	PC      int // program counter of the issued instruction
	Active  int // executing (non-exited, unmasked) lane count
}

// ProtectionPolicy decides, per issued warp instruction, whether the
// DMR engine verifies it. Implementations must be deterministic pure
// functions of the facts (and of launch-time configuration resolved in
// CompilePolicy) and must not allocate: the engine calls Protect on
// the per-instruction hot path that TestLaunchSteadyStateZeroAllocs
// pins at zero allocations.
type ProtectionPolicy interface {
	Protect(f PolicyFacts) bool
}

// CompilePolicy resolves a serializable policy configuration into its
// issue-time decision procedure for one kernel launch. Launch-time
// choices (which kernel is running) are made here, once, so nothing
// per-kernel remains on the issue path.
//
// Full — and any policy that degenerates to "protect everything" for
// this kernel — compiles to nil, which the engine treats as
// unconditional protection with zero per-issue cost: the Full path
// stays byte-identical to the pre-policy engine.
func CompilePolicy(p arch.Policy, kernel string) ProtectionPolicy {
	switch p.Kind {
	case arch.PolicyFull:
		return nil
	case arch.PolicyOff:
		return offPolicy{}
	case arch.PolicyPerKernel:
		if p.ProtectsKernel(kernel) {
			return nil // full protection for this kernel
		}
		return offPolicy{}
	case arch.PolicyWarpSample:
		if p.SampleN <= 1 {
			return nil // 1/1 sampling is full protection
		}
		return warpSamplePolicy{n: p.SampleN, phase: p.SamplePhase}
	case arch.PolicyActiveMask:
		if p.MinActive <= 1 {
			return nil // every executing instruction has >= 1 lane
		}
		return activeMaskPolicy{min: p.MinActive}
	case arch.PolicyPCRange:
		return pcRangePolicy{lo: p.PCLo, hi: p.PCHi}
	case arch.PolicyPCSet:
		if p.PCKernel != "" && p.PCKernel != kernel {
			return nil // the set is scoped to another kernel: full protection
		}
		return pcSetPolicy{ranges: p.PCRanges}
	default: // future kinds default to full protection
		return nil
	}
}

// offPolicy protects nothing; eligible instructions are counted and
// skipped.
type offPolicy struct{}

func (offPolicy) Protect(PolicyFacts) bool { return false }

// warpSamplePolicy protects one warp in every n, chosen by the
// SM-unique warp ID. IDs are assigned deterministically in dispatch
// order, so the protected set is identical run to run and at any
// worker count.
type warpSamplePolicy struct{ n, phase int }

func (p warpSamplePolicy) Protect(f PolicyFacts) bool { return f.WarpGID%p.n == p.phase }

// activeMaskPolicy protects only well-utilized warp instructions.
type activeMaskPolicy struct{ min int }

func (p activeMaskPolicy) Protect(f PolicyFacts) bool { return f.Active >= p.min }

// pcRangePolicy protects the [lo, hi] PC region.
type pcRangePolicy struct{ lo, hi int }

func (p pcRangePolicy) Protect(f PolicyFacts) bool { return f.PC >= p.lo && f.PC <= p.hi }

// pcSetPolicy protects a union of PC ranges — the compiled form of a
// vulnerability-synthesized policy. Ranges arrive normalized (sorted,
// disjoint) from arch.Policy.Normalized, so a linear scan with an
// early exit is the whole decision; kernel programs are short enough
// (tens of instructions, a handful of ranges) that this beats a
// per-launch bitmap while allocating nothing.
type pcSetPolicy struct{ ranges [][2]int }

func (p pcSetPolicy) Protect(f PolicyFacts) bool {
	for _, r := range p.ranges {
		if f.PC < r[0] {
			return false
		}
		if f.PC <= r[1] {
			return true
		}
	}
	return false
}
