package core

import (
	"testing"

	"warped/internal/arch"
)

// TestCompilePolicyDegeneratesToNil: every configuration that means
// "protect everything" must compile to nil, because nil is the
// zero-cost path the byte-identical guarantee rides on.
func TestCompilePolicyDegeneratesToNil(t *testing.T) {
	cases := []struct {
		name   string
		p      arch.Policy
		kernel string
	}{
		{"zero value", arch.Policy{}, "K"},
		{"explicit full", arch.Policy{Kind: arch.PolicyFull}, "K"},
		{"kernel listed", arch.Policy{Kind: arch.PolicyPerKernel, Kernels: []string{"K"}}, "K"},
		{"kernel not excluded", arch.Policy{Kind: arch.PolicyPerKernel, Kernels: []string{"other"}, Exclude: true}, "K"},
		{"1/1 sampling", arch.Policy{Kind: arch.PolicyWarpSample, SampleN: 1}, "K"},
		{"activemask 1", arch.Policy{Kind: arch.PolicyActiveMask, MinActive: 1}, "K"},
		{"pcset scoped elsewhere", arch.Policy{Kind: arch.PolicyPCSet, PCRanges: [][2]int{{0, 4}}, PCKernel: "other"}, "K"},
	}
	for _, c := range cases {
		if got := CompilePolicy(c.p, c.kernel); got != nil {
			t.Errorf("%s: CompilePolicy(%v, %q) = %T, want nil", c.name, c.p, c.kernel, got)
		}
	}
}

// TestCompilePolicyDecisions: each compiled policy's Protect matches
// its documented predicate.
func TestCompilePolicyDecisions(t *testing.T) {
	off := CompilePolicy(arch.Policy{Kind: arch.PolicyOff}, "K")
	if off == nil || off.Protect(PolicyFacts{WarpGID: 1, Active: 32}) {
		t.Error("off policy must protect nothing")
	}

	unlisted := CompilePolicy(arch.Policy{Kind: arch.PolicyPerKernel, Kernels: []string{"other"}}, "K")
	if unlisted == nil || unlisted.Protect(PolicyFacts{WarpGID: 1, Active: 32}) {
		t.Error("per-kernel policy must skip an unlisted kernel entirely")
	}

	ws := CompilePolicy(arch.Policy{Kind: arch.PolicyWarpSample, SampleN: 4, SamplePhase: 1}, "K")
	for wid := 0; wid < 12; wid++ {
		want := wid%4 == 1
		if got := ws.Protect(PolicyFacts{WarpGID: wid}); got != want {
			t.Errorf("warpsample:1/4+1 Protect(wid=%d) = %v, want %v", wid, got, want)
		}
	}

	am := CompilePolicy(arch.Policy{Kind: arch.PolicyActiveMask, MinActive: 16}, "K")
	for _, c := range []struct {
		active int
		want   bool
	}{{1, false}, {15, false}, {16, true}, {32, true}} {
		if got := am.Protect(PolicyFacts{Active: c.active}); got != c.want {
			t.Errorf("activemask:16 Protect(active=%d) = %v, want %v", c.active, got, c.want)
		}
	}

	pr := CompilePolicy(arch.Policy{Kind: arch.PolicyPCRange, PCLo: 4, PCHi: 8}, "K")
	for _, c := range []struct {
		pc   int
		want bool
	}{{3, false}, {4, true}, {8, true}, {9, false}} {
		if got := pr.Protect(PolicyFacts{PC: c.pc}); got != c.want {
			t.Errorf("pcrange:4-8 Protect(pc=%d) = %v, want %v", c.pc, got, c.want)
		}
	}

	set := arch.Policy{Kind: arch.PolicyPCSet, PCRanges: [][2]int{{0, 2}, {6, 8}}, PCKernel: "K"}
	ps := CompilePolicy(set, "K")
	for _, c := range []struct {
		pc   int
		want bool
	}{{0, true}, {2, true}, {3, false}, {5, false}, {6, true}, {8, true}, {9, false}} {
		if got := ps.Protect(PolicyFacts{PC: c.pc}); got != c.want {
			t.Errorf("pcset:K@0-2,6-8 Protect(pc=%d) = %v, want %v", c.pc, got, c.want)
		}
	}
	if unscoped := CompilePolicy(arch.Policy{Kind: arch.PolicyPCSet, PCRanges: [][2]int{{1, 1}}}, "K"); unscoped == nil {
		t.Error("unscoped pcset must apply to every kernel, not compile to nil")
	}
}
