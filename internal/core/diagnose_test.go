package core

import (
	"testing"

	"warped/internal/arch"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/simt"
	"warped/internal/stats"
)

func TestDiagnoserConvergesOnFaultyLane(t *testing.T) {
	d := NewDiagnoser()
	// Lane 6 of SM 2 is stuck; shuffled partners rotate through its
	// cluster (lanes 4-7).
	partners := []int{5, 7, 4, 5, 7}
	for _, p := range partners {
		d.Observe(ErrorEvent{SM: 2, OrigLane: 6, VerifLane: p})
	}
	sm, lane, conf := d.Suspect()
	if !conf || sm != 2 || lane != 6 {
		t.Errorf("Suspect = (%d,%d,%v), want (2,6,true)", sm, lane, conf)
	}
	if d.Events() != len(partners) {
		t.Errorf("events = %d", d.Events())
	}
	if d.Report() == "" {
		t.Error("empty report")
	}
}

func TestDiagnoserNeedsEvidence(t *testing.T) {
	d := NewDiagnoser()
	if _, _, conf := d.Suspect(); conf {
		t.Error("no events should not be confident")
	}
	d.Observe(ErrorEvent{SM: 0, OrigLane: 1, VerifLane: 2})
	if _, _, conf := d.Suspect(); conf {
		t.Error("one event cannot separate the two implicated lanes")
	}
}

func TestDiagnoserAmbiguousPair(t *testing.T) {
	d := NewDiagnoser()
	// The same pair keeps appearing (shuffling disabled): both lanes
	// are implicated equally, so no confident verdict is possible.
	for i := 0; i < 10; i++ {
		d.Observe(ErrorEvent{SM: 0, OrigLane: 1, VerifLane: 2})
	}
	if _, _, conf := d.Suspect(); conf {
		t.Error("a constant pair must stay ambiguous")
	}
}

// TestDiagnoserEndToEnd drives the whole stack: a stuck-at lane fault,
// the DMR engine detecting mismatches, the diagnoser fingering the lane.
func TestDiagnoserEndToEnd(t *testing.T) {
	cfg := arch.WarpedDMRConfig()
	const badLane = 9
	perturb := func(lane int, unit isa.UnitClass, golden uint32) uint32 {
		if lane == badLane && unit == isa.UnitSP {
			return golden ^ 4
		}
		return golden
	}
	d := NewDiagnoser()
	st := &stats.Stats{}
	e := NewEngine(cfg, 3, st, perturb, d.Observe)

	for i := 0; i < 12; i++ {
		in := &isa.Instr{Op: isa.OpIADD, Dst: 1, Pred: isa.AlwaysPred(),
			Src: [3]isa.Operand{isa.RegOp(2), isa.RegOp(3)}}
		rec := &exec.Record{Instr: in, Unit: isa.UnitSP,
			Active: simt.FullMask(32), Executing: simt.FullMask(32),
			DstValid: true, Dst: 1}
		for th := 0; th < 32; th++ {
			rec.SrcVals[0][th] = uint32(th + i)
			rec.SrcVals[1][th] = uint32(i)
			golden := uint32(th+i) + uint32(i)
			rec.Vals[th] = perturb(cfg.LaneForThread(th), isa.UnitSP, golden)
		}
		e.Issue(IssueInfo{Rec: rec, WarpGID: i, Phys: simt.FullMask(32), Width: 32})
		e.IdleCycle(100)
	}
	sm, lane, conf := d.Suspect()
	if !conf {
		t.Fatalf("diagnosis inconclusive after %d events", d.Events())
	}
	if sm != 3 || lane != badLane {
		t.Errorf("diagnosed (SM %d, lane %d), want (3, %d)", sm, lane, badLane)
	}
}

// TestSamplingDMRReducesCoverage: with a 25% duty cycle, eligible
// instructions outside the window go unverified, and the stall overhead
// drops accordingly.
func TestSamplingDMRReducesCoverage(t *testing.T) {
	run := func(period, on int64) *stats.Stats {
		cfg := arch.WarpedDMRConfig()
		cfg.SamplePeriod, cfg.SampleOn = period, on
		cfg.ReplayQSize = 0 // make stalls visible
		st := &stats.Stats{}
		e := NewEngine(cfg, 0, st, nil, nil)
		for cyc := int64(0); cyc < 400; cyc++ {
			e.Issue(IssueInfo{
				Rec: fullRec(isa.OpIADD, isa.Reg(cyc%8)), WarpGID: 1,
				Phys: simt.FullMask(32), Width: 32, Cycle: cyc,
			})
		}
		e.Drain(100)
		return st
	}
	always := run(0, 0)
	sampled := run(100, 25)
	if always.VerifiedInter <= sampled.VerifiedInter {
		t.Errorf("sampling should verify less: %d vs %d",
			sampled.VerifiedInter, always.VerifiedInter)
	}
	if sampled.StallReplayQFull >= always.StallReplayQFull {
		t.Errorf("sampling should stall less: %d vs %d",
			sampled.StallReplayQFull, always.StallReplayQFull)
	}
	// Coverage ratio tracks the duty cycle, within the epoch-boundary slop.
	ratio := float64(sampled.VerifiedInter) / float64(always.VerifiedInter)
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("sampled/always verified ratio = %.2f, want ~0.25", ratio)
	}
}
