package power

import (
	"testing"

	"warped/internal/arch"
	"warped/internal/stats"
)

func baseStats() *stats.Stats {
	return &stats.Stats{
		Cycles:         10000,
		WarpInstrs:     50000,
		UnitOps:        [3]int64{30000, 2000, 18000},
		RegFileReads:   90000,
		RegFileWrites:  40000,
		SharedAccesses: 5000,
		GlobalAccesses: 8000,
	}
}

func TestEstimateBasics(t *testing.T) {
	cfg := arch.PaperConfig()
	rep := Estimate(cfg, DefaultParams(), baseStats())
	if rep.TotalW <= rep.RuntimeW || rep.RuntimeW <= 0 {
		t.Errorf("implausible power: %+v", rep)
	}
	if rep.TimeS <= 0 || rep.EnergyJ <= 0 {
		t.Errorf("implausible time/energy: %+v", rep)
	}
	// E = P * t must hold.
	if got := rep.TotalW * rep.TimeS; got != rep.EnergyJ {
		t.Errorf("energy %v != power*time %v", rep.EnergyJ, got)
	}
	// Static (idle+const) should be a substantial share — the paper
	// cites ~60% static for GPGPUs.
	p := DefaultParams()
	static := (p.Idle + p.Const) / rep.TotalW
	if static < 0.4 || static > 0.85 {
		t.Errorf("static share = %.2f, expected a dominant static fraction", static)
	}
}

func TestEstimateZeroCycles(t *testing.T) {
	rep := Estimate(arch.PaperConfig(), DefaultParams(), &stats.Stats{})
	if rep.TotalW != 0 || rep.EnergyJ != 0 {
		t.Error("zero-cycle run should produce a zero report")
	}
}

func TestRedundantOpsRaisePower(t *testing.T) {
	cfg := arch.PaperConfig()
	p := DefaultParams()
	base := Estimate(cfg, p, baseStats())
	dmr := baseStats()
	// Same cycles, every instruction replayed: dynamic power must rise.
	dmr.RedundantOps = [3]int64{30000 * 32, 2000 * 32, 18000 * 32}
	withDMR := Estimate(cfg, p, dmr)
	if withDMR.TotalW <= base.TotalW {
		t.Errorf("redundant work did not raise power: %.2f vs %.2f", withDMR.TotalW, base.TotalW)
	}
}

func TestLongerRunMoreEnergy(t *testing.T) {
	cfg := arch.PaperConfig()
	p := DefaultParams()
	a := baseStats()
	b := baseStats()
	b.Cycles *= 2
	ra := Estimate(cfg, p, a)
	rb := Estimate(cfg, p, b)
	if rb.EnergyJ <= ra.EnergyJ {
		t.Error("doubling cycles must increase energy")
	}
	if rb.TotalW >= ra.TotalW {
		t.Error("same work over more cycles must lower average power")
	}
}
