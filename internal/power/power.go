// Package power implements the analytical GPU power model the paper
// uses for Fig. 11 (Hong & Kim, "An integrated GPU power and
// performance model", ISCA 2010): each component's runtime power is its
// maximum power scaled by its access rate, summed with idle/constant
// power; energy is power times execution time.
//
//	RP_comp = MaxPower_comp * AccessRate_comp            (paper Eq. 1)
//	AccessRate_comp = accesses / issue slots             (paper Eq. 2)
//
// The per-component MaxPower constants below are Fermi-scale
// approximations chosen to reproduce the model's structure, not
// measured values; Fig. 11 reports power and energy *normalized to the
// no-DMR baseline*, so only the access-rate and cycle-count deltas —
// which come from the simulator — matter for the reproduced result.
package power

import (
	"warped/internal/arch"
	"warped/internal/stats"
)

// Params holds the MaxPower constants (watts, chip-wide) per component
// class, plus idle and constant power.
type Params struct {
	MaxSP      float64 // all SP lanes busy every cycle
	MaxSFU     float64
	MaxLDST    float64
	MaxRegFile float64
	MaxFDS     float64 // fetch/decode/schedule
	MaxShared  float64
	MaxGlobal  float64 // DRAM+interconnect activity
	MaxReplayQ float64 // Warped-DMR's added structure
	Idle       float64 // static + leakage
	Const      float64 // clocks, misc
}

// DefaultParams returns Fermi-scale constants. Static power is ~60% of
// total for a typical load, matching the figure the paper cites.
func DefaultParams() Params {
	return Params{
		MaxSP:      120,
		MaxSFU:     40,
		MaxLDST:    60,
		MaxRegFile: 30,
		MaxFDS:     15,
		MaxShared:  20,
		MaxGlobal:  40,
		MaxReplayQ: 3,
		Idle:       60,
		Const:      8,
	}
}

// Report is the power/energy estimate for one run.
type Report struct {
	RuntimeW float64 // dynamic component
	TotalW   float64 // runtime + idle + const
	TimeS    float64 // execution time (cycles * clock period)
	EnergyJ  float64 // TotalW * TimeS
}

// Estimate computes the power report for a finished run. cfg supplies
// the clock period and SM count; st supplies cycles and access counts.
func Estimate(cfg arch.Config, p Params, st *stats.Stats) Report {
	cycles := float64(st.Cycles)
	if cycles == 0 {
		return Report{}
	}
	// Issue slots across the chip over the kernel's lifetime.
	slots := cycles * float64(cfg.NumSMs)

	// Access rates: how busy each component class was, 0..1-ish. DMR
	// redundant executions consume real datapath energy, so they count;
	// RedundantOps are tracked per lane, so divide by the warp width to
	// get warp-instruction equivalents comparable with UnitOps.
	rate := func(accesses int64) float64 { return float64(accesses) / slots }
	ws := int64(cfg.WarpSize)

	spOps := st.UnitOps[0] + st.RedundantOps[0]/ws
	sfuOps := st.UnitOps[1] + st.RedundantOps[1]/ws
	ldstOps := st.UnitOps[2] + st.RedundantOps[2]/ws
	// Redundant executions re-read operands from the RFU latches, not
	// the register file (the RFU forwards them), but results are still
	// compared, costing comparator energy folded into MaxReplayQ.
	rfAccesses := st.RegFileReads + st.RegFileWrites

	runtime := p.MaxSP*rate(spOps) +
		p.MaxSFU*rate(sfuOps) +
		p.MaxLDST*rate(ldstOps) +
		p.MaxRegFile*rate(rfAccesses)/4 + // 4 banks fetch per access slot
		p.MaxFDS*rate(st.WarpInstrs) +
		p.MaxShared*rate(st.SharedAccesses) +
		p.MaxGlobal*rate(st.GlobalAccesses) +
		p.MaxReplayQ*rate(st.ReplayEnq+st.ReplayCoexec+st.ReplayIdleDrain)

	timeS := cycles * cfg.ClockNS * 1e-9
	total := runtime + p.Idle + p.Const
	return Report{
		RuntimeW: runtime,
		TotalW:   total,
		TimeS:    timeS,
		EnergyJ:  total * timeS,
	}
}
