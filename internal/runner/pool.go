package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"warped/internal/metrics"
)

// Typed admission errors. Callers branch on these to turn pool state
// into protocol answers (HTTP 429 for a full queue, 503 while
// draining) instead of string-matching.
var (
	// ErrPoolDraining is returned by Submit once Drain (or Close) has
	// been called: the pool finishes in-flight work but accepts nothing
	// new.
	ErrPoolDraining = errors.New("runner: pool is draining")

	// ErrQueueFull is returned by Submit when the bounded backlog is at
	// capacity. The caller decides whether to shed load or retry later;
	// the pool never blocks a submitter.
	ErrQueueFull = errors.New("runner: pool queue is full")
)

// PoolOptions sizes a Pool.
type PoolOptions struct {
	// Workers is the number of concurrently-executing tasks; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int

	// QueueDepth bounds the accepted-but-not-started backlog; <= 0
	// means 64. Submissions beyond Workers running + QueueDepth queued
	// fail fast with ErrQueueFull.
	QueueDepth int

	// Metrics, when non-nil, receives the same pool telemetry as Map
	// (runner.* task counters, workers-busy gauge, task latency) plus
	// the runner.queue_depth backlog gauge.
	Metrics *metrics.Registry
}

// poolTask pairs a unit of work with its completion callback.
type poolTask struct {
	seq  int
	fn   func() error
	done func(error)
}

// Pool is the long-lived sibling of Map: a fixed set of workers
// consuming a bounded queue of independently-submitted tasks, built
// for daemons where work arrives continuously rather than as one
// batch. It keeps Map's guarantees where they apply — panic isolation
// (a panicking task becomes a *PanicError handed to its callback, not
// a dead process) and a clean shutdown protocol (after Drain returns,
// no task is running and none will start).
//
// Lifecycle: NewPool starts the workers; Submit enqueues work until
// Drain is called; Drain stops admission immediately (Submit returns
// ErrPoolDraining), waits for the backlog and in-flight tasks to
// finish, and is idempotent.
type Pool struct {
	tasks chan poolTask
	met   *metrics.Run

	mu       sync.Mutex
	draining bool
	seq      int

	wg      sync.WaitGroup
	settled chan struct{} // closed once all workers have exited
	once    sync.Once
}

// NewPool starts a worker pool.
func NewPool(opt PoolOptions) *Pool {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	p := &Pool{
		tasks:   make(chan poolTask, depth),
		met:     metrics.ForRunner(opt.Metrics),
		settled: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.settled)
	}()
	return p
}

// Submit enqueues fn for execution; done (which may be nil) is called
// exactly once from the worker goroutine with fn's error — a
// *PanicError if fn panicked. Submit never blocks: it fails fast with
// ErrQueueFull when the backlog is at capacity and ErrPoolDraining
// after Drain has begun. A nil fn is rejected.
func (p *Pool) Submit(fn func() error, done func(error)) error {
	if fn == nil {
		return errors.New("runner: Submit of a nil task")
	}
	// The lock covers the draining check AND the channel send: Drain
	// closes p.tasks under the same lock, so a submitter can never send
	// on a closed channel (the classic submit-vs-shutdown race).
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrPoolDraining
	}
	p.seq++
	t := poolTask{seq: p.seq, fn: fn, done: done}
	select {
	case p.tasks <- t:
		p.met.QueueDepth.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Drain stops admission immediately and waits for every queued and
// in-flight task to finish, or for ctx to fire. On ctx expiry the
// remaining tasks keep draining in the background (their callbacks
// still run); the caller has merely stopped waiting. Drain is
// idempotent and safe to call concurrently; every call observes the
// same terminal state.
func (p *Pool) Drain(ctx context.Context) error {
	p.once.Do(func() {
		p.mu.Lock()
		p.draining = true
		close(p.tasks) // workers exit after emptying the backlog
		p.mu.Unlock()
	})
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-p.settled:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("runner: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether Drain has been called.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// worker consumes tasks until the queue is closed and drained.
func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.met.QueueDepth.Add(-1)
		p.met.TasksStarted.Inc()
		p.met.WorkersBusy.Add(1)
		start := time.Now()
		err := p.runTask(t)
		p.met.TaskLatencyMS.Observe(time.Since(start).Milliseconds())
		p.met.WorkersBusy.Add(-1)
		if err == nil {
			p.met.TasksCompleted.Inc()
		} else {
			p.met.TasksFailed.Inc()
			var pe *PanicError
			if errors.As(err, &pe) {
				p.met.TaskPanics.Inc()
			}
		}
		if t.done != nil {
			t.done(err)
		}
	}
}

// runTask executes one task with panic isolation.
func (p *Pool) runTask(t poolTask) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: t.seq, Value: r, Stack: debug.Stack()}
		}
	}()
	return t.fn()
}
