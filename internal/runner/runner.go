// Package runner is the parallel run-orchestration engine: a bounded
// worker pool that fans independent simulation runs out across
// goroutines while keeping every observable output deterministic.
//
// Each run of an experiment grid (benchmark × config × seed) owns an
// independent sim.GPU, so runs never share mutable state and the only
// ordering that matters is the one results are merged in. Map therefore
// guarantees:
//
//   - results are returned indexed by submission order, never by
//     completion order, so parallel output is byte-identical to serial;
//   - a panicking task becomes an error result carrying its stack, not
//     a dead process, so one bad run cannot take down a campaign;
//   - context cancellation propagates to every in-flight task (the
//     simulator checks it every few thousand simulated cycles) and Map
//     returns a ctx.Err()-wrapped error promptly;
//   - all worker goroutines have exited before Map returns — callers
//     never leak goroutines, even on cancellation or panic.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"warped/internal/metrics"
)

// Options tunes one Map invocation.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0). The
	// pool never runs more workers than there are tasks.
	Workers int

	// OnProgress, when non-nil, is called after each task finishes with
	// the number of completed tasks and the total. Calls are serialized
	// and `done` is strictly increasing, but — inherent to parallel
	// completion — not necessarily in submission order of the tasks.
	OnProgress func(done, total int)

	// ContinueOnError keeps the remaining tasks running after a failure
	// instead of cancelling them. Map still reports the first error by
	// submission index; the per-task results of successful tasks are
	// valid either way.
	ContinueOnError bool

	// Metrics, when non-nil, receives pool telemetry: task lifecycle
	// counters, the workers-busy gauge (whose high-water mark is the peak
	// pool utilization), and a wall-clock task-latency histogram. Latency
	// values vary run to run — they are operational data, never part of
	// the deterministic simulation output.
	Metrics *metrics.Registry
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError is the error result of a task that panicked.
type PanicError struct {
	Index int    // submission index of the panicking task
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

// Error renders the panic value; the stack is available separately.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %d panicked: %v", e.Index, e.Value)
}

// Map runs fn(ctx, i) for i in [0, n) on a bounded worker pool and
// returns the n results ordered by submission index.
//
// On failure Map returns the partial results alongside the error of the
// lowest-index genuinely-failed task (cancellation fallout of
// later-scheduled tasks does not mask the root cause). Unless
// opt.ContinueOnError is set, the first failure cancels the remaining
// tasks. If ctx is cancelled, Map returns an error satisfying
// errors.Is(err, ctx.Err()).
//
// fn must not retain or share mutable state across indices; each
// invocation may run on any worker goroutine.
func Map[T any](ctx context.Context, opt Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var mu sync.Mutex // serializes OnProgress
	completed := 0
	met := metrics.ForRunner(opt.Metrics)

	var wg sync.WaitGroup
	for w := opt.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Mark tasks we never started as cancelled and keep
					// draining indices so the pool winds down quickly.
					errs[i] = err
					continue
				}
				met.TasksStarted.Inc()
				met.WorkersBusy.Add(1)
				start := time.Now()
				errs[i] = runOne(ctx, i, fn, &results[i])
				met.TaskLatencyMS.Observe(time.Since(start).Milliseconds())
				met.WorkersBusy.Add(-1)
				if errs[i] == nil {
					met.TasksCompleted.Inc()
				} else {
					met.TasksFailed.Inc()
					var pe *PanicError
					if errors.As(errs[i], &pe) {
						met.TaskPanics.Inc()
					}
				}
				if errs[i] != nil && !opt.ContinueOnError {
					cancel()
				}
				if opt.OnProgress != nil {
					mu.Lock()
					completed++
					done := completed
					mu.Unlock()
					opt.OnProgress(done, n)
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: prefer the lowest-index error that
	// is not mere cancellation fallout; fall back to the lowest-index
	// cancellation (the caller-cancelled case).
	var firstCancel error
	firstCancelIdx := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel, firstCancelIdx = err, i
			}
			continue
		}
		return results, fmt.Errorf("runner: task %d: %w", i, err)
	}
	if firstCancel != nil {
		return results, fmt.Errorf("runner: task %d: %w", firstCancelIdx, firstCancel)
	}
	return results, nil
}

// runOne executes one task with panic isolation.
func runOne[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error), out *T) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	v, err := fn(ctx, i)
	if err != nil {
		return err
	}
	*out = v
	return nil
}

// Each is Map for tasks that produce no value.
func Each(ctx context.Context, opt Options, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, opt, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
