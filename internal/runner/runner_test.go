package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results come back indexed by submission order no
// matter how workers interleave.
func TestMapOrdering(t *testing.T) {
	n := 100
	res, err := Map(context.Background(), Options{Workers: 8}, n, func(_ context.Context, i int) (int, error) {
		if i%7 == 0 {
			runtime.Gosched() // shake up completion order
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapPanicIsolation: a panicking task becomes a PanicError result,
// the process survives, and the error names the task.
func TestMapPanicIsolation(t *testing.T) {
	_, err := Map(context.Background(), Options{Workers: 4}, 8, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking task")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not wrap a PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("bad PanicError: %+v", pe)
	}
}

// TestMapFirstErrorByIndex: with several failures, the reported error
// is the lowest-index one regardless of completion order.
func TestMapFirstErrorByIndex(t *testing.T) {
	wantErr := errors.New("task failed")
	_, err := Map(context.Background(), Options{Workers: 4, ContinueOnError: true}, 10,
		func(_ context.Context, i int) (int, error) {
			if i == 2 || i == 7 {
				return 0, fmt.Errorf("%w: %d", wantErr, i)
			}
			return i, nil
		})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrap of %v", err, wantErr)
	}
	if got := err.Error(); got != "runner: task 2: task failed: 2" {
		t.Fatalf("error not deterministic by index: %q", got)
	}
}

// TestMapCancellation: cancelling the context stops the pool promptly,
// returns a ctx.Err()-wrapped error, and leaks no goroutines.
func TestMapCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, Options{Workers: 4}, 1000, func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(50 * time.Millisecond):
				return i, nil
			}
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Map did not return promptly after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s >= 1000 {
		t.Fatalf("all %d tasks ran despite cancellation", s)
	}
	// The pool must wind down fully: poll briefly for the goroutine
	// count to return to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestMapStopsAfterFailure: without ContinueOnError the first failure
// cancels the rest of the grid.
func TestMapStopsAfterFailure(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), Options{Workers: 1}, 100, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if r := ran.Load(); r >= 100 {
		t.Fatalf("grid kept running after the failure (%d tasks ran)", r)
	}
}

// TestMapProgress: the callback sees every completion, serialized, with
// done strictly increasing up to total.
func TestMapProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	n := 32
	_, err := Map(context.Background(), Options{
		Workers: 4,
		OnProgress: func(done, total int) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
		},
	}, n, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("progress called %d times, want %d", len(seen), n)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress not strictly increasing: %v", seen)
		}
	}
}

// TestMapZeroTasks: an empty grid completes immediately.
func TestMapZeroTasks(t *testing.T) {
	res, err := Map(context.Background(), Options{}, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran for n=0")
		return 0, nil
	})
	if err != nil || res != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", res, err)
	}
}

// TestEach: the no-result convenience wrapper propagates errors.
func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(context.Background(), Options{Workers: 3}, 10, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}
