package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warped/internal/metrics"
)

// TestPoolSubmitAfterDrain is the shutdown-race regression test: once
// Drain has begun, Submit must return the typed ErrPoolDraining
// immediately — never deadlock, never send on the closed queue.
func TestPoolSubmitAfterDrain(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 2, QueueDepth: 4})
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- p.Submit(func() error { return nil }, nil)
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolDraining) {
			t.Fatalf("Submit after Drain = %v, want ErrPoolDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit after Drain deadlocked")
	}
	if !p.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

// TestPoolSubmitDrainRace hammers Submit concurrently with Drain: every
// submission must either run to completion (callback fires) or fail
// with the typed error — and the sum must account for all of them.
func TestPoolSubmitDrainRace(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 4, QueueDepth: 128})
	var executed, rejected atomic.Int64
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Submit(func() error { return nil },
				func(error) { executed.Add(1) })
			if err != nil {
				if !errors.Is(err, ErrPoolDraining) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("Submit = %v, want a typed admission error", err)
				}
				rejected.Add(1)
			}
		}()
		if i == n/2 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = p.Drain(context.Background())
			}()
		}
	}
	wg.Wait()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
	if got := executed.Load() + rejected.Load(); got != n {
		t.Fatalf("executed %d + rejected %d = %d, want %d",
			executed.Load(), rejected.Load(), got, n)
	}
}

// TestPoolDrainFinishesBacklog: Drain must run every already-accepted
// task (queued included), not just the in-flight ones.
func TestPoolDrainFinishesBacklog(t *testing.T) {
	reg := metrics.New()
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 16, Metrics: reg})
	gate := make(chan struct{})
	var ran atomic.Int64
	// First task blocks the single worker so the rest queue up.
	if err := p.Submit(func() error { <-gate; ran.Add(1); return nil }, nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := p.Submit(func() error { ran.Add(1); return nil }, nil); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := ran.Load(); got != 9 {
		t.Fatalf("ran %d tasks, want 9 (drain dropped queued work)", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner.tasks_completed_total"]; got != 9 {
		t.Fatalf("tasks_completed_total = %d, want 9", got)
	}
	if got := snap.Gauges["runner.queue_depth"].Value; got != 0 {
		t.Fatalf("queue_depth = %d after drain, want 0", got)
	}
}

// TestPoolQueueFull: a saturated pool rejects with ErrQueueFull rather
// than blocking the submitter.
func TestPoolQueueFull(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	defer close(gate)
	block := func() error { <-gate; return nil }
	// Worker may not have picked up the first task yet, so saturation is
	// worker-busy + full queue = at most 2 accepted; the 3rd must fail.
	var err error
	for i := 0; i < 3; i++ {
		if err = p.Submit(block, nil); err != nil {
			break
		}
		if i == 0 {
			// Give the worker a moment to pick up the blocker so the
			// queue bound, not scheduling luck, decides what follows.
			deadline := time.Now().Add(2 * time.Second)
			for p.met.WorkersBusy.Value() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Submit = %v, want ErrQueueFull", err)
	}
}

// TestPoolPanicIsolation: a panicking task becomes a *PanicError on the
// callback; the worker survives and runs subsequent tasks.
func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	errc := make(chan error, 1)
	if err := p.Submit(func() error { panic("boom") }, func(err error) { errc <- err }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	var pe *PanicError
	if err := <-errc; !errors.As(err, &pe) {
		t.Fatalf("panicking task delivered %v, want *PanicError", err)
	} else if pe.Value != "boom" {
		t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
	}
	ok := make(chan error, 1)
	if err := p.Submit(func() error { return nil }, func(err error) { ok <- err }); err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if err := <-ok; err != nil {
		t.Fatalf("task after panic: %v", err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestPoolDrainInterrupted: a Drain whose context fires early reports
// it but leaves the pool finishing in the background; a later Drain
// with a live context still observes full settlement.
func TestPoolDrainInterrupted(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	fin := make(chan error, 1)
	if err := p.Submit(func() error { <-gate; return nil }, func(err error) { fin <- err }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Drain(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Drain = %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-fin; err != nil {
		t.Fatalf("in-flight task after interrupted drain: %v", err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestPoolRejectsNilTask guards the trivial misuse.
func TestPoolRejectsNilTask(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	if err := p.Submit(nil, nil); err == nil {
		t.Fatal("Submit(nil) accepted")
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}
