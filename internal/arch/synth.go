package arch

// SynthesizePolicy turns one kernel's statically-unACE PC list (from
// verify.AnalyzeVuln) into the cheapest policy spelling that still
// protects every ACE PC of that kernel — the bridge from static
// vulnerability analysis to the selective-protection engine.
//
// n is the kernel's instruction count; unACE lists the PCs whose faults
// the analysis proved architecturally masked. The result is always
// conservative for other kernels: a scoped pcset leaves them fully
// protected, so a policy synthesized from one kernel of a multi-kernel
// benchmark never weakens its neighbours.
//
//	no unACE PCs      -> full
//	every PC unACE    -> kernel:!KERNEL (skip just this kernel)
//	otherwise         -> pcset:KERNEL@...   (complement ranges)
//	                     pcrange:LO-HI when unscoped and contiguous
func SynthesizePolicy(kernel string, n int, unACE []int) Policy {
	skip := make([]bool, n)
	skipped := 0
	for _, pc := range unACE {
		if pc >= 0 && pc < n && !skip[pc] {
			skip[pc] = true
			skipped++
		}
	}
	if skipped == 0 || n == 0 {
		return Policy{Kind: PolicyFull}
	}
	if skipped == n && kernel != "" {
		return Policy{Kind: PolicyPerKernel, Kernels: []string{kernel}, Exclude: true}.Normalized()
	}
	var protect [][2]int
	for pc := 0; pc < n; pc++ {
		if skip[pc] {
			continue
		}
		if len(protect) > 0 && protect[len(protect)-1][1] == pc-1 {
			protect[len(protect)-1][1] = pc
			continue
		}
		protect = append(protect, [2]int{pc, pc})
	}
	if kernel == "" && len(protect) == 1 {
		return Policy{Kind: PolicyPCRange, PCLo: protect[0][0], PCHi: protect[0][1]}
	}
	if len(protect) == 0 {
		// skipped == n with no kernel name to scope by: protect nothing.
		return Policy{Kind: PolicyOff}
	}
	p := Policy{Kind: PolicyPCSet, PCRanges: protect, PCKernel: kernel}
	return p.Normalized()
}
