package arch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PolicyKind selects the selective-protection policy family: which
// eligible warp instructions the Warped-DMR engine actually verifies.
// The paper protects everything (PolicyFull); the other kinds trade
// coverage for overhead along the axes partial-protection work (Yang
// et al., PAPERS.md) shows matter: which kernels, which warps, which
// program regions, and how utilized the warp is. docs/POLICIES.md is
// the policy contract.
type PolicyKind int

const (
	// PolicyFull protects every eligible instruction — the paper's
	// always-on Warped-DMR, and the zero value: a Config that never
	// mentions policies behaves exactly as before they existed.
	PolicyFull PolicyKind = iota
	// PolicyOff protects nothing. Unlike DMROff, the machine still
	// counts eligible instructions, so coverage reads 0 instead of
	// being undefined — the Pareto sweep's origin point.
	PolicyOff
	// PolicyPerKernel protects only the kernels listed in
	// Policy.Kernels (or everything except them, with Exclude).
	PolicyPerKernel
	// PolicyWarpSample protects one warp in every Policy.SampleN,
	// selected deterministically by warp ID.
	PolicyWarpSample
	// PolicyActiveMask protects only instructions with at least
	// Policy.MinActive executing lanes — the warps whose verification
	// inter-warp DMR makes cheap.
	PolicyActiveMask
	// PolicyPCRange protects only instructions whose PC lies in
	// [Policy.PCLo, Policy.PCHi] — region protection for a kernel's
	// vulnerable phase.
	PolicyPCRange
	// PolicyPCSet protects the union of the PC ranges in
	// Policy.PCRanges, optionally scoped to one kernel (other kernels
	// stay fully protected). This is the spelling SynthesizePolicy
	// emits when a kernel's unACE PCs punch holes in the middle of the
	// program, where a single pcrange interval cannot express the
	// protected complement.
	PolicyPCSet
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyFull:
		return "full"
	case PolicyOff:
		return "off"
	case PolicyPerKernel:
		return "kernel"
	case PolicyWarpSample:
		return "warpsample"
	case PolicyActiveMask:
		return "activemask"
	case PolicyPCRange:
		return "pcrange"
	case PolicyPCSet:
		return "pcset"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy is the serializable selective-protection configuration. It
// rides inside Config, so it reaches every consumer a Config reaches:
// the engine, the CLIs, and the warpd job hash — two jobs that differ
// only in policy are distinct cache entries. The zero value is
// PolicyFull with no parameters, which is byte-identical to the
// pre-policy engine.
//
// Only the fields its Kind reads are meaningful; Normalize zeroes the
// rest so wire-level noise cannot fork a content hash.
type Policy struct {
	Kind PolicyKind

	// SampleN/SamplePhase (PolicyWarpSample): protect warps whose
	// SM-unique warp ID wid satisfies wid % SampleN == SamplePhase.
	// Warp IDs are assigned deterministically in dispatch order, so the
	// protected set is a pure function of (workload, config).
	SampleN     int
	SamplePhase int

	// MinActive (PolicyActiveMask): protect instructions with at least
	// this many executing lanes (1..32).
	MinActive int

	// PCLo/PCHi (PolicyPCRange): protect instructions with
	// PCLo <= PC <= PCHi.
	PCLo int
	PCHi int

	// PCRanges/PCKernel (PolicyPCSet): protect instructions whose PC
	// lies in any [lo, hi] pair of PCRanges. When PCKernel is non-empty
	// the set applies only to that kernel and every other kernel stays
	// fully protected — the scoping SynthesizePolicy needs so a policy
	// derived from one kernel's liveness never weakens its neighbours.
	PCRanges [][2]int
	PCKernel string

	// Kernels/Exclude (PolicyPerKernel): the kernel names the policy
	// selects. Exclude false protects exactly the listed kernels;
	// Exclude true protects everything except them.
	Kernels []string
	Exclude bool
}

// String renders the policy in the spelling ParsePolicy accepts — the
// one the CLIs' -policy flags and the warpd job spec use:
//
//	full
//	off
//	kernel:NAME[,NAME...]        kernel:!NAME[,NAME...]
//	warpsample:1/N[+PHASE]
//	activemask:MIN
//	pcrange:LO-HI
//	pcset:[KERNEL@]LO-HI[,LO-HI...]
func (p Policy) String() string {
	switch p.Kind {
	case PolicyFull:
		return "full"
	case PolicyOff:
		return "off"
	case PolicyPerKernel:
		neg := ""
		if p.Exclude {
			neg = "!"
		}
		return "kernel:" + neg + strings.Join(p.Kernels, ",")
	case PolicyWarpSample:
		if p.SamplePhase != 0 {
			return fmt.Sprintf("warpsample:1/%d+%d", p.SampleN, p.SamplePhase)
		}
		return fmt.Sprintf("warpsample:1/%d", p.SampleN)
	case PolicyActiveMask:
		return fmt.Sprintf("activemask:%d", p.MinActive)
	case PolicyPCRange:
		return fmt.Sprintf("pcrange:%d-%d", p.PCLo, p.PCHi)
	case PolicyPCSet:
		var b strings.Builder
		b.WriteString("pcset:")
		if p.PCKernel != "" {
			b.WriteString(p.PCKernel)
			b.WriteByte('@')
		}
		for i, r := range p.PCRanges {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d-%d", r[0], r[1])
		}
		return b.String()
	default:
		return fmt.Sprintf("Policy(%d)", int(p.Kind))
	}
}

// ParsePolicy parses the String spelling. The result is normalized and
// validated, so a parsed policy is ready to hash.
func ParsePolicy(s string) (Policy, error) {
	var p Policy
	kind, arg, hasArg := strings.Cut(strings.TrimSpace(s), ":")
	switch strings.ToLower(kind) {
	case "", "full":
		p.Kind = PolicyFull
	case "off", "none":
		p.Kind = PolicyOff
	case "kernel", "perkernel":
		p.Kind = PolicyPerKernel
		if strings.HasPrefix(arg, "!") {
			p.Exclude = true
			arg = arg[1:]
		}
		for _, name := range strings.Split(arg, ",") {
			if name = strings.TrimSpace(name); name != "" {
				p.Kernels = append(p.Kernels, name)
			}
		}
		if len(p.Kernels) == 0 {
			return p, fmt.Errorf("arch: policy %q: kernel policy needs at least one kernel name", s)
		}
	case "warpsample", "sample":
		p.Kind = PolicyWarpSample
		num := arg
		if phase, ok := strings.CutPrefix(arg, "1/"); ok {
			num = phase
		}
		if n, phase, ok := cutInt(num, "+"); ok {
			p.SampleN, p.SamplePhase = n, phase
		} else if n, err := strconv.Atoi(num); err == nil {
			p.SampleN = n
		} else {
			return p, fmt.Errorf("arch: policy %q: want warpsample:1/N[+PHASE], got %q", s, arg)
		}
	case "activemask", "active":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return p, fmt.Errorf("arch: policy %q: want activemask:MIN, got %q", s, arg)
		}
		p.Kind, p.MinActive = PolicyActiveMask, n
	case "pcrange", "pc":
		lo, hi, ok := cutInt(arg, "-")
		if !ok {
			return p, fmt.Errorf("arch: policy %q: want pcrange:LO-HI, got %q", s, arg)
		}
		p.Kind, p.PCLo, p.PCHi = PolicyPCRange, lo, hi
	case "pcset":
		p.Kind = PolicyPCSet
		ranges := arg
		if scope, rest, found := strings.Cut(arg, "@"); found {
			p.PCKernel, ranges = strings.TrimSpace(scope), rest
		}
		for _, r := range strings.Split(ranges, ",") {
			if r = strings.TrimSpace(r); r == "" {
				continue
			}
			lo, hi, ok := cutInt(r, "-")
			if !ok {
				return p, fmt.Errorf("arch: policy %q: want pcset:[KERNEL@]LO-HI[,LO-HI...], got range %q", s, r)
			}
			p.PCRanges = append(p.PCRanges, [2]int{lo, hi})
		}
		if len(p.PCRanges) == 0 {
			return p, fmt.Errorf("arch: policy %q: pcset needs at least one LO-HI range", s)
		}
	default:
		return p, fmt.Errorf("arch: unknown policy %q (want full, off, kernel:..., warpsample:1/N, activemask:MIN, pcrange:LO-HI or pcset:...)", s)
	}
	if hasArg && (p.Kind == PolicyFull || p.Kind == PolicyOff) && arg != "" {
		return p, fmt.Errorf("arch: policy %q takes no argument", kind)
	}
	p = p.Normalized()
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// cutInt parses "A+B" into (A, B); ok is false unless both halves are
// integers and the separator is present.
func cutInt(s, sep string) (a, b int, ok bool) {
	as, bs, found := strings.Cut(s, sep)
	if !found {
		return 0, 0, false
	}
	a, errA := strconv.Atoi(as)
	b, errB := strconv.Atoi(bs)
	return a, b, errA == nil && errB == nil
}

// Normalized returns the canonical form of the policy: parameters of
// other kinds zeroed, kernel lists sorted and deduplicated. Content
// hashing and equality checks must go through it — two spellings of
// the same policy normalize identically.
func (p Policy) Normalized() Policy {
	out := Policy{Kind: p.Kind}
	switch p.Kind {
	case PolicyFull, PolicyOff:
		// No parameters: the kind alone is the canonical form.
	case PolicyPerKernel:
		ks := append([]string(nil), p.Kernels...)
		sort.Strings(ks)
		ks = slicesCompact(ks)
		out.Kernels, out.Exclude = ks, p.Exclude
	case PolicyWarpSample:
		out.SampleN = p.SampleN
		if out.SampleN > 0 {
			out.SamplePhase = ((p.SamplePhase % out.SampleN) + out.SampleN) % out.SampleN
		}
	case PolicyActiveMask:
		out.MinActive = p.MinActive
	case PolicyPCRange:
		out.PCLo, out.PCHi = p.PCLo, p.PCHi
	case PolicyPCSet:
		out.PCKernel = p.PCKernel
		out.PCRanges = mergeRanges(p.PCRanges)
	}
	return out
}

// mergeRanges sorts inclusive [lo, hi] ranges and coalesces any that
// overlap or touch, so every protected-PC set has exactly one spelling.
// Empty ranges (hi < lo) survive only if nothing absorbs them, which
// keeps Validate able to reject them.
func mergeRanges(rs [][2]int) [][2]int {
	if len(rs) == 0 {
		return nil
	}
	sorted := append([][2]int(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	out := sorted[:1]
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r[0] <= last[1]+1 {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Validate reports the first policy-configuration error, or nil.
func (p Policy) Validate() error {
	switch p.Kind {
	case PolicyFull, PolicyOff:
		return nil
	case PolicyPerKernel:
		if len(p.Kernels) == 0 {
			return fmt.Errorf("arch: kernel policy needs at least one kernel name")
		}
		return nil
	case PolicyWarpSample:
		if p.SampleN < 1 {
			return fmt.Errorf("arch: warpsample period must be at least 1, got %d", p.SampleN)
		}
		if p.SamplePhase < 0 || p.SamplePhase >= p.SampleN {
			return fmt.Errorf("arch: warpsample phase %d out of 0..%d", p.SamplePhase, p.SampleN-1)
		}
		return nil
	case PolicyActiveMask:
		if p.MinActive < 1 || p.MinActive > 32 {
			return fmt.Errorf("arch: activemask threshold %d out of 1..32", p.MinActive)
		}
		return nil
	case PolicyPCRange:
		if p.PCLo < 0 || p.PCHi < p.PCLo {
			return fmt.Errorf("arch: pcrange %d-%d is not a valid PC interval", p.PCLo, p.PCHi)
		}
		return nil
	case PolicyPCSet:
		if len(p.PCRanges) == 0 {
			return fmt.Errorf("arch: pcset needs at least one PC range")
		}
		for _, r := range p.PCRanges {
			if r[0] < 0 || r[1] < r[0] {
				return fmt.Errorf("arch: pcset range %d-%d is not a valid PC interval", r[0], r[1])
			}
		}
		return nil
	default:
		return fmt.Errorf("arch: unknown policy kind %d", int(p.Kind))
	}
}

// ProtectsKernel reports whether the policy protects any instruction
// of the named kernel at all — the launch-time (per-kernel) half of
// the decision. Issue-time kinds return true here and decide per
// instruction instead.
func (p Policy) ProtectsKernel(name string) bool {
	switch p.Kind {
	case PolicyOff:
		return false
	case PolicyPerKernel:
		listed := false
		for _, k := range p.Kernels {
			if k == name {
				listed = true
				break
			}
		}
		return listed != p.Exclude
	case PolicyFull, PolicyWarpSample, PolicyActiveMask, PolicyPCRange, PolicyPCSet:
		return true
	default:
		return true
	}
}
