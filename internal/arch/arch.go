// Package arch defines the machine configuration for the simulated
// GPGPU and for the Warped-DMR error-detection hardware layered on top
// of it. A Config is immutable once a simulation starts; presets mirror
// the parameters in Table 3 of the Warped-DMR paper (MICRO-45, 2012).
package arch

import (
	"fmt"

	"warped/internal/cache"
)

// MappingPolicy selects how logical thread indices within a warp are
// assigned to physical SIMT lanes. The paper's baseline maps thread i
// to lane i ("linear"); its enhanced scheme assigns threads to SIMT
// clusters round-robin ("clusterRR"), which spreads the active threads
// of a partially-utilized warp across clusters and raises intra-warp
// DMR pairing opportunities (paper §4.2, +9.6% coverage).
type MappingPolicy int

const (
	// MapLinear assigns thread i to lane i (believed default on real GPUs).
	MapLinear MappingPolicy = iota
	// MapClusterRR assigns thread i to cluster (i mod #clusters),
	// slot (i / #clusters) within the cluster.
	MapClusterRR
)

func (m MappingPolicy) String() string {
	switch m {
	case MapLinear:
		return "linear"
	case MapClusterRR:
		return "clusterRR"
	default:
		return fmt.Sprintf("MappingPolicy(%d)", int(m))
	}
}

// SchedPolicy selects the warp scheduler's pick order.
type SchedPolicy int

const (
	// SchedLRR is loose round-robin: resume scanning after the last
	// issued warp (the baseline scheduler of GPGPU-Sim-era models).
	SchedLRR SchedPolicy = iota
	// SchedGTO is greedy-then-oldest: keep issuing from the same warp
	// until it stalls, then fall back to the oldest ready warp.
	SchedGTO
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedLRR:
		return "lrr"
	case SchedGTO:
		return "gto"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// DMRMode selects which parts of Warped-DMR are active.
type DMRMode int

const (
	// DMROff runs the plain machine with no error detection.
	DMROff DMRMode = iota
	// DMRIntra enables only intra-warp (spatial) DMR.
	DMRIntra
	// DMRInter enables only inter-warp (temporal) DMR with the ReplayQ.
	DMRInter
	// DMRFull enables both, i.e. complete Warped-DMR.
	DMRFull
	// DMRTemporalAll is the DMTR baseline: every instruction, full or
	// partial, is re-executed on its unit one cycle later (1-cycle-slack
	// SRT). Used only for the Fig. 10 comparison.
	DMRTemporalAll
)

func (m DMRMode) String() string {
	switch m {
	case DMROff:
		return "off"
	case DMRIntra:
		return "intra"
	case DMRInter:
		return "inter"
	case DMRFull:
		return "full"
	case DMRTemporalAll:
		return "dmtr"
	default:
		return fmt.Sprintf("DMRMode(%d)", int(m))
	}
}

// Config is the full machine description.
type Config struct {
	// --- chip geometry (paper Table 3) ---
	NumSMs          int // streaming multiprocessors per chip
	WarpSize        int // threads per warp (always 32 in this model)
	NumSPs          int // shader processors per SM (32 => warp issues in 1 cycle)
	ClusterSize     int // SIMT lanes per cluster sharing one RFU (4 or 8)
	MaxThreadsPerSM int // resident thread contexts per SM
	MaxBlocksPerSM  int // resident thread blocks per SM
	NumRegBanks     int // register file banks per SM
	SharedMemBytes  int // shared memory per SM
	RegFileBytes    int // register file per SM (used for ReplayQ sizing ratio)

	// --- pipeline latencies in cycles (paper Fig. 7) ---
	FetchLat  int
	DecodeLat int
	RFLat     int     // register fetch
	SPLat     int     // simple ALU/FPU op latency on an SP
	SFULat    int     // special-function latency
	SharedLat int     // shared-memory load-to-use latency
	GlobalLat int     // global-memory load-to-use latency
	ClockNS   float64 // cycle period in nanoseconds (1.25 ns = 800 MHz)

	// --- front end ---
	// NumSchedulers is the warp schedulers per SM (paper §2.2: Fermi
	// has two, sharing LD/ST and SFU groups but owning their SPs; the
	// paper's DMR machine uses one). Warped-DMR requires one scheduler.
	NumSchedulers int
	// Sched is the warp-pick policy.
	Sched SchedPolicy

	// --- register file ---
	// ModelRegBankConflicts charges extra register-fetch cycles when an
	// instruction's source registers collide in the same bank (paper
	// §2.1: 2R1W/3R1W usually proceed without port stalls, but same-bank
	// operands fetch over multiple cycles behind the operand buffer).
	ModelRegBankConflicts bool

	// --- memory system ---
	CoalesceBytes  int     // segment size for coalescing (128 B)
	NumSharedBanks int     // shared memory banks
	DRAMSegPerCyc  float64 // chip-wide DRAM segments served per cycle

	// Data caches (timing-only tag stores; data always comes from the
	// functional memory). ModelCaches false reverts to a flat
	// GlobalLat for every global access.
	ModelCaches bool
	L1          cache.Config // per-SM L1 data cache
	L2          cache.Config // chip-wide shared L2
	L1Lat       int          // L1 hit load-to-use latency
	L2Lat       int          // L2 hit load-to-use latency

	// --- Warped-DMR knobs ---
	DMR         DMRMode
	ReplayQSize int           // entries per SM (0..10 in the paper sweep)
	Mapping     MappingPolicy // thread->lane mapping
	IdleDrain   bool          // drain one ReplayQ entry on idle issue cycles
	LaneShuffle bool          // shuffle replay lanes within a cluster

	// Policy selects which eligible instructions the DMR engine
	// actually verifies (docs/POLICIES.md). The zero value protects
	// everything, byte-identical to the pre-policy engine; it is inert
	// when DMR is DMROff.
	Policy Policy

	// Sampling DMR (Nomura et al., ISCA'11 — the paper's related-work
	// comparison point): verify only during the first SampleOn cycles
	// of every SamplePeriod-cycle epoch. SamplePeriod 0 disables
	// sampling (Warped-DMR's always-on behaviour). Sampling detects
	// permanent faults eventually but misses transients that strike
	// outside the sampled window.
	SamplePeriod int64
	SampleOn     int64
}

// PaperConfig returns the baseline machine of Table 3: 30 SMs, 32-wide
// SIMT, 4-lane SIMT clusters, Fermi-era latencies, DMR disabled.
func PaperConfig() Config {
	return Config{
		NumSMs:          30,
		WarpSize:        32,
		NumSPs:          32,
		ClusterSize:     4,
		MaxThreadsPerSM: 1024,
		MaxBlocksPerSM:  8,
		NumRegBanks:     32,
		SharedMemBytes:  64 * 1024,
		RegFileBytes:    128 * 1024,

		FetchLat:  1,
		DecodeLat: 2,
		RFLat:     3,
		SPLat:     4,
		SFULat:    16,
		SharedLat: 24,
		GlobalLat: 300,
		ClockNS:   1.25,

		NumSchedulers: 1,
		Sched:         SchedLRR,

		ModelRegBankConflicts: true,

		CoalesceBytes:  128,
		NumSharedBanks: 32,
		DRAMSegPerCyc:  1.7, // ~174 GB/s of 128 B segments at 800 MHz

		ModelCaches: true,
		L1:          cache.Config{Sets: 32, Ways: 4, LineBytes: 128},  // 16 KB
		L2:          cache.Config{Sets: 512, Ways: 8, LineBytes: 128}, // 512 KB
		L1Lat:       30,
		L2Lat:       120,

		DMR:         DMROff,
		ReplayQSize: 10,
		Mapping:     MapLinear,
		IdleDrain:   true,
		LaneShuffle: true,
	}
}

// WarpedDMRConfig returns the paper's recommended configuration:
// full Warped-DMR, 10-entry ReplayQ, cross (round-robin) mapping.
func WarpedDMRConfig() Config {
	c := PaperConfig()
	c.DMR = DMRFull
	c.Mapping = MapClusterRR
	return c
}

// NumClusters returns the number of SIMT clusters per warp.
func (c Config) NumClusters() int { return c.WarpSize / c.ClusterSize }

// RegBanksPerCluster returns how many register banks serve one SIMT
// cluster (4 on the paper's machine: 32 banks over 8 clusters).
func (c Config) RegBanksPerCluster() int {
	n := c.NumRegBanks / c.NumClusters()
	if n < 1 {
		n = 1
	}
	return n
}

// MaxWarpsPerSM returns the number of resident warp contexts per SM.
func (c Config) MaxWarpsPerSM() int { return c.MaxThreadsPerSM / c.WarpSize }

// Validate reports the first configuration error found, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("arch: NumSMs must be positive, got %d", c.NumSMs)
	case c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("arch: WarpSize must be in 1..32, got %d", c.WarpSize)
	case c.ClusterSize <= 0 || c.WarpSize%c.ClusterSize != 0:
		return fmt.Errorf("arch: ClusterSize %d must divide WarpSize %d", c.ClusterSize, c.WarpSize)
	case c.MaxThreadsPerSM < c.WarpSize:
		return fmt.Errorf("arch: MaxThreadsPerSM %d below WarpSize %d", c.MaxThreadsPerSM, c.WarpSize)
	case c.MaxBlocksPerSM <= 0:
		return fmt.Errorf("arch: MaxBlocksPerSM must be positive, got %d", c.MaxBlocksPerSM)
	case c.SharedMemBytes < 0:
		return fmt.Errorf("arch: SharedMemBytes must be non-negative, got %d", c.SharedMemBytes)
	case c.ReplayQSize < 0:
		return fmt.Errorf("arch: ReplayQSize must be non-negative, got %d", c.ReplayQSize)
	case c.FetchLat <= 0 || c.DecodeLat <= 0 || c.RFLat <= 0:
		return fmt.Errorf("arch: front-end latencies must be positive")
	case c.SPLat <= 0 || c.SFULat <= 0 || c.SharedLat <= 0 || c.GlobalLat <= 0:
		return fmt.Errorf("arch: execution latencies must be positive")
	case c.CoalesceBytes <= 0:
		return fmt.Errorf("arch: CoalesceBytes must be positive, got %d", c.CoalesceBytes)
	case c.NumSharedBanks <= 0:
		return fmt.Errorf("arch: NumSharedBanks must be positive, got %d", c.NumSharedBanks)
	case c.DRAMSegPerCyc <= 0:
		return fmt.Errorf("arch: DRAMSegPerCyc must be positive, got %v", c.DRAMSegPerCyc)
	case c.NumSchedulers < 1 || c.NumSchedulers > 2:
		return fmt.Errorf("arch: NumSchedulers must be 1 or 2, got %d", c.NumSchedulers)
	case c.NumSchedulers > 1 && c.DMR != DMROff:
		return fmt.Errorf("arch: Warped-DMR requires a single scheduler per SM (the Replay Checker watches one issue stream)")
	case c.SamplePeriod < 0 || c.SampleOn < 0 || (c.SamplePeriod > 0 && c.SampleOn > c.SamplePeriod):
		return fmt.Errorf("arch: sampling window %d exceeds period %d", c.SampleOn, c.SamplePeriod)
	case c.ModelCaches && c.L1Lat <= 0:
		return fmt.Errorf("arch: L1Lat must be positive, got %d", c.L1Lat)
	case c.ModelCaches && c.L2Lat <= 0:
		return fmt.Errorf("arch: L2Lat must be positive, got %d", c.L2Lat)
	case c.ClockNS <= 0:
		return fmt.Errorf("arch: ClockNS must be positive, got %v", c.ClockNS)
	}
	if c.ModelCaches {
		if err := c.L1.Validate(); err != nil {
			return fmt.Errorf("arch: L1: %w", err)
		}
		if err := c.L2.Validate(); err != nil {
			return fmt.Errorf("arch: L2: %w", err)
		}
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	return nil
}

// LaneForThread maps a logical thread index within a warp to a physical
// SIMT lane according to the configured mapping policy.
func (c Config) LaneForThread(thread int) int {
	if c.Mapping == MapClusterRR {
		clusters := c.NumClusters()
		cluster := thread % clusters
		slot := thread / clusters
		return cluster*c.ClusterSize + slot
	}
	return thread
}

// ThreadForLane is the inverse of LaneForThread.
func (c Config) ThreadForLane(lane int) int {
	if c.Mapping == MapClusterRR {
		clusters := c.NumClusters()
		cluster := lane / c.ClusterSize
		slot := lane % c.ClusterSize
		return slot*clusters + cluster
	}
	return lane
}
