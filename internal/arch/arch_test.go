package arch

import (
	"testing"
	"testing/quick"
)

func TestPaperConfigMatchesTable3(t *testing.T) {
	c := PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The values the paper fixes in Table 3.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"NumSMs", c.NumSMs, 30},
		{"WarpSize", c.WarpSize, 32},
		{"NumSPs", c.NumSPs, 32},
		{"MaxThreadsPerSM", c.MaxThreadsPerSM, 1024},
		{"NumRegBanks", c.NumRegBanks, 32},
		{"SharedMemBytes", c.SharedMemBytes, 64 * 1024},
		{"ClusterSize", c.ClusterSize, 4},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
	if c.ClockNS != 1.25 {
		t.Errorf("ClockNS = %v, want 1.25 (800 MHz)", c.ClockNS)
	}
	if c.DMR != DMROff {
		t.Errorf("baseline config must have DMR off, got %v", c.DMR)
	}
}

func TestWarpedDMRConfig(t *testing.T) {
	c := WarpedDMRConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.DMR != DMRFull {
		t.Errorf("DMR = %v, want full", c.DMR)
	}
	if c.Mapping != MapClusterRR {
		t.Errorf("Mapping = %v, want clusterRR", c.Mapping)
	}
	if c.ReplayQSize != 10 {
		t.Errorf("ReplayQSize = %d, want 10 (paper's choice)", c.ReplayQSize)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }},
		{"warp size 0", func(c *Config) { c.WarpSize = 0 }},
		{"warp size 33", func(c *Config) { c.WarpSize = 33 }},
		{"cluster not dividing warp", func(c *Config) { c.ClusterSize = 5 }},
		{"cluster zero", func(c *Config) { c.ClusterSize = 0 }},
		{"threads below warp", func(c *Config) { c.MaxThreadsPerSM = 16 }},
		{"no blocks", func(c *Config) { c.MaxBlocksPerSM = 0 }},
		{"negative shared", func(c *Config) { c.SharedMemBytes = -1 }},
		{"negative replayq", func(c *Config) { c.ReplayQSize = -1 }},
		{"zero fetch latency", func(c *Config) { c.FetchLat = 0 }},
		{"zero SP latency", func(c *Config) { c.SPLat = 0 }},
		{"zero coalesce", func(c *Config) { c.CoalesceBytes = 0 }},
		{"zero banks", func(c *Config) { c.NumSharedBanks = 0 }},
		{"zero DRAM bw", func(c *Config) { c.DRAMSegPerCyc = 0 }},
		{"zero clock", func(c *Config) { c.ClockNS = 0 }},
	}
	for _, m := range mutations {
		c := PaperConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", m.name)
		}
	}
}

func TestLaneMappingLinear(t *testing.T) {
	c := PaperConfig()
	c.Mapping = MapLinear
	for th := 0; th < 32; th++ {
		if got := c.LaneForThread(th); got != th {
			t.Fatalf("linear LaneForThread(%d) = %d", th, got)
		}
	}
}

func TestLaneMappingClusterRR(t *testing.T) {
	c := PaperConfig()
	c.Mapping = MapClusterRR
	// Thread i goes to cluster i mod 8 (paper §4.2): thread 0 -> lane 0,
	// thread 1 -> cluster 1 -> lane 4, thread 8 -> cluster 0 slot 1 -> lane 1.
	cases := map[int]int{0: 0, 1: 4, 2: 8, 7: 28, 8: 1, 9: 5, 31: 31}
	for th, want := range cases {
		if got := c.LaneForThread(th); got != want {
			t.Errorf("clusterRR LaneForThread(%d) = %d, want %d", th, got, want)
		}
	}
}

func TestLaneMappingBijection(t *testing.T) {
	for _, m := range []MappingPolicy{MapLinear, MapClusterRR} {
		for _, cluster := range []int{1, 2, 4, 8, 16, 32} {
			c := PaperConfig()
			c.Mapping = m
			c.ClusterSize = cluster
			seen := make(map[int]bool)
			for th := 0; th < 32; th++ {
				lane := c.LaneForThread(th)
				if lane < 0 || lane >= 32 {
					t.Fatalf("%v/%d: lane %d out of range", m, cluster, lane)
				}
				if seen[lane] {
					t.Fatalf("%v/%d: lane %d assigned twice", m, cluster, lane)
				}
				seen[lane] = true
				if back := c.ThreadForLane(lane); back != th {
					t.Fatalf("%v/%d: ThreadForLane(LaneForThread(%d)) = %d", m, cluster, th, back)
				}
			}
		}
	}
}

func TestLaneMappingRoundTripQuick(t *testing.T) {
	c := WarpedDMRConfig()
	f := func(th uint8) bool {
		t := int(th % 32)
		return c.ThreadForLane(c.LaneForThread(t)) == t
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if MapLinear.String() != "linear" || MapClusterRR.String() != "clusterRR" {
		t.Error("MappingPolicy String broken")
	}
	for m, want := range map[DMRMode]string{
		DMROff: "off", DMRIntra: "intra", DMRInter: "inter",
		DMRFull: "full", DMRTemporalAll: "dmtr",
	} {
		if m.String() != want {
			t.Errorf("DMRMode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestDerivedGeometry(t *testing.T) {
	c := PaperConfig()
	if c.NumClusters() != 8 {
		t.Errorf("NumClusters = %d, want 8", c.NumClusters())
	}
	if c.MaxWarpsPerSM() != 32 {
		t.Errorf("MaxWarpsPerSM = %d, want 32", c.MaxWarpsPerSM())
	}
}
