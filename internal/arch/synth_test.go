package arch

import (
	"reflect"
	"testing"
)

// TestSynthesizePolicy: the unACE-PC-list-to-policy bridge picks the
// cheapest sound spelling for each shape of dead-code distribution.
func TestSynthesizePolicy(t *testing.T) {
	cases := []struct {
		name   string
		kernel string
		n      int
		unACE  []int
		want   string
	}{
		{"no dead PCs", "K", 10, nil, "full"},
		{"out-of-range PCs ignored", "K", 10, []int{-1, 10, 99}, "full"},
		{"all dead, scoped", "K", 3, []int{0, 1, 2}, "kernel:!K"},
		{"all dead, unscoped", "", 3, []int{0, 1, 2}, "off"},
		{"hole in the middle", "vuln_micro", 18, []int{11, 12, 13, 14, 15}, "pcset:vuln_micro@0-10,16-17"},
		{"suffix dead, unscoped", "", 10, []int{7, 8, 9}, "pcrange:0-6"},
		{"prefix dead, scoped", "K", 6, []int{0, 1}, "pcset:K@2-5"},
		{"duplicates collapse", "K", 4, []int{1, 1, 1}, "pcset:K@0-0,2-3"},
	}
	for _, c := range cases {
		p := SynthesizePolicy(c.kernel, c.n, c.unACE)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: synthesized invalid policy: %v", c.name, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("%s: SynthesizePolicy(%q, %d, %v) = %q, want %q",
				c.name, c.kernel, c.n, c.unACE, got, c.want)
		}
		if !reflect.DeepEqual(p, p.Normalized()) {
			t.Errorf("%s: synthesized policy %v is not in canonical form", c.name, p)
		}
	}
}

// TestSynthesizePolicyProtectsExactlyTheACEPCs: round-trip through the
// string spelling and check the protected set is the complement of the
// unACE list — the property the vulncheck experiment depends on.
func TestSynthesizePolicyProtectsExactlyTheACEPCs(t *testing.T) {
	const n = 25
	unACE := []int{0, 3, 4, 5, 11, 24}
	p, err := ParsePolicy(SynthesizePolicy("K", n, unACE).String())
	if err != nil {
		t.Fatalf("synthesized spelling does not re-parse: %v", err)
	}
	dead := map[int]bool{}
	for _, pc := range unACE {
		dead[pc] = true
	}
	inSet := func(pc int) bool {
		for _, r := range p.PCRanges {
			if pc >= r[0] && pc <= r[1] {
				return true
			}
		}
		return false
	}
	for pc := 0; pc < n; pc++ {
		if got, want := inSet(pc), !dead[pc]; got != want {
			t.Errorf("PC %d: protected = %v, want %v", pc, got, want)
		}
	}
}
