package arch

import (
	"reflect"
	"testing"
)

// FuzzParsePolicy: ParsePolicy must never panic, and every accepted
// spelling must reach a fixpoint — re-parsing String() of the parsed
// policy yields the identical normalized policy. The fixpoint is what
// the warpd job hash relies on: a policy that survived one round trip
// can never drift on the next.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"full", "off", "kernel:BFS,SHA", "kernel:!MatrixMul",
		"warpsample:1/4+2", "activemask:16", "pcrange:0-128",
		"pcset:3-5,9-12", "pcset:vuln_micro@0-10,16-17",
		"pcset:5-6,0-2,4-4", "pc:-1-2", "kernel:", "quantum", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if !reflect.DeepEqual(p, p.Normalized()) {
			t.Fatalf("ParsePolicy(%q) = %+v is not normalized", s, p)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePolicy(%q) accepted an invalid policy: %v", s, err)
		}
		again, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q).String() = %q does not re-parse: %v", s, p.String(), err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("round trip of %q drifted: %+v -> %q -> %+v", s, p, p.String(), again)
		}
	})
}
