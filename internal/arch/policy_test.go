package arch

import (
	"reflect"
	"testing"
)

// TestParsePolicyRoundTrip: every canonical spelling parses, and
// String() reproduces it exactly.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, s := range []string{
		"full",
		"off",
		"kernel:BFS",
		"kernel:BFS,SHA",
		"kernel:!MatrixMul",
		"warpsample:1/2",
		"warpsample:1/4+2",
		"activemask:16",
		"pcrange:0-128",
		"pcset:3-5,9-12",
		"pcset:vuln_micro@0-10,16-17",
	} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("ParsePolicy(%q).String() = %q", s, got)
		}
	}
}

// TestParsePolicyAliases: alternative spellings normalize to the same
// policy as the canonical one — critical for content hashing, where two
// spellings of one policy must collide.
func TestParsePolicyAliases(t *testing.T) {
	cases := [][2]string{
		{"", "full"},
		{"none", "off"},
		{"perkernel:BFS", "kernel:BFS"},
		{"kernel:SHA,BFS,SHA", "kernel:BFS,SHA"}, // sorted, deduped
		{"warpsample:2", "warpsample:1/2"},
		{"sample:1/4", "warpsample:1/4"},
		{"warpsample:1/4+6", "warpsample:1/4+2"}, // phase wrapped mod N
		{"active:16", "activemask:16"},
		{"pc:0-128", "pcrange:0-128"},
		{"pcset:5-6,0-2,4-4", "pcset:0-2,4-6"},      // sorted, adjacent merged
		{"pcset:0-8,3-5,6-12", "pcset:0-12"},        // overlaps coalesced
		{"pcset: K @ 1-2 , 4-5", "pcset:K@1-2,4-5"}, // whitespace trimmed
	}
	for _, c := range cases {
		a, err := ParsePolicy(c[0])
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c[0], err)
			continue
		}
		b, err := ParsePolicy(c[1])
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c[1], err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("ParsePolicy(%q) = %+v, want same as %q = %+v", c[0], a, c[1], b)
		}
	}
}

// TestParsePolicyRejects: malformed spellings fail loudly.
func TestParsePolicyRejects(t *testing.T) {
	for _, s := range []string{
		"quantum",
		"full:arg",
		"off:arg",
		"kernel:",
		"kernel:!",
		"warpsample:0",
		"warpsample:1/0",
		"warpsample:x",
		"activemask:0",
		"activemask:33",
		"activemask:lots",
		"pcrange:10-5",
		"pcrange:-4-2",
		"pcrange:abc",
		"pcset:",
		"pcset:K@",
		"pcset:10-5",
		"pcset:0-3,9-7",
		"pcset:abc",
	} {
		if p, err := ParsePolicy(s); err == nil {
			t.Errorf("ParsePolicy(%q) accepted: %+v", s, p)
		}
	}
}

// TestPolicyNormalizedZeroesForeignFields: wire-level noise in fields
// the kind does not read cannot fork a canonical form.
func TestPolicyNormalizedZeroesForeignFields(t *testing.T) {
	noisy := Policy{Kind: PolicyActiveMask, MinActive: 8, SampleN: 3, PCHi: 99, Kernels: []string{"x"}}
	want := Policy{Kind: PolicyActiveMask, MinActive: 8}
	if got := noisy.Normalized(); !reflect.DeepEqual(got, want) {
		t.Errorf("Normalized() = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(Policy{}.Normalized(), Policy{}) {
		t.Error("zero policy must normalize to itself")
	}
}

// TestPolicyProtectsKernel: the launch-time half of the decision.
func TestPolicyProtectsKernel(t *testing.T) {
	include := Policy{Kind: PolicyPerKernel, Kernels: []string{"BFS", "SHA"}}
	exclude := Policy{Kind: PolicyPerKernel, Kernels: []string{"BFS"}, Exclude: true}
	cases := []struct {
		p    Policy
		name string
		want bool
	}{
		{Policy{}, "anything", true},
		{Policy{Kind: PolicyOff}, "anything", false},
		{include, "BFS", true},
		{include, "MatrixMul", false},
		{exclude, "BFS", false},
		{exclude, "MatrixMul", true},
		{Policy{Kind: PolicyWarpSample, SampleN: 4}, "anything", true},
		{Policy{Kind: PolicyPCSet, PCRanges: [][2]int{{0, 4}}, PCKernel: "BFS"}, "SHA", true},
	}
	for _, c := range cases {
		if got := c.p.ProtectsKernel(c.name); got != c.want {
			t.Errorf("%v.ProtectsKernel(%q) = %v, want %v", c.p, c.name, got, c.want)
		}
	}
}

// TestConfigValidateChecksPolicy: a bad policy riding in a Config is
// rejected by the same gate every consumer already calls.
func TestConfigValidateChecksPolicy(t *testing.T) {
	cfg := WarpedDMRConfig()
	cfg.Policy = Policy{Kind: PolicyWarpSample} // SampleN 0
	if err := cfg.Validate(); err == nil {
		t.Error("Config.Validate accepted an invalid policy")
	}
	cfg.Policy = Policy{Kind: PolicyWarpSample, SampleN: 4}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Config.Validate rejected a valid policy: %v", err)
	}
}
