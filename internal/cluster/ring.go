// Package cluster is the distributed tier of warpd: a coordinator
// that consistent-hashes content-addressed job specs across a pool of
// warpd workers, speaking the existing HTTP protocol on both sides —
// callers submit to the coordinator exactly as they would to a single
// daemon, and the coordinator dispatches to workers through the same
// typed client everyone else uses.
//
// The shard key is free: every job is already addressed by the
// SHA-256 of its canonical spec (internal/service), so placement is a
// pure function of the work itself. Identical submissions from any
// number of callers land on the same ring position, coalesce onto one
// dispatch, and share one durable store entry. See docs/CLUSTER.md
// for topology, hedging policy, and failure modes.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is
// hashed onto the ring at VNodes points; a key is served by the first
// member clockwise from the key's own hash. Membership changes move
// only the keys adjacent to the changed member's points — the property
// that makes worker ejection/readmission cheap. All methods are safe
// for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes is the virtual-node count per member when the caller
// does not choose one: enough to keep the keyspace split within a few
// percent of fair for small pools, cheap enough to rebuild on every
// membership change.
const DefaultVNodes = 64

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hashKey positions a key (or a member's vnode label) on the ring:
// the first 8 bytes of its SHA-256, the same primitive as the job
// content address, so placement is stable across processes and builds.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[node] {
		return
	}
	r.members[node] = true
	r.rebuildLocked()
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	r.rebuildLocked()
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[node]
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var nodes []string
	for n := range r.members {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// rebuildLocked regenerates the sorted vnode points. Caller holds r.mu.
func (r *Ring) rebuildLocked() {
	var nodes []string
	for n := range r.members {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	r.points = r.points[:0]
	buf := make([]byte, 0, 80)
	for _, n := range nodes {
		for i := 0; i < r.vnodes; i++ {
			buf = append(buf[:0], n...)
			buf = append(buf, '#')
			buf = appendInt(buf, i)
			r.points = append(r.points, ringPoint{hash: hashKey(string(buf)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// appendInt appends the decimal form of i (avoiding fmt on the rebuild
// path).
func appendInt(buf []byte, i int) []byte {
	if i == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	pos := len(tmp)
	for i > 0 {
		pos--
		tmp[pos] = byte('0' + i%10)
		i /= 10
	}
	return append(buf, tmp[pos:]...)
}

// Pick returns the member serving key — the first vnode clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Pick(key string) (node string, ok bool) {
	nodes := r.Successors(key, 1)
	if len(nodes) == 0 {
		return "", false
	}
	return nodes[0], true
}

// Successors returns up to n distinct members in ring order starting
// at key's position: the primary first, then the failover candidates a
// hedged retry walks. n <= 0 or n > members returns every member.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
