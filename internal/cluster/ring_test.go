package cluster

import (
	"fmt"
	"testing"
)

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Pick("anything"); ok {
		t.Error("Pick on an empty ring reported ok")
	}
	if s := r.Successors("anything", 3); s != nil {
		t.Errorf("Successors on an empty ring = %v, want nil", s)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestRingDeterministicPlacement(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		for _, n := range []string{"w2", "w0", "w1"} {
			r.Add(n)
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i)
		na, _ := a.Pick(key)
		nb, _ := b.Pick(key)
		if na != nb {
			t.Fatalf("key %d placed on %s and %s by identical rings", i, na, nb)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(64)
	workers := []string{"w0", "w1", "w2", "w3"}
	for _, w := range workers {
		r.Add(w)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		n, ok := r.Pick(fmt.Sprintf("%064x", i))
		if !ok {
			t.Fatal("Pick failed on a populated ring")
		}
		counts[n]++
	}
	// Every worker takes a real share: no worker starved, none past
	// double its fair share. 64 vnodes keeps a 4-node ring well inside
	// these bounds.
	fair := keys / len(workers)
	for _, w := range workers {
		if counts[w] < fair/2 || counts[w] > fair*2 {
			t.Errorf("worker %s serves %d of %d keys (fair %d): imbalanced", w, counts[w], keys, fair)
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) = %v", key, succ)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q, 3) repeats %s: %v", key, n, succ)
			}
			seen[n] = true
		}
		if primary, _ := r.Pick(key); primary != succ[0] {
			t.Fatalf("Pick(%q) = %s but Successors[0] = %s", key, primary, succ[0])
		}
		// Asking past the member count returns everyone, once.
		if all := r.Successors(key, 99); len(all) != 5 {
			t.Fatalf("Successors(%q, 99) = %d nodes, want all 5", key, len(all))
		}
	}
}

// TestRingRemoveMovesOnlyOrphanedKeys: ejecting one node relocates its
// keys and ONLY its keys — consistent hashing's reason to exist.
func TestRingRemoveMovesOnlyOrphanedKeys(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	const keys = 1000
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Pick(fmt.Sprintf("%064x", i))
	}
	r.Remove("w2")
	for i := range before {
		after, _ := r.Pick(fmt.Sprintf("%064x", i))
		if before[i] == "w2" {
			if after == "w2" {
				t.Fatalf("key %d still on the removed node", i)
			}
		} else if after != before[i] {
			t.Fatalf("key %d moved %s -> %s though its node stayed", i, before[i], after)
		}
	}
	// Readmission restores the original placement exactly.
	r.Add("w2")
	for i := range before {
		after, _ := r.Pick(fmt.Sprintf("%064x", i))
		if after != before[i] {
			t.Fatalf("key %d on %s after readmission, originally %s", i, after, before[i])
		}
	}
}

func TestRingMembershipOps(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	r.Add("a") // idempotent
	r.Add("b")
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Nodes = %v, want [a b]", got)
	}
	if !r.Has("a") || r.Has("c") {
		t.Error("Has misreports membership")
	}
	r.Remove("c") // idempotent
	r.Remove("a")
	if r.Len() != 1 || r.Has("a") {
		t.Errorf("after Remove: Len=%d Has(a)=%v", r.Len(), r.Has("a"))
	}
}
