package cluster_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warped"
	"warped/client"
	"warped/internal/cluster"
	"warped/internal/metrics"
	"warped/internal/service"
	"warped/internal/store"
)

// tinySrc is a near-instant inline kernel for coalescing/failover
// tests.
const tinySrc = `
.kernel tiny
	mov  r0, %tid.x
	iadd r1, r0, 1
	exit
`

// newWorker spins up one real warpd worker over httptest.
func newWorker(t *testing.T, opt service.Options) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	if opt.Metrics == nil {
		opt.Metrics = metrics.New()
	}
	srv := service.New(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.Drain(context.Background()) })
	return ts, opt.Metrics
}

// newCoordinator wires a coordinator over the given worker URLs and
// serves it over httptest, returning a client pointed at it. Drain is
// registered before the server Close so in-flight dispatches are
// cancelled while the test servers still accept connections.
func newCoordinator(t *testing.T, opts cluster.Options) (*cluster.Coordinator, *client.Client) {
	t.Helper()
	co := cluster.New(opts)
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = co.Drain(ctx)
	})
	c := client.New(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return co, c
}

// TestClusterStatsMatchDirectRun is the acceptance check: a benchmark
// job submitted through a 2-worker coordinator answers byte-identical
// stats to a direct library run — sharding, dispatch, and the durable
// store must never change the science.
func TestClusterStatsMatchDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full MatrixMul run")
	}
	w1, _ := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})
	w2, _ := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})
	_, c := newCoordinator(t, cluster.Options{
		Workers:       []string{w1.URL, w2.URL},
		Store:         openStore(t, t.TempDir()),
		ProbeInterval: time.Hour, // keep probes out of this test
	})
	ctx := context.Background()

	resp, err := c.Submit(ctx, &client.JobSpec{Benchmark: "MatrixMul"})
	if err != nil {
		t.Fatalf("Submit through coordinator: %v", err)
	}
	res, err := c.Wait(ctx, resp.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}

	direct, err := (&warped.Runner{}).Run(ctx, "MatrixMul")
	if err != nil {
		t.Fatalf("direct Run: %v", err)
	}
	got, _ := json.Marshal(res.Stats)
	want, _ := json.Marshal(direct.Stats)
	if string(got) != string(want) {
		t.Errorf("cluster stats differ from direct run:\ncluster: %s\ndirect:  %s", got, want)
	}
	if res.Attempts != direct.Attempts || res.Detections != direct.Detections {
		t.Errorf("bookkeeping differs: cluster {%d %d}, direct {%d %d}",
			res.Attempts, res.Detections, direct.Attempts, direct.Detections)
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterCoalescing: N concurrent identical submissions from
// different callers produce exactly one dispatch to the pool and one
// worker-side execution.
func TestClusterCoalescing(t *testing.T) {
	w1, reg1 := newWorker(t, service.Options{Workers: 2, QueueDepth: 16})
	w2, reg2 := newWorker(t, service.Options{Workers: 2, QueueDepth: 16})
	reg := metrics.New()
	_, c := newCoordinator(t, cluster.Options{
		Workers:       []string{w1.URL, w2.URL},
		Metrics:       reg,
		ProbeInterval: time.Hour,
	})
	ctx := context.Background()

	spec := &client.JobSpec{Source: tinySrc}
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			ids[i] = resp.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got ID %s, submission 0 got %s", i, ids[i], ids[0])
		}
	}
	if _, err := c.Wait(ctx, ids[0]); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["cluster.dispatches_total"]; got != 1 {
		t.Errorf("cluster.dispatches_total = %d after %d identical submissions, want 1", got, n)
	}
	if got := snap.Counters["cluster.coalesced_total"]; got != n-1 {
		t.Errorf("cluster.coalesced_total = %d, want %d", got, n-1)
	}
	executed := reg1.Snapshot().Counters["service.jobs_executed_total"] +
		reg2.Snapshot().Counters["service.jobs_executed_total"]
	if executed != 1 {
		t.Errorf("workers executed the job %d times, want exactly 1", executed)
	}

	// A later identical submission is a coordinator memory hit — no new
	// dispatch, answered done immediately.
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !resp.Cached || resp.Status != "done" {
		t.Errorf("resubmit = %+v, want cached done", resp)
	}
	if got := reg.Snapshot().Counters["cluster.dispatches_total"]; got != 1 {
		t.Errorf("dispatches_total = %d after resubmit, want still 1", got)
	}
}

// primaryFor reproduces the coordinator's placement for a spec over a
// worker pool, so tests can make the primary the faulty one and pin
// failover behavior deterministically.
func primaryFor(t *testing.T, spec *client.JobSpec, workers ...string) string {
	t.Helper()
	hash, _, err := service.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := cluster.NewRing(0)
	for _, w := range workers {
		r.Add(w)
	}
	primary, ok := r.Pick(hash)
	if !ok {
		t.Fatal("empty test ring")
	}
	return primary
}

// TestClusterRedispatchOnDrainingWorker: the job's primary worker is
// draining (503s every submission); the coordinator re-dispatches to
// the next ring node and the caller sees a clean result, no error.
func TestClusterRedispatchOnDrainingWorker(t *testing.T) {
	good, goodReg := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.Method == http.MethodPost {
			w.Header().Set("Retry-After", "5")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "service: draining"})
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(draining.Close)

	spec := &client.JobSpec{Source: tinySrc}
	if primaryFor(t, spec, good.URL, draining.URL) != draining.URL {
		// Placement is content-addressed: perturb the spec until it
		// lands on the draining worker so the test always exercises the
		// failover path.
		for i := 0; i < 1000; i++ {
			spec.Params = []uint32{uint32(i)}
			if primaryFor(t, spec, good.URL, draining.URL) == draining.URL {
				break
			}
		}
	}
	if primaryFor(t, spec, good.URL, draining.URL) != draining.URL {
		t.Fatal("could not steer a spec onto the draining worker")
	}

	reg := metrics.New()
	_, c := newCoordinator(t, cluster.Options{
		Workers:       []string{good.URL, draining.URL},
		Metrics:       reg,
		ProbeInterval: time.Hour,
	})
	ctx := context.Background()
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := c.Wait(ctx, resp.ID)
	if err != nil {
		t.Fatalf("Wait through a draining primary: %v", err)
	}
	if res.Stats == nil {
		t.Fatal("nil stats through failover")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cluster.redispatches_total"]; got != 1 {
		t.Errorf("redispatches_total = %d, want 1", got)
	}
	if got := goodReg.Snapshot().Counters["service.jobs_executed_total"]; got != 1 {
		t.Errorf("good worker executed %d jobs, want 1", got)
	}
}

// TestClusterWorkerDiesMidJob: the primary accepts the job then its
// connections start dying (the worker was killed). The coordinator
// ejects it, re-dispatches to the successor, and the caller still gets
// the correct result.
func TestClusterWorkerDiesMidJob(t *testing.T) {
	good, _ := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})

	// The dying worker: admits the submission with the correct content
	// address, then kills the connection of every status poll — exactly
	// what a caller sees when a worker process is SIGKILLed mid-job.
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			data, _ := io.ReadAll(r.Body)
			spec, err := service.ParseSpec(data)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			_, id, err := service.SpecKey(spec)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "queued"})
			return
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server does not support hijacking")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(dying.Close)

	spec := &client.JobSpec{Source: tinySrc}
	if primaryFor(t, spec, good.URL, dying.URL) != dying.URL {
		for i := 0; i < 1000; i++ {
			spec.Params = []uint32{uint32(i)}
			if primaryFor(t, spec, good.URL, dying.URL) == dying.URL {
				break
			}
		}
	}
	if primaryFor(t, spec, good.URL, dying.URL) != dying.URL {
		t.Fatal("could not steer a spec onto the dying worker")
	}

	reg := metrics.New()
	co, c := newCoordinator(t, cluster.Options{
		Workers:       []string{good.URL, dying.URL},
		Metrics:       reg,
		ProbeInterval: time.Hour,
	})
	ctx := context.Background()
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := c.Wait(ctx, resp.ID)
	if err != nil {
		t.Fatalf("Wait through a dying primary: %v", err)
	}
	if res.Stats == nil {
		t.Fatal("nil stats through failover")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cluster.redispatches_total"]; got != 1 {
		t.Errorf("redispatches_total = %d, want 1", got)
	}
	if got := snap.Counters["cluster.worker_ejections_total"]; got != 1 {
		t.Errorf("worker_ejections_total = %d, want 1 (dead worker ejected synchronously)", got)
	}
	if co.Healthy(dying.URL) {
		t.Error("dying worker still on the ring after a dead-connection dispatch")
	}
}

// TestClusterLatencyHedge: a primary that sits on the job past
// HedgeAfter triggers a concurrent hedge dispatch; the fast successor
// wins and the caller never notices.
func TestClusterLatencyHedge(t *testing.T) {
	good, _ := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})

	// The slow worker admits the job and then reports "running" forever.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			data, _ := io.ReadAll(r.Body)
			spec, err := service.ParseSpec(data)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			_, id, _ := service.SpecKey(spec)
			w.WriteHeader(http.StatusAccepted)
			_ = json.NewEncoder(w).Encode(map[string]string{"id": id, "status": "queued"})
		case r.URL.Path == "/readyz":
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
		default:
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "running"})
		}
	}))
	t.Cleanup(slow.Close)

	spec := &client.JobSpec{Source: tinySrc}
	if primaryFor(t, spec, good.URL, slow.URL) != slow.URL {
		for i := 0; i < 1000; i++ {
			spec.Params = []uint32{uint32(i)}
			if primaryFor(t, spec, good.URL, slow.URL) == slow.URL {
				break
			}
		}
	}
	if primaryFor(t, spec, good.URL, slow.URL) != slow.URL {
		t.Fatal("could not steer a spec onto the slow worker")
	}

	reg := metrics.New()
	_, c := newCoordinator(t, cluster.Options{
		Workers:       []string{good.URL, slow.URL},
		Metrics:       reg,
		HedgeAfter:    30 * time.Millisecond,
		ProbeInterval: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := c.Wait(ctx, resp.ID)
	if err != nil {
		t.Fatalf("Wait with a stuck primary: %v", err)
	}
	if res.Stats == nil {
		t.Fatal("nil stats through the hedge")
	}
	if got := reg.Snapshot().Counters["cluster.hedges_fired_total"]; got != 1 {
		t.Errorf("hedges_fired_total = %d, want 1", got)
	}
}

// TestClusterColdStartServesFromStore: a brand-new coordinator process
// over yesterday's store directory — with zero workers configured —
// answers a previously-computed job from disk, byte-identical.
func TestClusterColdStartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := &client.JobSpec{Source: tinySrc}

	w1, _ := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})
	co1, c1 := newCoordinator(t, cluster.Options{
		Workers:       []string{w1.URL},
		Store:         openStore(t, dir),
		ProbeInterval: time.Hour,
	})
	resp1, err := c1.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res1, err := c1.Wait(ctx, resp1.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := co1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Second life: no workers at all — only the store survives.
	reg := metrics.New()
	_, c2 := newCoordinator(t, cluster.Options{
		Store:         openStore(t, dir),
		Metrics:       reg,
		ProbeInterval: time.Hour,
	})
	resp2, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("cold Submit: %v", err)
	}
	if !resp2.Cached || resp2.Status != "done" || resp2.ID != resp1.ID {
		t.Fatalf("cold Submit = %+v, want cached done id %s", resp2, resp1.ID)
	}
	res2, err := c2.Result(ctx, resp2.ID)
	if err != nil {
		t.Fatalf("cold Result: %v", err)
	}
	got, _ := json.Marshal(res2.Stats)
	want, _ := json.Marshal(res1.Stats)
	if string(got) != string(want) {
		t.Errorf("cold-start stats differ:\nstore: %s\nfirst: %s", got, want)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.store_hits_total"] != 1 {
		t.Errorf("store_hits_total = %d, want 1", snap.Counters["cluster.store_hits_total"])
	}
	if snap.Counters["cluster.dispatches_total"] != 0 {
		t.Errorf("dispatches_total = %d on a workerless coordinator, want 0",
			snap.Counters["cluster.dispatches_total"])
	}

	// A job the store has never seen is unservable without workers.
	if _, err := c2.Submit(ctx, &client.JobSpec{Benchmark: "MatrixMul"}); err == nil {
		t.Error("novel Submit on a workerless coordinator succeeded, want 503")
	}
}

// TestClusterProbeEjectionAndReadmission: the Ready prober takes a
// worker that stops answering off the ring and puts it back when it
// recovers, with the topology endpoint tracking both transitions.
func TestClusterProbeEjectionAndReadmission(t *testing.T) {
	var sick atomic.Bool
	w1srv := service.New(service.Options{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() { _ = w1srv.Drain(context.Background()) })
	inner := w1srv.Handler()
	w1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() && r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(w1.Close)
	w2, _ := newWorker(t, service.Options{Workers: 1, QueueDepth: 4})

	reg := metrics.New()
	co, _ := newCoordinator(t, cluster.Options{
		Workers:       []string{w1.URL, w2.URL},
		Metrics:       reg,
		ProbeInterval: 10 * time.Millisecond,
	})

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	sick.Store(true)
	waitFor("ejection", func() bool { return !co.Healthy(w1.URL) })
	topo := co.Topology()
	if topo.RingNodes != 1 {
		t.Errorf("ring_nodes = %d after ejection, want 1", topo.RingNodes)
	}

	sick.Store(false)
	waitFor("readmission", func() bool { return co.Healthy(w1.URL) })
	if topo := co.Topology(); topo.RingNodes != 2 {
		t.Errorf("ring_nodes = %d after readmission, want 2", topo.RingNodes)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.worker_ejections_total"] < 1 {
		t.Error("no ejection counted")
	}
	if snap.Counters["cluster.worker_readmissions_total"] < 1 {
		t.Error("no readmission counted")
	}
	if snap.Gauges["cluster.ring_nodes"].Value != 2 {
		t.Errorf("ring_nodes gauge = %d, want 2", snap.Gauges["cluster.ring_nodes"].Value)
	}
}
