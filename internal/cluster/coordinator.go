package cluster

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"warped/client"
	"warped/internal/metrics"
	"warped/internal/service"
	"warped/internal/store"
)

// ErrNoWorkers is returned by Submit when every configured worker is
// off the ring and the job is not already answerable from the store.
var ErrNoWorkers = errors.New("cluster: no healthy workers")

// Options configures a Coordinator.
type Options struct {
	// Workers are the base URLs of the warpd workers to shard across
	// (e.g. "http://10.0.0.1:8080"). Trailing slashes are tolerated;
	// duplicates are collapsed. A coordinator with zero workers can
	// still answer previously-computed jobs from its Store.
	Workers []string

	// VNodes is the virtual-node count per worker on the hash ring
	// (default DefaultVNodes).
	VNodes int

	// Store is the coordinator's durable result tier. Entries use the
	// same content-addressed format as a worker's own store, so a
	// directory can move between the two roles. Nil disables
	// durability; results then live only in the bounded in-memory map.
	Store *store.Store

	// Metrics receives the cluster.* instrument set; nil disables.
	Metrics *metrics.Registry

	// HedgeAfter, when positive, launches a concurrent dispatch to the
	// next ring node if the primary has not answered within this
	// duration — the latency hedge. Zero disables it; error-triggered
	// re-dispatch (draining, dead, saturated workers) is always on.
	HedgeAfter time.Duration

	// ProbeInterval is the cadence of the worker Ready probes that
	// drive ring ejection and readmission (default 2s).
	ProbeInterval time.Duration

	// RequestTimeout bounds each individual HTTP exchange with a
	// worker (default 10s). It caps how long a hung worker can stall a
	// dispatch or a probe, without capping total job wall time.
	RequestTimeout time.Duration

	// HTTPClient, when non-nil, carries every worker exchange so the
	// whole pool shares one transport. Defaults to a fresh client.
	HTTPClient *http.Client

	// MaxCompleted bounds the in-memory map of finished jobs (default
	// 4096). Evicted successes remain answerable through the Store.
	MaxCompleted int
}

// Coordinator shards content-addressed jobs across a pool of warpd
// workers. It speaks the daemon's own HTTP protocol on both sides:
// callers use the warped/client package (or raw HTTP) against it
// unchanged, and it dispatches to workers the same way. Placement is
// consistent-hashed on the job's canonical spec hash; identical
// submissions coalesce cluster-wide onto one dispatch and share one
// durable store entry.
type Coordinator struct {
	workers   []string // sorted, normalized
	workerIdx map[string]int
	clients   map[string]*client.Client
	ring      *Ring
	vnodes    int
	store     *store.Store
	reg       *metrics.Registry
	met       *metrics.Cluster

	hedgeAfter    time.Duration
	probeInterval time.Duration

	mu        sync.Mutex
	healthy   map[string]bool
	flights   map[string]*flight
	completed map[string]*completedEntry
	order     *list.List // completedEntry LRU, front = most recent
	maxDone   int
	draining  bool

	dispatchCtx    context.Context
	dispatchCancel context.CancelFunc
	probeCancel    context.CancelFunc
	probeDone      chan struct{}
}

// flight is one in-flight dispatch; concurrent identical submissions
// coalesce onto it.
type flight struct {
	id   string
	hash string
	done chan struct{}
}

// completedEntry is a finished job: res on success, errMsg on failure.
type completedEntry struct {
	id     string
	hash   string
	res    *service.JobResult
	errMsg string
	elem   *list.Element
}

// New builds a coordinator and starts its worker health prober. Stop
// it with Drain.
func New(opts Options) *Coordinator {
	seen := make(map[string]bool)
	var workers []string
	for _, w := range opts.Workers {
		w = strings.TrimRight(w, "/")
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		workers = append(workers, w)
	}
	sort.Strings(workers)

	reqTimeout := opts.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 10 * time.Second
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	probeInterval := opts.ProbeInterval
	if probeInterval <= 0 {
		probeInterval = 2 * time.Second
	}
	maxDone := opts.MaxCompleted
	if maxDone <= 0 {
		maxDone = 4096
	}

	co := &Coordinator{
		workers:       workers,
		workerIdx:     make(map[string]int, len(workers)),
		clients:       make(map[string]*client.Client, len(workers)),
		ring:          NewRing(opts.VNodes),
		vnodes:        opts.VNodes,
		store:         opts.Store,
		reg:           opts.Metrics,
		met:           metrics.ForCluster(opts.Metrics, len(workers)),
		hedgeAfter:    opts.HedgeAfter,
		probeInterval: probeInterval,
		healthy:       make(map[string]bool, len(workers)),
		flights:       make(map[string]*flight),
		completed:     make(map[string]*completedEntry),
		order:         list.New(),
		maxDone:       maxDone,
		probeDone:     make(chan struct{}),
	}
	if co.vnodes <= 0 {
		co.vnodes = DefaultVNodes
	}
	for i, w := range workers {
		co.workerIdx[w] = i
		c := client.NewWithHTTPClient(w, hc)
		c.RequestTimeout = reqTimeout
		c.MaxRetries = 2
		c.Backoff = 50 * time.Millisecond
		c.PollInterval = 25 * time.Millisecond
		co.clients[w] = c
		// Workers start on the ring optimistically; the prober (and any
		// failed dispatch) ejects the ones that turn out to be down.
		co.healthy[w] = true
		co.ring.Add(w)
	}
	co.met.RingNodes.Set(int64(co.ring.Len()))

	co.dispatchCtx, co.dispatchCancel = context.WithCancel(context.Background())
	probeCtx, probeCancel := context.WithCancel(context.Background())
	co.probeCancel = probeCancel
	go co.probeLoop(probeCtx)
	return co
}

// Workers returns the configured worker URLs, sorted.
func (co *Coordinator) Workers() []string {
	out := make([]string, len(co.workers))
	copy(out, co.workers)
	return out
}

// Healthy reports whether worker w is currently on the ring.
func (co *Coordinator) Healthy(w string) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.healthy[strings.TrimRight(w, "/")]
}

// Draining reports whether Drain has begun.
func (co *Coordinator) Draining() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.draining
}

// Drain stops admitting jobs, halts the prober, and waits for every
// in-flight dispatch to settle or ctx to fire, whichever comes first.
// The coordinator is unusable afterwards.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.mu.Lock()
	co.draining = true
	co.mu.Unlock()
	co.probeCancel()
	<-co.probeDone
	defer co.dispatchCancel()
	for {
		co.mu.Lock()
		n := len(co.flights)
		co.mu.Unlock()
		if n == 0 {
			return nil
		}
		if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
			return err
		}
	}
}

// Submit admits one job by content address: a known result (memory or
// store) is a cache hit, an in-flight identical job coalesces, a fresh
// job is dispatched to its ring node. A previously failed identical
// job is retried, not replayed.
func (co *Coordinator) Submit(spec *service.JobSpec) (*service.SubmitResponse, error) {
	hash, id, err := service.SpecKey(spec)
	if err != nil {
		return nil, err
	}

	co.mu.Lock()
	if co.draining {
		co.mu.Unlock()
		return nil, service.ErrDraining
	}
	co.met.JobsSubmitted.Inc()
	if resp, ok := co.admitLocked(id); ok {
		co.mu.Unlock()
		return resp, nil
	}
	co.mu.Unlock()

	// Durable tier, consulted off-lock: disk reads must not serialize
	// the submit path.
	if res := co.storeGet(hash); res != nil {
		co.mu.Lock()
		if resp, ok := co.admitLocked(id); ok { // lost a race to an identical submit
			co.mu.Unlock()
			return resp, nil
		}
		co.rememberLocked(&completedEntry{id: id, hash: hash, res: res})
		co.met.StoreHits.Inc()
		co.mu.Unlock()
		return &service.SubmitResponse{ID: id, Status: "done", Cached: true}, nil
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	if resp, ok := co.admitLocked(id); ok {
		return resp, nil
	}
	if co.ring.Len() == 0 {
		return nil, ErrNoWorkers
	}
	fl := &flight{id: id, hash: hash, done: make(chan struct{})}
	co.flights[id] = fl
	go co.dispatch(fl, spec)
	return &service.SubmitResponse{ID: id, Status: "queued"}, nil
}

// admitLocked answers a submission from coordinator memory when it
// can: a completed success is a cache hit, an in-flight dispatch
// coalesces, and a completed failure is forgotten so the caller's
// submission retries it. Caller holds co.mu.
func (co *Coordinator) admitLocked(id string) (*service.SubmitResponse, bool) {
	if e, ok := co.completed[id]; ok {
		if e.res != nil {
			co.order.MoveToFront(e.elem)
			co.met.MemHits.Inc()
			return &service.SubmitResponse{ID: id, Status: "done", Cached: true}, true
		}
		co.forgetLocked(e)
	}
	if _, ok := co.flights[id]; ok {
		co.met.Coalesced.Inc()
		return &service.SubmitResponse{ID: id, Status: "running"}, true
	}
	return nil, false
}

// Status reports a job's lifecycle state; ok is false for unknown IDs.
func (co *Coordinator) Status(id string) (*service.StatusResponse, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.flights[id]; ok {
		return &service.StatusResponse{ID: id, Status: "running"}, true
	}
	if e, ok := co.completed[id]; ok {
		if e.res != nil {
			return &service.StatusResponse{ID: id, Status: "done"}, true
		}
		return &service.StatusResponse{ID: id, Status: "failed", Error: e.errMsg}, true
	}
	return nil, false
}

// Result returns a finished job's result. ok is false for unknown
// IDs; a known job that is still running or failed returns (nil, true)
// — distinguish via Status.
func (co *Coordinator) Result(id string) (*service.ResultResponse, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.flights[id]; ok {
		return nil, true
	}
	e, ok := co.completed[id]
	if !ok {
		return nil, false
	}
	if e.res == nil {
		return nil, true
	}
	return &service.ResultResponse{ID: id, Stats: e.res.Stats, Attempts: e.res.Attempts,
		Recovered: e.res.Recovered, Detections: e.res.Detections}, true
}

// Wait blocks until job id finishes; false for unknown IDs.
func (co *Coordinator) Wait(id string) bool {
	co.mu.Lock()
	fl, inFlight := co.flights[id]
	_, done := co.completed[id]
	co.mu.Unlock()
	if inFlight {
		<-fl.done
		return true
	}
	return done
}

// rememberLocked records a finished job in the bounded in-memory map.
// Caller holds co.mu.
func (co *Coordinator) rememberLocked(e *completedEntry) {
	if old, ok := co.completed[e.id]; ok {
		co.forgetLocked(old)
	}
	e.elem = co.order.PushFront(e)
	co.completed[e.id] = e
	for co.order.Len() > co.maxDone {
		oldest := co.order.Back()
		co.forgetLocked(oldest.Value.(*completedEntry))
	}
}

func (co *Coordinator) forgetLocked(e *completedEntry) {
	delete(co.completed, e.id)
	if e.elem != nil {
		co.order.Remove(e.elem)
		e.elem = nil
	}
}

// attemptOutcome is one worker's answer to a dispatched job.
type attemptOutcome struct {
	worker    string
	res       *service.JobResult
	err       error
	retriable bool // worth re-dispatching to the next ring node
	transport bool // the worker did not answer at all: eject it
}

// dispatch drives one flight to completion: submit to the job's ring
// node, walk the successor list on retriable failures, and (when
// configured) hedge with a concurrent dispatch if the primary is slow.
// First success wins; a non-retriable failure (spec rejection,
// worker-reported job failure) settles the flight immediately.
func (co *Coordinator) dispatch(fl *flight, spec *service.JobSpec) {
	ctx := co.dispatchCtx
	candidates := co.ring.Successors(fl.hash, 0) // every healthy worker, ring order
	outcomes := make(chan attemptOutcome, len(candidates))
	inflight, next := 0, 0
	launch := func() bool {
		if next >= len(candidates) {
			return false
		}
		w := candidates[next]
		next++
		inflight++
		co.met.Dispatches.Inc()
		if i, ok := co.workerIdx[w]; ok {
			co.met.WorkerDispatches[i].Inc()
		}
		go func() { outcomes <- co.attempt(ctx, w, spec) }()
		return true
	}
	if !launch() {
		co.finish(fl, nil, ErrNoWorkers.Error())
		return
	}

	var hedge <-chan time.Time
	if co.hedgeAfter > 0 {
		t := time.NewTimer(co.hedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var lastErr error
	for inflight > 0 {
		select {
		case <-ctx.Done():
			co.finish(fl, nil, "cluster: coordinator shut down mid-dispatch")
			return
		case <-hedge:
			hedge = nil
			if launch() {
				co.met.HedgesFired.Inc()
			}
		case o := <-outcomes:
			inflight--
			if o.err == nil {
				co.finish(fl, o.res, "")
				return
			}
			lastErr = o.err
			if o.transport {
				co.setHealth(o.worker, false)
			}
			if !o.retriable {
				co.finish(fl, nil, o.err.Error())
				return
			}
			if launch() {
				co.met.Redispatches.Inc()
			} else if inflight == 0 {
				co.finish(fl, nil, fmt.Sprintf("cluster: all %d candidate workers failed, last: %v",
					len(candidates), lastErr))
				return
			}
		}
	}
}

// attempt runs spec to completion on one worker.
func (co *Coordinator) attempt(ctx context.Context, worker string, spec *service.JobSpec) attemptOutcome {
	c := co.clients[worker]
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		return classify(worker, err)
	}
	res, err := c.Wait(ctx, resp.ID)
	if err != nil {
		return classify(worker, err)
	}
	return attemptOutcome{worker: worker, res: &service.JobResult{Stats: res.Stats,
		Attempts: res.Attempts, Recovered: res.Recovered, Detections: res.Detections}}
}

// classify sorts a worker error into the hedging policy's buckets:
//
//   - draining (503), saturated past the retry budget (429), or a
//     worker that lost the job (404, e.g. it restarted): retriable on
//     the next ring node;
//   - no HTTP answer at all: retriable, and the worker is ejected;
//   - anything else the worker said (spec rejection, job failure):
//     deterministic — every replica would answer the same, fail fast.
func classify(worker string, err error) attemptOutcome {
	out := attemptOutcome{worker: worker, err: err}
	if errors.Is(err, client.ErrDraining) {
		out.retriable = true
		return out
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusTooManyRequests, http.StatusNotFound:
			out.retriable = true
		}
		return out
	}
	out.retriable = true
	out.transport = true
	return out
}

// finish settles a flight: persist a success, record it in memory,
// wake every waiter.
func (co *Coordinator) finish(fl *flight, res *service.JobResult, errMsg string) {
	if res != nil {
		co.storePut(fl.hash, res)
	}
	co.mu.Lock()
	delete(co.flights, fl.id)
	co.rememberLocked(&completedEntry{id: fl.id, hash: fl.hash, res: res, errMsg: errMsg})
	if res == nil {
		co.met.JobsFailed.Inc()
	}
	co.mu.Unlock()
	close(fl.done)
}

// storeGet reads a verified result from the durable tier; nil on a
// miss, corruption, schema drift, or when no store is configured.
func (co *Coordinator) storeGet(hash string) *service.JobResult {
	if co.store == nil {
		return nil
	}
	payload, ok := co.store.Get(hash)
	if !ok {
		return nil
	}
	var res service.JobResult
	if err := json.Unmarshal(payload, &res); err != nil || res.Stats == nil {
		return nil
	}
	return &res
}

// storePut persists a result to the durable tier, best effort.
func (co *Coordinator) storePut(hash string, res *service.JobResult) {
	if co.store == nil || res == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	_ = co.store.Put(hash, payload)
}

// probeLoop polls every worker's readiness on a fixed cadence, driving
// ring ejection and readmission.
func (co *Coordinator) probeLoop(ctx context.Context) {
	defer close(co.probeDone)
	t := time.NewTicker(co.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			co.probeAll(ctx)
		}
	}
}

// probeAll runs one probe round. Workers are probed concurrently so a
// hung worker costs one RequestTimeout, not one per worker.
func (co *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range co.workers {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			ok, err := co.clients[w].Ready(ctx)
			co.setHealth(w, ok && err == nil)
		}(w)
	}
	wg.Wait()
}

// setHealth moves a worker on or off the ring, counting the
// transition. Safe for concurrent use.
func (co *Coordinator) setHealth(worker string, healthy bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, known := co.workerIdx[worker]; !known || co.healthy[worker] == healthy {
		return
	}
	co.healthy[worker] = healthy
	if healthy {
		co.ring.Add(worker)
		co.met.Readmissions.Inc()
	} else {
		co.ring.Remove(worker)
		co.met.Ejections.Inc()
	}
	co.met.RingNodes.Set(int64(co.ring.Len()))
}

// sleepCtx waits d or until ctx fires.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ---- HTTP surface ----------------------------------------------------

// TopologyResponse answers GET /v1/cluster.
type TopologyResponse struct {
	Workers   []WorkerInfo `json:"workers"`
	RingNodes int          `json:"ring_nodes"`
	VNodes    int          `json:"vnodes"`
	InFlight  int          `json:"in_flight"`
	Completed int          `json:"completed"`
	Draining  bool         `json:"draining"`
	Store     *StoreInfo   `json:"store,omitempty"`
}

// WorkerInfo is one worker's place in the topology.
type WorkerInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// StoreInfo summarizes the durable result store.
type StoreInfo struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// Topology snapshots the cluster for GET /v1/cluster.
func (co *Coordinator) Topology() *TopologyResponse {
	co.mu.Lock()
	resp := &TopologyResponse{
		RingNodes: co.ring.Len(),
		VNodes:    co.vnodes,
		InFlight:  len(co.flights),
		Completed: len(co.completed),
		Draining:  co.draining,
	}
	for _, w := range co.workers {
		resp.Workers = append(resp.Workers, WorkerInfo{URL: w, Healthy: co.healthy[w]})
	}
	co.mu.Unlock()
	if co.store != nil {
		resp.Store = &StoreInfo{Dir: co.store.Dir(), Entries: co.store.Len(), Bytes: co.store.Bytes()}
	}
	return resp
}

// Handler mounts the coordinator's HTTP surface: the same /v1 job API
// a single daemon serves (so warped/client works unchanged), plus the
// /v1/cluster topology endpoint, health probes, and /debug. See
// docs/CLUSTER.md.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", co.handleResult)
	mux.HandleFunc("GET /v1/benchmarks", co.handleBenchmarks)
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, co.Topology())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", co.handleReady)
	mux.Handle("/debug/", metrics.Handler(co.reg))
	return mux
}

// maxSpecBytes mirrors the single-daemon spec size bound.
const maxSpecBytes = 1 << 20

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("cluster: reading body: %v", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cluster: job spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := service.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := co.Submit(spec)
	switch {
	case errors.Is(err, service.ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "cluster: coordinator is draining")
	case errors.Is(err, ErrNoWorkers):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, ErrNoWorkers.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	case resp.Cached:
		writeJSON(w, http.StatusOK, resp)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, ok := co.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("cluster: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, ok := co.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("cluster: unknown job %q", id))
		return
	}
	if resp == nil {
		if st, _ := co.Status(id); st != nil && st.Status == "failed" {
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("cluster: job %s failed: %s", id, st.Error))
			return
		}
		writeError(w, http.StatusConflict, fmt.Sprintf("cluster: job %s is not finished", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBenchmarks proxies the workload list from the first healthy
// worker — every worker runs the same build, so any answer is the
// cluster's answer.
func (co *Coordinator) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	for _, worker := range co.ring.Nodes() {
		names, err := co.clients[worker].Benchmarks(r.Context())
		if err != nil {
			continue
		}
		writeJSON(w, http.StatusOK, map[string][]string{"benchmarks": names})
		return
	}
	writeError(w, http.StatusServiceUnavailable, ErrNoWorkers.Error())
}

// handleReady answers the coordinator's own readiness: it can do work
// iff it is not draining and at least one worker is on the ring (a
// store-only coordinator still answers cached jobs, but is not ready
// for new work).
func (co *Coordinator) handleReady(w http.ResponseWriter, _ *http.Request) {
	co.mu.Lock()
	draining, ringLen := co.draining, co.ring.Len()
	co.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case ringLen == 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy workers"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
