package service

import (
	"context"
	"fmt"

	"warped/internal/asm"
	"warped/internal/core"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/sim"
	"warped/internal/stats"
)

// JobResult is the durable outcome of one executed job: the merged
// deterministic statistics plus the retry bookkeeping. It mirrors the
// public warped.Result so a service answer is byte-comparable to a
// direct library run with the same canonical inputs.
type JobResult struct {
	Stats *stats.Stats `json:"stats"`

	// Attempts is the number of workload executions behind this result:
	// 1 unless the retry budget re-ran the workload after a detection.
	Attempts int `json:"attempts"`

	// Recovered reports that at least one attempt was discarded after a
	// comparator detection (or crash) and a later attempt ran clean.
	Recovered bool `json:"recovered"`

	// Detections counts comparator mismatches across all attempts.
	Detections int `json:"detections"`
}

// execute runs the canonical job to completion under ctx, reporting
// operational telemetry into reg (which may be nil). The control flow
// deliberately mirrors warped.Runner.Run attempt-for-attempt — same
// fresh-GPU-per-attempt, same shared injector across attempts, same
// validate-only-fault-free default — so a cached service result is
// byte-identical to what the library would have produced.
func (c *canonicalJob) execute(ctx context.Context, id string, reg *metrics.Registry) (*JobResult, error) {
	inj, err := injector(c.Faults)
	if err != nil {
		return nil, err
	}
	opts := sim.LaunchOpts{StopOnError: c.StopOnError, Metrics: reg}
	if inj != nil {
		// Assign only when non-nil: a typed nil in the FaultHook
		// interface would read as "fault injection on".
		opts.Fault = inj
	}
	detections := 0
	opts.OnError = func(core.ErrorEvent) { detections++ }

	out := &JobResult{}
	for attempt := 1; attempt <= c.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("service: job %s: %w", id, err)
		}
		out.Attempts = attempt
		st, err := c.runAttempt(ctx, id, opts)
		out.Detections = detections
		if err == nil && st.FaultsDetected == 0 {
			out.Stats = st
			out.Recovered = attempt > 1
			return out, nil
		}
		if err != nil && ctx.Err() != nil {
			return nil, err // cancelled mid-attempt: don't retry
		}
		if c.Attempts == 1 {
			if err != nil {
				return nil, err
			}
			// Mismatches were detected but the run completed (no
			// StopOnError, no retry budget): report them in the result.
			out.Stats = st
			return out, nil
		}
		// Detected (or crashed) with retries left: discard the attempt.
	}
	return nil, fmt.Errorf("service: job %s still failing after %d attempts: fault appears permanent", id, out.Attempts)
}

// runAttempt executes one full workload attempt on a fresh GPU.
func (c *canonicalJob) runAttempt(ctx context.Context, id string, opts sim.LaunchOpts) (*stats.Stats, error) {
	g, err := sim.New(c.Config, 0)
	if err != nil {
		return nil, err
	}
	if c.Benchmark != "" {
		return c.runBenchmark(ctx, g, opts)
	}
	return c.runSource(ctx, g, id, opts)
}

// runBenchmark mirrors warped.runOnce: execute every launch step,
// merge serially, then validate against the host reference only when
// no faults are being injected (corrupted outputs are the scenario
// under study in a campaign).
func (c *canonicalJob) runBenchmark(ctx context.Context, g *sim.GPU, opts sim.LaunchOpts) (*stats.Stats, error) {
	b, err := findBenchmark(c.Benchmark)
	if err != nil {
		return nil, err
	}
	run, err := b.Build(g)
	if err != nil {
		return nil, err
	}
	total := &stats.Stats{}
	for i, step := range run.Steps {
		st, err := g.LaunchContext(ctx, step.Kernel, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: launch %d: %w", b.Name, i, err)
		}
		total.MergeSerial(st)
		if step.Host != nil {
			if err := step.Host(g); err != nil {
				return nil, err
			}
		}
	}
	if len(c.Faults) == 0 && run.Check != nil {
		if err := run.Check(g); err != nil {
			return nil, fmt.Errorf("%s: validation: %w", b.Name, err)
		}
	}
	return total, nil
}

// runSource assembles and launches an inline kernel. The source name
// is the job's content address, so assembly and static-verification
// diagnostics point back at the job that carried the bad kernel.
func (c *canonicalJob) runSource(ctx context.Context, g *sim.GPU, id string, opts sim.LaunchOpts) (*stats.Stats, error) {
	prog, err := asm.AssembleVerifiedNamed("job:"+id, c.Source)
	if err != nil {
		return nil, err
	}
	k := &sim.Kernel{
		Prog:        prog,
		GridX:       c.GridX,
		GridY:       c.GridY,
		BlockX:      c.BlockX,
		BlockY:      c.BlockY,
		SharedBytes: c.SharedBytes,
	}
	if k.SharedBytes < prog.SharedBytes {
		k.SharedBytes = prog.SharedBytes
	}
	if len(c.Params) > 0 {
		k.Params = mem.NewParams(c.Params...)
	}
	return g.LaunchContext(ctx, k, opts)
}
