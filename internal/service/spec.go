// Package service is the simulation-as-a-service layer behind the
// warpd daemon: a job model (spec, canonicalization, content hash), a
// content-addressed result cache with in-flight coalescing, admission
// control over a bounded runner pool, and the HTTP/JSON API that
// exposes it all.
//
// Identical work is the common case for the sweeps this service
// exists for — thousands of (kernel, config, seed) points, most of
// them resubmitted across campaigns — so identity is computed, not
// assigned: a job's ID is the SHA-256 of its canonical form. Two
// submissions that mean the same simulation collapse onto one
// execution (coalescing) and later resubmissions are answered from
// the LRU-bounded result cache. docs/SERVICE.md is the API and
// semantics reference.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"warped/internal/arch"
	"warped/internal/fault"
	"warped/internal/isa"
	"warped/internal/kernels"
)

// JobSpec is the wire form of one simulation job, as POSTed to
// /v1/jobs. Exactly one of Benchmark and Source selects the workload:
// a bundled Table 4 (or extra) benchmark by name, or inline PTX-like
// assembly assembled per job. Everything else is optional and
// defaulted; defaults are resolved away before hashing, so a spec that
// spells out a default hashes identically to one that omits it.
type JobSpec struct {
	// Benchmark names a bundled workload (see GET /v1/benchmarks or
	// warped.BenchmarkNames). Mutually exclusive with Source.
	Benchmark string `json:"benchmark,omitempty"`

	// Source is inline kernel assembly (internal/asm syntax). The
	// kernel is statically verified before launch; assembly and
	// verification errors carry the job's content address as the
	// source name ("job:<id>").
	Source string `json:"source,omitempty"`

	// Launch geometry for Source jobs (ignored for benchmarks, which
	// carry their own). Defaults: 1x1 grid, 32x1 blocks.
	GridX  int `json:"grid_x,omitempty"`
	GridY  int `json:"grid_y,omitempty"`
	BlockX int `json:"block_x,omitempty"`
	BlockY int `json:"block_y,omitempty"`

	// SharedBytes is per-block shared memory for Source jobs; the
	// kernel's .shared directive raises it if larger.
	SharedBytes int `json:"shared_bytes,omitempty"`

	// Params are the 32-bit kernel parameter words for Source jobs.
	Params []uint32 `json:"params,omitempty"`

	// Config selects and overrides the machine configuration. Nil means
	// the paper's recommended Warped-DMR machine.
	Config *ConfigSpec `json:"config,omitempty"`

	// Policy is the selective-protection policy in warped.ParsePolicy
	// spelling ("full", "off", "kernel:BFS", "warpsample:1/4",
	// "activemask:16", "pcrange:0-128"); empty means full protection.
	// The parsed policy lands in the canonical config, so two jobs that
	// differ only in policy are distinct cache entries
	// (docs/POLICIES.md, docs/SERVICE.md).
	Policy string `json:"policy,omitempty"`

	// Faults is the fault-injection campaign; nil runs fault-free.
	Faults *FaultSpec `json:"faults,omitempty"`

	// Seed drives the random fault draws in Faults.Random. It is
	// resolved into concrete faults during canonicalization, so two
	// seeds that draw different faults hash differently while a seed on
	// a job with no random faults does not perturb the hash.
	Seed int64 `json:"seed,omitempty"`

	// Retry re-executes the whole workload up to this many attempts
	// when a DMR comparator flags a mismatch (warped.WithRetry
	// semantics). 0 and 1 both mean a single attempt.
	Retry int `json:"retry,omitempty"`

	// StopOnError aborts an attempt at the first detected mismatch
	// (warped.WithStopOnError semantics).
	StopOnError bool `json:"stop_on_error,omitempty"`
}

// ConfigSpec is a named preset plus overrides, mirroring the warpsim
// flags. Pointer fields distinguish "unset" from an explicit zero.
type ConfigSpec struct {
	// Preset is "warped" (default: the paper's recommended full-DMR
	// machine) or "paper" (the DMR-off baseline of Table 3).
	Preset string `json:"preset,omitempty"`

	DMR         string `json:"dmr,omitempty"`     // off|intra|inter|full|dmtr
	Mapping     string `json:"mapping,omitempty"` // linear|rr
	ReplayQ     *int   `json:"replayq,omitempty"`
	Cluster     *int   `json:"cluster,omitempty"`
	SMs         *int   `json:"sms,omitempty"`
	LaneShuffle *bool  `json:"lane_shuffle,omitempty"`
	IdleDrain   *bool  `json:"idle_drain,omitempty"`
}

// FaultSpec is a fault-injection campaign: explicit faults, random
// draws, or both (explicit faults injected first).
type FaultSpec struct {
	// Faults are injected exactly as given.
	Faults []FaultDef `json:"faults,omitempty"`

	// Random draws this many additional faults from the job seed.
	Random int `json:"random,omitempty"`

	// Kind selects the random draw model: "stuck-at" (default) or
	// "transient".
	Kind string `json:"kind,omitempty"`

	// MaxCycle bounds random transient fire cycles (default 100000).
	MaxCycle int64 `json:"max_cycle,omitempty"`
}

// FaultDef is one injectable hardware defect in wire form.
type FaultDef struct {
	Kind     string `json:"kind"`                // stuck-at|transient
	SM       int    `json:"sm"`                  // -1 matches any SM
	Lane     int    `json:"lane"`                // physical SIMT lane 0..31
	Unit     string `json:"unit"`                // sp|sfu|ldst
	Bit      uint   `json:"bit"`                 // affected output bit 0..31
	StuckVal uint   `json:"stuck_val,omitempty"` // stuck-at only: 0 or 1
	Cycle    int64  `json:"cycle,omitempty"`     // transient only: earliest fire cycle
}

// specVersion is baked into the canonical form so that any future
// change to job semantics (new field, different default) changes every
// hash instead of silently aliasing old cached results. v2 added the
// selective-protection policy to the canonical config; v3 added the
// pcset policy kind (multi-range, kernel-scoped) to the policy shape.
const specVersion = 3

// canonicalJob is the fully-resolved form a job is hashed and executed
// from: presets applied, defaults materialized, random faults drawn,
// irrelevant fields zeroed. Field order is part of the hash contract —
// TestCanonicalHashGolden pins it.
type canonicalJob struct {
	V           int         `json:"v"`
	Benchmark   string      `json:"benchmark,omitempty"`
	Source      string      `json:"source,omitempty"`
	GridX       int         `json:"grid_x,omitempty"`
	GridY       int         `json:"grid_y,omitempty"`
	BlockX      int         `json:"block_x,omitempty"`
	BlockY      int         `json:"block_y,omitempty"`
	SharedBytes int         `json:"shared_bytes,omitempty"`
	Params      []uint32    `json:"params,omitempty"`
	Config      arch.Config `json:"config"`
	Faults      []FaultDef  `json:"faults,omitempty"`
	Attempts    int         `json:"attempts"`
	StopOnError bool        `json:"stop_on_error,omitempty"`
}

// Canonicalize validates s and resolves it into its canonical form:
// the workload checked against the registry, the config preset and
// overrides flattened into a full arch.Config, launch geometry
// defaulted (Source jobs) or zeroed (benchmark jobs), random faults
// drawn from the seed into explicit FaultDefs, and the retry budget
// normalized. Semantically identical specs canonicalize identically.
func (s *JobSpec) Canonicalize() (*canonicalJob, error) {
	c := &canonicalJob{V: specVersion}

	switch {
	case s.Benchmark != "" && s.Source != "":
		return nil, fmt.Errorf("service: job sets both benchmark and source; pick one")
	case s.Benchmark == "" && s.Source == "":
		return nil, fmt.Errorf("service: job needs a benchmark name or inline source")
	case s.Benchmark != "":
		if _, err := findBenchmark(s.Benchmark); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		c.Benchmark = s.Benchmark
		// Geometry/params belong to the bundled workload: zero the
		// submitted values so they cannot fork the content address.
	default:
		c.Source = s.Source
		c.GridX, c.GridY, c.BlockX, c.BlockY = s.GridX, s.GridY, s.BlockX, s.BlockY
		if c.GridX == 0 {
			c.GridX = 1
		}
		if c.GridY == 0 {
			c.GridY = 1
		}
		if c.BlockX == 0 {
			c.BlockX = 32
		}
		if c.BlockY == 0 {
			c.BlockY = 1
		}
		if c.GridX < 0 || c.GridY < 0 || c.BlockX < 0 || c.BlockY < 0 {
			return nil, fmt.Errorf("service: launch geometry must be positive")
		}
		c.SharedBytes = s.SharedBytes
		if c.SharedBytes < 0 {
			return nil, fmt.Errorf("service: shared_bytes must be non-negative")
		}
		if len(s.Params) > 0 {
			c.Params = append([]uint32(nil), s.Params...)
		}
	}

	cfg, err := s.Config.resolve()
	if err != nil {
		return nil, err
	}
	if s.Policy != "" {
		// ParsePolicy normalizes, so equivalent spellings ("warpsample:2"
		// vs "warpsample:1/2") canonicalize — and hash — identically.
		pol, err := arch.ParsePolicy(s.Policy)
		if err != nil {
			return nil, fmt.Errorf("service: policy: %w", err)
		}
		cfg.Policy = pol
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("service: config: %w", err)
	}
	c.Config = cfg

	faults, err := s.Faults.resolve(s.Seed, cfg.NumSMs)
	if err != nil {
		return nil, err
	}
	c.Faults = faults

	c.Attempts = s.Retry
	if c.Attempts < 1 {
		c.Attempts = 1
	}
	c.StopOnError = s.StopOnError
	return c, nil
}

// Hash returns the job's content address: the hex SHA-256 of the
// canonical JSON encoding. Byte-stable across processes; pinned by
// TestCanonicalHashGolden against accidental schema drift.
func (c *canonicalJob) Hash() string {
	data, err := json.Marshal(c)
	if err != nil {
		// canonicalJob is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("service: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// IDFromHash shortens a content hash into the wire job ID.
func IDFromHash(hash string) string {
	if len(hash) > 16 {
		hash = hash[:16]
	}
	return "j" + hash
}

// SpecKey canonicalizes spec and returns its full content hash (the
// coalescing / durable-store key) and the wire job ID derived from it.
// It is the exported form of the identity computation Submit performs,
// so a coordinator (internal/cluster) can coalesce and cache on
// exactly the keys its workers will compute.
func SpecKey(spec *JobSpec) (hash, id string, err error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return "", "", err
	}
	hash = canon.Hash()
	return hash, IDFromHash(hash), nil
}

// resolve flattens the preset + overrides into a full machine config.
func (cs *ConfigSpec) resolve() (arch.Config, error) {
	preset := ""
	if cs != nil {
		preset = cs.Preset
	}
	var cfg arch.Config
	switch strings.ToLower(preset) {
	case "", "warped":
		cfg = arch.WarpedDMRConfig()
	case "paper":
		cfg = arch.PaperConfig()
	default:
		return cfg, fmt.Errorf("service: unknown config preset %q (want warped or paper)", preset)
	}
	if cs == nil {
		return cfg, nil
	}
	if cs.DMR != "" {
		mode, err := parseDMR(cs.DMR)
		if err != nil {
			return cfg, err
		}
		cfg.DMR = mode
	}
	if cs.Mapping != "" {
		m, err := parseMapping(cs.Mapping)
		if err != nil {
			return cfg, err
		}
		cfg.Mapping = m
	}
	if cs.ReplayQ != nil {
		cfg.ReplayQSize = *cs.ReplayQ
	}
	if cs.Cluster != nil {
		cfg.ClusterSize = *cs.Cluster
	}
	if cs.SMs != nil {
		cfg.NumSMs = *cs.SMs
	}
	if cs.LaneShuffle != nil {
		cfg.LaneShuffle = *cs.LaneShuffle
	}
	if cs.IdleDrain != nil {
		cfg.IdleDrain = *cs.IdleDrain
	}
	return cfg, nil
}

func parseDMR(s string) (arch.DMRMode, error) {
	switch strings.ToLower(s) {
	case "off":
		return arch.DMROff, nil
	case "intra":
		return arch.DMRIntra, nil
	case "inter":
		return arch.DMRInter, nil
	case "full":
		return arch.DMRFull, nil
	case "dmtr":
		return arch.DMRTemporalAll, nil
	}
	return 0, fmt.Errorf("service: unknown dmr mode %q (want off, intra, inter, full or dmtr)", s)
}

func parseMapping(s string) (arch.MappingPolicy, error) {
	switch strings.ToLower(s) {
	case "linear":
		return arch.MapLinear, nil
	case "rr", "cross", "clusterrr":
		return arch.MapClusterRR, nil
	}
	return 0, fmt.Errorf("service: unknown mapping %q (want linear or rr)", s)
}

func parseUnit(s string) (isa.UnitClass, error) {
	switch strings.ToLower(s) {
	case "sp":
		return isa.UnitSP, nil
	case "sfu":
		return isa.UnitSFU, nil
	case "ldst", "ld/st":
		return isa.UnitLDST, nil
	}
	return 0, fmt.Errorf("service: unknown fault unit %q (want sp, sfu or ldst)", s)
}

// resolve validates the campaign and expands random draws into
// explicit, canonical fault definitions.
func (fs *FaultSpec) resolve(seed int64, numSMs int) ([]FaultDef, error) {
	if fs == nil {
		return nil, nil
	}
	if fs.Random < 0 {
		return nil, fmt.Errorf("service: faults.random must be non-negative, got %d", fs.Random)
	}
	out := make([]FaultDef, 0, len(fs.Faults)+fs.Random)
	for i, fd := range fs.Faults {
		if _, err := fd.toFault(); err != nil {
			return nil, fmt.Errorf("service: faults[%d]: %w", i, err)
		}
		fd.normalize()
		out = append(out, fd)
	}
	if fs.Random > 0 {
		kind := strings.ToLower(fs.Kind)
		if kind == "" {
			kind = "stuck-at"
		}
		maxCycle := fs.MaxCycle
		if maxCycle <= 0 {
			maxCycle = 100_000
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < fs.Random; i++ {
			var f *fault.Fault
			switch kind {
			case "stuck-at":
				f = fault.RandomStuckAt(rng, numSMs)
			case "transient":
				f = fault.RandomTransient(rng, numSMs, maxCycle)
			default:
				return nil, fmt.Errorf("service: unknown random fault kind %q (want stuck-at or transient)", fs.Kind)
			}
			out = append(out, fromFault(f))
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// normalize zeroes the fields the fault kind does not use so that
// wire-level noise (a stuck_val on a transient) cannot fork the hash.
func (fd *FaultDef) normalize() {
	fd.Kind = strings.ToLower(fd.Kind)
	fd.Unit = strings.ToLower(fd.Unit)
	switch fd.Kind {
	case "stuck-at":
		fd.Cycle = 0
	case "transient":
		fd.StuckVal = 0
	}
}

// toFault converts the wire form into an injectable fault.
func (fd FaultDef) toFault() (*fault.Fault, error) {
	unit, err := parseUnit(fd.Unit)
	if err != nil {
		return nil, err
	}
	if fd.Lane < 0 || fd.Lane > 31 {
		return nil, fmt.Errorf("service: fault lane %d out of 0..31", fd.Lane)
	}
	if fd.Bit > 31 {
		return nil, fmt.Errorf("service: fault bit %d out of 0..31", fd.Bit)
	}
	if fd.SM < -1 {
		return nil, fmt.Errorf("service: fault sm %d invalid (-1 matches any)", fd.SM)
	}
	f := &fault.Fault{SM: fd.SM, Lane: fd.Lane, Unit: unit, Bit: fd.Bit}
	switch strings.ToLower(fd.Kind) {
	case "stuck-at":
		if fd.StuckVal > 1 {
			return nil, fmt.Errorf("service: stuck_val %d must be 0 or 1", fd.StuckVal)
		}
		f.Kind, f.StuckVal = fault.StuckAt, fd.StuckVal
	case "transient":
		if fd.Cycle < 0 {
			return nil, fmt.Errorf("service: transient cycle %d must be non-negative", fd.Cycle)
		}
		f.Kind, f.Cycle = fault.Transient, fd.Cycle
	default:
		return nil, fmt.Errorf("service: unknown fault kind %q (want stuck-at or transient)", fd.Kind)
	}
	return f, nil
}

// fromFault converts a drawn fault back into canonical wire form.
func fromFault(f *fault.Fault) FaultDef {
	fd := FaultDef{
		SM:   f.SM,
		Lane: f.Lane,
		Unit: strings.ToLower(f.Unit.String()),
		Bit:  f.Bit,
	}
	switch f.Kind {
	case fault.StuckAt:
		fd.Kind, fd.StuckVal = "stuck-at", f.StuckVal
	case fault.Transient:
		fd.Kind, fd.Cycle = "transient", f.Cycle
	default:
		// fault.Kind has exactly two values; a third is a programming
		// error in internal/fault.
		panic(fmt.Sprintf("service: unknown fault.Kind %d", int(f.Kind)))
	}
	return fd
}

// injector builds the fault injector for one attempt (fresh per
// attempt: transient faults re-arm).
func injector(defs []FaultDef) (*fault.Injector, error) {
	if len(defs) == 0 {
		return nil, nil
	}
	faults := make([]*fault.Fault, len(defs))
	for i, fd := range defs {
		f, err := fd.toFault()
		if err != nil {
			return nil, err
		}
		faults[i] = f
	}
	return fault.NewInjector(faults...), nil
}

// findBenchmark resolves a name against the paper suite, then extras.
func findBenchmark(name string) (*kernels.Benchmark, error) {
	if b, err := kernels.ByName(name); err == nil {
		return b, nil
	}
	return kernels.ExtraByName(name)
}

// ParseSpec strictly decodes a JobSpec from JSON: unknown fields are
// rejected so typos fail loudly instead of silently hashing to a
// different (default-filled) job. Used by the HTTP handler and by
// tools/docscheck to keep the documented examples honest.
func ParseSpec(data []byte) (*JobSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("service: bad job spec: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("service: bad job spec: trailing data after JSON object")
	}
	return &spec, nil
}
