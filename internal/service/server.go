package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"warped/internal/kernels"
	"warped/internal/metrics"
	"warped/internal/runner"
	"warped/internal/stats"
	"warped/internal/store"
)

// Typed admission errors, shared with the runner pool so callers (and
// the HTTP layer) branch on one vocabulary.
var (
	// ErrDraining is returned by Submit once Drain has begun: the
	// daemon finishes accepted work but admits nothing new (HTTP 503).
	ErrDraining = runner.ErrPoolDraining

	// ErrBusy is returned by Submit when the bounded job queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrBusy = runner.ErrQueueFull
)

// jobState is the lifecycle of one job in the cache.
type jobState int

const (
	stateQueued jobState = iota
	stateRunning
	stateDone
	stateFailed
)

func (st jobState) String() string {
	switch st {
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	default:
		return fmt.Sprintf("jobState(%d)", int(st))
	}
}

// job is one cache entry: the canonical work plus its lifecycle. The
// entry exists from admission on, which is what makes the map double
// as the coalescing mechanism — a duplicate submission finds the
// in-flight entry and attaches instead of re-simulating.
type job struct {
	id       string
	hash     string // full content hash — the durable-store key
	canon    *canonicalJob
	state    jobState
	result   *JobResult
	errMsg   string
	done     chan struct{} // closed when the job reaches done/failed
	elem     *list.Element // LRU position; nil until completed
	enqueued time.Time
}

// Options sizes a Server.
type Options struct {
	// Workers is the simulation concurrency; <= 0 means GOMAXPROCS.
	Workers int

	// QueueDepth bounds accepted-but-not-started jobs; <= 0 means 64.
	// Beyond it, Submit sheds load with ErrBusy.
	QueueDepth int

	// CacheEntries bounds the completed results retained for cache
	// hits; <= 0 means 256. Least-recently-used entries are evicted
	// (and re-run on resubmission).
	CacheEntries int

	// JobTimeout bounds one job's wall-clock execution (all attempts);
	// 0 means no limit.
	JobTimeout time.Duration

	// Metrics, when non-nil, receives the service.* instrument set plus
	// the runner.* pool telemetry and the sim/DMR counters of every
	// executed job. It is also what GET /debug/metrics serves.
	Metrics *metrics.Registry

	// Store, when non-nil, is the durable content-addressed result tier
	// behind the in-memory LRU: completed results are persisted to it,
	// and a Submit that misses the LRU is answered from it without
	// re-simulating (docs/CLUSTER.md). Content addressing makes entries
	// immutable, so a store directory is safe to keep across restarts
	// and to share between daemons that never run concurrently on it.
	Store *store.Store
}

// Server is the simulation-as-a-service engine behind cmd/warpd:
// content-addressed result cache, in-flight coalescing, bounded
// admission onto a runner pool, and a graceful drain. It is
// transport-independent — Handler mounts the HTTP surface on top.
type Server struct {
	pool     *runner.Pool
	reg      *metrics.Registry
	met      *metrics.Service
	timeout  time.Duration
	cacheCap int
	store    *store.Store // durable tier; nil when not configured

	mu   sync.Mutex
	jobs map[string]*job
	lru  *list.List // completed *job entries, most recently used first
}

// New builds a Server and starts its worker pool.
func New(opt Options) *Server {
	capEntries := opt.CacheEntries
	if capEntries <= 0 {
		capEntries = 256
	}
	return &Server{
		pool: runner.NewPool(runner.PoolOptions{
			Workers:    opt.Workers,
			QueueDepth: opt.QueueDepth,
			Metrics:    opt.Metrics,
		}),
		reg:      opt.Metrics,
		met:      metrics.ForService(opt.Metrics),
		timeout:  opt.JobTimeout,
		cacheCap: capEntries,
		store:    opt.Store,
		jobs:     make(map[string]*job),
		lru:      list.New(),
	}
}

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	// ID is the job's content address; resubmitting the same work
	// always yields the same ID.
	ID string `json:"id"`

	// Status is the job's lifecycle state: queued, running, done or
	// failed.
	Status string `json:"status"`

	// Cached reports the submission was answered from a completed
	// result without simulating.
	Cached bool `json:"cached,omitempty"`

	// Coalesced reports the submission attached to an identical job
	// already queued or running.
	Coalesced bool `json:"coalesced,omitempty"`
}

// StatusResponse answers GET /v1/jobs/{id}.
type StatusResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"` // failed jobs only
}

// ResultResponse answers GET /v1/jobs/{id}/result for a done job.
type ResultResponse struct {
	ID         string       `json:"id"`
	Stats      *stats.Stats `json:"stats"`
	Attempts   int          `json:"attempts"`
	Recovered  bool         `json:"recovered"`
	Detections int          `json:"detections"`
}

// Submit admits one job: a completed identical job is a cache hit, an
// in-flight identical job coalesces, a fresh job is canonicalized and
// queued. The error is ErrDraining or ErrBusy for admission refusals,
// anything else is a spec validation failure.
func (s *Server) Submit(spec *JobSpec) (*SubmitResponse, error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return nil, err
	}
	hash := canon.Hash()
	id := IDFromHash(hash)

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		switch j.state {
		case stateDone:
			s.met.JobsSubmitted.Inc()
			s.met.CacheHits.Inc()
			s.lru.MoveToFront(j.elem)
			return &SubmitResponse{ID: id, Status: j.state.String(), Cached: true}, nil
		case stateQueued, stateRunning:
			s.met.JobsSubmitted.Inc()
			s.met.CacheCoalesced.Inc()
			return &SubmitResponse{ID: id, Status: j.state.String(), Coalesced: true}, nil
		case stateFailed:
			// Failures are never served as hits: drop the entry and
			// re-admit below, so a transient failure (timeout, OOM-ish
			// environment trouble) is retried by resubmission.
			s.removeLocked(j)
		}
	}

	// The in-memory LRU missed; the durable tier may still hold the
	// result from a prior process (or an evicted entry). A verified
	// store payload materializes as a completed job — no simulation.
	if res := s.storeGet(hash); res != nil {
		j := &job{id: id, hash: hash, canon: canon, state: stateDone,
			result: res, done: make(chan struct{})}
		close(j.done)
		j.elem = s.lru.PushFront(j)
		s.jobs[id] = j
		s.evictLocked()
		s.met.JobsSubmitted.Inc()
		s.met.CacheHits.Inc()
		return &SubmitResponse{ID: id, Status: j.state.String(), Cached: true}, nil
	}

	j := &job{id: id, hash: hash, canon: canon, state: stateQueued,
		done: make(chan struct{}), enqueued: time.Now()}
	err = s.pool.Submit(
		func() error { return s.runJob(j) },
		func(err error) { s.finishJob(j, err) },
	)
	if err != nil {
		s.met.JobsRejected.Inc()
		return nil, err
	}
	s.jobs[id] = j
	s.met.JobsSubmitted.Inc()
	s.met.CacheMisses.Inc()
	return &SubmitResponse{ID: id, Status: j.state.String()}, nil
}

// Status reports a job's lifecycle state; false when the ID is neither
// in flight nor retained.
func (s *Server) Status(id string) (*StatusResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return &StatusResponse{ID: j.id, Status: j.state.String(), Error: j.errMsg}, true
}

// Result returns a done job's result. The boolean reports existence;
// a nil response with existence means the job is not done yet (still
// queued/running, or failed — check Status).
func (s *Server) Result(id string) (*ResultResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if j.state != stateDone {
		return nil, true
	}
	s.lru.MoveToFront(j.elem)
	return &ResultResponse{
		ID:         j.id,
		Stats:      j.result.Stats,
		Attempts:   j.result.Attempts,
		Recovered:  j.result.Recovered,
		Detections: j.result.Detections,
	}, true
}

// Wait blocks until the job finishes (done or failed); false when the
// ID is unknown.
func (s *Server) Wait(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	<-j.done
	return true
}

// Drain stops admission immediately (Submit returns ErrDraining, the
// readiness probe flips to 503) and waits for every queued and
// in-flight job to finish, or for ctx to fire. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	return s.pool.Drain(ctx)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.pool.Draining() }

// runJob executes one admitted job on a pool worker.
func (s *Server) runJob(j *job) error {
	s.mu.Lock()
	j.state = stateRunning
	s.mu.Unlock()
	ctx := context.Background()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	res, err := j.canon.execute(ctx, j.id, s.reg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	j.result = res
	s.mu.Unlock()
	return nil
}

// finishJob records the outcome (err may be a *runner.PanicError from
// an isolated panic), persists a successful result to the durable
// store, moves the entry into the LRU ring, and enforces the cache
// bound.
func (s *Server) finishJob(j *job, err error) {
	if err == nil {
		// The pool runs finishJob after runJob on the same worker, so
		// j.result is stable here; persist outside the server lock.
		s.storePut(j.hash, j.result)
	}
	s.mu.Lock()
	if err != nil {
		j.state = stateFailed
		j.errMsg = err.Error()
		s.met.JobsFailed.Inc()
	} else {
		j.state = stateDone
	}
	s.met.JobsExecuted.Inc()
	s.met.JobLatencyMS.Observe(time.Since(j.enqueued).Milliseconds())
	j.elem = s.lru.PushFront(j)
	s.evictLocked()
	s.mu.Unlock()
	close(j.done)
}

// evictLocked enforces the LRU cache bound. Caller holds s.mu.
func (s *Server) evictLocked() {
	for s.lru.Len() > s.cacheCap {
		oldest := s.lru.Back()
		s.removeLocked(oldest.Value.(*job))
		s.met.CacheEvictions.Inc()
	}
	s.met.CacheEntries.Set(int64(s.lru.Len()))
}

// storeGet reads a verified result from the durable tier; nil on a
// miss, corruption, or when no store is configured.
func (s *Server) storeGet(hash string) *JobResult {
	if s.store == nil {
		return nil
	}
	payload, ok := s.store.Get(hash)
	if !ok {
		return nil
	}
	var res JobResult
	if err := json.Unmarshal(payload, &res); err != nil || res.Stats == nil {
		// A payload that verified but does not decode is a schema drift
		// artifact (e.g. a store dir from a different build); miss.
		return nil
	}
	return &res
}

// storePut persists a completed result to the durable tier; best
// effort — a full disk or unwritable directory degrades the daemon to
// in-memory caching, it does not fail the job.
func (s *Server) storePut(hash string, res *JobResult) {
	if s.store == nil || res == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	_ = s.store.Put(hash, payload)
}

// removeLocked drops a completed entry from the map and LRU ring.
// Caller holds s.mu.
func (s *Server) removeLocked(j *job) {
	delete(s.jobs, j.id)
	if j.elem != nil {
		s.lru.Remove(j.elem)
		j.elem = nil
	}
	s.met.CacheEntries.Set(int64(s.lru.Len()))
}

// Handler mounts the HTTP surface: the /v1 job API, the health and
// readiness probes, and the /debug operational endpoints (pprof,
// expvar, metrics snapshot). See docs/SERVICE.md for the API
// reference.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("/debug/", metrics.Handler(s.reg))
	return mux
}

// maxSpecBytes bounds a POSTed job spec (inline kernels included); a
// bigger body is a client error, not a reason to balloon the daemon.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("service: reading body: %v", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("service: job spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "service: draining, not accepting jobs")
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "service: job queue is full, retry later")
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	case resp.Cached:
		writeJSON(w, http.StatusOK, resp)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, ok := s.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("service: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, ok := s.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("service: unknown job %q", id))
		return
	}
	if resp == nil {
		st, _ := s.Status(id)
		if st != nil && st.Status == stateFailed.String() {
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("service: job %s failed: %s", id, st.Error))
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Sprintf("service: job %s is not finished", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	names := kernels.Names()
	for _, b := range kernels.Extras() {
		names = append(names, b.Name)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"benchmarks": names})
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorBody is the uniform error envelope of the API.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
