package service_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warped/client"
	"warped/internal/metrics"
	"warped/internal/service"
	"warped/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreColdStart: a fresh daemon over an existing store directory
// answers a previously-computed job from disk — no simulation, same
// stats. This is the durable half of the content-addressed cache.
func TestStoreColdStart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := &client.JobSpec{Source: tinySrc}

	// First life: compute and persist.
	srv1, c1, _ := newTestDaemon(t, service.Options{Workers: 1, QueueDepth: 4, Store: openStore(t, dir)})
	resp1, err := c1.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res1, err := c1.Wait(ctx, resp1.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Second life: a new Server, new pool, same directory.
	reg := metrics.New()
	_, c2, _ := newTestDaemon(t, service.Options{Workers: 1, QueueDepth: 4,
		Store: openStore(t, dir), Metrics: reg})
	resp2, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("cold Submit: %v", err)
	}
	if !resp2.Cached || resp2.Status != "done" {
		t.Fatalf("cold Submit = %+v, want cached done", resp2)
	}
	if resp2.ID != resp1.ID {
		t.Fatalf("cold Submit ID %s != original %s", resp2.ID, resp1.ID)
	}
	res2, err := c2.Result(ctx, resp2.ID)
	if err != nil {
		t.Fatalf("cold Result: %v", err)
	}
	got, _ := json.Marshal(res2.Stats)
	want, _ := json.Marshal(res1.Stats)
	if string(got) != string(want) {
		t.Errorf("cold-start stats differ:\nstore:  %s\nfirst:  %s", got, want)
	}
	snap := reg.Snapshot()
	if snap.Counters["service.jobs_executed_total"] != 0 {
		t.Errorf("jobs_executed_total = %d on cold start, want 0 (served from store)",
			snap.Counters["service.jobs_executed_total"])
	}
	if snap.Counters["service.cache_hits_total"] != 1 {
		t.Errorf("cache_hits_total = %d, want 1", snap.Counters["service.cache_hits_total"])
	}
}

// TestStoreCorruptEntryReExecutes: a corrupted store file is detected
// by hash re-verification and the job simply re-runs — wrong bytes can
// never be served.
func TestStoreCorruptEntryReExecutes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := &client.JobSpec{Source: tinySrc}

	srv1 := service.New(service.Options{Workers: 1, QueueDepth: 4, Store: openStore(t, dir)})
	resp, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Wait(resp.ID)
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Corrupt the single stored entry in place.
	var entryPath string
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			entryPath = path
		}
		return err
	})
	if err != nil || entryPath == "" {
		t.Fatalf("no store entry found under %s (err %v)", dir, err)
	}
	data, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(data), `"Cycles":`, `"Cycles":9`, 1)
	if mangled == string(data) {
		t.Fatalf("corruption edit did not apply to %s", data)
	}
	if err := os.WriteFile(entryPath, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	st2, err := store.Open(store.Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := service.New(service.Options{Workers: 1, QueueDepth: 4,
		Store: st2, Metrics: reg})
	resp2, err := srv2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cached {
		t.Fatal("corrupted store entry was served as a cache hit")
	}
	srv2.Wait(resp2.ID)
	if got := reg.Snapshot().Counters["service.jobs_executed_total"]; got != 1 {
		t.Errorf("jobs_executed_total = %d, want 1 (re-executed past corruption)", got)
	}
	if got := reg.Snapshot().Counters["store.corrupt_entries_total"]; got != 1 {
		t.Errorf("store.corrupt_entries_total = %d, want 1", got)
	}
}

// TestSpecKeyMatchesSubmitID: the exported identity computation agrees
// with what Submit assigns — the contract the coordinator coalesces on.
func TestSpecKeyMatchesSubmitID(t *testing.T) {
	spec := &client.JobSpec{Source: tinySrc}
	hash, id, err := service.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 64 {
		t.Errorf("hash %q is not a full SHA-256", hash)
	}
	if want := service.IDFromHash(hash); id != want {
		t.Errorf("id = %s, want %s", id, want)
	}
	srv := service.New(service.Options{Workers: 1})
	resp, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != id {
		t.Errorf("Submit assigned %s, SpecKey computed %s", resp.ID, id)
	}
	srv.Wait(resp.ID)
}
