package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"warped"
	"warped/client"
	"warped/internal/metrics"
	"warped/internal/service"
)

// tinySrc is a near-instant inline kernel for coalescing/drain tests.
const tinySrc = `
.kernel tiny
	mov  r0, %tid.x
	iadd r1, r0, 1
	exit
`

func newTestDaemon(t *testing.T, opt service.Options) (*service.Server, *client.Client, *httptest.Server) {
	t.Helper()
	srv := service.New(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	c.PollInterval = 5 * time.Millisecond
	return srv, c, ts
}

// TestE2ECoalescingAndCache is the tentpole end-to-end check: N
// concurrent identical submissions execute the simulation exactly
// once, a later resubmission is answered from the cache, and the
// daemon's stats are byte-identical to a direct library run of the
// same canonical inputs.
func TestE2ECoalescingAndCache(t *testing.T) {
	reg := metrics.New()
	_, c, _ := newTestDaemon(t, service.Options{Workers: 2, QueueDepth: 16, Metrics: reg})
	ctx := context.Background()

	spec := &client.JobSpec{Source: tinySrc}
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			ids[i] = resp.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got ID %s, submission 0 got %s: content addressing broke", i, ids[i], ids[0])
		}
	}
	if _, err := c.Wait(ctx, ids[0]); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["service.jobs_executed_total"]; got != 1 {
		t.Errorf("jobs_executed_total = %d after %d identical submissions, want 1", got, n)
	}
	if got := snap.Counters["service.cache_misses_total"]; got != 1 {
		t.Errorf("cache_misses_total = %d, want 1", got)
	}
	if got := snap.Counters["service.cache_coalesced_total"] + snap.Counters["service.cache_hits_total"]; got != n-1 {
		t.Errorf("coalesced+hits = %d, want %d", got, n-1)
	}

	// Resubmission after completion is a definite cache hit.
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !resp.Cached || resp.Status != "done" {
		t.Errorf("resubmit = %+v, want cached done", resp)
	}
	if got := reg.Snapshot().Counters["service.jobs_executed_total"]; got != 1 {
		t.Errorf("jobs_executed_total = %d after resubmit, want still 1", got)
	}
}

// TestE2EStatsMatchDirectRun: the daemon's answer for a benchmark job
// must be byte-identical to what warped.Runner produces for the same
// canonical inputs — caching must never change the science.
func TestE2EStatsMatchDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full MatrixMul run")
	}
	_, c, _ := newTestDaemon(t, service.Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	resp, err := c.Submit(ctx, &client.JobSpec{Benchmark: "MatrixMul"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := c.Wait(ctx, resp.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}

	direct, err := (&warped.Runner{}).Run(ctx, "MatrixMul")
	if err != nil {
		t.Fatalf("direct Run: %v", err)
	}
	got, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("service stats differ from direct run:\nservice: %s\ndirect:  %s", got, want)
	}
	if res.Attempts != direct.Attempts || res.Detections != direct.Detections {
		t.Errorf("bookkeeping differs: service {%d %d}, direct {%d %d}",
			res.Attempts, res.Detections, direct.Attempts, direct.Detections)
	}
}

// TestE2EGracefulDrain: SIGTERM semantics — admission stops (503,
// readiness flips), but every accepted job finishes; none are dropped.
func TestE2EGracefulDrain(t *testing.T) {
	reg := metrics.New()
	srv, c, _ := newTestDaemon(t, service.Options{Workers: 1, QueueDepth: 16, Metrics: reg})
	ctx := context.Background()

	// Distinct jobs (different params) so each is a separate execution.
	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		resp, err := c.Submit(ctx, &client.JobSpec{Source: tinySrc, Params: []uint32{uint32(i)}})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = resp.ID
	}

	if ready, err := c.Ready(ctx); err != nil || !ready {
		t.Fatalf("Ready before drain = %v, %v; want true", ready, err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if ready, err := c.Ready(ctx); err != nil || ready {
		t.Fatalf("Ready during drain = %v, %v; want false", ready, err)
	}

	// Zero dropped jobs: every accepted submission reached done.
	for i, id := range ids {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatalf("Status %d: %v", i, err)
		}
		if st.Status != "done" {
			t.Errorf("job %d (%s) = %s after drain, want done (error: %s)", i, id, st.Status, st.Error)
		}
	}
	if got := reg.Snapshot().Counters["service.jobs_executed_total"]; got != n {
		t.Errorf("jobs_executed_total = %d, want %d", got, n)
	}

	// New admissions are refused with the draining answer.
	if _, err := c.Submit(ctx, &client.JobSpec{Source: tinySrc, Params: []uint32{99}}); !errors.Is(err, client.ErrDraining) {
		t.Errorf("Submit during drain = %v, want ErrDraining", err)
	}
	// Health stays up while draining (the process is alive).
	resp, err := http.Get(c.Base() + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d during drain, want 200", resp.StatusCode)
	}
}

// TestE2EBackpressure: a saturated daemon sheds load with 429 and the
// client's retry loop eventually lands the job once capacity frees.
func TestE2EBackpressure(t *testing.T) {
	reg := metrics.New()
	srv, c, _ := newTestDaemon(t, service.Options{Workers: 1, QueueDepth: 1, Metrics: reg})
	ctx := context.Background()

	// A job spec whose execution blocks until we release it is not
	// expressible through the public API; instead saturate with slow-ish
	// real jobs and verify the typed 429 surfaces when the queue is full.
	var rejected bool
	for i := 0; i < 64 && !rejected; i++ {
		_, err := srv.Submit(&client.JobSpec{Source: tinySrc, Params: []uint32{uint32(i)}})
		if errors.Is(err, service.ErrBusy) {
			rejected = true
		} else if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if !rejected {
		t.Skip("queue never saturated on this machine; backpressure path not reachable")
	}
	if got := reg.Snapshot().Counters["service.jobs_rejected_total"]; got == 0 {
		t.Error("jobs_rejected_total = 0 after a rejection")
	}
	// The client-side retry must still land the job once workers catch up.
	resp, err := c.Submit(ctx, &client.JobSpec{Source: tinySrc, Params: []uint32{1000}})
	if err != nil {
		t.Fatalf("Submit with retry: %v", err)
	}
	if _, err := c.Wait(ctx, resp.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestE2EErrors: the API's failure answers — bad specs are 400, an
// unknown job is 404, an unfinished job's result is 409.
func TestE2EErrors(t *testing.T) {
	_, c, ts := newTestDaemon(t, service.Options{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	var apiErr *client.APIError
	if _, err := c.Submit(ctx, &client.JobSpec{}); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("empty spec Submit = %v, want 400", err)
	}
	if _, err := c.Status(ctx, "jdeadbeefdeadbeef"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown Status = %v, want 404", err)
	}
	if _, err := c.Result(ctx, "jdeadbeefdeadbeef"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown Result = %v, want 404", err)
	}

	// A failing job (bad assembly) reports failed status with the
	// job-addressed assembler error.
	resp, err := c.Submit(ctx, &client.JobSpec{Source: ".kernel bad\n\tbogus r0\n"})
	if err != nil {
		t.Fatalf("Submit bad source: %v", err)
	}
	if _, err := c.Wait(ctx, resp.ID); err == nil {
		t.Fatal("Wait on a failing job returned no error")
	}
	st, err := c.Status(ctx, resp.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Status != "failed" || st.Error == "" {
		t.Errorf("failed job status = %+v", st)
	}
	if want := "job:" + resp.ID; !contains(st.Error, want) {
		t.Errorf("assembler error %q does not cite %q", st.Error, want)
	}

	// Unknown POST body fields are rejected.
	r, err := http.Post(ts.URL+"/v1/jobs", "application/json", nil)
	if err != nil {
		t.Fatalf("empty POST: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty POST = %d, want 400", r.StatusCode)
	}
}

// TestE2EBenchmarksEndpoint: the discovery endpoint lists the paper
// suite and the extras.
func TestE2EBenchmarksEndpoint(t *testing.T) {
	_, c, _ := newTestDaemon(t, service.Options{Workers: 1})
	names, err := c.Benchmarks(context.Background())
	if err != nil {
		t.Fatalf("Benchmarks: %v", err)
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"MatrixMul", "BitonicSort", "Reduce"} {
		if !found[want] {
			t.Errorf("benchmark list %v is missing %s", names, want)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
