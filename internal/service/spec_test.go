package service

import (
	"strings"
	"testing"
)

func mustHash(t *testing.T, spec *JobSpec) string {
	t.Helper()
	c, err := spec.Canonicalize()
	if err != nil {
		t.Fatalf("Canonicalize(%+v): %v", spec, err)
	}
	return c.Hash()
}

// TestHashDefaultEquivalence: a spec that spells out a default must
// hash identically to one that omits it — otherwise the cache forks on
// wire-level noise and every "equivalent" client implementation gets
// its own cold cache.
func TestHashDefaultEquivalence(t *testing.T) {
	base := mustHash(t, &JobSpec{Benchmark: "MatrixMul"})

	ten, four, thirty := 10, 4, 30
	yes := true
	equivalents := []*JobSpec{
		{Benchmark: "MatrixMul", Config: &ConfigSpec{}},
		{Benchmark: "MatrixMul", Config: &ConfigSpec{Preset: "warped"}},
		{Benchmark: "MatrixMul", Config: &ConfigSpec{Preset: "WARPED"}},
		{Benchmark: "MatrixMul", Config: &ConfigSpec{
			DMR: "full", Mapping: "rr",
			ReplayQ: &ten, Cluster: &four, SMs: &thirty,
			LaneShuffle: &yes, IdleDrain: &yes,
		}},
		{Benchmark: "MatrixMul", Policy: "full"},       // full is the default policy
		{Benchmark: "MatrixMul", Retry: 1},             // 0 and 1 both mean one attempt
		{Benchmark: "MatrixMul", Seed: 42},             // seed is inert without random faults
		{Benchmark: "MatrixMul", Faults: &FaultSpec{}}, // empty campaign == no campaign
		// Geometry belongs to the bundled workload: submitted values are
		// canonicalized away.
		{Benchmark: "MatrixMul", GridX: 8, BlockX: 128},
	}
	for i, spec := range equivalents {
		if got := mustHash(t, spec); got != base {
			t.Errorf("equivalent spec %d hashed %s, want %s", i, got, base)
		}
	}
}

// TestHashDistinguishes: anything that changes the simulation must
// change the hash.
func TestHashDistinguishes(t *testing.T) {
	base := mustHash(t, &JobSpec{Benchmark: "MatrixMul"})
	eight := 8
	distinct := []*JobSpec{
		{Benchmark: "BitonicSort"},
		{Benchmark: "MatrixMul", Config: &ConfigSpec{Preset: "paper"}},
		{Benchmark: "MatrixMul", Config: &ConfigSpec{DMR: "off"}},
		{Benchmark: "MatrixMul", Config: &ConfigSpec{SMs: &eight}},
		{Benchmark: "MatrixMul", Retry: 3},
		{Benchmark: "MatrixMul", StopOnError: true},
		{Benchmark: "MatrixMul", Faults: &FaultSpec{Random: 1}},
		{Benchmark: "MatrixMul", Policy: "off"},
		{Benchmark: "MatrixMul", Policy: "warpsample:1/2"},
	}
	seen := map[string]int{base: -1}
	for i, spec := range distinct {
		h := mustHash(t, spec)
		if prev, dup := seen[h]; dup {
			t.Errorf("spec %d collides with spec %d: %s", i, prev, h)
		}
		seen[h] = i
	}
}

// TestHashSeedResolution: the seed is resolved into concrete fault
// draws — distinct seeds with random faults hash differently, and the
// same seed is stable.
func TestHashSeedResolution(t *testing.T) {
	a := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Seed: 1, Faults: &FaultSpec{Random: 2}})
	b := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Seed: 2, Faults: &FaultSpec{Random: 2}})
	a2 := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Seed: 1, Faults: &FaultSpec{Random: 2}})
	if a == b {
		t.Error("distinct seeds with random faults hashed equal")
	}
	if a != a2 {
		t.Errorf("same seed hashed %s then %s", a, a2)
	}
}

// TestHashFaultNormalization: wire-level noise on fields the fault
// kind does not use must not fork the hash.
func TestHashFaultNormalization(t *testing.T) {
	clean := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Faults: &FaultSpec{
		Faults: []FaultDef{{Kind: "transient", SM: -1, Lane: 3, Unit: "sp", Bit: 7, Cycle: 100}},
	}})
	noisy := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Faults: &FaultSpec{
		Faults: []FaultDef{{Kind: "Transient", SM: -1, Lane: 3, Unit: "SP", Bit: 7, Cycle: 100, StuckVal: 1}},
	}})
	if clean != noisy {
		t.Errorf("normalized fault hashed %s, noisy %s", clean, noisy)
	}
}

// TestHashSourceGeometryDefaults: inline-source launch geometry
// defaults are materialized before hashing.
func TestHashSourceGeometryDefaults(t *testing.T) {
	const src = "exit\n"
	implicit := mustHash(t, &JobSpec{Source: src})
	explicit := mustHash(t, &JobSpec{Source: src, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1})
	if implicit != explicit {
		t.Errorf("defaulted geometry hashed %s, explicit %s", implicit, explicit)
	}
	bigger := mustHash(t, &JobSpec{Source: src, BlockX: 64})
	if bigger == implicit {
		t.Error("different geometry hashed equal for a source job")
	}
}

// TestCanonicalHashGolden pins one canonical hash. If this test fails
// you changed the job schema, a default, or the canonical encoding:
// bump specVersion so old cached results cannot be aliased, and repin.
func TestCanonicalHashGolden(t *testing.T) {
	const want = "b38956ceac1a8fa3ee61190a71eb3acfa41e30611f32a17fed92e1c4a7c1d8e1"
	if got := mustHash(t, &JobSpec{Benchmark: "MatrixMul"}); got != want {
		t.Errorf("canonical hash of {benchmark: MatrixMul} = %s, want %s", got, want)
	}
}

// TestHashPolicyNormalization: equivalent policy spellings hash
// identically (one cache entry per policy, not per spelling), while
// distinct policies fork the hash.
func TestHashPolicyNormalization(t *testing.T) {
	canonical := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Policy: "warpsample:1/2"})
	alias := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Policy: "warpsample:2"})
	if canonical != alias {
		t.Errorf("warpsample:1/2 hashed %s, alias warpsample:2 hashed %s", canonical, alias)
	}
	other := mustHash(t, &JobSpec{Benchmark: "MatrixMul", Policy: "warpsample:1/4"})
	if other == canonical {
		t.Error("warpsample:1/4 collides with warpsample:1/2")
	}
}

// TestCanonicalizeRejects: malformed specs fail loudly at admission.
func TestCanonicalizeRejects(t *testing.T) {
	bad := map[string]*JobSpec{
		"empty":             {},
		"both workloads":    {Benchmark: "MatrixMul", Source: "exit\n"},
		"unknown benchmark": {Benchmark: "NotABenchmark"},
		"unknown preset":    {Benchmark: "MatrixMul", Config: &ConfigSpec{Preset: "quantum"}},
		"unknown dmr":       {Benchmark: "MatrixMul", Config: &ConfigSpec{DMR: "sideways"}},
		"bad fault kind":    {Benchmark: "MatrixMul", Faults: &FaultSpec{Faults: []FaultDef{{Kind: "warp-core-breach", Lane: 0, Unit: "sp"}}}},
		"bad fault lane":    {Benchmark: "MatrixMul", Faults: &FaultSpec{Faults: []FaultDef{{Kind: "stuck-at", Lane: 99, Unit: "sp"}}}},
		"bad fault unit":    {Benchmark: "MatrixMul", Faults: &FaultSpec{Faults: []FaultDef{{Kind: "stuck-at", Lane: 0, Unit: "tensor"}}}},
		"negative random":   {Benchmark: "MatrixMul", Faults: &FaultSpec{Random: -1}},
		"negative shared":   {Source: "exit\n", SharedBytes: -4},
		"bad policy":        {Benchmark: "MatrixMul", Policy: "quantum"},
		"bad policy arg":    {Benchmark: "MatrixMul", Policy: "warpsample:1/0"},
	}
	for name, spec := range bad {
		if _, err := spec.Canonicalize(); err == nil {
			t.Errorf("%s: Canonicalize accepted %+v", name, spec)
		}
	}
}

// TestParseSpecStrict: unknown fields are rejected so a typo cannot
// silently hash to a different (default-filled) job.
func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"benchmark":"MatrixMul","retries":3}`)); err == nil {
		t.Error("ParseSpec accepted an unknown field")
	}
	if _, err := ParseSpec([]byte(`{"benchmark":"MatrixMul"} trailing`)); err == nil {
		t.Error("ParseSpec accepted trailing data")
	}
	spec, err := ParseSpec([]byte(`{"benchmark":"MatrixMul","seed":7}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Benchmark != "MatrixMul" || spec.Seed != 7 {
		t.Errorf("ParseSpec decoded %+v", spec)
	}
}

// TestIDFromHash: IDs are a stable prefix of the content hash.
func TestIDFromHash(t *testing.T) {
	h := mustHash(t, &JobSpec{Benchmark: "MatrixMul"})
	id := IDFromHash(h)
	if !strings.HasPrefix(id, "j") || len(id) != 17 {
		t.Errorf("IDFromHash(%s) = %s, want j + 16 hex chars", h, id)
	}
	if !strings.HasPrefix(h, id[1:]) {
		t.Errorf("ID %s is not a prefix of hash %s", id, h)
	}
}
