package asm

import (
	"errors"
	"strings"
	"testing"
)

// TestAssembleNamedError: the caller-supplied source name leads every
// assembly diagnostic, so a service can stamp errors with the job that
// carried the kernel.
func TestAssembleNamedError(t *testing.T) {
	_, err := AssembleNamed("job:jdeadbeef", ".kernel k\n\tbogus r0\n")
	if err == nil {
		t.Fatal("expected an assembly error")
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error type %T, want *Error", err)
	}
	if ae.File != "job:jdeadbeef" {
		t.Errorf("Error.File = %q", ae.File)
	}
	if want := "job:jdeadbeef: line 2:"; !strings.HasPrefix(err.Error(), want) {
		t.Errorf("error %q does not start with %q", err, want)
	}
}

// TestAssembleAnonymousErrorUnchanged: the historical "asm:" prefix of
// the anonymous entry points is part of the API surface — existing
// callers grep for it.
func TestAssembleAnonymousErrorUnchanged(t *testing.T) {
	_, err := Assemble(".kernel k\n\tbogus r0\n")
	if err == nil {
		t.Fatal("expected an assembly error")
	}
	if want := "asm: line 2:"; !strings.HasPrefix(err.Error(), want) {
		t.Errorf("error %q does not start with %q", err, want)
	}
}

// TestAssembleVerifiedNamedError: verification failures carry the name
// too.
func TestAssembleVerifiedNamedError(t *testing.T) {
	// r1 is read before any definition: assembles fine, fails the
	// static verifier.
	src := ".kernel k\n\tiadd r0, r1, 1\n\texit\n"
	_, err := AssembleVerifiedNamed("job:j1234", src)
	if err == nil {
		t.Fatal("expected a verification error")
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error type %T, want *VerifyError", err)
	}
	if ve.File != "job:j1234" {
		t.Errorf("VerifyError.File = %q", ve.File)
	}
	if !strings.HasPrefix(err.Error(), "job:j1234: ") {
		t.Errorf("error %q does not carry the source name", err)
	}
	// The anonymous form keeps its historical prefix.
	_, err = AssembleVerified(src)
	if err == nil || !strings.HasPrefix(err.Error(), "asm: ") {
		t.Errorf("anonymous verify error = %v, want asm: prefix", err)
	}
}
