// Package asm implements a two-pass assembler for the simulator's
// PTX-like textual assembly. Kernels in internal/kernels are written in
// this language; examples may also assemble their own.
//
// Syntax overview:
//
//	.kernel name          directive: kernel name
//	.reg N                directive: number of GPRs the kernel uses
//	.shared N             directive: shared-memory bytes per block
//	.block X [Y]          directive: worst-case launch block dims, used
//	                      by the thread-symbolic verifier rules
//	label:                labels, one per line or preceding an instruction
//	@p0 iadd r1, r2, 5    optional guard predicate, mnemonic, operands
//	@!p1 bra TOP          negated guard; branches take label operands
//	bra ELSE, RECONV      divergent branch with explicit reconvergence
//	ld.global r4,[r5+16]  memory operands are [reg+offset] or [offset]
//	setp.lt.s32 p0,r1,r2  compare with condition and type suffixes
//	mov r1, 1.5           float literals assemble to float32 bit patterns
//
// Comments start with ';', '#', or '//' and run to end of line.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"warped/internal/isa"
	"warped/internal/verify"
)

// Error describes an assembly failure with source position. File is
// the caller-supplied source name from AssembleNamed ("" for the
// anonymous Assemble entry points, rendered as the historical "asm"
// prefix).
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	name := e.File
	if name == "" {
		name = "asm"
	}
	return fmt.Sprintf("%s: line %d: %s", name, e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses and assembles one kernel from source text.
func Assemble(src string) (*isa.Program, error) {
	return AssembleNamed("", src)
}

// AssembleNamed is Assemble with a caller-supplied source name carried
// into every error message: the file the source was read from, or a
// synthetic origin such as "job:3f9c…" for inline source submitted over
// the network. An empty name keeps the anonymous "asm:" prefix.
func AssembleNamed(name, src string) (*isa.Program, error) {
	p, err := assemble(src)
	if err != nil {
		if ae, ok := err.(*Error); ok && name != "" {
			ae.File = name
		}
		return nil, err
	}
	return p, nil
}

// assemble parses and assembles one kernel from source text.
func assemble(src string) (*isa.Program, error) {
	p := &isa.Program{Labels: make(map[string]int)}

	type pending struct {
		instrIdx int
		target   string
		reconv   string // "" means default rule
		line     int
	}
	var fixups []pending

	maxReg := -1
	noteReg := func(r isa.Reg) {
		if !r.IsSpecial() && int(r) > maxReg {
			maxReg = int(r)
		}
	}
	noteOp := func(o isa.Operand) {
		if !o.IsImm {
			noteReg(o.Reg)
		}
	}

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := ln + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}

		// Directives.
		if strings.HasPrefix(text, ".") {
			fields := strings.Fields(text)
			switch fields[0] {
			case ".kernel":
				if len(fields) != 2 {
					return nil, errf(line, ".kernel wants a name")
				}
				p.Name = fields[1]
			case ".reg":
				if len(fields) != 2 {
					return nil, errf(line, ".reg wants a count")
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 || n > isa.MaxGPR {
					return nil, errf(line, ".reg count must be 0..%d", isa.MaxGPR)
				}
				p.NumRegs = n
			case ".shared":
				if len(fields) != 2 {
					return nil, errf(line, ".shared wants a byte count")
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, errf(line, ".shared count must be non-negative")
				}
				p.SharedBytes = n
			case ".block":
				if len(fields) != 2 && len(fields) != 3 {
					return nil, errf(line, ".block wants X [Y] dimensions")
				}
				bx, err := strconv.Atoi(fields[1])
				if err != nil || bx < 1 {
					return nil, errf(line, ".block X must be a positive thread count")
				}
				by := 1
				if len(fields) == 3 {
					by, err = strconv.Atoi(fields[2])
					if err != nil || by < 1 {
						return nil, errf(line, ".block Y must be a positive thread count")
					}
				}
				p.BlockDimX, p.BlockDimY = bx, by
			default:
				return nil, errf(line, "unknown directive %q", fields[0])
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			idx := strings.Index(text, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(text[:idx])
			if !isIdent(name) {
				break // ':' belongs to something else (not in this ISA, but be safe)
			}
			if _, dup := p.Labels[name]; dup {
				return nil, errf(line, "duplicate label %q", name)
			}
			p.Labels[name] = len(p.Instrs)
			text = strings.TrimSpace(text[idx+1:])
			if text == "" {
				break
			}
		}
		if text == "" {
			continue
		}

		in, target, reconv, err := parseInstr(text, line)
		if err != nil {
			return nil, err
		}
		if target != "" {
			fixups = append(fixups, pending{len(p.Instrs), target, reconv, line})
		}
		if in.Op.HasDst() {
			noteReg(in.Dst)
		}
		for i := 0; i < in.Op.NumSrc(); i++ {
			noteOp(in.Src[i])
		}
		in.Line = line
		p.Instrs = append(p.Instrs, in)
	}

	if len(p.Instrs) == 0 {
		return nil, errf(0, "empty program")
	}
	if p.Name == "" {
		return nil, errf(0, "missing .kernel directive")
	}
	// Ensure termination so a warp can never run off the end.
	if p.Instrs[len(p.Instrs)-1].Op != isa.OpEXIT {
		p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpEXIT, Pred: isa.AlwaysPred()})
	}

	// Resolve branch labels and reconvergence PCs.
	for _, f := range fixups {
		pc, ok := p.Labels[f.target]
		if !ok {
			return nil, errf(f.line, "undefined label %q", f.target)
		}
		in := &p.Instrs[f.instrIdx]
		in.Target = pc
		switch {
		case f.reconv != "":
			rpc, ok := p.Labels[f.reconv]
			if !ok {
				return nil, errf(f.line, "undefined reconvergence label %q", f.reconv)
			}
			in.Reconv = rpc
		case pc > f.instrIdx:
			// Forward branch: if-then pattern, reconverge at the target.
			in.Reconv = pc
		default:
			// Backward branch: loop, reconverge at the fall-through.
			in.Reconv = f.instrIdx + 1
		}
	}

	if p.NumRegs == 0 {
		p.NumRegs = maxReg + 1
	} else if maxReg >= p.NumRegs {
		return nil, errf(0, "register r%d used but .reg declares only %d", maxReg, p.NumRegs)
	}
	return p, nil
}

// MustAssemble assembles src and panics on error. Intended for the
// built-in kernels, whose sources are compile-time constants.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// VerifyError reports static-verification findings from
// AssembleVerified. The assembled program is still available to callers
// that want to run it anyway (the -lint=off escape hatch). File is the
// caller-supplied source name from AssembleVerifiedNamed ("" keeps the
// historical "asm" prefix).
type VerifyError struct {
	File     string
	Kernel   string
	Findings verify.Findings
}

func (e *VerifyError) Error() string {
	name := e.File
	if name == "" {
		name = "asm"
	}
	return fmt.Sprintf("%s: kernel %q failed verification:\n%s", name, e.Kernel, e.Findings)
}

// AssembleVerified assembles one kernel and runs the static verifier
// over the result. Error-severity findings (use-before-def, divergent
// barriers, misaligned accesses, ...) are returned as a *VerifyError
// alongside the program; warning-only programs assemble cleanly.
func AssembleVerified(src string) (*isa.Program, error) {
	return AssembleVerifiedNamed("", src)
}

// AssembleVerifiedNamed is AssembleVerified with a caller-supplied
// source name threaded into both assembly and verification errors.
func AssembleVerifiedNamed(name, src string) (*isa.Program, error) {
	p, err := AssembleNamed(name, src)
	if err != nil {
		return nil, err
	}
	if fs := verify.Check(p); fs.Errors() > 0 {
		return p, &VerifyError{File: name, Kernel: p.Name, Findings: fs}
	}
	return p, nil
}

func stripComment(s string) string {
	for _, marker := range []string{";", "//", "#"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseInstr decodes one instruction line (guard already attached).
// Returns the instruction plus unresolved branch target/reconv labels.
func parseInstr(text string, line int) (isa.Instr, string, string, error) {
	in := isa.Instr{Pred: isa.AlwaysPred(), Target: -1, Reconv: -1}

	// Guard predicate.
	if strings.HasPrefix(text, "@") {
		sp := strings.IndexAny(text, " \t")
		if sp < 0 {
			return in, "", "", errf(line, "guard with no instruction")
		}
		g := text[1:sp]
		neg := false
		if strings.HasPrefix(g, "!") {
			neg = true
			g = g[1:]
		}
		pi, err := parsePredName(g)
		if err != nil {
			return in, "", "", errf(line, "bad guard %q", text[:sp])
		}
		in.Pred = isa.PredRef{Index: pi, Negate: neg}
		text = strings.TrimSpace(text[sp:])
	}

	// Mnemonic and operand split.
	var mnem, rest string
	if sp := strings.IndexAny(text, " \t"); sp >= 0 {
		mnem, rest = text[:sp], strings.TrimSpace(text[sp:])
	} else {
		mnem = text
	}
	ops := splitOperands(rest)

	switch {
	case mnem == "bra":
		in.Op = isa.OpBRA
		if len(ops) < 1 || len(ops) > 2 {
			return in, "", "", errf(line, "bra wants 1 or 2 label operands")
		}
		target := ops[0]
		reconv := ""
		if len(ops) == 2 {
			reconv = ops[1]
		}
		if !isIdent(target) || (reconv != "" && !isIdent(reconv)) {
			return in, "", "", errf(line, "bra operands must be labels")
		}
		return in, target, reconv, nil

	case mnem == "bar.sync" || mnem == "bar":
		in.Op = isa.OpBAR
		return in, "", "", nil

	case mnem == "exit":
		in.Op = isa.OpEXIT
		return in, "", "", nil

	case mnem == "nop":
		in.Op = isa.OpNOP
		return in, "", "", nil

	case strings.HasPrefix(mnem, "setp."):
		// setp.<cmp>.<type> pN, a, b
		parts := strings.Split(mnem, ".")
		if len(parts) != 3 {
			return in, "", "", errf(line, "setp wants setp.<cmp>.<type>")
		}
		cmp, err := parseCmp(parts[1])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		ty, err := parseCmpType(parts[2])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		if len(ops) != 3 {
			return in, "", "", errf(line, "setp wants 3 operands")
		}
		pd, err := parsePredName(ops[0])
		if err != nil {
			return in, "", "", errf(line, "setp destination must be a predicate: %v", err)
		}
		a, err := parseOperand(ops[1], ty == isa.CmpF32)
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		b, err := parseOperand(ops[2], ty == isa.CmpF32)
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Op, in.Cmp, in.CmpTy, in.PDst = isa.OpSETP, cmp, ty, pd
		in.Src[0], in.Src[1] = a, b
		return in, "", "", nil

	case mnem == "selp":
		// selp rd, a, b, pN
		if len(ops) != 4 {
			return in, "", "", errf(line, "selp wants 4 operands")
		}
		rd, err := parseGPR(ops[0])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		a, err := parseOperand(ops[1], false)
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		b, err := parseOperand(ops[2], false)
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		ps, err := parsePredName(ops[3])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Op, in.Dst, in.PSrcA = isa.OpSELP, rd, ps
		in.Src[0], in.Src[1] = a, b
		return in, "", "", nil

	case mnem == "pand", mnem == "pnot":
		want := 3
		if mnem == "pnot" {
			want = 2
		}
		if len(ops) != want {
			return in, "", "", errf(line, "%s wants %d predicate operands", mnem, want)
		}
		pd, err := parsePredName(ops[0])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		pa, err := parsePredName(ops[1])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.PDst, in.PSrcA = pd, pa
		if mnem == "pand" {
			pb, err := parsePredName(ops[2])
			if err != nil {
				return in, "", "", errf(line, "%v", err)
			}
			in.Op, in.PSrcB = isa.OpPAND, pb
		} else {
			in.Op = isa.OpPNOT
		}
		return in, "", "", nil

	case strings.HasPrefix(mnem, "ld."), strings.HasPrefix(mnem, "st."), strings.HasPrefix(mnem, "atom.add."):
		return parseMemInstr(in, mnem, ops, line)
	}

	// Plain register ops.
	op, ok := mnemonics[mnem]
	if !ok {
		return in, "", "", errf(line, "unknown mnemonic %q", mnem)
	}
	in.Op = op
	need := op.NumSrc()
	idx := 0
	if op.HasDst() {
		if len(ops) != need+1 {
			return in, "", "", errf(line, "%s wants %d operands", mnem, need+1)
		}
		rd, err := parseGPR(ops[0])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Dst = rd
		idx = 1
	} else if len(ops) != need {
		return in, "", "", errf(line, "%s wants %d operands", mnem, need)
	}
	for i := 0; i < need; i++ {
		o, err := parseOperand(ops[idx+i], op.IsFP())
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Src[i] = o
	}
	return in, "", "", nil
}

func parseMemInstr(in isa.Instr, mnem string, ops []string, line int) (isa.Instr, string, string, error) {
	var op isa.Opcode
	var spaceStr string
	switch {
	case strings.HasPrefix(mnem, "ld."):
		op, spaceStr = isa.OpLD, mnem[3:]
	case strings.HasPrefix(mnem, "st."):
		op, spaceStr = isa.OpST, mnem[3:]
	case strings.HasPrefix(mnem, "atom.add."):
		op, spaceStr = isa.OpATOM, mnem[len("atom.add."):]
	}
	space, err := parseSpace(spaceStr)
	if err != nil {
		return in, "", "", errf(line, "%v", err)
	}
	if op == isa.OpATOM && space == isa.SpaceParam {
		return in, "", "", errf(line, "atomics not allowed in param space")
	}
	if op == isa.OpST && space == isa.SpaceParam {
		return in, "", "", errf(line, "param space is read-only")
	}
	in.Op, in.Space = op, space

	switch op {
	case isa.OpLD:
		if len(ops) != 2 {
			return in, "", "", errf(line, "ld wants dst, [addr]")
		}
		rd, err := parseGPR(ops[0])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		base, off, err := parseAddr(ops[1])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Dst, in.Src[0], in.Off = rd, base, off
	case isa.OpST:
		if len(ops) != 2 {
			return in, "", "", errf(line, "st wants [addr], src")
		}
		base, off, err := parseAddr(ops[0])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		val, err := parseOperand(ops[1], false)
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Src[0], in.Off, in.Src[1] = base, off, val
	case isa.OpATOM:
		if len(ops) != 3 {
			return in, "", "", errf(line, "atom.add wants dst, [addr], src")
		}
		rd, err := parseGPR(ops[0])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		base, off, err := parseAddr(ops[1])
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		val, err := parseOperand(ops[2], false)
		if err != nil {
			return in, "", "", errf(line, "%v", err)
		}
		in.Dst, in.Src[0], in.Off, in.Src[1] = rd, base, off, val
	default:
		return in, "", "", errf(line, "internal: %s is not a memory op", op)
	}
	return in, "", "", nil
}

var mnemonics = map[string]isa.Opcode{
	"mov": isa.OpMOV, "iadd": isa.OpIADD, "isub": isa.OpISUB,
	"imul": isa.OpIMUL, "imad": isa.OpIMAD, "imin": isa.OpIMIN,
	"imax": isa.OpIMAX, "and": isa.OpAND, "or": isa.OpOR, "xor": isa.OpXOR,
	"not": isa.OpNOT, "shl": isa.OpSHL, "shr": isa.OpSHR, "sar": isa.OpSAR,
	"fadd": isa.OpFADD, "fsub": isa.OpFSUB, "fmul": isa.OpFMUL,
	"ffma": isa.OpFFMA, "fmin": isa.OpFMIN, "fmax": isa.OpFMAX,
	"fneg": isa.OpFNEG, "fabs": isa.OpFABS, "i2f": isa.OpI2F, "f2i": isa.OpF2I,
	"fsin": isa.OpFSIN, "fcos": isa.OpFCOS, "fsqrt": isa.OpFSQRT,
	"frsqrt": isa.OpFRSQRT, "frcp": isa.OpFRCP, "fex2": isa.OpFEX2,
	"flg2": isa.OpFLG2, "fdiv": isa.OpFDIV,
}

func parseSpace(s string) (isa.MemSpace, error) {
	switch s {
	case "global":
		return isa.SpaceGlobal, nil
	case "shared":
		return isa.SpaceShared, nil
	case "param":
		return isa.SpaceParam, nil
	case "local":
		return isa.SpaceLocal, nil
	}
	return 0, fmt.Errorf("unknown memory space %q", s)
}

func parseCmp(s string) (isa.CmpOp, error) {
	switch s {
	case "eq":
		return isa.CmpEQ, nil
	case "ne":
		return isa.CmpNE, nil
	case "lt":
		return isa.CmpLT, nil
	case "le":
		return isa.CmpLE, nil
	case "gt":
		return isa.CmpGT, nil
	case "ge":
		return isa.CmpGE, nil
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

func parseCmpType(s string) (isa.CmpType, error) {
	switch s {
	case "s32":
		return isa.CmpS32, nil
	case "u32":
		return isa.CmpU32, nil
	case "f32":
		return isa.CmpF32, nil
	}
	return 0, fmt.Errorf("unknown compare type %q", s)
}

func parsePredName(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'p' {
		return 0, fmt.Errorf("bad predicate %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumPreds {
		return 0, fmt.Errorf("predicate index out of range in %q", s)
	}
	return uint8(n), nil
}

func parseGPR(s string) (isa.Reg, error) {
	if r, ok := isa.SpecialByName(s); ok {
		return r, nil
	}
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.MaxGPR {
		return 0, fmt.Errorf("register index out of range in %q", s)
	}
	return isa.Reg(n), nil
}

// parseOperand parses a register, special register, or immediate.
// fpCtx controls whether bare numeric literals are float32 or int32.
func parseOperand(s string, fpCtx bool) (isa.Operand, error) {
	if s == "" {
		return isa.Operand{}, fmt.Errorf("empty operand")
	}
	if r, ok := isa.SpecialByName(s); ok {
		return isa.RegOp(r), nil
	}
	if s[0] == 'r' {
		if r, err := parseGPR(s); err == nil {
			return isa.RegOp(r), nil
		}
	}
	return parseImm(s, fpCtx)
}

func parseImm(s string, fpCtx bool) (isa.Operand, error) {
	// Explicit float forms: trailing 'f' or a decimal point / exponent.
	isFloat := strings.HasSuffix(s, "f") && !strings.HasPrefix(s, "0x")
	if strings.ContainsAny(s, ".") || (strings.ContainsAny(s, "eE") && !strings.HasPrefix(s, "0x")) {
		isFloat = true
	}
	if isFloat || fpCtx {
		fs := strings.TrimSuffix(s, "f")
		if f, err := strconv.ParseFloat(fs, 32); err == nil {
			return isa.ImmOp(math.Float32bits(float32(f))), nil
		}
		if !isFloat {
			// fpCtx but maybe an int literal used as bit pattern: fall through.
		} else {
			return isa.Operand{}, fmt.Errorf("bad float literal %q", s)
		}
	}
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		if n < math.MinInt32 || n > math.MaxUint32 {
			return isa.Operand{}, fmt.Errorf("immediate %q out of 32-bit range", s)
		}
		if fpCtx {
			// Integer literal in a float op: treat as float value for ergonomics.
			return isa.ImmOp(math.Float32bits(float32(n))), nil
		}
		return isa.ImmOp(uint32(int64(uint32(n)))), nil
	}
	return isa.Operand{}, fmt.Errorf("bad operand %q", s)
}

// parseAddr parses "[base+off]", "[base-off]", "[base]", or "[off]".
func parseAddr(s string) (isa.Operand, int32, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return isa.Operand{}, 0, fmt.Errorf("bad address %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return isa.Operand{}, 0, fmt.Errorf("empty address %q", s)
	}
	// Find +/- separating base and offset (not a leading sign).
	sep := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			sep = i
			break
		}
	}
	if sep < 0 {
		// Single term: register base or absolute offset.
		if r, err := parseGPR(inner); err == nil {
			return isa.RegOp(r), 0, nil
		}
		if r, ok := isa.SpecialByName(inner); ok {
			return isa.RegOp(r), 0, nil
		}
		n, err := strconv.ParseInt(inner, 0, 32)
		if err != nil {
			return isa.Operand{}, 0, fmt.Errorf("bad address %q", s)
		}
		return isa.ImmOp(0), int32(n), nil
	}
	baseStr := strings.TrimSpace(inner[:sep])
	offStr := strings.TrimSpace(inner[sep:]) // includes sign
	base, err := parseGPR(baseStr)
	if err != nil {
		return isa.Operand{}, 0, fmt.Errorf("bad address base in %q", s)
	}
	n, err := strconv.ParseInt(offStr, 0, 32)
	if err != nil {
		return isa.Operand{}, 0, fmt.Errorf("bad address offset in %q", s)
	}
	return isa.RegOp(base), int32(n), nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	// Split on commas that are not inside brackets.
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// AssembleModule assembles a source file containing several kernels
// (each introduced by its own .kernel directive) and returns them by
// name. Directives and labels are scoped to their kernel; error line
// numbers refer to the whole module source.
func AssembleModule(src string) (map[string]*isa.Program, error) {
	lines := strings.Split(src, "\n")
	out := make(map[string]*isa.Program)

	var chunk []string
	chunkBase := 0 // 0-based line index of the chunk's first line
	flush := func() error {
		hasContent := false
		for _, raw := range chunk {
			if strings.TrimSpace(stripComment(raw)) != "" {
				hasContent = true
				break
			}
		}
		if !hasContent {
			return nil // blank/comment-only preamble
		}
		p, err := Assemble(strings.Join(chunk, "\n"))
		if err != nil {
			if ae, ok := err.(*Error); ok && ae.Line > 0 {
				ae.Line += chunkBase
			}
			return err
		}
		for i := range p.Instrs {
			if p.Instrs[i].Line > 0 { // keep 0 on synthesized exits
				p.Instrs[i].Line += chunkBase
			}
		}
		if _, dup := out[p.Name]; dup {
			return errf(chunkBase+1, "duplicate kernel %q", p.Name)
		}
		out[p.Name] = p
		return nil
	}
	for i, raw := range lines {
		text := strings.TrimSpace(stripComment(raw))
		if strings.HasPrefix(text, ".kernel") && len(chunk) > 0 {
			if err := flush(); err != nil {
				return nil, err
			}
			chunk = chunk[:0]
		}
		if len(chunk) == 0 {
			chunkBase = i
		}
		chunk = append(chunk, raw)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errf(0, "no kernels in module")
	}
	return out, nil
}
