package asm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"warped/internal/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAsm(t, `
.kernel basic
	mov  r0, %tid.x
	iadd r1, r0, 5      ; comment
	exit
`)
	if p.Name != "basic" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Instrs) != 3 {
		t.Fatalf("got %d instrs", len(p.Instrs))
	}
	if p.Instrs[0].Op != isa.OpMOV || p.Instrs[0].Src[0].Reg != isa.RegTIDX {
		t.Error("mov of special register misparsed")
	}
	if p.Instrs[1].Src[1].Imm != 5 {
		t.Error("immediate misparsed")
	}
	if p.NumRegs != 2 {
		t.Errorf("inferred NumRegs = %d, want 2", p.NumRegs)
	}
}

func TestImplicitExit(t *testing.T) {
	p := mustAsm(t, ".kernel k\n\tmov r0, 1\n")
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != isa.OpEXIT {
		t.Error("assembler must append a terminating exit")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
.kernel branches
TOP:
	iadd r0, r0, 1
	setp.lt.s32 p0, r0, 10
	@p0 bra TOP
	bra END
	iadd r0, r0, 100
END:
	exit
`)
	br := p.Instrs[2]
	if br.Op != isa.OpBRA || br.Target != 0 {
		t.Errorf("backward branch target = %d, want 0", br.Target)
	}
	// Backward branch defaults to fall-through reconvergence.
	if br.Reconv != 3 {
		t.Errorf("backward branch reconv = %d, want 3", br.Reconv)
	}
	fw := p.Instrs[3]
	if fw.Target != 5 || fw.Reconv != 5 {
		t.Errorf("forward branch (target,reconv) = (%d,%d), want (5,5)", fw.Target, fw.Reconv)
	}
	if fw.Pred.None != true {
		t.Error("unconditional bra must be unguarded")
	}
}

func TestExplicitReconvergence(t *testing.T) {
	p := mustAsm(t, `
.kernel ifelse
	setp.eq.s32 p0, r0, 0
	@p0 bra ELSE, JOIN
	iadd r1, r1, 1
	bra JOIN
ELSE:
	iadd r1, r1, 2
JOIN:
	exit
`)
	br := p.Instrs[1]
	if br.Target != 4 || br.Reconv != 5 {
		t.Errorf("(target,reconv) = (%d,%d), want (4,5)", br.Target, br.Reconv)
	}
}

func TestGuards(t *testing.T) {
	p := mustAsm(t, `
.kernel guards
	@p1 iadd r0, r0, 1
	@!p7 exit
`)
	if g := p.Instrs[0].Pred; g.None || g.Index != 1 || g.Negate {
		t.Errorf("@p1 guard = %+v", g)
	}
	if g := p.Instrs[1].Pred; g.None || g.Index != 7 || !g.Negate {
		t.Errorf("@!p7 guard = %+v", g)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := mustAsm(t, `
.kernel mems
	ld.global r1, [r2+16]
	ld.shared r3, [r4-4]
	ld.param r5, [8]
	st.global [r6], r7
	atom.add.shared r8, [r9+32], r10
`)
	ins := p.Instrs
	if ins[0].Space != isa.SpaceGlobal || ins[0].Off != 16 || ins[0].Src[0].Reg != 2 {
		t.Errorf("ld.global misparsed: %+v", ins[0])
	}
	if ins[1].Off != -4 {
		t.Errorf("negative offset = %d", ins[1].Off)
	}
	if ins[2].Space != isa.SpaceParam || !ins[2].Src[0].IsImm || ins[2].Off != 8 {
		t.Errorf("absolute param address misparsed: %+v", ins[2])
	}
	if ins[3].Op != isa.OpST || ins[3].Src[1].Reg != 7 {
		t.Errorf("st misparsed: %+v", ins[3])
	}
	if ins[4].Op != isa.OpATOM || ins[4].Space != isa.SpaceShared || ins[4].Dst != 8 {
		t.Errorf("atom misparsed: %+v", ins[4])
	}
}

func TestFloatImmediates(t *testing.T) {
	p := mustAsm(t, `
.kernel floats
	mov  r0, 1.5
	fadd r1, r0, 2
	fmul r2, r1, -0.25
	mov  r3, 3f
`)
	if p.Instrs[0].Src[0].Imm != math.Float32bits(1.5) {
		t.Error("1.5 literal wrong")
	}
	// Integer literal in FP context becomes a float value.
	if p.Instrs[1].Src[1].Imm != math.Float32bits(2) {
		t.Error("2 in fadd should be float32(2)")
	}
	if p.Instrs[2].Src[1].Imm != math.Float32bits(-0.25) {
		t.Error("-0.25 literal wrong")
	}
	if p.Instrs[3].Src[0].Imm != math.Float32bits(3) {
		t.Error("3f literal wrong")
	}
}

func TestIntImmediates(t *testing.T) {
	p := mustAsm(t, `
.kernel ints
	mov r0, -1
	mov r1, 0x7fffffff
	mov r2, 0xEFCDAB89
	shl r3, r0, 31
`)
	if p.Instrs[0].Src[0].Imm != 0xFFFFFFFF {
		t.Errorf("-1 = %x", p.Instrs[0].Src[0].Imm)
	}
	if p.Instrs[1].Src[0].Imm != 0x7fffffff {
		t.Error("hex literal wrong")
	}
	if p.Instrs[2].Src[0].Imm != 0xEFCDAB89 {
		t.Error("high hex literal wrong")
	}
}

func TestSetpVariants(t *testing.T) {
	p := mustAsm(t, `
.kernel setps
	setp.lt.s32 p0, r1, r2
	setp.ge.u32 p1, r1, 0xFFFFFFFF
	setp.eq.f32 p2, r1, 1.0
`)
	if p.Instrs[0].Cmp != isa.CmpLT || p.Instrs[0].CmpTy != isa.CmpS32 {
		t.Error("setp.lt.s32 misparsed")
	}
	if p.Instrs[1].Cmp != isa.CmpGE || p.Instrs[1].CmpTy != isa.CmpU32 {
		t.Error("setp.ge.u32 misparsed")
	}
	if p.Instrs[2].CmpTy != isa.CmpF32 || p.Instrs[2].Src[1].Imm != math.Float32bits(1.0) {
		t.Error("setp f32 immediate misparsed")
	}
}

func TestPredicateOps(t *testing.T) {
	p := mustAsm(t, `
.kernel preds
	pand p0, p1, p2
	pnot p3, p4
	selp r0, r1, r2, p5
`)
	if in := p.Instrs[0]; in.PDst != 0 || in.PSrcA != 1 || in.PSrcB != 2 {
		t.Errorf("pand misparsed: %+v", in)
	}
	if in := p.Instrs[1]; in.Op != isa.OpPNOT || in.PSrcA != 4 {
		t.Errorf("pnot misparsed: %+v", in)
	}
	if in := p.Instrs[2]; in.Op != isa.OpSELP || in.PSrcA != 5 {
		t.Errorf("selp misparsed: %+v", in)
	}
}

func TestRegDirective(t *testing.T) {
	p := mustAsm(t, ".kernel k\n.reg 10\n\tmov r3, 1\n\texit\n")
	if p.NumRegs != 10 {
		t.Errorf("NumRegs = %d, want 10", p.NumRegs)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no kernel name", "\tmov r0, 1\n"},
		{"unknown mnemonic", ".kernel k\n\tfrobnicate r0, r1\n"},
		{"undefined label", ".kernel k\n\tbra NOWHERE\n"},
		{"duplicate label", ".kernel k\nA:\n\tnop\nA:\n\texit\n"},
		{"bad register", ".kernel k\n\tmov r99, 1\n"},
		{"bad predicate", ".kernel k\n\tsetp.lt.s32 p9, r0, r1\n"},
		{"wrong arity", ".kernel k\n\tiadd r0, r1\n"},
		{"store to param", ".kernel k\n\tst.param [r0], r1\n"},
		{"atomic on param", ".kernel k\n\tatom.add.param r0, [r1], r2\n"},
		{"reg over declared", ".kernel k\n.reg 2\n\tmov r5, 1\n"},
		{"bad directive", ".kernel k\n.bogus 1\n"},
		{"bad setp form", ".kernel k\n\tsetp.lt p0, r0, r1\n"},
		{"imm out of range", ".kernel k\n\tmov r0, 0x1FFFFFFFF\n"},
		{"bad address", ".kernel k\n\tld.global r0, [bogus]\n"},
		{"guard without instr", ".kernel k\n\t@p0\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestErrorReportsLine(t *testing.T) {
	_, err := Assemble(".kernel k\n\tmov r0, 1\n\tbogus r0\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should cite line 3: %v", err)
	}
	if e, ok := err.(*Error); ok {
		ae = e
	}
	if ae == nil || ae.Line != 3 {
		t.Errorf("typed error line = %+v", ae)
	}
}

// TestRoundTrip assembles a program, disassembles it, reassembles the
// disassembly, and requires identical instruction encodings — the
// assembler and disassembler must be inverse views.
func TestRoundTrip(t *testing.T) {
	src := `
.kernel roundtrip
	mov  r0, %tid.x
	iadd r1, r0, 42
	setp.lt.s32 p0, r1, 100
	@p0 iadd r1, r1, 1
	ld.global r2, [r1+8]
	st.shared [r0], r2
	atom.add.global r3, [r1], r2
	fadd r4, r2, 0.5
	selp r5, r1, r2, p0
	pand p1, p0, p0
	bar.sync
	exit
`
	p1 := mustAsm(t, src)
	p2 := mustAsm(t, p1.Disassemble())
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instr counts differ: %d vs %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		a, b := p1.Instrs[i], p2.Instrs[i]
		a.Line, b.Line = 0, 0
		if a.Op == isa.OpBRA {
			continue // disassembly prints raw PCs, not labels
		}
		if a != b {
			t.Errorf("instr %d: %v != %v", i, a, b)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("not a program")
}

func TestLabelOnSameLine(t *testing.T) {
	p := mustAsm(t, ".kernel k\nL: mov r0, 1\n\tbra L\n")
	if p.Labels["L"] != 0 {
		t.Errorf("label L = %d, want 0", p.Labels["L"])
	}
}

func TestSharedDirective(t *testing.T) {
	p := mustAsm(t, ".kernel k\n.shared 2048\n\tmov r0, 1\n\texit\n")
	if p.SharedBytes != 2048 {
		t.Errorf("SharedBytes = %d, want 2048", p.SharedBytes)
	}
	if _, err := Assemble(".kernel k\n.shared -1\n\texit\n"); err == nil {
		t.Error("negative .shared accepted")
	}
}

func TestBlockDirective(t *testing.T) {
	p := mustAsm(t, ".kernel k\n.block 16 16\n\tmov r0, 1\n\texit\n")
	if p.BlockDimX != 16 || p.BlockDimY != 16 {
		t.Errorf("BlockDim = %dx%d, want 16x16", p.BlockDimX, p.BlockDimY)
	}
	p = mustAsm(t, ".kernel k\n.block 256\n\texit\n")
	if p.BlockDimX != 256 || p.BlockDimY != 1 {
		t.Errorf("BlockDim = %dx%d, want 256x1", p.BlockDimX, p.BlockDimY)
	}
	if !strings.Contains(p.Disassemble(), ".block 256 1") {
		t.Errorf("disassembly lost the .block declaration:\n%s", p.Disassemble())
	}
	for _, bad := range []string{".block", ".block 0", ".block x", ".block 4 0", ".block 4 4 4"} {
		if _, err := Assemble(".kernel k\n" + bad + "\n\texit\n"); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestAssembleModule(t *testing.T) {
	mod, err := AssembleModule(`
; two kernels in one file
.kernel first
TOP:
	iadd r0, r0, 1
	setp.lt.s32 p0, r0, 4
	@p0 bra TOP
	exit

.kernel second
.shared 64
	mov r1, 7
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod) != 2 {
		t.Fatalf("got %d kernels", len(mod))
	}
	if mod["first"] == nil || mod["second"] == nil {
		t.Fatal("kernel names wrong")
	}
	if mod["first"].Labels["TOP"] != 0 {
		t.Error("labels not scoped per kernel")
	}
	if mod["second"].SharedBytes != 64 {
		t.Error(".shared not scoped per kernel")
	}
}

func TestAssembleModuleErrors(t *testing.T) {
	if _, err := AssembleModule(""); err == nil {
		t.Error("empty module accepted")
	}
	if _, err := AssembleModule(".kernel a\n\texit\n.kernel a\n\texit\n"); err == nil {
		t.Error("duplicate kernel name accepted")
	}
	// Error lines must be module-relative.
	_, err := AssembleModule(".kernel a\n\texit\n.kernel b\n\tbogus r0\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("module error line wrong: %v", err)
	}
}

func TestAssembleVerifiedClean(t *testing.T) {
	p, err := AssembleVerified(`
.kernel ok
.reg 2
mov r0, %tid.x
shl r0, r0, 2
ld.param r1, [0]
iadd r1, r1, r0
exit
`)
	if err != nil {
		t.Fatalf("AssembleVerified: %v", err)
	}
	if p == nil || p.Name != "ok" {
		t.Fatalf("program = %+v", p)
	}
}

func TestAssembleVerifiedFindings(t *testing.T) {
	// r1 is read before any write: the verifier must reject the kernel
	// even though it assembles.
	p, err := AssembleVerified(`
.kernel bad
.reg 4
iadd r0, r1, 1
exit
`)
	if err == nil {
		t.Fatal("want verification error")
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error type = %T: %v", err, err)
	}
	if ve.Kernel != "bad" || ve.Findings.Errors() == 0 {
		t.Fatalf("VerifyError = %+v", ve)
	}
	if !strings.Contains(err.Error(), "use-before-def") {
		t.Errorf("error text %q lacks the rule tag", err)
	}
	if p == nil {
		t.Error("program should still be returned alongside findings")
	}
}

func TestAssembleVerifiedSyntaxError(t *testing.T) {
	if _, err := AssembleVerified("bogus r0"); err == nil {
		t.Fatal("want assembly error")
	} else if _, ok := err.(*VerifyError); ok {
		t.Fatal("syntax errors must not be wrapped as VerifyError")
	}
}

func TestAssembleModuleLineRebase(t *testing.T) {
	// Instruction lines must be module-absolute, not section-relative,
	// so verifier findings on later kernels point at the right lines.
	mod, err := AssembleModule(".kernel a\n\texit\n.kernel b\n\tmov r0, 1\n\texit\n")
	if err != nil {
		t.Fatal(err)
	}
	b := mod["b"]
	if b == nil || len(b.Instrs) < 1 {
		t.Fatalf("module = %+v", mod)
	}
	if got := b.Instrs[0].Line; got != 4 {
		t.Errorf("b's mov is at module line %d, want 4", got)
	}
}
