package lint

import (
	"go/ast"
	"go/types"
)

// layout32 is a deliberately conservative 32-bit (GOARCH=386-like)
// layout model: word size 4, and — unlike go/types.SizesFor — NO
// special case for sync/atomic's align64 marker. The compiler rescues
// atomic.Int64 fields with hidden padding; this rule demands the
// alignment be structural instead, so the layout stays identical on
// every target, plain-int64 atomic idioms stay safe, and no padding is
// wasted. Offsets assume the struct itself starts 8-aligned (the
// allocator guarantees that for any allocation this large).
type layout32 struct{}

func (l layout32) sizeAlign(t types.Type) (size, align int64) {
	switch t := t.Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Bool, types.Int8, types.Uint8:
			return 1, 1
		case types.Int16, types.Uint16:
			return 2, 2
		case types.Int64, types.Uint64, types.Float64, types.Complex64:
			return 8, 4
		case types.Complex128:
			return 16, 4
		case types.String:
			return 8, 4
		default: // Int, Uint, Int32, Uint32, Uintptr, Float32, UnsafePointer
			return 4, 4
		}
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return 4, 4
	case *types.Slice:
		return 12, 4
	case *types.Interface:
		return 8, 4
	case *types.Array:
		es, ea := l.sizeAlign(t.Elem())
		return roundUp(es, ea) * t.Len(), ea
	case *types.Struct:
		var off, maxAlign int64 = 0, 1
		for i := 0; i < t.NumFields(); i++ {
			fs, fa := l.sizeAlign(t.Field(i).Type())
			if fa > maxAlign {
				maxAlign = fa
			}
			off = roundUp(off, fa) + fs
		}
		return roundUp(off, maxAlign), maxAlign
	default:
		return 4, 4
	}
}

func roundUp(v, align int64) int64 {
	if align <= 1 {
		return v
	}
	return (v + align - 1) / align * align
}

// isAtomic64 reports whether t is sync/atomic.Int64 or Uint64.
func isAtomic64(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		(obj.Name() == "Int64" || obj.Name() == "Uint64")
}

// atomicLeaves walks a struct's fields recursively and calls report for
// every 64-bit atomic at a non-8-aligned offset under layout32.
func (c *checkCtx) atomicLeaves(st *types.Struct, base int64, l layout32,
	seen map[*types.Struct]bool, report func(field *types.Var, off int64)) {
	if seen[st] {
		return
	}
	seen[st] = true
	var off int64
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fs, fa := l.sizeAlign(f.Type())
		off = roundUp(off, fa)
		abs := base + off
		if isAtomic64(f.Type()) {
			if abs%8 != 0 {
				report(f, abs)
			}
		} else if inner, ok := f.Type().Underlying().(*types.Struct); ok {
			c.atomicLeaves(inner, abs, l, seen, report)
		}
		off += fs
	}
}

// checkAtomicAlignment flags struct fields of type atomic.Int64/Uint64
// whose offset is not a multiple of 8 under the 32-bit layout model.
// The metrics registry's counters are the motivating case: they are
// bumped from every SM worker concurrently, and the structural
// first/8-aligned convention keeps them torn-read-proof on every
// target without relying on compiler-inserted padding.
func checkAtomicAlignment(c *checkCtx) {
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := c.pkg.Info.Defs[ts.Name]
			if !ok || obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			c.atomicLeaves(st, 0, layout32{}, map[*types.Struct]bool{},
				func(field *types.Var, off int64) {
					pos := field.Pos()
					if field.Pkg() != c.pkg.Pkg {
						pos = ts.Pos() // nested field from another package: anchor at the outer decl
					}
					c.addf(pos, RuleAtomicAlign,
						"64-bit atomic %s sits at offset %d of %s on 32-bit targets; move it to the front (or pad) so its offset is a multiple of 8",
						field.Name(), off, ts.Name.Name)
				})
			return true
		})
	}
}
