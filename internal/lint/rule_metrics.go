package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// registryMethods are the per-call instrument-resolution entry points.
// Each takes the registry mutex and hashes a name; inside the issue or
// memory loop that cost dwarfs the instrument update itself. Hot-path
// packages must hold pre-resolved instruments (the metrics.For* sets)
// resolved once at construction time.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

// checkNilMetrics flags calls to Registry.Counter/Gauge/Histogram from
// the deterministic and ctx-checked (hot-path) packages.
func checkNilMetrics(c *checkCtx) {
	if !c.deterministic && !c.ctxChecked {
		return
	}
	banned := make(map[string]bool, len(c.cfg.RegistryTypes))
	for _, t := range c.cfg.RegistryTypes {
		banned[t] = true
	}
	info := c.pkg.Info
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				return true
			}
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if banned[full] {
				short := full[strings.LastIndex(full, "/")+1:]
				c.addf(call.Pos(), RuleNilMetrics,
					"%s.%s resolves an instrument by name on the hot path; resolve once via a pre-built metrics.For* set and store the instrument",
					short, sel.Sel.Name)
			}
			return true
		})
	}
}
