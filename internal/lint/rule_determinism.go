package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isCollectAppend reports whether a range body is exactly one
// `xs = append(xs, ...)` statement — the collect-then-sort idiom.
func isCollectAppend(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	as, ok := body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && first.Name == lhs.Name
}

// bannedTimeFuncs are the wall-clock entry points of package time. Any
// of them inside a deterministic package makes output depend on the
// machine, the load, or the scheduler — exactly what pre-drawn seeded
// faults and byte-identical parallel campaigns forbid.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
}

// allowedRandFuncs are the math/rand package-level functions that do
// NOT touch the global (unseeded) source: explicit-source constructors.
// Everything else at package level draws from the global source, whose
// sequence is shared process-wide and (since Go 1.20) seeded randomly.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// checkDeterminism flags wall-clock reads, global-source math/rand
// draws, and map iteration in the deterministic packages. Map-range
// order is randomized by the runtime; any snapshot, trace, or report
// loop over a map must collect into a slice and sort instead. The one
// carved-out shape is exactly that idiom's first half: a range whose
// entire body is a single `xs = append(xs, ...)` — order-independent
// once the collected slice is sorted (which a reviewer can check
// locally; the lint cannot).
func checkDeterminism(c *checkCtx) {
	if !c.deterministic {
		return
	}
	info := c.pkg.Info
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if bannedTimeFuncs[sel.Sel.Name] {
						c.addf(n.Pos(), RuleDeterminism,
							"time.%s reads the wall clock; deterministic packages must derive every value from seeds and cycle counts",
							sel.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if !allowedRandFuncs[sel.Sel.Name] {
						c.addf(n.Pos(), RuleDeterminism,
							"rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) so runs replay bit-identically",
							sel.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !isCollectAppend(n.Body) {
						c.addf(n.Pos(), RuleDeterminism,
							"map iteration order is randomized; collect into a slice and sort, so output cannot depend on it (%s)",
							types.TypeString(t, types.RelativeTo(c.pkg.Pkg)))
					}
				}
			}
			return true
		})
	}
}
