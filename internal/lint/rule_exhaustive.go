package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// enumType reports whether t is a module-defined enum: a named type
// with an integer underlying kind and at least two package-level
// constants of exactly that type declared alongside it.
func (c *checkCtx) enumType(t types.Type) (*types.Named, []*types.Const) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil, nil
	}
	path := obj.Pkg().Path()
	if path != c.mod.Path && !strings.HasPrefix(path, c.mod.Path+"/") {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, nil
	}
	var members []*types.Const
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() { // Names() is sorted
		if cn, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(cn.Type(), named) {
			members = append(members, cn)
		}
	}
	if len(members) < 2 {
		return nil, nil
	}
	return named, members
}

// loudDefault reports whether a default clause is explicit about
// meeting an unexpected member: it panics, makes any call that yields
// an error (fmt.Errorf, errors.New, a local errf-style helper), or
// renders a diagnostic string (fmt.Sprintf, the String() fallback
// idiom). A default that merely routes unknown values down some
// existing path re-introduces the silent-misprediction hazard the rule
// exists to close.
func (c *checkCtx) loudDefault(body []ast.Stmt) bool {
	errType := types.Universe.Lookup("error").Type()
	loud := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if t := c.pkg.Info.TypeOf(call); t != nil && types.Identical(t, errType) {
				loud = true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if _, isBuiltin := c.pkg.Info.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "panic" {
					loud = true
				}
			case *ast.SelectorExpr:
				id, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := c.pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() + "." + fun.Sel.Name {
				case "fmt.Errorf", "errors.New", "fmt.Sprintf":
					loud = true
				}
			}
			return true
		})
	}
	return loud
}

// checkExhaustiveSwitches enforces that switches over module-defined
// enums either cover every member or carry a loud default. A switch
// with any non-constant case expression is skipped: coverage cannot be
// reasoned about statically.
func checkExhaustiveSwitches(c *checkCtx) {
	info := c.pkg.Info
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			named, members := c.enumType(tagType)
			if named == nil {
				return true
			}

			covered := make(map[int64]bool)
			var defaultClause *ast.CaseClause
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					defaultClause = cc
					continue
				}
				for _, e := range cc.List {
					tv, ok := info.Types[e]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
						return true // non-constant case: not statically checkable
					}
					v, ok := constant.Int64Val(tv.Value)
					if !ok {
						return true
					}
					covered[v] = true
				}
			}

			var missing []string
			for _, m := range members {
				v, ok := constant.Int64Val(m.Val())
				if ok && !covered[v] {
					missing = append(missing, m.Name())
				}
			}
			sort.Strings(missing)
			if len(missing) == 0 {
				return true
			}
			name := types.TypeString(named, types.RelativeTo(c.pkg.Pkg))
			switch {
			case defaultClause == nil:
				c.addf(sw.Pos(), RuleExhaustive,
					"switch on %s misses %s and has no default; a new member would silently fall through",
					name, strings.Join(missing, ", "))
			case len(defaultClause.Body) == 0:
				c.addf(sw.Pos(), RuleExhaustive,
					"switch on %s misses %s and its default is empty; unknown members are silently ignored",
					name, strings.Join(missing, ", "))
			case !c.loudDefault(defaultClause.Body):
				c.addf(sw.Pos(), RuleExhaustive,
					"switch on %s misses %s; the default silently classifies them — cover the members, or panic/construct an error in the default",
					name, strings.Join(missing, ", "))
			}
			return true
		})
	}
}
