package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// collectMarkers walks a fixture module and returns the expected
// finding set from //lintwant trailing comments: "file:line:rule",
// with file module-root-relative.
func collectMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, found := strings.Cut(line, "//lintwant ")
			if !found {
				continue
			}
			rule := strings.Fields(after)[0]
			want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), i+1, rule)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting markers: %v", err)
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no //lintwant markers", dir)
	}
	return want
}

// TestFixtures runs the engine over each seeded fixture module and
// compares findings against the //lintwant markers, one per rule.
func TestFixtures(t *testing.T) {
	for _, fx := range []string{"determinism", "exhaustive", "atomic", "nilmetrics", "ctxloop"} {
		t.Run(fx, func(t *testing.T) {
			dir := filepath.Join("testdata", fx)
			got, err := Run(Config{Dir: dir})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			gotSet := make(map[string]bool)
			for _, f := range got {
				gotSet[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)] = true
			}
			want := collectMarkers(t, dir)
			for k := range want {
				if !gotSet[k] {
					t.Errorf("missing expected finding %s", k)
				}
			}
			for _, f := range got {
				k := fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)
				if !want[k] {
					t.Errorf("unexpected finding %s: %s", k, f.Msg)
				}
			}
		})
	}
}

// TestCleanFixture checks a violation-free module yields no findings.
func TestCleanFixture(t *testing.T) {
	got, err := Run(Config{Dir: filepath.Join("testdata", "clean")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("want no findings, got %d:\n%s", len(got), textOf(got))
	}
}

// TestSelfRun lints the real module: the tree must stay clean, with
// every remaining suppression carrying a written reason (enforced by
// the suppression rule itself).
func TestSelfRun(t *testing.T) {
	got, err := Run(Config{Dir: filepath.Join("..", "..")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("the module has %d simlint finding(s):\n%s", len(got), textOf(got))
	}
}

// TestFindingsSorted checks Run's output ordering is total.
func TestFindingsSorted(t *testing.T) {
	got, err := Run(Config{Dir: filepath.Join("testdata", "determinism")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	}) {
		t.Fatalf("findings not sorted:\n%s", textOf(got))
	}
}

// TestWriteJSONL checks the machine-readable schema: one JSON object
// per line with exactly the documented keys, parseable by
// tools/docscheck -jsonl.
func TestWriteJSONL(t *testing.T) {
	got, err := Run(Config{Dir: filepath.Join("testdata", "determinism")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("fixture produced no findings to serialize")
	}
	var buf bytes.Buffer
	if err := got.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not a JSON object: %v", n+1, err)
		}
		for _, key := range []string{"file", "line", "col", "package", "rule", "message"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line %d missing key %q", n+1, key)
			}
		}
		if len(obj) != 6 {
			t.Errorf("line %d has %d keys, want 6", n+1, len(obj))
		}
		n++
	}
	if n != len(got) {
		t.Fatalf("wrote %d lines for %d findings", n, len(got))
	}
}

func textOf(fs Findings) string {
	var buf bytes.Buffer
	_ = fs.WriteText(&buf)
	return buf.String()
}
