package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path ("warped/internal/sim")
	Dir   string // absolute directory
	Rel   string // module-root-relative directory ("" for the root package)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// module is the fully loaded and type-checked module.
type module struct {
	Root   string // absolute module root (directory of go.mod)
	Path   string // module path from go.mod
	Fset   *token.FileSet
	Pkgs   []*Package // dependency (topological) order
	byPath map[string]*Package
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
		// Refuse to silently walk up from a typo'd -C path into some
		// enclosing module.
		return "", "", fmt.Errorf("lint: %s is not a directory", dir)
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleLineRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
			}
			return d, string(m[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// discoverDirs returns every package directory of the module, skipping
// testdata, vendor, hidden/underscore directories, and nested modules.
func discoverDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

var buildIgnoreRE = regexp.MustCompile(`(?m)^//go:build .*\bignore\b`)

// parseDir parses the non-test Go files of one directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		path := filepath.Join(dir, n)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if buildIgnoreRE.Match(src) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleImporter resolves module-internal imports from the loader's
// cache (packages are type-checked in dependency order, so every
// internal import is already resolved) and everything else through the
// toolchain's export data.
type moduleImporter struct {
	m   *module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		if p, ok := mi.m.byPath[path]; ok && p.Pkg != nil {
			return p.Pkg, nil
		}
		return nil, fmt.Errorf("lint: internal import %q not yet loaded (import cycle?)", path)
	}
	return mi.std.Import(path)
}

// loadModule parses and type-checks every package of the module that
// contains dir. The entire module is always loaded — rules need type
// information for dependencies even when only a subset of packages is
// being linted.
func loadModule(dir string) (*module, error) {
	root, modPath, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	m := &module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	dirs, err := discoverDirs(root)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		files, err := parseDir(m.Fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		} else {
			rel = ""
		}
		m.byPath[path] = &Package{Path: path, Dir: d, Rel: rel, Files: files}
	}

	order, err := m.topoSort()
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{m: m, std: importer.ForCompiler(m.Fset, "gc", nil)}
	for _, p := range order {
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if len(typeErrs) < 10 {
					typeErrs = append(typeErrs, err.Error())
				}
			},
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		pkg, _ := conf.Check(p.Path, m.Fset, p.Files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: %s does not type-check:\n  %s",
				p.Path, strings.Join(typeErrs, "\n  "))
		}
		p.Pkg = pkg
		p.Info = info
		m.Pkgs = append(m.Pkgs, p)
	}
	return m, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func (m *module) topoSort() ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		p, ok := m.byPath[path]
		if !ok {
			return nil // external or missing; the type checker will say so
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), path)
		}
		state[path] = visiting
		deps := make(map[string]bool)
		for _, f := range p.Files {
			for _, im := range f.Imports {
				ip := strings.Trim(im.Path.Value, `"`)
				if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
					deps[ip] = true
				}
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		for _, d := range sorted {
			if err := visit(d, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// relFile converts an absolute file position to a module-root-relative
// path with forward slashes, the stable form used in findings.
func (m *module) relFile(file string) string {
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}
