package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressions runs the suppress fixture: two well-formed
// directives silence their map-range findings, while the missing
// reason, unknown rule, malformed, and unused directives each produce
// a suppression finding — and the findings they failed to cover
// survive.
func TestSuppressions(t *testing.T) {
	got, err := Run(Config{Dir: filepath.Join("testdata", "suppress")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var nDet, nSup int
	for _, f := range got {
		switch f.Rule {
		case RuleDeterminism:
			nDet++
		case RuleSuppression:
			nSup++
		default:
			t.Errorf("unexpected rule %s: %s", f.Rule, f)
		}
	}
	if nDet != 3 || nSup != 4 {
		t.Fatalf("want 3 determinism + 4 suppression findings, got %d + %d:\n%s",
			nDet, nSup, textOf(got))
	}

	for _, fragment := range []string{
		"missing its reason",
		"unknown rule",
		"malformed simlint:ignore",
		"suppresses nothing",
	} {
		found := false
		for _, f := range got {
			if f.Rule == RuleSuppression && strings.Contains(f.Msg, fragment) {
				found = true
			}
		}
		if !found {
			t.Errorf("no suppression finding mentioning %q:\n%s", fragment, textOf(got))
		}
	}

	// The two well-formed directives (SumDash, SumASCII) must silence
	// their loops: no finding may appear before the NoReason block.
	for _, f := range got {
		if f.Line < 26 {
			t.Errorf("finding inside a suppressed region: %s", f)
		}
	}
}

// TestSuppressionNotSuppressible checks directive problems cannot be
// silenced by another directive: "suppression" is not a known rule.
func TestSuppressionNotSuppressible(t *testing.T) {
	if knownRules[RuleSuppression] {
		t.Fatal("the suppression rule must not be directive-suppressible")
	}
}
