package lint

import (
	"go/ast"
	"go/types"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// unboundedLoop reports whether a for statement can spin indefinitely:
// no condition at all, or a while-style loop (condition but neither
// init nor post). A three-clause counted loop is bounded by
// construction and exempt even when long.
func unboundedLoop(fs *ast.ForStmt) bool {
	return fs.Cond == nil || (fs.Init == nil && fs.Post == nil)
}

// checkCtxLoops enforces that, in the ctx-checked packages, every
// outermost unbounded loop of a function that receives a context
// mentions one of its context values somewhere in the body — a
// ctx.Err()/ctx.Done() poll, or a call that forwards ctx and can fail.
// A long campaign must die promptly when its context is cancelled; a
// worker loop that never looks at ctx strands the whole Runner on
// shutdown. Functions without a context in scope are skipped: they
// have nothing to consult.
func checkCtxLoops(c *checkCtx) {
	if !c.ctxChecked {
		return
	}
	info := c.pkg.Info
	for _, f := range c.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxObjs := contextObjects(fd, info)
			if len(ctxObjs) == 0 {
				continue
			}
			var walk func(n ast.Node, inLoop bool)
			walk = func(n ast.Node, inLoop bool) {
				ast.Inspect(n, func(m ast.Node) bool {
					fs, ok := m.(*ast.ForStmt)
					if !ok || !unboundedLoop(fs) {
						return true
					}
					if !inLoop && !usesAny(fs.Body, info, ctxObjs) {
						c.addf(fs.Pos(), RuleCtxLoop,
							"unbounded loop never consults its context; poll ctx.Err() (or select on ctx.Done()) so cancellation can stop it")
					}
					// Nested unbounded loops are covered by their outermost
					// ancestor; walk the body with inLoop set and stop this
					// Inspect from descending twice.
					walk(fs.Body, true)
					return false
				})
			}
			walk(fd.Body, false)
		}
	}
}

// contextObjects collects every context.Context-typed object declared
// in fn: parameters and locals (including ones bound inside the body).
func contextObjects(fd *ast.FuncDecl, info *types.Info) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Defs[id]; obj != nil && isContextType(obj.Type()) {
			objs[obj] = true
		}
		return true
	})
	return objs
}

// usesAny reports whether body references any of the given objects.
func usesAny(body ast.Node, info *types.Info, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
