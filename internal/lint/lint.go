// Package lint is simlint: a stdlib-only static-analysis pass over the
// simulator's own Go source. The reproduction's headline figures hold
// only because every campaign is bit-reproducible and every instruction
// is classified exhaustively; those invariants used to live in golden
// tests and reviewers' heads. simlint makes them machine-checked, the
// same way internal/verify machine-checks kernel programs.
//
// Rules (ids are stable; docs/STATIC_ANALYSIS.md is the contract):
//
//	determinism       no wall-clock time, no package-level math/rand,
//	                  and no map iteration inside the deterministic
//	                  packages (tests exempt)
//	exhaustive-switch every switch over a module-defined enum covers
//	                  all members, or carries a default that panics or
//	                  constructs an error/diagnostic — adding an
//	                  opcode must fail CI, not mispredict a unit
//	atomic-align      64-bit atomics in structs sit at 8-byte-aligned
//	                  offsets under a 32-bit layout (without relying on
//	                  the compiler's align64 rescue)
//	nil-metrics       hot-path packages resolve instruments through
//	                  the pre-resolved metrics.For* sets, never via
//	                  per-call Registry lookups
//	ctx-loop          unbounded loops in cancellation-aware packages
//	                  consult their context
//	suppression       simlint:ignore directives are well-formed,
//	                  carry a reason, and suppress something
//
// Findings can be silenced per line with a justified directive on the
// same line or the line above:
//
//	//simlint:ignore <rule>[,<rule>...] — <reason>
//
// The reason is mandatory; "--" is accepted in place of the em dash.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is one positioned diagnostic.
type Finding struct {
	File string `json:"file"` // module-root-relative path
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Pkg  string `json:"package"` // import path
	Rule string `json:"rule"`
	Msg  string `json:"message"`
}

// String renders the stable greppable text form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
}

// Findings is a sorted list of diagnostics.
type Findings []Finding

// WriteText writes one finding per line in the text form.
func (fs Findings) WriteText(w io.Writer) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per finding, in finding order, the
// schema tools/docscheck -jsonl validates in CI.
func (fs Findings) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}

// Rule identifiers.
const (
	RuleDeterminism = "determinism"
	RuleExhaustive  = "exhaustive-switch"
	RuleAtomicAlign = "atomic-align"
	RuleNilMetrics  = "nil-metrics"
	RuleCtxLoop     = "ctx-loop"
	RuleSuppression = "suppression"
)

// knownRules is the set a simlint:ignore directive may name. The
// suppression rule itself is deliberately absent: directive problems
// cannot be suppressed.
var knownRules = map[string]bool{
	RuleDeterminism: true,
	RuleExhaustive:  true,
	RuleAtomicAlign: true,
	RuleNilMetrics:  true,
	RuleCtxLoop:     true,
}

// Config selects what to lint and which packages carry the scoped
// rules. Zero-value fields are filled with the Warped-DMR defaults
// derived from the loaded module's path.
type Config struct {
	// Dir is any directory inside the module (the loader walks up to
	// go.mod). Empty means ".".
	Dir string

	// Patterns selects the packages rules run on: "./..." (everything),
	// "dir/..." (a subtree), or "dir" (one package), all relative to the
	// module root. Empty means "./...". The whole module is always
	// loaded and type-checked regardless; patterns scope findings only.
	Patterns []string

	// Deterministic lists import paths (exact, or "prefix/..." subtrees)
	// under the determinism rule. Nil selects the simulator's
	// deterministic core — internal/{sim,core,exec,simt,isa,mem,fault,
	// experiments} — the durable result store internal/store, plus the
	// CI-artifact producers tools/simlint and tools/docscheck, whose
	// outputs must be bit-reproducible across runs for artifact diffing
	// to mean anything.
	Deterministic []string

	// CtxChecked lists import paths under the ctx-loop rule. Nil selects
	// internal/{cluster,runner,service,sim,store} and
	// tools/servicesmoke (which polls a live daemon and must stay
	// interruptible).
	CtxChecked []string

	// RegistryTypes lists fully-qualified type names ("path.Name") whose
	// per-call instrument-resolution methods are banned in Deterministic
	// and CtxChecked packages. Nil selects internal/metrics.Registry.
	RegistryTypes []string
}

func (c Config) withDefaults(modPath string) Config {
	if c.Dir == "" {
		c.Dir = "."
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.Deterministic == nil {
		// internal/store is in here too: the durable result tier keys
		// GC on a logical clock, never the wall clock, so a store
		// directory replays identically.
		for _, p := range []string{"sim", "core", "exec", "simt", "isa", "mem", "fault", "experiments", "store"} {
			c.Deterministic = append(c.Deterministic, modPath+"/internal/"+p)
		}
		for _, p := range []string{"simlint", "docscheck"} {
			c.Deterministic = append(c.Deterministic, modPath+"/tools/"+p)
		}
	}
	if c.CtxChecked == nil {
		c.CtxChecked = []string{
			modPath + "/internal/cluster",
			modPath + "/internal/runner",
			modPath + "/internal/service",
			modPath + "/internal/sim",
			modPath + "/internal/store",
			modPath + "/tools/servicesmoke",
		}
	}
	if c.RegistryTypes == nil {
		c.RegistryTypes = []string{modPath + "/internal/metrics.Registry"}
	}
	return c
}

// matchList reports whether path matches any entry: exact, or a
// "prefix/..." subtree pattern ("..." alone matches everything).
func matchList(list []string, path string) bool {
	for _, e := range list {
		if e == path || e == "..." {
			return true
		}
		if p, ok := strings.CutSuffix(e, "/..."); ok {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
	}
	return false
}

// matchPattern reports whether the package (by root-relative dir) is
// selected by a CLI-style pattern.
func matchPattern(patterns []string, rel string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." {
			return true
		}
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
			continue
		}
		if pat == "." && rel == "" {
			return true
		}
		if rel == strings.TrimSuffix(pat, "/") {
			return true
		}
	}
	return false
}

// checkCtx is the per-package state handed to each rule.
type checkCtx struct {
	cfg *Config
	mod *module
	pkg *Package

	deterministic bool // pkg is under the determinism rule
	ctxChecked    bool // pkg is under the ctx-loop rule

	findings *Findings
}

func (c *checkCtx) addf(pos token.Pos, rule, format string, args ...any) {
	p := c.mod.Fset.Position(pos)
	*c.findings = append(*c.findings, Finding{
		File: c.mod.relFile(p.Filename),
		Line: p.Line,
		Col:  p.Column,
		Pkg:  c.pkg.Path,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run loads the module containing cfg.Dir, type-checks it, and returns
// every unsuppressed finding in the pattern-selected packages, sorted
// by file, line, column, then rule. A non-nil error means the module
// could not be analyzed at all (parse or type errors), not that
// findings exist.
func Run(cfg Config) (Findings, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	mod, err := loadModule(cfg.Dir)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(mod.Path)

	var raw Findings
	for _, pkg := range mod.Pkgs {
		if !matchPattern(cfg.Patterns, pkg.Rel) {
			continue
		}
		c := &checkCtx{
			cfg:           &cfg,
			mod:           mod,
			pkg:           pkg,
			deterministic: matchList(cfg.Deterministic, pkg.Path),
			ctxChecked:    matchList(cfg.CtxChecked, pkg.Path),
			findings:      &raw,
		}
		checkDeterminism(c)
		checkExhaustiveSwitches(c)
		checkAtomicAlignment(c)
		checkNilMetrics(c)
		checkCtxLoops(c)
	}

	out := applySuppressions(mod, cfg.Patterns, raw)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out, nil
}
