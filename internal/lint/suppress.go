package lint

import (
	"strings"
)

// directive is one parsed simlint:ignore comment.
type directive struct {
	file   string // module-root-relative
	line   int
	rules  []string
	reason string
	used   bool
	pkg    string
}

// parseDirectives extracts every simlint:ignore comment of the
// pattern-selected packages, returning well-formed directives plus one
// suppression finding per malformed one. The accepted form is
//
//	//simlint:ignore rule[,rule...] — reason
//
// with "--" accepted for the em dash.
func parseDirectives(mod *module, patterns []string) ([]*directive, Findings) {
	var dirs []*directive
	var bad Findings
	for _, pkg := range mod.Pkgs {
		if !matchPattern(patterns, pkg.Rel) {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // block comments are not directives
					}
					payload, ok := strings.CutPrefix(strings.TrimPrefix(text, " "), "simlint:ignore")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					addBad := func(msg string) {
						bad = append(bad, Finding{
							File: mod.relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
							Pkg: pkg.Path, Rule: RuleSuppression, Msg: msg,
						})
					}
					rulesPart, reason, found := cutAny(payload, "—", "--")
					if !found {
						addBad(`malformed simlint:ignore: want "//simlint:ignore <rule> — <reason>"`)
						continue
					}
					reason = strings.TrimSpace(reason)
					if reason == "" {
						addBad("simlint:ignore is missing its reason; every suppression must say why")
						continue
					}
					var rules []string
					okRules := true
					for _, r := range strings.Split(rulesPart, ",") {
						r = strings.TrimSpace(r)
						if r == "" {
							addBad("simlint:ignore names no rule")
							okRules = false
							break
						}
						if !knownRules[r] {
							addBad("simlint:ignore names unknown rule " + quoted(r))
							okRules = false
							break
						}
						rules = append(rules, r)
					}
					if !okRules {
						continue
					}
					dirs = append(dirs, &directive{
						file: mod.relFile(pos.Filename), line: pos.Line,
						rules: rules, reason: reason, pkg: pkg.Path,
					})
				}
			}
		}
	}
	return dirs, bad
}

func quoted(s string) string { return `"` + s + `"` }

// cutAny splits s at the first occurrence of any separator.
func cutAny(s string, seps ...string) (before, after string, found bool) {
	best := -1
	width := 0
	for _, sep := range seps {
		if i := strings.Index(s, sep); i >= 0 && (best < 0 || i < best) {
			best, width = i, len(sep)
		}
	}
	if best < 0 {
		return s, "", false
	}
	return s[:best], s[best+width:], true
}

// applySuppressions removes findings covered by a directive on the same
// line or the line above, then reports malformed and unused directives
// as suppression findings.
func applySuppressions(mod *module, patterns []string, raw Findings) Findings {
	dirs, bad := parseDirectives(mod, patterns)
	byFile := make(map[string][]*directive)
	for _, d := range dirs {
		byFile[d.file] = append(byFile[d.file], d)
	}

	var out Findings
	for _, f := range raw {
		suppressed := false
		for _, d := range byFile[f.File] {
			if d.line != f.Line && d.line != f.Line-1 {
				continue
			}
			for _, r := range d.rules {
				if r == f.Rule {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		if !d.used {
			out = append(out, Finding{
				File: d.file, Line: d.line, Col: 1, Pkg: d.pkg, Rule: RuleSuppression,
				Msg: "simlint:ignore " + strings.Join(d.rules, ",") +
					" suppresses nothing on this or the next line; delete it",
			})
		}
	}
	return append(out, bad...)
}
