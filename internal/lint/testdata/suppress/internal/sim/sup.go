// Package sim exercises every simlint:ignore outcome; the expected
// finding set lives in suppress_test.go, keyed by line number — keep
// the layout stable.
package sim

// SumDash is suppressed with an em dash.
func SumDash(m map[string]int) int {
	total := 0
	//simlint:ignore determinism — order-independent summation over values
	for _, v := range m {
		total += v
	}
	return total
}

// SumASCII is suppressed with the ASCII separator.
func SumASCII(m map[string]int) int {
	total := 0
	//simlint:ignore determinism -- order-independent summation over values
	for _, v := range m {
		total += v
	}
	return total
}

// NoReason's directive is rejected, so the finding survives.
func NoReason(m map[string]int) int {
	total := 0
	//simlint:ignore determinism —
	for _, v := range m {
		total += v
	}
	return total
}

// UnknownRule's directive names a rule that does not exist.
func UnknownRule(m map[string]int) int {
	total := 0
	//simlint:ignore detreminism — typo in the rule name
	for _, v := range m {
		total += v
	}
	return total
}

// Malformed's directive has no separator at all.
func Malformed(m map[string]int) int {
	total := 0
	//simlint:ignore determinism because reasons
	for _, v := range m {
		total += v
	}
	return total
}

// Unused directive: nothing to suppress on this or the next line.
//simlint:ignore determinism — stale after a refactor
func Unused() int {
	return 0
}
