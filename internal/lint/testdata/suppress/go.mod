module fixturesup

go 1.21
