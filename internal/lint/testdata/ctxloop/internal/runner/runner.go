// Package runner seeds unbounded loops with and without context
// polling.
package runner

import "context"

// Spin never consults ctx: cancellation cannot stop it.
func Spin(ctx context.Context, work chan int) int {
	n := 0
	for { //lintwant ctx-loop
		v, ok := <-work
		if !ok {
			return n
		}
		n += v
	}
}

// Polite polls ctx each iteration: allowed.
func Polite(ctx context.Context, work chan int) int {
	n := 0
	for {
		if ctx.Err() != nil {
			return n
		}
		v, ok := <-work
		if !ok {
			return n
		}
		n += v
	}
}

// Bounded is a three-clause counted loop: exempt by construction.
func Bounded(ctx context.Context, xs []int) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		n += xs[i]
	}
	return n
}

// NoCtx has no context in scope: nothing to consult, exempt.
func NoCtx(work chan int) int {
	n := 0
	for {
		v, ok := <-work
		if !ok {
			return n
		}
		n += v
	}
}
