module fixturectx

go 1.21
