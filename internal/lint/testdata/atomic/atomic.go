// Package atomic seeds 64-bit atomics at offsets the 32-bit layout
// model rejects, next to the accepted shapes.
package atomic

import "sync/atomic"

// Bad puts a bool ahead of the atomic: offset 1 rounds to 4 on 32-bit
// targets without the compiler's align64 rescue.
type Bad struct {
	closed bool
	ops    atomic.Int64 //lintwant atomic-align
}

// Good leads with the atomic: offset 0.
type Good struct {
	ops    atomic.Int64
	closed bool
}

// Padded fixes the offset structurally: allowed.
type Padded struct {
	closed bool
	_      [7]byte
	ops    atomic.Int64
}

// Inner is clean on its own (offset 0)...
type Inner struct {
	hits atomic.Uint64 //lintwant atomic-align
}

// ...but Outer embeds it at offset 4, which misaligns hits. The
// finding anchors at the field inside Inner.
type Outer struct {
	gen uint32
	in  Inner
}
