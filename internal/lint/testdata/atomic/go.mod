module fixtureatomic

go 1.21
