// Package exhaustive seeds switches over a local enum in every shape
// the rule distinguishes.
package exhaustive

import "fmt"

// Kind is a module-defined enum: named integer type with multiple
// package-level constants.
type Kind int

const (
	KindA Kind = iota
	KindB
	KindC
)

// missing has no default and misses KindC.
func missing(k Kind) string {
	switch k { //lintwant exhaustive-switch
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "?"
}

// silent routes unknown members down an existing path.
func silent(k Kind) int {
	switch k { //lintwant exhaustive-switch
	case KindA:
		return 1
	default:
		return 0
	}
}

// empty ignores unknown members entirely.
func empty(k Kind) {
	switch k { //lintwant exhaustive-switch
	case KindA:
	default:
	}
}

// loud panics on unknown members: allowed.
func loud(k Kind) string {
	switch k {
	case KindA, KindB:
		return "ab"
	default:
		panic(fmt.Sprintf("unknown Kind %d", int(k)))
	}
}

// full covers every member: allowed.
func full(k Kind) string {
	switch k {
	case KindA, KindB, KindC:
		return "abc"
	}
	return ""
}

var _ = []any{missing, silent, empty, loud, full}
