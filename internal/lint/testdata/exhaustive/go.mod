module fixtureexh

go 1.21
