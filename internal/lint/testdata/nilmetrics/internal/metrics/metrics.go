// Package metrics mirrors the real registry's shape: named lookups
// behind a Registry, pre-resolved instrument sets for hot paths.
package metrics

// Counter is a monotonic instrument.
type Counter struct{ v int64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v++ }

// Registry resolves instruments by name.
type Registry struct{ counters map[string]*Counter }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// ForSim is the pre-resolved instrument set hot paths should hold.
type ForSim struct{ Issued *Counter }

// Resolve builds the set once, outside any hot loop.
func Resolve(r *Registry) *ForSim {
	return &ForSim{Issued: r.Counter("issued")}
}
