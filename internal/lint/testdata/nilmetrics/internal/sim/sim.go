// Package sim is a hot-path package: per-call registry lookups are
// banned here.
package sim

import "fixturenm/internal/metrics"

// Hot resolves an instrument by name on every call.
func Hot(r *metrics.Registry) {
	r.Counter("issued").Inc() //lintwant nil-metrics
}

// Cold holds a pre-resolved set: allowed.
func Cold(set *metrics.ForSim, n int) {
	for i := 0; i < n; i++ {
		set.Issued.Inc()
	}
}
