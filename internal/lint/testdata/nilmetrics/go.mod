module fixturenm

go 1.21
