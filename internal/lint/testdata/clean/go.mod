module fixtureclean

go 1.21
