// Package clean has nothing for any rule to object to.
package clean

// Double returns twice its argument.
func Double(x int) int { return 2 * x }
