// Package sim seeds one violation per determinism sub-rule, plus the
// allowed shapes next to each.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Tick reads the wall clock inside a deterministic package.
func Tick() int64 {
	return time.Now().UnixNano() //lintwant determinism
}

// Jitter draws from the process-global rand source.
func Jitter() int {
	return rand.Intn(8) //lintwant determinism
}

// Seeded uses an explicit source: allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// Sum iterates a map with an order-dependent body.
func Sum(m map[string]int) string {
	out := ""
	for k := range m { //lintwant determinism
		out += k
	}
	return out
}

// SortedKeys uses the collect-then-sort idiom: allowed.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
