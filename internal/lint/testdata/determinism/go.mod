module fixturedet

go 1.21
