package sim

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"warped/internal/arch"
	"warped/internal/asm"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// observeKernel builds a tiny deterministic launch: vecadd over 48
// elements (one full warp + one partial warp) on a single-SM chip with
// full Warped-DMR, exercising both intra- and inter-warp paths.
func observeKernel(t *testing.T) (*GPU, *Kernel) {
	t.Helper()
	prog, err := asm.Assemble(vecAddSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.WarpedDMRConfig()
	cfg.NumSMs = 1
	g, err := New(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	a := g.Mem.MustAlloc(4 * n)
	b := g.Mem.MustAlloc(4 * n)
	out := g.Mem.MustAlloc(4 * n)
	av := make([]uint32, n)
	bv := make([]uint32, n)
	for i := range av {
		av[i] = uint32(i)
		bv[i] = uint32(2 * i)
	}
	if err := g.Mem.WriteWords(a, av); err != nil {
		t.Fatal(err)
	}
	if err := g.Mem.WriteWords(b, bv); err != nil {
		t.Fatal(err)
	}
	k := &Kernel{
		Prog: prog, GridX: 1, GridY: 1, BlockX: n, BlockY: 1,
		Params: mem.NewParams(n, a, b, out),
	}
	return g, k
}

// TestChromeTraceGolden pins the Chrome trace-event output of a small
// deterministic kernel byte-for-byte. Regenerate with `go test
// ./internal/sim/ -run ChromeTraceGolden -update` and eyeball the diff
// in chrome://tracing before committing.
func TestChromeTraceGolden(t *testing.T) {
	g, k := observeKernel(t)
	var sb strings.Builder
	cw := trace.NewChromeWriter(&sb)
	if _, err := g.Launch(k, LaunchOpts{Trace: cw}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "vecadd_chrome_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		// Find the first differing line for a readable failure.
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("chrome trace diverges from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("chrome trace length differs from golden: %d vs %d lines", len(gl), len(wl))
	}
}

// TestLaunchMetrics checks that a metered launch populates the
// instrument sets consistently with the deterministic statistics.
func TestLaunchMetrics(t *testing.T) {
	g, k := observeKernel(t)
	reg := metrics.New()
	st, err := g.Launch(k, LaunchOpts{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	counter := func(name string) int64 { return reg.Counter(name).Value() }
	if got := counter("sim.warp_instrs_total"); got != st.WarpInstrs {
		t.Errorf("sim.warp_instrs_total = %d, want %d (stats)", got, st.WarpInstrs)
	}
	if got := counter("sim.idle_issue_cycles_total"); got != st.IdleIssueSlots {
		t.Errorf("sim.idle_issue_cycles_total = %d, want %d (stats)", got, st.IdleIssueSlots)
	}
	if got := counter("dmr.verified.intra_thread_instrs_total"); got != st.VerifiedIntra {
		t.Errorf("intra verified metric %d != stats %d", got, st.VerifiedIntra)
	}
	if got := counter("dmr.verified.inter_thread_instrs_total"); got != st.VerifiedInter {
		t.Errorf("inter verified metric %d != stats %d", got, st.VerifiedInter)
	}
	// The 48-thread block has a 16-wide tail warp, so both DMR paths run.
	if counter("dmr.verified.intra_thread_instrs_total") == 0 {
		t.Error("partial warp ran but intra-warp DMR metric is zero")
	}
	if counter("dmr.verified.inter_thread_instrs_total") == 0 {
		t.Error("full warp ran but inter-warp DMR metric is zero")
	}
	if counter("sim.issue_cycles_total") == 0 {
		t.Error("no issue cycles recorded")
	}
	if got := reg.Histogram("simt.reconv_stack_depth", nil).Count(); got != 2 {
		t.Errorf("reconv-stack-depth observations = %d, want 2 (one per warp)", got)
	}
	// Lane-shuffle coverage: replays must land on more than one physical
	// lane (the paper's hidden-error avoidance).
	lanes := 0
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "dmr.shuffle.lane.") && v > 0 {
			lanes++
		}
	}
	if lanes < 2 {
		t.Errorf("lane shuffle covered %d physical lanes, want >= 2", lanes)
	}
}

// TestMetricsOffIdenticalStats pins the zero-observable-cost contract:
// running with a nil registry must produce byte-identical statistics to
// running with one attached.
func TestMetricsOffIdenticalStats(t *testing.T) {
	g1, k1 := observeKernel(t)
	st1, err := g1.Launch(k1, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	g2, k2 := observeKernel(t)
	st2, err := g2.Launch(k2, LaunchOpts{Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("stats differ with metrics on vs off:\n--- off ---\n%+v\n--- on ---\n%+v", st1, st2)
	}
}
