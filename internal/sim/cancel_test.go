package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// spinSrc runs long enough (hundreds of thousands of cycles) that a
// mid-launch cancellation has plenty of check intervals to land in.
const spinSrc = `
.kernel spin
	mov r0, 0
LOOP:
	iadd r0, r0, 1
	setp.lt.s32 p0, r0, 100000
	@p0 bra LOOP
	exit
`

// TestLaunchContextCancelled: a context cancelled before launch aborts
// immediately with a ctx.Err()-wrapped error.
func TestLaunchContextCancelled(t *testing.T) {
	g, k := launch(t, oneWarpCfg(), spinSrc, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.LaunchContext(ctx, k, LaunchOpts{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLaunchContextMidRun: cancelling while the kernel spins returns
// promptly (far sooner than the kernel's full runtime) with the
// cancellation wrapped in the launch error.
func TestLaunchContextMidRun(t *testing.T) {
	g, k := launch(t, oneWarpCfg(), spinSrc, nil)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := g.LaunchContext(ctx, k, LaunchOpts{})
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("launch did not return within 5s of cancellation (started %v ago)", time.Since(start))
	}
}

// TestLaunchContextDeadline: a deadline context interrupts the launch
// with DeadlineExceeded.
func TestLaunchContextDeadline(t *testing.T) {
	g, k := launch(t, oneWarpCfg(), spinSrc, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := g.LaunchContext(ctx, k, LaunchOpts{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestLaunchNilContext: Launch and a nil ctx both behave like
// context.Background() — the kernel runs to completion.
func TestLaunchNilContext(t *testing.T) {
	g, k := launch(t, oneWarpCfg(), spinSrc, nil)
	st, err := g.LaunchContext(nil, k, LaunchOpts{}) //nolint:staticcheck // nil ctx is an documented alias for Background
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Error("kernel produced no cycles")
	}
}
