package sim

import (
	"errors"
	"testing"

	"warped/internal/arch"
	"warped/internal/asm"
	isa2 "warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/simt"
	"warped/internal/trace"
)

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// oneWarpCfg shrinks the machine to a single SM for timing tests.
func oneWarpCfg() arch.Config {
	cfg := arch.PaperConfig()
	cfg.NumSMs = 1
	return cfg
}

func launch(t *testing.T, cfg arch.Config, src string, k func(*GPU, *Kernel)) (*GPU, *Kernel) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	kern := &Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1}
	if k != nil {
		k(g, kern)
	}
	return g, kern
}

// TestScoreboardRAWTiming: a dependent chain must be spaced by the SP
// latency, while independent instructions issue back to back.
func TestScoreboardRAWTiming(t *testing.T) {
	dep := `
.kernel dep
	mov  r0, 1
	iadd r1, r0, 1
	iadd r2, r1, 1
	iadd r3, r2, 1
	exit
`
	indep := `
.kernel indep
	mov  r0, 1
	iadd r1, r0, 1
	iadd r2, r0, 1
	iadd r3, r0, 1
	exit
`
	cfg := oneWarpCfg()
	g1, k1 := launch(t, cfg, dep, nil)
	st1, err := g1.Launch(k1, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	g2, k2 := launch(t, cfg, indep, nil)
	st2, err := g2.Launch(k2, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles <= st2.Cycles {
		t.Errorf("dependent chain (%d cycles) should be slower than independent (%d)",
			st1.Cycles, st2.Cycles)
	}
	// The dependent chain pays ~SPLat per dependent link (the first
	// link stalls in both programs).
	if min := int64(2 * (cfg.SPLat - 1)); st1.Cycles-st2.Cycles < min {
		t.Errorf("RAW spacing too small: dep %d vs indep %d", st1.Cycles, st2.Cycles)
	}
}

// TestGlobalLatencyVisible: a load-to-use chain pays the global memory
// latency.
func TestGlobalLatencyVisible(t *testing.T) {
	src := `
.kernel lduse
	ld.param r0, [0]
	ld.global r1, [r0]
	iadd r2, r1, 1
	exit
`
	cfg := oneWarpCfg()
	g, k := launch(t, cfg, src, nil)
	buf := g.Mem.MustAlloc(64)
	k.Params = mem.NewParams(buf)
	st, err := g.Launch(k, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < int64(cfg.GlobalLat) {
		t.Errorf("cycles %d below global latency %d", st.Cycles, cfg.GlobalLat)
	}
}

// TestUncoalescedCostsMore: stride-128 loads occupy the LD/ST unit for
// one cycle per segment.
func TestUncoalescedCostsMore(t *testing.T) {
	mk := func(strideShift int) string {
		return `
.kernel stride
	ld.param r0, [0]
	mov  r1, %tid.x
	shl  r1, r1, ` + string(rune('0'+strideShift)) + `
	iadd r1, r0, r1
	ld.global r2, [r1]
	ld.global r3, [r1]
	ld.global r4, [r1]
	ld.global r5, [r1]
	exit
`
	}
	cfg := oneWarpCfg()
	run := func(shift int) int64 {
		g, k := launch(t, cfg, mk(shift), nil)
		buf := g.Mem.MustAlloc(32 * 256)
		k.Params = mem.NewParams(buf)
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	coalesced := run(2) // stride 4: one segment
	scattered := run(7) // stride 128: 32 segments
	if scattered <= coalesced {
		t.Errorf("scattered (%d) should cost more than coalesced (%d)", scattered, coalesced)
	}
}

// TestDRAMBandwidthThrottles: with many SMs hammering global memory,
// reducing DRAM bandwidth must slow the kernel down.
func TestDRAMBandwidthThrottles(t *testing.T) {
	src := `
.kernel hammer
	ld.param r0, [0]
	mov  r1, %ctaid.x
	mov  r2, %ntid.x
	imad r1, r1, r2, %tid.x
	shl  r1, r1, 7              ; stride 128: every lane its own segment
	iadd r1, r0, r1
	ld.global r2, [r1]
	ld.global r3, [r1+4]
	ld.global r4, [r1+8]
	st.global [r1+12], r2
	exit
`
	run := func(bw float64) int64 {
		cfg := arch.PaperConfig()
		cfg.DRAMSegPerCyc = bw
		prog := asm.MustAssemble(src)
		g, err := New(cfg, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		buf := g.Mem.MustAlloc(16 * 256 * 128)
		k := &Kernel{Prog: prog, GridX: 16, GridY: 1, BlockX: 256, BlockY: 1,
			Params: mem.NewParams(buf)}
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	fast := run(100)
	slow := run(0.5)
	if slow <= fast {
		t.Errorf("low DRAM bandwidth (%d cycles) should be slower than high (%d)", slow, fast)
	}
}

// TestShadowGridDoublesWork: an R-Thread launch runs twice the blocks
// but leaves global results untouched by the duplicates.
func TestShadowGridDoublesWork(t *testing.T) {
	src := `
.kernel count
	ld.param r0, [0]
	mov  r1, 1
	atom.add.global r2, [r0], r1
	exit
`
	cfg := arch.PaperConfig()
	prog := asm.MustAssemble(src)

	run := func(shadow bool) (int64, uint32, int64) {
		g, err := New(cfg, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		ctr := g.Mem.MustAlloc(4)
		k := &Kernel{Prog: prog, GridX: 4, GridY: 1, BlockX: 32, BlockY: 1,
			Params: mem.NewParams(ctr), ShadowGrid: shadow}
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := g.Mem.Load32(ctr)
		return st.Cycles, v, st.WarpInstrs
	}
	_, plainCount, plainInstrs := run(false)
	_, shadowCount, shadowInstrs := run(true)
	if plainCount != 4*32 {
		t.Fatalf("plain count = %d, want 128", plainCount)
	}
	if shadowCount != plainCount {
		t.Errorf("shadow blocks changed the result: %d vs %d", shadowCount, plainCount)
	}
	if shadowInstrs != 2*plainInstrs {
		t.Errorf("shadow grid instrs = %d, want %d (double)", shadowInstrs, 2*plainInstrs)
	}
}

func TestKernelValidation(t *testing.T) {
	cfg := arch.PaperConfig()
	prog := asm.MustAssemble(".kernel k\n\texit\n")
	g, _ := New(cfg, 0)
	bad := []*Kernel{
		{Prog: nil, GridX: 1, GridY: 1, BlockX: 1, BlockY: 1},
		{Prog: prog, GridX: 0, GridY: 1, BlockX: 1, BlockY: 1},
		{Prog: prog, GridX: 1, GridY: 1, BlockX: 0, BlockY: 1},
		{Prog: prog, GridX: 1, GridY: 1, BlockX: 2048, BlockY: 1},
		{Prog: prog, GridX: 1, GridY: 1, BlockX: 1, BlockY: 1, SharedBytes: 1 << 20},
	}
	for i, k := range bad {
		if _, err := g.Launch(k, LaunchOpts{}); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := arch.PaperConfig()
	cfg.NumSMs = 0
	if _, err := New(cfg, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMemoryFaultAborts(t *testing.T) {
	src := `
.kernel crash
	mov r0, 0x7ffffff0
	ld.global r1, [r0]
	exit
`
	g, k := launch(t, oneWarpCfg(), src, nil)
	if _, err := g.Launch(k, LaunchOpts{}); err == nil {
		t.Error("out-of-range access must abort the launch")
	}
}

func TestWatchdog(t *testing.T) {
	src := `
.kernel forever
LOOP:
	iadd r0, r0, 1
	bra LOOP
`
	g, k := launch(t, oneWarpCfg(), src, nil)
	if _, err := g.Launch(k, LaunchOpts{MaxCycles: 1000}); err == nil {
		t.Error("infinite loop must trip the watchdog")
	}
}

func TestMultiBlockDistribution(t *testing.T) {
	// 60 blocks on 30 SMs: every SM should host work, and the run must
	// be much faster than a serialized execution.
	src := `
.kernel spin
	mov r0, 0
LOOP:
	iadd r0, r0, 1
	setp.lt.s32 p0, r0, 50
	@p0 bra LOOP
	exit
`
	cfg := arch.PaperConfig()
	prog := asm.MustAssemble(src)
	g, _ := New(cfg, 0)
	k := &Kernel{Prog: prog, GridX: 60, GridY: 1, BlockX: 32, BlockY: 1}
	st, err := g.Launch(k, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	perBlock := int64(3*50 + 2)
	if st.Cycles > 4*perBlock {
		t.Errorf("60 blocks on 30 SMs took %d cycles; expected ~2 blocks' worth (%d)",
			st.Cycles, 2*perBlock)
	}
}

func TestPhysMask(t *testing.T) {
	mk := func(cfg arch.Config) *sm {
		s := &sm{cfg: cfg}
		for i := 0; i < 32; i++ {
			s.laneFor[i] = uint8(cfg.LaneForThread(i))
		}
		return s
	}
	cfg := arch.PaperConfig()
	cfg.Mapping = arch.MapLinear
	m := simt.Mask(0x0000000F)
	if mk(cfg).physMask(m) != m {
		t.Error("linear mapping must be identity")
	}
	cfg.Mapping = arch.MapClusterRR
	s := mk(cfg)
	// Threads 0..3 go to clusters 0..3, slot 0: lanes 0,4,8,12.
	want := simt.Mask(1 | 1<<4 | 1<<8 | 1<<12)
	if got := s.physMask(m); got != want {
		t.Errorf("physMask = %08x, want %08x", got, want)
	}
	// Property: popcount preserved for random masks.
	for _, m := range []simt.Mask{0, 0xFFFFFFFF, 0x12345678, 0x80000001} {
		if s.physMask(m).Count() != m.Count() {
			t.Errorf("physMask changed popcount for %08x", m)
		}
	}
}

// TestIntraOnlyVsInterOnly: intra-warp DMR alone covers divergent code
// but not full warps; inter-warp alone covers full warps but not
// divergent remainders.
func TestIntraOnlyVsInterOnly(t *testing.T) {
	src := `
.kernel mixed
	mov  r0, %tid.x
	setp.lt.s32 p0, r0, 8
	@p0 bra PART, JOIN
	iadd r1, r0, 1        ; 24 lanes
	bra JOIN
PART:
	iadd r1, r0, 2        ; 8 lanes
JOIN:
	iadd r2, r1, 3        ; full warp
	iadd r3, r2, 4        ; full warp
	exit
`
	run := func(mode arch.DMRMode) (intra, inter int64) {
		cfg := oneWarpCfg()
		cfg.DMR = mode
		cfg.Mapping = arch.MapClusterRR // spread contiguous masks across clusters
		g, k := launch(t, cfg, src, nil)
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.VerifiedIntra, st.VerifiedInter
	}
	intra, inter := run(arch.DMRIntra)
	if intra == 0 || inter != 0 {
		t.Errorf("intra-only: %d/%d", intra, inter)
	}
	intra, inter = run(arch.DMRInter)
	if intra != 0 || inter == 0 {
		t.Errorf("inter-only: %d/%d", intra, inter)
	}
	i2, e2 := run(arch.DMRFull)
	if i2 == 0 || e2 == 0 {
		t.Errorf("full: %d/%d", i2, e2)
	}
}

// TestDMROverheadOrdering: for a same-type-burst kernel, overhead must
// decrease as the ReplayQ grows, and DMR-off must be fastest.
func TestDMROverheadOrdering(t *testing.T) {
	src := `
.kernel burst
	mov  r0, 0
LOOP:
	iadd r1, r0, 1
	iadd r2, r0, 2
	iadd r3, r0, 3
	iadd r4, r0, 4
	iadd r0, r0, 1
	setp.lt.s32 p0, r0, 50
	@p0 bra LOOP
	exit
`
	cycles := func(mode arch.DMRMode, qsize int) int64 {
		cfg := oneWarpCfg()
		cfg.DMR = mode
		cfg.ReplayQSize = qsize
		// Multiple warps so the issue slot is contended.
		prog := asm.MustAssemble(src)
		g, err := New(cfg, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		k := &Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 256, BlockY: 1}
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	off := cycles(arch.DMROff, 10)
	q0 := cycles(arch.DMRFull, 0)
	q10 := cycles(arch.DMRFull, 10)
	if off > q10 || q10 > q0 {
		t.Errorf("expected off (%d) <= q10 (%d) <= q0 (%d)", off, q10, q0)
	}
	if q0 == off {
		t.Error("pure SP burst with no queue should cost something")
	}
}

// TestRegBankConflicts: reading two registers that live in the same
// bank (r0 and r4 with 4 banks per cluster) delays the dependent
// result by one extra cycle relative to conflict-free operands.
func TestRegBankConflicts(t *testing.T) {
	conflicted := `
.kernel rbc
	mov  r0, 1
	mov  r4, 2
	iadd r1, r0, r4     ; r0 and r4 share bank 0
	iadd r2, r1, r1
	exit
`
	clean := `
.kernel rbc2
	mov  r0, 1
	mov  r5, 2
	iadd r1, r0, r5     ; banks 0 and 1
	iadd r2, r1, r1
	exit
`
	run := func(src string, model bool) (int64, int64) {
		cfg := oneWarpCfg()
		cfg.ModelRegBankConflicts = model
		g, k := launch(t, cfg, src, nil)
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, st.RegBankConflicts
	}
	cycC, nC := run(conflicted, true)
	cycF, nF := run(clean, true)
	if nC != 1 || nF != 0 {
		t.Errorf("conflict counts = %d/%d, want 1/0", nC, nF)
	}
	if cycC <= cycF {
		t.Errorf("bank conflict should add latency: %d vs %d", cycC, cycF)
	}
	cycOff, nOff := run(conflicted, false)
	if nOff != 0 || cycOff != cycF {
		t.Errorf("disabled model should match conflict-free timing: %d vs %d", cycOff, cycF)
	}
}

// TestSchedulerPolicies: GTO and LRR must agree on results; GTO keeps
// issuing from one warp, so its per-warp bursts are at least as long.
func TestSchedulerPolicies(t *testing.T) {
	src := `
.kernel mix
	mov  r0, %tid.x
	iadd r1, r0, 1
	iadd r2, r0, 2
	iadd r3, r0, 3
	ld.param r4, [0]
	shl  r5, r0, 2
	iadd r5, r4, r5
	st.global [r5], r1
	exit
`
	run := func(pol arch.SchedPolicy) (int64, []uint32) {
		cfg := oneWarpCfg()
		cfg.Sched = pol
		g, k := launch(t, cfg, src, nil)
		buf := g.Mem.MustAlloc(4 * 256)
		k.Params = mem.NewParams(buf)
		k.BlockX = 256
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := g.Mem.ReadWords(buf, 256)
		return st.Cycles, out
	}
	cl, outL := run(arch.SchedLRR)
	cg, outG := run(arch.SchedGTO)
	for i := range outL {
		if outL[i] != outG[i] || outL[i] != uint32(i+1) {
			t.Fatalf("policy changed results at %d: %d vs %d", i, outL[i], outG[i])
		}
	}
	if cl <= 0 || cg <= 0 {
		t.Fatal("bad cycle counts")
	}
}

// TestDualSchedulers: two schedulers with private SP groups must beat
// one scheduler on an SP-bound multi-warp kernel, and the config must
// reject DMR with two schedulers.
func TestDualSchedulers(t *testing.T) {
	src := `
.kernel spbound
	mov  r0, 0
LOOP:
	iadd r1, r0, 1
	iadd r2, r0, 2
	iadd r3, r0, 3
	iadd r0, r0, 1
	setp.lt.s32 p0, r0, 40
	@p0 bra LOOP
	exit
`
	run := func(n int) int64 {
		cfg := oneWarpCfg()
		cfg.NumSchedulers = n
		prog := asm.MustAssemble(src)
		g, err := New(cfg, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		k := &Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 512, BlockY: 1}
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	one := run(1)
	two := run(2)
	if two >= one {
		t.Errorf("dual schedulers (%d cycles) should beat one (%d) on SP-bound code", two, one)
	}

	bad := arch.PaperConfig()
	bad.NumSchedulers = 2
	bad.DMR = arch.DMRFull
	if err := bad.Validate(); err == nil {
		t.Error("DMR with two schedulers must be rejected")
	}
}

// TestValidateDeclaredBlock: a launch wider than the program's .block
// declaration escapes what the static verifier proved, so Validate
// rejects it; launching narrower than declared is fine.
func TestValidateDeclaredBlock(t *testing.T) {
	prog := asm.MustAssemble(".kernel k\n.block 64\n\tmov r0, 1\n\texit\n")
	cfg := arch.PaperConfig()
	ok := &Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1}
	if err := ok.Validate(cfg); err != nil {
		t.Fatalf("narrower launch rejected: %v", err)
	}
	wide := &Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 128, BlockY: 1}
	if err := wide.Validate(cfg); err == nil {
		t.Error("launch wider than the declared .block accepted")
	}
}

// TestStopOnError: with StopOnError set, the first comparator mismatch
// aborts the launch with ErrErrorDetected (the paper's raise-an-
// exception handling for permanent faults).
func TestStopOnError(t *testing.T) {
	src := `
.kernel work
	mov  r0, %tid.x
	iadd r1, r0, 1
	iadd r2, r1, 2
	iadd r3, r2, 3
	exit
`
	cfg := oneWarpCfg()
	cfg.DMR = arch.DMRFull
	g, k := launch(t, cfg, src, nil)
	hook := stuckLaneHook{lane: 3}
	_, err := g.Launch(k, LaunchOpts{Fault: hook, StopOnError: true})
	if err == nil {
		t.Fatal("expected the launch to abort")
	}
	if !errorsIs(err, ErrErrorDetected) {
		t.Fatalf("error %v does not wrap ErrErrorDetected", err)
	}
	// Without StopOnError the same run completes, counting detections.
	g2, k2 := launch(t, cfg, src, nil)
	st, err := g2.Launch(k2, LaunchOpts{Fault: hook})
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsDetected == 0 {
		t.Error("fault not detected")
	}
}

type stuckLaneHook struct{ lane int }

func (h stuckLaneHook) Perturb(sm int, cyc int64, lane int, u isa2.UnitClass, golden uint32) (uint32, bool) {
	if lane == h.lane && u == isa2.UnitSP {
		return golden | 1<<30, golden&(1<<30) == 0
	}
	return golden, false
}

// TestTraceSink: every issued instruction reaches the trace sink, in
// non-decreasing cycle order.
func TestTraceSink(t *testing.T) {
	src := `
.kernel traced
	mov  r0, %tid.x
	iadd r1, r0, 1
	shl  r2, r0, 2
	st.shared [r2], r1
	exit
`
	cfg := oneWarpCfg()
	g, k := launch(t, cfg, src, nil)
	k.SharedBytes = 256
	ring := trace.NewRing(64)
	st, err := g.Launch(k, LaunchOpts{Trace: ring})
	if err != nil {
		t.Fatal(err)
	}
	es := ring.Events()
	if int64(len(es)) != st.WarpInstrs {
		t.Fatalf("traced %d events, issued %d instrs", len(es), st.WarpInstrs)
	}
	var last int64 = -1
	stores := 0
	for _, e := range es {
		if e.Cycle < last {
			t.Fatal("trace out of order")
		}
		last = e.Cycle
		if e.Stores {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("traced %d stores, want 1", stores)
	}
}

// TestCacheLocalitySpeedsUp: re-reading the same small array is much
// faster with caches than without, and records plausible hit rates.
func TestCacheLocalitySpeedsUp(t *testing.T) {
	src := `
.kernel reread
	ld.param r0, [0]
	mov  r1, %tid.x
	shl  r1, r1, 2
	iadd r1, r0, r1
	mov  r2, 0
LOOP:
	ld.global r3, [r1]
	iadd r4, r4, r3
	iadd r2, r2, 1
	setp.lt.s32 p0, r2, 20
	@p0 bra LOOP
	exit
`
	run := func(model bool) (int64, int64, int64) {
		cfg := oneWarpCfg()
		cfg.ModelCaches = model
		g, k := launch(t, cfg, src, nil)
		buf := g.Mem.MustAlloc(4 * 32)
		k.Params = mem.NewParams(buf)
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, st.L1Hits, st.L1Misses
	}
	cold, _, _ := run(false)
	warm, hits, misses := run(true)
	if warm >= cold {
		t.Errorf("caches should speed up re-reads: %d vs %d cycles", warm, cold)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("expected both hits and misses, got %d/%d", hits, misses)
	}
	// 20 iterations over one segment: 1 compulsory miss, 19 hits.
	if hits != 19 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 19/1", hits, misses)
	}
}

// TestStoreInvalidatesL1: a store between two loads of the same line
// forces the second load back out to memory (write-through + L1
// invalidate), so it must not hit L1.
func TestStoreInvalidatesL1(t *testing.T) {
	src := `
.kernel wr
	ld.param r0, [0]
	ld.global r1, [r0]      ; miss, install
	st.global [r0], r1      ; write-through, invalidate
	ld.global r2, [r0]      ; must miss L1 again (hits L2)
	exit
`
	cfg := oneWarpCfg()
	g, k := launch(t, cfg, src, nil)
	buf := g.Mem.MustAlloc(64)
	k.Params = mem.NewParams(buf)
	st, err := g.Launch(k, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.L1Hits != 0 {
		t.Errorf("L1 hits = %d, want 0 (store must invalidate)", st.L1Hits)
	}
	if st.L2Hits == 0 {
		t.Error("second load should hit L2")
	}
}

// TestAtomicsGoThroughL2: atomics never install L1 lines.
func TestAtomicsGoThroughL2(t *testing.T) {
	src := `
.kernel at
	ld.param r0, [0]
	mov  r1, 1
	atom.add.global r2, [r0], r1
	atom.add.global r3, [r0], r1
	exit
`
	cfg := oneWarpCfg()
	g, k := launch(t, cfg, src, nil)
	buf := g.Mem.MustAlloc(4)
	k.Params = mem.NewParams(buf)
	st, err := g.Launch(k, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.L1Hits != 0 && st.L1Misses != 0 {
		t.Error("atomics must bypass the L1")
	}
	if st.L2Hits == 0 {
		t.Error("second atomic should hit L2")
	}
	v, _ := g.Mem.Load32(buf)
	if v != 64 { // 32 lanes x 2 atomics
		t.Errorf("counter = %d, want 64", v)
	}
}

// TestRegisterFileLimitsOccupancy: a register-hungry kernel fits fewer
// resident blocks per SM, so a many-block launch takes longer than the
// same launch with a small register footprint.
func TestRegisterFileLimitsOccupancy(t *testing.T) {
	// 60 registers per thread: 256 threads * 60 * 4B = 61KB -> one
	// block per SM on a 64KB register file.
	fat := `
.kernel fat
.reg 60
	mov  r59, 0
LOOP:
	iadd r59, r59, 1
	setp.lt.s32 p0, r59, 30
	@p0 bra LOOP
	exit
`
	lean := `
.kernel lean
.reg 4
	mov  r3, 0
LOOP:
	iadd r3, r3, 1
	setp.lt.s32 p0, r3, 30
	@p0 bra LOOP
	exit
`
	run := func(src string) int64 {
		cfg := oneWarpCfg()
		// Small register file so the fat kernel fits only two resident
		// 32-thread blocks while the lean one fits all eight; the
		// dependent loop then exposes the lost latency hiding.
		cfg.RegFileBytes = 16 * 1024
		prog := asm.MustAssemble(src)
		g, err := New(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := &Kernel{Prog: prog, GridX: 8, GridY: 1, BlockX: 32, BlockY: 1}
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	if fatC, leanC := run(fat), run(lean); fatC <= leanC {
		t.Errorf("register pressure should serialize blocks: fat %d vs lean %d cycles", fatC, leanC)
	}
}
