// Package sim is the cycle-level timing model of the GPGPU: streaming
// multiprocessors with a single warp scheduler feeding three
// heterogeneous execution-unit groups (SP, SFU, LD/ST), a per-warp
// scoreboard, coalescing/bank-conflict memory costs, block dispatch
// across the chip, and the Warped-DMR engine hooks at the issue stage.
package sim

import (
	"fmt"
	"math/bits"

	"warped/internal/arch"
	"warped/internal/cache"
	"warped/internal/core"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/simt"
	"warped/internal/stats"
	"warped/internal/trace"
)

// FaultHook lets a fault model corrupt computed values. It receives the
// SM, current cycle, physical lane, unit class and golden value, and
// returns the (possibly corrupted) value plus whether it changed it.
type FaultHook interface {
	Perturb(smID int, cycle int64, physLane int, unit isa.UnitClass, golden uint32) (uint32, bool)
}

// PCFaultHook is the optional program-targeted extension of FaultHook:
// a hook that also implements it receives the kernel name and the PC of
// the issuing instruction on the primary execution path, so a fault can
// be pinned to one static instruction. The vulncheck experiment uses
// this to corrupt exactly the PCs the static analysis claims are unACE.
// The engine's redundant-execution path keeps calling plain Perturb —
// PC targeting is a property of the architectural instruction stream,
// not of the verification replay.
type PCFaultHook interface {
	FaultHook
	PerturbAt(smID int, cycle int64, kernel string, pc, physLane int, unit isa.UnitClass, golden uint32) (uint32, bool)
}

// warpCtx is one resident warp: architectural state plus scoreboard.
type warpCtx struct {
	ws    exec.WarpState // control, registers, memories
	block *blockCtx
	gid   int // SM-unique warp id

	ready   [isa.MaxGPR]int64 // cycle at which each GPR's pending write lands
	tracked bool              // RAW-distance tracking target (Fig. 8b)
}

// blockCtx is one resident thread block.
type blockCtx struct {
	id        int // linear block index in the grid
	shared    *mem.Shared
	warps     []*warpCtx
	live      int // warps not yet exited
	atBarrier int
	threads   int
	shadow    bool // R-Thread duplicate: global writes suppressed
}

// sm is one streaming multiprocessor.
type sm struct {
	id      int
	cfg     arch.Config
	gpu     *GPU
	st      stats.Stats // plain counters, merged into the launch total at drain
	engine  *core.Engine
	machine *exec.Machine  // per-launch execution machine (pre-decoded stream)
	code    []exec.Decoded // the machine's stream, indexed by PC

	blocks    []*blockCtx
	warps     []*warpCtx // issue candidates, in dispatch (age) order
	rr        [2]int     // per-scheduler round-robin cursors
	greedy    [2]int     // per-scheduler GTO sticky warp (-1 none)
	stall     int        // DMR-induced issue stalls outstanding
	spBusy    [2]int64   // SP group per scheduler (paper: own SPs)
	sfuBusy   int64      // shared across schedulers
	ldstBusy  int64      // shared across schedulers
	threadsIn int        // resident threads
	lastBusy  int64
	l1        *cache.Cache // per-SM L1 data cache (nil when off)
	err       error

	laneFor  [32]uint8  // thread slot -> physical lane (pre-resolved mapping)
	segBuf   [32]uint32 // scratch for segBases
	issueNow int64      // cycle of the in-flight Machine.Step (fault hook)
	issuePC  int        // PC of the in-flight Machine.Step (PC-targeted faults)
	kName    string     // kernel name, for PCFaultHook targeting

	met *metrics.Sim // never nil; shared across the launch's SMs
}

func newSM(id int, g *GPU, comp *exec.Compiled, fault FaultHook, onError func(core.ErrorEvent)) *sm {
	s := &sm{
		id: id, cfg: g.Cfg, gpu: g, greedy: [2]int{-1, -1},
		met: metrics.ForSim(nil),
	}
	for t := 0; t < 32; t++ {
		s.laneFor[t] = uint8(g.Cfg.LaneForThread(t))
	}
	if g.Cfg.ModelCaches {
		s.l1 = cache.New(g.Cfg.L1)
	}
	s.kName = comp.Prog().Name
	var perturb exec.Perturb
	if fault != nil {
		pcHook, _ := fault.(PCFaultHook)
		perturb = func(thread int, unit isa.UnitClass, golden uint32) uint32 {
			lane := int(s.laneFor[thread])
			var v uint32
			var changed bool
			if pcHook != nil {
				v, changed = pcHook.PerturbAt(s.id, s.issueNow, s.kName, s.issuePC, lane, unit, golden)
			} else {
				v, changed = fault.Perturb(s.id, s.issueNow, lane, unit, golden)
			}
			if changed {
				s.st.FaultsActivated++
			}
			return v
		}
	}
	s.machine = exec.NewMachine(comp, exec.Opts{
		SegBytes: g.Cfg.CoalesceBytes,
		Banks:    g.Cfg.NumSharedBanks,
		Metrics:  metrics.ForExec(nil),
		Perturb:  perturb,
	})
	s.code = s.machine.Code()
	var perturbPhys core.PerturbPhys
	if fault != nil {
		perturbPhys = func(lane int, unit isa.UnitClass, golden uint32) uint32 {
			v, _ := fault.Perturb(id, g.now, lane, unit, golden)
			return v
		}
	}
	s.engine = core.NewEngine(g.Cfg, id, &s.st, perturbPhys, onError)
	return s
}

// stats returns the SM's accumulated launch counters.
func (s *sm) stats() *stats.Stats { return &s.st }

// canHost reports whether the SM has capacity for another block:
// block slots, thread contexts, register file, and shared memory all
// bound occupancy, exactly the factors that bound it on hardware.
func (s *sm) canHost(k *Kernel) bool {
	if len(s.blocks) >= s.cfg.MaxBlocksPerSM {
		return false
	}
	if s.threadsIn+k.ThreadsPerBlock() > s.cfg.MaxThreadsPerSM {
		return false
	}
	// Register-file pressure: resident threads x registers x 4 bytes.
	if s.cfg.RegFileBytes > 0 {
		need := (s.threadsIn + k.ThreadsPerBlock()) * k.Prog.NumRegs * 4
		if need > s.cfg.RegFileBytes {
			return false
		}
	}
	if k.SharedBytes > 0 {
		used := 0
		for _, b := range s.blocks {
			used += b.shared.Size()
		}
		if used+k.SharedBytes > s.cfg.SharedMemBytes {
			return false
		}
	}
	return true
}

// host installs a block on the SM, building its warps and registers.
// Register state is one struct-of-arrays slab per block (exec.RegFile),
// carved into per-warp views.
func (s *sm) host(k *Kernel, blockID int, trackRAWWarp bool) {
	threads := k.ThreadsPerBlock()
	shared := k.SharedBytes
	if shared == 0 {
		shared = 4 // placeholder so Size() accounting stays sane
	}
	logical := blockID
	shadow := false
	if n := k.NumBlocks(); k.ShadowGrid && blockID >= n {
		logical, shadow = blockID-n, true
	}
	b := &blockCtx{id: logical, shared: mem.NewShared(shared), threads: threads, shadow: shadow}
	nWarps := (threads + s.cfg.WarpSize - 1) / s.cfg.WarpSize
	rf := exec.NewRegFile(nWarps, k.Prog.NumRegs)
	for wi := 0; wi < nWarps; wi++ {
		width := s.cfg.WarpSize
		if rem := threads - wi*s.cfg.WarpSize; rem < width {
			width = rem
		}
		wc := &warpCtx{
			ws: exec.WarpState{
				Ctl:  simt.NewWarp(wi, blockID, width),
				Regs: rf.Warp(wi),
				Mem:  exec.Mem{Global: s.gpu.Mem, Shared: b.shared, Params: k.Params, Shadow: shadow},
			},
			block: b,
			gid:   s.gpu.nextWarpGID(),
		}
		s.fillSpecials(k, wc, logical, wi, width)
		// Fig. 8b tracks "warp1 thread 32" = warp index 1. Fall back to
		// warp 0 for single-warp blocks (the paper does this for SHA).
		if trackRAWWarp && !shadow && logical == s.gpu.trackBlock && wi == s.gpu.trackWarp {
			wc.tracked = true
		}
		b.warps = append(b.warps, wc)
		s.warps = append(s.warps, wc)
	}
	b.live = len(b.warps)
	s.blocks = append(s.blocks, b)
	s.threadsIn += threads
}

func (s *sm) fillSpecials(k *Kernel, wc *warpCtx, blockID, warpIdx, width int) {
	var tidx, tidy, ntidx, ntidy, ctaidx, ctaidy, nctaidx, nctaidy, laneid, warpid [32]uint32
	bx := blockID % k.GridX
	by := blockID / k.GridX
	for lane := 0; lane < width; lane++ {
		t := warpIdx*s.cfg.WarpSize + lane
		tidx[lane] = uint32(t % k.BlockX)
		tidy[lane] = uint32(t / k.BlockX)
		ntidx[lane] = uint32(k.BlockX)
		ntidy[lane] = uint32(k.BlockY)
		ctaidx[lane] = uint32(bx)
		ctaidy[lane] = uint32(by)
		nctaidx[lane] = uint32(k.GridX)
		nctaidy[lane] = uint32(k.GridY)
		laneid[lane] = uint32(lane)
		warpid[lane] = uint32(warpIdx)
	}
	r := wc.ws.Regs
	r.SetSpecial(isa.RegTIDX, tidx)
	r.SetSpecial(isa.RegTIDY, tidy)
	r.SetSpecial(isa.RegNTIDX, ntidx)
	r.SetSpecial(isa.RegNTIDY, ntidy)
	r.SetSpecial(isa.RegCTAIDX, ctaidx)
	r.SetSpecial(isa.RegCTAIDY, ctaidy)
	r.SetSpecial(isa.RegNCTAIDX, nctaidx)
	r.SetSpecial(isa.RegNCTAIDY, nctaidy)
	r.SetSpecial(isa.RegLANEID, laneid)
	r.SetSpecial(isa.RegWARPID, warpid)
}

// issuable reports whether wc can issue at cycle now on scheduler sched.
// It consults the pre-decoded stream, so the scan over candidates does
// no per-instruction decoding or allocation.
func (s *sm) issuable(wc *warpCtx, sched int, now int64) bool {
	if wc.ws.Ctl.Done() || wc.ws.Ctl.AtBarrier {
		return false
	}
	d := &s.code[wc.ws.Ctl.PC()]
	switch d.Unit {
	case isa.UnitSP:
		if s.spBusy[sched] > now {
			return false
		}
	case isa.UnitSFU:
		if s.sfuBusy > now {
			return false
		}
	case isa.UnitLDST:
		if s.ldstBusy > now {
			return false
		}
	case isa.UnitCTRL:
		// Control ops need no execution-unit port; issue eligibility is
		// decided by the DRAM/barrier checks below alone.
	}
	// Global accesses stall while the DRAM bandwidth bucket is in debt
	// (cache hits never create debt, so they pass freely).
	if d.Unit == isa.UnitLDST && d.Space != isa.SpaceShared && d.Space != isa.SpaceParam &&
		s.gpu.dramTokens < 0 {
		return false
	}
	// Scoreboard: RAW on sources, WAW on destination.
	for i := 0; i < int(d.NumReads); i++ {
		if wc.ready[d.ReadRegs[i]] > now {
			return false
		}
	}
	if d.HasDst && wc.ready[d.Dst] > now {
		return false
	}
	return true
}

// regBankConflictCycles counts the extra register-fetch cycles for an
// instruction whose source registers collide in the same bank. Each
// bank holds one 128-bit entry per register name, interleaved
// register-number mod banks-per-cluster (after [8]); distinct registers
// in the same bank serialize their fetches, which the operand buffer
// hides from the pipeline but which still delays the result.
func (s *sm) regBankConflictCycles(d *exec.Decoded) int64 {
	if !s.cfg.ModelRegBankConflicts {
		return 0
	}
	// At most three source registers: pairwise comparison beats clearing
	// per-bank scratch arrays on every instruction.
	banks := s.cfg.RegBanksPerCluster()
	extra := int64(0)
	n := int(d.NumReads)
	for i := 1; i < n; i++ {
		ri := int(d.ReadRegs[i])
		dup, conflict := false, false
		for j := 0; j < i; j++ {
			rj := int(d.ReadRegs[j])
			if rj == ri {
				dup = true // same register feeds multiple operands: one fetch
				break
			}
			if rj%banks == ri%banks {
				conflict = true
			}
		}
		if !dup && conflict {
			extra++
		}
	}
	return extra
}

// latency returns the writeback latency for an executed record.
// Memory costs (latency, DRAM bandwidth, cache effects) are handled by
// memCosts at issue time.
func (s *sm) latency(rec *exec.Record) int64 {
	switch {
	case rec.Unit == isa.UnitCTRL:
		return 1
	case rec.Unit == isa.UnitSFU:
		return int64(s.cfg.SFULat)
	default:
		return int64(s.cfg.SPLat)
	}
}

// segBases returns the distinct coalesced segment base addresses of a
// memory record's active lanes, in an SM-owned scratch buffer valid
// until the next call.
func (s *sm) segBases(rec *exec.Record) []uint32 {
	segBytes := uint32(s.cfg.CoalesceBytes)
	bases := s.segBuf[:0]
	for lane := 0; lane < 32; lane++ {
		if !rec.Executing.Has(lane) {
			continue
		}
		b := rec.Addrs[lane] / segBytes * segBytes
		dup := false
		for _, x := range bases {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			bases = append(bases, b)
		}
	}
	return bases
}

// memCosts computes the writeback latency and LD/ST occupancy of a
// memory record, probing the L1/L2 hierarchy and charging DRAM
// bandwidth for the segments that reach memory.
func (s *sm) memCosts(rec *exec.Record) (lat, occ int64) {
	switch rec.Dec.Space {
	case isa.SpaceShared, isa.SpaceParam:
		return int64(s.cfg.SharedLat + rec.BankSer - 1), int64(rec.BankSer)
	case isa.SpaceGlobal, isa.SpaceLocal:
		// Fall out to the cache/DRAM path below.
	}

	bases := s.segBases(rec)
	occ = int64(len(bases))
	if occ < 1 {
		occ = 1
	}
	isAtom := rec.Dec.Op == isa.OpATOM
	if isAtom {
		occ = int64(rec.Executing.Count()) // atomics serialize per lane
		if occ < 1 {
			occ = 1
		}
	}

	if s.l1 == nil { // caches off: flat DRAM latency
		s.gpu.dramTokens -= float64(len(bases))
		lat = int64(s.cfg.GlobalLat) + occ - 1
		if isAtom {
			lat += int64(rec.Executing.Count())
		}
		return lat, occ
	}

	worst := int64(s.cfg.L1Lat)
	dramSegs := 0
	for _, b := range bases {
		switch {
		case isAtom:
			// Fermi performs atomics in the L2: always at least L2
			// latency; allocate there, never in L1.
			if s.gpu.l2.Access(b) {
				s.st.L2Hits++
			} else {
				s.st.L2Misses++
				dramSegs++
				if int64(s.cfg.GlobalLat) > worst {
					worst = int64(s.cfg.GlobalLat)
				}
			}
			if int64(s.cfg.L2Lat) > worst {
				worst = int64(s.cfg.L2Lat)
			}
			s.l1.Invalidate(b)
		case rec.IsStore:
			// Write-through, no-allocate: probe L2 without charging
			// DRAM on hit; drop any stale L1 copy.
			s.l1.Invalidate(b)
			if s.gpu.l2.Access(b) {
				s.st.L2Hits++
			} else {
				s.st.L2Misses++
				dramSegs++
			}
		default: // load
			if s.l1.Access(b) {
				s.st.L1Hits++
				continue
			}
			s.st.L1Misses++
			if s.gpu.l2.Access(b) {
				s.st.L2Hits++
				if int64(s.cfg.L2Lat) > worst {
					worst = int64(s.cfg.L2Lat)
				}
			} else {
				s.st.L2Misses++
				dramSegs++
				if int64(s.cfg.GlobalLat) > worst {
					worst = int64(s.cfg.GlobalLat)
				}
			}
		}
	}
	s.gpu.dramTokens -= float64(dramSegs)
	lat = worst + occ - 1
	if isAtom {
		lat += int64(rec.Executing.Count())
	}
	return lat, occ
}

// tick advances the SM by one cycle. Returns true if any work remains.
func (s *sm) tick(now int64) bool {
	if s.err != nil {
		return false
	}
	busy := len(s.warps) > 0
	if busy {
		s.lastBusy = now
	}
	if s.stall > 0 {
		s.stall--
		s.met.StallCycles.Inc()
		return busy
	}
	issued := 0
	for sched := 0; sched < s.cfg.NumSchedulers; sched++ {
		if wc := s.pick(sched, now); wc != nil {
			s.issue(wc, sched, now)
			issued++
			if s.err != nil {
				return false
			}
		}
	}
	if issued == 0 {
		// Nothing issuable: the execution units are idle this cycle.
		s.st.IdleIssueSlots++
		s.met.IdleCycles.Inc()
		s.engine.IdleCycle(now)
	} else {
		s.met.IssueCycles.Inc()
	}
	return busy
}

// pick selects the next warp for one scheduler. With two schedulers,
// warps are partitioned by parity of their position in dispatch order
// (Fermi-style even/odd warp ownership).
func (s *sm) pick(sched int, now int64) *warpCtx {
	n := len(s.warps)
	if n == 0 {
		return nil
	}
	mine := func(i int) bool {
		return s.cfg.NumSchedulers == 1 || i%s.cfg.NumSchedulers == sched
	}
	if s.cfg.Sched == arch.SchedGTO {
		// Greedy: stick with the last warp while it can issue.
		if g := s.greedy[sched]; g >= 0 && g < n && mine(g) && s.issuable(s.warps[g], sched, now) {
			return s.warps[g]
		}
		// Then oldest: scan in dispatch (age) order.
		for i := 0; i < n; i++ {
			if mine(i) && s.issuable(s.warps[i], sched, now) {
				s.greedy[sched] = i
				return s.warps[i]
			}
		}
		s.greedy[sched] = -1
		return nil
	}
	// Loose round-robin.
	for i := 0; i < n; i++ {
		idx := (s.rr[sched] + i) % n
		if mine(idx) && s.issuable(s.warps[idx], sched, now) {
			s.rr[sched] = idx + 1
			return s.warps[idx]
		}
	}
	return nil
}

func (s *sm) issue(wc *warpCtx, sched int, now int64) {
	s.issueNow = now
	s.issuePC = wc.ws.Ctl.PC()
	rec, err := s.machine.Step(&wc.ws)
	if err != nil {
		s.err = fmt.Errorf("sm%d block %d warp %d: %w", s.id, wc.block.id, wc.ws.Ctl.ID, err)
		return
	}

	if s.gpu.tracer != nil {
		s.gpu.tracer.Emit(trace.Event{
			Cycle: now, SM: s.id, WarpGID: wc.gid,
			BlockID: wc.block.id, WarpID: wc.ws.Ctl.ID,
			PC: rec.PC, Op: rec.Dec.Op, Unit: rec.Unit,
			Executing: rec.Executing, Divergent: rec.Divergent,
			Stores: rec.IsStore,
		})
	}

	// --- statistics taps ---
	s.st.WarpInstrs++
	s.met.WarpInstrs.Inc()
	nExec := rec.Executing.Count()
	s.st.ThreadInstrs += int64(nExec)
	if rec.Unit != isa.UnitCTRL {
		if nExec > 0 {
			s.st.ActiveHist[stats.ActiveBucket(nExec)]++
		}
		s.st.TypeHist[rec.Unit]++
		s.st.Runs.Observe(rec.Unit)
		s.st.UnitOps[rec.Unit]++
		// Bank-level accounting: a 128-bit bank entry feeds a whole
		// cluster, so register traffic is counted per warp instruction.
		s.st.RegFileReads += int64(rec.Dec.NSrc)
		if rec.DstValid {
			s.st.RegFileWrites++
		}
		if rec.IsMem {
			switch rec.Dec.Space {
			case isa.SpaceShared, isa.SpaceParam:
				s.st.SharedAccesses++
			case isa.SpaceGlobal, isa.SpaceLocal:
				s.st.GlobalAccesses++
			}
		}
	}
	if wc.tracked && s.st.RAW != nil && rec.Unit != isa.UnitCTRL {
		for _, r := range rec.SrcRegs() {
			s.st.RAW.Read(r, now)
		}
		if rec.DstValid {
			s.st.RAW.Write(rec.Dst, now)
		}
	}

	// --- timing updates ---
	var lat, occ int64
	if rec.IsMem {
		lat, occ = s.memCosts(rec)
	} else {
		lat, occ = s.latency(rec), 1
	}
	switch rec.Unit {
	case isa.UnitSP:
		s.spBusy[sched] = now + occ
	case isa.UnitSFU:
		s.sfuBusy = now + occ
	case isa.UnitLDST:
		s.ldstBusy = now + occ
	case isa.UnitCTRL:
		// Control ops occupy no unit.
	}
	if rec.DstValid {
		if rec.Unit != isa.UnitCTRL {
			if rb := s.regBankConflictCycles(rec.Dec); rb > 0 {
				lat += rb
				s.st.RegBankConflicts += rb
			}
		}
		wc.ready[rec.Dst] = now + lat
	}

	// --- control events ---
	switch {
	case rec.IsBarrier:
		wc.block.atBarrier++
		s.maybeReleaseBarrier(wc.block)
	case rec.IsExit && wc.ws.Ctl.Done():
		wc.block.live--
		s.maybeReleaseBarrier(wc.block)
		if wc.block.live == 0 {
			s.retire(wc.block)
		}
	}

	// --- Warped-DMR hook ---
	s.stall += s.engine.Issue(core.IssueInfo{
		Rec:     rec,
		WarpGID: wc.gid,
		Phys:    s.physMask(rec.Executing),
		Width:   wc.ws.Ctl.Width(),
		Cycle:   now,
	})
}

// physMask converts a logical thread-slot mask to a physical-lane mask
// under the configured thread->core mapping, via the pre-resolved
// lane table.
func (s *sm) physMask(logical simt.Mask) simt.Mask {
	if s.cfg.Mapping == arch.MapLinear {
		return logical
	}
	var out simt.Mask
	for rem := uint32(logical); rem != 0; rem &= rem - 1 {
		t := bits.TrailingZeros32(rem)
		out |= 1 << uint(s.laneFor[t])
	}
	return out
}

func (s *sm) maybeReleaseBarrier(b *blockCtx) {
	if b.atBarrier == 0 || b.atBarrier < b.live {
		return
	}
	for _, wc := range b.warps {
		wc.ws.Ctl.AtBarrier = false
	}
	b.atBarrier = 0
}

// retire removes a finished block and its warps from the SM, rolling
// each warp's lifetime control-flow tallies into the launch metrics.
func (s *sm) retire(b *blockCtx) {
	for _, wc := range b.warps {
		s.met.StackDepth.Observe(int64(wc.ws.Ctl.MaxStackDepth()))
		s.met.DivergeEvents.Add(wc.ws.Ctl.Diverges())
	}
	kept := s.blocks[:0]
	for _, x := range s.blocks {
		if x != b {
			kept = append(kept, x)
		}
	}
	s.blocks = kept
	wk := s.warps[:0]
	for _, wc := range s.warps {
		if wc.block != b {
			wk = append(wk, wc)
		}
	}
	s.warps = wk
	s.threadsIn -= b.threads
	s.gpu.blocksDone++
	for i := range s.rr {
		if s.rr[i] >= len(s.warps) {
			s.rr[i] = 0
		}
		s.greedy[i] = -1
	}
}
