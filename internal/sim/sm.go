// Package sim is the cycle-level timing model of the GPGPU: streaming
// multiprocessors with a single warp scheduler feeding three
// heterogeneous execution-unit groups (SP, SFU, LD/ST), a per-warp
// scoreboard, coalescing/bank-conflict memory costs, block dispatch
// across the chip, and the Warped-DMR engine hooks at the issue stage.
package sim

import (
	"fmt"

	"warped/internal/arch"
	"warped/internal/cache"
	"warped/internal/core"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/simt"
	"warped/internal/stats"
	"warped/internal/trace"
)

// FaultHook lets a fault model corrupt computed values. It receives the
// SM, current cycle, physical lane, unit class and golden value, and
// returns the (possibly corrupted) value plus whether it changed it.
type FaultHook interface {
	Perturb(smID int, cycle int64, physLane int, unit isa.UnitClass, golden uint32) (uint32, bool)
}

// warpCtx is one resident warp: architectural state plus scoreboard.
type warpCtx struct {
	warp  *simt.Warp
	regs  *exec.Regs
	block *blockCtx
	gid   int // SM-unique warp id

	ready   [isa.MaxGPR]int64 // cycle at which each GPR's pending write lands
	tracked bool              // RAW-distance tracking target (Fig. 8b)
}

// blockCtx is one resident thread block.
type blockCtx struct {
	id        int // linear block index in the grid
	shared    *mem.Shared
	warps     []*warpCtx
	live      int // warps not yet exited
	atBarrier int
	threads   int
	shadow    bool // R-Thread duplicate: global writes suppressed
}

// sm is one streaming multiprocessor.
type sm struct {
	id     int
	cfg    arch.Config
	gpu    *GPU
	st     *stats.Stats
	engine *core.Engine

	blocks    []*blockCtx
	warps     []*warpCtx // issue candidates, in dispatch (age) order
	rr        [2]int     // per-scheduler round-robin cursors
	greedy    [2]int     // per-scheduler GTO sticky warp (-1 none)
	stall     int        // DMR-induced issue stalls outstanding
	spBusy    [2]int64   // SP group per scheduler (paper: own SPs)
	sfuBusy   int64      // shared across schedulers
	ldstBusy  int64      // shared across schedulers
	threadsIn int        // resident threads
	lastBusy  int64
	l1        *cache.Cache // per-SM L1 data cache (nil when off)
	err       error

	met  *metrics.Sim  // never nil; shared across the launch's SMs
	emet *metrics.Exec // never nil; carried on every exec.Context
}

func newSM(id int, g *GPU, st *stats.Stats, fault FaultHook, onError func(core.ErrorEvent)) *sm {
	s := &sm{
		id: id, cfg: g.Cfg, gpu: g, st: st, greedy: [2]int{-1, -1},
		met:  metrics.ForSim(nil),
		emet: metrics.ForExec(nil),
	}
	if g.Cfg.ModelCaches {
		s.l1 = cache.New(g.Cfg.L1)
	}
	var perturb core.PerturbPhys
	if fault != nil {
		perturb = func(lane int, unit isa.UnitClass, golden uint32) uint32 {
			v, _ := fault.Perturb(id, g.now, lane, unit, golden)
			return v
		}
	}
	s.engine = core.NewEngine(g.Cfg, id, st, perturb, onError)
	return s
}

// canHost reports whether the SM has capacity for another block:
// block slots, thread contexts, register file, and shared memory all
// bound occupancy, exactly the factors that bound it on hardware.
func (s *sm) canHost(k *Kernel) bool {
	if len(s.blocks) >= s.cfg.MaxBlocksPerSM {
		return false
	}
	if s.threadsIn+k.ThreadsPerBlock() > s.cfg.MaxThreadsPerSM {
		return false
	}
	// Register-file pressure: resident threads x registers x 4 bytes.
	if s.cfg.RegFileBytes > 0 {
		need := (s.threadsIn + k.ThreadsPerBlock()) * k.Prog.NumRegs * 4
		if need > s.cfg.RegFileBytes {
			return false
		}
	}
	if k.SharedBytes > 0 {
		used := 0
		for _, b := range s.blocks {
			used += b.shared.Size()
		}
		if used+k.SharedBytes > s.cfg.SharedMemBytes {
			return false
		}
	}
	return true
}

// host installs a block on the SM, building its warps and registers.
func (s *sm) host(k *Kernel, blockID int, trackRAWWarp bool) {
	threads := k.ThreadsPerBlock()
	shared := k.SharedBytes
	if shared == 0 {
		shared = 4 // placeholder so Size() accounting stays sane
	}
	logical := blockID
	shadow := false
	if n := k.NumBlocks(); k.ShadowGrid && blockID >= n {
		logical, shadow = blockID-n, true
	}
	b := &blockCtx{id: logical, shared: mem.NewShared(shared), threads: threads, shadow: shadow}
	nWarps := (threads + s.cfg.WarpSize - 1) / s.cfg.WarpSize
	for wi := 0; wi < nWarps; wi++ {
		width := s.cfg.WarpSize
		if rem := threads - wi*s.cfg.WarpSize; rem < width {
			width = rem
		}
		wc := &warpCtx{
			warp:  simt.NewWarp(wi, blockID, width),
			regs:  exec.NewRegs(k.Prog.NumRegs),
			block: b,
			gid:   s.gpu.nextWarpGID(),
		}
		s.fillSpecials(k, wc, logical, wi, width)
		// Fig. 8b tracks "warp1 thread 32" = warp index 1. Fall back to
		// warp 0 for single-warp blocks (the paper does this for SHA).
		if trackRAWWarp && !shadow && logical == s.gpu.trackBlock && wi == s.gpu.trackWarp {
			wc.tracked = true
		}
		b.warps = append(b.warps, wc)
		s.warps = append(s.warps, wc)
	}
	b.live = len(b.warps)
	s.blocks = append(s.blocks, b)
	s.threadsIn += threads
}

func (s *sm) fillSpecials(k *Kernel, wc *warpCtx, blockID, warpIdx, width int) {
	var tidx, tidy, ntidx, ntidy, ctaidx, ctaidy, nctaidx, nctaidy, laneid, warpid [32]uint32
	bx := blockID % k.GridX
	by := blockID / k.GridX
	for lane := 0; lane < width; lane++ {
		t := warpIdx*s.cfg.WarpSize + lane
		tidx[lane] = uint32(t % k.BlockX)
		tidy[lane] = uint32(t / k.BlockX)
		ntidx[lane] = uint32(k.BlockX)
		ntidy[lane] = uint32(k.BlockY)
		ctaidx[lane] = uint32(bx)
		ctaidy[lane] = uint32(by)
		nctaidx[lane] = uint32(k.GridX)
		nctaidy[lane] = uint32(k.GridY)
		laneid[lane] = uint32(lane)
		warpid[lane] = uint32(warpIdx)
	}
	wc.regs.SetSpecial(isa.RegTIDX, tidx)
	wc.regs.SetSpecial(isa.RegTIDY, tidy)
	wc.regs.SetSpecial(isa.RegNTIDX, ntidx)
	wc.regs.SetSpecial(isa.RegNTIDY, ntidy)
	wc.regs.SetSpecial(isa.RegCTAIDX, ctaidx)
	wc.regs.SetSpecial(isa.RegCTAIDY, ctaidy)
	wc.regs.SetSpecial(isa.RegNCTAIDX, nctaidx)
	wc.regs.SetSpecial(isa.RegNCTAIDY, nctaidy)
	wc.regs.SetSpecial(isa.RegLANEID, laneid)
	wc.regs.SetSpecial(isa.RegWARPID, warpid)
}

// issuable reports whether wc can issue at cycle now on scheduler sched.
func (s *sm) issuable(wc *warpCtx, k *Kernel, sched int, now int64) bool {
	if wc.warp.Done() || wc.warp.AtBarrier {
		return false
	}
	in := &k.Prog.Instrs[wc.warp.PC()]
	switch in.Op.Unit() {
	case isa.UnitSP:
		if s.spBusy[sched] > now {
			return false
		}
	case isa.UnitSFU:
		if s.sfuBusy > now {
			return false
		}
	case isa.UnitLDST:
		if s.ldstBusy > now {
			return false
		}
	case isa.UnitCTRL:
		// Control ops need no execution-unit port; issue eligibility is
		// decided by the DRAM/barrier checks below alone.
	}
	// Global accesses stall while the DRAM bandwidth bucket is in debt
	// (cache hits never create debt, so they pass freely).
	if in.Op.Unit() == isa.UnitLDST && in.Space != isa.SpaceShared && in.Space != isa.SpaceParam &&
		s.gpu.dramTokens < 0 {
		return false
	}
	// Scoreboard: RAW on sources, WAW on destination.
	for _, r := range in.Reads() {
		if wc.ready[r] > now {
			return false
		}
	}
	if d, ok := in.Writes(); ok && wc.ready[d] > now {
		return false
	}
	return true
}

// regBankConflictCycles counts the extra register-fetch cycles for an
// instruction whose source registers collide in the same bank. Each
// bank holds one 128-bit entry per register name, interleaved
// register-number mod banks-per-cluster (after [8]); distinct registers
// in the same bank serialize their fetches, which the operand buffer
// hides from the pipeline but which still delays the result.
func (s *sm) regBankConflictCycles(in *isa.Instr) int64 {
	if !s.cfg.ModelRegBankConflicts {
		return 0
	}
	banks := s.cfg.RegBanksPerCluster()
	var perBank [32]int8
	var seen [isa.MaxGPR]bool
	extra := int64(0)
	n := in.Op.NumSrc()
	for i := 0; i < n; i++ {
		o := in.Src[i]
		if o.IsImm || o.Reg.IsSpecial() {
			continue
		}
		r := int(o.Reg)
		if seen[r] {
			continue // same register feeds multiple operands: one fetch
		}
		seen[r] = true
		b := r % banks
		if perBank[b] > 0 {
			extra++
		}
		perBank[b]++
	}
	return extra
}

// latency returns the writeback latency for an executed record.
// Memory costs (latency, DRAM bandwidth, cache effects) are handled by
// memCosts at issue time.
func (s *sm) latency(rec *exec.Record) int64 {
	switch {
	case rec.Unit == isa.UnitCTRL:
		return 1
	case rec.Unit == isa.UnitSFU:
		return int64(s.cfg.SFULat)
	default:
		return int64(s.cfg.SPLat)
	}
}

// segBases returns the distinct coalesced segment base addresses of a
// memory record's active lanes.
func (s *sm) segBases(rec *exec.Record) []uint32 {
	segBytes := uint32(s.cfg.CoalesceBytes)
	var bases []uint32
	for lane := 0; lane < 32; lane++ {
		if !rec.Executing.Has(lane) {
			continue
		}
		b := rec.Addrs[lane] / segBytes * segBytes
		dup := false
		for _, x := range bases {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			bases = append(bases, b)
		}
	}
	return bases
}

// memCosts computes the writeback latency and LD/ST occupancy of a
// memory record, probing the L1/L2 hierarchy and charging DRAM
// bandwidth for the segments that reach memory.
func (s *sm) memCosts(rec *exec.Record) (lat, occ int64) {
	switch rec.Instr.Space {
	case isa.SpaceShared, isa.SpaceParam:
		return int64(s.cfg.SharedLat + rec.BankSer - 1), int64(rec.BankSer)
	case isa.SpaceGlobal, isa.SpaceLocal:
		// Fall out to the cache/DRAM path below.
	}

	bases := s.segBases(rec)
	occ = int64(len(bases))
	if occ < 1 {
		occ = 1
	}
	isAtom := rec.Instr.Op == isa.OpATOM
	if isAtom {
		occ = int64(rec.Executing.Count()) // atomics serialize per lane
		if occ < 1 {
			occ = 1
		}
	}

	if s.l1 == nil { // caches off: flat DRAM latency
		s.gpu.dramTokens -= float64(len(bases))
		lat = int64(s.cfg.GlobalLat) + occ - 1
		if isAtom {
			lat += int64(rec.Executing.Count())
		}
		return lat, occ
	}

	worst := int64(s.cfg.L1Lat)
	dramSegs := 0
	for _, b := range bases {
		switch {
		case isAtom:
			// Fermi performs atomics in the L2: always at least L2
			// latency; allocate there, never in L1.
			if s.gpu.l2.Access(b) {
				s.st.L2Hits++
			} else {
				s.st.L2Misses++
				dramSegs++
				if int64(s.cfg.GlobalLat) > worst {
					worst = int64(s.cfg.GlobalLat)
				}
			}
			if int64(s.cfg.L2Lat) > worst {
				worst = int64(s.cfg.L2Lat)
			}
			s.l1.Invalidate(b)
		case rec.IsStore:
			// Write-through, no-allocate: probe L2 without charging
			// DRAM on hit; drop any stale L1 copy.
			s.l1.Invalidate(b)
			if s.gpu.l2.Access(b) {
				s.st.L2Hits++
			} else {
				s.st.L2Misses++
				dramSegs++
			}
		default: // load
			if s.l1.Access(b) {
				s.st.L1Hits++
				continue
			}
			s.st.L1Misses++
			if s.gpu.l2.Access(b) {
				s.st.L2Hits++
				if int64(s.cfg.L2Lat) > worst {
					worst = int64(s.cfg.L2Lat)
				}
			} else {
				s.st.L2Misses++
				dramSegs++
				if int64(s.cfg.GlobalLat) > worst {
					worst = int64(s.cfg.GlobalLat)
				}
			}
		}
	}
	s.gpu.dramTokens -= float64(dramSegs)
	lat = worst + occ - 1
	if isAtom {
		lat += int64(rec.Executing.Count())
	}
	return lat, occ
}

// tick advances the SM by one cycle. Returns true if any work remains.
func (s *sm) tick(k *Kernel, now int64) bool {
	if s.err != nil {
		return false
	}
	busy := len(s.warps) > 0
	if busy {
		s.lastBusy = now
	}
	if s.stall > 0 {
		s.stall--
		s.met.StallCycles.Inc()
		return busy
	}
	issued := 0
	for sched := 0; sched < s.cfg.NumSchedulers; sched++ {
		if wc := s.pick(k, sched, now); wc != nil {
			s.issue(wc, k, sched, now)
			issued++
			if s.err != nil {
				return false
			}
		}
	}
	if issued == 0 {
		// Nothing issuable: the execution units are idle this cycle.
		s.st.IdleIssueSlots++
		s.met.IdleCycles.Inc()
		s.engine.IdleCycle(now)
	} else {
		s.met.IssueCycles.Inc()
	}
	return busy
}

// pick selects the next warp for one scheduler. With two schedulers,
// warps are partitioned by parity of their position in dispatch order
// (Fermi-style even/odd warp ownership).
func (s *sm) pick(k *Kernel, sched int, now int64) *warpCtx {
	n := len(s.warps)
	if n == 0 {
		return nil
	}
	mine := func(i int) bool {
		return s.cfg.NumSchedulers == 1 || i%s.cfg.NumSchedulers == sched
	}
	if s.cfg.Sched == arch.SchedGTO {
		// Greedy: stick with the last warp while it can issue.
		if g := s.greedy[sched]; g >= 0 && g < n && mine(g) && s.issuable(s.warps[g], k, sched, now) {
			return s.warps[g]
		}
		// Then oldest: scan in dispatch (age) order.
		for i := 0; i < n; i++ {
			if mine(i) && s.issuable(s.warps[i], k, sched, now) {
				s.greedy[sched] = i
				return s.warps[i]
			}
		}
		s.greedy[sched] = -1
		return nil
	}
	// Loose round-robin.
	for i := 0; i < n; i++ {
		idx := (s.rr[sched] + i) % n
		if mine(idx) && s.issuable(s.warps[idx], k, sched, now) {
			s.rr[sched] = idx + 1
			return s.warps[idx]
		}
	}
	return nil
}

func (s *sm) issue(wc *warpCtx, k *Kernel, sched int, now int64) {
	var perturb exec.Perturb
	if s.gpu.fault != nil {
		perturb = func(thread int, unit isa.UnitClass, golden uint32) uint32 {
			lane := s.cfg.LaneForThread(thread)
			v, changed := s.gpu.fault.Perturb(s.id, now, lane, unit, golden)
			if changed {
				s.st.FaultsActivated++
			}
			return v
		}
	}
	ctx := &exec.Context{Global: s.gpu.Mem, Shared: wc.block.shared, Params: k.Params, Shadow: wc.block.shadow, Metrics: s.emet}
	rec, err := exec.Step(ctx, k.Prog, wc.warp, wc.regs, s.cfg.CoalesceBytes, s.cfg.NumSharedBanks, perturb)
	if err != nil {
		s.err = fmt.Errorf("sm%d block %d warp %d: %w", s.id, wc.block.id, wc.warp.ID, err)
		return
	}

	if s.gpu.tracer != nil {
		s.gpu.tracer.Emit(trace.Event{
			Cycle: now, SM: s.id, WarpGID: wc.gid,
			BlockID: wc.block.id, WarpID: wc.warp.ID,
			PC: rec.PC, Op: rec.Instr.Op, Unit: rec.Unit,
			Executing: rec.Executing, Divergent: rec.Divergent,
			Stores: rec.IsStore,
		})
	}

	// --- statistics taps ---
	s.st.WarpInstrs++
	s.met.WarpInstrs.Inc()
	nExec := rec.Executing.Count()
	s.st.ThreadInstrs += int64(nExec)
	if rec.Unit != isa.UnitCTRL {
		if nExec > 0 {
			s.st.ActiveHist[stats.ActiveBucket(nExec)]++
		}
		s.st.TypeHist[rec.Unit]++
		s.st.Runs.Observe(rec.Unit)
		s.st.UnitOps[rec.Unit]++
		// Bank-level accounting: a 128-bit bank entry feeds a whole
		// cluster, so register traffic is counted per warp instruction.
		s.st.RegFileReads += int64(rec.Instr.Op.NumSrc())
		if rec.DstValid {
			s.st.RegFileWrites++
		}
		if rec.IsMem {
			switch rec.Instr.Space {
			case isa.SpaceShared, isa.SpaceParam:
				s.st.SharedAccesses++
			case isa.SpaceGlobal, isa.SpaceLocal:
				s.st.GlobalAccesses++
			}
		}
	}
	if wc.tracked && s.st.RAW != nil && rec.Unit != isa.UnitCTRL {
		for _, r := range rec.Instr.Reads() {
			s.st.RAW.Read(r, now)
		}
		if rec.DstValid {
			s.st.RAW.Write(rec.Dst, now)
		}
	}

	// --- timing updates ---
	var lat, occ int64
	if rec.IsMem {
		lat, occ = s.memCosts(rec)
	} else {
		lat, occ = s.latency(rec), 1
	}
	switch rec.Unit {
	case isa.UnitSP:
		s.spBusy[sched] = now + occ
	case isa.UnitSFU:
		s.sfuBusy = now + occ
	case isa.UnitLDST:
		s.ldstBusy = now + occ
	case isa.UnitCTRL:
		// Control ops occupy no unit.
	}
	if rec.DstValid {
		if rec.Unit != isa.UnitCTRL {
			if rb := s.regBankConflictCycles(rec.Instr); rb > 0 {
				lat += rb
				s.st.RegBankConflicts += rb
			}
		}
		wc.ready[rec.Dst] = now + lat
	}

	// --- control events ---
	switch {
	case rec.IsBarrier:
		wc.block.atBarrier++
		s.maybeReleaseBarrier(wc.block)
	case rec.IsExit && wc.warp.Done():
		wc.block.live--
		s.maybeReleaseBarrier(wc.block)
		if wc.block.live == 0 {
			s.retire(wc.block)
		}
	}

	// --- Warped-DMR hook ---
	phys := physMask(s.cfg, rec.Executing)
	s.stall += s.engine.Issue(core.IssueInfo{
		Rec:     rec,
		WarpGID: wc.gid,
		Phys:    phys,
		Width:   wc.warp.Width(),
		Cycle:   now,
	})
}

// physMask converts a logical thread-slot mask to a physical-lane mask
// under the configured thread->core mapping.
func physMask(cfg arch.Config, logical simt.Mask) simt.Mask {
	if cfg.Mapping == arch.MapLinear {
		return logical
	}
	var out simt.Mask
	for t := 0; t < 32; t++ {
		if logical.Has(t) {
			out |= 1 << uint(cfg.LaneForThread(t))
		}
	}
	return out
}

func (s *sm) maybeReleaseBarrier(b *blockCtx) {
	if b.atBarrier == 0 || b.atBarrier < b.live {
		return
	}
	for _, wc := range b.warps {
		wc.warp.AtBarrier = false
	}
	b.atBarrier = 0
}

// retire removes a finished block and its warps from the SM, rolling
// each warp's lifetime control-flow tallies into the launch metrics.
func (s *sm) retire(b *blockCtx) {
	for _, wc := range b.warps {
		s.met.StackDepth.Observe(int64(wc.warp.MaxStackDepth()))
		s.met.DivergeEvents.Add(wc.warp.Diverges())
	}
	kept := s.blocks[:0]
	for _, x := range s.blocks {
		if x != b {
			kept = append(kept, x)
		}
	}
	s.blocks = kept
	wk := s.warps[:0]
	for _, wc := range s.warps {
		if wc.block != b {
			wk = append(wk, wc)
		}
	}
	s.warps = wk
	s.threadsIn -= b.threads
	s.gpu.blocksDone++
	for i := range s.rr {
		if s.rr[i] >= len(s.warps) {
			s.rr[i] = 0
		}
		s.greedy[i] = -1
	}
}
