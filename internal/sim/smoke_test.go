package sim

import (
	"testing"

	"warped/internal/arch"
	"warped/internal/asm"
	"warped/internal/mem"
)

// vecAddSrc computes out[i] = a[i] + b[i] for i < n.
const vecAddSrc = `
.kernel vecadd
	mov   r0, %ctaid.x
	mov   r1, %ntid.x
	imad  r2, r0, r1, %tid.x      ; global thread id
	ld.param r3, [0]              ; n
	setp.ge.s32 p0, r2, r3
	@p0 exit
	ld.param r4, [4]              ; a base
	ld.param r5, [8]              ; b base
	ld.param r6, [12]             ; out base
	shl   r7, r2, 2
	iadd  r8, r4, r7
	ld.global r9, [r8]
	iadd  r8, r5, r7
	ld.global r10, [r8]
	iadd  r9, r9, r10
	iadd  r8, r6, r7
	st.global [r8], r9
	exit
`

func TestVecAddEndToEnd(t *testing.T) {
	prog, err := asm.Assemble(vecAddSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.PaperConfig()
	g, err := New(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000 // not a multiple of 32 or of the block size
	a := g.Mem.MustAlloc(4 * n)
	b := g.Mem.MustAlloc(4 * n)
	out := g.Mem.MustAlloc(4 * n)
	av := make([]uint32, n)
	bv := make([]uint32, n)
	for i := range av {
		av[i] = uint32(i * 3)
		bv[i] = uint32(1000 - i)
	}
	if err := g.Mem.WriteWords(a, av); err != nil {
		t.Fatal(err)
	}
	if err := g.Mem.WriteWords(b, bv); err != nil {
		t.Fatal(err)
	}
	k := &Kernel{
		Prog: prog, GridX: 16, GridY: 1, BlockX: 64, BlockY: 1,
		Params: mem.NewParams(n, a, b, out),
	}
	st, err := g.Launch(k, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Mem.ReadWords(out, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if want := av[i] + bv[i]; got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
	if st.Cycles <= 0 || st.WarpInstrs <= 0 {
		t.Fatalf("implausible stats: cycles=%d instrs=%d", st.Cycles, st.WarpInstrs)
	}
	t.Logf("vecadd: %d cycles, %d warp instrs, IPC %.2f", st.Cycles, st.WarpInstrs, st.IPC())
}

// divergeSrc exercises if/else divergence: the first 16 threads add
// 100, the rest add 200, then all store tid+delta. The split is
// contiguous, the common divergence shape round-robin cluster mapping
// is designed for.
const divergeSrc = `
.kernel diverge
	mov  r0, %tid.x
	setp.lt.s32 p0, r0, 16
	@p0 bra LOW, JOIN
	iadd r2, r0, 200
	bra JOIN
LOW:
	iadd r2, r0, 100
JOIN:
	ld.param r3, [0]
	shl  r4, r0, 2
	iadd r4, r3, r4
	st.global [r4], r2
	exit
`

func TestDivergenceEndToEnd(t *testing.T) {
	prog, err := asm.Assemble(divergeSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.PaperConfig()
	cfg.DMR = arch.DMRFull
	cfg.Mapping = arch.MapClusterRR
	g, err := New(cfg, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Mem.MustAlloc(4 * 32)
	k := &Kernel{
		Prog: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
		Params: mem.NewParams(out),
	}
	st, err := g.Launch(k, LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Mem.ReadWords(out, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := uint32(i + 200)
		if i < 16 {
			want = uint32(i + 100)
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if st.VerifiedIntra == 0 {
		t.Error("divergent kernel should trigger intra-warp DMR verifications")
	}
	if st.Coverage() <= 0 || st.Coverage() > 1 {
		t.Errorf("coverage out of range: %v", st.Coverage())
	}
	if st.FaultsDetected != 0 {
		t.Errorf("fault-free run flagged %d errors", st.FaultsDetected)
	}
}

// barrierSrc uses shared memory + barrier to reverse 64 values per block.
const barrierSrc = `
.kernel reverse
	mov  r0, %tid.x
	shl  r1, r0, 2
	st.shared [r1], r0          ; sh[tid] = tid
	bar.sync
	mov  r2, %ntid.x
	isub r3, r2, r0
	isub r3, r3, 1              ; ntid-1-tid
	shl  r4, r3, 2
	ld.shared r5, [r4]          ; sh[rev]
	ld.param r6, [0]
	mov  r7, %ctaid.x
	imad r8, r7, r2, r0         ; global index
	shl  r8, r8, 2
	iadd r8, r6, r8
	st.global [r8], r5
	exit
`

func TestBarrierEndToEnd(t *testing.T) {
	prog, err := asm.Assemble(barrierSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(arch.WarpedDMRConfig(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const bs, nb = 64, 4
	out := g.Mem.MustAlloc(4 * bs * nb)
	k := &Kernel{
		Prog: prog, GridX: nb, GridY: 1, BlockX: bs, BlockY: 1,
		SharedBytes: 4 * bs,
		Params:      mem.NewParams(out),
	}
	if _, err := g.Launch(k, LaunchOpts{}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Mem.ReadWords(out, bs*nb)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < nb; b++ {
		for i := 0; i < bs; i++ {
			if want := uint32(bs - 1 - i); got[b*bs+i] != want {
				t.Fatalf("block %d out[%d] = %d, want %d", b, i, got[b*bs+i], want)
			}
		}
	}
}
