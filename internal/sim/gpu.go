package sim

import (
	"context"
	"errors"
	"fmt"

	"warped/internal/arch"
	"warped/internal/cache"
	"warped/internal/core"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/metrics"
	"warped/internal/stats"
	"warped/internal/trace"
)

// ErrErrorDetected is wrapped by Launch's error when StopOnError is set
// and a Warped-DMR comparator flagged a mismatch.
var ErrErrorDetected = errors.New("sim: execution error detected by Warped-DMR")

// Kernel is one launchable grid: a program plus launch geometry,
// parameters, and per-block shared memory demand.
type Kernel struct {
	Prog        *isa.Program
	GridX       int
	GridY       int
	BlockX      int
	BlockY      int
	SharedBytes int
	Params      *mem.Params

	// ShadowGrid doubles the grid for the R-Thread baseline: blocks
	// N..2N-1 re-execute block (i-N)'s work with global side effects
	// suppressed, modelling redundant thread blocks that write to a
	// disjoint shadow output.
	ShadowGrid bool
}

// NumBlocks returns the number of thread blocks in the grid.
func (k *Kernel) NumBlocks() int { return k.GridX * k.GridY }

// ThreadsPerBlock returns the flattened block size.
func (k *Kernel) ThreadsPerBlock() int { return k.BlockX * k.BlockY }

// TotalThreads returns the total thread count of the launch.
func (k *Kernel) TotalThreads() int { return k.NumBlocks() * k.ThreadsPerBlock() }

// Validate reports the first launch-configuration error.
func (k *Kernel) Validate(cfg arch.Config) error {
	switch {
	case k.Prog == nil || len(k.Prog.Instrs) == 0:
		return fmt.Errorf("sim: kernel has no program")
	case k.GridX <= 0 || k.GridY <= 0:
		return fmt.Errorf("sim: bad grid %dx%d", k.GridX, k.GridY)
	case k.BlockX <= 0 || k.BlockY <= 0:
		return fmt.Errorf("sim: bad block %dx%d", k.BlockX, k.BlockY)
	case k.ThreadsPerBlock() > cfg.MaxThreadsPerSM:
		return fmt.Errorf("sim: block of %d threads exceeds SM capacity %d",
			k.ThreadsPerBlock(), cfg.MaxThreadsPerSM)
	case k.Prog.BlockDimX > 0 && (k.BlockX > k.Prog.BlockDimX || k.BlockY > k.Prog.BlockDimY):
		// .block declares the worst-case geometry the kernel was
		// verified against; launching wider would outrun the static
		// bounds/race analysis (smaller launches are fine).
		return fmt.Errorf("sim: launch block %dx%d exceeds the program's declared .block %dx%d",
			k.BlockX, k.BlockY, k.Prog.BlockDimX, k.Prog.BlockDimY)
	case k.SharedBytes > cfg.SharedMemBytes:
		return fmt.Errorf("sim: block shared memory %d exceeds SM capacity %d",
			k.SharedBytes, cfg.SharedMemBytes)
	case k.Prog.NumRegs > isa.MaxGPR:
		return fmt.Errorf("sim: program uses %d registers, max %d", k.Prog.NumRegs, isa.MaxGPR)
	}
	return nil
}

// LaunchOpts are per-launch options.
type LaunchOpts struct {
	Fault     FaultHook             // nil for fault-free runs
	OnError   func(core.ErrorEvent) // called on each detected mismatch
	TrackRAW  bool                  // enable Fig. 8b RAW-distance tracking
	MaxCycles int64                 // watchdog; 0 means the default (200M)

	// StopOnError aborts the launch at the first detected mismatch —
	// the paper's §3.1 permanent-fault handling ("stop running the
	// program and raise an exception to the system"). The returned
	// error wraps ErrErrorDetected.
	StopOnError bool

	// StopAfterErrors aborts once this many mismatches have been
	// flagged (0 = never). Useful for diagnosis runs that need several
	// events to isolate a faulty lane before raising the exception.
	StopAfterErrors int

	// Trace receives one event per issued warp instruction (nil = off).
	Trace trace.Sink

	// Metrics, when non-nil, receives the launch's operational counters
	// (see docs/OBSERVABILITY.md for the metric contract). The registry
	// is safe to share across concurrent launches: counters are atomic
	// and accumulate across everything wired to it. A nil registry costs
	// one predictable branch per bump site.
	Metrics *metrics.Registry
}

// GPU is the whole simulated chip: global memory plus NumSMs SMs.
type GPU struct {
	Cfg arch.Config
	Mem *mem.Global

	now        int64
	dramTokens float64      // leaky-bucket DRAM bandwidth credit
	l2         *cache.Cache // chip-wide L2 (nil when caches are off)
	fault      FaultHook
	tracer     trace.Sink
	warpGIDs   int
	blocksDone int
	trackBlock int
	trackWarp  int
}

// New builds a GPU with the given configuration and a global memory of
// memBytes (64 MB if zero).
func New(cfg arch.Config, memBytes int) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if memBytes <= 0 {
		memBytes = 64 << 20
	}
	g := &GPU{Cfg: cfg, Mem: mem.NewGlobal(memBytes)}
	if cfg.ModelCaches {
		g.l2 = cache.New(cfg.L2)
	}
	return g, nil
}

func (g *GPU) nextWarpGID() int {
	g.warpGIDs++
	return g.warpGIDs
}

// cancelCheckInterval is how many simulated cycles pass between
// context-cancellation checks inside the Launch loop: coarse enough to
// stay off the hot path, fine enough that cancelling a hung or
// long-running kernel returns in well under a kernel's full runtime.
const cancelCheckInterval = 4096

// Launch runs one kernel to completion and returns its statistics.
// The GPU's global memory persists across launches, so multi-kernel
// workloads (e.g. BFS iterations, FFT stages) can chain launches.
func (g *GPU) Launch(k *Kernel, opts LaunchOpts) (*stats.Stats, error) {
	return g.LaunchContext(context.Background(), k, opts)
}

// LaunchContext is Launch with cooperative cancellation: the simulation
// loop checks ctx every cancelCheckInterval simulated cycles and aborts
// with a ctx.Err()-wrapped error when it fires, so hung kernels are
// interruptible. A nil ctx behaves like context.Background().
func (g *GPU) LaunchContext(ctx context.Context, k *Kernel, opts LaunchOpts) (*stats.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: launch aborted before cycle 0: %w", err)
	}
	if err := k.Validate(g.Cfg); err != nil {
		return nil, err
	}
	if k.Params == nil {
		k.Params = mem.NewParams()
	}
	g.fault = opts.Fault
	g.tracer = opts.Trace
	g.blocksDone = 0
	g.now = 0
	g.dramTokens = 0
	if g.l2 != nil {
		g.l2.Reset() // caches are cold at each kernel launch
	}

	total := &stats.Stats{}
	perSM := make([]*stats.Stats, g.Cfg.NumSMs)
	sms := make([]*sm, g.Cfg.NumSMs)
	var firstError *core.ErrorEvent
	errorCount := 0
	threshold := opts.StopAfterErrors
	if opts.StopOnError && (threshold == 0 || threshold > 1) {
		threshold = 1
	}
	onError := opts.OnError
	if threshold > 0 {
		user := opts.OnError
		onError = func(ev core.ErrorEvent) {
			errorCount++
			if firstError == nil && errorCount >= threshold {
				e := ev
				firstError = &e
			}
			if user != nil {
				user(ev)
			}
		}
	}
	// Pre-decode the program once per launch: every SM executes the same
	// flat stream of bound step/compute functions, so the per-cycle issue
	// path never consults the isa-level instruction encoding.
	comp, err := exec.Compile(k.Prog)
	if err != nil {
		return nil, err
	}
	// Resolve instrument sets once per launch; all SMs of the launch
	// share them (bumps are atomic). With opts.Metrics nil these are
	// all-nil no-op sets, so the hot path pays only the nil branch.
	simMet := metrics.ForSim(opts.Metrics)
	execMet := metrics.ForExec(opts.Metrics)
	dmrMet := metrics.ForDMR(opts.Metrics, g.Cfg.WarpSize, g.Cfg.ClusterSize)
	// Resolve the protection policy once per launch, against the real
	// kernel name (NewEngine compiled it with an empty name). PolicyFull
	// compiles to nil, leaving the issue path byte-identical.
	pol := core.CompilePolicy(g.Cfg.Policy, k.Prog.Name)
	for i := range sms {
		sms[i] = newSM(i, g, comp, opts.Fault, onError)
		sms[i].met = simMet
		sms[i].machine.SetMetrics(execMet)
		sms[i].engine.SetMetrics(dmrMet)
		sms[i].engine.SetPolicy(pol)
		perSM[i] = sms[i].stats()
	}
	if opts.TrackRAW {
		// Paper Fig. 8b tracks warp 1 ("thread 32"), falling back to
		// warp 0 when blocks have a single warp.
		g.trackBlock = 0
		if k.ThreadsPerBlock() > g.Cfg.WarpSize {
			g.trackWarp = 1
		} else {
			g.trackWarp = 0
		}
		perSM[0].RAW = stats.NewRAWTracker(200)
	}

	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 200_000_000
	}

	numBlocks := k.NumBlocks()
	if k.ShadowGrid {
		numBlocks *= 2
	}
	nextBlock := 0
	for g.blocksDone < numBlocks {
		// Dispatch pending blocks breadth-first: one block per SM per
		// pass, like the hardware work distributor, so load spreads
		// across the chip instead of saturating low-numbered SMs.
		for assigned := true; assigned && nextBlock < numBlocks; {
			assigned = false
			for _, s := range sms {
				if nextBlock >= numBlocks {
					break
				}
				if s.canHost(k) {
					s.host(k, nextBlock, opts.TrackRAW)
					nextBlock++
					assigned = true
				}
			}
		}
		g.dramTokens += g.Cfg.DRAMSegPerCyc
		if cap := 8 * g.Cfg.DRAMSegPerCyc; g.dramTokens > cap {
			g.dramTokens = cap // bound burst credit
		}
		anyBusy := false
		for _, s := range sms {
			if s.tick(g.now) {
				anyBusy = true
			}
			if s.err != nil {
				return nil, s.err
			}
		}
		g.now++
		if firstError != nil {
			return nil, fmt.Errorf("%w: %d mismatches; last: SM %d lane %d vs %d at pc %d (cycle %d): %08x != %08x",
				ErrErrorDetected, errorCount, firstError.SM, firstError.OrigLane, firstError.VerifLane,
				firstError.PC, g.now, firstError.Original, firstError.Redundant)
		}
		if !anyBusy && g.blocksDone < numBlocks && nextBlock >= numBlocks {
			return nil, fmt.Errorf("sim: deadlock at cycle %d (%d/%d blocks done)",
				g.now, g.blocksDone, numBlocks)
		}
		if g.now >= maxCycles {
			return nil, fmt.Errorf("sim: watchdog expired at %d cycles (%d/%d blocks done)",
				g.now, g.blocksDone, numBlocks)
		}
		if g.now%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: launch cancelled at cycle %d (%d/%d blocks done): %w",
					g.now, g.blocksDone, numBlocks, err)
			}
		}
	}

	// Drain DMR state: replay anything still buffered, on now-idle units.
	end := g.now
	for i, s := range sms {
		drained := int64(s.engine.Drain(s.lastBusy + 1))
		fin := s.lastBusy + 1 + drained
		if fin > end {
			end = fin
		}
		perSM[i].Cycles = fin
		perSM[i].SMCycles = []int64{fin}
		perSM[i].Runs.Flush()
	}
	for _, ps := range perSM {
		total.Merge(ps)
	}
	total.Cycles = end
	return total, nil
}
