package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"warped/internal/arch"
	"warped/internal/asm"
	"warped/internal/exec"
	"warped/internal/mem"
)

// cfgen emits random structured programs in assembly text: straight-line
// ALU blocks, tid-dependent if/else diamonds (divergent), and bounded
// loops with tid-dependent trip counts (divergent backward branches).
type cfgen struct {
	rng    *rand.Rand
	b      strings.Builder
	labels int
	depth  int
}

func (g *cfgen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

// aluBlock mutates r1..r5 with a few random ops (r0 holds tid and is
// never clobbered; r6/r7 are loop counters/temps).
func (g *cfgen) aluBlock() {
	ops := []string{"iadd", "isub", "imul", "and", "or", "xor", "imin", "imax"}
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		op := ops[g.rng.Intn(len(ops))]
		d := 1 + g.rng.Intn(5)
		a := g.rng.Intn(6)
		if g.rng.Intn(3) == 0 {
			fmt.Fprintf(&g.b, "\t%s r%d, r%d, %d\n", op, d, a, g.rng.Intn(1000))
		} else {
			fmt.Fprintf(&g.b, "\t%s r%d, r%d, r%d\n", op, d, a, g.rng.Intn(6))
		}
	}
}

// ifElse emits a divergent diamond predicated on a tid comparison.
func (g *cfgen) ifElse() {
	then := g.label("T")
	join := g.label("J")
	// Condition: (tid & mask) cmp k — divergent for most draws.
	mask := []int{1, 3, 7, 15, 31}[g.rng.Intn(5)]
	k := g.rng.Intn(mask + 1)
	cmp := []string{"lt", "le", "eq", "ne", "gt", "ge"}[g.rng.Intn(6)]
	fmt.Fprintf(&g.b, "\tand r6, r0, %d\n", mask)
	fmt.Fprintf(&g.b, "\tsetp.%s.s32 p0, r6, %d\n", cmp, k)
	fmt.Fprintf(&g.b, "\t@p0 bra %s, %s\n", then, join)
	g.body()
	fmt.Fprintf(&g.b, "\tbra %s\n%s:\n", join, then)
	g.body()
	fmt.Fprintf(&g.b, "%s:\n", join)
}

// loop emits a bounded loop whose trip count depends on tid (1..4+),
// exercising divergent backward branches.
func (g *cfgen) loop() {
	top := g.label("L")
	fmt.Fprintf(&g.b, "\tand r7, r0, 3\n")
	fmt.Fprintf(&g.b, "\tiadd r7, r7, 1\n") // 1..4 iterations
	fmt.Fprintf(&g.b, "%s:\n", top)
	g.aluBlock()
	fmt.Fprintf(&g.b, "\tisub r7, r7, 1\n")
	fmt.Fprintf(&g.b, "\tsetp.gt.s32 p1, r7, 0\n")
	fmt.Fprintf(&g.b, "\t@p1 bra %s\n", top)
}

// body emits a random construct, recursing with bounded depth.
func (g *cfgen) body() {
	g.depth++
	defer func() { g.depth-- }()
	switch {
	case g.depth > 3:
		g.aluBlock()
	default:
		switch g.rng.Intn(4) {
		case 0:
			g.ifElse()
		case 1:
			g.loop()
		default:
			g.aluBlock()
		}
	}
}

// generate builds the full program: seed registers from tid, run a few
// random constructs, store r1..r5 to out[tid*8...].
func (g *cfgen) generate(outBase uint32) string {
	g.b.Reset()
	g.b.WriteString(".kernel fuzz\n")
	g.b.WriteString("\tmov r0, %tid.x\n")
	for r := 1; r <= 5; r++ {
		fmt.Fprintf(&g.b, "\timad r%d, r0, %d, %d\n", r, g.rng.Intn(50)+1, g.rng.Intn(100))
	}
	n := 2 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.body()
	}
	fmt.Fprintf(&g.b, "\tshl r6, r0, 5\n")
	fmt.Fprintf(&g.b, "\tiadd r6, r6, %d\n", outBase)
	for r := 1; r <= 5; r++ {
		fmt.Fprintf(&g.b, "\tst.global [r6+%d], r%d\n", 4*(r-1), r)
	}
	g.b.WriteString("\texit\n")
	return g.b.String()
}

// TestFuzzControlFlowDifferential: for many random structured programs,
// the full pipeline (with DMR active) produces exactly the results of a
// plain functional walk. This is the strongest correctness net over the
// divergence stack, the scheduler, and the DMR engine's no-side-effects
// guarantee.
func TestFuzzControlFlowDifferential(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		gen := &cfgen{rng: rng}
		const outBase = 4096
		src := gen.generate(outBase)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v\n%s", trial, err, src)
		}

		// Reference functional walk.
		refCtx := exec.Mem{Global: mem.NewGlobal(1 << 16), Shared: mem.NewShared(64), Params: mem.NewParams()}
		if err := refWalk(prog, refCtx); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}

		// Full pipeline under Warped-DMR.
		cfg := arch.WarpedDMRConfig()
		cfg.NumSMs = 2
		g, err := New(cfg, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		st, err := g.Launch(&Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1}, LaunchOpts{})
		if err != nil {
			t.Fatalf("trial %d: launch: %v\n%s", trial, err, src)
		}
		if st.FaultsDetected != 0 {
			t.Fatalf("trial %d: fault-free run flagged %d errors\n%s", trial, st.FaultsDetected, src)
		}

		want, _ := refCtx.Global.ReadWords(outBase, 32*8)
		got, _ := g.Mem.ReadWords(outBase, 32*8)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: word %d = %#x, want %#x\n%s", trial, i, got[i], want[i], src)
			}
		}
	}
}
