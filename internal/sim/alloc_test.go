package sim

import (
	"testing"

	"warped/internal/arch"
	"warped/internal/isa"
)

// loopKernel builds a kernel whose single warp runs a uniform counted
// loop of the given trip count, touching the SP, SFU, LD/ST and branch
// paths each iteration.
func loopKernel(trips uint32) *Kernel {
	p := &isa.Program{Name: "alloc-loop", NumRegs: 8, Labels: map[string]int{}}
	add := func(in isa.Instr) {
		if in.Pred == (isa.PredRef{}) {
			in.Pred = isa.AlwaysPred()
		}
		p.Instrs = append(p.Instrs, in)
	}
	add(isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.ImmOp(0)}}) // i = 0
	add(isa.Instr{Op: isa.OpSHL, Dst: 1, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX), isa.ImmOp(2)}})
	add(isa.Instr{Op: isa.OpIADD, Dst: 1, Src: [3]isa.Operand{isa.RegOp(1), isa.ImmOp(256)}})
	// loop body (pc 3..7)
	add(isa.Instr{Op: isa.OpIADD, Dst: 0, Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(1)}})
	add(isa.Instr{Op: isa.OpST, Space: isa.SpaceGlobal, Src: [3]isa.Operand{isa.RegOp(1), isa.RegOp(0)}})
	add(isa.Instr{Op: isa.OpLD, Space: isa.SpaceGlobal, Dst: 2, Src: [3]isa.Operand{isa.RegOp(1)}})
	add(isa.Instr{Op: isa.OpFRCP, Dst: 3, Src: [3]isa.Operand{isa.RegOp(2)}})
	add(isa.Instr{Op: isa.OpSETP, Cmp: isa.CmpLT, CmpTy: isa.CmpU32, PDst: 1,
		Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(trips)}})
	add(isa.Instr{Op: isa.OpBRA, Target: 3, Pred: isa.PredRef{Index: 1}})
	add(isa.Instr{Op: isa.OpEXIT})
	return &Kernel{Prog: p, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1}
}

// TestLaunchSteadyStateZeroAllocs pins the issue/execute/DMR hot loop
// at zero allocations per instruction: two launches that differ only in
// loop trip count must allocate exactly the same, so every allocation
// is per-launch setup and none is per-instruction.
func TestLaunchSteadyStateZeroAllocs(t *testing.T) {
	perLaunch := func(trips uint32, policy arch.Policy) float64 {
		cfg := arch.WarpedDMRConfig()
		cfg.NumSMs = 1
		cfg.Policy = policy
		g, err := New(cfg, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		k := loopKernel(trips)
		return testing.AllocsPerRun(10, func() {
			if _, err := g.Launch(k, LaunchOpts{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	// The protection-policy decision must stay allocation-free too: the
	// guard runs once with the default Full policy and once with a
	// non-trivial selective policy armed (docs/POLICIES.md).
	policies := map[string]arch.Policy{
		"full":           {},
		"warpsample:1/2": {Kind: arch.PolicyWarpSample, SampleN: 2},
		// The shape vulnerability synthesis emits: a multi-range pcset
		// whose per-issue decision is a linear scan, not a lookup table.
		"pcset": {Kind: arch.PolicyPCSet, PCRanges: [][2]int{{0, 2}, {5, 9}}},
	}
	for name, p := range policies {
		short := perLaunch(64, p)
		long := perLaunch(1024, p)
		// ~4800 extra warp instructions between the two runs; any per-
		// instruction allocation shows up as thousands of extra objects.
		if delta := long - short; delta > 1 {
			t.Errorf("policy %s: longer kernel allocates %.1f more objects per launch (short %.1f, long %.1f); issue path is allocating per instruction",
				name, delta, short, long)
		}
	}
}
