package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"warped/internal/arch"
	"warped/internal/exec"
	"warped/internal/isa"
	"warped/internal/mem"
	"warped/internal/simt"
)

// genProgram builds a random straight-line data-flow program over 8
// registers, ending with stores of every register to global memory.
// Operand values stay in ranges where float operations cannot produce
// NaN-vs-NaN comparison surprises.
func genProgram(rng *rand.Rand, outBase uint32) *isa.Program {
	ops := []isa.Opcode{
		isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpIMAD, isa.OpIMIN, isa.OpIMAX,
		isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSHL, isa.OpSHR, isa.OpSAR,
		isa.OpMOV, isa.OpNOT,
	}
	p := &isa.Program{Name: "rand", NumRegs: 12, Labels: map[string]int{}}
	add := func(in isa.Instr) {
		in.Pred = isa.AlwaysPred()
		p.Instrs = append(p.Instrs, in)
	}
	// Seed registers with lane-dependent values.
	add(isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}})
	for r := isa.Reg(1); r < 8; r++ {
		add(isa.Instr{Op: isa.OpIMAD, Dst: r,
			Src: [3]isa.Operand{isa.RegOp(0), isa.ImmOp(uint32(rng.Intn(97) + 1)), isa.ImmOp(rng.Uint32() % 1000)}})
	}
	n := 10 + rng.Intn(30)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		in := isa.Instr{Op: op, Dst: isa.Reg(rng.Intn(8))}
		for s := 0; s < op.NumSrc(); s++ {
			if rng.Intn(4) == 0 {
				in.Src[s] = isa.ImmOp(rng.Uint32() % 4096)
			} else {
				in.Src[s] = isa.RegOp(isa.Reg(rng.Intn(8)))
			}
		}
		add(in)
	}
	// Store every register: out[tid*8 + r] = rN.
	add(isa.Instr{Op: isa.OpSHL, Dst: 9, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX), isa.ImmOp(5)}})
	add(isa.Instr{Op: isa.OpIADD, Dst: 9, Src: [3]isa.Operand{isa.RegOp(9), isa.ImmOp(outBase)}})
	for r := isa.Reg(0); r < 8; r++ {
		add(isa.Instr{Op: isa.OpST, Space: isa.SpaceGlobal, Off: int32(4 * r),
			Src: [3]isa.Operand{isa.RegOp(9), isa.RegOp(r)}})
	}
	add(isa.Instr{Op: isa.OpEXIT})
	return p
}

// refWalk functionally executes prog on one 32-wide warp (tid = lane)
// over the given memories — the architectural reference the timed
// pipeline is compared against.
func refWalk(prog *isa.Program, mm exec.Mem) error {
	c, err := exec.Compile(prog)
	if err != nil {
		return err
	}
	m := exec.NewMachine(c, exec.Opts{SegBytes: 128, Banks: 32})
	r := exec.NewRegs(prog.NumRegs)
	var tid [32]uint32
	for i := range tid {
		tid[i] = uint32(i)
	}
	r.SetSpecial(isa.RegTIDX, tid)
	ws := &exec.WarpState{Ctl: simt.NewWarp(0, 0, 32), Regs: r, Mem: mm}
	for steps := 0; !ws.Ctl.Done(); steps++ {
		if steps > 200000 {
			return fmt.Errorf("reference walk did not terminate")
		}
		if _, err := m.Step(ws); err != nil {
			return err
		}
	}
	return nil
}

// TestDifferentialPipelineVsFunctional: the full timing pipeline
// (scheduler, scoreboard, units, DMR engine) must produce exactly the
// architectural results of a plain functional walk of the same program.
func TestDifferentialPipelineVsFunctional(t *testing.T) {
	f := func(seed int64, withDMR bool) bool {
		rng := rand.New(rand.NewSource(seed))
		outBase := uint32(4096)
		prog := genProgram(rng, outBase)

		// Reference: direct functional execution, no timing.
		refCtx := exec.Mem{
			Global: mem.NewGlobal(1 << 16),
			Shared: mem.NewShared(64),
			Params: mem.NewParams(),
		}
		if err := refWalk(prog, refCtx); err != nil {
			t.Log(err)
			return false
		}

		// Full pipeline.
		cfg := arch.PaperConfig()
		cfg.NumSMs = 2
		if withDMR {
			cfg.DMR = arch.DMRFull
			cfg.Mapping = arch.MapClusterRR
		}
		g, err := New(cfg, 1<<16)
		if err != nil {
			t.Log(err)
			return false
		}
		k := &Kernel{Prog: prog, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1}
		st, err := g.Launch(k, LaunchOpts{})
		if err != nil {
			t.Log(err)
			return false
		}
		if withDMR && st.FaultsDetected != 0 {
			t.Logf("seed %d: fault-free run flagged errors", seed)
			return false
		}

		want, err := refCtx.Global.ReadWords(outBase, 32*8)
		if err != nil {
			t.Log(err)
			return false
		}
		got, err := g.Mem.ReadWords(outBase, 32*8)
		if err != nil {
			t.Log(err)
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				t.Logf("seed %d dmr=%v: word %d = %#x, want %#x", seed, withDMR, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialFloatOps does the same with float arithmetic in safe
// ranges (no NaNs/infs), confirming bit-identical float behaviour
// between pipeline and functional runs.
func TestDifferentialFloatOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		outBase := uint32(4096)
		p := &isa.Program{Name: "fr", NumRegs: 8, Labels: map[string]int{}}
		add := func(in isa.Instr) {
			in.Pred = isa.AlwaysPred()
			p.Instrs = append(p.Instrs, in)
		}
		add(isa.Instr{Op: isa.OpMOV, Dst: 0, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX)}})
		add(isa.Instr{Op: isa.OpI2F, Dst: 1, Src: [3]isa.Operand{isa.RegOp(0)}})
		fops := []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFFMA, isa.OpFMIN, isa.OpFMAX, isa.OpFSQRT, isa.OpFRCP}
		for i := 0; i < 12; i++ {
			op := fops[rng.Intn(len(fops))]
			in := isa.Instr{Op: op, Dst: isa.Reg(1 + rng.Intn(4))}
			for s := 0; s < op.NumSrc(); s++ {
				if rng.Intn(3) == 0 {
					in.Src[s] = isa.ImmOp(math.Float32bits(rng.Float32() + 0.5))
				} else {
					in.Src[s] = isa.RegOp(isa.Reg(1 + rng.Intn(4)))
				}
			}
			add(in)
		}
		add(isa.Instr{Op: isa.OpSHL, Dst: 6, Src: [3]isa.Operand{isa.RegOp(isa.RegTIDX), isa.ImmOp(4)}})
		add(isa.Instr{Op: isa.OpIADD, Dst: 6, Src: [3]isa.Operand{isa.RegOp(6), isa.ImmOp(outBase)}})
		for r := isa.Reg(1); r < 5; r++ {
			add(isa.Instr{Op: isa.OpST, Space: isa.SpaceGlobal, Off: int32(4 * (r - 1)),
				Src: [3]isa.Operand{isa.RegOp(6), isa.RegOp(r)}})
		}
		add(isa.Instr{Op: isa.OpEXIT})

		refCtx := exec.Mem{Global: mem.NewGlobal(1 << 16), Shared: mem.NewShared(64), Params: mem.NewParams()}
		if err := refWalk(p, refCtx); err != nil {
			t.Fatal(err)
		}
		g, err := New(arch.WarpedDMRConfig(), 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Launch(&Kernel{Prog: p, GridX: 1, GridY: 1, BlockX: 32, BlockY: 1}, LaunchOpts{}); err != nil {
			t.Fatal(err)
		}
		want, _ := refCtx.Global.ReadWords(outBase, 32*4)
		got, _ := g.Mem.ReadWords(outBase, 32*4)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d word %d: %#x != %#x", trial, i, got[i], want[i])
			}
		}
	}
}
