// Package xfer models host<->device transfer time for the Fig. 10
// end-to-end comparison. The paper measured real PCIe transfers with
// the CUDA timer API; we substitute an analytical model — a fixed
// per-call launch latency plus bytes over sustained PCIe bandwidth —
// which preserves what Fig. 10 needs: R-Naive pays the transfer twice
// in both directions, R-Thread copies twice the output back, and
// DMTR/Warped-DMR pay exactly the original transfer cost.
package xfer

// Model is a PCIe-like transfer cost model.
type Model struct {
	BandwidthBps float64 // sustained bytes per second
	LatencyS     float64 // fixed per-call overhead in seconds
}

// PCIe2x16 returns a PCIe Gen2 x16 model (Fermi-era): ~5.2 GB/s
// sustained with ~15 us per-call overhead.
func PCIe2x16() Model {
	return Model{BandwidthBps: 5.2e9, LatencyS: 15e-6}
}

// Time returns the seconds needed to move n bytes in one call.
// Zero-byte transfers cost nothing (the call is skipped).
func (m Model) Time(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return m.LatencyS + float64(n)/m.BandwidthBps
}

// RoundTrip returns the seconds for an input upload plus output
// download of the given sizes.
func (m Model) RoundTrip(inBytes, outBytes int64) float64 {
	return m.Time(inBytes) + m.Time(outBytes)
}
