package xfer

import "testing"

func TestTimeModel(t *testing.T) {
	m := PCIe2x16()
	if m.Time(0) != 0 {
		t.Error("zero bytes must cost nothing")
	}
	small := m.Time(4)
	if small < m.LatencyS {
		t.Error("every call pays the fixed latency")
	}
	big := m.Time(100 << 20)
	if big <= small {
		t.Error("more bytes must take longer")
	}
	// 5.2 GB/s: a 5.2 GB transfer takes ~1 s plus latency.
	if got := m.Time(5_200_000_000); got < 1.0 || got > 1.01 {
		t.Errorf("5.2GB at 5.2GB/s = %v s, want ~1", got)
	}
}

func TestRoundTrip(t *testing.T) {
	m := Model{BandwidthBps: 1e9, LatencyS: 1e-5}
	rt := m.RoundTrip(1e6, 2e6)
	want := m.Time(1e6) + m.Time(2e6)
	if rt != want {
		t.Errorf("RoundTrip = %v, want %v", rt, want)
	}
	if m.RoundTrip(0, 0) != 0 {
		t.Error("empty round trip should be free")
	}
}
