package metrics

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an http.Handler exposing the standard Go debug
// surface plus the registry:
//
//	/debug/pprof/...   net/http/pprof profiles (heap, cpu, goroutine, …)
//	/debug/vars        expvar JSON (includes registries passed to Publish)
//	/debug/metrics     the registry snapshot as JSON Lines
//
// The handler serves live data: every request re-snapshots r, so a
// long campaign can be watched while it runs. The three CLIs mount
// this handler when given the -pprof flag.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = r.Snapshot().WriteJSONL(w)
	})
	return mux
}

var publishMu sync.Mutex
var published = map[string]bool{}

// Publish exposes the registry under name in the process-global expvar
// map, so GET /debug/vars includes a live snapshot of it. Unlike
// expvar.Publish, calling Publish twice with the same name is safe:
// the second call is ignored (expvar registrations are process-global
// and cannot be replaced).
func Publish(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
