package metrics

import "fmt"

// Bucket bounds shared by the instrument sets below. They are part of
// the observability contract (docs/OBSERVABILITY.md): changing them
// changes the shape of every exported histogram.
var (
	// ReplayQDepthBounds buckets ReplayQ occupancy observed at each
	// enqueue. The paper's recommended queue holds 10 entries, so the
	// bounds straddle that operating point.
	ReplayQDepthBounds = []int64{0, 1, 2, 4, 6, 8, 10, 12, 16, 24}

	// LatencyCycleBounds buckets cycle-denominated latencies
	// (verification lag, detection latency).
	LatencyCycleBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

	// StackDepthBounds buckets per-warp peak reconvergence-stack depth.
	StackDepthBounds = []int64{1, 2, 3, 4, 6, 8, 12, 16}

	// LatencyMSBounds buckets wall-clock latencies in milliseconds
	// (runner task and whole-workload run latency).
	LatencyMSBounds = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
)

// Sim is the pre-resolved instrument set of the timing simulator (one
// per launch; shared by all SMs of the launch). A Sim built from a nil
// registry has nil instruments throughout, so every bump no-ops.
type Sim struct {
	// IssueCycles counts SM-cycles in which at least one instruction
	// issued; IdleCycles counts SM-cycles in which nothing was issuable;
	// StallCycles counts SM-cycles swallowed by DMR-induced stalls.
	IssueCycles *Counter
	IdleCycles  *Counter
	StallCycles *Counter

	// WarpInstrs counts issued warp instructions (primary executions
	// only, like stats.Stats.WarpInstrs).
	WarpInstrs *Counter

	// StackDepth histograms each warp's peak reconvergence-stack depth,
	// observed when the warp finishes.
	StackDepth *Histogram

	// DivergeEvents counts warp branch divergences (path splits),
	// observed when the warp finishes.
	DivergeEvents *Counter
}

// ForSim resolves the simulator instrument set against r (nil-safe).
func ForSim(r *Registry) *Sim {
	return &Sim{
		IssueCycles:   r.Counter("sim.issue_cycles_total"),
		IdleCycles:    r.Counter("sim.idle_issue_cycles_total"),
		StallCycles:   r.Counter("sim.dmr_stall_cycles_total"),
		WarpInstrs:    r.Counter("sim.warp_instrs_total"),
		StackDepth:    r.Histogram("simt.reconv_stack_depth", StackDepthBounds),
		DivergeEvents: r.Counter("simt.diverge_events_total"),
	}
}

// Exec is the pre-resolved instrument set of the functional executor,
// carried on exec.Context. A zero Exec (all-nil fields) is valid and
// no-ops.
type Exec struct {
	// DivergentBranches and UniformBranches classify executed BRA
	// instructions; SharedBankExtra accumulates the extra serialization
	// cycles of shared-memory bank conflicts (degree-1 accesses add 0).
	DivergentBranches *Counter
	UniformBranches   *Counter
	SharedBankExtra   *Counter
}

// ForExec resolves the executor instrument set against r (nil-safe).
func ForExec(r *Registry) *Exec {
	return &Exec{
		DivergentBranches: r.Counter("exec.divergent_branches_total"),
		UniformBranches:   r.Counter("exec.uniform_branches_total"),
		SharedBankExtra:   r.Counter("exec.shared_bank_extra_cycles_total"),
	}
}

// DMR is the pre-resolved instrument set of the Warped-DMR engine.
// Per-cluster and per-lane counter slices are always allocated (with
// nil entries when the registry is nil), so index-then-bump is safe
// without length checks.
type DMR struct {
	// ReplayQ occupancy: Depth is the live gauge (with high-water mark),
	// DepthHist the distribution observed at each enqueue, Enqueued the
	// total entries buffered, OverflowStalls the issue-stall cycles
	// charged because the queue was full, RAWFlushStalls the stall
	// cycles charged to verify a RAW-depended entry early.
	ReplayQDepth     *Gauge
	ReplayQDepthHist *Histogram
	ReplayQEnqueued  *Counter
	OverflowStalls   *Counter
	RAWFlushStalls   *Counter

	// Replay scheduling outcomes: replays co-executed for free on a
	// unit idled by an instruction-type switch, and replays drained on
	// idle issue cycles (or at end-of-kernel drain).
	CoexecReplays    *Counter
	IdleDrainReplays *Counter

	// Verification volume, in thread-instructions, split by mechanism.
	IntraVerified *Counter
	InterVerified *Counter

	// Selective-protection outcomes, in thread-instructions: eligible
	// instructions the configured policy admitted for verification vs
	// skipped (docs/POLICIES.md). Under the default Full policy every
	// eligible instruction lands in PolicyProtected.
	PolicyProtected *Counter
	PolicySkipped   *Counter

	// RFU pairing: Pairings counts idle->active lane assignments,
	// CoveredLanes counts distinct active lanes that received at least
	// one verifier, MissedLanes counts active lanes of partial warps
	// that no idle lane covered (missed intra-warp opportunities).
	// ClusterPairings attributes pairings to the RFU cluster (by
	// cluster index within the warp) that performed them.
	RFUPairings     *Counter
	RFUCoveredLanes *Counter
	RFUMissedLanes  *Counter
	ClusterPairings []*Counter

	// Lane-shuffle coverage: per-physical-lane counts of redundant
	// executions performed by that lane during temporal replays.
	ShuffleLaneUsed []*Counter

	// Latency distributions: VerifyLatency is issue-to-verification lag
	// for every temporal replay; DetectionLatency is issue-to-detection
	// lag for flagged mismatches only. Detections counts mismatches.
	VerifyLatency    *Histogram
	DetectionLatency *Histogram
	Detections       *Counter
}

// ForDMR resolves the DMR instrument set against r (nil-safe) for a
// machine with the given warp width and SIMT cluster size.
func ForDMR(r *Registry, warpSize, clusterSize int) *DMR {
	if warpSize <= 0 {
		warpSize = 32
	}
	if clusterSize <= 0 {
		clusterSize = warpSize
	}
	clusters := (warpSize + clusterSize - 1) / clusterSize
	m := &DMR{
		ReplayQDepth:     r.Gauge("dmr.replayq.depth"),
		ReplayQDepthHist: r.Histogram("dmr.replayq.depth_hist", ReplayQDepthBounds),
		ReplayQEnqueued:  r.Counter("dmr.replayq.enqueued_total"),
		OverflowStalls:   r.Counter("dmr.replayq.overflow_stall_cycles_total"),
		RAWFlushStalls:   r.Counter("dmr.replayq.raw_flush_stall_cycles_total"),
		CoexecReplays:    r.Counter("dmr.replay.coexec_total"),
		IdleDrainReplays: r.Counter("dmr.replay.idle_drain_total"),
		IntraVerified:    r.Counter("dmr.verified.intra_thread_instrs_total"),
		InterVerified:    r.Counter("dmr.verified.inter_thread_instrs_total"),
		PolicyProtected:  r.Counter("dmr.policy.protected_instrs_total"),
		PolicySkipped:    r.Counter("dmr.policy.skipped_instrs_total"),
		RFUPairings:      r.Counter("dmr.rfu.pairings_total"),
		RFUCoveredLanes:  r.Counter("dmr.rfu.covered_lanes_total"),
		RFUMissedLanes:   r.Counter("dmr.rfu.missed_lanes_total"),
		ClusterPairings:  make([]*Counter, clusters),
		ShuffleLaneUsed:  make([]*Counter, warpSize),
		VerifyLatency:    r.Histogram("dmr.verify_latency_cycles", LatencyCycleBounds),
		DetectionLatency: r.Histogram("dmr.detection_latency_cycles", LatencyCycleBounds),
		Detections:       r.Counter("dmr.detections_total"),
	}
	for i := range m.ClusterPairings {
		m.ClusterPairings[i] = r.Counter(fmt.Sprintf("dmr.rfu.cluster.%02d.pairings_total", i))
	}
	for i := range m.ShuffleLaneUsed {
		m.ShuffleLaneUsed[i] = r.Counter(fmt.Sprintf("dmr.shuffle.lane.%02d.replays_total", i))
	}
	return m
}

// Vuln is the pre-resolved instrument set of the static fault-
// vulnerability (ACE) analysis. The analysis itself is pure; the CLIs
// and harnesses that drive it observe each kernel's classification
// here. A Vuln built from a nil registry no-ops throughout.
type Vuln struct {
	// Analyses counts kernels analyzed; the three PC counters accumulate
	// their per-class totals over eligible (DMR-verifiable) PCs.
	Analyses   *Counter
	ACEPCs     *Counter
	UnACEPCs   *Counter
	UnknownPCs *Counter

	// Synthesized counts protection policies derived from unACE PC
	// lists that actually skip something (a full policy is not counted).
	Synthesized *Counter
}

// ForVuln resolves the vulnerability-analysis instrument set against r
// (nil-safe).
func ForVuln(r *Registry) *Vuln {
	return &Vuln{
		Analyses:    r.Counter("dmr.vuln.analyses_total"),
		ACEPCs:      r.Counter("dmr.vuln.ace_pcs_total"),
		UnACEPCs:    r.Counter("dmr.vuln.unace_pcs_total"),
		UnknownPCs:  r.Counter("dmr.vuln.unknown_pcs_total"),
		Synthesized: r.Counter("dmr.vuln.policies_synthesized_total"),
	}
}

// Run is the pre-resolved instrument set of the run-orchestration
// worker pool (internal/runner). A Run built from a nil registry
// no-ops throughout.
type Run struct {
	// Task lifecycle counters. TasksFailed includes panicking tasks;
	// TaskPanics counts the panicking subset.
	TasksStarted   *Counter
	TasksCompleted *Counter
	TasksFailed    *Counter
	TaskPanics     *Counter

	// WorkersBusy tracks how many workers are executing a task right
	// now; its high-water mark is the peak pool utilization.
	WorkersBusy *Gauge

	// QueueDepth tracks how many accepted tasks are waiting for a
	// worker (persistent Pool only; Map hands indices out directly and
	// never moves this gauge). Its high-water mark is the deepest
	// backlog the pool absorbed without rejecting work.
	QueueDepth *Gauge

	// TaskLatencyMS histograms per-task wall-clock latency. Wall-clock
	// values vary run to run: they are operational data, not part of
	// the deterministic simulation output.
	TaskLatencyMS *Histogram
}

// ForRunner resolves the worker-pool instrument set against r
// (nil-safe).
func ForRunner(r *Registry) *Run {
	return &Run{
		TasksStarted:   r.Counter("runner.tasks_started_total"),
		TasksCompleted: r.Counter("runner.tasks_completed_total"),
		TasksFailed:    r.Counter("runner.tasks_failed_total"),
		TaskPanics:     r.Counter("runner.task_panics_total"),
		WorkersBusy:    r.Gauge("runner.workers_busy"),
		QueueDepth:     r.Gauge("runner.queue_depth"),
		TaskLatencyMS:  r.Histogram("runner.task_latency_ms", LatencyMSBounds),
	}
}

// Store is the pre-resolved instrument set of the durable
// content-addressed result store (internal/store). A Store built from
// a nil registry no-ops throughout.
type Store struct {
	// Read outcomes. A hit returns a verified payload; a miss means the
	// key has no entry; a corruption is an entry that failed hash
	// re-verification on read and was dropped (the caller sees a miss).
	Hits        *Counter
	Misses      *Counter
	Corruptions *Counter

	// Writes counts payloads durably committed (write-then-rename);
	// GCEvictions counts entries deleted by the size-bound GC.
	Writes      *Counter
	GCEvictions *Counter

	// Entries and Bytes gauge the store's current footprint (payload
	// files only; in-flight temp files are not counted).
	Entries *Gauge
	Bytes   *Gauge
}

// ForStore resolves the durable-store instrument set against r
// (nil-safe).
func ForStore(r *Registry) *Store {
	return &Store{
		Hits:        r.Counter("store.hits_total"),
		Misses:      r.Counter("store.misses_total"),
		Corruptions: r.Counter("store.corrupt_entries_total"),
		Writes:      r.Counter("store.writes_total"),
		GCEvictions: r.Counter("store.gc_evictions_total"),
		Entries:     r.Gauge("store.entries"),
		Bytes:       r.Gauge("store.bytes"),
	}
}

// Cluster is the pre-resolved instrument set of the coordinator
// (internal/cluster, cmd/warpd -coordinator). Per-worker dispatch
// counters are always allocated (with nil entries when the registry is
// nil), indexed by the worker's position in the configured pool. A
// Cluster built from a nil registry no-ops throughout.
type Cluster struct {
	// RingNodes gauges the healthy workers currently on the hash ring;
	// its high-water mark is the largest ring the coordinator held.
	RingNodes *Gauge

	// Submission outcomes, mirroring the service.* vocabulary at the
	// cluster tier: accepted submissions, in-memory result hits,
	// durable-store hits, cluster-wide coalesces onto an in-flight
	// dispatch, and dispatches actually sent to a worker.
	JobsSubmitted *Counter
	MemHits       *Counter
	StoreHits     *Counter
	Coalesced     *Counter
	Dispatches    *Counter

	// Failure handling. HedgesFired counts extra dispatches launched by
	// the latency hedge; Redispatches counts jobs re-sent to the next
	// ring node after a draining (503), budget-exhausted (429) or dead
	// worker; JobsFailed counts jobs that exhausted every candidate.
	HedgesFired  *Counter
	Redispatches *Counter
	JobsFailed   *Counter

	// Health tracking: workers ejected from / readmitted to the ring by
	// the Ready prober (or ejected synchronously by a failed dispatch).
	Ejections    *Counter
	Readmissions *Counter

	// WorkerDispatches attributes dispatches (hedges included) to the
	// worker that received them, by configured pool index.
	WorkerDispatches []*Counter
}

// ForCluster resolves the coordinator instrument set against r
// (nil-safe) for a pool of numWorkers configured workers.
func ForCluster(r *Registry, numWorkers int) *Cluster {
	if numWorkers < 0 {
		numWorkers = 0
	}
	m := &Cluster{
		RingNodes:        r.Gauge("cluster.ring_nodes"),
		JobsSubmitted:    r.Counter("cluster.jobs_submitted_total"),
		MemHits:          r.Counter("cluster.cache_hits_total"),
		StoreHits:        r.Counter("cluster.store_hits_total"),
		Coalesced:        r.Counter("cluster.coalesced_total"),
		Dispatches:       r.Counter("cluster.dispatches_total"),
		HedgesFired:      r.Counter("cluster.hedges_fired_total"),
		Redispatches:     r.Counter("cluster.redispatches_total"),
		JobsFailed:       r.Counter("cluster.jobs_failed_total"),
		Ejections:        r.Counter("cluster.worker_ejections_total"),
		Readmissions:     r.Counter("cluster.worker_readmissions_total"),
		WorkerDispatches: make([]*Counter, numWorkers),
	}
	for i := range m.WorkerDispatches {
		m.WorkerDispatches[i] = r.Counter(fmt.Sprintf("cluster.worker.%02d.dispatches_total", i))
	}
	return m
}

// Service is the pre-resolved instrument set of the simulation-as-a-
// service daemon (internal/service, cmd/warpd). A Service built from a
// nil registry no-ops throughout.
type Service struct {
	// Submission outcomes. JobsSubmitted counts every accepted POST
	// (including ones answered from the cache or coalesced onto an
	// in-flight job); JobsRejected counts submissions turned away by
	// admission control (429) or during drain (503).
	JobsSubmitted *Counter
	JobsRejected  *Counter

	// Execution outcomes: simulations actually started on the pool, and
	// the subset that failed (assembly/validation/simulation errors and
	// isolated panics). executed - failed = results now cacheable.
	JobsExecuted *Counter
	JobsFailed   *Counter

	// Content-addressed cache behaviour. A hit serves a completed result
	// without simulating; a coalesce attaches a duplicate submission to
	// an in-flight execution; a miss schedules a fresh execution;
	// evictions count completed entries dropped by the LRU bound.
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheCoalesced *Counter
	CacheEvictions *Counter

	// CacheEntries gauges the completed results currently retained.
	CacheEntries *Gauge

	// JobLatencyMS histograms queued-to-finished wall-clock latency of
	// executed jobs (cache hits are not observed: they take no queue
	// time). Operational data, never part of the simulation output.
	JobLatencyMS *Histogram
}

// ForService resolves the service instrument set against r (nil-safe).
func ForService(r *Registry) *Service {
	return &Service{
		JobsSubmitted:  r.Counter("service.jobs_submitted_total"),
		JobsRejected:   r.Counter("service.jobs_rejected_total"),
		JobsExecuted:   r.Counter("service.jobs_executed_total"),
		JobsFailed:     r.Counter("service.jobs_failed_total"),
		CacheHits:      r.Counter("service.cache_hits_total"),
		CacheMisses:    r.Counter("service.cache_misses_total"),
		CacheCoalesced: r.Counter("service.cache_coalesced_total"),
		CacheEvictions: r.Counter("service.cache_evictions_total"),
		CacheEntries:   r.Gauge("service.cache_entries"),
		JobLatencyMS:   r.Histogram("service.job_latency_ms", LatencyMSBounds),
	}
}
