// Package metrics is the observability layer of the simulator: a
// low-overhead registry of named counters, gauges, and fixed-bucket
// histograms that the pipeline (SMs, the Warped-DMR engine, the
// functional executor, the run orchestrator) bumps while it works.
//
// The design goals, in priority order:
//
//   - Zero cost when unconfigured. Every instrument method is nil-safe:
//     a nil *Counter, *Gauge, or *Histogram no-ops behind a single
//     branch, and a nil *Registry hands out nil instruments. Code can
//     therefore instrument unconditionally and let the caller decide
//     whether metrics exist at all.
//   - Zero allocation on the hot path. Instruments are resolved by name
//     once, at setup time; Add/Set/Observe touch only atomics.
//   - Safe for concurrent use. Counters and gauges are single atomics;
//     histograms use one atomic per bucket. A registry shared across
//     the worker pool of Runner.RunMany or experiments.Engine
//     aggregates correctly without locks on the hot path.
//
// The full set of metric names emitted by the simulator, their units,
// and exactly when each one moves is documented in
// docs/OBSERVABILITY.md; that file is the compatibility contract for
// anything parsing Snapshot output.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic counter. The zero value
// is ready to use; all methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is permitted but makes the counter no longer
// monotonic; the simulator never does that).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that also tracks its
// high-water mark. The zero value is ready to use; all methods are safe
// on a nil receiver.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Set replaces the gauge value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raiseHigh(v)
}

// Add shifts the gauge by d, updating the high-water mark.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.raiseHigh(g.v.Add(d))
}

func (g *Gauge) raiseHigh(v int64) {
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the largest value the gauge has held (0 on a nil
// receiver, and 0 if the gauge never rose above zero).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Histogram counts observations into fixed buckets chosen at
// registration time. Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i] (the first bucket counts v <=
// bounds[0]); one extra overflow bucket counts v > bounds[len-1].
// All methods are safe on a nil receiver.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

// newHistogram builds a histogram over ascending bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of instruments. Instruments are
// created on first lookup and shared thereafter; lookups take a lock
// and are meant for setup time, not the hot path. The zero value is
// NOT ready to use — call New — but every method is safe on a nil
// receiver and returns nil instruments, which in turn no-op, so an
// unconfigured pipeline pays one branch per bump site and nothing else.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use. Later lookups of the same name
// return the existing histogram and ignore bounds. Returns nil (a
// no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeValue is the exported state of one gauge.
type GaugeValue struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// Bucket is one exported histogram bucket: the count of observations v
// with prev < v <= LE, where prev is the preceding bucket's LE.
// Counts are per-bucket, not cumulative. The overflow bucket is
// reported with Inf set instead of LE.
type Bucket struct {
	LE    int64 `json:"le"`
	Inf   bool  `json:"inf,omitempty"`
	Count int64 `json:"count"`
}

// HistogramValue is the exported state of one histogram.
type HistogramValue struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// It is plain data: safe to serialize, compare, or keep after the run.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]GaugeValue     `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Snapshot captures the current value of every instrument. On a nil
// registry it returns an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeValue{},
		Histograms: map[string]HistogramValue{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), High: g.High()}
	}
	for name, h := range r.hists {
		hv := HistogramValue{Count: h.count.Load(), Sum: h.sum.Load()}
		for i, b := range h.bounds {
			hv.Buckets = append(hv.Buckets, Bucket{LE: b, Count: h.counts[i].Load()})
		}
		hv.Buckets = append(hv.Buckets, Bucket{Inf: true, Count: h.counts[len(h.bounds)].Load()})
		s.Histograms[name] = hv
	}
	return s
}

// sortedKeys returns the keys of a map in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the snapshot as aligned text, one instrument per
// line, sorted by name within each kind.
func (s Snapshot) String() string {
	var b strings.Builder
	width := 0
	for _, m := range []func() []string{
		func() []string { return sortedKeys(s.Counters) },
		func() []string { return sortedKeys(s.Gauges) },
		func() []string { return sortedKeys(s.Histograms) },
	} {
		for _, k := range m() {
			if len(k) > width {
				width = len(k)
			}
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter    %-*s  %d\n", width, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "gauge      %-*s  %d (high %d)\n", width, name, g.Value, g.High)
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "histogram  %-*s  count=%d sum=%d ", width, name, h.Count, h.Sum)
		for i, bk := range h.Buckets {
			if i > 0 {
				b.WriteByte(' ')
			}
			if bk.Inf {
				fmt.Fprintf(&b, "le=+Inf:%d", bk.Count)
			} else {
				fmt.Fprintf(&b, "le=%d:%d", bk.LE, bk.Count)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteJSONL writes the snapshot as JSON Lines: one self-describing
// object per instrument, sorted by kind then name, so the output is
// byte-stable for a given set of values. Each line carries "name" and
// "type" ("counter", "gauge", or "histogram") plus the kind-specific
// fields documented in docs/OBSERVABILITY.md.
func (s Snapshot) WriteJSONL(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, `{"name":%q,"type":"counter","value":%d}`+"\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		if _, err := fmt.Fprintf(w, `{"name":%q,"type":"gauge","value":%d,"high":%d}`+"\n", name, g.Value, g.High); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		var bk strings.Builder
		for i, b := range h.Buckets {
			if i > 0 {
				bk.WriteByte(',')
			}
			if b.Inf {
				fmt.Fprintf(&bk, `{"le":"+Inf","count":%d}`, b.Count)
			} else {
				fmt.Fprintf(&bk, `{"le":%d,"count":%d}`, b.LE, b.Count)
			}
		}
		if _, err := fmt.Fprintf(w, `{"name":%q,"type":"histogram","count":%d,"sum":%d,"buckets":[%s]}`+"\n",
			name, h.Count, h.Sum, bk.String()); err != nil {
			return err
		}
	}
	return nil
}
