package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises the unconfigured path: a nil registry hands
// out nil instruments, and every operation on them must be a no-op, not
// a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || g.High() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := snap.WriteJSONL(io.Discard); err != nil {
		t.Fatalf("empty snapshot JSONL: %v", err)
	}

	sims := ForSim(nil)
	sims.IssueCycles.Inc()
	sims.StackDepth.Observe(2)
	d := ForDMR(nil, 32, 4)
	d.ReplayQDepth.Set(4)
	d.ClusterPairings[7].Inc()
	d.ShuffleLaneUsed[31].Inc()
	ForExec(nil).DivergentBranches.Inc()
	ForRunner(nil).WorkersBusy.Add(1)
}

// TestRegistryRace hammers one shared registry from many goroutines —
// the RunMany scenario where concurrent SMs bump shared counters — and
// checks the totals. Run under -race (CI does).
func TestRegistryRace(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve by name inside the goroutine: lookup must also be
			// concurrency-safe, not just the bump.
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist", []int64{10, 100})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 200))
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared.gauge").Value(); got != 0 {
		t.Errorf("gauge settled at %d, want 0", got)
	}
	if high := r.Gauge("shared.gauge").High(); high < 1 || high > workers {
		t.Errorf("gauge high-water %d outside [1,%d]", high, workers)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramBuckets pins the bucket-boundary semantics: bucket i
// counts prev < v <= bounds[i], with a final overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		name   string
		bounds []int64
		obs    []int64
		want   []int64 // per-bucket counts incl. overflow
		sum    int64
	}{
		{
			name:   "boundaries inclusive",
			bounds: []int64{0, 1, 4},
			obs:    []int64{0, 1, 4},
			want:   []int64{1, 1, 1, 0},
			sum:    5,
		},
		{
			name:   "one past each boundary",
			bounds: []int64{0, 1, 4},
			obs:    []int64{1, 2, 5},
			want:   []int64{0, 1, 1, 1},
			sum:    8,
		},
		{
			name:   "negative goes to first bucket",
			bounds: []int64{0, 10},
			obs:    []int64{-3},
			want:   []int64{1, 0, 0},
			sum:    -3,
		},
		{
			name:   "all overflow",
			bounds: []int64{1},
			obs:    []int64{2, 3, 1000},
			want:   []int64{0, 3},
			sum:    1005,
		},
		{
			name:   "no bounds: everything overflows",
			bounds: nil,
			obs:    []int64{1, 2},
			want:   []int64{2},
			sum:    3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if h.Count() != int64(len(tc.obs)) {
				t.Errorf("count = %d, want %d", h.Count(), len(tc.obs))
			}
			if h.Sum() != tc.sum {
				t.Errorf("sum = %d, want %d", h.Sum(), tc.sum)
			}
			for i, want := range tc.want {
				if got := h.counts[i].Load(); got != want {
					t.Errorf("bucket %d = %d, want %d", i, got, want)
				}
			}
		})
	}
}

// TestSnapshotJSONL checks that every emitted line parses as JSON with
// the self-describing fields, and that output ordering is stable.
func TestSnapshotJSONL(t *testing.T) {
	r := New()
	r.Counter("b.counter").Add(2)
	r.Counter("a.counter").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h", []int64{1, 10}).Observe(5)

	var b1, b2 strings.Builder
	if err := r.Snapshot().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSONL output is not byte-stable across snapshots of unchanged values")
	}

	sc := bufio.NewScanner(strings.NewReader(b1.String()))
	var names []string
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		name, _ := m["name"].(string)
		typ, _ := m["type"].(string)
		if name == "" || typ == "" {
			t.Fatalf("line %q missing name/type", sc.Text())
		}
		names = append(names, typ+":"+name)
	}
	want := []string{"counter:a.counter", "counter:b.counter", "gauge:g", "histogram:h"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("lines = %v, want %v", names, want)
	}
}

// TestSnapshotString smoke-checks the human rendering.
func TestSnapshotString(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(2)
	r.Histogram("h", []int64{1}).Observe(9)
	out := r.Snapshot().String()
	for _, want := range []string{"counter", "c", "3", "gauge", "(high 2)", "histogram", "le=+Inf:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() output missing %q:\n%s", want, out)
		}
	}
}

// TestHandler checks the debug HTTP surface: /debug/metrics serves
// parseable JSONL and /debug/pprof/ responds.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/metrics status %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(body)), "\n", 2)[0]), &m); err != nil {
		t.Fatalf("/debug/metrics first line not JSON: %v (%q)", err, body)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
}

// TestPublishIdempotent checks that re-publishing the same name does
// not panic (expvar.Publish would).
func TestPublishIdempotent(t *testing.T) {
	r := New()
	Publish("warped_metrics_test", r)
	Publish("warped_metrics_test", r) // must not panic
}
