package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warped/internal/metrics"
)

// key returns a distinct valid content-hash-shaped key.
func key(i int) string {
	return fmt.Sprintf("%064x", 0xabc000+i)
}

func TestPutGetRoundTrip(t *testing.T) {
	reg := metrics.New()
	s, err := Open(Options{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"stats":{"cycles":42},"attempts":1}`)
	if err := s.Put(key(1), payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key(1))
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if string(got) != string(payload) {
		t.Errorf("payload round trip: got %s, want %s", got, payload)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Error("Get of an unknown key hit")
	}
	snap := reg.Snapshot()
	if snap.Counters["store.hits_total"] != 1 || snap.Counters["store.misses_total"] != 1 ||
		snap.Counters["store.writes_total"] != 1 {
		t.Errorf("metrics = hits %d misses %d writes %d, want 1/1/1",
			snap.Counters["store.hits_total"], snap.Counters["store.misses_total"],
			snap.Counters["store.writes_total"])
	}
}

func TestInvalidInputs(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "UPPERCASEUPPERCASE", "zzzzzzzzzzzzzzzzzz", strings.Repeat("a", 200)} {
		if err := s.Put(bad, []byte(`{}`)); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) hit on an invalid key", bad)
		}
	}
	if err := s.Put(key(1), []byte("not json")); err == nil {
		t.Error("Put accepted a non-JSON payload")
	}
}

// TestReopenRecovers: a fresh Store over an existing directory serves
// previously-written entries — the durable half of the cache contract.
func TestReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key(1), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key(1))
	if !ok || string(got) != `{"x":1}` {
		t.Fatalf("reopened Get = %q, %v; want {\"x\":1}, true", got, ok)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened Len = %d, want 1", s2.Len())
	}
}

// TestCorruptionReadAsMiss: a flipped byte on disk must never surface
// as a payload — the read re-verifies the checksum, drops the entry,
// and reports a miss.
func TestCorruptionReadAsMiss(t *testing.T) {
	reg := metrics.New()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte(`{"cycles":12345}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key(1)[:2], key(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the payload (leave the JSON well-formed).
	corrupted := strings.Replace(string(data), "12345", "99345", 1)
	if corrupted == string(data) {
		t.Fatal("corruption edit did not apply")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key(1)); ok {
		t.Fatal("Get returned a corrupted payload")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file was not deleted")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after corruption drop, want 0", s.Len())
	}
	if got := reg.Snapshot().Counters["store.corrupt_entries_total"]; got != 1 {
		t.Errorf("corrupt_entries_total = %d, want 1", got)
	}
	// The key is writable again: corruption heals by re-execution.
	if err := s.Put(key(1), []byte(`{"cycles":12345}`)); err != nil {
		t.Fatalf("re-Put after corruption: %v", err)
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Error("re-Put entry did not read back")
	}
}

// TestGCBound: exceeding MaxBytes evicts least-recently-used entries,
// and a Get refreshes recency.
func TestGCBound(t *testing.T) {
	reg := metrics.New()
	// Each entry file is ~160 bytes; budget roughly three of them.
	s, err := Open(Options{Dir: t.TempDir(), MaxBytes: 550, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is now the least recently used.
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("Get(0) missed")
	}
	if err := s.Put(key(3), []byte(`{"i":3}`)); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 550 {
		t.Errorf("Bytes = %d, want <= 550 after GC", s.Bytes())
	}
	if _, ok := s.Get(key(1)); ok {
		t.Error("least-recently-used entry survived GC")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Error("recently-touched entry was evicted")
	}
	if got := reg.Snapshot().Counters["store.gc_evictions_total"]; got == 0 {
		t.Error("gc_evictions_total = 0 after an eviction")
	}
}

// TestLoadCleansJunk: temp files from a crashed write and foreign
// files are removed at open, never indexed.
func TestLoadCleansJunk(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, key(1)[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	junk := []string{
		filepath.Join(sub, "put-123456.tmp"),
		filepath.Join(sub, "README"),
	}
	for _, p := range junk {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after opening junk-only dir, want 0", s.Len())
	}
	for _, p := range junk {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("junk file %s survived open", p)
		}
	}
}

// TestConcurrentAccess: the race detector's view of mixed Put/Get.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				k := key(i % 5)
				_ = s.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i%5)))
				s.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

// TestEnvelopeKeyMismatch: an entry renamed to a different (valid) key
// fails verification — the envelope's recorded key must match.
func TestEnvelopeKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, key(1)[:2], key(1))
	dst := filepath.Join(dir, key(9)[:2], key(9))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key(9)); ok {
		t.Error("entry under a mismatched key verified")
	}
}

// TestPayloadIsRawJSON: the stored payload unmarshals as submitted —
// the envelope adds integrity, not re-encoding.
func TestPayloadIsRawJSON(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]any{"stats": map[string]any{"cycles": float64(7)}, "attempts": float64(2)}
	payload, _ := json.Marshal(in)
	if err := s.Put(key(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok {
		t.Fatal("miss")
	}
	var out map[string]any
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatalf("stored payload does not unmarshal: %v", err)
	}
	if out["attempts"] != in["attempts"] {
		t.Errorf("payload drifted: %v vs %v", out, in)
	}
}
