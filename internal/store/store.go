// Package store is the durable tier of the content-addressed result
// cache: a directory of immutable payload files keyed by job content
// hash, layered behind the in-memory LRU of internal/service and under
// the cluster coordinator (internal/cluster).
//
// Content addressing is what makes the store safe to share and to keep
// across restarts: a key is the SHA-256 of the job's canonical form,
// results are deterministic, so an entry can never go stale — it is
// either byte-correct or corrupt. The store therefore re-verifies
// every read (a recorded payload checksum must match) and silently
// drops anything that fails, turning disk corruption into a cache miss
// instead of a wrong answer. Writes are write-then-rename so a crash
// mid-write can never leave a half-entry under a valid key, and a
// size-bound GC evicts least-recently-used entries once the payload
// footprint exceeds the budget.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"warped/internal/metrics"
)

// envelope is the on-disk record: the key it serves, a checksum of the
// payload bytes, and the payload itself. Key and sum are both
// verified on read; a mismatch in either is corruption.
type envelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// envelopeVersion guards the file format; a future shape change bumps
// it and old files read as misses instead of misparses.
const envelopeVersion = 1

// entry is the in-memory index record of one stored file.
type entry struct {
	size int64  // file size on disk, the unit the GC budget counts
	seq  uint64 // logical access clock; smallest = least recently used
}

// Options sizes a Store.
type Options struct {
	// Dir is the store directory; it is created if missing. Entries
	// land in two-character fan-out subdirectories (Dir/ab/abcd…).
	Dir string

	// MaxBytes bounds the total size of stored entry files; <= 0 means
	// 1 GiB. When a write pushes past the bound, least-recently-used
	// entries are deleted until it fits.
	MaxBytes int64

	// Metrics, when non-nil, receives the store.* instrument set.
	Metrics *metrics.Registry
}

// Store is a durable content-addressed key/payload store. All methods
// are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	met      *metrics.Store

	mu      sync.Mutex
	index   map[string]*entry
	bytes   int64
	nextSeq uint64
}

// Open creates (or reopens) the store rooted at opt.Dir, rebuilding
// the index from the files already on disk. Files that do not look
// like entries (temp files from a crashed write included) are deleted.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("store: Dir is required")
	}
	maxBytes := opt.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      opt.Dir,
		maxBytes: maxBytes,
		met:      metrics.ForStore(opt.Metrics),
		index:    make(map[string]*entry),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load walks the directory and rebuilds the index. Access order is
// seeded from file modification times so the GC's least-recently-used
// ordering survives a restart.
func (s *Store) load() error {
	type found struct {
		key     string
		size    int64
		modUnix int64
	}
	var files []found
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, sub := range subdirs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		names, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, de := range names {
			key := de.Name()
			path := filepath.Join(s.dir, sub.Name(), key)
			if de.IsDir() || !validKey(key) || !strings.HasPrefix(key, sub.Name()) {
				// Leftover temp file from a crashed write, or foreign
				// junk: not addressable, so reclaim the space.
				_ = os.RemoveAll(path)
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			files = append(files, found{key: key, size: info.Size(), modUnix: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].modUnix != files[j].modUnix {
			return files[i].modUnix < files[j].modUnix
		}
		return files[i].key < files[j].key
	})
	for _, f := range files {
		s.nextSeq++
		s.index[f.key] = &entry{size: f.size, seq: s.nextSeq}
		s.bytes += f.size
	}
	s.gcLocked()
	s.publishLocked()
	return nil
}

// validKey reports whether key is a plausible content hash: lowercase
// hex, at least 16 characters. The store does not insist on full
// SHA-256 length so callers may key on a shortened address, but
// anything non-hex is rejected (and cleaned up at load).
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the verified payload stored under key. A missing entry,
// an unreadable file, or an entry that fails hash re-verification
// returns ok == false; corrupt entries are deleted on the spot.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.met.Misses.Inc()
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		s.met.Misses.Inc()
		return nil, false
	}
	s.nextSeq++
	e.seq = s.nextSeq
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.dropCorrupt(key)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil ||
		env.V != envelopeVersion || env.Key != key || env.Sum != payloadSum(env.Payload) {
		s.dropCorrupt(key)
		return nil, false
	}
	s.met.Hits.Inc()
	return env.Payload, true
}

// dropCorrupt removes an entry that failed verification, counting it
// as both a corruption and (for the caller's purposes) a miss.
func (s *Store) dropCorrupt(key string) {
	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		delete(s.index, key)
		s.bytes -= e.size
	}
	s.publishLocked()
	s.mu.Unlock()
	_ = os.Remove(s.path(key))
	s.met.Corruptions.Inc()
	s.met.Misses.Inc()
}

// Put durably stores payload under key: the envelope is written to a
// temp file in the same directory and renamed into place, so readers
// (and crashes) only ever see complete entries. Re-putting an existing
// key is a no-op refresh. A write that pushes the store past its size
// budget triggers the LRU GC.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q (want lowercase hex, >= 16 chars)", key)
	}
	if !json.Valid(payload) {
		return fmt.Errorf("store: payload for %s is not valid JSON", key)
	}
	env := envelope{
		V:       envelopeVersion,
		Key:     key,
		Sum:     payloadSum(payload),
		Payload: json.RawMessage(payload),
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}

	s.mu.Lock()
	if _, ok := s.index[key]; ok {
		// Content addressing: an existing entry is already correct (or
		// will read as corrupt and self-heal). Refresh recency only.
		s.nextSeq++
		s.index[key].seq = s.nextSeq
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: committing %s: %w", key, err)
	}

	s.mu.Lock()
	if _, ok := s.index[key]; !ok {
		s.nextSeq++
		s.index[key] = &entry{size: int64(len(data)), seq: s.nextSeq}
		s.bytes += int64(len(data))
	}
	s.gcLocked()
	s.publishLocked()
	s.mu.Unlock()
	s.met.Writes.Inc()
	return nil
}

// gcLocked deletes least-recently-used entries until the payload
// footprint fits the budget. Caller holds s.mu.
func (s *Store) gcLocked() {
	if s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		key string
		seq uint64
	}
	var order []aged
	for key, e := range s.index {
		order = append(order, aged{key: key, seq: e.seq})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	for _, a := range order {
		if s.bytes <= s.maxBytes {
			break
		}
		e := s.index[a.key]
		delete(s.index, a.key)
		s.bytes -= e.size
		_ = os.Remove(s.path(a.key))
		s.met.GCEvictions.Inc()
	}
}

// publishLocked refreshes the footprint gauges. Caller holds s.mu.
func (s *Store) publishLocked() {
	s.met.Entries.Set(int64(len(s.index)))
	s.met.Bytes.Set(s.bytes)
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total size of stored entry files.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// payloadSum is the recorded checksum of the payload bytes: hex
// SHA-256, the same primitive as the job content address.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
