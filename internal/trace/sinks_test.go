package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"warped/internal/isa"
	"warped/internal/simt"
)

// TestEventStringFlags pins the flag-suffix rendering for all four
// combinations: a single space-joined suffix, no trailing or doubled
// separators.
func TestEventStringFlags(t *testing.T) {
	cases := []struct {
		div, st bool
		suffix  string
	}{
		{false, false, ""},
		{true, false, " DIV"},
		{false, true, " ST"},
		{true, true, " DIV ST"},
	}
	for _, tc := range cases {
		e := Event{Cycle: 1, Op: isa.OpIADD, Unit: isa.UnitSP,
			Executing: simt.FullMask(32), Divergent: tc.div, Stores: tc.st}
		s := e.String()
		if !strings.HasSuffix(s, "act=32"+tc.suffix) {
			t.Errorf("div=%v st=%v: got %q, want suffix %q", tc.div, tc.st, s, "act=32"+tc.suffix)
		}
		if strings.Contains(s, "  DIV") || strings.Contains(s, "  ST") || strings.HasSuffix(s, " ") {
			t.Errorf("div=%v st=%v: malformed separators in %q", tc.div, tc.st, s)
		}
	}
}

func TestJSONLWriter(t *testing.T) {
	var sb strings.Builder
	w := NewJSONLWriter(&sb)
	w.Emit(ev(5, 7))
	w.Emit(Event{Cycle: 6, SM: 1, WarpGID: 3, Op: isa.OpST, Unit: isa.UnitLDST, Stores: true})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d:\n%s", len(lines), sb.String())
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line 1 not JSON: %v (%q)", err, lines[0])
	}
	if m["cycle"] != float64(5) || m["pc"] != float64(7) || m["op"] != "iadd" || m["active"] != float64(32) {
		t.Errorf("line 1 fields wrong: %v", m)
	}
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if m["stores"] != true || m["unit"] != "LDST" || m["sm"] != float64(1) || m["gid"] != float64(3) {
		t.Errorf("line 2 fields wrong: %v", m)
	}
}

// TestChromeWriter checks that the output is a valid JSON array whose
// metadata names every SM/warp once and whose slices carry the event
// payload.
func TestChromeWriter(t *testing.T) {
	var sb strings.Builder
	w := NewChromeWriter(&sb)
	w.Emit(Event{Cycle: 1, SM: 0, WarpGID: 1, BlockID: 0, WarpID: 0,
		Op: isa.OpIADD, Unit: isa.UnitSP, Executing: simt.FullMask(32)})
	w.Emit(Event{Cycle: 2, SM: 0, WarpGID: 1, BlockID: 0, WarpID: 0,
		Op: isa.OpLD, Unit: isa.UnitLDST})
	w.Emit(Event{Cycle: 2, SM: 1, WarpGID: 2, BlockID: 1, WarpID: 0,
		Op: isa.OpFMUL, Unit: isa.UnitSP})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, sb.String())
	}
	// 3 events + 2 process_name + 2 thread_name metadata records.
	if len(records) != 7 {
		t.Fatalf("expected 7 records, got %d", len(records))
	}
	var meta, slices int
	for _, r := range records {
		switch r["ph"] {
		case "M":
			meta++
		case "X":
			slices++
			if r["dur"] != float64(1) || r["args"] == nil {
				t.Errorf("malformed slice: %v", r)
			}
		default:
			t.Errorf("unexpected phase in %v", r)
		}
	}
	if meta != 4 || slices != 3 {
		t.Errorf("got %d metadata + %d slices, want 4 + 3", meta, slices)
	}

	// Byte-stability: the same event sequence renders identically.
	var sb2 strings.Builder
	w2 := NewChromeWriter(&sb2)
	w2.Emit(Event{Cycle: 1, SM: 0, WarpGID: 1, BlockID: 0, WarpID: 0,
		Op: isa.OpIADD, Unit: isa.UnitSP, Executing: simt.FullMask(32)})
	w2.Emit(Event{Cycle: 2, SM: 0, WarpGID: 1, BlockID: 0, WarpID: 0,
		Op: isa.OpLD, Unit: isa.UnitLDST})
	w2.Emit(Event{Cycle: 2, SM: 1, WarpGID: 2, BlockID: 1, WarpID: 0,
		Op: isa.OpFMUL, Unit: isa.UnitSP})
	w2.Close()
	if sb.String() != sb2.String() {
		t.Error("chrome trace output is not byte-stable for identical event sequences")
	}
}

// TestChromeWriterEmpty checks that a trace with no events still closes
// to valid JSON.
func TestChromeWriterEmpty(t *testing.T) {
	var sb strings.Builder
	w := NewChromeWriter(&sb)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var records []any
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil || len(records) != 0 {
		t.Fatalf("empty trace should be []: %q (%v)", sb.String(), err)
	}
}
