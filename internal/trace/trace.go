// Package trace provides instruction-level execution tracing for the
// simulator: a sink interface the SM calls at every issue, plus
// ready-made sinks — a ring buffer for post-mortem inspection, a CSV
// writer for offline analysis, and a filtering wrapper. Tracing is a
// debugging substrate: GPGPU-Sim ships the same facility, and porting
// kernels to the simulator without it is miserable.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"warped/internal/isa"
	"warped/internal/simt"
)

// Event describes one issued warp instruction.
type Event struct {
	Cycle     int64
	SM        int
	WarpGID   int
	BlockID   int
	WarpID    int
	PC        int
	Op        isa.Opcode
	Unit      isa.UnitClass
	Executing simt.Mask
	Divergent bool
	Stores    bool
}

// String renders an event as a one-line log record. Flags are rendered
// as a single space-joined suffix (" DIV", " ST", or " DIV ST") so that
// records stay grep-able regardless of which flag combination is set.
func (e Event) String() string {
	var flags []string
	if e.Divergent {
		flags = append(flags, "DIV")
	}
	if e.Stores {
		flags = append(flags, "ST")
	}
	suffix := ""
	if len(flags) > 0 {
		suffix = " " + strings.Join(flags, " ")
	}
	return fmt.Sprintf("cyc=%-8d sm=%-2d blk=%-3d w=%-2d pc=%-4d %-8s %-4s act=%2d%s",
		e.Cycle, e.SM, e.BlockID, e.WarpID, e.PC, e.Op, e.Unit, e.Executing.Count(), suffix)
}

// Sink consumes trace events. Implementations must be cheap: Emit is
// called once per issued instruction.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// Ring keeps the last N events — enough for "what led up to the fault"
// post-mortems without unbounded memory.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRing creates a ring buffer holding n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit appends an event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many events are buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dump renders the buffered events as a log.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVWriter streams events as CSV rows (with header) to an io.Writer.
type CSVWriter struct {
	w     io.Writer
	wrote bool
	Err   error // first write error, if any
}

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter { return &CSVWriter{w: w} }

// Emit writes one CSV row.
func (c *CSVWriter) Emit(e Event) {
	if c.Err != nil {
		return
	}
	if !c.wrote {
		c.wrote = true
		if _, err := io.WriteString(c.w, "cycle,sm,block,warp,pc,op,unit,active,divergent,stores\n"); err != nil {
			c.Err = err
			return
		}
	}
	_, err := fmt.Fprintf(c.w, "%d,%d,%d,%d,%d,%s,%s,%d,%t,%t\n",
		e.Cycle, e.SM, e.BlockID, e.WarpID, e.PC, e.Op, e.Unit,
		e.Executing.Count(), e.Divergent, e.Stores)
	if err != nil {
		c.Err = err
	}
}

// Filter forwards only events accepted by Keep.
type Filter struct {
	Keep func(Event) bool
	Next Sink
}

// Emit forwards e when Keep(e) is true.
func (f Filter) Emit(e Event) {
	if f.Keep == nil || f.Keep(e) {
		f.Next.Emit(e)
	}
}
