package trace

import (
	"strings"
	"testing"

	"warped/internal/isa"
	"warped/internal/simt"
)

func ev(cycle int64, pc int) Event {
	return Event{Cycle: cycle, PC: pc, Op: isa.OpIADD, Unit: isa.UnitSP,
		Executing: simt.FullMask(32)}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 3; i++ {
		r.Emit(ev(int64(i), i))
	}
	es := r.Events()
	if len(es) != 3 || es[0].Cycle != 0 || es[2].Cycle != 2 {
		t.Fatalf("partial ring wrong: %v", es)
	}
	// Overflow: oldest evicted, order preserved.
	for i := 3; i < 10; i++ {
		r.Emit(ev(int64(i), i))
	}
	es = r.Events()
	if len(es) != 4 {
		t.Fatalf("full ring length %d", len(es))
	}
	for i, e := range es {
		if e.Cycle != int64(6+i) {
			t.Fatalf("ring order wrong: %v", es)
		}
	}
	if r.Len() != 4 {
		t.Error("Len after overflow wrong")
	}
	if !strings.Contains(r.Dump(), "pc=9") {
		t.Error("Dump missing newest event")
	}
}

func TestRingMinimumSize(t *testing.T) {
	r := NewRing(0)
	r.Emit(ev(1, 1))
	if r.Len() != 1 {
		t.Error("zero-size ring should clamp to 1")
	}
}

func TestCSVWriter(t *testing.T) {
	var sb strings.Builder
	w := NewCSVWriter(&sb)
	w.Emit(ev(5, 7))
	w.Emit(Event{Cycle: 6, Op: isa.OpST, Unit: isa.UnitLDST, Stores: true})
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "cycle,sm,") {
		t.Error("missing header")
	}
	if !strings.Contains(lines[1], "iadd,SP,32") {
		t.Errorf("row 1 wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "st,LDST,0,false,true") {
		t.Errorf("row 2 wrong: %s", lines[2])
	}
	if w.Err != nil {
		t.Error(w.Err)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(16)
	f := Filter{
		Keep: func(e Event) bool { return e.Unit == isa.UnitLDST },
		Next: r,
	}
	f.Emit(ev(1, 1)) // SP: dropped
	f.Emit(Event{Cycle: 2, Op: isa.OpLD, Unit: isa.UnitLDST})
	if r.Len() != 1 {
		t.Errorf("filter kept %d events, want 1", r.Len())
	}
	// Nil Keep passes everything.
	all := Filter{Next: r}
	all.Emit(ev(3, 3))
	if r.Len() != 2 {
		t.Error("nil Keep should forward")
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	var s Sink = SinkFunc(func(Event) { n++ })
	s.Emit(ev(0, 0))
	s.Emit(ev(1, 1))
	if n != 2 {
		t.Error("SinkFunc not invoked")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 12, SM: 3, BlockID: 4, WarpID: 5, PC: 6,
		Op: isa.OpFADD, Unit: isa.UnitSP, Executing: simt.FullMask(16),
		Divergent: true, Stores: true}
	s := e.String()
	for _, want := range []string{"cyc=12", "sm=3", "pc=6", "fadd", "act=16", "DIV", "ST"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string missing %q: %s", want, s)
		}
	}
}
