package trace

import (
	"fmt"
	"io"
)

// JSONLWriter streams events as JSON Lines: one self-describing object
// per issued instruction, keys in fixed order so output is byte-stable
// for a deterministic simulation. Check Err (or call Close) after the
// run; Emit itself never fails loudly, matching the Sink contract.
type JSONLWriter struct {
	w   io.Writer
	Err error // first write error, if any
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// Emit writes one JSON line.
func (j *JSONLWriter) Emit(e Event) {
	if j.Err != nil {
		return
	}
	_, err := fmt.Fprintf(j.w,
		`{"cycle":%d,"sm":%d,"block":%d,"warp":%d,"gid":%d,"pc":%d,"op":%q,"unit":%q,"active":%d,"divergent":%t,"stores":%t}`+"\n",
		e.Cycle, e.SM, e.BlockID, e.WarpID, e.WarpGID, e.PC, e.Op.String(), e.Unit.String(),
		e.Executing.Count(), e.Divergent, e.Stores)
	if err != nil {
		j.Err = err
	}
}

// Close reports the first write error (JSONL needs no trailer).
func (j *JSONLWriter) Close() error { return j.Err }

// ChromeWriter streams events in the Chrome trace-event JSON format, so
// a run can be opened in chrome://tracing or https://ui.perfetto.dev:
// each issued warp instruction becomes a "complete" ("ph":"X") slice
// one cycle long, with the SM as the process (pid) and the warp (by
// SM-unique gid) as the thread (tid). Process/thread name metadata is
// emitted the first time each SM or warp appears, which is a fixed
// order for a deterministic simulation, so output is byte-stable.
//
// Close must be called to terminate the JSON array; an unclosed file is
// not valid JSON (chrome://tracing tolerates it, JSON parsers do not).
type ChromeWriter struct {
	w        io.Writer
	wrote    bool
	seenSM   map[int]bool
	seenWarp map[int]bool // keyed by SM-unique warp gid
	Err      error        // first write error, if any
}

// NewChromeWriter wraps w.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	return &ChromeWriter{w: w, seenSM: make(map[int]bool), seenWarp: make(map[int]bool)}
}

func (c *ChromeWriter) record(format string, a ...any) {
	if c.Err != nil {
		return
	}
	sep := ",\n"
	if !c.wrote {
		c.wrote = true
		sep = "[\n"
	}
	if _, err := io.WriteString(c.w, sep); err != nil {
		c.Err = err
		return
	}
	if _, err := fmt.Fprintf(c.w, format, a...); err != nil {
		c.Err = err
	}
}

// Emit writes one trace slice (preceded, on first sight of its SM or
// warp, by the naming metadata events).
func (c *ChromeWriter) Emit(e Event) {
	if c.Err != nil {
		return
	}
	if !c.seenSM[e.SM] {
		c.seenSM[e.SM] = true
		c.record(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"SM %d"}}`, e.SM, e.SM)
	}
	if !c.seenWarp[e.WarpGID] {
		c.seenWarp[e.WarpGID] = true
		c.record(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"block %d warp %d"}}`,
			e.SM, e.WarpGID, e.BlockID, e.WarpID)
	}
	c.record(`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,"args":{"pc":%d,"active":%d,"divergent":%t,"stores":%t}}`,
		e.Op.String(), e.Unit.String(), e.Cycle, e.SM, e.WarpGID,
		e.PC, e.Executing.Count(), e.Divergent, e.Stores)
}

// Close terminates the JSON array and reports the first write error.
func (c *ChromeWriter) Close() error {
	if c.Err != nil {
		return c.Err
	}
	if !c.wrote {
		// No events: still produce a valid (empty) trace.
		if _, err := io.WriteString(c.w, "[]\n"); err != nil {
			c.Err = err
		}
		return c.Err
	}
	if _, err := io.WriteString(c.w, "\n]\n"); err != nil {
		c.Err = err
	}
	return c.Err
}
