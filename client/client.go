// Package client is the typed Go client of the warpd daemon
// (cmd/warpd): submit simulation jobs, poll their status, and fetch
// deterministic results over the HTTP/JSON API documented in
// docs/SERVICE.md.
//
// Quick start:
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Submit(ctx, &client.JobSpec{Benchmark: "MatrixMul"})
//	res, err := c.Wait(ctx, resp.ID)
//	fmt.Printf("coverage stats: %+v\n", res.Stats)
//
// Submit retries transparently on backpressure (HTTP 429, honouring
// Retry-After) and transient transport failures with capped
// exponential backoff; a draining daemon (503) and spec errors (4xx)
// fail fast.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"warped/internal/service"
)

// Wire types, shared with the daemon so the two ends cannot drift.
type (
	// JobSpec is one simulation job (see docs/SERVICE.md for the
	// schema). Its Policy field selects a selective-protection policy
	// (docs/POLICIES.md); jobs differing only in policy are distinct
	// cache entries.
	JobSpec = service.JobSpec
	// ConfigSpec selects and overrides the machine configuration.
	ConfigSpec = service.ConfigSpec
	// FaultSpec is a fault-injection campaign.
	FaultSpec = service.FaultSpec
	// FaultDef is one explicit fault.
	FaultDef = service.FaultDef
	// SubmitResponse answers a submission.
	SubmitResponse = service.SubmitResponse
	// StatusResponse answers a status poll.
	StatusResponse = service.StatusResponse
	// ResultResponse carries a finished job's statistics.
	ResultResponse = service.ResultResponse
)

// ErrDraining is returned by Submit when the daemon is shutting down
// and no longer admits jobs.
var ErrDraining = errors.New("client: daemon is draining")

// APIError is a non-2xx daemon answer that is not retried.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: daemon answered %d: %s", e.StatusCode, e.Message)
}

// Client talks to one warpd daemon. The zero value is not usable; use
// New.
type Client struct {
	base string
	http *http.Client

	// MaxRetries bounds Submit's backpressure/transport retries
	// (default 5).
	MaxRetries int

	// Backoff is the initial retry delay, doubled per attempt and
	// capped at 32x (default 100ms). A server Retry-After overrides it.
	Backoff time.Duration

	// PollInterval is Wait's status-poll cadence (default 50ms).
	PollInterval time.Duration

	// RequestTimeout, when positive, bounds each individual HTTP
	// exchange (connect + request + response body) via a per-request
	// deadline, independent of the caller's ctx and of the underlying
	// http.Client.Timeout. A coordinator probing a dead worker wants a
	// tight bound here without capping total job wall time.
	RequestTimeout time.Duration
}

// New builds a client for the daemon at base (e.g.
// "http://localhost:8080"). A trailing slash on base is tolerated.
func New(base string) *Client {
	return NewWithHTTPClient(base, &http.Client{Timeout: 30 * time.Second})
}

// NewWithHTTPClient builds a client that performs its exchanges on hc,
// so a pool of clients (one per cluster worker) can share one
// transport and its connection pool instead of dialing per worker.
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{
		base:         strings.TrimRight(base, "/"),
		http:         hc,
		MaxRetries:   5,
		Backoff:      100 * time.Millisecond,
		PollInterval: 50 * time.Millisecond,
	}
}

// Base returns the daemon base URL this client talks to.
func (c *Client) Base() string { return c.base }

// Submit posts one job. Backpressure (429) and transport errors are
// retried with backoff; 503 fails fast with ErrDraining, other non-2xx
// answers fail fast with *APIError.
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (*SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encoding spec: %w", err)
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 5
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, backoff); err != nil {
				return nil, err
			}
			if backoff < 32*c.Backoff {
				backoff *= 2
			}
		}
		resp, err := c.post(ctx, "/v1/jobs", body)
		if err != nil {
			lastErr = err // transport trouble: retry
			continue
		}
		switch resp.code {
		case http.StatusOK, http.StatusAccepted:
			var out SubmitResponse
			if err := json.Unmarshal(resp.body, &out); err != nil {
				return nil, fmt.Errorf("client: decoding response: %w", err)
			}
			return &out, nil
		case http.StatusTooManyRequests:
			lastErr = &APIError{StatusCode: resp.code, Message: resp.errMsg()}
			if d := resp.retryAfter; d > 0 {
				if err := sleep(ctx, d); err != nil {
					return nil, err
				}
			}
		case http.StatusServiceUnavailable:
			return nil, fmt.Errorf("%w: %s", ErrDraining, resp.errMsg())
		default:
			return nil, &APIError{StatusCode: resp.code, Message: resp.errMsg()}
		}
	}
	return nil, fmt.Errorf("client: submit gave up after %d retries: %w", retries, lastErr)
}

// Status polls one job's lifecycle state.
func (c *Client) Status(ctx context.Context, id string) (*StatusResponse, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return nil, err
	}
	if resp.code != http.StatusOK {
		return nil, &APIError{StatusCode: resp.code, Message: resp.errMsg()}
	}
	var out StatusResponse
	if err := json.Unmarshal(resp.body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding status: %w", err)
	}
	return &out, nil
}

// Result fetches a finished job's result. A job that is still running
// answers *APIError with StatusCode 409; use Wait to block instead.
func (c *Client) Result(ctx context.Context, id string) (*ResultResponse, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id+"/result")
	if err != nil {
		return nil, err
	}
	if resp.code != http.StatusOK {
		return nil, &APIError{StatusCode: resp.code, Message: resp.errMsg()}
	}
	var out ResultResponse
	if err := json.Unmarshal(resp.body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding result: %w", err)
	}
	return &out, nil
}

// Wait polls until the job finishes and returns its result; a failed
// job returns the daemon's error as *APIError. A 429 answer to the
// status poll (a loaded daemon shedding read traffic) is not fatal:
// Wait honors its Retry-After and keeps polling. The loop is bounded
// only by ctx — cancelling it returns promptly from inside any backoff
// sleep.
func (c *Client) Wait(ctx context.Context, id string) (*ResultResponse, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		resp, err := c.get(ctx, "/v1/jobs/"+id)
		if err != nil {
			return nil, err
		}
		switch resp.code {
		case http.StatusOK:
			var st StatusResponse
			if err := json.Unmarshal(resp.body, &st); err != nil {
				return nil, fmt.Errorf("client: decoding status: %w", err)
			}
			switch st.Status {
			case "done":
				return c.Result(ctx, id)
			case "failed":
				return nil, &APIError{StatusCode: http.StatusInternalServerError,
					Message: fmt.Sprintf("job %s failed: %s", id, st.Error)}
			}
		case http.StatusTooManyRequests:
			if d := resp.retryAfter; d > 0 {
				if err := sleep(ctx, d); err != nil {
					return nil, err
				}
				continue
			}
		default:
			return nil, &APIError{StatusCode: resp.code, Message: resp.errMsg()}
		}
		if err := sleep(ctx, interval); err != nil {
			return nil, err
		}
	}
}

// Ready reports whether the daemon is accepting jobs (readiness
// probe; a draining daemon is alive but not ready).
func (c *Client) Ready(ctx context.Context) (bool, error) {
	resp, err := c.get(ctx, "/readyz")
	if err != nil {
		return false, err
	}
	return resp.code == http.StatusOK, nil
}

// Benchmarks lists the workloads the daemon can run by name.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	resp, err := c.get(ctx, "/v1/benchmarks")
	if err != nil {
		return nil, err
	}
	if resp.code != http.StatusOK {
		return nil, &APIError{StatusCode: resp.code, Message: resp.errMsg()}
	}
	var out struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.Unmarshal(resp.body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding benchmarks: %w", err)
	}
	return out.Benchmarks, nil
}

// reply is one decoded HTTP exchange.
type reply struct {
	code       int
	body       []byte
	retryAfter time.Duration
}

// errMsg extracts the daemon's error envelope, falling back to the
// raw body.
func (r *reply) errMsg() string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(r.body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return string(r.body)
}

func (c *Client) post(ctx context.Context, path string, body []byte) (*reply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

func (c *Client) get(ctx context.Context, path string) (*reply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

func (c *Client) do(req *http.Request) (*reply, error) {
	if c.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(req.Context(), c.RequestTimeout)
		defer cancel()
		req = req.WithContext(ctx)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	r := &reply{code: resp.StatusCode, body: body}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			r.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return r, nil
}

// sleep waits d or until ctx fires.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
