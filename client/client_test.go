package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestNewTrailingSlash: a base URL with a trailing slash must produce
// the same request paths as one without — "http://host/" used to yield
// "//jobs" paths, which some routers 404 or redirect.
func TestNewTrailingSlash(t *testing.T) {
	var gotPath atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath.Store(r.URL.Path)
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(map[string]string{"id": "j0", "status": "done"})
	}))
	defer ts.Close()

	for _, base := range []string{ts.URL, ts.URL + "/", ts.URL + "///"} {
		c := New(base)
		if _, err := c.Status(context.Background(), "j0"); err != nil {
			t.Fatalf("Status with base %q: %v", base, err)
		}
		if p := gotPath.Load().(string); p != "/v1/jobs/j0" {
			t.Errorf("base %q produced path %q, want /v1/jobs/j0", base, p)
		}
	}
}

// TestWaitHonors429RetryAfter: a loaded daemon may 429 the status
// poll; Wait must sleep the advertised Retry-After and keep polling
// instead of failing the wait.
func TestWaitHonors429RetryAfter(t *testing.T) {
	var polls atomic.Int32
	var retryAfterSeen atomic.Int64 // ns between the 429 and the next poll
	var rejectedAt atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/j1":
			switch polls.Add(1) {
			case 1:
				rejectedAt.Store(time.Now().UnixNano())
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "shedding load"})
			default:
				retryAfterSeen.CompareAndSwap(0, time.Now().UnixNano()-rejectedAt.Load())
				_ = json.NewEncoder(w).Encode(map[string]string{"id": "j1", "status": "done"})
			}
		case "/v1/jobs/j1/result":
			_ = json.NewEncoder(w).Encode(map[string]any{"id": "j1", "stats": map[string]any{}})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.PollInterval = time.Millisecond
	res, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Wait through a 429: %v", err)
	}
	if res.ID != "j1" {
		t.Errorf("result ID = %s, want j1", res.ID)
	}
	if got := time.Duration(retryAfterSeen.Load()); got < 900*time.Millisecond {
		t.Errorf("repoll after %v, want >= ~1s (the advertised Retry-After)", got)
	}
}

// TestWaitContextCancellable: cancelling the context returns promptly
// from Wait — including from inside a Retry-After backoff — and the
// polling goroutine does not leak past the return.
func TestWaitContextCancellable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Forever running, with a long advertised backoff: the only way
		// out is the caller's context.
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "busy"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { _, err := c.Wait(ctx, "j2"); done <- err }()

	// Let Wait enter the backoff sleep, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Wait after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return within 2s of cancellation: poll goroutine leaked")
	}
}

// TestRequestTimeout: the per-request deadline bounds one exchange
// even when the caller's context has no deadline.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release)

	c := New(ts.URL)
	c.RequestTimeout = 50 * time.Millisecond
	start := time.Now()
	_, err := c.Status(context.Background(), "j3")
	if err == nil {
		t.Fatal("Status against a hung server returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("request took %v, want ~50ms (RequestTimeout)", elapsed)
	}
}

// TestSharedHTTPClient: NewWithHTTPClient routes exchanges through the
// caller's client, so a worker pool shares one transport.
func TestSharedHTTPClient(t *testing.T) {
	var calls atomic.Int32
	rt := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		calls.Add(1)
		return nil, errors.New("sentinel transport")
	})
	hc := &http.Client{Transport: rt}
	a := NewWithHTTPClient("http://a", hc)
	b := NewWithHTTPClient("http://b/", hc)
	_, _ = a.Status(context.Background(), "x")
	_, _ = b.Status(context.Background(), "x")
	if calls.Load() != 2 {
		t.Errorf("shared transport saw %d calls, want 2", calls.Load())
	}
	if b.Base() != "http://b" {
		t.Errorf("Base() = %q, want trailing slash trimmed", b.Base())
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }
