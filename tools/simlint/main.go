// Command simlint runs the simulator's static-analysis pass
// (internal/lint) over the module and reports findings.
//
// Usage:
//
//	simlint [-json] [-o FILE] [-C DIR] [patterns...]
//
// Patterns are module-root-relative package selectors ("./...",
// "internal/sim", "internal/..."); the default is "./...". Exit status
// is 0 when clean, 1 when findings exist, 2 when the module cannot be
// analyzed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"warped/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON Lines instead of text")
	outFile := fs.String("o", "", "write findings to FILE instead of stdout")
	dir := fs.String("C", ".", "run as if started in DIR")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: simlint [-json] [-o FILE] [-C DIR] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	findings, err := lint.Run(lint.Config{Dir: *dir, Patterns: fs.Args()})
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	w := stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	var werr error
	if *jsonOut {
		werr = findings.WriteJSONL(w)
	} else {
		werr = findings.WriteText(w)
	}
	if werr != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", werr)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
