package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata"

func TestExitCleanModule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", filepath.Join(fixtures, "clean"), "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean module; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output on clean module: %s", out.String())
	}
}

// TestExitSeededFixtures checks simlint exits non-zero on every seeded
// violation fixture — one per rule.
func TestExitSeededFixtures(t *testing.T) {
	for _, fx := range []string{"determinism", "exhaustive", "atomic", "nilmetrics", "ctxloop", "suppress"} {
		t.Run(fx, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run([]string{"-C", filepath.Join(fixtures, fx), "./..."}, &out, &errb)
			if code != 1 {
				t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
			}
			if out.Len() == 0 {
				t.Fatal("no findings printed")
			}
		})
	}
}

func TestExitLoadError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", filepath.Join(fixtures, "no-such-dir")}, &out, &errb); code != 2 {
		t.Fatalf("exit %d on unloadable dir, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-C", filepath.Join(fixtures, "determinism"), "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	n := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", n+1, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no JSONL findings emitted")
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-o", path, "-C", filepath.Join(fixtures, "determinism"), "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("findings leaked to stdout with -o: %s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading -o file: %v", err)
	}
	if !strings.Contains(string(data), `"rule":"determinism"`) {
		t.Fatalf("-o file missing findings: %s", data)
	}
}

// TestPatternScoping checks patterns narrow findings without skipping
// the module load.
func TestPatternScoping(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", filepath.Join(fixtures, "nilmetrics"), "internal/metrics"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d linting only the clean package, want 0; out: %s", code, out.String())
	}
}
